// Package etlopt's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§4.2) as testing.B benchmarks, plus
// the ablation studies called out in DESIGN.md:
//
//	BenchmarkFig1Scenario/*    — the Fig. 1 → Fig. 2 motivating example
//	BenchmarkFig4/*            — the Fig. 4 cost cases (DIS and FAC wins)
//	BenchmarkTable1and2/*      — Tables 1 and 2 per category & algorithm
//	                             (quality %, improvement %, visited states)
//	BenchmarkAblation*         — dedup, incremental costing, Phase I, merge
//	BenchmarkEngineModes/*     — materialized vs pipelined execution
//	BenchmarkTransitionOps/*   — per-transition micro-costs
//
// Absolute times are hardware-bound; the paper-facing outputs are the
// custom metrics (improvement%, quality%, states) reported per benchmark.
package etlopt

import (
	"context"
	"fmt"
	"io"
	"testing"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/engine"
	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/templates"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// BenchmarkFig1Scenario optimizes the paper's motivating workflow with
// each algorithm. All three find the Fig. 2 optimum; the metric of
// interest is the visited-state count and time per algorithm.
func BenchmarkFig1Scenario(b *testing.B) {
	algos := map[string]func(context.Context, *workflow.Graph, core.Options) (*core.Result, error){
		"ES":       core.Exhaustive,
		"HS":       core.Heuristic,
		"HSGreedy": core.HSGreedy,
	}
	for name, algo := range algos {
		b.Run(name, func(b *testing.B) {
			g := templates.Fig1Workflow()
			var res *core.Result
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = algo(context.Background(), g, core.Options{MaxStates: 20_000, IncrementalCost: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Improvement(), "improvement%")
			b.ReportMetric(float64(res.Visited), "states")
		})
	}
}

// BenchmarkFig4 evaluates the three Fig. 4 placements under the row model;
// the reported costs reproduce the figure's ordering (original > factorized
// > distributed under the full model; the paper's arithmetic is asserted
// exactly in the cost package's tests).
func BenchmarkFig4(b *testing.B) {
	cases := map[string]templates.Fig4Case{
		"Original":    templates.Fig4Original,
		"Distributed": templates.Fig4Distributed,
		"Factorized":  templates.Fig4Factorized,
	}
	for name, c := range cases {
		b.Run(name, func(b *testing.B) {
			g := templates.Fig4Workflow(c, 8)
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				costing, err := cost.Evaluate(g, cost.RowModel{})
				if err != nil {
					b.Fatal(err)
				}
				total = costing.Total
			}
			b.ReportMetric(total, "state-cost")
		})
	}
}

// benchCategory runs one representative workflow of a category through all
// three algorithms and reports the Table 1 / Table 2 metrics. Budgets are
// scaled down from the full suite (use cmd/etlbench for the 40-workflow
// reproduction); the orderings the paper reports — ES states ≫ HS ≫ HSG,
// HS quality ≥ HSG — hold at this scale too.
func benchCategory(b *testing.B, cat generator.Category, esBudget, hsBudget int) {
	sc, err := generator.Generate(generator.CategoryConfig(cat, 20050405))
	if err != nil {
		b.Fatal(err)
	}
	type algo struct {
		name string
		run  func(context.Context, *workflow.Graph, core.Options) (*core.Result, error)
		opts core.Options
	}
	algos := []algo{
		{"ES", core.Exhaustive, core.Options{MaxStates: esBudget, IncrementalCost: true}},
		{"HS", core.Heuristic, core.Options{MaxStates: hsBudget, IncrementalCost: true}},
		{"HSGreedy", core.HSGreedy, core.Options{MaxStates: hsBudget, IncrementalCost: true}},
	}
	var esImprovement float64
	for _, a := range algos {
		a := a
		b.Run(a.name, func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = a.run(context.Background(), sc.Graph, a.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			if a.name == "ES" {
				esImprovement = res.Improvement()
			}
			b.ReportMetric(res.Improvement(), "improvement%")
			b.ReportMetric(float64(res.Visited), "states")
			if a.name != "ES" && esImprovement > 0 {
				b.ReportMetric(100*res.Improvement()/esImprovement, "quality%")
			}
		})
	}
}

// BenchmarkTable1and2 regenerates the per-category measurements behind
// Tables 1 and 2.
func BenchmarkTable1and2(b *testing.B) {
	b.Run("small", func(b *testing.B) { benchCategory(b, generator.Small, 20_000, 6_000) })
	b.Run("medium", func(b *testing.B) { benchCategory(b, generator.Medium, 20_000, 8_000) })
	b.Run("large", func(b *testing.B) { benchCategory(b, generator.Large, 20_000, 10_000) })
}

// BenchmarkAblationDedup measures A1: signature-based duplicate detection
// versus none, on a budgeted ES over the Fig. 1 workflow. Without dedup the
// same states are regenerated and re-costed.
func BenchmarkAblationDedup(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"WithDedup", false}, {"NoDedup", true}} {
		b.Run(mode.name, func(b *testing.B) {
			g := templates.Fig1Workflow()
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Exhaustive(context.Background(), g, core.Options{
					MaxStates: 5_000, IncrementalCost: true, DisableDedup: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Generated), "generated")
			b.ReportMetric(boolMetric(res.Terminated), "terminated")
		})
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationIncrementalCost measures A2: the §4.1 semi-incremental
// cost evaluation versus full recomputation, over the same HS run.
func BenchmarkAblationIncrementalCost(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 31))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		inc  bool
	}{{"Incremental", true}, {"Full", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Heuristic(context.Background(), sc.Graph, core.Options{
					MaxStates: 4_000, IncrementalCost: mode.inc,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPhaseI measures A3: HS with and without Phase I (the
// paper argues the phase pays for itself despite Phase IV's repetition).
func BenchmarkAblationPhaseI(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 32))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"WithPhaseI", false}, {"NoPhaseI", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Heuristic(context.Background(), sc.Graph, core.Options{
					MaxStates: 6_000, IncrementalCost: true, DisablePhaseI: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Improvement(), "improvement%")
		})
	}
}

// BenchmarkAblationMerge measures A4: merge constraints (Heuristic 3)
// proactively shrink the search space.
func BenchmarkAblationMerge(b *testing.B) {
	g := templates.Fig1Workflow()
	// Merge $2€ with A2E in branch 2.
	var d2e, a2e workflow.NodeID
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op == workflow.OpFunc && a.Sem.DropArgs {
			d2e = id
		}
		if a.Sem.Op == workflow.OpFunc && a.InPlace() {
			a2e = id
		}
	}
	for _, mode := range []struct {
		name  string
		pairs [][2]workflow.NodeID
	}{
		{"NoConstraints", nil},
		{"MergeConstrained", [][2]workflow.NodeID{{d2e, a2e}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Heuristic(context.Background(), g, core.Options{
					IncrementalCost: true, MergeConstraints: mode.pairs,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Visited), "states")
			b.ReportMetric(res.Improvement(), "improvement%")
		})
	}
}

// BenchmarkEngineModes measures A5: materialized versus pipelined
// execution of the same optimized workflow.
func BenchmarkEngineModes(b *testing.B) {
	cfg := generator.CategoryConfig(generator.Medium, 33)
	cfg.DataRows = 2000
	sc, err := generator.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bindings := sc.Bind()
	for _, mode := range []struct {
		name string
		m    engine.Mode
	}{{"Materialized", engine.Materialized}, {"Pipelined", engine.Pipelined}} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(bindings, engine.WithMode(mode.m), engine.WithBatchSize(256))
			var rows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Run(context.Background(), sc.Graph)
				if err != nil {
					b.Fatal(err)
				}
				for _, t := range res.Targets {
					rows = len(t)
				}
			}
			b.ReportMetric(float64(rows), "target-rows")
		})
	}
}

// BenchmarkParallelEngine measures the partition-parallel engine on a
// large scenario with scaled-up data, against the materialized baseline
// and at P ∈ {1, 2, 4, 8}. The reported speedup metric is wall clock
// relative to materialized; the acceptance bar is ×2 at P=4.
func BenchmarkParallelEngine(b *testing.B) {
	cfg := generator.CategoryConfig(generator.Large, 33)
	cfg.DataRows = 30_000
	sc, err := generator.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	bindings := sc.Bind()
	baseline := make(map[int]float64) // b.N-normalized ns/op, keyed 0=materialized
	run := func(b *testing.B, e *engine.Engine) float64 {
		var rows int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Run(context.Background(), sc.Graph)
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range res.Targets {
				rows = len(t)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(rows), "target-rows")
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	b.Run("Materialized", func(b *testing.B) {
		baseline[0] = run(b, engine.New(bindings))
	})
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		b.Run(fmt.Sprintf("Parallel/P=%d", p), func(b *testing.B) {
			nsOp := run(b, engine.New(bindings,
				engine.WithMode(engine.Parallel), engine.WithPartitions(p)))
			if mat := baseline[0]; mat > 0 && nsOp > 0 {
				b.ReportMetric(mat/nsOp, "speedup-vs-materialized")
			}
		})
	}
}

// BenchmarkTransitionOps measures the per-transition cost of the rewrite
// machinery itself (clone + rewire + incremental schema regeneration +
// checks) — the inner loop of every search.
func BenchmarkTransitionOps(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 34))
	if err != nil {
		b.Fatal(err)
	}
	g := sc.Graph

	var swapPair [2]workflow.NodeID
	for _, grp := range g.LocalGroups() {
		for i := 0; i+1 < len(grp); i++ {
			if _, err := transitions.Swap(g, grp[i], grp[i+1]); err == nil {
				swapPair = [2]workflow.NodeID{grp[i], grp[i+1]}
			}
		}
	}
	b.Run("Swap", func(b *testing.B) {
		if swapPair[0] == 0 {
			b.Skip("no legal swap")
		}
		for i := 0; i < b.N; i++ {
			if _, err := transitions.Swap(g, swapPair[0], swapPair[1]); err != nil {
				b.Fatal(err)
			}
		}
	})

	var da workflow.DistributableActivity
	for _, d := range g.FindDistributableActivities() {
		if len(g.Providers(d.Activity)) == 1 && g.Providers(d.Activity)[0] == d.Binary {
			da = d
		}
	}
	b.Run("Distribute", func(b *testing.B) {
		if da.Activity == 0 {
			b.Skip("no adjacent distributable activity")
		}
		for i := 0; i < b.N; i++ {
			if _, err := transitions.Distribute(g, da.Binary, da.Activity); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Signature", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.Signature() == "" {
				b.Fatal("empty signature")
			}
		}
	})

	b.Run("CostFull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cost.Evaluate(g, cost.RowModel{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	base, err := cost.Evaluate(g, cost.RowModel{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CostIncremental", func(b *testing.B) {
		if swapPair[0] == 0 {
			b.Skip("no legal swap")
		}
		res, err := transitions.Swap(g, swapPair[0], swapPair[1])
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cost.EvaluateIncremental(base, res.Graph, cost.RowModel{}, res.Dirty); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.Clone().Len() != g.Len() {
				b.Fatal("clone lost nodes")
			}
		}
	})
}

// BenchmarkSignatureScaling reports signature cost by workflow size.
func BenchmarkSignatureScaling(b *testing.B) {
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		sc, err := generator.Generate(generator.CategoryConfig(cat, 35))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s-%dacts", cat, len(sc.Graph.Activities())), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sc.Graph.Signature()
			}
		})
	}
}

// BenchmarkParallelES measures the parallel search's scaling: the same
// budgeted ES run at 1, 2, 4 and 8 workers. Results (best cost, visited
// states) are identical at every width by construction — the benchmark
// asserts it — so the only thing that varies is wall-clock time. Speedup
// is bounded by how much of the search is successor costing (the
// parallel fraction) and by the machine's core count.
func BenchmarkParallelES(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 20050405))
	if err != nil {
		b.Fatal(err)
	}
	ref, err := core.Exhaustive(context.Background(), sc.Graph, core.Options{
		MaxStates: 4_000, IncrementalCost: true, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, err = core.Exhaustive(context.Background(), sc.Graph, core.Options{
					MaxStates: 4_000, IncrementalCost: true, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.BestCost != ref.BestCost || res.Visited != ref.Visited {
				b.Fatalf("workers=%d changed the result: (%v,%d) vs (%v,%d)",
					workers, res.BestCost, res.Visited, ref.BestCost, ref.Visited)
			}
			b.ReportMetric(float64(res.Visited), "states")
		})
	}
}

// BenchmarkParallelHS is the HS counterpart: local groups optimized
// concurrently, identical results at every worker count.
func BenchmarkParallelHS(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Large, 20050405))
	if err != nil {
		b.Fatal(err)
	}
	ref, err := core.Heuristic(context.Background(), sc.Graph, core.Options{
		MaxStates: 10_000, IncrementalCost: true, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, err = core.Heuristic(context.Background(), sc.Graph, core.Options{
					MaxStates: 10_000, IncrementalCost: true, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.BestCost != ref.BestCost || res.Visited != ref.Visited {
				b.Fatalf("workers=%d changed the result: (%v,%d) vs (%v,%d)",
					workers, res.BestCost, res.Visited, ref.BestCost, ref.Visited)
			}
			b.ReportMetric(res.Improvement(), "improvement%")
		})
	}
}

// BenchmarkPhysicalVsLogical optimizes the same workflow under the
// logical row model and under the physical model (hash/sort operator
// choice, cached lookups, I/O-aware spills) — the §6 "physical
// optimization" direction. Plans may differ: under the physical model,
// keeping flows below the hash-memory threshold pays, while n·log₂n
// blocking costs vanish for in-memory inputs.
func BenchmarkPhysicalVsLogical(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 36))
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]cost.Model{
		"RowModel":      cost.RowModel{},
		"PhysicalModel": cost.DefaultPhysicalModel(),
	}
	for name, m := range models {
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.Heuristic(context.Background(), sc.Graph, core.Options{
					Model: m, IncrementalCost: true, MaxStates: 6_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Improvement(), "improvement%")
			b.ReportMetric(res.BestCost, "final-cost")
		})
	}
}

// BenchmarkTraceOverhead measures what transition tracing costs the
// heuristic search: the Off/On pair must show identical allocation counts
// when tracing is off versus the pre-trace baseline — recording is gated
// on Options.Trace and the structured transition record (a fixed-size
// array) allocates nothing — while On pays only for the recorded steps.
// The trace-steps metric reports the recorded path length.
func BenchmarkTraceOverhead(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 7))
	if err != nil {
		b.Fatal(err)
	}
	for name, g := range map[string]*workflow.Graph{
		"Fig1":  templates.Fig1Workflow(),
		"Small": sc.Graph,
	} {
		for _, traced := range []bool{false, true} {
			label := name + "/Off"
			if traced {
				label = name + "/On"
			}
			b.Run(label, func(b *testing.B) {
				opts := core.Options{MaxStates: 20_000, IncrementalCost: true, Trace: traced}
				var res *core.Result
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					res, err = core.Heuristic(context.Background(), g, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if traced {
					b.ReportMetric(float64(len(res.Steps)), "trace-steps")
					if len(res.Steps) == 0 && res.Best.Signature() != g.Signature() {
						b.Fatal("tracing on but no steps recorded")
					}
				} else if res.Steps != nil {
					b.Fatal("tracing off must record no steps")
				}
			})
		}
	}
}

// BenchmarkObsOverhead guards the observability overhead budget: with
// metrics disabled (Off), ES and HS must run within noise of the
// uninstrumented baseline — the hot paths see exactly one nil check per
// event — which is what keeps BenchmarkParallelES/HS from regressing.
// With metrics enabled (On), the atomic counters and gauges price the
// full instrumentation. Results must be identical either way.
func BenchmarkObsOverhead(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 20050405))
	if err != nil {
		b.Fatal(err)
	}
	algos := []struct {
		name string
		run  func(context.Context, *workflow.Graph, core.Options) (*core.Result, error)
		max  int
	}{
		{"ES", core.Exhaustive, 4_000},
		{"HS", core.Heuristic, 10_000},
	}
	for _, algo := range algos {
		ref, err := algo.run(context.Background(), sc.Graph, core.Options{
			MaxStates: algo.max, IncrementalCost: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, on := range []bool{false, true} {
			label := algo.name + "/Off"
			if on {
				label = algo.name + "/On"
			}
			b.Run(label, func(b *testing.B) {
				var res *core.Result
				for i := 0; i < b.N; i++ {
					opts := core.Options{MaxStates: algo.max, IncrementalCost: true}
					if on {
						opts.Metrics = obs.NewRegistry()
					}
					var err error
					res, err = algo.run(context.Background(), sc.Graph, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				if res.BestCost != ref.BestCost || res.Visited != ref.Visited {
					b.Fatalf("metrics=%v changed the result: (%v,%d) vs (%v,%d)",
						on, res.BestCost, res.Visited, ref.BestCost, ref.Visited)
				}
				b.ReportMetric(float64(res.Visited), "states")
			})
		}
	}
}

// BenchmarkJournalOverhead prices the flight recorder against the same
// search with recording off. The Off arm is the zero-cost contract — a
// nil *Journal must leave the hot path untouched — and the On arm
// (journal draining to io.Discard) is the worst-case emission rate: one
// event per transition attempt plus cache lookups. Both arms must visit
// the identical states and find the identical cost.
func BenchmarkJournalOverhead(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 20050405))
	if err != nil {
		b.Fatal(err)
	}
	const maxStates = 10_000
	ref, err := core.Heuristic(context.Background(), sc.Graph, core.Options{
		MaxStates: maxStates, IncrementalCost: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		label := "HS/Off"
		if on {
			label = "HS/On"
		}
		b.Run(label, func(b *testing.B) {
			var res *core.Result
			var events int64
			for i := 0; i < b.N; i++ {
				opts := core.Options{MaxStates: maxStates, IncrementalCost: true}
				var j *obs.Journal
				if on {
					j = obs.NewJournal(io.Discard, nil)
					opts.Journal = j
				}
				var err error
				res, err = core.Heuristic(context.Background(), sc.Graph, opts)
				if err != nil {
					b.Fatal(err)
				}
				if on {
					if err := j.Close(); err != nil {
						b.Fatal(err)
					}
					events = j.Written() + j.Dropped()
				}
			}
			if res.BestCost != ref.BestCost || res.Visited != ref.Visited {
				b.Fatalf("journal=%v changed the result: (%v,%d) vs (%v,%d)",
					on, res.BestCost, res.Visited, ref.BestCost, ref.Visited)
			}
			b.ReportMetric(float64(res.Visited), "states")
			if on {
				b.ReportMetric(float64(events), "events")
			}
		})
	}
}
