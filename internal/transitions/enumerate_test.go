package transitions

import (
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/templates"
)

func TestEnumerateFig1(t *testing.T) {
	g := templates.Fig1Workflow()
	results := Enumerate(g)
	if len(results) == 0 {
		t.Fatal("Fig. 1 must have applicable transitions")
	}
	kinds := map[string]int{}
	for _, r := range results {
		kinds[r.Description[:3]]++
		// Every enumerated state is valid and distinct from the input.
		if err := r.Graph.Validate(); err != nil {
			t.Errorf("%s produced invalid state: %v", r.Description, err)
		}
		if r.Graph.Signature() == g.Signature() {
			t.Errorf("%s produced an identical state", r.Description)
		}
	}
	// Fig. 1 offers the γ↔A2E swap and the σ distribution at least.
	if kinds["SWA"] == 0 {
		t.Error("no swaps enumerated")
	}
	if kinds["DIS"] == 0 {
		t.Error("no distributions enumerated")
	}
}

func TestEnumerateDistinctSignatures(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 21))
	if err != nil {
		t.Fatal(err)
	}
	results := Enumerate(sc.Graph)
	seen := map[string]string{}
	for _, r := range results {
		sig := r.Graph.Signature()
		if prev, dup := seen[sig]; dup {
			t.Errorf("transitions %s and %s produce the same signature %q", prev, r.Description, sig)
		}
		seen[sig] = r.Description
	}
}

func TestEnumerateDoesNotMutateInput(t *testing.T) {
	g := templates.Fig1Workflow()
	sig := g.Signature()
	Enumerate(g)
	if g.Signature() != sig {
		t.Error("Enumerate mutated its input graph")
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Errorf("input graph damaged: %v", err)
	}
}
