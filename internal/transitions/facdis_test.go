package transitions

import (
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// forked builds S1→a1→U←a2←S2, U→post...→TGT and returns the graph plus
// named IDs.
func forked(t *testing.T, schema data.Schema, a1, a2 *workflow.Activity, post ...*workflow.Activity) (*workflow.Graph, map[string]workflow.NodeID) {
	t.Helper()
	g := workflow.NewGraph()
	ids := map[string]workflow.NodeID{}
	ids["s1"] = g.AddRecordset(&workflow.RecordsetRef{Name: "S1", Schema: schema, Rows: 1000, IsSource: true})
	ids["s2"] = g.AddRecordset(&workflow.RecordsetRef{Name: "S2", Schema: schema, Rows: 1000, IsSource: true})
	ids["a1"] = g.AddActivity(a1)
	ids["a2"] = g.AddActivity(a2)
	ids["u"] = g.AddActivity(templates.Union())
	g.MustAddEdge(ids["s1"], ids["a1"])
	g.MustAddEdge(ids["s2"], ids["a2"])
	g.MustAddEdge(ids["a1"], ids["u"])
	g.MustAddEdge(ids["a2"], ids["u"])
	cur := ids["u"]
	for i, p := range post {
		id := g.AddActivity(p)
		g.MustAddEdge(cur, id)
		ids["p"+string(rune('1'+i))] = id
		cur = id
	}
	ids["tgt"] = g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: data.Schema{"x"}, IsTarget: true})
	g.MustAddEdge(cur, ids["tgt"])
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	g.Node(ids["tgt"]).RS.Schema = g.Node(cur).Out.Clone()
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestFactorizeHomologousFilters(t *testing.T) {
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, threshold("V", 50), threshold("V", 50))
	res, err := Factorize(g, ids["u"], ids["a1"], ids["a2"])
	if err != nil {
		t.Fatal(err)
	}
	ng := res.Graph
	// The two filters are gone; a single new filter follows the union.
	if ng.Node(ids["a1"]) != nil || ng.Node(ids["a2"]) != nil {
		t.Error("factorized activities still present")
	}
	succ := ng.Consumers(ids["u"])
	if len(succ) != 1 {
		t.Fatalf("union consumers = %v", succ)
	}
	na := ng.Node(succ[0])
	if na.Kind != workflow.KindActivity || na.Act.Sem.Op != workflow.OpFilter {
		t.Fatalf("union's consumer is %v, want the factorized filter", na.Label())
	}
	// The union now reads directly from the sources in preserved order.
	preds := ng.Providers(ids["u"])
	if preds[0] != ids["s1"] || preds[1] != ids["s2"] {
		t.Errorf("union providers = %v", preds)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizeTagCombination(t *testing.T) {
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, threshold("V", 50), threshold("V", 50))
	res, err := Factorize(g, ids["u"], ids["a1"], ids["a2"])
	if err != nil {
		t.Fatal(err)
	}
	na := res.Graph.Node(res.Graph.Consumers(ids["u"])[0])
	t1 := g.Node(ids["a1"]).Act.Tag
	t2 := g.Node(ids["a2"]).Act.Tag
	if na.Act.Tag != t1+"&"+t2 && na.Act.Tag != t2+"&"+t1 {
		t.Errorf("factorized tag = %q, want combination of %q and %q", na.Act.Tag, t1, t2)
	}
}

func TestFactorizeNonHomologousRejected(t *testing.T) {
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, threshold("V", 50), threshold("V", 60)) // different thresholds
	_, err := Factorize(g, ids["u"], ids["a1"], ids["a2"])
	if err == nil || !IsRejection(err) {
		t.Fatalf("non-homologous factorization must be rejected, got %v", err)
	}
}

func TestFactorizeAggregationRejected(t *testing.T) {
	schema := data.Schema{"K", "V"}
	agg1 := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.4)
	agg2 := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.4)
	g, ids := forked(t, schema, agg1, agg2)
	_, err := Factorize(g, ids["u"], ids["a1"], ids["a2"])
	if err == nil || !IsRejection(err) {
		t.Fatalf("aggregations must not factorize over a bag union, got %v", err)
	}
}

func TestDistributeFilterOverUnion(t *testing.T) {
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, templates.NotNull(0.9, "K"), templates.NotNull(0.9, "K"),
		threshold("V", 50))
	res, err := Distribute(g, ids["u"], ids["p1"])
	if err != nil {
		t.Fatal(err)
	}
	ng := res.Graph
	if ng.Node(ids["p1"]) != nil {
		t.Error("distributed activity still present")
	}
	// Each branch now ends with a clone of the filter feeding the union.
	for _, p := range ng.Providers(ids["u"]) {
		n := ng.Node(p)
		if n.Act == nil || n.Act.Sem.Op != workflow.OpFilter {
			t.Errorf("union provider %v is not a filter clone", n.Label())
		}
		if n.Act.Tag != g.Node(ids["p1"]).Act.Tag {
			t.Errorf("clone tag = %q, want inherited %q", n.Act.Tag, g.Node(ids["p1"]).Act.Tag)
		}
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeThenFactorizeRestoresSignature(t *testing.T) {
	// FAC and DIS are reciprocal: distributing a filter and factorizing the
	// clones back must reproduce the original state signature, so the
	// search space dedupes the round trip.
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, templates.NotNull(0.9, "K"), templates.NotNull(0.9, "K"),
		threshold("V", 50))
	sig0 := g.Signature()
	dis, err := Distribute(g, ids["u"], ids["p1"])
	if err != nil {
		t.Fatal(err)
	}
	if dis.Graph.Signature() == sig0 {
		t.Fatal("distribution should change the signature")
	}
	preds := dis.Graph.Providers(ids["u"])
	fac, err := Factorize(dis.Graph, ids["u"], preds[0], preds[1])
	if err != nil {
		t.Fatal(err)
	}
	if fac.Graph.Signature() != sig0 {
		t.Errorf("round trip signature = %q, want %q", fac.Graph.Signature(), sig0)
	}
}

func TestDistributeAggregationRejected(t *testing.T) {
	schema := data.Schema{"K", "V"}
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.4)
	g, ids := forked(t, schema, templates.NotNull(0.9, "K"), templates.NotNull(0.9, "K"), agg)
	_, err := Distribute(g, ids["u"], ids["p1"])
	if err == nil || !IsRejection(err) {
		t.Fatalf("aggregation must not distribute over a union, got %v", err)
	}
}

func TestDistributeRequiresAdjacency(t *testing.T) {
	schema := data.Schema{"K", "V"}
	g, ids := forked(t, schema, templates.NotNull(0.9, "K"), templates.NotNull(0.9, "K"),
		templates.NotNull(0.95, "V"), threshold("V", 50))
	// p2 (the filter) is not adjacent to the union.
	_, err := Distribute(g, ids["u"], ids["p2"])
	if err == nil || !IsRejection(err) {
		t.Fatalf("distribution requires direct adjacency, got %v", err)
	}
}

func TestMergeAndSplitRoundTrip(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B"}, threshold("A", 1), threshold("B", 2))
	sig0 := g.Signature()

	mer, err := Merge(g, ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	mg := mer.Graph
	if len(mg.Activities()) != 1 {
		t.Fatalf("merged graph has %d activities", len(mg.Activities()))
	}
	m := mg.Node(mg.Activities()[0])
	if m.Act.Sem.Op != workflow.OpMerged || len(m.Act.Sem.Components) != 2 {
		t.Fatalf("merged activity malformed: %v", m.Act.Sem)
	}
	if m.Act.Sel != 0.25 {
		t.Errorf("merged selectivity = %v, want product 0.25", m.Act.Sel)
	}

	spl, err := Split(mg, m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if spl.Graph.Signature() != sig0 {
		t.Errorf("merge+split signature = %q, want %q", spl.Graph.Signature(), sig0)
	}
}

func TestMergeThreeThenSplitHeadFirst(t *testing.T) {
	// a+b+c splits as a and b+c (§3.3).
	g, ids := chain(t, data.Schema{"A", "B", "C"},
		threshold("A", 1), threshold("B", 2), threshold("C", 3))
	m1, err := Merge(g, ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	mID := m1.Graph.Activities()[0]
	// Find the merged node (the other activity is ids[2]).
	for _, id := range m1.Graph.Activities() {
		if m1.Graph.Node(id).Act.Sem.Op == workflow.OpMerged {
			mID = id
		}
	}
	m2, err := Merge(m1.Graph, mID, ids[2])
	if err != nil {
		t.Fatal(err)
	}
	var tri workflow.NodeID
	for _, id := range m2.Graph.Activities() {
		if m2.Graph.Node(id).Act.Sem.Op == workflow.OpMerged {
			tri = id
		}
	}
	if comps := m2.Graph.Node(tri).Act.Sem.Components; len(comps) != 3 {
		t.Fatalf("triple merge has %d components", len(comps))
	}
	spl, err := Split(m2.Graph, tri)
	if err != nil {
		t.Fatal(err)
	}
	// After one split: a plain head plus a 2-component package.
	var found bool
	for _, id := range spl.Graph.Activities() {
		if a := spl.Graph.Node(id).Act; a.Sem.Op == workflow.OpMerged {
			if len(a.Sem.Components) != 2 {
				t.Errorf("tail package has %d components, want 2", len(a.Sem.Components))
			}
			found = true
		}
	}
	if !found {
		t.Error("split should leave a packaged tail")
	}
}

func TestSplitAll(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B", "C"},
		threshold("A", 1), threshold("B", 2), threshold("C", 3))
	sig0 := g.Signature()
	m1, _ := Merge(g, ids[0], ids[1])
	var mID workflow.NodeID
	for _, id := range m1.Graph.Activities() {
		if m1.Graph.Node(id).Act.Sem.Op == workflow.OpMerged {
			mID = id
		}
	}
	m2, err := Merge(m1.Graph, mID, ids[2])
	if err != nil {
		t.Fatal(err)
	}
	flat, err := SplitAll(m2.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Signature() != sig0 {
		t.Errorf("SplitAll signature = %q, want %q", flat.Signature(), sig0)
	}
	for _, id := range flat.Activities() {
		if flat.Node(id).Act.Sem.Op == workflow.OpMerged {
			t.Error("SplitAll left a merged activity")
		}
	}
}

func TestMergedActivityBlocksInsertion(t *testing.T) {
	// The point of MER: a merged pair acts as one unit, so a third
	// activity cannot swap in between — swapping with the package moves
	// both components together.
	g, ids := chain(t, data.Schema{"A", "B", "C"},
		threshold("A", 1), threshold("B", 2), threshold("C", 3))
	m, err := Merge(g, ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	var mID workflow.NodeID
	for _, id := range m.Graph.Activities() {
		if m.Graph.Node(id).Act.Sem.Op == workflow.OpMerged {
			mID = id
		}
	}
	res, err := Swap(m.Graph, mID, ids[2])
	if err != nil {
		t.Fatalf("package should swap as a unit: %v", err)
	}
	// After the swap, σ(C) precedes the package, whose components remain
	// adjacent.
	order, _ := res.Graph.TopoSort()
	var seq []workflow.NodeID
	for _, id := range order {
		if res.Graph.Node(id).Kind == workflow.KindActivity {
			seq = append(seq, id)
		}
	}
	if len(seq) != 2 || seq[0] != ids[2] || seq[1] != mID {
		t.Errorf("activity order after package swap = %v", seq)
	}
}

func TestShiftForwardAndBackward(t *testing.T) {
	schema := data.Schema{"K", "V", "W"}
	g, ids := forked(t, schema,
		templates.NotNull(0.9, "K"), templates.NotNull(0.9, "K"),
		templates.NotNull(0.95, "V"), threshold("W", 10), threshold("V", 50))
	// p3 = σ(V≥50) sits two activities after the union; shifting backward
	// should make it adjacent.
	res, err := ShiftBackward(g, ids["p3"], ids["u"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 2 {
		t.Errorf("Swaps = %d, want 2", res.Swaps)
	}
	if got := res.Graph.Providers(ids["p3"]); len(got) != 1 || got[0] != ids["u"] {
		t.Errorf("after shift, providers = %v", got)
	}
	// And shifting it forward again to the target-side end.
	if !CanShiftBackward(g, ids["p3"], ids["u"]) {
		t.Error("CanShiftBackward = false")
	}
	if CanShiftBackward(g, ids["p3"], ids["tgt"]) {
		t.Error("shifting to a non-provider should fail")
	}
}

func TestShiftForwardBlocked(t *testing.T) {
	// A conversion cannot shift forward across a selection on its output.
	conv := templates.Convert("dollar2euro", "E", "D")
	sigmaE := threshold("E", 10)
	g, ids := chain(t, data.Schema{"D"}, conv, sigmaE)
	// Try to shift conv to the target — blocked by the dependent filter.
	_, err := ShiftForward(g, ids[0], ids[1])
	// ids[1] is the filter itself; shifting "to" it means ending adjacent,
	// which conv already is — so use the consumer beyond.
	if err != nil {
		t.Fatalf("conv is already adjacent to the filter: %v", err)
	}
	tgt := g.Consumers(ids[1])[0]
	if _, err := ShiftForward(g, ids[0], tgt); err == nil {
		t.Error("shifting a conversion across its dependent filter should fail")
	}
}
