package transitions

import (
	"fmt"

	"etlopt/internal/workflow"
)

// ShiftResult records a sequence of swaps that moved an activity through
// its local group.
type ShiftResult struct {
	// Graph is the final state with the activity in place.
	Graph *workflow.Graph
	// Swaps counts the SWA transitions applied (each is a generated state).
	Swaps int
	// Applied records each applied swap structurally, in order.
	Applied []Applied
}

// ShiftForward implements the HS algorithm's ShiftFrw(a, ab) test (§4.2,
// Phase II): it attempts to move unary activity a forward (towards the
// sinks) through consecutive swaps until it becomes an immediate provider
// of the binary activity ab. It returns the resulting state and the number
// of swap-generated intermediate states, or a rejection if some swap on the
// way is illegal.
func ShiftForward(g *workflow.Graph, a, ab workflow.NodeID) (*ShiftResult, error) {
	cur := g
	res := &ShiftResult{Graph: g}
	for steps := 0; ; steps++ {
		if steps > cur.Len() {
			return nil, fmt.Errorf("transitions: shift-forward of %d did not terminate", a)
		}
		succs := cur.Consumers(a)
		if len(succs) != 1 {
			return nil, reject("SWA", "activity %d has %d consumers during shift", a, len(succs))
		}
		next := succs[0]
		if next == ab {
			res.Graph = cur
			return res, nil
		}
		nn := cur.Node(next)
		if nn.Kind != workflow.KindActivity || nn.Act.IsBinary() {
			return nil, reject("SWA", "activity %d blocked by non-swappable node %d on the way to %d", a, next, ab)
		}
		r, err := Swap(cur, a, next)
		if err != nil {
			return nil, err
		}
		cur = r.Graph
		res.Swaps++
		res.Applied = append(res.Applied, r.Applied)
		res.Graph = cur
	}
}

// ShiftBackward implements ShiftBkw(a, ab) (§4.2, Phase III): it attempts
// to move unary activity a backward (towards the sources) through
// consecutive swaps until it is fed directly by the binary activity ab.
func ShiftBackward(g *workflow.Graph, a, ab workflow.NodeID) (*ShiftResult, error) {
	cur := g
	res := &ShiftResult{Graph: g}
	for steps := 0; ; steps++ {
		if steps > cur.Len() {
			return nil, fmt.Errorf("transitions: shift-backward of %d did not terminate", a)
		}
		preds := cur.Providers(a)
		if len(preds) != 1 {
			return nil, reject("SWA", "activity %d has %d providers during shift", a, len(preds))
		}
		prev := preds[0]
		if prev == ab {
			res.Graph = cur
			return res, nil
		}
		pn := cur.Node(prev)
		if pn.Kind != workflow.KindActivity || pn.Act.IsBinary() {
			return nil, reject("SWA", "activity %d blocked by non-swappable node %d on the way to %d", a, prev, ab)
		}
		r, err := Swap(cur, prev, a)
		if err != nil {
			return nil, err
		}
		cur = r.Graph
		res.Swaps++
		res.Applied = append(res.Applied, r.Applied)
		res.Graph = cur
	}
}

// CanShiftForward reports whether ShiftForward would succeed, without
// keeping the intermediate states.
func CanShiftForward(g *workflow.Graph, a, ab workflow.NodeID) bool {
	_, err := ShiftForward(g, a, ab)
	return err == nil
}

// CanShiftBackward reports whether ShiftBackward would succeed.
func CanShiftBackward(g *workflow.Graph, a, ab workflow.NodeID) bool {
	_, err := ShiftBackward(g, a, ab)
	return err == nil
}
