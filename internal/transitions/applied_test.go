package transitions

import (
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// TestFactorizeMismatchedFunctionalityRejected: two activities with the
// same operation (equal semantics strings) but different functionality
// schemata are SameOperation yet not Homologous — the FAC guard must
// reject them.
func TestFactorizeMismatchedFunctionalityRejected(t *testing.T) {
	schema := data.Schema{"K", "V"}
	a1 := threshold("V", 50)
	a2 := threshold("V", 50)
	a2.Fun = append(a2.Fun.Clone(), "K") // same predicate, wider functionality
	if !a1.SameOperation(a2) {
		t.Fatal("test setup: operations should match")
	}
	if a1.Homologous(a2) {
		t.Fatal("test setup: activities should not be homologous")
	}
	g, ids := forked(t, schema, a1, a2)
	if _, err := Factorize(g, ids["u"], ids["a1"], ids["a2"]); err == nil || !IsRejection(err) {
		t.Fatalf("mismatched functionality schemata must reject factorization, got %v", err)
	}
}

// TestFactorizeMismatchedGenerationRejected: equal operations whose
// generated schemata disagree must not factorize either.
func TestFactorizeMismatchedGenerationRejected(t *testing.T) {
	schema := data.Schema{"K", "V"}
	a1 := threshold("V", 50)
	a2 := threshold("V", 50)
	a2.Gen = append(a2.Gen.Clone(), "AUDIT") // phantom generated attribute
	if a1.Homologous(a2) {
		t.Fatal("test setup: activities should not be homologous")
	}
	g := workflow.NewGraph()
	ids := map[string]workflow.NodeID{}
	ids["s1"] = g.AddRecordset(&workflow.RecordsetRef{Name: "S1", Schema: schema, Rows: 1000, IsSource: true})
	ids["s2"] = g.AddRecordset(&workflow.RecordsetRef{Name: "S2", Schema: schema, Rows: 1000, IsSource: true})
	ids["a1"] = g.AddActivity(a1)
	ids["a2"] = g.AddActivity(a2)
	ids["u"] = g.AddActivity(templates.Union())
	g.MustAddEdge(ids["s1"], ids["a1"])
	g.MustAddEdge(ids["s2"], ids["a2"])
	g.MustAddEdge(ids["a1"], ids["u"])
	g.MustAddEdge(ids["a2"], ids["u"])
	ids["tgt"] = g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: schema, IsTarget: true})
	g.MustAddEdge(ids["u"], ids["tgt"])
	if _, err := Factorize(g, ids["u"], ids["a1"], ids["a2"]); err == nil || !IsRejection(err) {
		t.Fatalf("mismatched generated schemata must reject factorization, got %v", err)
	}
}

// TestApplyRoundTripsMergeSplit drives MER and SPL through the Applied
// dispatcher (the trace-replay path) and checks the round trip restores
// the original signature.
func TestApplyRoundTripsMergeSplit(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B"}, threshold("A", 1), threshold("B", 2))
	sig0 := g.Signature()

	mer, err := Apply(g, Applied{Op: "MER", Args: [3]workflow.NodeID{ids[0], ids[1]}, NArgs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mer.Applied.Op != "MER" || mer.Applied.NArgs != 2 {
		t.Fatalf("merge result carries %+v", mer.Applied)
	}
	var mID workflow.NodeID = -1
	for _, id := range mer.Graph.Activities() {
		if mer.Graph.Node(id).Act.Sem.Op == workflow.OpMerged {
			mID = id
		}
	}
	if mID < 0 {
		t.Fatal("no merged activity after MER")
	}
	spl, err := Apply(mer.Graph, Applied{Op: "SPL", Args: [3]workflow.NodeID{mID}, NArgs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := spl.Graph.Signature(); got != sig0 {
		t.Errorf("MER+SPL signature = %q, want %q", got, sig0)
	}
}

// TestApplyValidation: unknown ops and wrong arities are rejected, not
// dispatched.
func TestApplyValidation(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B"}, threshold("A", 1), threshold("B", 2))
	if _, err := Apply(g, Applied{Op: "XXX", NArgs: 2}); err == nil {
		t.Error("unknown op must be rejected")
	}
	if _, err := Apply(g, Applied{Op: "SWA", Args: [3]workflow.NodeID{ids[0]}, NArgs: 1}); err == nil {
		t.Error("SWA with one argument must be rejected")
	}
}

// TestResultCarriesApplied: every transition's Result records the
// structured call that produced it, matching its description.
func TestResultCarriesApplied(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B"}, threshold("A", 1), threshold("B", 2))
	res, err := Swap(g, ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	a := res.Applied
	if a.Op != "SWA" || a.NArgs != 2 || a.Args[0] != ids[0] || a.Args[1] != ids[1] {
		t.Errorf("swap applied = %+v", a)
	}
	if a.Desc != res.Description {
		t.Errorf("desc %q != description %q", a.Desc, res.Description)
	}
	if got := a.ArgIDs(); len(got) != 2 || got[0] != ids[0] {
		t.Errorf("ArgIDs = %v", got)
	}
}
