package transitions

import (
	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// semanticGuard enforces the template-level swap constraints that the
// paper's schema-subset conditions (3) and (4) cannot express. The paper
// delegates these to the template library ([18], [19]): every template
// carries fixed semantics, and the designer "dictates in advance" how it
// may commute. Concretely, for the templates shipped here:
//
//   - value-sensitive activities (selections, scalar functions, surrogate
//     keys, lookup-based key checks) must not cross an in-place
//     transformation of an attribute they inspect — σ(DATE='…') before and
//     after A2E(DATE) read different formats. Not-null checks are exempt:
//     in-place functions are NULL-preserving by contract;
//   - duplicate-sensitive activities (DISTINCT, group-based primary-key
//     checks, aggregations) only cross record-injective transformations,
//     and grouping activities only cross in-place functions that are
//     bijections (A2E may swap with γ because the date reformat is a
//     bijection on groupers; round() may not);
//   - selections cross an aggregation only when they inspect grouper
//     attributes exclusively (filtering whole groups commutes);
//   - two duplicate-sensitive activities never swap, and DISTINCT never
//     crosses a projection (projections create new duplicates).
//
// The guard is symmetric: it inspects the unordered pair.
func semanticGuard(a, b *workflow.Activity) error {
	if err := guardOneWay(a, b); err != nil {
		return err
	}
	return guardOneWay(b, a)
}

// guardOneWay checks the constraints that activity x imposes on swapping
// with activity y.
func guardOneWay(x, y *workflow.Activity) error {
	const name = "SWA"
	switch x.Sem.Op {
	case workflow.OpAggregate:
		switch y.Sem.Op {
		case workflow.OpAggregate, workflow.OpDistinct:
			return reject(name, "%s and %s are both duplicate-sensitive", x.Sem.Op, y.Sem.Op)
		case workflow.OpPKCheck:
			if groupBasedPK(y) {
				return reject(name, "aggregation cannot cross a group-based key check")
			}
			if !groupers(x).HasAll(y.Fun) {
				return reject(name, "key check on non-grouper attributes cannot cross aggregation")
			}
		case workflow.OpFilter, workflow.OpNotNull:
			if !groupers(x).HasAll(y.Fun) {
				return reject(name, "selection on non-grouper attributes {%s} cannot cross aggregation", y.Fun)
			}
		case workflow.OpFunc:
			if y.InPlace() && !algebra.IsBijective(y.Sem.Fn) {
				return reject(name, "non-bijective in-place %s cannot cross aggregation", y.Sem.Fn)
			}
		}
	case workflow.OpDistinct:
		switch y.Sem.Op {
		case workflow.OpProject:
			return reject(name, "DISTINCT cannot cross a projection (projections create duplicates)")
		case workflow.OpFunc:
			if !recordInjective(y) {
				return reject(name, "DISTINCT cannot cross non-injective %s", y.Sem.Fn)
			}
		case workflow.OpPKCheck:
			if groupBasedPK(y) {
				return reject(name, "DISTINCT cannot cross a group-based key check")
			}
		}
	case workflow.OpPKCheck:
		if !groupBasedPK(x) {
			break // lookup-based checks behave like per-row filters
		}
		switch y.Sem.Op {
		case workflow.OpFilter, workflow.OpNotNull:
			return reject(name, "group-based key check cannot cross a selective activity")
		case workflow.OpDistinct, workflow.OpAggregate:
			return reject(name, "group-based key check cannot cross %s", y.Sem.Op)
		case workflow.OpPKCheck:
			if !x.SameOperation(y) {
				return reject(name, "two different group-based key checks cannot swap")
			}
		case workflow.OpFunc:
			if y.InPlace() && keysOf(x).Has(y.Sem.OutAttr) && !algebra.IsBijective(y.Sem.Fn) {
				return reject(name, "non-bijective in-place %s on key attribute cannot cross key check", y.Sem.Fn)
			}
		}
	case workflow.OpFunc:
		if attr, ok := inPlaceAttr(x); ok {
			if valueSensitive(y) && y.Fun.Has(attr) {
				return reject(name,
					"%s inspects %q, which in-place %s transforms", y.Sem.Op, attr, x.Sem.Fn)
			}
		}
	case workflow.OpMerged:
		// A merged package commutes only if each component does.
		for _, comp := range x.Sem.Components {
			if err := guardOneWay(comp, y); err != nil {
				return err
			}
			if err := guardOneWay(y, comp); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupers returns an aggregation's grouping attributes as a schema.
func groupers(a *workflow.Activity) data.Schema { return data.Schema(a.Sem.Attrs) }

// keysOf returns a key check's key attributes as a schema.
func keysOf(a *workflow.Activity) data.Schema { return data.Schema(a.Sem.Attrs) }

// groupBasedPK reports whether a primary-key check detects duplicates
// within its own input (duplicate-sensitive) rather than against a lookup
// recordset (per-row).
func groupBasedPK(a *workflow.Activity) bool {
	return a.Sem.Op == workflow.OpPKCheck && a.Sem.Lookup == ""
}

// inPlaceAttr returns the attribute transformed by an in-place function
// activity.
func inPlaceAttr(a *workflow.Activity) (string, bool) {
	if a.Sem.Op == workflow.OpFunc && a.InPlace() {
		return a.Sem.OutAttr, true
	}
	return "", false
}

// valueSensitive reports whether the activity's semantics depend on the
// concrete values (format) of the attributes in its functionality schema —
// as opposed to activities that only inspect NULL-ness (not-null checks)
// or group identity (aggregations and duplicate checks, which tolerate
// bijective re-encodings and are guarded separately).
func valueSensitive(a *workflow.Activity) bool {
	switch a.Sem.Op {
	case workflow.OpFilter, workflow.OpFunc, workflow.OpSurrogateKey:
		return true
	case workflow.OpPKCheck:
		return !groupBasedPK(a) // lookup-based checks compare stored values
	case workflow.OpMerged:
		for _, comp := range a.Sem.Components {
			if valueSensitive(comp) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// recordInjective reports whether a function activity maps distinct input
// records to distinct output records, which is what duplicate-sensitive
// activities need in order to commute with it. Functions that keep their
// argument attributes are always record-injective; converting and in-place
// functions are injective exactly when the registered function is a
// bijection (only single-argument functions can be registered bijective in
// a meaningful way, so multi-argument converting functions are
// conservatively non-injective).
func recordInjective(a *workflow.Activity) bool {
	if a.Sem.Op != workflow.OpFunc {
		return false
	}
	if !a.InPlace() && !a.Sem.DropArgs {
		return true
	}
	return len(a.Sem.FnArgs) == 1 && algebra.IsBijective(a.Sem.Fn)
}
