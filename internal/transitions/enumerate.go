package transitions

import (
	"etlopt/internal/workflow"
)

// Enumerate returns every transition applicable to the state, each already
// applied to a fresh clone: all legal swaps of adjacent unary pairs within
// local groups, all factorizations of homologous pairs adjacent to their
// binary activity, and all distributions of activities fed directly by a
// binary. This is the successor function of the exhaustive search's state
// space (§2.2); merges are excluded because MER/SPL never change a state's
// cost, only the search's granularity.
func Enumerate(g *workflow.Graph) []*Result {
	var out []*Result
	for _, grp := range g.LocalGroups() {
		for i := 0; i+1 < len(grp); i++ {
			if res, err := Swap(g, grp[i], grp[i+1]); err == nil {
				out = append(out, res)
			}
		}
	}
	for _, hp := range g.FindHomologousPairs() {
		if adjacentToBinary(g, hp.A, hp.Binary) && adjacentToBinary(g, hp.B, hp.Binary) {
			if res, err := Factorize(g, hp.Binary, hp.A, hp.B); err == nil {
				out = append(out, res)
			}
		}
	}
	for _, da := range g.FindDistributableActivities() {
		if preds := g.Providers(da.Activity); len(preds) == 1 && preds[0] == da.Binary {
			if res, err := Distribute(g, da.Binary, da.Activity); err == nil {
				out = append(out, res)
			}
		}
	}
	return out
}

// adjacentToBinary reports whether a's single consumer is the binary ab.
func adjacentToBinary(g *workflow.Graph, a, ab workflow.NodeID) bool {
	succs := g.Consumers(a)
	return len(succs) == 1 && succs[0] == ab
}
