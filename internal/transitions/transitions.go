// Package transitions implements the five state transitions of §2.2 —
// Swap (SWA), Factorize (FAC), Distribute (DIS), Merge (MER) and Split
// (SPL) — together with their applicability rules (§3.3). Every transition
// derives a copy-on-write child of the input workflow (workflow.Graph's
// Mutate), rewrites only the local neighborhood of the transition site,
// regenerates the affected schemata and verifies their well-formedness, so
// a successful Result always carries a valid equivalent state while
// structurally sharing everything the rewrite did not touch; an illegal
// application returns a *Rejection error describing which rule fired.
package transitions

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"etlopt/internal/workflow"
)

// Rejection reports that a transition is not applicable to the given state.
// It is an expected outcome during search, distinct from programming or
// graph-corruption errors.
type Rejection struct {
	Transition string
	Reason     string
}

// Error implements error.
func (r *Rejection) Error() string {
	return fmt.Sprintf("%s rejected: %s", r.Transition, r.Reason)
}

// IsRejection reports whether err is (or wraps) a transition rejection.
func IsRejection(err error) bool {
	var r *Rejection
	return errors.As(err, &r)
}

func reject(transition, format string, args ...interface{}) error {
	return &Rejection{Transition: transition, Reason: fmt.Sprintf(format, args...)}
}

// Applied identifies an applied transition structurally: the operation
// mnemonic and the node IDs it was invoked with, in call order. Node IDs
// are deterministic (clones inherit the ID counter), so a recorded
// sequence of Applied values replayed against the same initial workflow
// reproduces the exact derivation — the basis of offline trace auditing.
// Args is a fixed-size array so recording allocates nothing beyond the
// Result itself.
type Applied struct {
	// Op is the transition mnemonic: SWA, FAC, DIS, MER or SPL.
	Op string
	// Args[:NArgs] are the node IDs the transition was invoked with:
	// SWA(a1,a2), FAC(ab,a1,a2), DIS(ab,a), MER(a1,a2), SPL(a).
	Args  [3]workflow.NodeID
	NArgs int
	// Desc is the paper-notation description, e.g. "SWA(5,6)".
	Desc string
}

// ArgIDs returns the call arguments as a freshly allocated slice.
func (a Applied) ArgIDs() []workflow.NodeID {
	return append([]workflow.NodeID(nil), a.Args[:a.NArgs]...)
}

// Result is a successfully derived state.
type Result struct {
	// Graph is the derived workflow, schemata regenerated and checked.
	Graph *workflow.Graph
	// Dirty lists the nodes the rewrite touched; cost evaluation only needs
	// to recompute these and their descendants (§4.1 semi-incremental
	// costing).
	Dirty []workflow.NodeID
	// Description names the transition in the paper's notation, e.g.
	// "SWA(5,6)".
	Description string
	// Applied records the transition structurally for replay and audit.
	Applied Applied
	// SigOld/SigNew describe the rewrite's effect on the state signature
	// (§4.1) as a local segment replacement: the parent signature contains
	// the dot-joined run SigOld exactly where the rewrite happened, and
	// the derived state renders SigNew there instead. Both are empty for
	// transitions that restructure branches (FAC, DIS) rather than a
	// single chain segment; callers then re-render the signature in full.
	// See workflow.SpliceSignature for the soundness conditions.
	SigOld, SigNew string
}

// finish regenerates schemata on the rewritten clone (incrementally from
// the dirty nodes) and verifies well-formedness of every recomputed node,
// converting violations into rejections of the named transition. The
// well-formedness check is what enforces the paper's swap conditions (3)
// and (4) "after the swapping".
func finish(name string, g *workflow.Graph, dirty []workflow.NodeID, applied Applied) (*Result, error) {
	recomputed, err := g.RegenerateSchemataIncremental(dirty)
	if err != nil {
		return nil, reject(name, "schema regeneration failed: %v", err)
	}
	if err := g.CheckWellFormedNodes(recomputed); err != nil {
		return nil, reject(name, "resulting state ill-formed: %v", err)
	}
	if workflow.DebugCOW {
		// `-tags etldebug`: audit the copy-on-write discipline after every
		// rewrite — the derived graph must be internally consistent and the
		// parent it structurally shares with must be untouched.
		if err := g.CheckIntegrity(); err != nil {
			panic(fmt.Sprintf("transitions: %s corrupted the derived graph: %v", name, err))
		}
		g.DebugVerifySharing()
	}
	return &Result{Graph: g, Dirty: dirty, Description: applied.Desc, Applied: applied}, nil
}

func applied1(op string, desc string, a workflow.NodeID) Applied {
	return Applied{Op: op, Args: [3]workflow.NodeID{a}, NArgs: 1, Desc: desc}
}

func applied2(op string, desc string, a, b workflow.NodeID) Applied {
	return Applied{Op: op, Args: [3]workflow.NodeID{a, b}, NArgs: 2, Desc: desc}
}

func applied3(op string, desc string, a, b, c workflow.NodeID) Applied {
	return Applied{Op: op, Args: [3]workflow.NodeID{a, b, c}, NArgs: 3, Desc: desc}
}

// Apply replays a recorded transition against g, dispatching on the
// mnemonic. It is the audit-side inverse of recording: the same
// applicability guards run again, so a corrupted or illegal record is
// rejected exactly as it would have been during search.
func Apply(g *workflow.Graph, a Applied) (*Result, error) {
	argc := map[string]int{"SWA": 2, "FAC": 3, "DIS": 2, "MER": 2, "SPL": 1}[a.Op]
	if argc == 0 {
		return nil, fmt.Errorf("transitions: unknown operation %q", a.Op)
	}
	if a.NArgs != argc {
		return nil, fmt.Errorf("transitions: %s expects %d node arguments, got %d", a.Op, argc, a.NArgs)
	}
	switch a.Op {
	case "SWA":
		return Swap(g, a.Args[0], a.Args[1])
	case "FAC":
		return Factorize(g, a.Args[0], a.Args[1], a.Args[2])
	case "DIS":
		return Distribute(g, a.Args[0], a.Args[1])
	case "MER":
		return Merge(g, a.Args[0], a.Args[1])
	default:
		return Split(g, a.Args[0])
	}
}

func contains(ids []workflow.NodeID, id workflow.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Swap applies SWA(a1,a2): two adjacent unary activities interchange their
// position in the graph (Fig. 3a). Applicability follows §3.3:
//
//  1. a1 and a2 are adjacent (a1 provides a2);
//  2. both have a single input and output schema and their output has
//     exactly one consumer;
//  3. the functionality schema of each is a subset of its input schema both
//     before and after the swap (the Fig. 5 rejection: σ(€) cannot precede
//     $2€) — enforced by re-checking the regenerated state;
//  4. the input schemata remain subsets of their providers' outputs both
//     before and after (the Fig. 6 rejection: a projected-out attribute
//     loses its declared provider) — likewise enforced after regeneration;
//
// plus the template-level semantic constraints the paper delegates to the
// template library (see semanticGuard): value-sensitive activities do not
// cross in-place transformations of attributes they inspect, and
// duplicate-sensitive activities only cross record-injective ones.
func Swap(g *workflow.Graph, a1, a2 workflow.NodeID) (*Result, error) {
	const name = "SWA"
	n1, n2 := g.Node(a1), g.Node(a2)
	if n1 == nil || n2 == nil {
		return nil, fmt.Errorf("transitions: swap of unknown node (%d,%d)", a1, a2)
	}
	if n1.Kind != workflow.KindActivity || n2.Kind != workflow.KindActivity {
		return nil, reject(name, "both nodes must be activities")
	}
	if n1.Act.IsBinary() || n2.Act.IsBinary() {
		return nil, reject(name, "swap concerns only unary activities")
	}
	if !contains(g.Consumers(a1), a2) {
		return nil, reject(name, "activities %d and %d are not adjacent", a1, a2)
	}
	if len(g.Consumers(a1)) != 1 || len(g.Consumers(a2)) != 1 {
		return nil, reject(name, "output schema must have exactly one consumer")
	}
	if len(g.Providers(a1)) != 1 || len(g.Providers(a2)) != 1 {
		return nil, reject(name, "both activities must have a single input")
	}
	if err := semanticGuard(n1.Act, n2.Act); err != nil {
		return nil, err
	}

	c := g.Mutate()
	p := c.Providers(a1)[0]
	consumer := c.Consumers(a2)[0]
	// p→a1→a2→consumer becomes p→a2→a1→consumer. Each rewiring preserves
	// provider positions, so binary consumers keep their input ordering.
	c.MustReplaceProvider(consumer, a2, a1)
	c.MustReplaceProvider(a1, p, a2)
	c.MustReplaceProvider(a2, a1, p)

	desc := fmt.Sprintf("SWA(%s,%s)", n1.Act.Tag, n2.Act.Tag)
	res, err := finish(name, c, []workflow.NodeID{a1, a2}, applied2(name, desc, a1, a2))
	if err != nil {
		return nil, err
	}
	res.SigOld = n1.Act.Tag + "." + n2.Act.Tag
	res.SigNew = n2.Act.Tag + "." + n1.Act.Tag
	return res, nil
}

// combineTags merges the signature tags of factorized activities: equal
// tags (DIS clones being re-factorized) collapse to the original tag, so
// the state regains its pre-distribution signature; distinct tags join
// canonically.
func combineTags(t1, t2 string) string {
	if t1 == t2 {
		return t1
	}
	ts := []string{t1, t2}
	sort.Strings(ts)
	return strings.Join(ts, "&")
}

// Factorize applies FAC(ab,a1,a2): two homologous activities a1 and a2
// feeding the binary activity ab are replaced by a single new activity a
// placed right after ab (Fig. 3b, upward). Per §3.3, a1 and a2 must perform
// the same operation in terms of algebraic expression and have ab as their
// common consumer; the full homologous definition (§3.2) additionally
// requires identical functionality, generated and projected-out schemata.
// As a correctness guard, the factorized operation must also be one that
// legally distributes over ab (Factorize and Distribute are reciprocal).
func Factorize(g *workflow.Graph, ab, a1, a2 workflow.NodeID) (*Result, error) {
	const name = "FAC"
	nb, n1, n2 := g.Node(ab), g.Node(a1), g.Node(a2)
	if nb == nil || n1 == nil || n2 == nil {
		return nil, fmt.Errorf("transitions: factorize of unknown node (%d,%d,%d)", ab, a1, a2)
	}
	if nb.Kind != workflow.KindActivity || !nb.Act.IsBinary() {
		return nil, reject(name, "node %d is not a binary activity", ab)
	}
	if a1 == a2 {
		return nil, reject(name, "cannot factorize an activity with itself")
	}
	for _, id := range []workflow.NodeID{a1, a2} {
		n := g.Node(id)
		if n.Kind != workflow.KindActivity || n.Act.IsBinary() {
			return nil, reject(name, "node %d is not a unary activity", id)
		}
		if len(g.Consumers(id)) != 1 || g.Consumers(id)[0] != ab {
			return nil, reject(name, "activity %d is not an immediate provider of %d", id, ab)
		}
		if len(g.Providers(id)) != 1 {
			return nil, reject(name, "activity %d must have a single provider", id)
		}
	}
	preds := g.Providers(ab)
	if len(preds) != 2 || !contains(preds, a1) || !contains(preds, a2) {
		return nil, reject(name, "%d and %d must be the two providers of %d", a1, a2, ab)
	}
	if !n1.Act.Homologous(n2.Act) {
		return nil, reject(name, "activities %d and %d are not homologous", a1, a2)
	}
	if !workflow.CanDistributeOver(n1.Act, nb.Act) {
		return nil, reject(name, "%s does not commute with %s", n1.Act.Sem.Op, nb.Act.Sem.Op)
	}

	c := g.Mutate()
	x1 := c.Providers(a1)[0]
	x2 := c.Providers(a2)[0]
	// Bypass a1 and a2: each edge (x,ai) becomes (x,ab) in ai's position.
	c.MustReplaceProvider(ab, a1, x1)
	c.MustReplaceProvider(ab, a2, x2)
	// Create the factorized activity a after ab.
	merged := n1.Act.Clone()
	merged.Tag = combineTags(n1.Act.Tag, n2.Act.Tag)
	na := c.AddActivity(merged)
	// Every edge (ab,y) becomes (a,y); then ab feeds a.
	for _, y := range append([]workflow.NodeID(nil), c.Consumers(ab)...) {
		c.MustReplaceProvider(y, ab, na)
	}
	c.MustAddEdge(ab, na)
	c.RemoveNode(a1)
	c.RemoveNode(a2)

	desc := fmt.Sprintf("FAC(%s,%s,%s)", nb.Act.Tag, n1.Act.Tag, n2.Act.Tag)
	return finish(name, c, []workflow.NodeID{ab, na}, applied3(name, desc, ab, a1, a2))
}

// Distribute applies DIS(ab,a): the activity a, fed directly by the binary
// activity ab, is removed and clones of it are inserted into each input
// branch of ab (Fig. 3b, downward). The operation must distribute over the
// binary operation (workflow.CanDistributeOver): selections, not-null
// checks, scalar functions, projections and surrogate keys distribute over
// a bag union; over joins, differences and intersections only
// selection-like activities keyed on the binary's key attributes do.
func Distribute(g *workflow.Graph, ab, a workflow.NodeID) (*Result, error) {
	const name = "DIS"
	nb, na := g.Node(ab), g.Node(a)
	if nb == nil || na == nil {
		return nil, fmt.Errorf("transitions: distribute of unknown node (%d,%d)", ab, a)
	}
	if nb.Kind != workflow.KindActivity || !nb.Act.IsBinary() {
		return nil, reject(name, "node %d is not a binary activity", ab)
	}
	if na.Kind != workflow.KindActivity || na.Act.IsBinary() {
		return nil, reject(name, "node %d is not a unary activity", a)
	}
	if len(g.Providers(a)) != 1 || g.Providers(a)[0] != ab {
		return nil, reject(name, "%d must be fed directly by binary %d", a, ab)
	}
	if len(g.Consumers(ab)) != 1 {
		return nil, reject(name, "binary %d must feed only %d", ab, a)
	}
	if len(g.Consumers(a)) != 1 {
		return nil, reject(name, "activity %d must have exactly one consumer", a)
	}
	if !workflow.CanDistributeOver(na.Act, nb.Act) {
		return nil, reject(name, "%s does not distribute over %s", na.Act.Sem.Op, nb.Act.Sem.Op)
	}

	c := g.Mutate()
	consumer := c.Consumers(a)[0]
	// Bypass a: ab feeds a's consumer in a's position.
	c.MustReplaceProvider(consumer, a, ab)
	// Insert one clone per input branch of ab.
	dirty := []workflow.NodeID{ab}
	for _, x := range append([]workflow.NodeID(nil), c.Providers(ab)...) {
		clone := na.Act.Clone() // keeps the tag, so FAC restores the signature
		id := c.AddActivity(clone)
		c.MustReplaceProvider(ab, x, id)
		c.MustAddEdge(x, id)
		dirty = append(dirty, id)
	}
	c.RemoveNode(a)

	desc := fmt.Sprintf("DIS(%s,%s)", nb.Act.Tag, na.Act.Tag)
	return finish(name, c, dirty, applied2(name, desc, ab, a))
}

// flattenComponents returns the activity itself, or its components if it is
// already a merged package, so merges always hold a flat component list.
func flattenComponents(a *workflow.Activity) []*workflow.Activity {
	if a.Sem.Op == workflow.OpMerged {
		return a.Sem.Components
	}
	return []*workflow.Activity{a}
}

// makeMerged assembles the packaged activity for a component list,
// deriving the composite functionality, generated and projected-out
// schemata and the product selectivity. Per §3.3, the package's input
// requirements are the first component's plus whatever later components
// need that earlier ones do not generate.
func makeMerged(comps []*workflow.Activity) *workflow.Activity {
	cloned := make([]*workflow.Activity, len(comps))
	for i, a := range comps {
		cloned[i] = a.Clone()
	}
	fun := cloned[0].Fun.Clone()
	gen := cloned[0].Gen.Clone()
	prj := cloned[0].PrjOut.Clone()
	req := cloned[0].RequiredIn.Clone()
	sel := cloned[0].Sel
	names := []string{cloned[0].Name}
	tags := []string{cloned[0].Tag}
	for _, a := range cloned[1:] {
		fun = fun.Union(a.Fun.Minus(gen))
		req = req.Union(a.RequiredIn.Minus(gen))
		gen = gen.Minus(a.PrjOut).Union(a.Gen)
		prj = prj.Union(a.PrjOut.Minus(gen))
		sel *= a.Sel
		names = append(names, a.Name)
		tags = append(tags, a.Tag)
	}
	return &workflow.Activity{
		Name:       strings.Join(names, "+"),
		Tag:        strings.Join(tags, "+"),
		Sem:        workflow.Semantics{Op: workflow.OpMerged, Components: cloned},
		Fun:        fun,
		Gen:        gen,
		PrjOut:     prj,
		RequiredIn: req,
		Sel:        sel,
	}
}

// Merge applies MER(a1+2,a1,a2): two adjacent unary activities are packaged
// into one (Fig. 3c) without changing their semantics. Merging proactively
// shrinks the search space: the pair can no longer be separated or
// commuted until split. Any adjacent unary pair with single consumers may
// be merged.
func Merge(g *workflow.Graph, a1, a2 workflow.NodeID) (*Result, error) {
	const name = "MER"
	n1, n2 := g.Node(a1), g.Node(a2)
	if n1 == nil || n2 == nil {
		return nil, fmt.Errorf("transitions: merge of unknown node (%d,%d)", a1, a2)
	}
	if n1.Kind != workflow.KindActivity || n2.Kind != workflow.KindActivity ||
		n1.Act.IsBinary() || n2.Act.IsBinary() {
		return nil, reject(name, "merge concerns adjacent unary activities")
	}
	if !contains(g.Consumers(a1), a2) {
		return nil, reject(name, "activities %d and %d are not adjacent", a1, a2)
	}
	if len(g.Consumers(a1)) != 1 || len(g.Consumers(a2)) != 1 {
		return nil, reject(name, "both activities must have exactly one consumer")
	}

	c := g.Mutate()
	p := c.Providers(a1)[0]
	consumer := c.Consumers(a2)[0]
	comps := append(flattenComponents(c.Node(a1).Act), flattenComponents(c.Node(a2).Act)...)
	m := makeMerged(comps)
	id := c.AddActivity(m)
	c.MustAddEdge(p, id)
	c.MustReplaceProvider(consumer, a2, id)
	c.RemoveNode(a1)
	c.RemoveNode(a2)

	desc := fmt.Sprintf("MER(%s,%s,%s)", m.Tag, n1.Act.Tag, n2.Act.Tag)
	res, err := finish(name, c, []workflow.NodeID{id}, applied2(name, desc, a1, a2))
	if err != nil {
		return nil, err
	}
	res.SigOld = n1.Act.Tag + "." + n2.Act.Tag
	res.SigNew = m.Tag
	return res, nil
}

// Split applies SPL(a1+2,a1,a2): a previously merged package is split into
// its first component and the package of the rest (a+b+c → a and b+c, per
// §3.3). Splitting a two-component package restores two plain activities.
func Split(g *workflow.Graph, id workflow.NodeID) (*Result, error) {
	const name = "SPL"
	n := g.Node(id)
	if n == nil {
		return nil, fmt.Errorf("transitions: split of unknown node %d", id)
	}
	if n.Kind != workflow.KindActivity || n.Act.Sem.Op != workflow.OpMerged {
		return nil, reject(name, "node %d is not a merged activity", id)
	}
	comps := n.Act.Sem.Components
	if len(comps) < 2 {
		return nil, reject(name, "merged activity %d has fewer than two components", id)
	}

	c := g.Mutate()
	p := c.Providers(id)[0]
	consumer := c.Consumers(id)[0]
	first := comps[0].Clone()
	var second *workflow.Activity
	if len(comps) == 2 {
		second = comps[1].Clone()
	} else {
		second = makeMerged(comps[1:])
	}
	id1 := c.AddActivity(first)
	id2 := c.AddActivity(second)
	c.MustAddEdge(p, id1)
	c.MustAddEdge(id1, id2)
	c.MustReplaceProvider(consumer, id, id2)
	c.RemoveNode(id)

	desc := fmt.Sprintf("SPL(%s,%s,%s)", n.Act.Tag, first.Tag, second.Tag)
	res, err := finish(name, c, []workflow.NodeID{id1, id2}, applied1(name, desc, id))
	if err != nil {
		return nil, err
	}
	res.SigOld = n.Act.Tag
	res.SigNew = first.Tag + "." + second.Tag
	return res, nil
}

// SplitAll repeatedly splits every merged activity until none remain —
// the post-processing step of the heuristic search ("when the application
// of the transitions has finished, we can ungroup any grouped
// activities").
func SplitAll(g *workflow.Graph) (*workflow.Graph, error) {
	cur := g
	for {
		var mergedID workflow.NodeID = -1
		for _, id := range cur.Activities() {
			if cur.Node(id).Act.Sem.Op == workflow.OpMerged {
				mergedID = id
				break
			}
		}
		if mergedID < 0 {
			return cur, nil
		}
		res, err := Split(cur, mergedID)
		if err != nil {
			return nil, err
		}
		cur = res.Graph
	}
}
