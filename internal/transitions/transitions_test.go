package transitions

import (
	"strings"
	"testing"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// chain builds SRC(schema) → acts → TGT(auto schema) and returns graph and
// the activity IDs.
func chain(t *testing.T, schema data.Schema, acts ...*workflow.Activity) (*workflow.Graph, []workflow.NodeID) {
	t.Helper()
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "SRC", Schema: schema, Rows: 1000, IsSource: true})
	cur := src
	var ids []workflow.NodeID
	for _, a := range acts {
		id := g.AddActivity(a)
		g.MustAddEdge(cur, id)
		ids = append(ids, id)
		cur = id
	}
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: data.Schema{"x"}, IsTarget: true})
	g.MustAddEdge(cur, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	// Fix the target schema to whatever the chain delivers.
	g.Node(tgt).RS.Schema = g.Node(cur).Out.Clone()
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func threshold(attr string, lim float64) *workflow.Activity {
	return templates.Threshold(attr, lim, 0.5)
}

func TestSwapTwoFilters(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B"}, threshold("A", 1), threshold("B", 2))
	res, err := Swap(g, ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	// The second filter now comes first.
	order, _ := res.Graph.TopoSort()
	pos := map[workflow.NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[ids[1]] >= pos[ids[0]] {
		t.Error("swap did not reorder the activities")
	}
	if res.Description != "SWA(2,3)" {
		t.Errorf("Description = %q", res.Description)
	}
	// The original graph is untouched.
	o, _ := g.TopoSort()
	p0 := map[workflow.NodeID]int{}
	for i, id := range o {
		p0[id] = i
	}
	if p0[ids[0]] >= p0[ids[1]] {
		t.Error("swap mutated its input graph")
	}
}

func TestSwapRejectedFunctionality(t *testing.T) {
	// Fig. 5: σ(ECOST≥100) cannot be pushed before $2€, whose output it
	// inspects — after the swap the selection's functionality schema is no
	// longer contained in its input (condition 3).
	conv := templates.Convert("dollar2euro", "ECOST", "DCOST")
	sigma := threshold("ECOST", 100)
	g, ids := chain(t, data.Schema{"K", "DCOST"}, conv, sigma)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil {
		t.Fatal("swap σ(ECOST) before $2€ must be rejected")
	}
	if !IsRejection(err) {
		t.Fatalf("want a rejection, got %v", err)
	}
}

func TestSwapRejectedProjectedOut(t *testing.T) {
	// Fig. 6: a2 is a projection dropping X; a1 declares X in its input
	// schema (RequiredIn). After the swap X has no provider (condition 4).
	a1 := templates.NotNull(0.9, "A")
	a1.RequiredIn = data.Schema{"X"}
	a2 := templates.ProjectOut("X")
	g, ids := chain(t, data.Schema{"A", "X"}, a1, a2)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("swap must be rejected when a declared input loses its provider, got %v", err)
	}
	if !strings.Contains(err.Error(), "declared input") {
		t.Errorf("rejection should cite the declared input: %v", err)
	}
	// Without the declaration, pushing the projection earlier is legal.
	b1 := templates.NotNull(0.9, "A")
	b2 := templates.ProjectOut("X")
	g2, ids2 := chain(t, data.Schema{"A", "X"}, b1, b2)
	if _, err := Swap(g2, ids2[0], ids2[1]); err != nil {
		t.Errorf("projection push without declared dependency should be legal: %v", err)
	}
}

func TestSwapAggregationWithInPlaceFunc(t *testing.T) {
	// The Fig. 2 swap: the aggregation may move before the A2E date
	// reformat because dates act as groupers and the reformat is a
	// bijection.
	a2e := templates.Reformat("a2edate", "DATE")
	agg := templates.Aggregate([]string{"K", "DATE"}, workflow.AggSum, "V", "TOTV", 0.4)
	g, ids := chain(t, data.Schema{"K", "DATE", "V"}, a2e, agg)
	if _, err := Swap(g, ids[0], ids[1]); err != nil {
		t.Errorf("A2E ↔ aggregation swap should be legal: %v", err)
	}
}

func TestSwapAggregationWithNonBijectiveInPlace(t *testing.T) {
	// upper() is not a bijection; grouping by CODE before vs after
	// upper-casing differs, so the swap must be rejected.
	up := templates.Reformat("upper", "CODE")
	agg := templates.Aggregate([]string{"CODE"}, workflow.AggSum, "V", "TOTV", 0.4)
	g, ids := chain(t, data.Schema{"CODE", "V"}, up, agg)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("non-bijective in-place reformat must not cross an aggregation, got %v", err)
	}
}

func TestSwapFilterAcrossInPlaceFuncRejected(t *testing.T) {
	// σ(DATE='01/02/2004') is format-sensitive: it must not cross
	// A2E(DATE).
	a2e := templates.Reformat("a2edate", "DATE")
	sigma := templates.Filter(algebra.Cmp{
		Op: algebra.EQ, Left: algebra.Attr{Name: "DATE"},
		Right: algebra.Const{Value: data.NewString("01/02/2004")},
	}, 0.1)
	g, ids := chain(t, data.Schema{"DATE"}, a2e, sigma)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("format-sensitive selection must not cross in-place reformat, got %v", err)
	}
}

func TestSwapNotNullAcrossInPlaceFuncAllowed(t *testing.T) {
	// Not-null checks only inspect NULL-ness; in-place functions are
	// NULL-preserving, so the swap is legal.
	a2e := templates.Reformat("a2edate", "DATE")
	nn := templates.NotNull(0.95, "DATE")
	g, ids := chain(t, data.Schema{"DATE"}, a2e, nn)
	if _, err := Swap(g, ids[0], ids[1]); err != nil {
		t.Errorf("NN should cross in-place reformat: %v", err)
	}
}

func TestSwapFilterAcrossAggregationOnGrouper(t *testing.T) {
	// σ on a grouper commutes with the aggregation (whole groups filter).
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.4)
	sigma := threshold("K", 10)
	g, ids := chain(t, data.Schema{"K", "V"}, agg, sigma)
	if _, err := Swap(g, ids[0], ids[1]); err != nil {
		t.Errorf("grouper selection should cross aggregation: %v", err)
	}
}

func TestSwapFilterAcrossAggregationOnAggregateRejected(t *testing.T) {
	// σ on the aggregated output cannot move below the aggregation —
	// condition 3, the paper's σ(€COST) vs γ case.
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.4)
	sigma := threshold("TOTV", 100)
	g, ids := chain(t, data.Schema{"K", "V"}, agg, sigma)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("selection on aggregated value must stay above γ, got %v", err)
	}
}

func TestSwapDistinctAcrossProjectionRejected(t *testing.T) {
	d := templates.Distinct(0.9)
	p := templates.ProjectOut("X")
	g, ids := chain(t, data.Schema{"A", "X"}, p, d)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("DISTINCT must not cross a projection, got %v", err)
	}
}

func TestSwapDistinctAcrossBijectiveConvertAllowed(t *testing.T) {
	d := templates.Distinct(0.9)
	conv := templates.Convert("dollar2euro", "E", "D")
	g, ids := chain(t, data.Schema{"D"}, conv, d)
	if _, err := Swap(g, ids[0], ids[1]); err != nil {
		t.Errorf("DISTINCT should cross a bijective conversion: %v", err)
	}
}

func TestSwapDistinctAcrossNonInjectiveRejected(t *testing.T) {
	d := templates.Distinct(0.9)
	rnd := templates.Convert("round", "R", "V") // rounding merges records
	g, ids := chain(t, data.Schema{"V"}, rnd, d)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("DISTINCT must not cross a non-injective conversion, got %v", err)
	}
}

func TestSwapGroupPKAcrossFilterRejected(t *testing.T) {
	pk := templates.PKCheck(0.9, "K")
	sigma := threshold("V", 10)
	g, ids := chain(t, data.Schema{"K", "V"}, pk, sigma)
	_, err := Swap(g, ids[0], ids[1])
	if err == nil || !IsRejection(err) {
		t.Fatalf("group-based key check must not cross a selection, got %v", err)
	}
	// The lookup-based variant behaves like a filter and may swap.
	pk2 := templates.PKCheckAgainst("L", 0.9, "K")
	g2, ids2 := chain(t, data.Schema{"K", "V"}, pk2, threshold("V", 10))
	if _, err := Swap(g2, ids2[0], ids2[1]); err != nil {
		t.Errorf("lookup-based key check should swap with a selection: %v", err)
	}
}

func TestSwapNonAdjacentRejected(t *testing.T) {
	g, ids := chain(t, data.Schema{"A", "B", "C"},
		threshold("A", 1), threshold("B", 2), threshold("C", 3))
	_, err := Swap(g, ids[0], ids[2])
	if err == nil || !IsRejection(err) {
		t.Fatalf("non-adjacent swap must be rejected, got %v", err)
	}
}

func TestSwapBinaryRejected(t *testing.T) {
	g := workflow.NewGraph()
	s1 := g.AddRecordset(&workflow.RecordsetRef{Name: "S1", Schema: data.Schema{"A"}, Rows: 10, IsSource: true})
	s2 := g.AddRecordset(&workflow.RecordsetRef{Name: "S2", Schema: data.Schema{"A"}, Rows: 10, IsSource: true})
	u := g.AddActivity(templates.Union())
	f := g.AddActivity(threshold("A", 1))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(s1, u)
	g.MustAddEdge(s2, u)
	g.MustAddEdge(u, f)
	g.MustAddEdge(f, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if _, err := Swap(g, u, f); err == nil || !IsRejection(err) {
		t.Fatalf("swap involving a binary activity must be rejected, got %v", err)
	}
}

func TestSwapGeneratedAttributeDependency(t *testing.T) {
	// f generates E; g consumes E: cond 3 blocks the swap.
	f := templates.Apply("dollar2euro", "E", "D")
	sigmaE := threshold("E", 10)
	g, ids := chain(t, data.Schema{"D"}, f, sigmaE)
	if _, err := Swap(g, ids[0], ids[1]); err == nil {
		t.Fatal("dependent function/selection swap must be rejected")
	}
}
