package transitions

import (
	"math/rand"
	"testing"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/equiv"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func TestSwapSKAcrossInPlaceOnKeyRejected(t *testing.T) {
	// The surrogate-key lookup stores raw key values; an in-place
	// transformation of the key attribute changes what gets probed, so the
	// pair must not swap — even though both orders type-check.
	up := templates.Reformat("upper", "K")
	sk := templates.SurrogateKey("K", "SK", "L")
	g, ids := chain(t, data.Schema{"K", "V"}, up, sk)
	if _, err := Swap(g, ids[0], ids[1]); err == nil || !IsRejection(err) {
		t.Fatalf("SK must not cross an in-place transform of its key, got %v", err)
	}
	// An in-place transform of an unrelated attribute swaps freely.
	up2 := templates.Reformat("upper", "V2")
	sk2 := templates.SurrogateKey("K", "SK", "L")
	g2, ids2 := chain(t, data.Schema{"K", "V2"}, up2, sk2)
	if _, err := Swap(g2, ids2[0], ids2[1]); err != nil {
		t.Errorf("unrelated in-place transform should swap with SK: %v", err)
	}
}

func TestSwapMergedPackageRespectsComponentGuards(t *testing.T) {
	// A package containing a value-sensitive filter must not cross an
	// in-place transform of the filtered attribute.
	datePred := algebra.Cmp{
		Op:    algebra.EQ,
		Left:  algebra.Attr{Name: "DATE"},
		Right: algebra.Const{Value: data.NewString("01/02/2004")},
	}
	pkgComponents := []*workflow.Activity{
		templates.NotNull(0.9, "K"),
		templates.Filter(datePred, 0.1),
	}
	merged := &workflow.Activity{
		Name: "NN+σ",
		Sem:  workflow.Semantics{Op: workflow.OpMerged, Components: pkgComponents},
		Fun:  data.Schema{"K", "DATE"},
		Sel:  0.09,
	}
	a2e := templates.Reformat("a2edate", "DATE")
	g, ids := chain(t, data.Schema{"K", "DATE"}, a2e, merged)
	if _, err := Swap(g, ids[0], ids[1]); err == nil || !IsRejection(err) {
		t.Fatalf("package with a format-sensitive component must not cross A2E, got %v", err)
	}

	// A package of NULL-insensitive components crosses freely.
	safe := &workflow.Activity{
		Name: "NN+NN",
		Sem: workflow.Semantics{Op: workflow.OpMerged, Components: []*workflow.Activity{
			templates.NotNull(0.9, "K"),
			templates.NotNull(0.95, "DATE"),
		}},
		Fun: data.Schema{"K", "DATE"},
		Sel: 0.85,
	}
	g2, ids2 := chain(t, data.Schema{"K", "DATE"}, templates.Reformat("a2edate", "DATE"), safe)
	if _, err := Swap(g2, ids2[0], ids2[1]); err != nil {
		t.Errorf("null-check package should cross A2E: %v", err)
	}
}

func TestSwapTwoInPlaceSameAttrRejected(t *testing.T) {
	a := templates.Reformat("a2edate", "DATE")
	b := templates.Reformat("e2adate", "DATE")
	g, ids := chain(t, data.Schema{"DATE"}, a, b)
	if _, err := Swap(g, ids[0], ids[1]); err == nil || !IsRejection(err) {
		t.Fatalf("two in-place reformats of the same attribute must not swap, got %v", err)
	}
	// Different attributes: fine.
	c := templates.Reformat("a2edate", "D1")
	d := templates.Reformat("e2adate", "D2")
	g2, ids2 := chain(t, data.Schema{"D1", "D2"}, c, d)
	if _, err := Swap(g2, ids2[0], ids2[1]); err != nil {
		t.Errorf("independent in-place reformats should swap: %v", err)
	}
}

func TestSwapAggregateAcrossLookupPKOnGrouper(t *testing.T) {
	// A lookup-based key check on a grouper commutes with the aggregation;
	// on a non-grouper it must not (condition enforced by the guard, since
	// condition 3 alone would pass when the attribute survives as part of
	// the groupers).
	agg := templates.Aggregate([]string{"K", "D"}, workflow.AggSum, "V", "T", 0.3)
	pkOnGrouper := templates.PKCheckAgainst("L", 0.9, "K")
	g, ids := chain(t, data.Schema{"K", "D", "V"}, agg, pkOnGrouper)
	if _, err := Swap(g, ids[0], ids[1]); err != nil {
		t.Errorf("lookup key check on grouper should cross γ: %v", err)
	}
}

// TestFilterChainPermutations: a chain of filters over distinct attributes
// commutes freely; every permutation reachable by swaps is legal, and all
// are empirically equivalent.
func TestFilterChainPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	schema := data.Schema{"A", "B", "C", "D"}
	acts := []*workflow.Activity{
		templates.Threshold("A", 10, 0.9),
		templates.Threshold("B", 20, 0.7),
		templates.NotNull(0.95, "C"),
		templates.Threshold("D", 30, 0.5),
	}
	g, ids := chain(t, schema, acts...)

	rows := make(data.Rows, 120)
	for i := range rows {
		mk := func(m int) data.Value {
			if (i+m)%13 == 0 {
				return data.Null
			}
			return data.NewFloat(float64((i*m)%60 - 5))
		}
		rows[i] = data.Record{mk(1), mk(2), mk(3), mk(5)}
	}
	bindings := map[string]data.Recordset{
		"SRC": data.NewMemoryRecordset("SRC", schema).MustLoad(rows),
	}

	cur := g
	for step := 0; step < 12; step++ {
		// Pick a random adjacent pair among the chain's activities.
		i := rng.Intn(len(ids) - 1)
		var pair [2]workflow.NodeID
		found := false
		for _, a := range ids {
			for _, c := range cur.Consumers(a) {
				n := cur.Node(c)
				if n != nil && n.Kind == workflow.KindActivity && rng.Intn(len(ids)) == i {
					pair = [2]workflow.NodeID{a, c}
					found = true
				}
			}
		}
		if !found {
			continue
		}
		res, err := Swap(cur, pair[0], pair[1])
		if err != nil {
			t.Fatalf("step %d: filter swap rejected: %v", step, err)
		}
		ok, diff, err := equiv.VerifyEmpirical(g, res.Graph, bindings)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("step %d: permutation changed output: %s", step, diff)
		}
		cur = res.Graph
	}
}
