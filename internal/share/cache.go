package share

import (
	"container/list"
	"sync"

	"etlopt/internal/data"
	"etlopt/internal/obs"
)

// CacheStats is the cache's cumulative accounting. Counts and bytes obey
// two integrity invariants that etlvet obs audits from the journal: hits
// never exceed lookups, and bytes freed by eviction never exceed bytes
// admitted.
type CacheStats struct {
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Admissions int64 `json:"admissions"`
	Evictions  int64 `json:"evictions"`
	Spills     int64 `json:"spills"`
	SpillLoads int64 `json:"spill_loads"`
	// HitBytes is the recomputation saved: bytes served from the cache
	// (memory, disk, or an in-flight computation) instead of recomputed.
	HitBytes      int64 `json:"hit_bytes"`
	AdmittedBytes int64 `json:"admitted_bytes"`
	EvictedBytes  int64 `json:"evicted_bytes"`
	SpilledBytes  int64 `json:"spilled_bytes"`
}

// entry is one cached intermediate. An entry is resident (rows != nil),
// spilled (rows == nil, path != ""), or both after a spill-load re-admits
// it without invalidating the disk copy.
type entry struct {
	key    string
	schema data.Schema
	rows   data.Rows
	bytes  int64
	path   string
	elem   *list.Element // nil when not resident
}

// flight is one in-progress population; concurrent consumers of the same
// key wait on done instead of recomputing.
type flight struct {
	done  chan struct{}
	rows  data.Rows
	bytes int64
	err   error
}

// cache is the content-addressed intermediate-result store. Budget is in
// estimated bytes: negative means unbounded, zero admits nothing (every
// admission is immediately evicted — and spilled, when a spill directory
// is configured — which keeps the recompute path honest under test).
type cache struct {
	budget   int64
	spillDir string
	journal  *obs.Journal
	metrics  *cacheMetrics

	mu      sync.Mutex
	used    int64
	lru     *list.List // of *entry; front = most recently used
	byKey   map[string]*entry
	flights map[string]*flight
	stats   CacheStats
}

// cacheMetrics are the registry counters the cache drives; nil-safe.
type cacheMetrics struct {
	lookups, hits, misses *obs.Counter
	admitted, evicted     *obs.Counter
	spilled, savedBytes   *obs.Counter
}

func newCacheMetrics(reg *obs.Registry) *cacheMetrics {
	if reg == nil {
		return nil
	}
	return &cacheMetrics{
		lookups:    reg.Counter("shared_cache_lookups_total"),
		hits:       reg.Counter("shared_cache_hits_total"),
		misses:     reg.Counter("shared_cache_misses_total"),
		admitted:   reg.Counter("shared_cache_admitted_bytes_total"),
		evicted:    reg.Counter("shared_cache_evicted_bytes_total"),
		spilled:    reg.Counter("shared_cache_spilled_bytes_total"),
		savedBytes: reg.Counter("shared_cache_saved_bytes_total"),
	}
}

func newCache(budget int64, spillDir string, journal *obs.Journal, reg *obs.Registry) *cache {
	return &cache{
		budget:   budget,
		spillDir: spillDir,
		journal:  journal,
		metrics:  newCacheMetrics(reg),
		lru:      list.New(),
		byKey:    make(map[string]*entry),
		flights:  make(map[string]*flight),
	}
}

func (c *cache) emit(action string, bytes int64) {
	c.journal.Emit(obs.SharedCacheEvent(action, bytes))
}

// Stats returns a snapshot of the cache accounting.
func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// hitLocked books one hit serving the given bytes.
func (c *cache) hitLocked(bytes int64) {
	c.stats.Hits++
	c.stats.HitBytes += bytes
	if m := c.metrics; m != nil {
		m.hits.Inc()
		m.savedBytes.Add(bytes)
	}
	c.emit("hit", bytes)
}

// GetOrCompute returns the rows cached under key, loading a spilled entry
// from disk or waiting on a concurrent population when possible, and
// invoking compute exactly once otherwise (single flight). The boolean
// reports whether recomputation was avoided. Rows returned to callers are
// shared and must be treated as immutable — the same discipline every
// Recordset.Scan already demands.
func (c *cache) GetOrCompute(key string, schema data.Schema, compute func() (data.Rows, error)) (data.Rows, bool, error) {
	c.mu.Lock()
	c.stats.Lookups++
	if m := c.metrics; m != nil {
		m.lookups.Inc()
	}
	c.emit("lookup", 0)

	if e := c.byKey[key]; e != nil && e.rows != nil {
		c.lru.MoveToFront(e.elem)
		rows := e.rows
		c.hitLocked(e.bytes)
		c.mu.Unlock()
		return rows, true, nil
	}

	if f := c.flights[key]; f != nil {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.hitLocked(f.bytes)
		c.mu.Unlock()
		return f.rows, true, nil
	}

	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	spillPath := ""
	if e := c.byKey[key]; e != nil && e.path != "" {
		spillPath = e.path
	} else {
		c.stats.Misses++
		if m := c.metrics; m != nil {
			m.misses.Inc()
		}
		c.emit("miss", 0)
	}
	c.mu.Unlock()

	var rows data.Rows
	var err error
	fromDisk := spillPath != ""
	if fromDisk {
		rows, err = readSpill(spillPath, schema)
	} else {
		rows, err = compute()
	}

	c.mu.Lock()
	delete(c.flights, key)
	if err != nil {
		c.mu.Unlock()
		f.err = err
		close(f.done)
		return nil, false, err
	}
	bytes := rowsBytes(rows)
	if fromDisk {
		c.stats.SpillLoads++
		c.hitLocked(bytes)
	}
	c.admitLocked(key, schema, rows, bytes)
	c.mu.Unlock()
	f.rows, f.bytes = rows, bytes
	close(f.done)
	return rows, fromDisk, nil
}

// admitLocked inserts the entry and enforces the byte budget by evicting
// from the LRU tail; an entry larger than the whole budget is evicted
// immediately after admission, so the accounting still records the
// admission and the eviction (and the spill, when configured).
func (c *cache) admitLocked(key string, schema data.Schema, rows data.Rows, bytes int64) {
	e := &entry{key: key, schema: schema, rows: rows, bytes: bytes}
	if old := c.byKey[key]; old != nil {
		if old.elem != nil {
			c.lru.Remove(old.elem)
			c.used -= old.bytes
		}
		// Keep a previous spill file so a re-admitted entry can be
		// evicted again without rewriting it: the contents are immutable
		// by construction (content-addressed key).
		e.path = old.path
	}
	c.byKey[key] = e
	e.elem = c.lru.PushFront(e)
	c.used += bytes
	c.stats.Admissions++
	c.stats.AdmittedBytes += bytes
	if m := c.metrics; m != nil {
		m.admitted.Add(bytes)
	}
	c.emit("admit", bytes)

	if c.budget < 0 {
		return
	}
	for c.used > c.budget && c.lru.Len() > 0 {
		tail := c.lru.Back()
		c.evictLocked(tail.Value.(*entry))
	}
}

// evictLocked removes an entry from residency, spilling it to disk first
// when a spill directory is configured. Spilled entries stay addressable
// (rows nil, path set); without spill the entry is forgotten entirely.
func (c *cache) evictLocked(e *entry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	c.used -= e.bytes
	c.stats.Evictions++
	c.stats.EvictedBytes += e.bytes
	if m := c.metrics; m != nil {
		m.evicted.Add(e.bytes)
	}
	c.emit("evict", e.bytes)

	if c.spillDir != "" && e.path == "" {
		path, err := writeSpill(c.spillDir, e.key, e.schema, e.rows)
		if err == nil {
			e.path = path
			c.stats.Spills++
			c.stats.SpilledBytes += e.bytes
			if m := c.metrics; m != nil {
				m.spilled.Add(e.bytes)
			}
			c.emit("spill", e.bytes)
		}
		// A failed spill is not fatal: the entry just falls out of the
		// cache and consumers recompute, which is always correct.
	}
	e.rows = nil
	if e.path == "" {
		delete(c.byKey, e.key)
	}
}

// rowsBytes estimates the in-memory footprint of rows: slice headers plus
// per-value storage, with string payloads counted by length. The estimate
// is deterministic, which keeps cache behavior reproducible for a given
// suite, budget and worker count.
func rowsBytes(rows data.Rows) int64 {
	b := int64(0)
	for _, rec := range rows {
		b += 24
		for _, v := range rec {
			b += 16
			if v.Kind() == data.KindString {
				b += int64(len(v.Str()))
			}
		}
	}
	return b
}
