package share

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"etlopt/internal/data"
)

// Spill files use the checkpoint staging format: a CSV with the schema as
// header row, values rendered via Value.String with NULL for nulls, and
// parsed back with data.ParseValue. Writes go through a temp file and a
// rename so a torn write never yields a half-readable spill.

// writeSpill persists rows for key under dir and returns the file path.
func writeSpill(dir, key string, schema data.Schema, rows data.Rows) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, key+".csv")
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return "", err
	}
	w := csv.NewWriter(tmp)
	werr := w.Write(schema)
	for _, rec := range rows {
		if werr != nil {
			break
		}
		fields := make([]string, len(rec))
		for i, v := range rec {
			if v.IsNull() {
				fields[i] = "NULL"
			} else {
				fields[i] = v.String()
			}
		}
		werr = w.Write(fields)
	}
	w.Flush()
	if werr == nil {
		werr = w.Error()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("share: spilling %s: %w", key, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// readSpill loads a spill file back, verifying the header against the
// expected schema.
func readSpill(path string, schema data.Schema) (data.Rows, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	r := csv.NewReader(fh)
	header, err := r.Read()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("share: spill %s is empty", path)
		}
		return nil, err
	}
	if !data.Schema(header).Equal(schema) {
		return nil, fmt.Errorf("share: spill %s header %v does not match schema %v", path, header, schema)
	}
	var rows data.Rows
	for {
		fields, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("share: reading spill %s: %w", path, err)
		}
		rec := make(data.Record, len(fields))
		for i, s := range fields {
			rec[i] = data.ParseValue(s)
		}
		rows = append(rows, rec)
	}
	return rows, nil
}
