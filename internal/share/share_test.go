package share

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/generator"
	"etlopt/internal/templates"
)

// suiteWorkflows wraps generated scenarios as suite members, each with a
// fresh set of bindings.
func suiteWorkflows(scs []*templates.Scenario) []Workflow {
	wfs := make([]Workflow, len(scs))
	for i, sc := range scs {
		wfs[i] = Workflow{
			Name:     fmt.Sprintf("wf%d", i),
			Graph:    sc.Graph,
			Bindings: sc.Bind(),
		}
	}
	return wfs
}

func soloRun(t *testing.T, sc *templates.Scenario) *engine.RunResult {
	t.Helper()
	res, err := engine.New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return res
}

// sameRows compares positionally by Value.Key — the repo's equivalence
// contract for rows that may have crossed a CSV staging boundary.
func sameRows(a, b data.Rows) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

func checkSameResult(t *testing.T, name string, solo, suite *engine.RunResult) {
	t.Helper()
	if suite == nil {
		t.Fatalf("%s: suite run missing", name)
	}
	if len(solo.Targets) != len(suite.Targets) {
		t.Fatalf("%s: target count %d vs %d", name, len(suite.Targets), len(solo.Targets))
	}
	for tgt, want := range solo.Targets {
		got, ok := suite.Targets[tgt]
		if !ok {
			t.Fatalf("%s: suite run lost target %s", name, tgt)
		}
		if !sameRows(want, got) {
			t.Fatalf("%s: target %s differs from solo run (%d vs %d rows)", name, tgt, len(got), len(want))
		}
	}
	if !reflect.DeepEqual(solo.NodeRows, suite.NodeRows) {
		t.Fatalf("%s: NodeRows differ\n  solo  %v\n  suite %v", name, solo.NodeRows, suite.NodeRows)
	}
}

func TestRunSuiteMatchesSoloRuns(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Small, 3, 4242)
	if err != nil {
		t.Fatal(err)
	}
	solos := make([]*engine.RunResult, len(scs))
	for i, sc := range scs {
		solos[i] = soloRun(t, sc)
	}

	for _, tc := range []struct {
		name    string
		workers int
		budget  int64
		spill   bool
	}{
		{"serial-unbounded", 1, -1, false},
		{"parallel-unbounded", 4, -1, false},
		{"parallel-zero-budget", 4, 0, false},
		{"parallel-tiny-budget", 4, 512, false},
		{"parallel-zero-budget-spill", 4, 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Workers: tc.workers, CacheBytes: tc.budget}
			if tc.spill {
				opts.SpillDir = t.TempDir()
			}
			res, err := RunSuite(context.Background(), suiteWorkflows(scs), opts)
			if err != nil {
				t.Fatalf("RunSuite: %v", err)
			}
			for i, wr := range res.Workflows {
				if wr.Err != nil {
					t.Fatalf("workflow %s failed: %v", wr.Name, wr.Err)
				}
				checkSameResult(t, wr.Name, solos[i], wr.Result)
			}
			if res.Stats.Stages == 0 {
				t.Fatal("shared-prefix suite planned no stages")
			}
		})
	}
}

func TestRunSuiteSavesWork(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Small, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(context.Background(), suiteWorkflows(scs), Options{Workers: 2, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.NodesExecuted >= st.NodesIndependent {
		t.Fatalf("no work saved: executed %d of %d independent nodes", st.NodesExecuted, st.NodesIndependent)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits with an unbounded budget: %+v", st.Cache)
	}
	if st.StageRuns != int64(st.Stages) {
		t.Fatalf("unbounded budget ran %d stage executions for %d stages", st.StageRuns, st.Stages)
	}
}

// TestRunSuiteSingleWorkflowHomologousTwins exercises sharing inside one
// workflow: homologous branch activities have equal closures and must still
// reproduce the solo run exactly when factored through the cache.
func TestRunSuiteSingleWorkflowHomologousTwins(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Small, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	solo := soloRun(t, scs[0])
	res, err := RunSuite(context.Background(), suiteWorkflows(scs), Options{Workers: 4, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflows[0].Err != nil {
		t.Fatal(res.Workflows[0].Err)
	}
	checkSameResult(t, "wf0", solo, res.Workflows[0].Result)
}

func TestRunSuiteFailureIsolation(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Small, 2, 777)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := generator.Generate(generator.CategoryConfig(generator.Small, 31415))
	if err != nil {
		t.Fatal(err)
	}
	wfs := suiteWorkflows(append(scs, indep))

	// Poison one shared source in both sharing members: the bound recordset
	// digests fine during planning but its schema no longer matches the
	// graph's declaration, so the producer stage fails at scan time.
	srcs := scs[0].Graph.Sources()
	if len(srcs) == 0 {
		t.Fatal("scenario has no sources")
	}
	name := scs[0].Graph.Node(srcs[0]).RS.Name
	for i := 0; i < 2; i++ {
		bad := data.NewMemoryRecordset(name, data.Schema{"__bogus"})
		if err := bad.Load(data.Rows{{data.NewInt(1)}}); err != nil {
			t.Fatal(err)
		}
		wfs[i].Bindings[name] = bad
	}

	res, err := RunSuite(context.Background(), wfs, Options{Workers: 4, CacheBytes: -1})
	if err != nil {
		t.Fatalf("RunSuite must isolate execution failures, got: %v", err)
	}
	if res.Workflows[0].Err == nil || res.Workflows[1].Err == nil {
		t.Fatalf("poisoned workflows did not fail: %v / %v", res.Workflows[0].Err, res.Workflows[1].Err)
	}
	if res.Workflows[0].Err.Error() != res.Workflows[1].Err.Error() {
		t.Fatalf("sharing members failed differently:\n  %v\n  %v", res.Workflows[0].Err, res.Workflows[1].Err)
	}
	if res.Workflows[2].Err != nil {
		t.Fatalf("independent workflow poisoned by a sibling failure: %v", res.Workflows[2].Err)
	}
	if res.Workflows[2].Result == nil || len(res.Workflows[2].Result.Targets) == 0 {
		t.Fatal("independent workflow produced no targets")
	}
}

func TestSharedSuitePrefixesActuallyShare(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Medium, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	wfs := suiteWorkflows(scs)
	p, err := newPlan(wfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.stages) == 0 {
		t.Fatal("SharedSuite members share no closures")
	}
	// Post-union pipelines diverge by seed, so the workflows must not be
	// wholesale copies of each other: at least one node stays residual.
	for i, pw := range p.workflows {
		if pw.residual.Len() <= 1+len(pw.injected) {
			t.Fatalf("workflow %d reduced to nothing but injected sources", i)
		}
	}
}
