package share

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// Options parameterizes a suite run.
type Options struct {
	// Workers bounds how many stages and residual workflows execute
	// concurrently; 0 or less means GOMAXPROCS.
	Workers int
	// CacheBytes is the intermediate-result cache budget: negative means
	// unbounded, zero forces every admission straight through eviction
	// (and spill, when SpillDir is set).
	CacheBytes int64
	// SpillDir, when non-empty, spills evicted intermediates to CSV files
	// in the checkpoint staging format instead of dropping them.
	SpillDir string
	// Engine options are threaded unchanged into every stage and residual
	// engine (mode, partitions, batch, metrics, journal, faults, retry).
	Engine []engine.Option
	// Journal receives shared-cache activity events (lookup/hit/miss/
	// admit/evict/spill); nil disables them. Results are identical with
	// the journal on or off.
	Journal *obs.Journal
	// Metrics receives shared_cache_* counters; nil disables them.
	Metrics *obs.Registry
}

// WorkflowResult is one suite member's outcome. Exactly one of Result and
// Err is set: a failed shared stage fails every workflow that consumes it
// (with the same underlying error) and no others.
type WorkflowResult struct {
	Name   string
	Result *engine.RunResult
	Err    error
}

// Stats summarizes what sharing bought: stage and node accounting plus the
// cache's byte-level counters.
type Stats struct {
	// Workflows is the suite size, Stages the number of distinct shared
	// intermediates planned (each appears exactly once in the stage DAG).
	Workflows int `json:"workflows"`
	Stages    int `json:"stages"`
	// StageRuns counts producer executions, including any recomputation
	// forced by eviction; with an adequate budget it equals Stages.
	StageRuns int64 `json:"stage_runs"`
	// NodesExecuted counts nodes actually run across every stage and
	// residual engine run; NodesIndependent is what independent runs
	// would have executed (the sum of suite graph sizes). The difference
	// is the recomputation the suite avoided.
	NodesExecuted    int64      `json:"nodes_executed"`
	NodesIndependent int64      `json:"nodes_independent"`
	Cache            CacheStats `json:"cache"`
}

// Result is a suite run's outcome, in input order.
type Result struct {
	Workflows []WorkflowResult
	Stats     Stats
}

// RunSuite executes the workflows as one job: shared upstream closures are
// detected by content, materialized once each through the cache, and every
// workflow runs as a residual graph over the cached intermediates. Targets
// and NodeRows of each workflow are bit-identical to running it alone.
// RunSuite returns an error only when planning fails; per-workflow
// execution failures are isolated in the result.
func RunSuite(ctx context.Context, wfs []Workflow, opts Options) (*Result, error) {
	p, err := newPlan(wfs)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &runner{
		plan:       p,
		opts:       opts,
		cache:      newCache(opts.CacheBytes, opts.SpillDir, opts.Journal, opts.Metrics),
		sharedRows: make(map[uint64]int),
		failed:     make(map[uint64]error),
	}

	res := &Result{Workflows: make([]WorkflowResult, len(p.workflows))}
	sem := make(chan struct{}, workers)
	done := make(map[uint64]chan struct{}, len(p.order))
	for _, fp := range p.order {
		done[fp] = make(chan struct{})
	}
	var wg sync.WaitGroup

	// Producer stages: a stage becomes ready when its dependencies have
	// settled (succeeded or failed); ready stages run concurrently up to
	// the worker bound. Failures propagate through r.failed, so a
	// dependent stage fails fast instead of recomputing a poisoned
	// closure.
	for _, fp := range p.order {
		wg.Add(1)
		go func(fp uint64) {
			defer wg.Done()
			st := p.stages[fp]
			for _, d := range st.deps {
				<-done[d]
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			r.stageRows(ctx, fp)
			close(done[fp])
		}(fp)
	}

	// Residual workflows: ready once their consumed stages settled.
	for i, pw := range p.workflows {
		wg.Add(1)
		go func(i int, pw *planWorkflow) {
			defer wg.Done()
			for _, d := range pw.deps {
				<-done[d]
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			run, err := r.runWorkflow(ctx, pw)
			res.Workflows[i] = WorkflowResult{Name: wfName(pw.wf, i), Result: run, Err: err}
		}(i, pw)
	}
	wg.Wait()

	res.Stats = Stats{
		Workflows:     len(p.workflows),
		Stages:        len(p.stages),
		StageRuns:     r.stageRuns.get(),
		NodesExecuted: r.nodesRun.get(),
		Cache:         r.cache.Stats(),
	}
	for _, pw := range p.workflows {
		res.Stats.NodesIndependent += int64(pw.wf.Graph.Len())
	}
	return res, nil
}

// runner holds the mutable state of one suite execution.
type runner struct {
	plan *plan
	opts Options

	cache *cache

	// sharedRows accumulates per-fingerprint output row counts from every
	// producer run; residual results are patched back to full solo
	// NodeRows through it. Equal fingerprints imply equal row counts, so
	// concurrent writers never disagree.
	rowsMu     sync.Mutex
	sharedRows map[uint64]int

	// failed pins the first error of each stage for the suite's
	// lifetime: siblings sharing the stage fail fast with the same error,
	// and a deterministic fault plan is never re-fired by recomputation.
	failMu sync.Mutex
	failed map[uint64]error

	stageRuns lockedCounter
	nodesRun  lockedCounter
}

type lockedCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *lockedCounter) add(n int64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

func (c *lockedCounter) get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// stageRows returns the shared intermediate's rows, from the cache when
// possible and by (re)executing its producer graph otherwise.
func (r *runner) stageRows(ctx context.Context, fp uint64) (data.Rows, error) {
	st := r.plan.stages[fp]
	r.failMu.Lock()
	if err := r.failed[fp]; err != nil {
		r.failMu.Unlock()
		return nil, err
	}
	r.failMu.Unlock()

	rows, _, err := r.cache.GetOrCompute(st.key, st.schema, func() (data.Rows, error) {
		return r.runStage(ctx, st)
	})
	if err != nil {
		r.failMu.Lock()
		if r.failed[fp] == nil {
			r.failed[fp] = fmt.Errorf("share: stage %s: %w", st.key, err)
		}
		err = r.failed[fp]
		r.failMu.Unlock()
		return nil, err
	}
	return rows, nil
}

// runStage executes one producer graph and returns the intermediate's
// rows. Dependencies are resolved through the cache first, so a stage
// whose inputs are still resident never recomputes them.
func (r *runner) runStage(ctx context.Context, st *stage) (data.Rows, error) {
	bindings, err := r.injectBindings(ctx, st.bindings, st.graph, st.injected)
	if err != nil {
		return nil, err
	}
	eng := engine.New(bindings, r.opts.Engine...)
	res, err := eng.Run(ctx, st.graph)
	if err != nil {
		return nil, err
	}
	r.stageRuns.add(1)
	r.nodesRun.add(int64(len(res.NodeRows) - 1)) // exclude the artificial target

	r.rowsMu.Lock()
	for orig, nid := range st.idmap {
		r.sharedRows[st.origFPs[orig]] = res.NodeRows[nid]
	}
	r.rowsMu.Unlock()

	rows, ok := res.Targets[stageName(st.fp)]
	if !ok {
		return nil, fmt.Errorf("producer run yielded no %s target", stageName(st.fp))
	}
	return rows, nil
}

// injectBindings returns the run bindings: the workflow's own plus one
// in-memory source per injected shared intermediate.
func (r *runner) injectBindings(ctx context.Context, base map[string]data.Recordset, g *workflow.Graph, injected map[workflow.NodeID]uint64) (map[string]data.Recordset, error) {
	if len(injected) == 0 {
		return base, nil
	}
	bindings := make(map[string]data.Recordset, len(base)+len(injected))
	for name, rs := range base {
		bindings[name] = rs
	}
	for _, fp := range sortedInjected(injected) {
		name := stageName(fp)
		if _, ok := bindings[name]; ok {
			continue
		}
		rows, err := r.stageRows(ctx, fp)
		if err != nil {
			return nil, err
		}
		rs := data.NewMemoryRecordset(name, r.plan.stages[fp].schema)
		if err := rs.Load(rows); err != nil {
			return nil, err
		}
		bindings[name] = rs
	}
	return bindings, nil
}

func sortedInjected(injected map[workflow.NodeID]uint64) []uint64 {
	set := make(map[uint64]bool, len(injected))
	for _, fp := range injected {
		set[fp] = true
	}
	return sortedFPs(set)
}

// runWorkflow executes one residual graph and reconstructs the workflow's
// solo run result: targets come straight from the residual run, NodeRows
// for replaced closure nodes come from the producer runs' per-fingerprint
// counts.
func (r *runner) runWorkflow(ctx context.Context, pw *planWorkflow) (*engine.RunResult, error) {
	bindings, err := r.injectBindings(ctx, pw.wf.Bindings, pw.residual, pw.injected)
	if err != nil {
		return nil, err
	}
	eng := engine.New(bindings, r.opts.Engine...)
	res, err := eng.Run(ctx, pw.residual)
	if err != nil {
		return nil, err
	}
	r.nodesRun.add(int64(len(res.NodeRows)))

	full := make(map[workflow.NodeID]int, len(pw.fps))
	r.rowsMu.Lock()
	for id := range pw.fps {
		if nid, ok := pw.idmap[id]; ok {
			full[id] = res.NodeRows[nid]
		} else {
			full[id] = r.sharedRows[pw.fps[id]]
		}
	}
	r.rowsMu.Unlock()
	res.NodeRows = full
	return res, nil
}
