package share

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etlopt/internal/data"
)

// intRows returns n single-int records; rowsBytes charges 40 bytes each
// (24 for the record header, 16 for the value), so budgets in the tests
// below are exact multiples of record counts.
func intRows(n int) data.Rows {
	rows := make(data.Rows, n)
	for i := range rows {
		rows[i] = data.Record{data.NewInt(int64(i))}
	}
	return rows
}

func TestRowsBytesEstimate(t *testing.T) {
	if got := rowsBytes(intRows(3)); got != 120 {
		t.Fatalf("rowsBytes(3 int records) = %d, want 120", got)
	}
	rows := data.Rows{{data.NewString("abcde"), data.NewInt(1)}}
	if got := rowsBytes(rows); got != 24+16+5+16 {
		t.Fatalf("rowsBytes(string record) = %d, want %d", got, 24+16+5+16)
	}
}

// get runs one GetOrCompute that serves intRows(1) and counts invocations.
func get(t *testing.T, c *cache, key string, computes *int) data.Rows {
	t.Helper()
	rows, _, err := c.GetOrCompute(key, data.Schema{"V"}, func() (data.Rows, error) {
		*computes++
		return intRows(1), nil
	})
	if err != nil {
		t.Fatalf("GetOrCompute(%s): %v", key, err)
	}
	return rows
}

func TestCacheLRUEvictsAtByteBoundary(t *testing.T) {
	// Budget 80 holds exactly two 40-byte entries: admission is only over
	// budget at the third, and the least recently used entry goes.
	c := newCache(80, "", nil, nil)
	nA, nB, nC := 0, 0, 0
	get(t, c, "a", &nA)
	get(t, c, "b", &nB)
	get(t, c, "a", &nA) // memory hit; moves a ahead of b
	get(t, c, "c", &nC) // 120 > 80: evicts b, keeps a and c
	get(t, c, "c", &nC) // hit; moves c ahead of a
	get(t, c, "b", &nB) // recomputed; evicts the LRU tail (a)
	get(t, c, "a", &nA) // recomputed; evicts c

	if nA != 2 || nB != 2 || nC != 1 {
		t.Fatalf("compute counts a=%d b=%d c=%d, want 2/2/1", nA, nB, nC)
	}
	st := c.Stats()
	want := CacheStats{
		Lookups: 7, Hits: 2, Misses: 5,
		Admissions: 5, Evictions: 3,
		HitBytes: 80, AdmittedBytes: 200, EvictedBytes: 120,
	}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if st.Hits > st.Lookups {
		t.Fatalf("integrity: hits %d > lookups %d", st.Hits, st.Lookups)
	}
	if st.EvictedBytes > st.AdmittedBytes {
		t.Fatalf("integrity: evicted bytes %d > admitted bytes %d", st.EvictedBytes, st.AdmittedBytes)
	}
}

func TestCacheBudgetOneUnderEvictsImmediately(t *testing.T) {
	// Budget 79 cannot hold two 40-byte entries: admitting b pushes a out,
	// proving the boundary is used > budget, not >=.
	c := newCache(79, "", nil, nil)
	nA, nB := 0, 0
	get(t, c, "a", &nA)
	get(t, c, "b", &nB)
	get(t, c, "b", &nB) // b survived the eviction pass
	get(t, c, "a", &nA) // a did not
	if nA != 2 || nB != 1 {
		t.Fatalf("compute counts a=%d b=%d, want 2/1", nA, nB)
	}
}

func TestCacheZeroBudgetAdmitsThenEvicts(t *testing.T) {
	c := newCache(0, "", nil, nil)
	n := 0
	get(t, c, "k", &n)
	get(t, c, "k", &n)
	if n != 2 {
		t.Fatalf("compute count = %d, want 2 (budget 0 keeps nothing)", n)
	}
	st := c.Stats()
	if st.Admissions != 2 || st.Evictions != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 admissions, 2 evictions, 0 hits", st)
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := newCache(-1, "", nil, nil)
	for i := 0; i < 50; i++ {
		n := 0
		get(t, c, fmt.Sprintf("k%d", i), &n)
	}
	if st := c.Stats(); st.Evictions != 0 || st.Admissions != 50 {
		t.Fatalf("stats = %+v, want 50 admissions and no evictions", st)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(-1, "", nil, nil)
	const waiters = 10
	var computes int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]data.Rows, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, _, err := c.GetOrCompute("k", data.Schema{"V"}, func() (data.Rows, error) {
				atomic.AddInt32(&computes, 1)
				<-release
				return intRows(2), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = rows
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&computes); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, rows := range results {
		if len(rows) != 2 {
			t.Fatalf("waiter %d got %d rows, want 2", i, len(rows))
		}
	}
	st := c.Stats()
	if st.Lookups != waiters || st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v, want %d lookups, 1 miss, %d hits", st, waiters, waiters-1)
	}
}

func TestCacheSingleFlightErrorPropagates(t *testing.T) {
	c := newCache(-1, "", nil, nil)
	n := 0
	_, _, err := c.GetOrCompute("k", data.Schema{"V"}, func() (data.Rows, error) {
		n++
		return nil, fmt.Errorf("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	// A failed flight leaves nothing behind; the next caller recomputes.
	get(t, c, "k", &n)
	if n != 2 {
		t.Fatalf("compute count = %d, want 2", n)
	}
}

func TestCacheSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := newCache(0, dir, nil, nil)
	schema := data.Schema{"I", "F", "S", "B", "D", "N"}
	orig := data.Rows{
		{data.NewInt(-7), data.NewFloat(2.5), data.NewString("héllo, \"world\""), data.NewBool(true), data.NewDate(2021, 3, 4), data.Null},
		{data.NewInt(42), data.NewFloat(-0.125), data.NewString("line"), data.NewBool(false), data.NewDate(1999, 12, 31), data.NewString("x")},
	}
	n := 0
	compute := func() (data.Rows, error) { n++; return orig, nil }

	rows, avoided, err := c.GetOrCompute("k", schema, compute)
	if err != nil || avoided {
		t.Fatalf("first get: rows=%d avoided=%v err=%v", len(rows), avoided, err)
	}
	// Budget 0 evicted the entry immediately; with a spill dir configured it
	// must now live on disk and stay addressable.
	if st := c.Stats(); st.Spills != 1 || st.SpilledBytes == 0 {
		t.Fatalf("stats after first get = %+v, want one spill", st)
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("spill dir has %d files (err %v), want 1", len(files), err)
	}

	rows2, avoided, err := c.GetOrCompute("k", schema, compute)
	if err != nil || !avoided {
		t.Fatalf("second get: avoided=%v err=%v", avoided, err)
	}
	if n != 1 {
		t.Fatalf("compute ran %d times, want 1 (spill load must not recompute)", n)
	}
	// These values are chosen to round-trip the staging CSV format exactly,
	// so the typed digest must survive the disk trip bit-for-bit.
	if orig.Digest() != rows2.Digest() {
		t.Fatalf("spill round-trip changed rows:\n  orig %v\n  got  %v", orig, rows2)
	}

	// The re-admitted entry was evicted again (budget 0) but keeps its
	// existing spill file instead of rewriting it.
	if _, _, err := c.GetOrCompute("k", schema, compute); err != nil {
		t.Fatalf("third get: %v", err)
	}
	st := c.Stats()
	if st.Spills != 1 || st.SpillLoads != 2 || st.Hits != 2 {
		t.Fatalf("stats after third get = %+v, want 1 spill, 2 spill loads, 2 hits", st)
	}
}

func TestSpillRoundTripDirect(t *testing.T) {
	dir := t.TempDir()
	schema := data.Schema{"A", "B"}
	rows := data.Rows{
		{data.NewString("comma, quote \" and\nnewline"), data.NewInt(1)},
		{data.Null, data.NewFloat(3.5)},
	}
	path, err := writeSpill(dir, "deadbeef", schema, rows)
	if err != nil {
		t.Fatalf("writeSpill: %v", err)
	}
	got, err := readSpill(path, schema)
	if err != nil {
		t.Fatalf("readSpill: %v", err)
	}
	if rows.Digest() != got.Digest() {
		t.Fatalf("round trip changed rows: %v vs %v", rows, got)
	}
	if _, err := readSpill(path, data.Schema{"A", "WRONG"}); err == nil {
		t.Fatal("readSpill accepted a mismatched schema header")
	}
}
