package share

import (
	"fmt"
	"sort"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// Workflow is one member of a suite: a parsed workflow graph plus the
// recordset bindings (sources, lookups, and optionally targets) it runs
// against.
type Workflow struct {
	// Name labels the workflow in results and errors; defaults to its
	// index when empty.
	Name string
	// Graph is the parsed workflow.
	Graph *workflow.Graph
	// Bindings maps recordset names to data. Every source and lookup the
	// graph reads must be bound; target bindings are optional (unbound
	// targets are still reported in the run result).
	Bindings map[string]data.Recordset
}

// stage is one shared intermediate: the producer subgraph that computes it,
// residualized at any deeper shared intermediates it consumes.
type stage struct {
	fp       uint64
	key      string
	schema   data.Schema
	graph    *workflow.Graph
	bindings map[string]data.Recordset
	// deps are the fingerprints of shared intermediates this stage's
	// producer graph consumes (its injected sources).
	deps []uint64
	// idmap maps the exemplar workflow's node IDs to producer-graph IDs.
	idmap map[workflow.NodeID]workflow.NodeID
	// origFPs maps those exemplar node IDs to their closure fingerprints,
	// so a producer run can publish per-fingerprint row counts that any
	// suite member can use to reconstruct its solo NodeRows.
	origFPs map[workflow.NodeID]uint64
	// injected maps producer-graph injected source IDs to the dep
	// fingerprint they stand for.
	injected map[workflow.NodeID]uint64
	// target is the artificial target's producer-graph node ID.
	target workflow.NodeID
}

// planWorkflow is one suite member with its residual execution graph: the
// original graph with every maximal shared intermediate's upstream closure
// replaced by an injected source fed from the cache.
type planWorkflow struct {
	wf  Workflow
	fps map[workflow.NodeID]uint64
	// residual is the graph actually executed for this workflow.
	residual *workflow.Graph
	// idmap maps original node IDs to residual IDs (cut nodes map to
	// their injected sources, whose scan count equals the cut node's
	// output count).
	idmap map[workflow.NodeID]workflow.NodeID
	// injected maps residual injected-source IDs to stage fingerprints.
	injected map[workflow.NodeID]uint64
	// deps are the fingerprints of the stages this workflow consumes.
	deps []uint64
}

// plan is the suite's stage DAG: every shared intermediate appears exactly
// once, producer stages are ordered dependencies-first, and each workflow
// is reduced to a residual graph over injected shared sources.
type plan struct {
	workflows []*planWorkflow
	stages    map[uint64]*stage
	order     []uint64 // stages, dependencies before dependents
}

// newPlan fingerprints every workflow, finds fingerprints that occur more
// than once across the suite (including homologous twins inside a single
// workflow), and builds the stage DAG and residual graphs.
func newPlan(wfs []Workflow) (*plan, error) {
	p := &plan{stages: make(map[uint64]*stage)}

	allFPs := make([]map[workflow.NodeID]uint64, len(wfs))
	counts := make(map[uint64]int)
	for i, wf := range wfs {
		if wf.Graph == nil {
			return nil, fmt.Errorf("share: workflow %d has no graph", i)
		}
		if err := wf.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("share: workflow %s: %w", wfName(wf, i), err)
		}
		fps, err := closureFingerprints(wf.Graph, wf.Bindings)
		if err != nil {
			return nil, fmt.Errorf("share: workflow %s: %w", wfName(wf, i), err)
		}
		allFPs[i] = fps
		for _, id := range wf.Graph.Activities() {
			counts[fps[id]]++
		}
	}
	shared := func(fps map[workflow.NodeID]uint64, g *workflow.Graph, id workflow.NodeID) bool {
		return g.Node(id).Kind == workflow.KindActivity && counts[fps[id]] >= 2
	}

	for i, wf := range wfs {
		fps := allFPs[i]
		pw := &planWorkflow{wf: wf, fps: fps}
		isCut := func(id workflow.NodeID) bool { return shared(fps, wf.Graph, id) }
		roots := wf.Graph.Targets()
		sub, err := p.extract(wf, fps, isCut, roots, 0)
		if err != nil {
			return nil, fmt.Errorf("share: workflow %s: %w", wfName(wf, i), err)
		}
		pw.residual, pw.idmap, pw.injected, pw.deps = sub.graph, sub.idmap, sub.injected, sub.deps
		p.workflows = append(p.workflows, pw)
	}

	p.orderStages()
	return p, nil
}

func wfName(wf Workflow, i int) string {
	if wf.Name != "" {
		return wf.Name
	}
	return fmt.Sprintf("#%d", i)
}

// subgraph is the result of one extraction: a fresh executable graph plus
// the maps relating it to the original.
type subgraph struct {
	graph    *workflow.Graph
	idmap    map[workflow.NodeID]workflow.NodeID
	injected map[workflow.NodeID]uint64
	deps     []uint64
}

// extract builds a fresh graph containing the original nodes reachable
// upstream from roots, stopping the descent at cut nodes (other than the
// roots themselves): each cut node becomes an injected source recordset
// named after its fingerprint, and a producer stage for that fingerprint
// is registered recursively. Walking backwards from the roots and cutting
// at the *first* shared activity encountered is what makes the chosen
// shared subgraphs maximal.
func (p *plan) extract(wf Workflow, fps map[workflow.NodeID]uint64, isCut func(workflow.NodeID) bool, roots []workflow.NodeID, depth int) (*subgraph, error) {
	if depth > wf.Graph.Len() {
		return nil, fmt.Errorf("stage recursion exceeded graph size") // cycle guard; unreachable on a valid DAG
	}
	g := wf.Graph
	rootSet := make(map[workflow.NodeID]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}
	need := make(map[workflow.NodeID]bool)
	cut := make(map[workflow.NodeID]bool)
	var visit func(id workflow.NodeID)
	visit = func(id workflow.NodeID) {
		if need[id] {
			return
		}
		need[id] = true
		if isCut(id) && !rootSet[id] {
			cut[id] = true
			return
		}
		for _, pr := range g.Providers(id) {
			visit(pr)
		}
	}
	for _, r := range roots {
		need[r] = true
		for _, pr := range g.Providers(r) {
			visit(pr)
		}
	}

	// Register a producer stage for every cut fingerprint before building
	// this graph, so the stage map is complete bottom-up.
	for _, id := range sortedIDs(cut) {
		if err := p.ensureStage(wf, fps, isCut, id, depth); err != nil {
			return nil, err
		}
	}

	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	sub := &subgraph{
		graph:    workflow.NewGraph(),
		idmap:    make(map[workflow.NodeID]workflow.NodeID, len(need)),
		injected: make(map[workflow.NodeID]uint64),
	}
	depSet := make(map[uint64]bool)
	for _, id := range order {
		if !need[id] {
			continue
		}
		n := g.Node(id)
		var nid workflow.NodeID
		switch {
		case cut[id]:
			fp := fps[id]
			nid = sub.graph.AddRecordset(&workflow.RecordsetRef{
				Name:     stageName(fp),
				Schema:   n.Out.Clone(),
				IsSource: true,
			})
			sub.injected[nid] = fp
			depSet[fp] = true
		case n.Kind == workflow.KindActivity:
			nid = sub.graph.AddActivity(n.Act)
		default:
			nid = sub.graph.AddRecordset(n.RS)
		}
		sub.idmap[id] = nid
		if !cut[id] {
			for _, pr := range g.Providers(id) {
				sub.graph.MustAddEdge(sub.idmap[pr], nid)
			}
		}
	}
	// Derive the activity schemas the canonical way rather than copying
	// them node by node: the residual preserves provider order and the
	// injected sources carry the cut nodes' exact output schemas, so the
	// regeneration reproduces the original schemata exactly.
	if err := sub.graph.RegenerateSchemata(); err != nil {
		return nil, err
	}
	sub.deps = sortedFPs(depSet)
	return sub, nil
}

// ensureStage registers the producer stage for the cut node's fingerprint,
// extracting its closure (residualized at deeper cuts) from the first
// workflow that exhibits it.
func (p *plan) ensureStage(wf Workflow, fps map[workflow.NodeID]uint64, isCut func(workflow.NodeID) bool, id workflow.NodeID, depth int) error {
	fp := fps[id]
	if _, ok := p.stages[fp]; ok {
		return nil
	}
	sub, err := p.extract(wf, fps, isCut, []workflow.NodeID{id}, depth+1)
	if err != nil {
		return err
	}
	root := sub.idmap[id]
	out := wf.Graph.Node(id).Out
	target := sub.graph.AddRecordset(&workflow.RecordsetRef{
		Name:     stageName(fp),
		Schema:   out.Clone(),
		IsTarget: true,
	})
	sub.graph.MustAddEdge(root, target)
	if err := sub.graph.Validate(); err != nil {
		return fmt.Errorf("stage %s: %w", cacheKey(fp), err)
	}

	origFPs := make(map[workflow.NodeID]uint64, len(sub.idmap))
	for orig := range sub.idmap {
		origFPs[orig] = fps[orig]
	}
	p.stages[fp] = &stage{
		fp:       fp,
		key:      cacheKey(fp),
		schema:   out.Clone(),
		graph:    sub.graph,
		bindings: wf.Bindings,
		deps:     sub.deps,
		idmap:    sub.idmap,
		origFPs:  origFPs,
		injected: sub.injected,
		target:   target,
	}
	return nil
}

// orderStages sorts the stage DAG dependencies-first (and by fingerprint
// within a level, for determinism).
func (p *plan) orderStages() {
	visited := make(map[uint64]bool, len(p.stages))
	var emit func(fp uint64)
	emit = func(fp uint64) {
		if visited[fp] {
			return
		}
		visited[fp] = true
		for _, d := range p.stages[fp].deps {
			emit(d)
		}
		p.order = append(p.order, fp)
	}
	for _, fp := range sortedFPs(stageSet(p.stages)) {
		emit(fp)
	}
}

func stageSet(m map[uint64]*stage) map[uint64]bool {
	s := make(map[uint64]bool, len(m))
	for fp := range m {
		s[fp] = true
	}
	return s
}

func sortedFPs(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for fp := range set {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(set map[workflow.NodeID]bool) []workflow.NodeID {
	out := make([]workflow.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
