// Package share executes a suite of ETL workflows as one scheduled job.
// It detects maximal subgraphs shared across the suite by content — an
// upstream-closure fingerprint covering graph structure, activity algebra
// and the digests of every bound source and lookup the closure reads —
// materializes each shared intermediate exactly once through a
// content-addressed, byte-budgeted result cache, and runs the residual
// workflows over the cached intermediates with bounded concurrency.
//
// The headline invariant mirrors the engine's partition contract: every
// workflow's targets and NodeRows are bit-identical to running it alone,
// at any suite-worker count, cache budget (including 0, which forces the
// eviction and recompute paths) and partition count.
package share

import (
	"fmt"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// fpState is the FNV-1a fold used for closure fingerprints. It mirrors the
// fold in workflow.Graph.Fingerprint but deliberately never hashes node
// IDs or activity tags: two structurally and semantically equal closures
// in *different* graphs (with different IDs) must collide, because the
// fingerprint is the structural half of a cross-workflow cache key.
type fpState uint64

func newFP() fpState { return fpState(14695981039346656037) }

func (f *fpState) byte(b byte) {
	*f = fpState((uint64(*f) ^ uint64(b)) * 1099511628211)
}

func (f *fpState) mix(x uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(x))
		x >>= 8
	}
}

func (f *fpState) str(s string) {
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
	f.byte(0xff)
}

func (f *fpState) schema(s data.Schema) {
	for _, attr := range s {
		f.str(attr)
	}
	f.byte(0xfe)
}

// fingerprinter computes per-node upstream-closure fingerprints for one
// workflow. Source and lookup digests are computed once per binding name
// and shared across nodes.
type fingerprinter struct {
	g        *workflow.Graph
	bindings map[string]data.Recordset
	digests  map[string]uint64
	memo     map[workflow.NodeID]uint64
}

// closureFingerprints returns, for every live node, an ID-independent hash
// of the node's upstream closure: everything that determines the rows the
// node emits when executed — source names, schemas and *data digests*,
// lookup contents, activity algebra and schemas, and provider order. Two
// nodes (in the same or different workflows) with equal fingerprints
// produce bit-identical rows, which is what makes the fingerprint sound as
// a cache key (see DESIGN.md §12).
func closureFingerprints(g *workflow.Graph, bindings map[string]data.Recordset) (map[workflow.NodeID]uint64, error) {
	fp := &fingerprinter{
		g:        g,
		bindings: bindings,
		digests:  make(map[string]uint64),
		memo:     make(map[workflow.NodeID]uint64, g.Len()),
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if err := fp.node(id); err != nil {
			return nil, err
		}
	}
	return fp.memo, nil
}

// bindingDigest returns the content digest of the named bound recordset.
func (fp *fingerprinter) bindingDigest(name string) (uint64, error) {
	if d, ok := fp.digests[name]; ok {
		return d, nil
	}
	rs, ok := fp.bindings[name]
	if !ok {
		return 0, fmt.Errorf("share: recordset %q is not bound", name)
	}
	d, err := data.RecordsetDigest(rs)
	if err != nil {
		return 0, fmt.Errorf("share: digesting %q: %w", name, err)
	}
	fp.digests[name] = d
	return d, nil
}

// lookupNames collects the lookup recordsets an activity's semantics read,
// including those of packaged (merged) components.
func lookupNames(sem *workflow.Semantics, into []string) []string {
	if sem.Lookup != "" {
		into = append(into, sem.Lookup)
	}
	for _, c := range sem.Components {
		into = lookupNames(&c.Sem, into)
	}
	return into
}

// node folds one node's fingerprint into the memo. Providers are already
// fingerprinted (topological order).
func (fp *fingerprinter) node(id workflow.NodeID) error {
	n := fp.g.Node(id)
	f := newFP()
	switch n.Kind {
	case workflow.KindRecordset:
		if len(fp.g.Providers(id)) == 0 {
			// Source: name, declared schema and the digest of the bound
			// data. The name is folded deliberately — content addressing
			// would work without it, but keeping it makes a fingerprint
			// collision mean "the same source", never "coincidentally
			// equal bytes from another file".
			f.str("src")
			f.str(n.RS.Name)
			f.schema(n.RS.Schema)
			d, err := fp.bindingDigest(n.RS.Name)
			if err != nil {
				return err
			}
			f.mix(d)
		} else {
			f.str("tgt")
			f.str(n.RS.Name)
			f.schema(n.RS.Schema)
		}
	case workflow.KindActivity:
		// The canonical algebra string pins the operation and every
		// parameter; input and output schemas pin the instantiation
		// (the same algebra over differently-shaped inputs is a
		// different computation).
		f.str("act")
		f.str(n.Act.Sem.String())
		for _, in := range n.In {
			f.schema(in)
		}
		f.schema(n.Out)
		for _, name := range lookupNames(&n.Act.Sem, nil) {
			f.str(name)
			d, err := fp.bindingDigest(name)
			if err != nil {
				return err
			}
			f.mix(d)
		}
	}
	for _, p := range fp.g.Providers(id) {
		f.mix(fp.memo[p])
	}
	f.mix(0x9e3779b97f4a7c15)
	fp.memo[id] = uint64(f)
	return nil
}

// stageName is the reserved recordset name under which a shared
// intermediate is injected into residual graphs and spilled to disk.
func stageName(fp uint64) string {
	return fmt.Sprintf("__shared_%016x", fp)
}

// cacheKey renders a fingerprint as the cache's string key.
func cacheKey(fp uint64) string {
	return fmt.Sprintf("%016x", fp)
}
