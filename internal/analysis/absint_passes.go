package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"etlopt/internal/algebra"
	"etlopt/internal/workflow"
)

// The abstract-interpretation pass family: each pass runs the fixpoint
// interpreter of absint.go and reads proofs off the abstract states. All
// findings carry the interval/lineage evidence that justifies them, so a
// reader can audit the proof without re-running the analysis.

func init() {
	RegisterWorkflow("dead-filter",
		"filters and guards the abstract domains prove pass every row",
		deadFilters)
	RegisterWorkflow("unsatisfiable-guard",
		"guard predicates no row can satisfy given the upstream domains",
		unsatisfiableGuards)
	RegisterWorkflow("broken-provenance",
		"target columns no source attribute's value can reach",
		brokenProvenance)
	RegisterWorkflowOpts("cardinality-blowup",
		"nodes whose estimated cardinality exceeds the configured multiple of the source rows",
		cardinalityBlowups)
}

// guardEvidence renders the upstream domains of every attribute a
// predicate reads, sorted for determinism.
func guardEvidence(pred algebra.Expr, in *NodeAbs) string {
	attrs := append([]string(nil), algebra.AttrSet(pred)...)
	sort.Strings(attrs)
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		parts = append(parts, in.DomainString(a))
	}
	if len(parts) == 0 {
		return "no attribute references"
	}
	return strings.Join(parts, "; ")
}

// providerState returns the abstract state feeding a unary activity.
func providerState(g *workflow.Graph, res *AbsResult, id workflow.NodeID) *NodeAbs {
	preds := g.Providers(id)
	if len(preds) != 1 {
		return nil
	}
	return res.Nodes[preds[0]]
}

// deadFilters flags filters whose predicate the interpreter proves true
// for every surviving upstream row, and not-null guards over attributes
// already proven non-null. The operation then passes every row: it costs
// a scan but changes nothing, so the finding is advice, not a warning —
// the workflow is correct, just wasteful.
func deadFilters(g *workflow.Graph) []Finding {
	res, err := Interpret(g)
	if err != nil {
		return nil
	}
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		in := providerState(g, res, id)
		if in == nil {
			continue
		}
		switch a.Sem.Op {
		case workflow.OpFilter:
			if evalPred(a.Sem.Pred, in) == triTrue {
				out = append(out, Finding{
					Severity: Advice, Check: "dead-filter", Node: id,
					Message: fmt.Sprintf("filter %s passes every row: %s; selectivity interval [1,1]",
						a.Sem.Pred, guardEvidence(a.Sem.Pred, in)),
					Fix: "remove the filter, or tighten it if rows were meant to be rejected",
				})
			}
		case workflow.OpNotNull:
			allProven := len(a.Sem.Attrs) > 0
			parts := make([]string, 0, len(a.Sem.Attrs))
			for _, attr := range a.Sem.Attrs {
				d, ok := in.Attrs[attr]
				if !ok || d.MaybeNull {
					allProven = false
					break
				}
				parts = append(parts, in.DomainString(attr))
			}
			if allProven {
				out = append(out, Finding{
					Severity: Advice, Check: "dead-filter", Node: id,
					Message: fmt.Sprintf("not-null check passes every row: %s; selectivity interval [1,1]",
						strings.Join(parts, "; ")),
					Fix: "remove the guard, or move it upstream of whatever already proves the attributes non-null",
				})
			}
		}
	}
	return out
}

// unsatisfiableGuards flags filter predicates the interpreter proves
// false for every upstream row: the flow downstream is statically empty,
// which is almost always a mistyped constant or inverted comparison, so
// the finding is a warning.
func unsatisfiableGuards(g *workflow.Graph) []Finding {
	res, err := Interpret(g)
	if err != nil {
		return nil
	}
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpFilter {
			continue
		}
		in := providerState(g, res, id)
		if in == nil {
			continue
		}
		if evalPred(a.Sem.Pred, in) == triFalse {
			out = append(out, Finding{
				Severity: Warning, Check: "unsatisfiable-guard", Node: id,
				Message: fmt.Sprintf("no row can satisfy %s: %s; selectivity interval [0,0], everything downstream is dead",
					a.Sem.Pred, guardEvidence(a.Sem.Pred, in)),
				Fix: "fix the predicate's constant or direction; the upstream domains exclude every value it accepts",
			})
		}
	}
	return out
}

// brokenProvenance flags target columns whose abstract provenance set is
// empty: no source attribute's value flows into them, so the column is
// filled from synthesized values only (e.g. a count aggregate) and can
// never carry source data. Columns untouched by the flow are left to the
// schema passes.
func brokenProvenance(g *workflow.Graph) []Finding {
	res, err := Interpret(g)
	if err != nil {
		return nil
	}
	var out []Finding
	for _, id := range g.Targets() {
		n := g.Node(id)
		st := res.Nodes[id]
		if st == nil {
			continue
		}
		for _, attr := range n.RS.Schema {
			d, ok := st.Attrs[attr]
			if !ok || len(d.Roots) > 0 {
				continue
			}
			origin := "a synthesizing activity"
			if d.GenBy >= 0 {
				gen := g.Node(d.GenBy)
				if gen != nil && gen.Act != nil {
					origin = fmt.Sprintf("node %d (%s)", d.GenBy, gen.Act.Sem)
				}
			}
			out = append(out, Finding{
				Severity: Warning, Check: "broken-provenance", Node: id,
				Message: fmt.Sprintf("target column %s.%s is reached by no source attribute: its value is synthesized by %s (provenance %s)",
					n.RS.Name, attr, origin, RootsString(d.Roots)),
				Fix: "wire a source attribute into the column, or document it as derived and exclude it from lineage audits",
			})
		}
	}
	return out
}

// cardinalityBlowups flags nodes whose estimated output cardinality
// interval exceeds CardinalityBound times the total declared source rows
// — typically an equi-join whose selectivity estimate admits a near-cross
// product. The bound is configurable via WorkflowOptions.
func cardinalityBlowups(g *workflow.Graph, o *WorkflowOptions) []Finding {
	res, err := Interpret(g)
	if err != nil {
		return nil
	}
	if res.SourceRows <= 0 || o.CardinalityBound <= 0 {
		return nil
	}
	limit := o.CardinalityBound * res.SourceRows
	var out []Finding
	for _, id := range g.Activities() {
		st := res.Nodes[id]
		if st == nil || st.Card.IsEmpty() {
			continue
		}
		if st.Card.Hi > limit || math.IsInf(st.Card.Hi, 1) {
			a := g.Node(id).Act
			out = append(out, Finding{
				Severity: Warning, Check: "cardinality-blowup", Node: id,
				Message: fmt.Sprintf("%s output cardinality %s exceeds %gx the %.0f total source rows (limit %.0f)",
					a.Sem.Op, st.Card, o.CardinalityBound, res.SourceRows, limit),
				Fix: "check the activity's selectivity estimate, or raise the bound with -card-bound if the blowup is intended",
			})
		}
	}
	return out
}
