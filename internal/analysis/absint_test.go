package analysis

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"etlopt/internal/dsl"
	"etlopt/internal/workflow"
)

func mustParse(t *testing.T, src string) *workflow.Graph {
	t.Helper()
	g, err := dsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

func interpretPrepared(t *testing.T, src string) (*workflow.Graph, *AbsResult) {
	t.Helper()
	g := mustParse(t, src)
	c := g.Clone()
	if err := c.RegenerateSchemata(); err != nil {
		t.Fatalf("schemata: %v", err)
	}
	res, err := Interpret(c)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return c, res
}

func TestIntervalOps(t *testing.T) {
	a, b := Interval{2, 5}, Interval{-1, 3}
	if got := a.Intersect(b); got != (Interval{2, 3}) {
		t.Errorf("intersect: %v", got)
	}
	if got := a.Hull(b); got != (Interval{-1, 5}) {
		t.Errorf("hull: %v", got)
	}
	if got := a.Add(b); got != (Interval{1, 8}) {
		t.Errorf("add: %v", got)
	}
	if got := a.Sub(b); got != (Interval{-1, 6}) {
		t.Errorf("sub: %v", got)
	}
	if got := a.Mul(Interval{-2, 3}); got != (Interval{-10, 15}) {
		t.Errorf("mul: %v", got)
	}
	// 0 × ∞ must contribute 0, not NaN.
	if got := PointInterval(0).Mul(TopInterval()); got != (Interval{0, 0}) {
		t.Errorf("0*top: %v", got)
	}
	if !(Interval{3, 2}).IsEmpty() {
		t.Error("inverted bounds should be empty")
	}
	if (Interval{2, 5}).IsEmpty() || !PointInterval(4).IsPoint() {
		t.Error("IsEmpty/IsPoint misbehave")
	}
	if s := (Interval{117, math.Inf(1)}).String(); s != "[117,+inf)" {
		t.Errorf("string: %q", s)
	}
	w := (Interval{0, 10}).widen(Interval{0, 5})
	if !math.IsInf(w.Hi, 1) || w.Lo != 0 {
		t.Errorf("widen: %v", w)
	}
}

// A three-stage flow: filter refines V's domain and proves it non-null,
// notnull on a filtered attribute is provably dead, and provenance roots
// flow from SRC into the target.
const absintPipe = `
recordset SRC source rows=1000 schema=KEY,V
activity f1 filter pred="(V>=117)" sel=0.5
activity g1 notnull attrs=V sel=0.9
recordset TGT target schema=KEY,V

flow SRC -> f1
flow f1 -> g1
flow g1 -> TGT
`

func TestInterpretRefinement(t *testing.T) {
	g, res := interpretPrepared(t, absintPipe)
	var filterID, guardID workflow.NodeID = -1, -1
	for _, id := range g.Activities() {
		switch g.Node(id).Act.Sem.Op {
		case workflow.OpFilter:
			filterID = id
		case workflow.OpNotNull:
			guardID = id
		}
	}
	st := res.Nodes[filterID]
	if st == nil {
		t.Fatal("no state for filter")
	}
	d := st.Attrs["V"]
	if d.Val.Lo != 117 || !math.IsInf(d.Val.Hi, 1) {
		t.Errorf("V after filter: %v", d.Val)
	}
	if d.MaybeNull {
		t.Error("V should be proven non-null after surviving the comparison")
	}
	if len(d.Roots) != 1 || d.Roots[0] != "SRC.V" {
		t.Errorf("V roots: %v", d.Roots)
	}
	if st.Card != (Interval{500, 500}) {
		t.Errorf("filter card: %v", st.Card)
	}
	// The guard is proven dead: its selectivity interval collapses to [1,1]
	// and cardinality passes through unchanged.
	gst := res.Nodes[guardID]
	if gst.Sel != PointInterval(1) {
		t.Errorf("guard sel: %v", gst.Sel)
	}
	if gst.Card != (Interval{500, 500}) {
		t.Errorf("guard card: %v", gst.Card)
	}
	// Target inherits the refined domains.
	tgt := res.Nodes[g.Targets()[0]]
	if tgt.Attrs["V"].MaybeNull || tgt.Attrs["V"].Val.Lo != 117 {
		t.Errorf("target V: %+v", tgt.Attrs["V"])
	}
	if res.SourceRows != 1000 {
		t.Errorf("source rows: %v", res.SourceRows)
	}
}

func TestEvalPredNullSemantics(t *testing.T) {
	// KEY is maybe-null at the source, so (KEY>=0) over a top interval is
	// unknown, but an always-false comparison is decided regardless of
	// nullability (NULL rows also fail).
	g, res := interpretPrepared(t, `
recordset SRC source rows=10 schema=KEY
activity f1 filter pred="(KEY>=0)" sel=0.5
activity f2 filter pred="(KEY<-5)" sel=0.5
recordset TGT target schema=KEY

flow SRC -> f1
flow f1 -> f2
flow f2 -> TGT
`)
	var first workflow.NodeID = -1
	for _, id := range g.Activities() {
		if first < 0 {
			first = id
		}
	}
	src := res.Nodes[g.Sources()[0]]
	if got := evalPred(g.Node(first).Act.Sem.Pred, src); got != triUnknown {
		t.Errorf("maybe-null top comparison: got %v, want unknown", got)
	}
	// After f1, KEY ∈ [0,+inf) and non-null, so (KEY<-5) is always false.
	f1 := res.Nodes[first]
	second := g.Consumers(first)[0]
	if got := evalPred(g.Node(second).Act.Sem.Pred, f1); got != triFalse {
		t.Errorf("disjoint comparison: got %v, want false", got)
	}
	if res.Nodes[second].Card != (Interval{0, 0}) {
		t.Errorf("dead branch card: %v", res.Nodes[second].Card)
	}
}

func checksOf(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func TestDeadFilterPass(t *testing.T) {
	// Positive: a second, weaker filter after a stronger one.
	fs, err := CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity f1 filter pred="(V>=117)" sel=0.5
activity f2 filter pred="(V>=35)" sel=0.9
recordset TGT target schema=KEY,V

flow SRC -> f1
flow f1 -> f2
flow f2 -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	dead := checksOf(fs, "dead-filter")
	if len(dead) != 1 {
		t.Fatalf("want exactly one dead-filter, got %d: %v", len(dead), dead)
	}
	if dead[0].Severity != Advice {
		t.Errorf("dead-filter severity: %v", dead[0].Severity)
	}
	if !strings.Contains(dead[0].Message, "[117,+inf)") {
		t.Errorf("message lacks interval evidence: %q", dead[0].Message)
	}

	// Boundary: the filters reversed — the weaker one first — leaves the
	// second filter live; no finding.
	fs, err = CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity f1 filter pred="(V>=35)" sel=0.9
activity f2 filter pred="(V>=117)" sel=0.5
recordset TGT target schema=KEY,V

flow SRC -> f1
flow f1 -> f2
flow f2 -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(fs, "dead-filter"); len(got) != 0 {
		t.Errorf("boundary fixture fired: %v", got)
	}
}

func TestUnsatisfiableGuardPass(t *testing.T) {
	// Positive: upstream filter forces V >= 117, downstream demands V < 50.
	fs, err := CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity f1 filter pred="(V>=117)" sel=0.5
activity f2 filter pred="(V<50)" sel=0.3
recordset TGT target schema=KEY,V

flow SRC -> f1
flow f1 -> f2
flow f2 -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	unsat := checksOf(fs, "unsatisfiable-guard")
	if len(unsat) != 1 {
		t.Fatalf("want exactly one unsatisfiable-guard, got %d: %v", len(unsat), unsat)
	}
	if unsat[0].Severity != Warning {
		t.Errorf("severity: %v", unsat[0].Severity)
	}
	if !strings.Contains(unsat[0].Message, "[0,0]") {
		t.Errorf("message lacks the collapsed interval: %q", unsat[0].Message)
	}

	// Boundary: overlapping ranges stay satisfiable.
	fs, err = CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity f1 filter pred="(V>=117)" sel=0.5
activity f2 filter pred="(V<500)" sel=0.3
recordset TGT target schema=KEY,V

flow SRC -> f1
flow f1 -> f2
flow f2 -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(fs, "unsatisfiable-guard"); len(got) != 0 {
		t.Errorf("boundary fixture fired: %v", got)
	}
}

func TestBrokenProvenancePass(t *testing.T) {
	// Positive: a count aggregate synthesizes CNT from no source attribute.
	fs, err := CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity agg aggregate group=KEY fn=count out=CNT sel=0.1
recordset TGT target schema=KEY,CNT

flow SRC -> agg
flow agg -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	broken := checksOf(fs, "broken-provenance")
	if len(broken) != 1 {
		t.Fatalf("want exactly one broken-provenance, got %d: %v", len(broken), broken)
	}
	if broken[0].Severity != Warning {
		t.Errorf("severity: %v", broken[0].Severity)
	}
	if !strings.Contains(broken[0].Message, "TGT.CNT") || !strings.Contains(broken[0].Message, "∅") {
		t.Errorf("message lacks lineage evidence: %q", broken[0].Message)
	}

	// Boundary: a sum aggregate carries V's provenance into the target.
	fs, err = CheckWorkflow(mustParse(t, `
recordset SRC source rows=100 schema=KEY,V
activity agg aggregate group=KEY fn=sum attr=V out=TOTAL sel=0.1
recordset TGT target schema=KEY,TOTAL

flow SRC -> agg
flow agg -> TGT
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(fs, "broken-provenance"); len(got) != 0 {
		t.Errorf("boundary fixture fired: %v", got)
	}
}

func TestCardinalityBlowupPass(t *testing.T) {
	// Positive: a sel=1 equi-join admits the full cross product,
	// 100×100 = 10000 > 10 × 200 source rows.
	src := `
recordset L source rows=100 schema=KEY,V1
recordset R source rows=100 schema=KEY,V2
activity j join keys=KEY sel=1
recordset TGT target schema=KEY,V1,V2

flow L -> j
flow R -> j
flow j -> TGT
`
	fs, err := CheckWorkflow(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	blow := checksOf(fs, "cardinality-blowup")
	if len(blow) != 1 {
		t.Fatalf("want exactly one cardinality-blowup, got %d: %v", len(blow), blow)
	}
	if blow[0].Severity != Warning {
		t.Errorf("severity: %v", blow[0].Severity)
	}
	if !strings.Contains(blow[0].Message, "[10000,10000]") {
		t.Errorf("message lacks the cardinality interval: %q", blow[0].Message)
	}

	// Boundary: raising the bound suppresses the finding.
	fs, err = CheckWorkflowOpts(mustParse(t, src), &WorkflowOptions{CardinalityBound: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(fs, "cardinality-blowup"); len(got) != 0 {
		t.Errorf("raised bound still fired: %v", got)
	}
	// Boundary: a selective join stays under the default bound.
	fs, err = CheckWorkflow(mustParse(t, strings.Replace(src, "sel=1", "sel=0.01", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := checksOf(fs, "cardinality-blowup"); len(got) != 0 {
		t.Errorf("selective join fired: %v", got)
	}
}

// TestAbsintDeterminism verifies the acceptance criterion: pass output is
// byte-identical across repeated runs and across GOMAXPROCS 1 vs N.
func TestAbsintDeterminism(t *testing.T) {
	srcs := []string{absintPipe, `
recordset L source rows=100 schema=KEY,V1,W
recordset R source rows=100 schema=KEY,V2
activity f1 filter pred="(V1>=10)" sel=0.5
activity j join keys=KEY sel=1
activity agg aggregate group=KEY fn=count out=CNT sel=0.1
recordset TGT target schema=KEY,CNT

flow L -> f1
flow f1 -> j
flow R -> j
flow j -> agg
flow agg -> TGT
`}
	render := func() string {
		var sb strings.Builder
		for _, src := range srcs {
			g, err := dsl.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := CheckWorkflow(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range fs {
				fmt.Fprintf(&sb, "%s | file=%s:%d:%d\n", f.String(), f.File, f.Line, f.Col)
			}
		}
		return sb.String()
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	base := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != base {
			t.Fatalf("run %d at GOMAXPROCS 1 differs:\n%s\n--vs--\n%s", i, got, base)
		}
	}
	runtime.GOMAXPROCS(max(4, prev))
	for i := 0; i < 3; i++ {
		if got := render(); got != base {
			t.Fatalf("run %d at GOMAXPROCS %d differs:\n%s\n--vs--\n%s", i, runtime.GOMAXPROCS(0), got, base)
		}
	}
}
