package analysis

import (
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// pipe builds S(schema) -> acts... -> T(tgtSchema) and regenerates.
func pipe(t *testing.T, schema, tgtSchema data.Schema, acts ...*workflow.Activity) *workflow.Graph {
	t.Helper()
	g := workflow.NewGraph()
	cur := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: schema, Rows: 100, IsSource: true})
	for _, a := range acts {
		id := g.AddActivity(a)
		g.MustAddEdge(cur, id)
		cur = id
	}
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: tgtSchema, IsTarget: true})
	g.MustAddEdge(cur, tgt)
	return g
}

func mustCheckWorkflow(t *testing.T, g *workflow.Graph) []Finding {
	t.Helper()
	fs, err := CheckWorkflow(g)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// wantFinding asserts exactly one finding of the check whose message
// contains the substring.
func wantFinding(t *testing.T, fs []Finding, check, substr string) {
	t.Helper()
	matched := 0
	for _, f := range byCheck(fs, check) {
		if strings.Contains(f.Message, substr) {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("want one %s finding mentioning %q, got %d in %v", check, substr, matched, fs)
	}
}

func TestUnresolvedReferenceMissingAttr(t *testing.T) {
	g := pipe(t, data.Schema{"K", "V"}, data.Schema{"K", "V"},
		templates.Threshold("MISSING", 10, 0.5))
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "unresolved-reference", `"MISSING"`)
}

func TestUnresolvedReferenceTargetMismatch(t *testing.T) {
	g := pipe(t, data.Schema{"K", "V"}, data.Schema{"K", "V", "EXTRA"},
		templates.Threshold("V", 10, 0.5))
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "unresolved-reference", `target T expects "EXTRA"`)

	g2 := pipe(t, data.Schema{"K", "V"}, data.Schema{"K"},
		templates.Threshold("V", 10, 0.5))
	fs2 := mustCheckWorkflow(t, g2)
	wantFinding(t, fs2, "unresolved-reference", `delivers "V"`)
}

func TestUnionBranchDisagreement(t *testing.T) {
	g := workflow.NewGraph()
	s1 := g.AddRecordset(&workflow.RecordsetRef{Name: "S1", Schema: data.Schema{"K", "V"}, Rows: 100, IsSource: true})
	s2 := g.AddRecordset(&workflow.RecordsetRef{Name: "S2", Schema: data.Schema{"K", "W"}, Rows: 100, IsSource: true})
	u := g.AddActivity(templates.Union())
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V"}, IsTarget: true})
	g.MustAddEdge(s1, u)
	g.MustAddEdge(s2, u)
	g.MustAddEdge(u, tgt)
	fs := mustCheckWorkflow(t, g)
	if len(byCheck(fs, "unresolved-reference")) == 0 &&
		len(byCheck(fs, "schema-derivation")) == 0 {
		t.Errorf("mismatched union branches should be flagged, got %v", fs)
	}
}

func TestShadowedReferenceFuncOutput(t *testing.T) {
	// scale10 regenerates V from RAW while V already flows in: two
	// entities under one name.
	g := pipe(t, data.Schema{"K", "RAW", "V"}, data.Schema{"K", "RAW", "V"},
		templates.Convert("scale10", "V", "RAW"))
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "shadowed-reference", `"V"`)
}

func TestDeadGeneration(t *testing.T) {
	// V2 is generated, never read, and the target does not store it.
	g := pipe(t, data.Schema{"K", "RAW"}, data.Schema{"K", "RAW"},
		templates.Convert("scale10", "V2", "RAW"))
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "dead-generation", `"V2"`)

	// Stored by the target: not dead.
	g2 := pipe(t, data.Schema{"K", "RAW"}, data.Schema{"K", "RAW", "V2"},
		templates.Convert("scale10", "V2", "RAW"))
	fs2 := mustCheckWorkflow(t, g2)
	if n := len(byCheck(fs2, "dead-generation")); n != 0 {
		t.Errorf("stored generation flagged as dead: %v", fs2)
	}
}

func TestAuxSchemaGapUndeclaredParam(t *testing.T) {
	// A not-null whose functionality schema forgot the checked attribute:
	// the swap guards reason over Fun, so the gap breaks optimization.
	a := templates.NotNull(0.9, "V")
	a.Fun = data.Schema{}
	g := pipe(t, data.Schema{"K", "V"}, data.Schema{"K", "V"}, a)
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "aux-schema-gap", `"V"`)
}

func TestAuxSchemaGapUndeclaredGeneration(t *testing.T) {
	a := templates.Convert("scale10", "V2", "RAW")
	a.Gen = data.Schema{}
	g := pipe(t, data.Schema{"K", "RAW"}, data.Schema{"K", "RAW", "V2"}, a)
	fs := mustCheckWorkflow(t, g)
	wantFinding(t, fs, "aux-schema-gap", `"V2"`)
}

func TestSchemaDerivationFailure(t *testing.T) {
	// An aggregation grouped on an attribute its input cannot deliver:
	// schema derivation itself fails, and the framework reports that as
	// one finding instead of running dataflow passes on garbage.
	g := pipe(t, data.Schema{"K", "V"}, data.Schema{"G", "TOT"},
		templates.Aggregate([]string{"G"}, workflow.AggSum, "V", "TOT", 0.4))
	fs := mustCheckWorkflow(t, g)
	if len(fs) == 0 {
		t.Fatal("underivable schema should yield findings")
	}
	hasDerivationOrUnresolved := len(byCheck(fs, "schema-derivation"))+len(byCheck(fs, "unresolved-reference")) > 0
	if !hasDerivationOrUnresolved {
		t.Errorf("want schema-derivation or unresolved-reference, got %v", fs)
	}
}

// TestFig1WarningFree: the paper's own example stays free of warnings
// under the full extended pass suite (advice is fine).
func TestFig1WarningFree(t *testing.T) {
	fs := mustCheckWorkflow(t, templates.Fig1Workflow())
	for _, f := range fs {
		if f.Severity == Warning {
			t.Errorf("Fig. 1 warning: %s", f)
		}
	}
}

// TestFindingsSorted: CheckWorkflow returns findings in the documented
// deterministic order (check, then node, then message).
func TestFindingsSorted(t *testing.T) {
	// A workflow tripping several checks at several nodes.
	g := pipe(t, data.Schema{"K", "V", "BALLAST"}, data.Schema{"K", "V"},
		templates.Threshold("MISSING", 10, 0.5),
		templates.Convert("scale10", "V", "K"),
		templates.SurrogateKey("K", "SK", "LOOK"))
	fs := mustCheckWorkflow(t, g)
	if len(fs) < 3 {
		t.Fatalf("expected several findings, got %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.Check > b.Check ||
			(a.Check == b.Check && a.Node > b.Node) ||
			(a.Check == b.Check && a.Node == b.Node && a.Where == b.Where && a.Message > b.Message) {
			t.Errorf("findings out of order at %d: %v then %v", i, a, b)
		}
	}
}

func TestPassRegistry(t *testing.T) {
	kinds := map[Kind]int{}
	for _, p := range AllPasses() {
		kinds[p.Kind()]++
		if p.Name() == "" || p.Doc() == "" {
			t.Errorf("pass %q missing metadata", p.Name())
		}
	}
	if kinds[KindWorkflow] < 13 || kinds[KindTrace] != 4 || kinds[KindSource] < 8 {
		t.Errorf("registry families: %v", kinds)
	}
	for _, k := range []Kind{KindWorkflow, KindTrace, KindSource} {
		ps := Passes(k)
		for i := 1; i < len(ps); i++ {
			if ps[i-1].Name() >= ps[i].Name() {
				t.Errorf("%v passes not sorted: %s >= %s", k, ps[i-1].Name(), ps[i].Name())
			}
		}
	}
}
