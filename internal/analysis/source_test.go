package analysis

import (
	"os"
	"strings"
	"testing"
)

// fixtureFindings runs the source passes over the testdata fixture.
func fixtureFindings(t *testing.T) []Finding {
	t.Helper()
	fs, err := AnalyzeSource([]string{"./testdata/src/fixture"})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// byCheck filters findings by check name.
func byCheck(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestFixtureMapIteration: every order-sensitive sink in the fixture is
// flagged, and every exempted idiom is not.
func TestFixtureMapIteration(t *testing.T) {
	fs := byCheck(fixtureFindings(t), "map-iteration")
	wantSubstr := []string{
		"append to keys",      // BadAppend
		"assignment to last",  // BadLastWriter
		"accumulation of sum", // BadFloatSum
		"store into out",      // BadCounterIndex
		"return of a range",   // BadEarlyReturn
		"b.WriteString",       // BadBuilder
		"send on ch",          // BadSend
	}
	if len(fs) != len(wantSubstr) {
		t.Errorf("want %d map-iteration findings, got %d: %v", len(wantSubstr), len(fs), fs)
	}
	for _, want := range wantSubstr {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q in %v", want, fs)
		}
	}
	// The exempted idioms live between lines the violations pin; make the
	// boundary explicit: nothing may point into a Good* function.
	src := mustReadFixture(t)
	for _, f := range fs {
		if fn := enclosingFixtureFunc(src, f.Where); strings.HasPrefix(fn, "Good") {
			t.Errorf("false positive inside %s: %s", fn, f)
		}
	}
}

func TestFixtureOtherPasses(t *testing.T) {
	fs := fixtureFindings(t)
	for check, want := range map[string]int{
		"wall-clock": 1,
		"randomness": 1,
		"ctx-first":  1,
	} {
		if got := len(byCheck(fs, check)); got != want {
			t.Errorf("%s: want %d finding(s), got %d: %v", check, want, got, byCheck(fs, check))
		}
	}
}

// TestOptimizerSourcesLintClean is the acceptance check: the determinism
// linter runs clean over the search core and the execution engine (and,
// since CI enforces it, the whole internal tree).
func TestOptimizerSourcesLintClean(t *testing.T) {
	fs, err := AnalyzeSource([]string{"../core", "../engine"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("determinism finding in optimizer sources: %s", f)
	}
}

func TestInternalTreeLintsClean(t *testing.T) {
	fs, err := AnalyzeSource([]string{"./../..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("determinism finding under internal/: %s", f)
	}
}

// mustReadFixture loads the fixture source for location checks.
func mustReadFixture(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile("testdata/src/fixture/fixture.go")
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(data), "\n")
}

// enclosingFixtureFunc maps a finding location ("fixture.go:42:7") to the
// name of the func declaration above that line.
func enclosingFixtureFunc(lines []string, where string) string {
	parts := strings.Split(where, ":")
	if len(parts) < 2 {
		return ""
	}
	line := 0
	for _, c := range parts[1] {
		line = line*10 + int(c-'0')
	}
	name := ""
	for i := 0; i < line && i < len(lines); i++ {
		if rest, ok := strings.CutPrefix(lines[i], "func "); ok {
			name = rest[:strings.IndexAny(rest, "(")]
		}
	}
	return name
}
