package analysis

// Finding baselines. A baseline is a committed snapshot of the findings
// a tree is known to carry; CI diffs fresh findings against it and
// fails only on NEW ones, so an analyzer upgrade that surfaces existing
// debt ratchets instead of blocking. Keys deliberately exclude line and
// column: moving an acknowledged finding around a file must not
// resurrect it. Counts are tracked per key, so introducing a second
// instance of an already-baselined finding still fails.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Baseline is a multiset of acknowledged findings keyed by
// check + file + message.
type Baseline struct {
	counts map[string]int
}

// baselineKey is the identity of a finding for baseline purposes. Line
// and column are excluded on purpose; node IDs are likewise volatile
// across workflow edits and excluded.
func baselineKey(f Finding) string {
	return f.Check + "\t" + f.File + "\t" + f.Message
}

// NewBaseline builds a baseline acknowledging exactly the given
// findings.
func NewBaseline(fs []Finding) *Baseline {
	b := &Baseline{counts: map[string]int{}}
	for _, f := range fs {
		b.counts[baselineKey(f)]++
	}
	return b
}

// Len reports the number of acknowledged finding instances.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter returns the findings not covered by the baseline, preserving
// input order. Each acknowledged instance absorbs at most one matching
// finding, so a key that occurs k times in the baseline and k+1 times
// in fs yields one survivor.
func (b *Baseline) Filter(fs []Finding) []Finding {
	budget := make(map[string]int, len(b.counts))
	for k, c := range b.counts {
		budget[k] = c
	}
	var out []Finding
	for _, f := range fs {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline writes the findings as a baseline file: a comment
// header, then one tab-separated record per distinct key —
// count, check, file, message — sorted by key so regeneration is
// byte-stable and diffs review cleanly.
func WriteBaseline(w io.Writer, fs []Finding) error {
	counts := map[string]int{}
	for _, f := range fs {
		counts[baselineKey(f)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s baseline: acknowledged findings, one per line.\n", ToolName)
	fmt.Fprintf(bw, "# count<TAB>check<TAB>file<TAB>message — regenerate with -write-baseline.\n")
	for _, k := range keys {
		fmt.Fprintf(bw, "%d\t%s\n", counts[k], k)
	}
	return bw.Flush()
}

// ReadBaseline parses a baseline file written by WriteBaseline. Blank
// lines and #-comments are ignored; anything else must be a
// count-prefixed record.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("baseline line %d: want count<TAB>key, got %q", lineNo, line)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[0])
		}
		b.counts[parts[1]] += n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
