package analysis

import (
	"fmt"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// The workflow pass family: schema dataflow analysis over provider edges
// (§3.1's naming principle — one Ωn reference name, one entity — plus the
// auxiliary-schema discipline of §3.2), together with the design checks
// absorbed from the former internal/lint rule set.

func init() {
	RegisterWorkflow("unresolved-reference",
		"attributes an activity references but no upstream output provides",
		unresolvedReferences)
	RegisterWorkflow("shadowed-reference",
		"generated attributes that collide with an incoming reference name",
		shadowedReferences)
	RegisterWorkflow("dead-generation",
		"attributes generated but never consumed by any activity or target",
		deadGenerations)
	RegisterWorkflow("aux-schema-gap",
		"auxiliary schemata (Fun/Gen/PrjOut) that under-cover the activity's semantics",
		auxSchemaGaps)
	RegisterWorkflow("dead-attribute",
		"source attributes nothing reads and no target stores",
		deadAttributes)
	RegisterWorkflow("unguarded-surrogate-key",
		"surrogate-key lookups without an upstream not-null guard",
		unprotectedLookups)
	RegisterWorkflow("selectivity-range",
		"selectivity estimates the cost model cannot price",
		selectivityRanges)
	RegisterWorkflow("redundant-activity",
		"directly repeated activities with identical semantics",
		redundantActivities)
	RegisterWorkflow("late-projection",
		"projections whose dropped attributes died far upstream",
		lateProjections)
}

// availIn returns the union of the activity node's derived input
// schemata — everything upstream outputs actually deliver.
func availIn(n *workflow.Node) data.Schema {
	if len(n.In) == 1 {
		return n.In[0]
	}
	var all data.Schema
	for _, in := range n.In {
		all = all.Union(in)
	}
	return all
}

// semParams lists the attributes the operation's parameters reference —
// the Ωn names the semantics inspect, excluding generated outputs.
func semParams(a *workflow.Activity) []string {
	switch a.Sem.Op {
	case workflow.OpNotNull, workflow.OpPKCheck, workflow.OpProject,
		workflow.OpJoin, workflow.OpDiff, workflow.OpIntersect:
		return a.Sem.Attrs
	case workflow.OpFunc:
		return a.Sem.FnArgs
	case workflow.OpAggregate:
		params := append([]string(nil), a.Sem.Attrs...)
		if a.Sem.Agg != workflow.AggCount && a.Sem.AggAttr != "" {
			params = append(params, a.Sem.AggAttr)
		}
		return params
	case workflow.OpSurrogateKey:
		return []string{a.Sem.KeyAttr}
	default:
		return nil
	}
}

// unresolvedReferences flags references to attribute names no upstream
// output delivers — activities whose input schema cannot actually be
// derived from their providers' outputs — plus union branches and target
// loads whose schemata disagree.
func unresolvedReferences(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		a := n.Act
		if a.Sem.Op == workflow.OpMerged {
			continue
		}
		all := availIn(n)
		seen := map[string]bool{}
		report := func(attr, role string) {
			if attr == "" || seen[attr] || all.Has(attr) {
				return
			}
			seen[attr] = true
			out = append(out, Finding{
				Severity: Warning, Check: "unresolved-reference", Node: id,
				Message: fmt.Sprintf("%s references %q, which no upstream output provides", role, attr),
				Fix:     "correct the reference or extend the upstream outputs to deliver it",
			})
		}
		for _, attr := range a.Fun {
			report(attr, "functionality schema")
		}
		for _, attr := range a.RequiredIn {
			report(attr, "declared input schema")
		}
		for _, attr := range semParams(a) {
			report(attr, "operation parameter")
		}
		if a.Sem.Op == workflow.OpUnion && len(n.In) == 2 && !n.In[0].SameSet(n.In[1]) {
			for _, attr := range n.In[0].Minus(n.In[1]).Union(n.In[1].Minus(n.In[0])) {
				out = append(out, Finding{
					Severity: Warning, Check: "unresolved-reference", Node: id,
					Message: fmt.Sprintf("union branches disagree on %q: one branch delivers it, the other does not", attr),
					Fix:     "align both branches' output schemata before the union",
				})
			}
		}
	}
	for _, id := range g.Targets() {
		n := g.Node(id)
		if len(n.In) == 1 && !n.In[0].SameSet(n.RS.Schema) {
			for _, attr := range n.RS.Schema.Minus(n.In[0]) {
				out = append(out, Finding{
					Severity: Warning, Check: "unresolved-reference", Node: id,
					Message: fmt.Sprintf("target %s expects %q, which the loading flow does not deliver", n.RS.Name, attr),
					Fix:     "generate or carry the attribute through the flow, or drop it from the target schema",
				})
			}
			for _, attr := range n.In[0].Minus(n.RS.Schema) {
				out = append(out, Finding{
					Severity: Warning, Check: "unresolved-reference", Node: id,
					Message: fmt.Sprintf("loading flow delivers %q, which target %s does not store", attr, n.RS.Name),
					Fix:     "project the attribute out before the target, or add it to the target schema",
				})
			}
		}
	}
	return out
}

// shadowedReferences flags generated attributes colliding with an
// incoming attribute of the same name — under the §3.1 naming principle
// one reference name denotes one entity, so a collision silently merges
// two. Joins whose inputs share non-key attributes collapse the same way.
func shadowedReferences(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		a := n.Act
		all := availIn(n)
		shadow := func(attr string) {
			out = append(out, Finding{
				Severity: Warning, Check: "shadowed-reference", Node: id,
				Message: fmt.Sprintf("generated attribute %q shadows an incoming attribute of the same name", attr),
				Fix:     "rename the generated attribute; one reference name must denote one entity",
			})
		}
		switch a.Sem.Op {
		case workflow.OpFunc:
			if !a.InPlace() && all.Has(a.Sem.OutAttr) && !data.Schema(a.Sem.FnArgs).Has(a.Sem.OutAttr) {
				shadow(a.Sem.OutAttr)
			}
		case workflow.OpAggregate:
			if all.Has(a.Sem.OutAttr) && a.Sem.OutAttr != a.Sem.AggAttr {
				shadow(a.Sem.OutAttr)
			}
		case workflow.OpSurrogateKey:
			if all.Has(a.Sem.OutAttr) {
				shadow(a.Sem.OutAttr)
			}
		case workflow.OpJoin:
			if len(n.In) == 2 {
				keys := data.Schema(a.Sem.Attrs)
				for _, attr := range n.In[0].Intersect(n.In[1]).Minus(keys) {
					out = append(out, Finding{
						Severity: Warning, Check: "shadowed-reference", Node: id,
						Message: fmt.Sprintf("both join inputs carry non-key attribute %q; the joined output collapses two entities under one name", attr),
						Fix:     "rename the attribute on one branch or project it out before the join",
					})
				}
			}
		}
	}
	return out
}

// deadGenerations flags attributes an activity generates that nothing
// downstream consumes and no target stores — computed, carried, and
// thrown away.
func deadGenerations(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		a := n.Act
		if a.Sem.Op == workflow.OpMerged {
			continue
		}
		all := availIn(n)
		for _, attr := range a.Gen {
			if all.Has(attr) {
				continue // in-place transformation, not a fresh name
			}
			if consumedDownstream(g, id, attr) {
				continue
			}
			out = append(out, Finding{
				Severity: Advice, Check: "dead-generation", Node: id,
				Message: fmt.Sprintf("attribute %q is generated but never consumed by any activity and never stored by a target", attr),
				Fix:     "drop the generation, or store the attribute in a target",
			})
		}
	}
	return out
}

// consumedDownstream reports whether any activity reachable from id reads
// attr (projections dropping it are disposal, not consumption) or any
// reachable target stores it.
func consumedDownstream(g *workflow.Graph, id workflow.NodeID, attr string) bool {
	seen := map[workflow.NodeID]bool{id: true}
	queue := append([]workflow.NodeID(nil), g.Consumers(id)...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		n := g.Node(cur)
		if n.Kind == workflow.KindRecordset {
			if n.RS.Schema.Has(attr) {
				return true
			}
			queue = append(queue, g.Consumers(cur)...)
			continue
		}
		a := n.Act
		reads := a.Fun.Has(attr) || a.RequiredIn.Has(attr) || data.Schema(semParams(a)).Has(attr)
		if reads && !(a.Sem.Op == workflow.OpProject && data.Schema(a.Sem.Attrs).Has(attr)) {
			return true
		}
		if a.PrjOut.Has(attr) || (a.Sem.Op == workflow.OpProject && data.Schema(a.Sem.Attrs).Has(attr)) {
			continue // dropped on this path
		}
		queue = append(queue, g.Consumers(cur)...)
	}
	return false
}

// auxSchemaGaps flags auxiliary schemata that under-cover the activity's
// semantics. The swap guards (§3.3) and the homologous-activity test
// (§3.2) reason over Fun/Gen/PrjOut, so a gap there lets the optimizer
// prove equivalences that do not hold.
func auxSchemaGaps(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		a := n.Act
		if a.Sem.Op == workflow.OpMerged {
			continue
		}
		for _, attr := range semParams(a) {
			if attr != "" && !a.Fun.Has(attr) {
				out = append(out, Finding{
					Severity: Warning, Check: "aux-schema-gap", Node: id,
					Message: fmt.Sprintf("operation inspects %q but the functionality schema does not declare it; swap guards reason over Fun", attr),
					Fix:     fmt.Sprintf("add %q to the activity's functionality schema", attr),
				})
			}
		}
		genOut := ""
		switch a.Sem.Op {
		case workflow.OpFunc:
			if !a.InPlace() {
				genOut = a.Sem.OutAttr
			}
		case workflow.OpAggregate:
			if a.Sem.OutAttr != a.Sem.AggAttr {
				genOut = a.Sem.OutAttr
			}
		case workflow.OpSurrogateKey:
			genOut = a.Sem.OutAttr
		}
		if genOut != "" && !a.Gen.Has(genOut) {
			out = append(out, Finding{
				Severity: Warning, Check: "aux-schema-gap", Node: id,
				Message: fmt.Sprintf("operation generates %q but the generated schema does not declare it", genOut),
				Fix:     fmt.Sprintf("add %q to the activity's generated schema", genOut),
			})
		}
		all := availIn(n)
		for _, attr := range a.PrjOut {
			if !all.Has(attr) && !a.Gen.Has(attr) {
				out = append(out, Finding{
					Severity: Warning, Check: "aux-schema-gap", Node: id,
					Message: fmt.Sprintf("projected-out schema drops %q, which is neither delivered upstream nor generated here", attr),
					Fix:     fmt.Sprintf("remove %q from the projected-out schema or correct the reference", attr),
				})
			}
		}
	}
	return out
}

// deadAttributes reports source attributes that no activity reads and no
// target stores — rows carry them through the whole flow for nothing.
func deadAttributes(g *workflow.Graph) []Finding {
	used := map[string]bool{}
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		for _, attr := range a.Fun {
			used[attr] = true
		}
		for _, attr := range a.RequiredIn {
			used[attr] = true
		}
	}
	for _, id := range g.Targets() {
		for _, attr := range g.Node(id).RS.Schema {
			used[attr] = true
		}
	}
	var out []Finding
	for _, id := range g.Sources() {
		n := g.Node(id)
		for _, attr := range n.RS.Schema {
			if !used[attr] {
				out = append(out, Finding{
					Severity: Advice, Node: id, Check: "dead-attribute",
					Message: fmt.Sprintf("source %s attribute %q is never read and never stored; project it out at the source",
						n.RS.Name, attr),
					Fix: "project the attribute out at the source, or remove it from the source schema",
				})
			}
		}
	}
	return out
}

// unprotectedLookups reports surrogate-key activities whose production key
// is not guarded by an upstream not-null check: a NULL key cannot resolve
// and fails the load at run time.
func unprotectedLookups(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpSurrogateKey {
			continue
		}
		if !guardedUpstream(g, id, a.Sem.KeyAttr) {
			out = append(out, Finding{
				Severity: Warning, Node: id, Check: "unguarded-surrogate-key",
				Message: fmt.Sprintf("no upstream not-null check on %q; a NULL production key fails the lookup at run time",
					a.Sem.KeyAttr),
				Fix: fmt.Sprintf("add a not-null check on %q upstream of the surrogate-key assignment", a.Sem.KeyAttr),
			})
		}
	}
	return out
}

// guardedUpstream reports whether every path from the sources to node id
// passes a not-null check covering attr. An activity that generates attr
// is a guard boundary: the attribute did not exist before it, so the
// guard question applies to the generator's own semantics.
func guardedUpstream(g *workflow.Graph, id workflow.NodeID, attr string) bool {
	preds := g.Providers(id)
	if len(preds) == 0 {
		return false // reached a source without a guard
	}
	for _, p := range preds {
		n := g.Node(p)
		if n.Kind == workflow.KindActivity {
			a := n.Act
			if a.Sem.Op == workflow.OpNotNull && data.Schema(a.Sem.Attrs).Has(attr) {
				continue // this path is guarded
			}
			if a.Gen.Has(attr) {
				continue // generated here; guarding is the generator's concern
			}
		}
		if !guardedUpstream(g, p, attr) {
			return false
		}
	}
	return true
}

// selectivityRanges reports selectivity estimates outside what the cost
// model can price: unary activities want (0, 1]; joins want a positive
// match fraction well below 1.
func selectivityRanges(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		switch {
		case a.Sem.Op == workflow.OpUnion:
			// No selectivity.
		case a.Sem.Op == workflow.OpJoin:
			if a.Sel <= 0 || a.Sel > 1 {
				out = append(out, Finding{
					Severity: Warning, Node: id, Check: "selectivity-range",
					Message: fmt.Sprintf("join selectivity %g outside (0,1]", a.Sel),
					Fix:     "estimate the join match fraction as a value in (0,1]",
				})
			}
		default:
			if a.Sel <= 0 || a.Sel > 1 {
				out = append(out, Finding{
					Severity: Warning, Node: id, Check: "selectivity-range",
					Message: fmt.Sprintf("selectivity %g outside (0,1]", a.Sel),
					Fix:     "estimate the selectivity as a value in (0,1]",
				})
			}
		}
	}
	return out
}

// redundantActivities reports directly repeated activities with identical
// semantics — the second is a no-op for filters and checks, and a likely
// copy-paste error for everything else.
func redundantActivities(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		if n.Act.IsBinary() {
			continue
		}
		for _, c := range g.Consumers(id) {
			cn := g.Node(c)
			if cn.Kind == workflow.KindActivity && !cn.Act.IsBinary() &&
				cn.Act.SameOperation(n.Act) {
				out = append(out, Finding{
					Severity: Advice, Node: c, Check: "redundant-activity",
					Message: fmt.Sprintf("repeats its provider's operation %s", n.Act.Sem),
					Fix:     "remove the repeated activity",
				})
			}
		}
	}
	return out
}

// lateProjections reports projections whose dropped attributes were last
// read far upstream: every row between the last reader and the projection
// carried the attribute for nothing. (The optimizer can often push the
// projection itself; this check fires even when swap conditions block it.)
func lateProjections(g *workflow.Graph) []Finding {
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	pos := map[workflow.NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpProject {
			continue
		}
		for _, attr := range a.Sem.Attrs {
			lastUse := -1
			for _, other := range g.Activities() {
				if other == id {
					continue
				}
				oa := g.Node(other).Act
				if oa.Fun.Has(attr) && pos[other] < pos[id] && pos[other] > lastUse {
					lastUse = pos[other]
				}
			}
			// "Far" = more than two nodes of slack between the last reader
			// (or the source) and the projection.
			if pos[id]-lastUse > 3 {
				out = append(out, Finding{
					Severity: Advice, Node: id, Check: "late-projection",
					Message: fmt.Sprintf("attribute %q is dead long before this projection; consider dropping it earlier", attr),
					Fix:     "move the projection upstream, next to the attribute's last reader",
				})
				break
			}
		}
	}
	return out
}
