package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// sarifFixture is a small deterministic finding set covering every
// shape the writer handles: a warning with a full location, advice with
// file but no line, a registry-known workflow check with no artifact,
// and a check the registry does not know.
func sarifFixture() []Finding {
	return []Finding{
		{Severity: Warning, Check: "map-iteration", Node: -1,
			Where: "cmd/etlrun/main.go:305:2", File: "cmd/etlrun/main.go", Line: 305, Col: 2,
			Message: "assignment to target inside map iteration",
			Fix:     "iterate sorted keys"},
		{Severity: Advice, Check: "dead-filter", Node: 4, File: "examples/workflows/small-01.etl",
			Message: "filter a16 is statically always true"},
		{Severity: Warning, Check: "unsatisfiable-guard", Node: 7,
			Message: "guard is statically always false"},
		{Severity: Warning, Check: "schema-derivation", Node: -1,
			Message: "input schemata cannot be derived"},
	}
}

// TestWriteSARIFGolden pins the exact SARIF bytes for the fixture. Run
// `go test ./internal/analysis -run SARIFGolden -update` after a
// deliberate registry or writer change.
func TestWriteSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifFixture()); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/golden.sarif"
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s (rerun with -update after a deliberate change):\n%s", golden, buf.String())
	}
}

// TestWriteSARIFStructure checks the schema-level contract: version,
// $schema, the rule table sourced from the pass registry, level
// mapping, and locations.
func TestWriteSARIFStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifFixture()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name    string `json:"name"`
					Version string `json:"version"`
					Rules   []struct {
						ID               string `json:"id"`
						ShortDescription *struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "etlvet" || run.Tool.Driver.Version == "" {
		t.Errorf("driver %q %q", run.Tool.Driver.Name, run.Tool.Driver.Version)
	}
	// Every registered pass appears as a rule, with its doc.
	ruleIdx := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		ruleIdx[r.ID] = i
	}
	for _, p := range AllPasses() {
		i, ok := ruleIdx[p.Name()]
		if !ok {
			t.Errorf("registered pass %q missing from rule table", p.Name())
			continue
		}
		r := run.Tool.Driver.Rules[i]
		if r.ShortDescription == nil || r.ShortDescription.Text != p.Doc() {
			t.Errorf("rule %q doc not taken from registry", p.Name())
		}
	}
	// The framework-only check got a synthetic rule.
	if _, ok := ruleIdx["schema-derivation"]; !ok {
		t.Error("schema-derivation missing from rule table")
	}
	if len(run.Results) != 4 {
		t.Fatalf("want 4 results, got %d", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "map-iteration" || first.Level != "warning" {
		t.Errorf("result 0: %+v", first)
	}
	if ruleIdx[first.RuleID] != first.RuleIndex {
		t.Errorf("ruleIndex %d does not match rule table position %d", first.RuleIndex, ruleIdx[first.RuleID])
	}
	if !strings.Contains(first.Message.Text, "(fix: iterate sorted keys)") {
		t.Errorf("fix not folded into message: %q", first.Message.Text)
	}
	if len(first.Locations) != 1 ||
		first.Locations[0].PhysicalLocation.ArtifactLocation.URI != "cmd/etlrun/main.go" ||
		first.Locations[0].PhysicalLocation.Region == nil ||
		first.Locations[0].PhysicalLocation.Region.StartLine != 305 ||
		first.Locations[0].PhysicalLocation.Region.StartColumn != 2 {
		t.Errorf("result 0 location: %+v", first.Locations)
	}
	second := run.Results[1]
	if second.Level != "note" {
		t.Errorf("advice should map to note, got %q", second.Level)
	}
	if len(second.Locations) != 1 || second.Locations[0].PhysicalLocation.Region != nil {
		t.Errorf("file-only finding should have a location without a region: %+v", second.Locations)
	}
	if len(run.Results[2].Locations) != 0 {
		t.Errorf("artifact-less finding should have no locations: %+v", run.Results[2].Locations)
	}
}

// TestBaselineRoundTrip: write → read → filter is the identity gate.
func TestBaselineRoundTrip(t *testing.T) {
	fs := sarifFixture()
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, fs); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(fs) {
		t.Fatalf("baseline Len %d, want %d", b.Len(), len(fs))
	}
	// The exact same findings are fully absorbed.
	if left := b.Filter(fs); len(left) != 0 {
		t.Errorf("round-trip should absorb everything, got %v", left)
	}
	// Moving an acknowledged finding within its file must not resurrect
	// it: line/col are not part of the key.
	moved := append([]Finding(nil), fs...)
	moved[0].Line, moved[0].Col, moved[0].Where = 999, 1, "cmd/etlrun/main.go:999:1"
	if left := b.Filter(moved); len(left) != 0 {
		t.Errorf("line move resurrected a baselined finding: %v", left)
	}
	// A genuinely new finding survives the filter.
	novel := Finding{Severity: Warning, Check: "map-iteration", Node: -1,
		File: "internal/core/core.go", Line: 10,
		Message: "assignment to target inside map iteration"}
	if left := b.Filter(append(moved, novel)); len(left) != 1 || left[0].File != novel.File {
		t.Errorf("new finding should survive, got %v", left)
	}
	// A second instance of an already-baselined key also survives.
	dup := append(append([]Finding(nil), fs...), fs[0])
	if left := b.Filter(dup); len(left) != 1 {
		t.Errorf("count overflow should survive, got %v", left)
	}
}

// TestBaselineDeterministic: regenerating a baseline from permuted
// findings yields identical bytes.
func TestBaselineDeterministic(t *testing.T) {
	fs := sarifFixture()
	rev := make([]Finding, len(fs))
	for i, f := range fs {
		rev[len(fs)-1-i] = f
	}
	var a, b bytes.Buffer
	if err := WriteBaseline(&a, fs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(&b, rev); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("baseline not order-independent:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestReadBaselineErrors: malformed records are rejected with the line
// number.
func TestReadBaselineErrors(t *testing.T) {
	for _, bad := range []string{
		"no-tabs-here\n",
		"x\tmap-iteration\tf.go\tmsg\n",
		"0\tmap-iteration\tf.go\tmsg\n",
		"-2\tmap-iteration\tf.go\tmsg\n",
	} {
		if _, err := ReadBaseline(strings.NewReader(bad)); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
	// Comments and blanks are fine.
	b, err := ReadBaseline(strings.NewReader("# header\n\n1\tc\tf\tm\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}
