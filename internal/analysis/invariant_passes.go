package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The invariant source passes enforce the repo's own concurrency and
// copy-on-write contracts at vet time — the discipline DESIGN.md §7/§8
// documents and the -tags etldebug runtime audits check dynamically:
//
//   - nodes returned by Graph.Node may be structurally shared between a
//     COW parent and its Mutate children; only package workflow may write
//     them (through mutableNode), everyone else must use graph methods;
//   - Fingerprint/Signature renderings cache the graph's structure; a
//     copy held across a subsequent structural mutation is stale;
//   - goroutine closures must not write outer variables except through
//     the per-goroutine slot discipline (distinct slice indices), atomics
//     or a mutex;
//   - COW children built by Mutate share node structs with their parent,
//     so an exported API must DeepClone before letting one escape.

func init() {
	RegisterSource("cow-node-write",
		"writes through a possibly-shared *workflow.Node obtained from Graph.Node",
		checkCOWNodeWrite)
	RegisterSource("stale-fingerprint",
		"cached Fingerprint/Signature values used after a structural mutation of the same graph",
		checkStaleFingerprint)
	RegisterSource("racy-goroutine-write",
		"goroutine closures writing outer variables without per-slot indexing, atomics or a lock",
		checkRacyGoroutineWrite)
	RegisterSource("shallow-escape",
		"COW graphs from Mutate escaping an exported API without DeepClone",
		checkShallowEscape)
}

// workflowNamed reports whether t is (a pointer to) the named workflow
// type, resolved through real type information; stubbed imports yield no
// named type and stay quiet.
func workflowNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name &&
		strings.HasSuffix(n.Obj().Pkg().Path(), "internal/workflow")
}

// graphMethodCall matches a call `recv.Name(...)` where recv's type is
// *workflow.Graph, returning the receiver expression.
func graphMethodCall(info *types.Info, call *ast.CallExpr, names ...string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !workflowNamed(tv.Type, "Graph") {
		return nil, false
	}
	return sel.X, true
}

// mutatingGraphMethods structurally change a graph, invalidating any
// cached fingerprint or signature of it.
var mutatingGraphMethods = []string{
	"AddEdge", "MustAddEdge", "RemoveEdge", "RemoveNode",
	"AddActivity", "AddRecordset", "ReplaceProvider", "MustReplaceProvider",
}

// checkCOWNodeWrite flags writes through a *workflow.Node local that was
// obtained from Graph.Node: under the copy-on-write discipline the
// pointed-to node may be shared with sibling states, and only package
// workflow (via mutableNode) may write shared nodes. Two provenances are
// exempt: nodes of a graph the same function created with Clone or
// DeepClone (its node structs are fresh) — unless the function also
// calls Mutate on that graph, which re-introduces sharing — and nodes
// from Node.Clone.
func checkCOWNodeWrite(p *SourcePackage) []Finding {
	if strings.HasSuffix(p.PkgPath, "internal/workflow") {
		return nil // the package that owns the discipline
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			_, body := funcNodeBody(n)
			if body == nil {
				return true
			}
			// Graphs this function made private copies of, and graphs it
			// re-entangled with Mutate.
			fresh := make(map[types.Object]bool)
			entangled := make(map[types.Object]bool)
			ast.Inspect(body, func(x ast.Node) bool {
				switch s := x.(type) {
				case *ast.AssignStmt:
					if s.Tok != token.DEFINE {
						return true
					}
					for i, rhs := range s.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok {
							continue
						}
						if _, ok := graphMethodCall(p.Info, call, "Clone", "DeepClone"); !ok {
							continue
						}
						if tv, ok := p.Info.Types[call]; !ok || !workflowNamed(tv.Type, "Graph") {
							continue // Node.Clone etc., not a graph copy
						}
						if i < len(s.Lhs) {
							if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
								if o := p.Info.Defs[id]; o != nil {
									fresh[o] = true
								}
							}
						}
					}
				case *ast.CallExpr:
					if recv, ok := graphMethodCall(p.Info, s, "Mutate"); ok {
						if id := rootIdent(recv); id != nil {
							if o := objOf(p.Info, id); o != nil {
								entangled[o] = true
							}
						}
					}
				}
				return true
			})
			// Locals defined from g.Node(...) on a possibly-shared graph.
			shared := make(map[types.Object]bool)
			ast.Inspect(body, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok || as.Tok != token.DEFINE {
					return true
				}
				for i, rhs := range as.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					recv, ok := graphMethodCall(p.Info, call, "Node")
					if !ok {
						continue
					}
					if gid := rootIdent(recv); gid != nil {
						if o := objOf(p.Info, gid); o != nil && fresh[o] && !entangled[o] {
							continue // private copy: its node structs are unshared
						}
					}
					if i < len(as.Lhs) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							if o := p.Info.Defs[id]; o != nil {
								shared[o] = true
							}
						}
					}
				}
				return true
			})
			if len(shared) == 0 {
				return true
			}
			ast.Inspect(body, func(x ast.Node) bool {
				var target ast.Expr
				var pos token.Pos
				switch s := x.(type) {
				case *ast.AssignStmt:
					if s.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range s.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							if id := rootIdent(sel.X); id != nil && shared[objOf(p.Info, id)] {
								target, pos = lhs, s.Pos()
							}
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := s.X.(*ast.SelectorExpr); ok {
						if id := rootIdent(sel.X); id != nil && shared[objOf(p.Info, id)] {
							target, pos = s.X, s.Pos()
						}
					}
				}
				if target != nil {
					id := rootIdent(target)
					out = append(out, p.finding(Warning, "cow-node-write", pos,
						fmt.Sprintf("write through %s, a node obtained from Graph.Node that may be structurally shared with sibling COW states", id.Name),
						"mutate through Graph methods (AddActivity, ReplaceProvider, ...), or work on a Node.Clone()"))
				}
				return true
			})
			return true
		})
	}
	return out
}

// funcNodeBody returns the body when n is a function declaration or
// literal, else nil.
func funcNodeBody(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch f := n.(type) {
	case *ast.FuncDecl:
		return f, f.Body
	case *ast.FuncLit:
		return f, f.Body
	}
	return nil, nil
}

// checkStaleFingerprint flags intra-function retention of a cached
// Graph.Fingerprint or Graph.Signature across a structural mutation of
// the same graph variable: the cached rendering no longer describes the
// graph, so interning or comparing with it is wrong.
func checkStaleFingerprint(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			_, body := funcNodeBody(n)
			if body == nil {
				return true
			}
			out = append(out, auditStaleCaches(p, body)...)
			return true
		})
	}
	return out
}

// cachedRender is one `v := g.Fingerprint()`-style binding.
type cachedRender struct {
	obj   types.Object // the cached local
	graph types.Object // the graph it renders
	via   string       // Fingerprint or Signature
	pos   token.Pos
}

func auditStaleCaches(p *SourcePackage, body *ast.BlockStmt) []Finding {
	info := p.Info
	var caches []cachedRender
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, ok := graphMethodCall(info, call, "Fingerprint", "Signature")
			if !ok {
				continue
			}
			gid := rootIdent(recv)
			if gid == nil || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(info, id)
			gobj := objOf(info, gid)
			if obj == nil || gobj == nil {
				continue
			}
			caches = append(caches, cachedRender{
				obj: obj, graph: gobj,
				via: call.Fun.(*ast.SelectorExpr).Sel.Name, pos: as.Pos(),
			})
		}
		return true
	})
	if len(caches) == 0 {
		return nil
	}
	// First structural mutation per graph object, by position.
	mutated := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := graphMethodCall(info, call, mutatingGraphMethods...)
		if !ok {
			return true
		}
		gid := rootIdent(recv)
		if gid == nil {
			return true
		}
		if o := objOf(info, gid); o != nil {
			if prev, ok := mutated[o]; !ok || call.Pos() < prev {
				mutated[o] = call.Pos()
			}
		}
		return true
	})
	if len(mutated) == 0 {
		return nil
	}
	var out []Finding
	reported := make(map[types.Object]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, c := range caches {
			if c.obj != obj {
				continue
			}
			mpos, ok := mutated[c.graph]
			if !ok || c.pos >= mpos || id.Pos() <= mpos {
				continue // cached after the mutation, or used before it
			}
			reported[obj] = true
			out = append(out, p.finding(Warning, "stale-fingerprint", id.Pos(),
				fmt.Sprintf("%s caches %s.%s() taken before a structural mutation of %s; the rendering is stale here",
					obj.Name(), c.graph.Name(), c.via, c.graph.Name()),
				fmt.Sprintf("re-read %s.%s() after the mutation, or finish using the cached value first", c.graph.Name(), c.via)))
		}
		return true
	})
	return out
}

// checkRacyGoroutineWrite flags goroutine closures that write variables
// declared outside the closure. The repo's worker discipline makes three
// shapes safe and they are exempt: stores through a slice or array index
// (each worker owns a distinct slot), closures that serialize through a
// Lock, and sync/atomic calls (calls, not assignments, so they never
// match). Everything else — plain variables, struct fields, outer maps,
// appends — is a data race under -race and nondeterministic before it.
func checkRacyGoroutineWrite(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if usesLock(lit.Body) {
				return true // serialized: the mutex, not the scheduler, orders writes
			}
			out = append(out, auditGoroutineWrites(p, lit)...)
			return true
		})
	}
	return out
}

// usesLock reports whether the block calls a Lock/RLock method — the
// closure serializes its shared writes.
func usesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func auditGoroutineWrites(p *SourcePackage, lit *ast.FuncLit) []Finding {
	info := p.Info
	outerVar := func(id *ast.Ident) types.Object {
		o := objOf(info, id)
		if o == nil || declaredWithin(o, lit) {
			return nil
		}
		if _, ok := o.(*types.Var); !ok {
			return nil
		}
		return o
	}
	var out []Finding
	flag := func(pos token.Pos, name, what string) {
		out = append(out, p.finding(Warning, "racy-goroutine-write", pos,
			fmt.Sprintf("goroutine writes %s %s without synchronization; concurrent workers race on it", what, name),
			"give each goroutine its own slice slot, use sync/atomic, or guard the write with a mutex"))
	}
	audit := func(lhs ast.Expr, pos token.Pos) {
		switch l := lhs.(type) {
		case *ast.Ident:
			if o := outerVar(l); o != nil {
				flag(pos, l.Name, "outer variable")
			}
		case *ast.SelectorExpr:
			if id := rootIdent(l.X); id != nil && outerVar(id) != nil {
				flag(pos, id.Name+"."+l.Sel.Name, "field of outer value")
			}
		case *ast.IndexExpr:
			base := rootIdent(l.X)
			if base == nil || outerVar(base) == nil {
				return
			}
			if tv, ok := info.Types[l.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					flag(pos, base.Name, "outer map")
				}
				// Slice/array index stores are the per-goroutine slot
				// discipline: each worker writes its own element.
			}
		case *ast.StarExpr:
			if id := rootIdent(l.X); id != nil && outerVar(id) != nil {
				flag(pos, "*"+id.Name, "value behind outer pointer")
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return s == lit // nested goroutine literals are audited by their own GoStmt visit
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				audit(lhs, s.Pos())
			}
		case *ast.IncDecStmt:
			audit(s.X, s.Pos())
		}
		return true
	})
	return out
}

// checkShallowEscape flags exported functions that return a graph
// obtained from Mutate: the COW child shares node structs with its
// parent, so handing it across a package boundary invites aliased
// mutation. The transitions package is exempt — its Result.Graph
// contract is documented COW, resolved by the search core's interning.
func checkShallowEscape(p *SourcePackage) []Finding {
	if strings.HasSuffix(p.PkgPath, "internal/workflow") ||
		strings.HasSuffix(p.PkgPath, "internal/transitions") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			// Locals defined from g.Mutate() in this function.
			cow := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, rhs := range as.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if _, ok := graphMethodCall(p.Info, call, "Mutate"); !ok {
						continue
					}
					if i < len(as.Lhs) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							if o := objOf(p.Info, id); o != nil {
								cow[o] = true
							}
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if _, body := funcNodeBody(x); body != nil {
					return false // returns inside nested literals leave that literal, not fd
				}
				ret, ok := x.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, r := range ret.Results {
					if call, ok := r.(*ast.CallExpr); ok {
						if _, ok := graphMethodCall(p.Info, call, "Mutate"); ok {
							out = append(out, p.finding(Warning, "shallow-escape", ret.Pos(),
								fmt.Sprintf("%s returns a COW child from Mutate; node structs stay shared with the parent across the package boundary", fd.Name.Name),
								"return DeepClone() of the result, or keep the COW child package-internal"))
							continue
						}
					}
					if id, ok := r.(*ast.Ident); ok {
						if o := objOf(p.Info, id); o != nil && cow[o] {
							out = append(out, p.finding(Warning, "shallow-escape", ret.Pos(),
								fmt.Sprintf("%s returns %s, a COW child from Mutate; node structs stay shared with the parent across the package boundary", fd.Name.Name, id.Name),
								"return DeepClone() of the result, or keep the COW child package-internal"))
						}
					}
				}
				return true
			})
		}
	}
	return out
}
