// Package analysis is a pluggable static-analysis framework for the ETL
// optimizer — the verification counterpart of the paper's correctness
// story (§4): every optimization is supposed to be semantics-preserving,
// and this package makes that checkable without executing data.
//
// Three families of passes share one finding model and one registry:
//
//   - workflow passes perform schema dataflow analysis over the provider
//     edges of a parsed workflow (unresolved or shadowed reference names,
//     attributes produced but never consumed, auxiliary-schema coverage
//     gaps, underivable input schemata), absorbing the design checks that
//     previously lived in internal/lint;
//   - trace passes re-verify a recorded optimization run offline: every
//     transition in a core.Result trace is replayed, its applicability
//     guard re-run, its post-conditions (§4) re-checked and its
//     signature/cost chain validated, certifying the run;
//   - source passes lint the optimizer's own Go sources with go/ast and
//     go/types, protecting the determinism invariants the parallel
//     search depends on (no order-sensitive map iteration, no wall-clock
//     or entropy in search paths, ctx-first exported APIs).
//
// Findings carry a severity, a check name, a location (graph node,
// trace step or source position) and a suggested fix. Warnings fail CI;
// advice does not — the exit-code semantics every CLI shares.
package analysis

import (
	"fmt"
	"io"
	"sort"

	"etlopt/internal/workflow"
)

// Severity grades a finding. The scale and its exit-code meaning are
// shared by every CLI: warnings exit nonzero, advice does not.
type Severity uint8

// Severities.
const (
	// Warning marks likely mistakes: wrong results, run-time failures,
	// broken invariants. CI fails on warnings.
	Warning Severity = iota
	// Advice marks inefficiencies or style issues the tools cannot prove
	// harmful.
	Advice
)

// String returns the severity's name.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "advice"
}

// Finding is one analysis result.
type Finding struct {
	Severity Severity
	// Check names the rule, e.g. "unresolved-reference".
	Check string
	// Node anchors the finding to a workflow graph node; -1 when the
	// finding is not graph-anchored (workflow-level, trace or source).
	Node workflow.NodeID
	// Where locates non-graph findings: a trace step ("step 3 SWA(5,6)")
	// or a source position ("core.go:42:7"). Empty for graph findings.
	Where   string
	Message string
	// Fix suggests a remedy; may be empty.
	Fix string
	// File is the machine-readable artifact location: a module-relative Go
	// source path for source findings, or the analyzed workflow/trace file
	// as set by the CLI. Empty when no artifact applies. Line and Col are
	// 1-based and 0 when unknown. The SARIF and baseline layers key on
	// these instead of parsing Where.
	File string
	Line int
	Col  int
}

// String renders the finding.
func (f Finding) String() string {
	loc := ""
	switch {
	case f.Node >= 0:
		loc = fmt.Sprintf(" node %d", f.Node)
	case f.Where != "":
		loc = " " + f.Where
	}
	msg := fmt.Sprintf("%s [%s]%s: %s", f.Severity, f.Check, loc, f.Message)
	if f.Fix != "" {
		msg += " (fix: " + f.Fix + ")"
	}
	return msg
}

// StringNamed renders the finding using node names (dsl.NodeNames) in
// place of raw node IDs.
func (f Finding) StringNamed(names map[workflow.NodeID]string) string {
	if f.Node >= 0 {
		if name, ok := names[f.Node]; ok {
			msg := fmt.Sprintf("%s [%s] %s: %s", f.Severity, f.Check, name, f.Message)
			if f.Fix != "" {
				msg += " (fix: " + f.Fix + ")"
			}
			return msg
		}
	}
	return f.String()
}

// Sort orders findings deterministically: by check name, then location
// (node, then textual location), then message. CI diffs stay stable.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		return a.Message < b.Message
	})
}

// CountWarnings returns the number of warning-severity findings.
func CountWarnings(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if f.Severity == Warning {
			n++
		}
	}
	return n
}

// Kind distinguishes the three pass families.
type Kind uint8

// Pass kinds.
const (
	KindWorkflow Kind = iota
	KindTrace
	KindSource
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindWorkflow:
		return "workflow"
	case KindTrace:
		return "trace"
	default:
		return "src"
	}
}

// Pass is the common metadata of a registered analysis pass.
type Pass interface {
	Name() string
	Doc() string
	Kind() Kind
}

type passMeta struct {
	name, doc string
	kind      Kind
}

func (p passMeta) Name() string { return p.name }
func (p passMeta) Doc() string  { return p.doc }
func (p passMeta) Kind() Kind   { return p.kind }

// WorkflowOptions tunes the workflow pass family. The zero value is not
// meaningful; use DefaultWorkflowOptions as the base.
type WorkflowOptions struct {
	// CardinalityBound is the blowup factor of the cardinality-blowup
	// pass: a node whose statically estimated row interval exceeds
	// CardinalityBound × (total source rows) is flagged.
	CardinalityBound float64
}

// DefaultWorkflowOptions returns the default tuning: cardinality blowups
// flagged beyond 10× the total source rows.
func DefaultWorkflowOptions() *WorkflowOptions {
	return &WorkflowOptions{CardinalityBound: 10}
}

// workflowPass analyzes one workflow graph (schemata regenerated).
type workflowPass struct {
	passMeta
	run func(g *workflow.Graph, o *WorkflowOptions) []Finding
}

// tracePass inspects one replayed trace step, or the run summary.
type tracePass struct {
	passMeta
	check func(si *StepInfo) []Finding
}

// sourcePass inspects one type-checked Go package.
type sourcePass struct {
	passMeta
	check func(p *SourcePackage) []Finding
}

var registry []Pass

func register(p Pass) {
	for _, q := range registry {
		if q.Name() == p.Name() {
			panic("analysis: duplicate pass " + p.Name())
		}
	}
	registry = append(registry, p)
}

// RegisterWorkflow adds a workflow pass to the registry. Passes run in
// name order, so registration order never matters.
func RegisterWorkflow(name, doc string, run func(g *workflow.Graph) []Finding) {
	register(&workflowPass{passMeta{name, doc, KindWorkflow},
		func(g *workflow.Graph, _ *WorkflowOptions) []Finding { return run(g) }})
}

// RegisterWorkflowOpts adds a workflow pass that reads the per-run
// WorkflowOptions (never nil when invoked through CheckWorkflow).
func RegisterWorkflowOpts(name, doc string, run func(g *workflow.Graph, o *WorkflowOptions) []Finding) {
	register(&workflowPass{passMeta{name, doc, KindWorkflow}, run})
}

// RegisterTrace adds a trace pass; its check runs once per replayed step
// and once for the run summary (StepInfo.Index == -1).
func RegisterTrace(name, doc string, check func(si *StepInfo) []Finding) {
	register(&tracePass{passMeta{name, doc, KindTrace}, check})
}

// RegisterSource adds a source pass; its check runs once per package.
func RegisterSource(name, doc string, check func(p *SourcePackage) []Finding) {
	register(&sourcePass{passMeta{name, doc, KindSource}, check})
}

// Passes lists every registered pass of the given kind, sorted by name.
func Passes(k Kind) []Pass {
	var out []Pass
	for _, p := range registry {
		if p.Kind() == k {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// AllPasses lists every registered pass, grouped by kind then name.
func AllPasses() []Pass {
	out := append([]Pass(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind() != out[j].Kind() {
			return out[i].Kind() < out[j].Kind()
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// CheckWorkflow runs every workflow pass over the graph and returns the
// sorted findings. The graph is cloned and its schemata regenerated
// first, so callers may pass freshly parsed workflows; a graph whose
// schemata cannot be derived at all yields a single schema-derivation
// warning, since no dataflow pass can reason about it. Structural
// invalidity (dangling edges, cycles) is an error, not a finding.
func CheckWorkflow(g *workflow.Graph) ([]Finding, error) {
	return CheckWorkflowOpts(g, nil)
}

// CheckWorkflowOpts is CheckWorkflow with explicit pass options; a nil
// opts means DefaultWorkflowOptions.
func CheckWorkflowOpts(g *workflow.Graph, opts *WorkflowOptions) ([]Finding, error) {
	if opts == nil {
		opts = DefaultWorkflowOptions()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c := g.Clone()
	if err := c.RegenerateSchemata(); err != nil {
		return []Finding{{
			Severity: Warning,
			Check:    "schema-derivation",
			Node:     -1,
			Message:  fmt.Sprintf("input schemata cannot be derived from upstream outputs: %v", err),
			Fix:      "correct the flow edges or the source schemata so every activity's input is derivable",
		}}, nil
	}
	var out []Finding
	for _, p := range Passes(KindWorkflow) {
		out = append(out, p.(*workflowPass).run(c, opts)...)
	}
	Sort(out)
	return out, nil
}

// RunLint runs the workflow design checks on g and prints each finding
// to w, using names (e.g. dsl.NodeNames) to label graph locations. It
// returns the number of warnings; every CLI's -lint flag shares this
// helper and its exit semantics: warnings exit nonzero, advice does not.
func RunLint(w io.Writer, g *workflow.Graph, names map[workflow.NodeID]string) (int, error) {
	fs, err := CheckWorkflow(g)
	if err != nil {
		return 0, err
	}
	if len(fs) == 0 {
		fmt.Fprintln(w, "no findings")
		return 0, nil
	}
	for _, f := range fs {
		fmt.Fprintln(w, f.StringNamed(names))
	}
	return CountWarnings(fs), nil
}
