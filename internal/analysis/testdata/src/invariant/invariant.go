// Package invariant is the test fixture for the COW/concurrency
// invariant source passes. Bad* functions violate an invariant and must
// each be flagged; Good* and good* functions sit just inside the
// false-positive boundary and must stay clean.
package invariant

import (
	"sync"

	"etlopt/internal/workflow"
)

// ---- cow-node-write ----

// BadNodeWrite writes through a node of a caller-supplied graph: the
// node struct may be shared with sibling COW states.
func BadNodeWrite(g *workflow.Graph, id workflow.NodeID) {
	n := g.Node(id)
	n.Out = nil
}

// BadNodeWriteAfterMutate writes through a node of a private copy that
// the function re-entangled with Mutate.
func BadNodeWriteAfterMutate(g *workflow.Graph, id workflow.NodeID) {
	c := g.Clone()
	_ = c.Mutate()
	n := c.Node(id)
	n.Out = nil
}

// GoodNodeRead only reads through the shared node.
func GoodNodeRead(g *workflow.Graph, id workflow.NodeID) workflow.NodeKind {
	n := g.Node(id)
	return n.Kind
}

// GoodCloneWrite writes nodes of a function-private Clone: its node
// structs are fresh, nothing shares them.
func GoodCloneWrite(g *workflow.Graph, id workflow.NodeID) *workflow.Graph {
	c := g.Clone()
	n := c.Node(id)
	n.Out = nil
	return c
}

// ---- stale-fingerprint ----

// BadStaleFingerprint returns a fingerprint taken before a structural
// mutation: the cached value no longer describes the graph.
func BadStaleFingerprint(g *workflow.Graph, a, b workflow.NodeID) uint64 {
	fp := g.Fingerprint()
	g.MustAddEdge(a, b)
	return fp
}

// BadStaleSignature retains an interned signature across RemoveEdge.
func BadStaleSignature(g *workflow.Graph, a, b workflow.NodeID) string {
	sig := g.Signature()
	g.RemoveEdge(a, b)
	return sig
}

// GoodRefreshedFingerprint re-reads after the mutation.
func GoodRefreshedFingerprint(g *workflow.Graph, a, b workflow.NodeID) uint64 {
	g.MustAddEdge(a, b)
	fp := g.Fingerprint()
	return fp
}

// GoodUseBeforeMutate finishes with the cached value before mutating.
func GoodUseBeforeMutate(g *workflow.Graph, a, b workflow.NodeID) uint64 {
	fp := g.Fingerprint()
	sum := fp + 1
	g.MustAddEdge(a, b)
	return sum
}

// GoodOtherGraphMutated caches one graph and mutates another.
func GoodOtherGraphMutated(g, h *workflow.Graph, a, b workflow.NodeID) uint64 {
	fp := g.Fingerprint()
	h.MustAddEdge(a, b)
	return fp
}

// ---- racy-goroutine-write ----

// BadRacyCounter increments an outer variable from worker goroutines.
func BadRacyCounter(n int) int {
	total := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			total++
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return total
}

// BadRacyMap writes an outer map from worker goroutines.
func BadRacyMap(keys []string) map[string]int {
	m := map[string]int{}
	done := make(chan struct{})
	for _, k := range keys {
		k := k
		go func() {
			m[k] = len(k)
			done <- struct{}{}
		}()
	}
	for range keys {
		<-done
	}
	return m
}

type tally struct{ n int }

// BadRacyField writes a field of an outer value from a goroutine.
func BadRacyField(t *tally) {
	done := make(chan struct{})
	go func() {
		t.n = 1
		done <- struct{}{}
	}()
	<-done
}

// GoodSlotWrites follows the per-goroutine slot discipline: each worker
// owns one slice element.
func GoodSlotWrites(xs []int) []int {
	out := make([]int, len(xs))
	done := make(chan struct{})
	for i, x := range xs {
		i, x := i, x
		go func() {
			out[i] = x * 2
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return out
}

// GoodLockedWrites serializes the shared write with a mutex.
func GoodLockedWrites(n int) int {
	var mu sync.Mutex
	total := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			mu.Lock()
			total++
			mu.Unlock()
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return total
}

// GoodLocalWrites only writes goroutine-local state.
func GoodLocalWrites(xs []int, sink chan<- int) {
	for _, x := range xs {
		x := x
		go func() {
			acc := 0
			acc += x
			sink <- acc
		}()
	}
}

// ---- shallow-escape ----

// BadShallowEscape returns a COW child across the package boundary.
func BadShallowEscape(g *workflow.Graph) *workflow.Graph {
	c := g.Mutate()
	return c
}

// BadShallowEscapeDirect returns the Mutate result directly.
func BadShallowEscapeDirect(g *workflow.Graph) *workflow.Graph {
	return g.Mutate()
}

// GoodDeepCloneEscape severs sharing before the graph escapes.
func GoodDeepCloneEscape(g *workflow.Graph) *workflow.Graph {
	c := g.Mutate()
	return c.DeepClone()
}

// goodInternalMutate is unexported: COW children may flow freely inside
// a package.
func goodInternalMutate(g *workflow.Graph) *workflow.Graph {
	return g.Mutate()
}

// GoodCloneReturn returns an independent Clone, not a COW child.
func GoodCloneReturn(g *workflow.Graph) *workflow.Graph {
	c := g.Clone()
	return c
}

var _ = goodInternalMutate
