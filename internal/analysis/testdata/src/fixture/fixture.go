// Package fixture trips every determinism source pass exactly where the
// linter tests expect, and exercises the exempted idioms right next to
// the violations so the tests also pin the false-positive boundary.
package fixture

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// BadAppend records map iteration order. (map-iteration)
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodAppend collects then sorts: exempt.
func GoodAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadLastWriter keeps an arbitrary entry. (map-iteration)
func BadLastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k
	}
	return last
}

// GoodFlagSet writes a value independent of the visited entry: exempt.
func GoodFlagSet(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 0 {
			found = true
		}
	}
	return found
}

// BadFloatSum accumulates floats in map order. (map-iteration)
func BadFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// GoodIntSum is commutative: exempt.
func GoodIntSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// BadCounterIndex stores elements at iteration-order positions.
// (map-iteration)
func BadCounterIndex(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k
		i++
	}
}

// GoodMapCopy writes map-to-map: insert order does not matter; exempt.
func GoodMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BadEarlyReturn picks an arbitrary entry. (map-iteration)
func BadEarlyReturn(m map[string]int) string {
	for k, v := range m {
		if v > 0 {
			return k
		}
	}
	return ""
}

// BadBuilder emits output in map order. (map-iteration)
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// BadSend delivers values in map order. (map-iteration)
func BadSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// BadWallClock stamps results with the current time. (wall-clock)
func BadWallClock() int64 {
	now := time.Now()
	return now.Unix()
}

// GoodElapsed measures a duration: exempt.
func GoodElapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// BadGlobalRand draws from the unseeded global source. (randomness)
func BadGlobalRand() int {
	return rand.Intn(10)
}

// GoodSeededRand derives everything from a caller seed: exempt.
func GoodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// BadCtxPlacement takes the context second. (ctx-first)
func BadCtxPlacement(name string, ctx context.Context) error {
	_ = name
	<-ctx.Done()
	return nil
}

// GoodCtxPlacement takes the context first: exempt.
func GoodCtxPlacement(ctx context.Context, name string) error {
	_ = name
	<-ctx.Done()
	return nil
}
