package analysis

import (
	"fmt"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/workflow"
)

// benchCorpus builds a seeded generator corpus once per size band.
func benchCorpus(b *testing.B, cat generator.Category, n int) []*workflow.Graph {
	b.Helper()
	scs, err := generator.Suite(cat, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	gs := make([]*workflow.Graph, len(scs))
	for i, sc := range scs {
		gs[i] = sc.Graph
	}
	return gs
}

// BenchmarkAnalysisPasses runs the full workflow pass suite — schema
// dataflow, design checks and the abstract interpreter — over seeded
// generator workflows in the paper's size bands. This is the cost of
// `etlvet workflow` per workflow, the number CI budget decisions are
// made against.
func BenchmarkAnalysisPasses(b *testing.B) {
	for _, band := range []struct {
		cat generator.Category
		n   int
	}{{generator.Small, 4}, {generator.Medium, 2}, {generator.Large, 2}} {
		b.Run(band.cat.String(), func(b *testing.B) {
			gs := benchCorpus(b, band.cat, band.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := gs[i%len(gs)]
				if _, err := CheckWorkflow(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAbstractInterpret isolates the fixpoint interpreter from the
// rest of the pass suite.
func BenchmarkAbstractInterpret(b *testing.B) {
	for _, band := range []struct {
		cat generator.Category
		n   int
	}{{generator.Small, 4}, {generator.Large, 2}} {
		b.Run(band.cat.String(), func(b *testing.B) {
			gs := benchCorpus(b, band.cat, band.n)
			for i, g := range gs {
				c := g.Clone()
				if err := c.RegenerateSchemata(); err != nil {
					b.Fatal(fmt.Errorf("workflow %d: %w", i, err))
				}
				gs[i] = c
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Interpret(gs[i%len(gs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
