package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/dsl"
	"etlopt/internal/equiv"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// Trace is the serialized record of one optimization run: the initial
// workflow (as DSL text), the structured transition sequence the search
// applied on the path to the best state, and the signature/cost endpoints.
// Node IDs are deterministic — graph clones inherit the ID counter — so
// replaying Steps against a re-parse of Workflow reproduces the exact
// derivation, which is what AuditTrace certifies.
type Trace struct {
	// Algorithm names the search that produced the run (ES, HS, HS-Greedy).
	Algorithm string `json:"algorithm"`
	// Model names the cost model: "row" or "physical".
	Model string `json:"model"`
	// Workflow is the initial state S0 in the workflow definition format.
	Workflow string `json:"workflow"`
	// InitialSig and InitialCost identify S0.
	InitialSig  string  `json:"initial_sig"`
	InitialCost float64 `json:"initial_cost"`
	// FinalSig is the signature of the returned best state (merged
	// packages split); FinalCost is C(S_MIN), the cost of the best state
	// the search evaluated (MER/SPL never change a state's cost).
	FinalSig  string  `json:"final_sig"`
	FinalCost float64 `json:"final_cost"`
	// Steps is the transition sequence from S0 to the best state.
	Steps []core.TraceStep `json:"steps"`
}

// ModelName returns the trace-file name of a cost model.
func ModelName(m cost.Model) string {
	if _, ok := m.(cost.PhysicalModel); ok {
		return "physical"
	}
	return "row"
}

// modelByName resolves a trace-file model name.
func modelByName(name string) (cost.Model, error) {
	switch name {
	case "", "row":
		return cost.RowModel{}, nil
	case "physical":
		return cost.DefaultPhysicalModel(), nil
	default:
		return nil, fmt.Errorf("analysis: unknown cost model %q", name)
	}
}

// NewTrace assembles the trace of an optimization run. res must come
// from a run with Options.Trace enabled on the initial workflow g0 (after
// schema regeneration). The workflow is serialized through the DSL and
// the round-trip is verified — a workflow whose re-parse does not
// reproduce its node IDs cannot be replayed, and is reported here rather
// than as a spurious audit failure later.
func NewTrace(res *core.Result, g0 *workflow.Graph, model cost.Model) (*Trace, error) {
	if res.Steps == nil && res.Best.Signature() != g0.Signature() {
		return nil, fmt.Errorf("analysis: result carries no transition trace; run the search with Options.Trace")
	}
	src, err := dsl.Serialize(g0)
	if err != nil {
		return nil, fmt.Errorf("analysis: serializing initial workflow: %w", err)
	}
	rt, err := dsl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("analysis: initial workflow does not re-parse: %w", err)
	}
	if err := rt.RegenerateSchemata(); err != nil {
		return nil, fmt.Errorf("analysis: re-parsed workflow: %w", err)
	}
	if rt.Signature() != g0.Signature() {
		return nil, fmt.Errorf("analysis: workflow does not round-trip through the DSL (signature %q re-parses as %q); trace would not be replayable",
			g0.Signature(), rt.Signature())
	}
	return &Trace{
		Algorithm:   res.Algorithm,
		Model:       ModelName(model),
		Workflow:    src,
		InitialSig:  g0.Signature(),
		InitialCost: res.InitialCost,
		FinalSig:    res.Best.Signature(),
		FinalCost:   res.BestCost,
		Steps:       res.Steps,
	}, nil
}

// Encode writes the trace as indented JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// DecodeTrace reads a JSON trace.
func DecodeTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("analysis: decoding trace: %w", err)
	}
	return &t, nil
}

// ReadTraceFile loads a trace from disk.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTrace(f)
}

// StepInfo is what a trace pass sees: one replayed step (Index >= 0) or
// the run summary after the full replay (Index == -1).
type StepInfo struct {
	// Trace is the record under audit.
	Trace *Trace
	// Model is the resolved cost model.
	Model cost.Model
	// Index is the step's position in Trace.Steps, or -1 for the summary.
	Index int
	// Step is the recorded step (zero value at the summary).
	Step core.TraceStep
	// Initial is the re-parsed S0.
	Initial *workflow.Graph
	// Prev and Cur are the replayed states before and after the step; at
	// the summary Cur is the final replayed state. Cur is nil when the
	// transition could not be applied (Err != nil).
	Prev, Cur *workflow.Graph
	// Err is the transition application error, if the replay's guard
	// re-check rejected the step.
	Err error
	// LastCost is the most recent recorded cost on the chain: InitialCost
	// until the first costed step, then that step's recorded cost, etc.
	LastCost float64
}

// Where locates the step for findings.
func (si *StepInfo) Where() string {
	if si.Index < 0 {
		return "summary"
	}
	if si.Step.Desc != "" {
		return fmt.Sprintf("step %d %s", si.Index, si.Step.Desc)
	}
	return fmt.Sprintf("step %d", si.Index)
}

func init() {
	RegisterTrace("trace-guard",
		"every recorded transition must pass its applicability guard when replayed",
		auditGuard)
	RegisterTrace("trace-signature",
		"recorded state signatures must match the replayed states",
		auditSignature)
	RegisterTrace("trace-cost",
		"recorded costs must match re-evaluation, and the final cost must not exceed the initial",
		auditCost)
	RegisterTrace("trace-postcondition",
		"every step must preserve workflow equivalence (§3.4/§4 post-conditions)",
		auditPostcondition)
}

func auditGuard(si *StepInfo) []Finding {
	if si.Index < 0 || si.Err == nil {
		return nil
	}
	return []Finding{{
		Severity: Warning, Check: "trace-guard", Node: -1, Where: si.Where(),
		Message: fmt.Sprintf("recorded transition is not applicable to the replayed state: %v", si.Err),
		Fix:     "the trace was corrupted or the optimizer applied an illegal rewrite; do not trust this run",
	}}
}

func auditSignature(si *StepInfo) []Finding {
	if si.Cur == nil {
		return nil
	}
	if si.Index < 0 {
		if got := si.Cur.Signature(); got != si.Trace.FinalSig {
			return []Finding{{
				Severity: Warning, Check: "trace-signature", Node: -1, Where: si.Where(),
				Message: fmt.Sprintf("replayed final state has signature %q, trace records %q", got, si.Trace.FinalSig),
			}}
		}
		return nil
	}
	if si.Step.Sig == "" {
		return nil // transient shift intermediate; signature not recorded
	}
	if got := si.Cur.Signature(); got != si.Step.Sig {
		return []Finding{{
			Severity: Warning, Check: "trace-signature", Node: -1, Where: si.Where(),
			Message: fmt.Sprintf("replayed state has signature %q, trace records %q", got, si.Step.Sig),
		}}
	}
	return nil
}

// costTolerance absorbs the float drift between full and semi-incremental
// evaluation orders; real corruption changes costs by whole rows.
const costTolerance = 1e-6

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= costTolerance*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func auditCost(si *StepInfo) []Finding {
	if si.Cur == nil {
		return nil
	}
	if si.Index < 0 {
		var out []Finding
		if !closeTo(si.LastCost, si.Trace.FinalCost) {
			out = append(out, Finding{
				Severity: Warning, Check: "trace-cost", Node: -1, Where: si.Where(),
				Message: fmt.Sprintf("final cost %g does not match the last costed state on the chain (%g)", si.Trace.FinalCost, si.LastCost),
			})
		}
		if si.Trace.FinalCost > si.Trace.InitialCost && !closeTo(si.Trace.FinalCost, si.Trace.InitialCost) {
			out = append(out, Finding{
				Severity: Warning, Check: "trace-cost", Node: -1, Where: si.Where(),
				Message: fmt.Sprintf("cost monotonicity violated: final cost %g exceeds initial cost %g", si.Trace.FinalCost, si.Trace.InitialCost),
				Fix:     "the optimizer must never return a state worse than S0",
			})
		}
		return out
	}
	if !si.Step.Costed {
		return nil
	}
	c, err := cost.Evaluate(si.Cur, si.Model)
	if err != nil {
		return []Finding{{
			Severity: Warning, Check: "trace-cost", Node: -1, Where: si.Where(),
			Message: fmt.Sprintf("replayed state cannot be costed: %v", err),
		}}
	}
	if !closeTo(c.Total, si.Step.Cost) {
		return []Finding{{
			Severity: Warning, Check: "trace-cost", Node: -1, Where: si.Where(),
			Message: fmt.Sprintf("replayed state costs %g, trace records %g", c.Total, si.Step.Cost),
		}}
	}
	return nil
}

func auditPostcondition(si *StepInfo) []Finding {
	if si.Cur == nil {
		return nil
	}
	base, label := si.Prev, "the pre-step state"
	if si.Index < 0 {
		base, label = si.Initial, "the initial state"
	}
	ok, diff, err := equiv.Equivalent(base, si.Cur)
	if err != nil {
		return []Finding{{
			Severity: Warning, Check: "trace-postcondition", Node: -1, Where: si.Where(),
			Message: fmt.Sprintf("equivalence with %s cannot be established: %v", label, err),
		}}
	}
	if !ok {
		return []Finding{{
			Severity: Warning, Check: "trace-postcondition", Node: -1, Where: si.Where(),
			Message: fmt.Sprintf("state is not equivalent to %s: %s", label, diff),
			Fix:     "the rewrite changed the workflow's semantics; do not trust this run",
		}}
	}
	return nil
}

// appliedOf converts a recorded step back into a structural transition.
func appliedOf(stp core.TraceStep) (transitions.Applied, error) {
	a := transitions.Applied{Op: stp.Op, NArgs: len(stp.Args), Desc: stp.Desc}
	if len(stp.Args) > len(a.Args) {
		return a, fmt.Errorf("analysis: step %s records %d node arguments", stp.Op, len(stp.Args))
	}
	copy(a.Args[:], stp.Args)
	return a, nil
}

// AuditTrace statically re-verifies an optimization run: it re-parses the
// recorded initial workflow, replays every recorded transition — which
// re-runs the applicability guards — and runs every registered trace pass
// on each step and on the run summary, checking signature consistency,
// cost re-evaluation and monotonicity, and §4 post-condition preservation
// through workflow equivalence. A clean audit (no findings) certifies the
// run without executing any data. Malformed traces that cannot be
// replayed at all yield an error; verifiable-but-wrong traces yield
// findings.
func AuditTrace(t *Trace) ([]Finding, error) {
	g0, err := dsl.Parse(t.Workflow)
	if err != nil {
		return nil, fmt.Errorf("analysis: trace workflow does not parse: %w", err)
	}
	if err := g0.RegenerateSchemata(); err != nil {
		return nil, fmt.Errorf("analysis: trace workflow: %w", err)
	}
	if err := g0.Validate(); err != nil {
		return nil, fmt.Errorf("analysis: trace workflow: %w", err)
	}
	model, err := modelByName(t.Model)
	if err != nil {
		return nil, err
	}

	var out []Finding
	if sig := g0.Signature(); sig != t.InitialSig {
		out = append(out, Finding{
			Severity: Warning, Check: "trace-signature", Node: -1, Where: "initial",
			Message: fmt.Sprintf("initial workflow has signature %q, trace records %q", sig, t.InitialSig),
		})
	}
	c0, err := cost.Evaluate(g0, model)
	if err != nil {
		return nil, fmt.Errorf("analysis: costing trace workflow: %w", err)
	}
	if !closeTo(c0.Total, t.InitialCost) {
		out = append(out, Finding{
			Severity: Warning, Check: "trace-cost", Node: -1, Where: "initial",
			Message: fmt.Sprintf("initial workflow costs %g, trace records %g", c0.Total, t.InitialCost),
		})
	}

	passes := Passes(KindTrace)
	run := func(si *StepInfo) {
		for _, p := range passes {
			out = append(out, p.(*tracePass).check(si)...)
		}
	}

	prev := g0
	lastCost := c0.Total
	halted := false
	for i, stp := range t.Steps {
		si := &StepInfo{Trace: t, Model: model, Index: i, Step: stp, Initial: g0, Prev: prev, LastCost: lastCost}
		app, err := appliedOf(stp)
		if err == nil {
			var res *transitions.Result
			res, err = transitions.Apply(prev, app)
			if res != nil {
				si.Cur = res.Graph
			}
		}
		si.Err = err
		run(si)
		if si.Cur == nil {
			out = append(out, Finding{
				Severity: Warning, Check: "trace-guard", Node: -1, Where: si.Where(),
				Message: fmt.Sprintf("replay halted; %d subsequent step(s) and the final state were not verified", len(t.Steps)-i-1),
			})
			halted = true
			break
		}
		if stp.Costed {
			lastCost = stp.Cost
		}
		prev = si.Cur
	}
	if !halted {
		run(&StepInfo{Trace: t, Model: model, Index: -1, Initial: g0, Prev: prev, Cur: prev, LastCost: lastCost})
	}
	Sort(out)
	return out, nil
}
