package analysis

import (
	"os"
	"strings"
	"testing"
)

// invariantFindings runs the source passes over the invariant fixture.
func invariantFindings(t *testing.T) []Finding {
	t.Helper()
	fs, err := AnalyzeSource([]string{"./testdata/src/invariant"})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestInvariantFixture pins each invariant pass to its positive cases:
// exact finding counts per check, and no finding inside a Good*/good*
// boundary function.
func TestInvariantFixture(t *testing.T) {
	fs := invariantFindings(t)
	for check, want := range map[string]int{
		"cow-node-write":       2, // BadNodeWrite, BadNodeWriteAfterMutate
		"stale-fingerprint":    2, // BadStaleFingerprint, BadStaleSignature
		"racy-goroutine-write": 3, // BadRacyCounter, BadRacyMap, BadRacyField
		"shallow-escape":       2, // BadShallowEscape, BadShallowEscapeDirect
	} {
		got := byCheck(fs, check)
		if len(got) != want {
			t.Errorf("%s: want %d finding(s), got %d: %v", check, want, len(got), got)
		}
		for _, f := range got {
			if f.Severity != Warning {
				t.Errorf("%s: severity %v, want warning: %s", check, f.Severity, f)
			}
			if f.File == "" || f.Line == 0 {
				t.Errorf("%s: missing structured location: %+v", check, f)
			}
			if !strings.HasPrefix(f.File, "internal/analysis/testdata/src/invariant/") {
				t.Errorf("%s: File not module-relative: %q", check, f.File)
			}
		}
	}
	// The false-positive boundary: nothing may point inside a Good*/good*
	// function.
	data, err := os.ReadFile("testdata/src/invariant/invariant.go")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for _, f := range fs {
		if fn := enclosingFixtureFunc(lines, f.Where); strings.HasPrefix(fn, "Good") || strings.HasPrefix(fn, "good") {
			t.Errorf("false positive inside %s: %s", fn, f)
		}
	}
}

// TestInvariantFindingMessages spot-checks that the messages carry the
// evidence a reader needs.
func TestInvariantFindingMessages(t *testing.T) {
	fs := invariantFindings(t)
	wantSubstr := map[string]string{
		"cow-node-write":       "Graph.Node",
		"stale-fingerprint":    "structural mutation",
		"racy-goroutine-write": "without synchronization",
		"shallow-escape":       "Mutate",
	}
	for check, want := range wantSubstr {
		for _, f := range byCheck(fs, check) {
			if !strings.Contains(f.Message, want) {
				t.Errorf("%s message lacks %q: %q", check, want, f.Message)
			}
		}
	}
}
