package analysis

// SARIF 2.1.0 output. The static-analysis interchange format lets CI
// systems (GitHub code scanning, among others) ingest etlvet findings
// without parsing our text output. Only the slice of the spec we need
// is modelled: one run, the driver's rule table built from the pass
// registry, and one result per finding with a physical location when
// the finding carries one.

import (
	"encoding/json"
	"io"
	"sort"
)

const (
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion   = "2.1.0"
	// ToolName and ToolVersion identify the analyzer in machine-readable
	// reports.
	ToolName    = "etlvet"
	ToolVersion = "2.0.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps our two-grade severity onto SARIF's levels: warnings
// stay warnings, advice becomes "note" — the same CI contract as the
// exit codes (notes never fail a scan).
func sarifLevel(s Severity) string {
	if s == Warning {
		return "warning"
	}
	return "note"
}

// sarifRules builds the driver rule table: every registered pass, in
// AllPasses order, plus synthetic entries for any finding checks the
// registry does not know (e.g. the framework's own schema-derivation
// finding), appended in name order so output stays deterministic.
func sarifRules(fs []Finding) ([]sarifRule, map[string]int) {
	var rules []sarifRule
	index := map[string]int{}
	for _, p := range AllPasses() {
		index[p.Name()] = len(rules)
		rules = append(rules, sarifRule{
			ID:               p.Name(),
			ShortDescription: &sarifMessage{Text: p.Doc()},
		})
	}
	var extra []string
	seen := map[string]bool{}
	for _, f := range fs {
		if _, ok := index[f.Check]; !ok && !seen[f.Check] {
			seen[f.Check] = true
			extra = append(extra, f.Check)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		index[name] = len(rules)
		rules = append(rules, sarifRule{ID: name})
	}
	return rules, index
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log: one run whose
// driver rule table is the full pass registry and whose results are the
// findings in their given order. Findings with a File carry a physical
// location (module-relative URI, 1-based region when the line is
// known). The output is indented JSON with a trailing newline, byte-
// stable for identical input — goldens and CI artifacts diff cleanly.
func WriteSARIF(w io.Writer, fs []Finding) error {
	rules, index := sarifRules(fs)
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		r := sarifResult{
			RuleID:    f.Check,
			RuleIndex: index[f.Check],
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
		}
		if f.Fix != "" {
			r.Message.Text += " (fix: " + f.Fix + ")"
		}
		if f.File != "" {
			phys := sarifPhysical{ArtifactLocation: sarifArtifact{URI: f.File}}
			if f.Line > 0 {
				phys.Region = &sarifRegion{StartLine: f.Line, StartColumn: f.Col}
			}
			r.Locations = []sarifLocation{{PhysicalLocation: phys}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: ToolName, Version: ToolVersion, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(&log)
}
