package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism source passes protect the invariants the optimizer's
// reproducibility rests on: identical inputs must yield identical search
// results, traces and exhibits on every run and on every GOMAXPROCS. The
// three classic leaks are order-sensitive map iteration, wall-clock
// reads, and unseeded entropy; the fourth pass enforces the ctx-first
// exported API convention.

func init() {
	RegisterSource("map-iteration",
		"map iteration feeding an order-sensitive sink (append without sort, last-writer-wins assignment, float/string accumulation, counter-indexed store, channel send, early return)",
		checkMapIteration)
	RegisterSource("wall-clock",
		"time.Now outside the elapsed-time idiom makes results depend on when they run",
		checkWallClock)
	RegisterSource("randomness",
		"global math/rand or crypto/rand draws are unseeded; use rand.New(rand.NewSource(seed))",
		checkRandomness)
	RegisterSource("ctx-first",
		"exported functions taking a context.Context must take it as the first parameter",
		checkCtxFirst)
}

// buildParents maps every node in the file to its parent.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// selOnPackage reports whether expr is pkg.Name for an import of one of
// the given paths, returning the selected name.
func selOnPackage(info *types.Info, expr ast.Expr, paths ...string) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	got := pn.Imported().Path()
	for _, p := range paths {
		if got == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// rootIdent unwraps selectors, indexes, parens and stars to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj is declared inside n.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// mentionsAny reports whether any identifier under n resolves to one of
// the objects.
func mentionsAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	if n == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && objs[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingFuncBody walks up the parent chain to the surrounding function
// literal or declaration body.
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for p := parents[n]; p != nil; p = parents[p] {
		switch f := p.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// checkMapIteration flags `for ... := range m` over a map whose body
// feeds an order-sensitive sink. Collect-then-sort (append to a slice
// that is later sorted), pure map-to-map copies, commutative integer
// accumulation and element-derived index stores are all recognized as
// order-insensitive and left alone.
func checkMapIteration(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, auditMapRange(p, parents, rs)...)
			return true
		})
	}
	return out
}

func auditMapRange(p *SourcePackage, parents map[ast.Node]ast.Node, rs *ast.RangeStmt) []Finding {
	info := p.Info
	rangeVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := objOf(info, id); o != nil {
				rangeVars[o] = true
			}
		}
	}
	// Counters: variables from outside the loop that the body steps, so an
	// indexed store through them records iteration order.
	counters := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		var target ast.Expr
		switch s := n.(type) {
		case *ast.IncDecStmt:
			target = s.X
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && len(s.Lhs) == 1 {
				target = s.Lhs[0]
			}
		}
		if id, ok := target.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && !declaredWithin(o, rs) {
				counters[o] = true
			}
		}
		return true
	})

	outer := func(id *ast.Ident) types.Object {
		o := objOf(info, id)
		if o == nil || declaredWithin(o, rs) {
			return nil
		}
		if _, ok := o.(*types.Var); !ok {
			return nil
		}
		return o
	}

	warn := func(n ast.Node, msg, fix string) Finding {
		return p.finding(Warning, "map-iteration", n.Pos(), msg, fix)
	}

	var out []Finding
	var appends []appendSink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			out = append(out, auditMapRangeAssign(p, rs, s, rangeVars, counters, outer, warn, &appends)...)
		case *ast.SendStmt:
			if id := rootIdent(s.Chan); id != nil && outer(id) != nil {
				out = append(out, warn(s, fmt.Sprintf("send on %s inside map iteration delivers values in nondeterministic order", id.Name),
					"collect into a slice, sort, then send"))
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				if id := rootIdent(sel.X); id != nil && outer(id) != nil {
					out = append(out, warn(s, fmt.Sprintf("%s.%s inside map iteration emits output in nondeterministic order", id.Name, sel.Sel.Name),
						"collect the keys, sort them, then emit"))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if mentionsAny(info, r, rangeVars) {
					out = append(out, warn(s, "return of a range variable picks an arbitrary map entry",
						"collect matching entries and pick deterministically (e.g. the smallest key)"))
					break
				}
			}
		}
		return true
	})

	// Collect-then-sort: an append target that some call with "sort" in
	// its name later receives is order-insensitive.
	if len(appends) > 0 {
		body := enclosingFuncBody(parents, rs)
		for _, a := range appends {
			if body != nil && sortedLater(info, body, a.obj) {
				continue
			}
			out = append(out, warn(a.node,
				fmt.Sprintf("append to %s inside map iteration records nondeterministic order", a.obj.Name()),
				"sort the slice after the loop, or iterate sorted keys"))
		}
	}
	return out
}

// appendSink is one `s = append(s, ...)` on an outer slice inside a
// map-range body, pending the collect-then-sort exemption check.
type appendSink struct {
	obj  types.Object
	node ast.Node
}

// auditMapRangeAssign classifies one assignment inside a map-range body.
func auditMapRangeAssign(p *SourcePackage, rs *ast.RangeStmt, s *ast.AssignStmt,
	rangeVars, counters map[types.Object]bool,
	outer func(*ast.Ident) types.Object,
	warn func(ast.Node, string, string) Finding,
	appends *[]appendSink) []Finding {

	info := p.Info
	if s.Tok == token.DEFINE {
		return nil // new locals are loop-private
	}
	var out []Finding
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := outer(l)
			if obj == nil {
				continue
			}
			if s.Tok == token.ASSIGN {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
						if base := rootIdent(call.Args[0]); base != nil && objOf(info, base) == obj {
							*appends = append(*appends, struct {
								obj  types.Object
								node ast.Node
							}{obj, s})
							continue
						}
					}
				}
				// Last-writer-wins: only nondeterministic if the value
				// depends on which entry the iteration visits.
				locals := make(map[types.Object]bool)
				for o := range rangeVars {
					locals[o] = true
				}
				ast.Inspect(rs.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if o := info.Defs[id]; o != nil && declaredWithin(o, rs) {
							locals[o] = true
						}
					}
					return true
				})
				if mentionsAny(info, rhs, locals) {
					out = append(out, warn(s,
						fmt.Sprintf("assignment to %s inside map iteration keeps an arbitrary entry (last writer wins)", l.Name),
						"reduce commutatively, or iterate sorted keys"))
				}
				continue
			}
			// Op-assign: commutative integer/boolean accumulation is safe;
			// float and string accumulation is order-dependent.
			if v, ok := obj.(*types.Var); ok {
				if b, ok := v.Type().Underlying().(*types.Basic); ok {
					if b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0 {
						out = append(out, warn(s,
							fmt.Sprintf("%s accumulation of %s inside map iteration is order-dependent", b.Name(), l.Name),
							"accumulate over sorted keys"))
					}
				}
			}
		case *ast.IndexExpr:
			base := rootIdent(l.X)
			if base == nil {
				continue
			}
			obj := outer(base)
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok {
				if _, isMap := v.Type().Underlying().(*types.Map); isMap {
					continue // map-to-map copies commute
				}
			}
			if mentionsAny(info, l.Index, counters) && !mentionsAny(info, l.Index, rangeVars) {
				out = append(out, warn(s,
					fmt.Sprintf("store into %s at a counter-derived index records iteration order", base.Name),
					"derive the index from the element, or iterate sorted keys"))
			}
		}
	}
	return out
}

// sortedLater reports whether body contains a call whose name mentions
// sorting and whose arguments (or receiver) mention obj.
func sortedLater(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	target := map[types.Object]bool{obj: true}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
			if x, ok := f.X.(*ast.Ident); ok {
				name = x.Name + "." + name // sort.Strings, slices.Sort, ids.Sort
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") && mentionsAny(info, call, target) {
			found = true
		}
		return !found
	})
	return found
}

// checkWallClock flags time.Now reads except the elapsed-time idiom:
// passed straight to time.Since, or stored in a variable that is only
// ever handed to calls or used with .Sub.
func checkWallClock(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := selOnPackage(p.Info, call.Fun, "time"); !ok || name != "Now" {
				return true
			}
			if wallClockAllowed(p.Info, parents, call) {
				return true
			}
			out = append(out, p.finding(Warning, "wall-clock", call.Pos(),
				"time.Now read outside the elapsed-time idiom makes output depend on when it runs",
				"restrict wall-clock use to `start := time.Now()` ... `time.Since(start)`, or inject the timestamp"))
			return true
		})
	}
	return out
}

func wallClockAllowed(info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	switch parent := parents[call].(type) {
	case *ast.CallExpr:
		if name, ok := selOnPackage(info, parent.Fun, "time"); ok && name == "Since" {
			return true
		}
	case *ast.AssignStmt:
		// start := time.Now() is fine when start is only ever measured
		// against (passed to a call, or a .Sub operand).
		idx := -1
		for i, r := range parent.Rhs {
			if r == call {
				idx = i
			}
		}
		if idx < 0 || idx >= len(parent.Lhs) {
			return false
		}
		id, ok := parent.Lhs[idx].(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := objOf(info, id)
		if obj == nil {
			return false
		}
		body := enclosingFuncBody(parents, call)
		if body == nil {
			return false
		}
		ok = true
		ast.Inspect(body, func(n ast.Node) bool {
			use, isIdent := n.(*ast.Ident)
			if !isIdent || info.Uses[use] != obj || !ok {
				return ok
			}
			switch up := parents[use].(type) {
			case *ast.CallExpr:
				for _, a := range up.Args {
					if a == use {
						return ok
					}
				}
				ok = false
			case *ast.SelectorExpr:
				if up.Sel.Name != "Sub" {
					ok = false
				}
			default:
				ok = false
			}
			return ok
		})
		return ok
	}
	return false
}

// randConstructors are the math/rand names that build seeded generators;
// everything else on the package draws from the unseeded global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// checkRandomness flags draws from the global math/rand source and any
// crypto/rand use: both produce different output on every run. Methods on
// a seeded *rand.Rand are untouched.
func checkRandomness(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := selOnPackage(p.Info, call.Fun, "math/rand", "math/rand/v2"); ok && !randConstructors[name] {
				out = append(out, p.finding(Warning, "randomness", call.Pos(),
					fmt.Sprintf("rand.%s draws from the unseeded global source; runs are not reproducible", name),
					"draw from rand.New(rand.NewSource(seed)) with a caller-supplied seed"))
			}
			if name, ok := selOnPackage(p.Info, call.Fun, "crypto/rand"); ok {
				out = append(out, p.finding(Warning, "randomness", call.Pos(),
					fmt.Sprintf("crypto/rand.%s reads hardware entropy; runs are not reproducible", name),
					"use a seeded math/rand source for anything that influences results"))
			}
			return true
		})
	}
	return out
}

// checkCtxFirst flags exported functions and methods that accept a
// context.Context anywhere but the first parameter.
func checkCtxFirst(p *SourcePackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			pos := 0
			for _, field := range fd.Type.Params.List {
				isCtx := false
				if name, ok := selOnPackage(p.Info, field.Type, "context"); ok && name == "Context" {
					isCtx = true
				}
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				if isCtx && pos > 0 {
					out = append(out, p.finding(Warning, "ctx-first", field.Pos(),
						fmt.Sprintf("%s takes context.Context at parameter %d; the project convention is ctx first", fd.Name.Name, pos),
						"move the context.Context parameter to the front"))
				}
				pos += n
			}
		}
	}
	return out
}
