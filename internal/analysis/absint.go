package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// This file implements the workflow abstract interpreter: a fixpoint
// dataflow analysis over the provider edges of a workflow graph that
// propagates, from sources to targets,
//
//   - cardinality intervals, seeded from the declared source rows and the
//     cost model's selectivity estimates;
//   - per-attribute value intervals, refined by filter predicates (a row
//     that survives σ(V>=117) has V ∈ [117, +∞));
//   - per-attribute nullability (source attributes start maybe-null;
//     not-null guards and SQL-style comparisons clear the flag); and
//   - per-attribute provenance: the set of source-recordset attributes
//     whose values reach the attribute through function application,
//     aggregation and surrogate-key assignment.
//
// The domains are standard over-approximations, so every proof the
// interpreter makes ("this filter passes every row", "no row satisfies
// this guard", "no source attribute reaches this target column") holds
// for every concrete execution. The passes built on top live in
// absint_passes.go.

// Interval is a closed numeric interval [Lo, Hi]; ±Inf bounds encode
// half-open and unbounded ("top") intervals. Lo > Hi encodes the empty
// interval (bottom).
type Interval struct{ Lo, Hi float64 }

// TopInterval is the unbounded interval (−∞, +∞).
func TopInterval() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// PointInterval is the degenerate interval [v, v].
func PointInterval(v float64) Interval { return Interval{v, v} }

// IsEmpty reports whether the interval contains no value.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsPoint reports whether the interval is a single finite value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi && !math.IsInf(iv.Lo, 0) }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Hull returns the smallest interval containing both (the lattice join).
func (iv Interval) Hull(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Interval{1, 0}
	}
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi}
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Interval{1, 0}
	}
	return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo}
}

// Mul returns the interval product.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Interval{1, 0}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range [2]float64{iv.Lo, iv.Hi} {
		for _, b := range [2]float64{o.Lo, o.Hi} {
			p := a * b
			if math.IsNaN(p) { // 0 × ±Inf: contributes 0
				p = 0
			}
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
	}
	return Interval{lo, hi}
}

// String renders the interval compactly: [117,+inf), [0,0], (-inf,+inf).
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	lo, lb := "-inf", "("
	if !math.IsInf(iv.Lo, -1) {
		lo, lb = fmt.Sprintf("%g", iv.Lo), "["
	}
	hi, rb := "+inf", ")"
	if !math.IsInf(iv.Hi, 1) {
		hi, rb = fmt.Sprintf("%g", iv.Hi), "]"
	}
	return lb + lo + "," + hi + rb
}

// widen applies the widening operator: any bound that moved since prev
// jumps straight to infinity. On a DAG the fixpoint is reached in one
// topological sweep and widening never fires; it bounds the iteration
// count defensively should cyclic flows ever be admitted.
func (iv Interval) widen(prev Interval) Interval {
	out := iv
	if iv.Lo < prev.Lo {
		out.Lo = math.Inf(-1)
	}
	if iv.Hi > prev.Hi {
		out.Hi = math.Inf(1)
	}
	return out
}

// AttrDomain abstracts one attribute's value at a node's output.
type AttrDomain struct {
	// Val over-approximates the attribute's non-null numeric values.
	// Top for attributes the analysis has no constraint on (strings,
	// dates, unknown function results).
	Val Interval
	// MaybeNull is false only when the analysis proves the attribute is
	// never NULL at this point.
	MaybeNull bool
	// Roots is the sorted set of source attributes ("SRC.ATTR") whose
	// values flow into this attribute. Empty when the value is purely
	// synthesized (e.g. a count() aggregate).
	Roots []string
	// GenBy records the activity node that synthesized the value when
	// Roots is empty; -1 otherwise.
	GenBy workflow.NodeID
}

func topDomain(roots []string) AttrDomain {
	return AttrDomain{Val: TopInterval(), MaybeNull: true, Roots: roots, GenBy: -1}
}

// joinDomains is the lattice join at flow merge points (union branches).
func joinDomains(a, b AttrDomain) AttrDomain {
	out := AttrDomain{
		Val:       a.Val.Hull(b.Val),
		MaybeNull: a.MaybeNull || b.MaybeNull,
		Roots:     unionRoots(a.Roots, b.Roots),
		GenBy:     a.GenBy,
	}
	if out.GenBy < 0 {
		out.GenBy = b.GenBy
	}
	return out
}

func unionRoots(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func sameRoots(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameDomain(a, b AttrDomain) bool {
	return a.Val == b.Val && a.MaybeNull == b.MaybeNull &&
		sameRoots(a.Roots, b.Roots) && a.GenBy == b.GenBy
}

// NodeAbs is the abstract state at one node's output.
type NodeAbs struct {
	// Card is the node's output cardinality interval.
	Card Interval
	// Sel is the derived selectivity interval of an activity: [1,1] when
	// the operation provably keeps every row, [0,0] when it provably
	// keeps none, and the declared estimate otherwise. Recordsets carry
	// [1,1].
	Sel Interval
	// Attrs maps each output-schema attribute to its domain.
	Attrs map[string]AttrDomain
}

func (na *NodeAbs) equal(o *NodeAbs) bool {
	if o == nil || na.Card != o.Card || na.Sel != o.Sel || len(na.Attrs) != len(o.Attrs) {
		return false
	}
	for k, v := range na.Attrs {
		ov, ok := o.Attrs[k]
		if !ok || !sameDomain(v, ov) {
			return false
		}
	}
	return true
}

// DomainString renders the evidence for one attribute — interval,
// nullability and provenance — for inclusion in finding messages.
func (na *NodeAbs) DomainString(attr string) string {
	d, ok := na.Attrs[attr]
	if !ok {
		return attr + " ∈ (unknown)"
	}
	null := "maybe-null"
	if !d.MaybeNull {
		null = "non-null"
	}
	return fmt.Sprintf("%s ∈ %s, %s", attr, d.Val, null)
}

// AbsResult is the abstract interpretation of one workflow.
type AbsResult struct {
	// Nodes maps every graph node to its output abstract state.
	Nodes map[workflow.NodeID]*NodeAbs
	// SourceRows is the summed declared cardinality of the sources.
	SourceRows float64
	// Iterations counts worklist sweeps until the fixpoint.
	Iterations int
}

// maxVisits bounds per-node transfer evaluations before widening kicks
// in; a DAG in topological order stabilizes in one visit per node.
const maxVisits = 4

// Interpret runs the abstract interpreter to fixpoint. The graph must be
// validated with schemata regenerated (CheckWorkflow guarantees both).
// The analysis is deterministic: the worklist drains in ascending NodeID
// order and every rendered set is sorted.
func Interpret(g *workflow.Graph) (*AbsResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	res := &AbsResult{Nodes: make(map[workflow.NodeID]*NodeAbs, len(order))}
	for _, id := range g.Sources() {
		res.SourceRows += g.Node(id).RS.Rows
	}

	// Worklist seeded with the topological order; reprocessing (never
	// needed on a DAG, defensive for future cyclic extensions) widens
	// after maxVisits.
	pending := make(map[workflow.NodeID]bool, len(order))
	work := append([]workflow.NodeID(nil), order...)
	for _, id := range work {
		pending[id] = true
	}
	visits := make(map[workflow.NodeID]int, len(order))
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		if !pending[id] {
			continue
		}
		pending[id] = false
		visits[id]++
		res.Iterations++
		next, err := transfer(g, res, id)
		if err != nil {
			return nil, err
		}
		prev := res.Nodes[id]
		if visits[id] > maxVisits && prev != nil {
			next.Card = next.Card.widen(prev.Card)
			for k, d := range next.Attrs {
				if pd, ok := prev.Attrs[k]; ok {
					d.Val = d.Val.widen(pd.Val)
					next.Attrs[k] = d
				}
			}
		}
		if next.equal(prev) {
			continue
		}
		res.Nodes[id] = next
		// Requeue consumers in ascending ID order for determinism.
		consumers := append([]workflow.NodeID(nil), g.Consumers(id)...)
		sort.Slice(consumers, func(i, j int) bool { return consumers[i] < consumers[j] })
		for _, c := range consumers {
			if !pending[c] {
				pending[c] = true
				work = append(work, c)
			}
		}
	}
	return res, nil
}

// transfer computes one node's output abstract state from its providers.
func transfer(g *workflow.Graph, res *AbsResult, id workflow.NodeID) (*NodeAbs, error) {
	n := g.Node(id)
	preds := g.Providers(id)
	if n.Kind == workflow.KindRecordset {
		if len(preds) == 1 {
			// Target (or intermediate) recordset: stores what arrives.
			in := res.Nodes[preds[0]]
			if in == nil {
				return &NodeAbs{Card: PointInterval(0), Sel: PointInterval(1)}, nil
			}
			out := &NodeAbs{Card: in.Card, Sel: PointInterval(1), Attrs: make(map[string]AttrDomain, len(n.RS.Schema))}
			for _, attr := range n.RS.Schema {
				if d, ok := in.Attrs[attr]; ok {
					out.Attrs[attr] = d
				}
			}
			return out, nil
		}
		// Source: declared rows, top domains, provenance roots.
		out := &NodeAbs{Card: PointInterval(n.RS.Rows), Sel: PointInterval(1), Attrs: make(map[string]AttrDomain, len(n.RS.Schema))}
		for _, attr := range n.RS.Schema {
			out.Attrs[attr] = topDomain([]string{n.RS.Name + "." + attr})
		}
		return out, nil
	}

	in := make([]*NodeAbs, len(preds))
	for i, p := range preds {
		in[i] = res.Nodes[p]
		if in[i] == nil {
			// Provider not yet evaluated (only possible off the topological
			// prefix); treat as empty and let the worklist revisit.
			in[i] = &NodeAbs{Card: PointInterval(0), Sel: PointInterval(1), Attrs: map[string]AttrDomain{}}
		}
	}
	return transferActivity(n, id, in)
}

// clampSel clamps a declared selectivity estimate into [0, 1].
func clampSel(sel float64) Interval {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return PointInterval(sel)
}

// copyAttrs projects the input domains onto the output schema.
func copyAttrs(schema data.Schema, in map[string]AttrDomain) map[string]AttrDomain {
	out := make(map[string]AttrDomain, len(schema))
	for _, attr := range schema {
		if d, ok := in[attr]; ok {
			out[attr] = d
		}
	}
	return out
}

// transferActivity applies one activity's abstract semantics. The output
// schema n.Out was derived by RegenerateSchemata, so the function only
// fills domains for attributes that exist there.
func transferActivity(n *workflow.Node, id workflow.NodeID, in []*NodeAbs) (*NodeAbs, error) {
	a := n.Act
	if a.IsBinary() && len(in) < 2 {
		return nil, fmt.Errorf("analysis: binary %s node %d has %d providers", a.Sem.Op, id, len(in))
	}
	out := &NodeAbs{Sel: clampSel(a.Sel)}
	switch a.Sem.Op {
	case workflow.OpFilter:
		truth := evalPred(a.Sem.Pred, in[0])
		switch truth {
		case triTrue:
			out.Sel = PointInterval(1)
		case triFalse:
			out.Sel = PointInterval(0)
		}
		out.Attrs = refinePred(a.Sem.Pred, copyAttrs(n.Out, in[0].Attrs))
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpNotNull:
		allNonNull := true
		for _, attr := range a.Sem.Attrs {
			if d, ok := in[0].Attrs[attr]; !ok || d.MaybeNull {
				allNonNull = false
			}
		}
		if allNonNull {
			out.Sel = PointInterval(1)
		}
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		for _, attr := range a.Sem.Attrs {
			if d, ok := out.Attrs[attr]; ok {
				d.MaybeNull = false
				out.Attrs[attr] = d
			}
		}
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpPKCheck, workflow.OpDistinct:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpProject:
		out.Sel = PointInterval(1)
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		out.Card = in[0].Card

	case workflow.OpFunc:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		gen := AttrDomain{Val: TopInterval(), GenBy: id}
		for _, arg := range a.Sem.FnArgs {
			if d, ok := in[0].Attrs[arg]; ok {
				gen.MaybeNull = gen.MaybeNull || d.MaybeNull
				gen.Roots = unionRoots(gen.Roots, d.Roots)
			}
		}
		out.Attrs[a.Sem.OutAttr] = gen
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpAggregate:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		gen := AttrDomain{Val: TopInterval(), GenBy: id}
		if a.Sem.Agg == workflow.AggCount {
			// The count is synthesized: its value depends on group sizes,
			// not on any source attribute's value, and groups are
			// non-empty, so the value is at least 1.
			gen.Val = Interval{1, math.Inf(1)}
			gen.MaybeNull = false
		} else if d, ok := in[0].Attrs[a.Sem.AggAttr]; ok {
			gen.MaybeNull = d.MaybeNull
			gen.Roots = d.Roots
			if a.Sem.Agg == workflow.AggMin || a.Sem.Agg == workflow.AggMax || a.Sem.Agg == workflow.AggAvg {
				gen.Val = d.Val // extrema and means stay inside the hull
			}
		}
		out.Attrs[a.Sem.OutAttr] = gen
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpSurrogateKey:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		gen := AttrDomain{Val: TopInterval(), MaybeNull: false, GenBy: id}
		if d, ok := in[0].Attrs[a.Sem.KeyAttr]; ok {
			// The surrogate is functionally determined by the production
			// key, so lineage flows through it.
			gen.Roots = d.Roots
		}
		out.Attrs[a.Sem.OutAttr] = gen
		out.Card = in[0].Card.Mul(out.Sel)

	case workflow.OpMerged:
		// Fold the packaged components in execution order, deriving each
		// component's output schema with the same rules RegenerateSchemata
		// applies.
		cur := &NodeAbs{Card: in[0].Card, Sel: PointInterval(1), Attrs: in[0].Attrs}
		schema := data.Schema(attrNames(cur.Attrs))
		for _, comp := range a.Sem.Components {
			schema = componentOut(comp, schema)
			compNode := &workflow.Node{ID: id, Kind: workflow.KindActivity, Act: comp, Out: schema}
			next, err := transferActivity(compNode, id, []*NodeAbs{cur})
			if err != nil {
				return nil, err
			}
			cur = next
		}
		out.Attrs = copyAttrs(n.Out, cur.Attrs)
		out.Card = cur.Card
		out.Sel = PointInterval(1)

	case workflow.OpUnion:
		out.Sel = PointInterval(1)
		out.Attrs = make(map[string]AttrDomain, len(n.Out))
		for _, attr := range n.Out {
			l, lok := in[0].Attrs[attr]
			r, rok := in[1].Attrs[attr]
			switch {
			case lok && rok:
				out.Attrs[attr] = joinDomains(l, r)
			case lok:
				out.Attrs[attr] = l
			case rok:
				out.Attrs[attr] = r
			}
		}
		out.Card = in[0].Card.Add(in[1].Card)

	case workflow.OpJoin:
		out.Attrs = make(map[string]AttrDomain, len(n.Out))
		keys := data.Schema(a.Sem.Attrs)
		for _, attr := range n.Out {
			l, lok := in[0].Attrs[attr]
			r, rok := in[1].Attrs[attr]
			switch {
			case lok && rok && keys.Has(attr):
				// Equi-join keys match on both sides: intersect, and a
				// NULL key never matches.
				out.Attrs[attr] = AttrDomain{
					Val:       l.Val.Intersect(r.Val),
					MaybeNull: false,
					Roots:     unionRoots(l.Roots, r.Roots),
					GenBy:     -1,
				}
			case lok:
				out.Attrs[attr] = l
			case rok:
				out.Attrs[attr] = r
			}
		}
		out.Card = in[0].Card.Mul(in[1].Card).Mul(out.Sel)

	case workflow.OpDiff, workflow.OpIntersect:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		out.Card = in[0].Card.Mul(out.Sel)

	default:
		out.Attrs = copyAttrs(n.Out, in[0].Attrs)
		out.Card = in[0].Card
	}
	if !out.Card.IsEmpty() && out.Card.Lo < 0 {
		out.Card.Lo = 0
	}
	return out, nil
}

// componentOut mirrors the schemata rules for the unary operations that
// may appear inside an OpMerged package.
func componentOut(a *workflow.Activity, in data.Schema) data.Schema {
	switch a.Sem.Op {
	case workflow.OpProject:
		return in.Minus(data.Schema(a.Sem.Attrs))
	case workflow.OpFunc:
		if a.InPlace() {
			return in
		}
		out := in.Clone()
		if a.Sem.DropArgs {
			out = out.Minus(data.Schema(a.Sem.FnArgs))
		}
		if !out.Has(a.Sem.OutAttr) {
			out = append(out, a.Sem.OutAttr)
		}
		return out
	case workflow.OpAggregate:
		return append(in.Intersect(data.Schema(a.Sem.Attrs)), a.Sem.OutAttr)
	case workflow.OpSurrogateKey:
		return append(in.Minus(data.Schema{a.Sem.KeyAttr}), a.Sem.OutAttr)
	default:
		return in
	}
}

func attrNames(m map[string]AttrDomain) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Three-valued predicate truth.
type tri uint8

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

// evalPred decides whether pred holds for every row (triTrue), for no row
// (triFalse), or cannot be decided (triUnknown) under the input state.
// The SQL-style NULL semantics of algebra.Cmp are honoured: a comparison
// with a NULL operand is false (NE: true when exactly one side is NULL),
// so "always true" additionally requires the operands to be non-null.
func evalPred(e algebra.Expr, in *NodeAbs) tri {
	switch x := e.(type) {
	case algebra.Cmp:
		return evalCmp(x, in)
	case algebra.Logic:
		l, r := evalPred(x.Left, in), evalPred(x.Right, in)
		if x.Op == algebra.And {
			switch {
			case l == triFalse || r == triFalse:
				return triFalse
			case l == triTrue && r == triTrue:
				return triTrue
			}
			return triUnknown
		}
		switch {
		case l == triTrue || r == triTrue:
			return triTrue
		case l == triFalse && r == triFalse:
			return triFalse
		}
		return triUnknown
	case algebra.Not:
		switch evalPred(x.Inner, in) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
		return triUnknown
	case algebra.IsNull:
		if attr, ok := x.Inner.(algebra.Attr); ok {
			if d, ok := in.Attrs[attr.Name]; ok && !d.MaybeNull {
				return triFalse
			}
		}
		return triUnknown
	case algebra.Const:
		if x.Value.Kind() == data.KindBool {
			if x.Value.Bool() {
				return triTrue
			}
			return triFalse
		}
		return triUnknown
	default:
		return triUnknown
	}
}

// evalCmp decides a comparison from the operand intervals.
func evalCmp(c algebra.Cmp, in *NodeAbs) tri {
	l, lNull, lok := exprInterval(c.Left, in)
	r, rNull, rok := exprInterval(c.Right, in)
	if !lok || !rok || l.IsEmpty() || r.IsEmpty() {
		return triUnknown
	}
	// Interval-level decision for non-null operands.
	var nonNullTruth tri
	switch c.Op {
	case algebra.LT:
		nonNullTruth = cmpTri(l.Hi < r.Lo, l.Lo >= r.Hi)
	case algebra.LE:
		nonNullTruth = cmpTri(l.Hi <= r.Lo, l.Lo > r.Hi)
	case algebra.GT:
		nonNullTruth = cmpTri(l.Lo > r.Hi, l.Hi <= r.Lo)
	case algebra.GE:
		nonNullTruth = cmpTri(l.Lo >= r.Hi, l.Hi < r.Lo)
	case algebra.EQ:
		nonNullTruth = cmpTri(l.IsPoint() && r.IsPoint() && l.Lo == r.Lo, l.Intersect(r).IsEmpty())
	case algebra.NE:
		nonNullTruth = cmpTri(l.Intersect(r).IsEmpty(), l.IsPoint() && r.IsPoint() && l.Lo == r.Lo)
	default:
		return triUnknown
	}
	maybeNull := lNull || rNull
	switch c.Op {
	case algebra.NE:
		// A row with exactly one NULL side satisfies NE; both-null rows do
		// not. Proofs only survive when no operand can be null.
		if maybeNull {
			return triUnknown
		}
		return nonNullTruth
	default:
		// NULL rows evaluate to false: "always false" survives nullability,
		// "always true" requires non-null operands.
		if nonNullTruth == triFalse {
			return triFalse
		}
		if nonNullTruth == triTrue && !maybeNull {
			return triTrue
		}
		return triUnknown
	}
}

func cmpTri(alwaysTrue, alwaysFalse bool) tri {
	switch {
	case alwaysTrue:
		return triTrue
	case alwaysFalse:
		return triFalse
	default:
		return triUnknown
	}
}

// exprInterval over-approximates a scalar expression's non-null values,
// reporting whether the expression may be NULL and whether the analysis
// understands it at all.
func exprInterval(e algebra.Expr, in *NodeAbs) (iv Interval, maybeNull, ok bool) {
	switch x := e.(type) {
	case algebra.Attr:
		d, found := in.Attrs[x.Name]
		if !found {
			return TopInterval(), true, true
		}
		return d.Val, d.MaybeNull, true
	case algebra.Const:
		if x.Value.IsNull() {
			return TopInterval(), true, true
		}
		if !x.Value.IsNumeric() && x.Value.Kind() != data.KindDate {
			return Interval{}, false, false // strings: no numeric order modelled
		}
		return PointInterval(x.Value.Float()), false, true
	case algebra.Arith:
		l, ln, lok := exprInterval(x.Left, in)
		r, rn, rok := exprInterval(x.Right, in)
		if !lok || !rok {
			return Interval{}, false, false
		}
		switch x.Op {
		case algebra.Add:
			return l.Add(r), ln || rn, true
		case algebra.Sub:
			return l.Sub(r), ln || rn, true
		case algebra.Mul:
			return l.Mul(r), ln || rn, true
		default: // Div: a zero in the divisor traps at run time; stay top.
			return TopInterval(), ln || rn, true
		}
	default:
		return Interval{}, false, false
	}
}

// refinePred narrows the attribute domains under the assumption that the
// predicate holds — the abstract meaning of surviving a filter. Only
// conjunctions of simple attribute-versus-constant comparisons refine;
// everything else leaves the domains untouched (a sound over-
// approximation). Surviving any such comparison also proves the attribute
// non-null.
func refinePred(e algebra.Expr, attrs map[string]AttrDomain) map[string]AttrDomain {
	switch x := e.(type) {
	case algebra.Logic:
		if x.Op == algebra.And {
			return refinePred(x.Right, refinePred(x.Left, attrs))
		}
	case algebra.Cmp:
		attr, aok := x.Left.(algebra.Attr)
		cst, cok := x.Right.(algebra.Const)
		op := x.Op
		if !aok || !cok {
			// Constant-versus-attribute: mirror the comparison.
			if a2, ok2 := x.Right.(algebra.Attr); ok2 {
				if c2, ok3 := x.Left.(algebra.Const); ok3 {
					attr, cst, aok, cok = a2, c2, true, true
					op = mirrorCmp(op)
				}
			}
		}
		if aok && cok && !cst.Value.IsNull() && (cst.Value.IsNumeric() || cst.Value.Kind() == data.KindDate) {
			d, ok := attrs[attr.Name]
			if !ok {
				return attrs
			}
			c := cst.Value.Float()
			switch op {
			case algebra.EQ:
				d.Val = d.Val.Intersect(PointInterval(c))
			case algebra.LT, algebra.LE:
				// v < c over-approximated by v ≤ c: sound for both the
				// always-true and always-false proofs downstream.
				d.Val = d.Val.Intersect(Interval{math.Inf(-1), c})
			case algebra.GT, algebra.GE:
				d.Val = d.Val.Intersect(Interval{c, math.Inf(1)})
			case algebra.NE:
				// No interval refinement, and NULL rows pass NE.
				attrs[attr.Name] = d
				return attrs
			}
			d.MaybeNull = false // NULL never survives EQ/LT/LE/GT/GE
			attrs[attr.Name] = d
		}
	}
	return attrs
}

func mirrorCmp(op algebra.CmpOp) algebra.CmpOp {
	switch op {
	case algebra.LT:
		return algebra.GT
	case algebra.LE:
		return algebra.GE
	case algebra.GT:
		return algebra.LT
	case algebra.GE:
		return algebra.LE
	default:
		return op
	}
}

// RootsString renders a provenance set for finding messages.
func RootsString(roots []string) string {
	if len(roots) == 0 {
		return "∅"
	}
	return "{" + strings.Join(roots, ", ") + "}"
}
