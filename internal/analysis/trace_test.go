package analysis

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// runTraced optimizes Fig. 1 with tracing enabled.
func runTraced(t *testing.T, algo string) (*core.Result, *workflow.Graph) {
	t.Helper()
	g := templates.Fig1Workflow()
	opts := core.Options{IncrementalCost: true, Trace: true}
	var (
		res *core.Result
		err error
	)
	switch algo {
	case "es":
		res, err = core.Exhaustive(context.Background(), g, opts)
	case "hs":
		res, err = core.Heuristic(context.Background(), g, opts)
	case "greedy":
		res, err = core.HSGreedy(context.Background(), g, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func mustTrace(t *testing.T, res *core.Result, g *workflow.Graph) *Trace {
	t.Helper()
	tr, err := NewTrace(res, g, cost.RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustAudit(t *testing.T, tr *Trace) []Finding {
	t.Helper()
	fs, err := AuditTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestAuditCertifiesFig1 is the acceptance check: a full HS run of the
// Fig. 1 workflow produces a trace the auditor certifies with zero
// findings, for every algorithm.
func TestAuditCertifiesFig1(t *testing.T) {
	for _, algo := range []string{"es", "hs", "greedy"} {
		t.Run(algo, func(t *testing.T) {
			res, g := runTraced(t, algo)
			if len(res.Steps) == 0 {
				t.Fatalf("%s found an improvement but recorded no steps", algo)
			}
			fs := mustAudit(t, mustTrace(t, res, g))
			for _, f := range fs {
				t.Errorf("unexpected finding: %s", f)
			}
		})
	}
}

// TestTraceRoundTripsJSON encodes and decodes the trace and re-audits.
func TestTraceRoundTripsJSON(t *testing.T) {
	res, g := runTraced(t, "hs")
	tr := mustTrace(t, res, g)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fs := mustAudit(t, tr2); len(fs) != 0 {
		t.Fatalf("re-decoded trace has findings: %v", fs)
	}
}

// corruptions hand-corrupt a certified trace one field at a time; each
// must be rejected with a finding from the right pass, located at the
// corrupted step.
func TestAuditRejectsCorruptedTrace(t *testing.T) {
	res, g := runTraced(t, "hs")
	base := mustTrace(t, res, g)

	copyTrace := func() *Trace {
		var buf bytes.Buffer
		if err := base.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	tests := []struct {
		name    string
		corrupt func(tr *Trace)
		check   string // pass that must fire
		where   string // substring of the finding location
	}{
		{
			name:    "cost",
			corrupt: func(tr *Trace) { tr.Steps[1].Cost = 1 },
			check:   "trace-cost",
			where:   "step 1",
		},
		{
			name:    "signature",
			corrupt: func(tr *Trace) { tr.Steps[0].Sig = "(bogus)" },
			check:   "trace-signature",
			where:   "step 0",
		},
		{
			name: "guard",
			corrupt: func(tr *Trace) {
				// Point the first transition at a recordset: no guard
				// accepts that, so the replay must halt with a finding.
				tr.Steps[0].Args = []workflow.NodeID{0, 1}
			},
			check: "trace-guard",
			where: "step 0",
		},
		{
			name:    "final cost",
			corrupt: func(tr *Trace) { tr.FinalCost = tr.InitialCost * 2 },
			check:   "trace-cost",
			where:   "summary",
		},
		{
			name:    "final signature",
			corrupt: func(tr *Trace) { tr.FinalSig = "(bogus)" },
			check:   "trace-signature",
			where:   "summary",
		},
		{
			name:    "initial signature",
			corrupt: func(tr *Trace) { tr.InitialSig = "(bogus)" },
			check:   "trace-signature",
			where:   "initial",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := copyTrace()
			tc.corrupt(tr)
			fs := mustAudit(t, tr)
			if CountWarnings(fs) == 0 {
				t.Fatalf("corrupted trace (%s) audited clean", tc.name)
			}
			found := false
			for _, f := range fs {
				if f.Check == tc.check && strings.Contains(f.Where, tc.where) {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s finding located at %q; got: %v", tc.check, tc.where, fs)
			}
		})
	}
}

// TestAuditRejectsUnparsableWorkflow: malformed traces error out instead
// of auditing clean.
func TestAuditRejectsUnparsableWorkflow(t *testing.T) {
	res, g := runTraced(t, "hs")
	tr := mustTrace(t, res, g)
	tr.Workflow = "not a workflow"
	if _, err := AuditTrace(tr); err == nil {
		t.Fatal("audit of an unparsable workflow should error")
	}
}

// TestNewTraceRequiresTracing: a result produced without Options.Trace
// cannot be packaged as a trace when transitions were applied.
func TestNewTraceRequiresTracing(t *testing.T) {
	g := templates.Fig1Workflow()
	res, err := core.Heuristic(context.Background(), g, core.Options{IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != nil {
		t.Fatalf("tracing off must record no steps, got %d", len(res.Steps))
	}
	if _, err := NewTrace(res, g, cost.RowModel{}); err == nil {
		t.Fatal("NewTrace should refuse a stepless improving result")
	}
}

// TestModelNameRoundTrips both model names through the resolver.
func TestModelNameRoundTrips(t *testing.T) {
	for _, m := range []cost.Model{cost.RowModel{}, cost.DefaultPhysicalModel()} {
		name := ModelName(m)
		got, err := modelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ModelName(got) != name {
			t.Errorf("model %q round-trips as %q", name, ModelName(got))
		}
	}
	if _, err := modelByName("quantum"); err == nil {
		t.Error("unknown model name should error")
	}
}
