package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SourcePackage is one parsed and (tolerantly) type-checked Go package,
// the unit a source pass inspects.
type SourcePackage struct {
	Fset *token.FileSet
	// Dir is the package directory on disk; PkgPath its import path.
	Dir, PkgPath string
	// Root is the module root directory, for module-relative locations.
	Root string
	// Files are the non-test source files, sorted by file name.
	Files []*ast.File
	// Info carries type information. Type checking is tolerant: imports
	// outside the module are stubbed, so objects may be missing — passes
	// must treat an unresolved type as "unknown" and stay quiet.
	Info *types.Info
}

// Pos renders a position relative to the package directory.
func (p *SourcePackage) Pos(pos token.Pos) string {
	pp := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pp.Filename), pp.Line, pp.Column)
}

// Loc returns the module-relative artifact path and 1-based line/column
// for a position — the machine-readable location SARIF and the baseline
// key on. Falls back to the base name when the file is outside the root.
func (p *SourcePackage) Loc(pos token.Pos) (file string, line, col int) {
	pp := p.Fset.Position(pos)
	file = filepath.Base(pp.Filename)
	if p.Root != "" {
		if rel, err := filepath.Rel(p.Root, pp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return file, pp.Line, pp.Column
}

// finding builds a source finding anchored at pos with both the rendered
// Where location and the structured File/Line/Col fields populated.
func (p *SourcePackage) finding(sev Severity, check string, pos token.Pos, msg, fix string) Finding {
	file, line, col := p.Loc(pos)
	return Finding{
		Severity: sev, Check: check, Node: -1,
		Where: p.Pos(pos), Message: msg, Fix: fix,
		File: file, Line: line, Col: col,
	}
}

// moduleRoot walks upward from dir to the directory holding go.mod and
// returns it together with the module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// loader loads module-internal packages recursively and stubs everything
// else, so type checking works offline with only the standard library's
// syntax — no export data, no network, no go/packages dependency.
type loader struct {
	fset     *token.FileSet
	root     string // module root directory
	modPath  string // module path from go.mod
	pkgs     map[string]*types.Package
	loading  map[string]bool
	packages map[string]*SourcePackage // by directory
}

func newLoader(root, modPath string) *loader {
	return &loader{
		fset:     token.NewFileSet(),
		root:     root,
		modPath:  modPath,
		pkgs:     make(map[string]*types.Package),
		loading:  make(map[string]bool),
		packages: make(map[string]*SourcePackage),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if rel, ok := strings.CutPrefix(path, l.modPath+"/"); ok && !l.loading[path] {
		sp, err := l.load(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err == nil && sp != nil {
			return l.pkgs[path], nil
		}
	}
	// Outside the module (stdlib or a cycle guard): a complete empty stub.
	// Every selection through it resolves to an unknown type, which the
	// passes treat conservatively.
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	p := types.NewPackage(path, base)
	p.MarkComplete()
	l.pkgs[path] = p
	return p, nil
}

// load parses and type-checks the package in dir.
func (l *loader) load(dir, pkgPath string) (*SourcePackage, error) {
	if sp, ok := l.packages[dir]; ok {
		return sp, nil
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    l,
		Error:       func(error) {}, // tolerate holes left by stubbed imports
		FakeImportC: true,
	}
	pkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if pkg != nil {
		l.pkgs[pkgPath] = pkg
	}
	sp := &SourcePackage{Fset: l.fset, Dir: dir, PkgPath: pkgPath, Root: l.root, Files: files, Info: info}
	l.packages[dir] = sp
	return sp, nil
}

// expandPatterns resolves package patterns ("./internal/...", "./cmd/etlopt")
// into package directories, relative to the current working directory.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			err := filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if name := d.Name(); path != rest &&
					(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: expanding %s: %w", pat, err)
			}
			continue
		}
		if !hasGoFiles(pat) {
			return nil, fmt.Errorf("analysis: no Go files in %s", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// AnalyzeSource loads the packages matched by the patterns and runs every
// registered source pass over each, returning the sorted findings.
func AnalyzeSource(patterns []string) ([]Finding, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	root, modPath, err := moduleRoot(dirs[0])
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	passes := Passes(KindSource)
	var out []Finding
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, modPath)
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		sp, err := l.load(abs, pkgPath)
		if err != nil {
			return nil, err
		}
		if sp == nil {
			continue
		}
		for _, p := range passes {
			out = append(out, p.(*sourcePass).check(sp)...)
		}
	}
	Sort(out)
	return out, nil
}
