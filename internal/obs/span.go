package obs

import (
	"sync"
	"time"
)

// spanLogCap is the default bound on the completed-span window per
// registry. Old spans are overwritten (and counted as dropped in
// obs_spans_dropped_total); live introspection wants the recent past, not
// history. Registry.SetSpanCap raises or lowers the bound — trace export
// (-trace-out) raises it so a whole run's tree survives to the export.
const spanLogCap = 256

// Span is one timed region of work, optionally nested under a parent.
// Spans are the event half of the observability API: the search wraps
// phases in them, the engine wraps node executions, and the status page
// lists the most recent completions. A nil *Span ignores every call, so
// instrumented code never branches on whether collection is on.
//
// Every span carries a registry-unique ID; a root span starts a new trace
// (TraceID == its own ID) and children inherit the trace, so completed
// records reassemble into trace trees — the basis of the Chrome/Perfetto
// export in trace.go.
//
// A Span is not safe for concurrent mutation; create one span per
// goroutine (children are independent once created).
type Span struct {
	reg      *Registry
	name     string
	parent   string
	id       int64
	parentID int64
	traceID  int64
	depth    int
	start    time.Time
	attrs    []SpanAttr
}

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a completed span as kept in the registry's window and
// reported by snapshots. Times are relative to the registry's creation so
// records are position-independent (no absolute wall-clock leaks into
// exhibits).
type SpanRecord struct {
	// ID is registry-unique; ParentID is the enclosing span's ID (0 at a
	// root) and TraceID the root span's ID, shared by the whole tree.
	ID       int64 `json:"id"`
	ParentID int64 `json:"parent_id,omitempty"`
	TraceID  int64 `json:"trace_id"`
	// Name and Parent identify the span and its enclosing span ("" at the
	// root); Depth is the nesting level.
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
	Depth  int    `json:"depth"`
	// StartOffsetSeconds is the span's start relative to registry
	// creation; DurationSeconds its length.
	StartOffsetSeconds float64    `json:"start_offset_seconds"`
	DurationSeconds    float64    `json:"duration_seconds"`
	Attrs              []SpanAttr `json:"attrs,omitempty"`
}

// spanLog is a bounded ring of completed spans. Overwrites of
// not-yet-snapshotted records are counted in dropped, so span loss is
// visible instead of silent.
type spanLog struct {
	mu      sync.Mutex
	ring    []SpanRecord
	n       int // total appended since the last resize
	dropped *Counter
}

func (l *spanLog) add(rec SpanRecord) {
	l.mu.Lock()
	if l.n >= len(l.ring) {
		l.dropped.Inc()
	}
	l.ring[l.n%len(l.ring)] = rec
	l.n++
	l.mu.Unlock()
}

// recent returns up to max completed spans, oldest first.
func (l *spanLog) recent(max int) []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recentLocked(max)
}

// resize rebuilds the ring at capacity c, keeping the most recent
// min(kept, c) records. Records shed by a shrink count as dropped.
func (l *spanLog) resize(c int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.n
	if kept > len(l.ring) {
		kept = len(l.ring)
	}
	if kept > c {
		l.dropped.Add(int64(kept - c))
	}
	old := l.recentLocked(c)
	ring := make([]SpanRecord, c)
	copy(ring, old)
	l.ring = ring
	l.n = len(old)
}

// recentLocked is recent(max) for callers already holding the mutex.
func (l *spanLog) recentLocked(max int) []SpanRecord {
	n := l.n
	if n > len(l.ring) {
		n = len(l.ring)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(l.n-n+i)%len(l.ring)])
	}
	return out
}

// SetSpanCap bounds the completed-span window at c records, keeping the
// most recent records it already holds. c <= 0 restores the default.
// Shrinking counts the shed records in obs_spans_dropped_total. No-op on
// a nil registry.
func (r *Registry) SetSpanCap(c int) {
	if r == nil {
		return
	}
	if c <= 0 {
		c = spanLogCap
	}
	r.spans.resize(c)
}

// SpansDropped reports how many completed spans have been lost to window
// overwrites or shrinks; the same number is exposed as the
// obs_spans_dropped_total counter.
func (r *Registry) SpansDropped() int64 {
	if r == nil {
		return 0
	}
	return r.spans.dropped.Value()
}

// StartSpan opens a root span, beginning a new trace. Nil registry → nil
// span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	id := r.spanSeq.Add(1)
	return &Span{reg: r, name: name, id: id, traceID: id, start: now()}
}

// Child opens a nested span under sp, in sp's trace. Nil span → nil child.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{
		reg: sp.reg, name: name, parent: sp.name,
		id: sp.reg.spanSeq.Add(1), parentID: sp.id, traceID: sp.traceID,
		depth: sp.depth + 1, start: now(),
	}
}

// Annotate attaches a key/value pair to the span.
func (sp *Span) Annotate(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, SpanAttr{Key: key, Value: value})
	return sp
}

// End closes the span: its duration is observed into the
// obs_span_seconds{span=name} histogram and the completed record joins
// the registry's window. End on a nil span is a no-op; End at most once.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := now()
	d := end.Sub(sp.start)
	sp.reg.Histogram("obs_span_seconds", nil, "span", sp.name).Observe(d.Seconds())
	sp.reg.spans.add(SpanRecord{
		ID:                 sp.id,
		ParentID:           sp.parentID,
		TraceID:            sp.traceID,
		Name:               sp.name,
		Parent:             sp.parent,
		Depth:              sp.depth,
		StartOffsetSeconds: sp.start.Sub(sp.reg.created).Seconds(),
		DurationSeconds:    d.Seconds(),
		Attrs:              sp.attrs,
	})
}

// RecentSpans returns up to max recently completed spans, oldest first
// (max ≤ 0 means the full retained window).
func (r *Registry) RecentSpans(max int) []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.recent(max)
}
