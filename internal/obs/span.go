package obs

import (
	"sync"
	"time"
)

// spanLogCap bounds the completed-span ring buffer per registry. Old spans
// are overwritten; live introspection wants the recent past, not history.
const spanLogCap = 256

// Span is one timed region of work, optionally nested under a parent.
// Spans are the event half of the observability API: the search wraps
// phases in them, the engine wraps node executions, and the status page
// lists the most recent completions. A nil *Span ignores every call, so
// instrumented code never branches on whether collection is on.
//
// A Span is not safe for concurrent mutation; create one span per
// goroutine (children are independent once created).
type Span struct {
	reg    *Registry
	name   string
	parent string
	depth  int
	start  time.Time
	attrs  []SpanAttr
}

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a completed span as kept in the registry's ring and
// reported by snapshots. Times are relative to the registry's creation so
// records are position-independent (no absolute wall-clock leaks into
// exhibits).
type SpanRecord struct {
	// Name and Parent identify the span and its enclosing span ("" at the
	// root); Depth is the nesting level.
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
	Depth  int    `json:"depth"`
	// StartOffsetSeconds is the span's start relative to registry
	// creation; DurationSeconds its length.
	StartOffsetSeconds float64    `json:"start_offset_seconds"`
	DurationSeconds    float64    `json:"duration_seconds"`
	Attrs              []SpanAttr `json:"attrs,omitempty"`
}

// spanLog is a fixed-capacity ring of completed spans.
type spanLog struct {
	mu   sync.Mutex
	ring [spanLogCap]SpanRecord
	n    int // total appended
}

func (l *spanLog) add(rec SpanRecord) {
	l.mu.Lock()
	l.ring[l.n%spanLogCap] = rec
	l.n++
	l.mu.Unlock()
}

// recent returns up to max completed spans, oldest first.
func (l *spanLog) recent(max int) []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > spanLogCap {
		n = spanLogCap
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(l.n-n+i)%spanLogCap])
	}
	return out
}

// StartSpan opens a root span. Nil registry → nil span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, start: now()}
}

// Child opens a nested span under sp. Nil span → nil child.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{reg: sp.reg, name: name, parent: sp.name, depth: sp.depth + 1, start: now()}
}

// Annotate attaches a key/value pair to the span.
func (sp *Span) Annotate(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, SpanAttr{Key: key, Value: value})
	return sp
}

// End closes the span: its duration is observed into the
// obs_span_seconds{span=name} histogram and the completed record joins
// the registry's ring. End on a nil span is a no-op; End at most once.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := now()
	d := end.Sub(sp.start)
	sp.reg.Histogram("obs_span_seconds", nil, "span", sp.name).Observe(d.Seconds())
	sp.reg.spans.add(SpanRecord{
		Name:               sp.name,
		Parent:             sp.parent,
		Depth:              sp.depth,
		StartOffsetSeconds: sp.start.Sub(sp.reg.created).Seconds(),
		DurationSeconds:    d.Seconds(),
		Attrs:              sp.attrs,
	})
}

// RecentSpans returns up to max recently completed spans, oldest first
// (max ≤ 0 means the full retained window).
func (r *Registry) RecentSpans(max int) []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.recent(max)
}
