package obs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, nil)
	j.Emit(RunEvent("start", "etlrun mode=parallel"))
	j.Emit(PhaseEvent("p1", "start"))
	j.Emit(TransitionEvent("SWA", "attempt", 0))
	j.Emit(TransitionEvent("SWA", "accept", 0))
	j.Emit(TransitionEvent("FAC", "best", 123.5))
	j.Emit(CacheEvent("expand", true))
	j.Emit(CacheEvent("expand", false))
	j.Emit(NodeEvent("3:σ(COST>=100)", 42, 0.001))
	j.Emit(BatchEvent("3:σ(COST>=100)", 2, 10))
	j.Emit(ExchangeEvent("5:γ(KEY)", 800))
	j.Emit(CheckpointEvent("7:∪", "staged", 99))
	j.Emit(DriftEvent("3:σ(COST>=100)", 0.42, 0.5))
	j.Emit(PhaseEvent("p1", "end"))
	j.Emit(RunEvent("end", "etlrun"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	evs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	const emitted = 14
	if len(evs) != emitted+1 { // +1 trailing summary
		t.Fatalf("got %d events, want %d", len(evs), emitted+1)
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Off < 0 {
			t.Errorf("event %d: negative offset %v", i, e.Off)
		}
	}
	if evs[0].T != EventRun || evs[0].Action != "start" || evs[0].Detail != "etlrun mode=parallel" {
		t.Errorf("run start event mangled: %+v", evs[0])
	}
	if evs[4].T != EventTransition || evs[4].Op != "FAC" || evs[4].Action != "best" || evs[4].Cost != 123.5 {
		t.Errorf("best event mangled: %+v", evs[4])
	}
	if evs[5].Action != "hit" || evs[6].Action != "miss" {
		t.Errorf("cache events mangled: %+v %+v", evs[5], evs[6])
	}
	if evs[8].T != EventBatch || evs[8].Part != 2 || evs[8].Rows != 10 {
		t.Errorf("batch event mangled: %+v", evs[8])
	}
	sum := evs[emitted]
	if sum.T != EventSummary || sum.Events != emitted || sum.Dropped != 0 || sum.Errors != 0 {
		t.Errorf("summary mangled: %+v", sum)
	}
	if j.Written() != emitted || j.Dropped() != 0 || j.Errors() != 0 {
		t.Errorf("accounting: written=%d dropped=%d errors=%d", j.Written(), j.Dropped(), j.Errors())
	}
}

func TestJournalFileAndEmitAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournalFile(path, nil)
	if err != nil {
		t.Fatalf("NewJournalFile: %v", err)
	}
	j.Emit(RunEvent("start", "t"))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Emit after Close is a counted drop, never a panic; double Close is a no-op.
	j.Emit(RunEvent("end", "t"))
	if got := j.Dropped(); got != 1 {
		t.Errorf("Dropped after post-close Emit = %d, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	evs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("ReadJournalFile: %v", err)
	}
	if len(evs) != 2 || evs[1].T != EventSummary {
		t.Fatalf("file journal = %+v", evs)
	}
	// The summary was written before the post-close drop: it reports 0.
	if evs[1].Events != 1 {
		t.Errorf("summary events = %d, want 1", evs[1].Events)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Emit(RunEvent("start", "nil"))
	if j.Dropped() != 0 || j.Errors() != 0 || j.Written() != 0 {
		t.Error("nil journal accounting not zero")
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// blockedWriter blocks every Write until released, letting a test fill the
// journal's channel deterministically.
type blockedWriter struct {
	release chan struct{}
	once    sync.Once
}

func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestJournalDropAccounting(t *testing.T) {
	reg := NewRegistry()
	w := &blockedWriter{release: make(chan struct{})}
	j := NewJournal(w, reg)
	// Events big enough that the journal's 64 KiB bufio buffer fills and
	// forces a (blocked) flush within the first few dozen events; from
	// then on the writer goroutine is stuck and the channel backs up, so
	// emitting well past its capacity must drop.
	big := strings.Repeat("x", 4096)
	const emitted = journalChanCap + 400
	for i := 0; i < emitted; i++ {
		j.Emit(RunEvent("start", big))
	}
	if got := j.Dropped(); got == 0 {
		t.Error("Dropped = 0 after overfilling a blocked journal")
	}
	close(w.release)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if j.Written()+j.Dropped() != emitted {
		t.Errorf("written %d + dropped %d != emitted %d",
			j.Written(), j.Dropped(), emitted)
	}
	snap := reg.Snapshot()
	if got, ok := snap.CounterValue("journal_events_dropped_total"); !ok || got != j.Dropped() {
		t.Errorf("registry dropped counter = %v (ok=%v), want %v", got, ok, j.Dropped())
	}
	if got, ok := snap.CounterValue("journal_events_total"); !ok || got != j.Written() {
		t.Errorf("registry written counter = %v (ok=%v), want %v", got, ok, j.Written())
	}
}

// failAfterWriter accepts n writes and then fails every subsequent one.
type failAfterWriter struct {
	mu sync.Mutex
	n  int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJournalWriteErrorsNonFatal(t *testing.T) {
	reg := NewRegistry()
	w := &failAfterWriter{n: 2}
	j := NewJournal(w, reg)
	// Use a tiny flush threshold by writing enough bytes to force flushes:
	// bufio only surfaces write errors when it flushes, so emit enough
	// events to exceed the 64 KiB buffer.
	big := strings.Repeat("x", 1024)
	const emitted = 200
	for i := 0; i < emitted; i++ {
		j.Emit(RunEvent("start", big))
	}
	err := j.Close()
	if err == nil {
		t.Fatal("Close returned nil despite write failures")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close error does not wrap the write failure: %v", err)
	}
	if j.Errors() == 0 {
		t.Error("Errors() = 0, want > 0")
	}
	snap := reg.Snapshot()
	if got, ok := snap.CounterValue("journal_errors_total"); !ok || got != j.Errors() {
		t.Errorf("registry journal_errors_total = %v (ok=%v), want %v", got, ok, j.Errors())
	}
}

func TestJournalConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, nil)
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit(TransitionEvent("SWA", "attempt", float64(g)))
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if int64(len(evs)) != j.Written()+1 {
		t.Fatalf("file has %d events, accounting says %d written (+1 summary)", len(evs), j.Written())
	}
	if j.Written()+j.Dropped() != goroutines*per {
		t.Errorf("written %d + dropped %d != emitted %d", j.Written(), j.Dropped(), goroutines*per)
	}
	seen := make(map[int64]bool, len(evs))
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestReadJournalRejectsGarbage(t *testing.T) {
	_, err := ReadJournal(strings.NewReader("{\"t\":\"run\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 parse error, got %v", err)
	}
}

func TestReadJournalSkipsBlankLines(t *testing.T) {
	evs, err := ReadJournal(strings.NewReader("\n{\"seq\":1,\"t\":\"run\",\"off\":0}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Errorf("got %d events, err %v; want 1, nil", len(evs), err)
	}
}

func ExampleJournal() {
	var buf bytes.Buffer
	j := NewJournal(&buf, nil)
	j.Emit(TransitionEvent("SWA", "accept", 0))
	_ = j.Close()
	evs, _ := ReadJournal(&buf)
	fmt.Println(len(evs), evs[0].T, evs[0].Op, evs[1].T)
	// Output: 2 transition SWA summary
}

var _ io.Writer = (*blockedWriter)(nil)
