package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time, serialization-friendly copy of a registry:
// every series with its current value, plus the recent span window. All
// times are durations or offsets — a snapshot carries no absolute
// wall-clock values, so it is safe to diff across runs.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Counters      []CounterPoint   `json:"counters"`
	Gauges        []GaugePoint     `json:"gauges"`
	Histograms    []HistogramPoint `json:"histograms"`
	Spans         []SpanRecord     `json:"spans,omitempty"`
}

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Series string `json:"series"`
	Family string `json:"family"`
	Value  int64  `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Series string  `json:"series"`
	Family string  `json:"family"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one histogram series in a snapshot. Bounds are the
// finite upper bucket bounds; BucketCounts has len(Bounds)+1 entries —
// per-bucket (non-cumulative) counts with the final entry counting
// observations above the last finite bound — so the entries sum to Count.
type HistogramPoint struct {
	Series       string    `json:"series"`
	Family       string    `json:"family"`
	Count        int64     `json:"count"`
	Sum          float64   `json:"sum"`
	Bounds       []float64 `json:"bounds"`
	BucketCounts []int64   `json:"bucket_counts"`
}

// Snapshot copies the registry's current state. Nil registry → empty
// snapshot (never nil slices for the three series kinds, so JSON output
// is stable).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []CounterPoint{},
		Gauges:     []GaugePoint{},
		Histograms: []HistogramPoint{},
	}
	if r == nil {
		return snap
	}
	snap.UptimeSeconds = r.Uptime().Seconds()
	r.mu.Lock()
	for _, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterPoint{
			Series: c.series, Family: c.family, Value: c.Value(),
		})
	}
	for _, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugePoint{
			Series: g.series, Family: g.family, Value: g.Value(),
		})
	}
	for _, h := range r.histograms {
		counts := make([]int64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, HistogramPoint{
			Series: h.series, Family: h.family,
			Count: h.Count(), Sum: h.Sum(),
			Bounds:       append([]float64(nil), h.bounds...),
			BucketCounts: counts,
		})
	}
	r.mu.Unlock()
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Series < snap.Counters[j].Series })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Series < snap.Gauges[j].Series })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Series < snap.Histograms[j].Series })
	snap.Spans = r.RecentSpans(0)
	return snap
}

// Has reports whether the snapshot contains the exact series name (as a
// counter, gauge or histogram).
func (s Snapshot) Has(series string) bool {
	for _, c := range s.Counters {
		if c.Series == series {
			return true
		}
	}
	for _, g := range s.Gauges {
		if g.Series == series {
			return true
		}
	}
	for _, h := range s.Histograms {
		if h.Series == series {
			return true
		}
	}
	return false
}

// CounterValue returns the value of the named counter series and whether
// it exists.
func (s Snapshot) CounterValue(series string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Series == series {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue returns the value of the named gauge series and whether it
// exists.
func (s Snapshot) GaugeValue(series string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Series == series {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSONFile writes the snapshot to path (0644).
func (s Snapshot) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(rd io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// ReadSnapshotFile parses a snapshot from a JSON file.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel splices an extra label into a series name: "fam{a=\"b\"}" →
// "fam{a=\"b\",k=\"v\"}", "fam" → "fam{k=\"v\"}". newFamily, when
// non-empty, also replaces the family prefix (for _bucket suffixes).
func withLabel(series, family, newFamily, k, v string) string {
	rest := series[len(family):]
	if newFamily == "" {
		newFamily = family
	}
	label := k + `="` + escapeLabel(v) + `"`
	if strings.HasPrefix(rest, "{") {
		return newFamily + "{" + label + "," + rest[1:]
	}
	return newFamily + "{" + label + "}" + rest
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: families grouped under # TYPE lines, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name, kind string
		lines      []string
	}
	byName := map[string]*family{}
	add := func(name, kind, line string) {
		f, ok := byName[name]
		if !ok {
			f = &family{name: name, kind: kind}
			byName[name] = f
		}
		f.lines = append(f.lines, line)
	}
	for _, c := range s.Counters {
		add(c.Family, "counter", c.Series+" "+strconv.FormatInt(c.Value, 10))
	}
	for _, g := range s.Gauges {
		add(g.Family, "gauge", g.Series+" "+formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.BucketCounts[i]
			add(h.Family, "histogram",
				withLabel(h.Series, h.Family, h.Family+"_bucket", "le", formatValue(b))+" "+strconv.FormatInt(cum, 10))
		}
		add(h.Family, "histogram",
			withLabel(h.Series, h.Family, h.Family+"_bucket", "le", "+Inf")+" "+strconv.FormatInt(h.Count, 10))
		sumSeries := h.Family + "_sum" + h.Series[len(h.Family):]
		countSeries := h.Family + "_count" + h.Series[len(h.Family):]
		add(h.Family, "histogram", sumSeries+" "+formatValue(h.Sum))
		add(h.Family, "histogram", countSeries+" "+strconv.FormatInt(h.Count, 10))
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns the debug HTTP handler for a registry:
//
//	/             a human-readable status page
//	/metrics      Prometheus text exposition
//	/metrics.json the JSON snapshot
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeStatusPage(w, r.Snapshot())
	})
	return mux
}

// writeStatusPage renders the snapshot as a minimal HTML status page.
func writeStatusPage(w io.Writer, s Snapshot) {
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>etlopt status</title>"+
		"<style>body{font-family:monospace}table{border-collapse:collapse}"+
		"td,th{border:1px solid #999;padding:2px 8px;text-align:left}</style>"+
		"</head><body><h1>etlopt status</h1><p>uptime %.1fs</p>", s.UptimeSeconds)
	fmt.Fprint(w, "<h2>Counters</h2><table><tr><th>series</th><th>value</th></tr>")
	for _, c := range s.Counters {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td></tr>", html.EscapeString(c.Series), c.Value)
	}
	fmt.Fprint(w, "</table><h2>Gauges</h2><table><tr><th>series</th><th>value</th></tr>")
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>", html.EscapeString(g.Series), formatValue(g.Value))
	}
	fmt.Fprint(w, "</table><h2>Histograms</h2><table><tr><th>series</th><th>count</th><th>sum</th></tr>")
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%s</td></tr>",
			html.EscapeString(h.Series), h.Count, formatValue(h.Sum))
	}
	fmt.Fprint(w, "</table><h2>Recent spans</h2><table><tr><th>span</th><th>depth</th><th>start&nbsp;+s</th><th>duration</th></tr>")
	for _, sp := range s.Spans {
		fmt.Fprintf(w, "<tr><td>%s%s</td><td>%d</td><td>%.3f</td><td>%s</td></tr>",
			strings.Repeat("&nbsp;&nbsp;", sp.Depth), html.EscapeString(sp.Name),
			sp.Depth, sp.StartOffsetSeconds,
			time.Duration(sp.DurationSeconds*float64(time.Second)).Round(time.Microsecond))
	}
	fmt.Fprint(w, "</table></body></html>")
}

// Serve starts the debug HTTP listener for a registry on addr (e.g.
// "localhost:6060", or "localhost:0" for an ephemeral port). It returns
// the bound address and a shutdown function. This backs the CLIs'
// -debug-addr flag.
func Serve(addr string, r *Registry) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// StartProgress emits line() to w every interval until the returned stop
// function is called (stop waits for the emitter to finish, and emits one
// final line so short runs still report). A nil writer or non-positive
// interval yields a no-op stop.
func StartProgress(w io.Writer, interval time.Duration, line func() string) (stop func()) {
	if w == nil || interval <= 0 || line == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, line())
			case <-done:
				fmt.Fprintln(w, line())
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
