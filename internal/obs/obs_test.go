package obs

import (
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"etlopt/internal/stats"
)

func TestNilHandlesNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("nil histogram quantile must be NaN")
	}
	sp := r.StartSpan("root")
	sp.Child("leaf").End()
	sp.Annotate("k", "v").End()
	if got := r.RecentSpans(0); got != nil {
		t.Fatalf("nil registry spans = %v, want nil", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
}

func TestSeriesNaming(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "b", "2", "a", "1")
	if got, want := c.Name(), `x_total{a="1",b="2"}`; got != want {
		t.Fatalf("series = %q, want %q (labels must sort by key)", got, want)
	}
	if r.Counter("x_total", "a", "1", "b", "2") != c {
		t.Fatalf("same (family, labels) must return the same counter")
	}
	e := r.Counter("esc_total", "v", "a\\b\"c\nd")
	if got, want := e.Name(), `esc_total{v="a\\b\"c\nd"}`; got != want {
		t.Fatalf("escaped series = %q, want %q", got, want)
	}
	if r.Counter("plain_total").Name() != "plain_total" {
		t.Fatalf("label-free series must be the bare family name")
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this pins the registry's thread safety, and
// the exact final values pin that no update is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Constructors race on the same series names on purpose.
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_seconds", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
				if i%100 == 0 {
					sp := r.StartSpan("hammer")
					sp.End()
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := r.Counter("hammer_total").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != total {
		t.Fatalf("gauge = %v, want %d", got, total)
	}
	h := r.Histogram("hammer_seconds", nil)
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	wantSum := float64(total) / 4 * (0 + 0.25 + 0.5 + 0.75)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	snap := r.Snapshot()
	for _, hp := range snap.Histograms {
		var bucketSum int64
		for _, c := range hp.BucketCounts {
			bucketSum += c
		}
		if bucketSum != hp.Count {
			t.Fatalf("%s: bucket counts sum to %d, count is %d", hp.Series, bucketSum, hp.Count)
		}
	}
}

// TestQuantileAgainstSummarize checks the histogram's interpolated
// quantiles against exact order statistics from stats.Summarize on the
// same sample: the estimate must land within the width of the bucket
// containing the true value.
func TestQuantileAgainstSummarize(t *testing.T) {
	// Deterministic pseudo-random sample in [0, 1): a small LCG, so the
	// test needs no randomness source.
	seed := uint64(20050405)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = float64(i+1) / 20
	}
	r := NewRegistry()
	h := r.Histogram("sample", bounds)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = next()
		h.Observe(sample[i])
	}
	sum := stats.Summarize(sample)
	const bucketWidth = 1.0 / 20
	if got := h.Quantile(0.5); math.Abs(got-sum.Median) > bucketWidth {
		t.Fatalf("median estimate %v vs exact %v: off by more than a bucket", got, sum.Median)
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.25, 0.75, 0.9, 0.99} {
		exact := sorted[int(q*float64(len(sorted)-1))]
		if got := h.Quantile(q); math.Abs(got-exact) > bucketWidth {
			t.Fatalf("q=%v estimate %v vs exact %v: off by more than a bucket", q, got, exact)
		}
	}
	if got := h.Quantile(0); got < 0 || got > bucketWidth {
		t.Fatalf("q=0 estimate %v outside first bucket", got)
	}
	if got := h.Quantile(1); got < 1-bucketWidth || got > 1 {
		t.Fatalf("q=1 estimate %v outside last bucket", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("states_total", "algo", "HS").Add(42)
	r.Gauge("best_cost").Set(123.5)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)
	sp := r.StartSpan("run")
	sp.Child("phase").End()
	sp.End()

	snap := r.Snapshot()
	var b strings.Builder
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Has(`states_total{algo="HS"}`) || !back.Has("best_cost") || !back.Has("lat_seconds") {
		t.Fatalf("round-tripped snapshot missing series: %+v", back)
	}
	if v, ok := back.CounterValue(`states_total{algo="HS"}`); !ok || v != 42 {
		t.Fatalf("counter value = %d, %v; want 42, true", v, ok)
	}
	if v, ok := back.GaugeValue("best_cost"); !ok || v != 123.5 {
		t.Fatalf("gauge value = %v, %v; want 123.5, true", v, ok)
	}
	if len(back.Spans) != 2 {
		t.Fatalf("spans round-tripped = %d, want 2", len(back.Spans))
	}
	// Spans complete innermost-first; the child must carry its parent.
	if back.Spans[0].Name != "phase" || back.Spans[0].Parent != "run" || back.Spans[0].Depth != 1 {
		t.Fatalf("child span = %+v", back.Spans[0])
	}
	if snap.Has("missing") {
		t.Fatalf("Has must not invent series")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "op", "SWA").Add(7)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("h_seconds", []float64{0.1, 1}, "stage", "load")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE c_total counter",
		`c_total{op="SWA"} 7`,
		"# TYPE g gauge",
		"g 2.5",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.1",stage="load"} 1`,
		`h_seconds_bucket{le="1",stage="load"} 2`,
		`h_seconds_bucket{le="+Inf",stage="load"} 3`,
		`h_seconds_sum{stage="load"} 5.55`,
		`h_seconds_count{stage="load"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// obs_span_seconds is absent (no spans ended), and no series repeats
	// its TYPE line.
	if strings.Count(out, "# TYPE h_seconds histogram") != 1 {
		t.Fatalf("TYPE line must appear once per family:\n%s", out)
	}
}

func TestSpanRing(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanLogCap+10; i++ {
		r.StartSpan("s").End()
	}
	got := r.RecentSpans(0)
	if len(got) != spanLogCap {
		t.Fatalf("ring keeps %d spans, want %d", len(got), spanLogCap)
	}
	if len(r.RecentSpans(5)) != 5 {
		t.Fatalf("RecentSpans(5) must cap the window")
	}
	if h := r.Histogram("obs_span_seconds", nil, "span", "s"); h.Count() != spanLogCap+10 {
		t.Fatalf("span histogram count = %d, want %d", h.Count(), spanLogCap+10)
	}
}

func TestServeAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(3)
	addr, stop, err := Serve("localhost:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "served_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	snap, err := ReadSnapshot(strings.NewReader(get("/metrics.json")))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.CounterValue("served_total"); !ok || v != 3 {
		t.Fatalf("/metrics.json counter = %d, %v", v, ok)
	}
	if page := get("/"); !strings.Contains(page, "served_total") {
		t.Fatalf("status page missing counter:\n%s", page)
	}
}

func TestStartProgress(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	stop := StartProgress(w, 10*time.Millisecond, func() string { return "tick" })
	time.Sleep(35 * time.Millisecond)
	stop()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if strings.Count(out, "tick") < 2 {
		t.Fatalf("expected periodic + final progress lines, got %q", out)
	}
	// Disabled variants are inert.
	StartProgress(nil, time.Second, func() string { return "x" })()
	StartProgress(w, 0, func() string { return "x" })()
	StartProgress(w, time.Second, nil)()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
