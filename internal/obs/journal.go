package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// This file is the flight recorder: a bounded, lock-cheap structured run
// journal. Instrumented code emits typed Events; a single writer goroutine
// drains them to an io.Writer as JSONL (one JSON object per line), so the
// hot path pays one atomic sequence bump, one clock read and one
// non-blocking channel send per event — no marshalling, no I/O, no mutex.
//
// The journal is explicitly lossy under pressure: when the channel buffer
// is full the event is dropped and counted, never blocked on. Write
// failures (disk full, closed file) are likewise counted and never
// propagate into the instrumented computation — the run completes and the
// drop/error accounting lands both in the trailing summary event and, when
// a Registry is attached, in the journal_events_dropped_total and
// journal_errors_total counters.
//
// Like every other obs instrument, a nil *Journal no-ops on every method,
// so callers hold the handle unconditionally; and collection is
// write-only, so results are bit-identical with the journal on or off.

// Event type names, as serialized in the Event.T field.
const (
	// EventRun marks a run boundary: Action is "start" or "end", Detail
	// names the tool and algorithm or execution mode.
	EventRun = "run"
	// EventPhase marks a search or engine phase boundary: Op is the phase
	// name, Action is "start" or "end".
	EventPhase = "phase"
	// EventTransition is one optimizer transition: Op is the mnemonic
	// (SWA, FAC, DIS, MER, SPL), Action is "attempt", "accept", "prune"
	// (rejected as a duplicate by the visited set) or "best" (a new
	// minimum, Cost carries the new best cost).
	EventTransition = "transition"
	// EventCache is one expansion-cache lookup: Op names the cache
	// ("expand"), Action is "hit" or "miss".
	EventCache = "cache"
	// EventNode is one executed workflow node: Node identifies it, Rows its
	// output cardinality, Sec its wall-clock execution time.
	EventNode = "node"
	// EventBatch is one partition's share of a node in the parallel
	// engine: Node and Part identify the batch, Rows its output size.
	EventBatch = "batch"
	// EventExchange is one repartition exchange: Node is the key-sensitive
	// activity, Rows the number of rows routed between partitions.
	EventExchange = "exchange"
	// EventCheckpoint is one checkpoint step: Action is "staged" or
	// "restored", Node the checkpointed node, Rows its output size.
	EventCheckpoint = "checkpoint"
	// EventDrift is one observed-vs-modeled selectivity comparison:
	// Node identifies the activity, Observed and Modeled the two values.
	EventDrift = "drift"
	// EventFault is one injected fault firing: Node and Part locate it,
	// Action names the injection site, Detail the kind
	// (transient/permanent).
	EventFault = "fault"
	// EventRetry is one retry of a transiently failed node: Attempt is
	// the upcoming attempt number, Sec the backoff delay before it,
	// Detail the error that caused it.
	EventRetry = "retry"
	// EventResume is one checkpoint-resume hit: the runner skipped
	// recomputing Node because Rows staged rows survived a crash.
	EventResume = "resume"
	// EventSummary is the trailing accounting record Close writes: Events,
	// Dropped and Errors report the journal's own bookkeeping.
	EventSummary = "summary"
)

// Event is one journal record. Events are flat — every type uses the same
// struct with its irrelevant fields zero — so a journal is greppable and a
// consumer needs exactly one decode shape. Off is seconds since the
// journal was opened (journals carry no absolute wall-clock values, like
// snapshots); Seq is a process-wide emission sequence number, so a sort by
// Seq reconstructs emission order even though concurrent emitters may
// interleave arbitrarily in the file.
//
// Part is the engine partition index; encoding omits zero values, so a
// batch event without a "part" field is partition 0.
type Event struct {
	Seq      int64   `json:"seq"`
	T        string  `json:"t"`
	Off      float64 `json:"off"`
	Op       string  `json:"op,omitempty"`
	Action   string  `json:"action,omitempty"`
	Node     string  `json:"node,omitempty"`
	Part     int     `json:"part,omitempty"`
	Rows     int64   `json:"rows,omitempty"`
	Cost     float64 `json:"cost,omitempty"`
	Sec      float64 `json:"sec,omitempty"`
	Observed float64 `json:"observed,omitempty"`
	Modeled  float64 `json:"modeled,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Events   int64   `json:"events,omitempty"`
	Dropped  int64   `json:"dropped,omitempty"`
	Errors   int64   `json:"errors,omitempty"`
}

// Typed event constructors. They only fill fields; Emit stamps Seq and Off.

// RunEvent marks a run boundary ("start"/"end") for the named tool/mode.
func RunEvent(action, detail string) Event {
	return Event{T: EventRun, Action: action, Detail: detail}
}

// PhaseEvent marks a phase boundary ("start"/"end").
func PhaseEvent(name, action string) Event {
	return Event{T: EventPhase, Op: name, Action: action}
}

// TransitionEvent records one optimizer transition of kind op.
func TransitionEvent(op, action string, cost float64) Event {
	return Event{T: EventTransition, Op: op, Action: action, Cost: cost}
}

// CacheEvent records one lookup in the named cache.
func CacheEvent(cache string, hit bool) Event {
	action := "miss"
	if hit {
		action = "hit"
	}
	return Event{T: EventCache, Op: cache, Action: action}
}

// SharedCacheName is the Op under which the shared-work suite scheduler's
// intermediate-result cache journals its activity. Consumers (etlvet obs)
// aggregate these events separately from plain hit/miss caches because
// they carry byte counts and extra actions.
const SharedCacheName = "shared"

// SharedCacheEvent records shared intermediate-result cache activity.
// Action is one of "lookup", "hit", "miss", "admit", "evict" or "spill";
// Rows carries the byte size of the entry involved (0 for lookup/miss,
// where no entry exists yet).
func SharedCacheEvent(action string, bytes int64) Event {
	return Event{T: EventCache, Op: SharedCacheName, Action: action, Rows: bytes}
}

// NodeEvent records one executed node with its output size and duration.
func NodeEvent(node string, rows int, sec float64) Event {
	return Event{T: EventNode, Node: node, Rows: int64(rows), Sec: sec}
}

// BatchEvent records one partition's share of a node's output.
func BatchEvent(node string, part, rows int) Event {
	return Event{T: EventBatch, Node: node, Part: part, Rows: int64(rows)}
}

// ExchangeEvent records rows routed through a repartition exchange.
func ExchangeEvent(node string, rows int) Event {
	return Event{T: EventExchange, Node: node, Rows: int64(rows)}
}

// CheckpointEvent records one checkpoint step ("staged"/"restored").
func CheckpointEvent(node, action string, rows int) Event {
	return Event{T: EventCheckpoint, Node: node, Action: action, Rows: int64(rows)}
}

// DriftEvent records one observed-vs-modeled selectivity pair.
func DriftEvent(node string, observed, modeled float64) Event {
	return Event{T: EventDrift, Node: node, Observed: observed, Modeled: modeled}
}

// FaultEvent records one injected fault: site is the injection point,
// kind "transient" or "permanent".
func FaultEvent(node string, part int, site, kind string) Event {
	return Event{T: EventFault, Node: node, Part: part, Action: site, Detail: kind}
}

// RetryEvent records one retry: attempt is the upcoming attempt number,
// delaySec the backoff before it, detail the error that caused it.
func RetryEvent(node string, attempt int, delaySec float64, detail string) Event {
	return Event{T: EventRetry, Node: node, Attempt: attempt, Sec: delaySec, Detail: detail}
}

// ResumeEvent records a checkpoint-resume hit for node with rows staged
// rows restored instead of recomputed.
func ResumeEvent(node string, rows int) Event {
	return Event{T: EventResume, Node: node, Rows: int64(rows)}
}

// journalChanCap bounds the in-flight event buffer: the journal never
// holds more than this many unwritten events; beyond it, events drop (and
// are counted) rather than block the instrumented code.
const journalChanCap = 8192

// Journal is the flight recorder handle. Emit is safe for concurrent use
// from any goroutine; Close must not race Emit (quiesce the run first —
// the CLIs close after their search/engine call returns). A nil *Journal
// ignores every call.
type Journal struct {
	ch            chan Event
	done          chan struct{}
	start         time.Time
	seq           atomic.Int64
	written       atomic.Int64
	dropped       atomic.Int64
	errs          atomic.Int64
	closed        atomic.Bool
	firstWriteErr error // owned by the writer goroutine until done closes

	w     *bufio.Writer
	owned io.Closer // non-nil when the journal opened the file itself

	// Registry mirrors, may be nil: the same accounting as the summary
	// event, live, for the status page and snapshots.
	cWritten *Counter
	cDropped *Counter
	cErrors  *Counter
}

// NewJournal starts a journal writing JSONL to w. reg, when non-nil,
// receives the journal's accounting as journal_events_total,
// journal_events_dropped_total and journal_errors_total counters; nil
// skips the mirroring. Close the journal to flush.
func NewJournal(w io.Writer, reg *Registry) *Journal {
	j := &Journal{
		ch:    make(chan Event, journalChanCap),
		done:  make(chan struct{}),
		start: now(),
		w:     bufio.NewWriterSize(w, 64<<10),
	}
	if reg != nil {
		j.cWritten = reg.Counter("journal_events_total")
		j.cDropped = reg.Counter("journal_events_dropped_total")
		j.cErrors = reg.Counter("journal_errors_total")
	}
	go j.writeLoop()
	return j
}

// NewJournalFile opens (creating or truncating) path and starts a journal
// on it; Close also closes the file.
func NewJournalFile(path string, reg *Registry) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := NewJournal(f, reg)
	j.owned = f
	return j, nil
}

// Emit records one event: Seq and Off are stamped here, at emission time,
// and the event is handed to the writer without blocking. A full buffer —
// or an Emit after Close — drops the event and counts the drop. Safe for
// concurrent use; a nil journal ignores the call.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	if j.closed.Load() {
		j.drop()
		return
	}
	e.Seq = j.seq.Add(1)
	e.Off = now().Sub(j.start).Seconds()
	select {
	case j.ch <- e:
	default:
		j.drop()
	}
}

func (j *Journal) drop() {
	j.dropped.Add(1)
	j.cDropped.Inc()
}

// writeLoop is the single writer goroutine: it marshals and writes events
// until it reads the close sentinel (T == ""). Failures are counted, the
// first one retained for Close to report — never propagated to emitters.
func (j *Journal) writeLoop() {
	defer close(j.done)
	for e := range j.ch {
		if e.T == "" {
			return
		}
		j.writeEvent(e, true)
	}
}

// writeEvent marshals and writes one record. count controls whether a
// success bumps the written-event accounting: true for emitted events,
// false for the summary trailer (which reports on the events, and would
// skew its own numbers if it counted itself).
func (j *Journal) writeEvent(e Event, count bool) {
	b, err := json.Marshal(e)
	if err == nil {
		b = append(b, '\n')
		_, err = j.w.Write(b)
	}
	if err != nil {
		j.errs.Add(1)
		j.cErrors.Inc()
		if j.firstWriteErr == nil {
			j.firstWriteErr = err
		}
		return
	}
	if count {
		j.written.Add(1)
		j.cWritten.Inc()
	}
}

// Dropped returns how many events were dropped (buffer full or emitted
// after Close).
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Errors returns how many events failed to write.
func (j *Journal) Errors() int64 {
	if j == nil {
		return 0
	}
	return j.errs.Load()
}

// Written returns how many events reached the underlying writer.
func (j *Journal) Written() int64 {
	if j == nil {
		return 0
	}
	return j.written.Load()
}

// Close stops the journal: it drains the buffered events, appends the
// summary event (total written, dropped, write errors), flushes, and —
// for NewJournalFile journals — closes the file. Emits racing or
// following Close are counted as drops, never a panic. Close returns the
// first write failure, if any occurred, so callers can surface a warning;
// the failure is informational — every counted event before it was
// already accepted without blocking the run. Closing twice or closing a
// nil journal is a no-op.
func (j *Journal) Close() error {
	if j == nil || !j.closed.CompareAndSwap(false, true) {
		return nil
	}
	// The sentinel is a zero-T event; writeLoop exits when it sees it.
	// The send blocks until the writer has drained everything before it.
	j.ch <- Event{}
	<-j.done
	j.writeEvent(Event{
		Seq: j.seq.Add(1), T: EventSummary, Off: now().Sub(j.start).Seconds(),
		Events: j.written.Load(), Dropped: j.dropped.Load(), Errors: j.errs.Load(),
	}, false)
	if err := j.w.Flush(); err != nil {
		j.errs.Add(1)
		j.cErrors.Inc()
		if j.firstWriteErr == nil {
			j.firstWriteErr = err
		}
	}
	if j.owned != nil {
		if err := j.owned.Close(); err != nil && j.firstWriteErr == nil {
			j.firstWriteErr = err
		}
	}
	if j.firstWriteErr != nil {
		return fmt.Errorf("obs: journal: %d event(s) lost to write failures, first: %w",
			j.errs.Load(), j.firstWriteErr)
	}
	return nil
}

// ReadJournal parses a JSONL journal back into events, in file order.
// Unparseable lines abort with an error identifying the line number.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading journal: %w", err)
	}
	return out, nil
}

// ReadJournalFile parses a JSONL journal file.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
