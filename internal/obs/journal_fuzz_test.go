package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJournal hardens the journal reader against hostile or damaged
// input: whatever bytes land in a journal file — malformed JSONL lines,
// truncated trailers, duplicate or missing seq numbers, absurd numbers —
// ReadJournal must either return events or an error, never panic, and
// the events it does return must be safe to consume. The seed corpus is
// a real journal produced by the recorder itself (the same event mix an
// etlrun invocation emits: run boundaries, node/batch/exchange traffic,
// checkpoint, fault, retry and resume events, summary trailer), plus
// hand-damaged variants of it.
func FuzzReadJournal(f *testing.F) {
	var buf bytes.Buffer
	j := NewJournal(&buf, nil)
	j.Emit(RunEvent("start", "engine/parallel"))
	j.Emit(NodeEvent("1:σ(COST>=100)", 120, 0.004))
	j.Emit(BatchEvent("1:σ(COST>=100)", 3, 30))
	j.Emit(ExchangeEvent("2:γ(PKEY)", 120))
	j.Emit(CheckpointEvent("1:σ(COST>=100)", "staged", 120))
	j.Emit(FaultEvent("2:γ(PKEY)", 1, "emit", "transient"))
	j.Emit(RetryEvent("2:γ(PKEY)", 2, 0.001, "fault: injected transient fault at emit"))
	j.Emit(ResumeEvent("1:σ(COST>=100)", 120))
	j.Emit(DriftEvent("1:σ(COST>=100)", 0.5, 0.45))
	j.Emit(RunEvent("end", "engine/parallel"))
	if err := j.Close(); err != nil {
		f.Fatalf("recording seed journal: %v", err)
	}
	full := buf.Bytes()

	f.Add(full)
	f.Add(full[:len(full)/2])                                                                        // truncated mid-file
	f.Add(bytes.TrimRight(full, "\n}0123456789"))                                                    // trailer cut mid-JSON
	f.Add([]byte(`{"seq":1,"t":"node","off":0.1}` + "\n" + `{"seq":1,"t":"node","off":0.2}` + "\n")) // duplicate seqs
	f.Add([]byte(`{"seq":-5,"t":"summary","off":-1,"events":-3}` + "\n"))
	f.Add([]byte("not json at all\n\n{\"seq\":2}\n"))
	f.Add([]byte(`{"seq":1e999,"t":"run"}` + "\n"))
	f.Add([]byte(`{"seq":3,"t":"` + strings.Repeat("x", 4096) + `"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})

	f.Fuzz(func(t *testing.T, raw []byte) {
		evs, err := ReadJournal(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Returned events must be fully consumable without surprises.
		for _, e := range evs {
			_ = e.T
			_ = e.Seq
			_ = e.Rows
		}
	})
}
