package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpanTraceTree(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("run")
	child := root.Child("phase")
	grand := child.Child("step")
	grand.End()
	child.End()
	root.End()
	other := r.StartSpan("other")
	other.End()

	recs := r.RecentSpans(0)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	run, phase, step, oth := byName["run"], byName["phase"], byName["step"], byName["other"]
	if run.ID == 0 || run.TraceID != run.ID || run.ParentID != 0 {
		t.Errorf("root record ids: %+v", run)
	}
	if phase.TraceID != run.ID || phase.ParentID != run.ID {
		t.Errorf("child must inherit trace and point at parent: %+v (root %d)", phase, run.ID)
	}
	if step.TraceID != run.ID || step.ParentID != phase.ID || step.Depth != 2 {
		t.Errorf("grandchild ids: %+v", step)
	}
	if oth.TraceID == run.ID || oth.TraceID != oth.ID {
		t.Errorf("separate root must start its own trace: %+v", oth)
	}
	ids := map[int64]bool{run.ID: true, phase.ID: true, step.ID: true, oth.ID: true}
	if len(ids) != 4 {
		t.Error("span IDs must be unique")
	}
}

func TestSetSpanCapAndDropAccounting(t *testing.T) {
	r := NewRegistry()
	if got := r.SpansDropped(); got != 0 {
		t.Fatalf("fresh registry SpansDropped = %d", got)
	}
	snap := r.Snapshot()
	if v, ok := snap.CounterValue("obs_spans_dropped_total"); !ok || v != 0 {
		t.Fatalf("obs_spans_dropped_total must exist from creation (got %d, ok=%v)", v, ok)
	}

	// Overflow the default window: overwrites are counted.
	for i := 0; i < spanLogCap+10; i++ {
		r.StartSpan("s").End()
	}
	if got := r.SpansDropped(); got != 10 {
		t.Errorf("SpansDropped after %d spans = %d, want 10", spanLogCap+10, got)
	}

	// Growing keeps what is retained and stops the loss.
	r.SetSpanCap(spanLogCap + 100)
	if got := len(r.RecentSpans(0)); got != spanLogCap {
		t.Errorf("after grow, retained %d spans, want %d", got, spanLogCap)
	}
	for i := 0; i < 100; i++ {
		r.StartSpan("t").End()
	}
	if got := r.SpansDropped(); got != 10 {
		t.Errorf("grown window must not drop: SpansDropped = %d, want 10", got)
	}
	if got := len(r.RecentSpans(0)); got != spanLogCap+100 {
		t.Errorf("grown window retains %d, want %d", got, spanLogCap+100)
	}

	// Shrinking sheds oldest records and counts them.
	r.SetSpanCap(50)
	if got := len(r.RecentSpans(0)); got != 50 {
		t.Errorf("after shrink, retained %d, want 50", got)
	}
	recs := r.RecentSpans(0)
	for _, rec := range recs {
		if rec.Name != "t" {
			t.Fatalf("shrink must keep the most recent records, found %q", rec.Name)
		}
	}
	wantDropped := int64(10 + (spanLogCap + 100 - 50))
	if got := r.SpansDropped(); got != wantDropped {
		t.Errorf("SpansDropped after shrink = %d, want %d", got, wantDropped)
	}

	// c <= 0 restores the default bound.
	r.SetSpanCap(0)
	for i := 0; i < spanLogCap+5; i++ {
		r.StartSpan("u").End()
	}
	if got := len(r.RecentSpans(0)); got != spanLogCap {
		t.Errorf("default-restored window retains %d, want %d", got, spanLogCap)
	}

	// Nil registry: all no-ops.
	var nilReg *Registry
	nilReg.SetSpanCap(5)
	if nilReg.SpansDropped() != 0 {
		t.Error("nil registry SpansDropped != 0")
	}
}

func TestWriteTraceEvents(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("run").Annotate("algo", "hs")
	child := root.Child("p1")
	child.End()
	root.End()
	r.StartSpan("exec").End()

	var buf bytes.Buffer
	if err := r.Snapshot().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var metas, complete []int
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			metas = append(metas, i)
		case "X":
			complete = append(complete, i)
		default:
			t.Errorf("unexpected phase %q in event %d", e.Ph, i)
		}
	}
	// process_name + two thread_name (one per trace) metadata records.
	if len(metas) != 3 {
		t.Errorf("got %d metadata events, want 3", len(metas))
	}
	if tf.TraceEvents[metas[0]].Name != "process_name" {
		t.Errorf("first metadata = %+v", tf.TraceEvents[metas[0]])
	}
	if len(complete) != 3 {
		t.Fatalf("got %d complete events, want 3", len(complete))
	}
	byName := map[string]int{}
	for _, i := range complete {
		byName[tf.TraceEvents[i].Name] = i
	}
	run := tf.TraceEvents[byName["run"]]
	p1 := tf.TraceEvents[byName["p1"]]
	exec := tf.TraceEvents[byName["exec"]]
	if run.Tid != p1.Tid {
		t.Errorf("run and its child must share a track: %d vs %d", run.Tid, p1.Tid)
	}
	if exec.Tid == run.Tid {
		t.Error("separate traces must get separate tracks")
	}
	if run.Args["algo"] != "hs" {
		t.Errorf("annotations must reach args: %v", run.Args)
	}
	if p1.Args["parent"] != "run" {
		t.Errorf("child args must carry parent: %v", p1.Args)
	}
	// Events sort by timestamp.
	last := -1.0
	for _, i := range complete {
		if ts := tf.TraceEvents[i].Ts; ts < last {
			t.Errorf("complete events out of ts order at %d", i)
		} else {
			last = ts
		}
	}
}

func TestWriteTraceEventsFile(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("x").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := r.Snapshot().WriteTraceEventsFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var anything map[string]any
	if err := json.Unmarshal(b, &anything); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if _, ok := anything["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents key")
	}
}

func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "node", "3:σ(A=\"x\\y\")\nz").Inc()
	h := r.Histogram("esc_seconds", []float64{1}, "node", "a\"b")
	h.Observe(0.5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `esc_total{node="3:σ(A=\"x\\y\")\nz"} 1`) {
		t.Errorf("counter label not escaped:\n%s", out)
	}
	// The le label splices in *before* existing labels keep their escaping.
	if !strings.Contains(out, `esc_seconds_bucket{le="1",node="a\"b"} 1`) {
		t.Errorf("histogram bucket label not escaped/spliced:\n%s", out)
	}
	if !strings.Contains(out, `esc_seconds_bucket{le="+Inf",node="a\"b"} 1`) {
		t.Errorf("+Inf bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `esc_seconds_sum{node="a\"b"} 0.5`) {
		t.Errorf("sum series missing:\n%s", out)
	}
}

func TestStatusPageHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("page_total", "op", "<SWA>").Add(5)
	r.Gauge("page_gauge").Set(1.25)
	r.Histogram("page_seconds", nil).Observe(0.001)
	sp := r.StartSpan("run<script>")
	sp.Child("phase").End()
	sp.End()

	h := Handler(r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"etlopt status",
		"page_total{op=&#34;&lt;SWA&gt;&#34;}", // HTML-escaped series name
		"<td>5</td>",
		"page_gauge",
		"1.25",
		"page_seconds",
		"run&lt;script&gt;", // span names are HTML-escaped too
		"phase",
		"obs_spans_dropped_total", // satellite: loss accounting on the page
	} {
		if !strings.Contains(body, want) {
			t.Errorf("status page missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "<script>") {
		t.Error("status page contains unescaped user-controlled markup")
	}

	// Non-root paths 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", rec.Code)
	}

	// The other endpoints serve what they claim.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "# TYPE page_total counter") {
		t.Errorf("GET /metrics = %d:\n%s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("GET /metrics.json does not parse: %v", err)
	}
	if v, ok := snap.CounterValue(`page_total{op="<SWA>"}`); !ok || v != 5 {
		t.Errorf("metrics.json counter = %d, ok=%v", v, ok)
	}
}
