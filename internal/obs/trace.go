package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
)

// Trace export: the snapshot's completed-span window rendered as Chrome
// trace-event JSON (the "JSON Array Format" with a traceEvents wrapper),
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. Each trace
// tree — a root span and its descendants — gets its own track (tid =
// TraceID), named after the root span; every span becomes one complete
// ("ph":"X") event with microsecond timestamps relative to registry
// creation. Span attributes and the parent name travel in args, so the
// UI's selection panel shows them.

// traceEvent is one record in the trace-event JSON format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents writes the snapshot's spans as Chrome/Perfetto
// trace-event JSON. Output is deterministic for a given snapshot: spans
// sort by start offset, then ID.
func (s Snapshot) WriteTraceEvents(w io.Writer) error {
	spans := append([]SpanRecord(nil), s.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartOffsetSeconds != spans[j].StartOffsetSeconds {
			return spans[i].StartOffsetSeconds < spans[j].StartOffsetSeconds
		}
		return spans[i].ID < spans[j].ID
	})

	out := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(spans)+8),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "etlopt"},
	})

	// One named track per trace tree, labeled by its root span. Roots are
	// spans with no parent; a trace whose root fell out of the span window
	// keeps a numeric label.
	rootName := map[int64]string{}
	for _, sp := range spans {
		if sp.ParentID == 0 {
			rootName[sp.TraceID] = sp.Name
		}
	}
	tids := make([]int64, 0, len(rootName))
	for tid := range rootName {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": rootName[tid]},
		})
	}

	for _, sp := range spans {
		args := make(map[string]string, len(sp.Attrs)+2)
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		args["span_id"] = strconv.FormatInt(sp.ID, 10)
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   sp.StartOffsetSeconds * 1e6,
			Dur:  sp.DurationSeconds * 1e6,
			Pid:  1,
			Tid:  sp.TraceID,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTraceEventsFile writes the trace-event JSON to path.
func (s Snapshot) WriteTraceEventsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTraceEvents(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
