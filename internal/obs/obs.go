// Package obs is the observability substrate of the optimizer and the
// execution engine: a metrics registry (counters, gauges, histograms with
// lock-free atomic hot paths), a hierarchical span/event API, and the
// exposition machinery behind the CLIs' -metrics and -debug-addr flags
// (JSON snapshots, Prometheus text format, a live status page and a
// periodic progress line).
//
// Two properties shape the design:
//
//   - Near-zero cost when disabled. Every instrument handle is nil-safe:
//     methods on a nil *Counter, *Gauge, *Histogram or *Span are no-ops,
//     so instrumented code holds handles unconditionally and pays one
//     predictable nil check per event when collection is off — no
//     interface dispatch, no map lookups, no allocation.
//
//   - Collection never influences computation. Instruments are write-only
//     from the instrumented code's point of view: the search and the
//     engine record into them but never read them back, so results are
//     bit-identical with metrics on or off (pinned by the determinism
//     tests in internal/core). Wall-clock timestamps stay inside the
//     package — snapshots report durations and offsets, never absolute
//     times.
//
// All of it is standard library only.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// now is the package's single wall-clock source, indirected so tests can
// pin it. Observability timing is presentation-only: nothing read from
// the clock ever feeds back into search or execution results.
var now = time.Now

// Counter is a monotonically increasing integer series. The zero value of
// a registered counter is ready; a nil *Counter ignores every call.
type Counter struct {
	family string
	series string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for the series to stay monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the full series name, labels included.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.series
}

// Gauge is an instantaneous float64 value (set or accumulated). A nil
// *Gauge ignores every call.
type Gauge struct {
	family string
	series string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates d with a compare-and-swap loop, so concurrent adders
// never lose updates.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the full series name, labels included.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.series
}

// Histogram accumulates observations into fixed buckets (cumulative-style
// exposition, Prometheus-compatible). Observations and reads are lock-free;
// a nil *Histogram ignores every call.
type Histogram struct {
	family string
	series string
	// bounds are the ascending inclusive upper bounds of the finite
	// buckets; counts has one extra slot for the implicit +Inf bucket.
	bounds  []float64
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64
}

// DefBuckets is the default bucket layout for second-valued histograms:
// exponential from 1µs to ~16s.
var DefBuckets = []float64{
	0.000001, 0.000004, 0.000016, 0.000064, 0.000256, 0.001024,
	0.004096, 0.016384, 0.065536, 0.262144, 1.048576, 4.194304, 16.777216,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the +Inf slot catches the
	// rest.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the full series name, labels included.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.series
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the rank, the classic Prometheus
// histogram_quantile estimate. The error is bounded by the width of that
// bucket; observations beyond the last finite bound are reported as the
// last finite bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.total.Load() == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := float64(h.total.Load())
	rank := q * total
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			if i >= len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate against.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds a process- or run-scoped set of named instruments plus a
// bounded log of completed spans. A nil *Registry is the disabled state:
// its instrument constructors return nil handles, which no-op.
//
// Series are identified by a metric family name plus optional label
// key/value pairs; the same (family, labels) always returns the same
// instrument, so concurrent registration is idempotent.
type Registry struct {
	created time.Time

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	spanSeq atomic.Int64
	spans   spanLog
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		created:    now(),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	// The span window and its loss accounting exist from the start, so
	// obs_spans_dropped_total is always present in snapshots — zero until
	// the window actually overwrites history.
	r.spans.ring = make([]SpanRecord, spanLogCap)
	r.spans.dropped = r.Counter("obs_spans_dropped_total")
	return r
}

// seriesName renders family plus label pairs as a canonical series name:
// labels sorted by key, values escaped. An odd trailing label is dropped.
func seriesName(family string, labels []string) string {
	if len(labels) < 2 {
		return family
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Counter returns (registering on first use) the counter for the family
// and label pairs. Nil registry → nil handle.
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	series := seriesName(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[series]; ok {
		return c
	}
	c := &Counter{family: family, series: series}
	r.counters[series] = c
	return c
}

// Gauge returns (registering on first use) the gauge for the family and
// label pairs. Nil registry → nil handle.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	series := seriesName(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[series]; ok {
		return g
	}
	g := &Gauge{family: family, series: series}
	r.gauges[series] = g
	return g
}

// Histogram returns (registering on first use) the histogram for the
// family and label pairs. buckets are ascending finite upper bounds; nil
// means DefBuckets. The bucket layout of the first registration wins.
// Nil registry → nil handle.
func (r *Registry) Histogram(family string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	series := seriesName(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[series]; ok {
		return h
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{
		family: family,
		series: series,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[series] = h
	return h
}

// Uptime returns how long the registry has existed.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return now().Sub(r.created)
}
