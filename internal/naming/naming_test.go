package naming

import (
	"strings"
	"testing"
)

// newPaperRegistry builds the registry for the paper's Fig. 1 setting:
// PARTS1.COST is a monthly Euro cost, PARTS2.COST a daily Dollar cost
// (homonyms), and the two DATE columns are synonyms of one grouper entity.
func newPaperRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, ref := range []string{"PKEY", "SOURCE", "DATE", "ECOST", "DCOST", "DEPT"} {
		if err := r.Declare(ref); err != nil {
			t.Fatal(err)
		}
	}
	mappings := [][3]string{
		{"PARTS1", "PKEY", "PKEY"},
		{"PARTS1", "SOURCE", "SOURCE"},
		{"PARTS1", "DATE", "DATE"},
		{"PARTS1", "COST", "ECOST"},
		{"PARTS2", "PKEY", "PKEY"},
		{"PARTS2", "SOURCE", "SOURCE"},
		{"PARTS2", "SHIPDATE", "DATE"},
		{"PARTS2", "COST", "DCOST"},
		{"PARTS2", "DEPT", "DEPT"},
	}
	for _, m := range mappings {
		if err := r.Map(m[0], m[1], m[2]); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestDeclareAndMap(t *testing.T) {
	r := newPaperRegistry(t)
	got, ok := r.Resolve("PARTS1", "COST")
	if !ok || got != "ECOST" {
		t.Errorf("Resolve(PARTS1.COST) = %q, %v", got, ok)
	}
	got, ok = r.Resolve("PARTS2", "COST")
	if !ok || got != "DCOST" {
		t.Errorf("Resolve(PARTS2.COST) = %q, %v", got, ok)
	}
}

func TestDeclareEmpty(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare(""); err == nil {
		t.Error("empty reference name should be rejected")
	}
}

func TestDeclareIdempotent(t *testing.T) {
	r := NewRegistry()
	if err := r.Declare("X"); err != nil {
		t.Fatal(err)
	}
	if err := r.Declare("X"); err != nil {
		t.Errorf("re-declaring should be a no-op, got %v", err)
	}
}

func TestMapUndeclared(t *testing.T) {
	r := NewRegistry()
	if err := r.Map("T", "A", "NOPE"); err == nil {
		t.Error("mapping to an undeclared reference name should fail")
	}
}

func TestMapRebindRejected(t *testing.T) {
	r := NewRegistry()
	r.Declare("X")
	r.Declare("Y")
	if err := r.Map("T", "A", "X"); err != nil {
		t.Fatal(err)
	}
	if err := r.Map("T", "A", "Y"); err == nil {
		t.Error("remapping an attribute to a different reference name should fail")
	}
	// Same binding again is fine (idempotent).
	if err := r.Map("T", "A", "X"); err != nil {
		t.Errorf("idempotent rebinding failed: %v", err)
	}
}

func TestResolveUnmapped(t *testing.T) {
	r := NewRegistry()
	got, ok := r.Resolve("T", "A")
	if ok || got != "A" {
		t.Errorf("unmapped Resolve = %q, %v; want pass-through with ok=false", got, ok)
	}
}

func TestResolveSchema(t *testing.T) {
	r := newPaperRegistry(t)
	got := r.ResolveSchema("PARTS2", []string{"PKEY", "SHIPDATE", "COST", "UNKNOWN"})
	want := []string{"PKEY", "DATE", "DCOST", "UNKNOWN"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ResolveSchema[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestHomonyms(t *testing.T) {
	r := newPaperRegistry(t)
	homs := r.Homonyms()
	if len(homs) != 1 {
		t.Fatalf("Homonyms = %v, want exactly the COST homonym", homs)
	}
	if !strings.Contains(homs[0], `"COST"`) ||
		!strings.Contains(homs[0], "DCOST") || !strings.Contains(homs[0], "ECOST") {
		t.Errorf("unexpected homonym description: %s", homs[0])
	}
}

func TestSynonyms(t *testing.T) {
	r := newPaperRegistry(t)
	syns := r.Synonyms()
	if len(syns) != 1 {
		t.Fatalf("Synonyms = %v, want exactly the DATE synonym group", syns)
	}
	if !strings.Contains(syns[0], `"DATE"`) || !strings.Contains(syns[0], "SHIPDATE") {
		t.Errorf("unexpected synonym description: %s", syns[0])
	}
}

func TestValidateTotal(t *testing.T) {
	r := newPaperRegistry(t)
	schemas := map[string][]string{
		"PARTS1": {"PKEY", "SOURCE", "DATE", "COST"},
		"PARTS2": {"PKEY", "SOURCE", "SHIPDATE", "COST", "DEPT"},
	}
	if err := r.Validate(schemas); err != nil {
		t.Errorf("complete mapping should validate: %v", err)
	}
	schemas["PARTS2"] = append(schemas["PARTS2"], "NEWCOL")
	err := r.Validate(schemas)
	if err == nil {
		t.Fatal("missing mapping should fail validation")
	}
	if !strings.Contains(err.Error(), "PARTS2.NEWCOL") {
		t.Errorf("error should name the unmapped attribute: %v", err)
	}
}

func TestRefNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"Z", "A", "M"} {
		r.Declare(n)
	}
	got := r.RefNames()
	want := []string{"A", "M", "Z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RefNames = %v", got)
		}
	}
}

func TestZeroValueRegistry(t *testing.T) {
	var r Registry
	if err := r.Declare("X"); err != nil {
		t.Fatalf("zero-value registry Declare: %v", err)
	}
	if err := r.Map("T", "A", "X"); err != nil {
		t.Fatalf("zero-value registry Map: %v", err)
	}
}
