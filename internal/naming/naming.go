// Package naming implements the paper's naming principle (§3.1).
//
// ETL optimization is blocked when attribute names are unreliable:
// homonyms (PARTS1.COST in Euros vs PARTS2.COST in Dollars) and synonyms
// (DATE vs SHIPDATE meaning the same grouper) both defeat the subset checks
// that gate activity swapping. The paper's remedy is a finite set of
// *reference attribute names* Ωn at the conceptual level plus a mapping of
// every physical attribute to exactly one reference name, under the
// principle:
//
//	(a) all synonymous attributes map to the same reference name, and
//	(b) no two different real-world entities share a reference name.
//
// Registry maintains Ωn and the physical→reference mapping, and validates
// the principle. All other packages operate purely on reference names.
package naming

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// QualifiedAttr identifies a physical attribute by recordset and column.
type QualifiedAttr struct {
	Recordset string
	Attr      string
}

// String renders the attribute as recordset.attr.
func (q QualifiedAttr) String() string { return q.Recordset + "." + q.Attr }

// Registry holds the reference attribute name set Ωn and the mapping from
// physical attributes to reference names. The zero value is empty and ready
// to use. Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	refNames map[string]bool          // Ωn
	mapping  map[QualifiedAttr]string // physical -> reference
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		refNames: make(map[string]bool),
		mapping:  make(map[QualifiedAttr]string),
	}
}

// Declare adds a reference attribute name to Ωn. Declaring an existing name
// is a no-op, so Declare is idempotent.
func (r *Registry) Declare(refName string) error {
	if refName == "" {
		return fmt.Errorf("naming: empty reference attribute name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refNames == nil {
		r.refNames = make(map[string]bool)
		r.mapping = make(map[QualifiedAttr]string)
	}
	r.refNames[refName] = true
	return nil
}

// Map binds a physical attribute to a reference name in Ωn. Rebinding an
// attribute to a different reference name is an error (the mapping must be
// a function), as is mapping to an undeclared reference name.
func (r *Registry) Map(recordset, attr, refName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refNames == nil || !r.refNames[refName] {
		return fmt.Errorf("naming: reference name %q not declared in Ωn", refName)
	}
	q := QualifiedAttr{Recordset: recordset, Attr: attr}
	if existing, ok := r.mapping[q]; ok && existing != refName {
		return fmt.Errorf("naming: %s already mapped to %q, cannot remap to %q", q, existing, refName)
	}
	r.mapping[q] = refName
	return nil
}

// Resolve returns the reference name of a physical attribute. If the
// attribute was never mapped, its own name is returned with ok=false so
// callers can decide whether unmapped attributes are acceptable.
func (r *Registry) Resolve(recordset, attr string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ref, ok := r.mapping[QualifiedAttr{Recordset: recordset, Attr: attr}]; ok {
		return ref, true
	}
	return attr, false
}

// ResolveSchema maps a physical schema of a recordset to reference names.
// Unmapped attributes pass through unchanged.
func (r *Registry) ResolveSchema(recordset string, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i], _ = r.Resolve(recordset, a)
	}
	return out
}

// RefNames returns the sorted contents of Ωn.
func (r *Registry) RefNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.refNames))
	for n := range r.refNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Homonyms returns groups of physical attributes that share a column name
// but map to different reference names — the paper's PARTS1.COST (Euros) vs
// PARTS2.COST (Dollars) situation. Each entry describes one column name with
// its divergent mappings.
func (r *Registry) Homonyms() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	byAttr := map[string]map[string][]string{} // attr -> refName -> recordsets
	for q, ref := range r.mapping {
		if byAttr[q.Attr] == nil {
			byAttr[q.Attr] = map[string][]string{}
		}
		byAttr[q.Attr][ref] = append(byAttr[q.Attr][ref], q.Recordset)
	}
	var out []string
	attrs := make([]string, 0, len(byAttr))
	for a := range byAttr {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		refs := byAttr[a]
		if len(refs) < 2 {
			continue
		}
		var parts []string
		refNames := make([]string, 0, len(refs))
		for ref := range refs {
			refNames = append(refNames, ref)
		}
		sort.Strings(refNames)
		for _, ref := range refNames {
			rs := refs[ref]
			sort.Strings(rs)
			parts = append(parts, fmt.Sprintf("%s in {%s}", ref, strings.Join(rs, ",")))
		}
		out = append(out, fmt.Sprintf("column %q maps to %s", a, strings.Join(parts, "; ")))
	}
	return out
}

// Synonyms returns, for each reference name with more than one distinct
// physical column name, a description of the synonym group.
func (r *Registry) Synonyms() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	byRef := map[string]map[string]bool{} // refName -> attr names
	for q, ref := range r.mapping {
		if byRef[ref] == nil {
			byRef[ref] = map[string]bool{}
		}
		byRef[ref][q.Attr] = true
	}
	var out []string
	refs := make([]string, 0, len(byRef))
	for ref := range byRef {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		attrs := byRef[ref]
		if len(attrs) < 2 {
			continue
		}
		names := make([]string, 0, len(attrs))
		for a := range attrs {
			names = append(names, a)
		}
		sort.Strings(names)
		out = append(out, fmt.Sprintf("reference %q has synonyms {%s}", ref, strings.Join(names, ",")))
	}
	return out
}

// Validate checks the naming principle holds for the registered mapping:
// every mapped reference name must be declared (guaranteed by Map), and the
// mapping must be total over the provided recordset schemas. It returns a
// descriptive error listing unmapped attributes, or nil.
func (r *Registry) Validate(schemas map[string][]string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var missing []string
	names := make([]string, 0, len(schemas))
	for rs := range schemas {
		names = append(names, rs)
	}
	sort.Strings(names)
	for _, rs := range names {
		for _, a := range schemas[rs] {
			if _, ok := r.mapping[QualifiedAttr{Recordset: rs, Attr: a}]; !ok {
				missing = append(missing, rs+"."+a)
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("naming: attributes not mapped to Ωn: %s", strings.Join(missing, ", "))
	}
	return nil
}
