package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 2, 8, 6})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 || s.Median != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Errorf("single Summarize = %+v", s)
	}
}

func TestSummarizeStdDev(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample standard deviation of this classic set is ≈2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological magnitudes where x−mean itself overflows;
			// measurements here are seconds, counts and percentages.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize sorted the caller's slice")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("a-much-longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All rows share the same width.
	w := len(lines[0])
	for i, l := range lines {
		if len(l) < w-1 { // trailing spaces may be trimmed on short cells
			t.Errorf("line %d narrower than header: %q", i, l)
		}
	}
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "2.5") {
		t.Errorf("table content missing:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator line")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	out := tb.String()
	if !strings.Contains(out, "3 ") && !strings.HasSuffix(out, "3\n") {
		if !strings.Contains(out, "\n3") {
			t.Errorf("integral float should render without decimals:\n%s", out)
		}
	}
	if !strings.Contains(out, "3.1") {
		t.Errorf("fractional float should render with one decimal:\n%s", out)
	}
}

func TestTableAlignRight(t *testing.T) {
	tbl := NewTable("name", "count").AlignRight(1)
	tbl.AddRow("a", 5)
	tbl.AddRow("bbbb", 12345)
	got := tbl.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), got)
	}
	// Right-aligned column: values end at the same offset as the header.
	if !strings.HasSuffix(lines[2], "    5") || !strings.HasSuffix(lines[3], "12345") {
		t.Errorf("count column not right-aligned:\n%s", got)
	}
	// Left column stays left-aligned.
	if !strings.HasPrefix(lines[2], "a   ") || !strings.HasPrefix(lines[3], "bbbb") {
		t.Errorf("name column alignment changed:\n%s", got)
	}
}
