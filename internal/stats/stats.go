// Package stats provides the small amount of statistics and table
// formatting the experiment harness needs: summaries of repeated
// measurements and aligned text tables in the style of the paper's
// Tables 1 and 2.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 measurements.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Median         float64
	StdDev         float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	// Welford's algorithm: numerically stable and overflow-free even for
	// samples near the float64 range.
	var m2 float64
	for i, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - s.Mean
		s.Mean += delta / float64(i+1)
		m2 += delta * (x - s.Mean)
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(m2 / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Table accumulates rows and renders an aligned text table.
type Table struct {
	header []string
	rows   [][]string
	right  map[int]bool
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AlignRight marks columns (0-based) as right-aligned — the natural
// layout for numeric columns, where magnitudes line up. Unmarked columns
// stay left-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	if t.right == nil {
		t.right = make(map[int]bool, len(cols))
	}
	for _, c := range cols {
		t.right[c] = true
	}
	return t
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat prints floats compactly: integers without decimals, others
// with one decimal place.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if t.right[i] {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
