package templates

import (
	"fmt"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// Scenario bundles a workflow with the source data needed to execute it:
// the graph, in-memory bindings for every source recordset, and bindings
// for surrogate-key lookup tables.
type Scenario struct {
	// Graph is the initial workflow state S0.
	Graph *workflow.Graph
	// Sources binds source recordset names to data.
	Sources map[string]data.Rows
	// Lookups binds surrogate-key lookup names to key→surrogate pairs.
	Lookups map[string]data.Rows
	// Schemas records the schema of each bound recordset.
	Schemas map[string]data.Schema
}

// Bind materializes the scenario's bindings as in-memory recordsets keyed
// by name, ready for the execution engine.
func (s *Scenario) Bind() map[string]data.Recordset {
	out := make(map[string]data.Recordset)
	for name, rows := range s.Sources {
		rs := data.NewMemoryRecordset(name, s.Schemas[name])
		rs.MustLoad(rows)
		out[name] = rs
	}
	for name, rows := range s.Lookups {
		rs := data.NewMemoryRecordset(name, s.Schemas[name])
		rs.MustLoad(rows)
		out[name] = rs
	}
	return out
}

// Fig1Workflow builds the paper's motivating workflow (Fig. 1): monthly
// Euro-denominated part costs from source S1 and daily Dollar-denominated
// costs from source S2 are cleaned, converted, aggregated, unified and
// loaded into the warehouse table PARTS.
//
// Node numbering follows the paper: 1=PARTS1, 2=PARTS2, 3=NN(ECOST),
// 4=$2€, 5=A2E, 6=γ, 7=U, 8=σ(ECOST≥θ), 9=DW.PARTS; the initial state's
// signature is ((1.3)//(2.4.5.6)).7.8.9.
//
// Reference attribute names follow the naming principle (§3.1): monthly
// Euro cost is ECOST in both branches (PARTS1.COST maps to it directly;
// in branch two the aggregation generates it), daily Dollar cost is DCOST,
// daily Euro cost is ECOST_D, and DATE keeps one reference name across the
// American-to-European reformat because dates act as groupers either way.
func Fig1Workflow() *workflow.Graph {
	g := workflow.NewGraph()

	parts1 := g.AddRecordset(&workflow.RecordsetRef{
		Name:     "PARTS1",
		Schema:   data.Schema{"PKEY", "SOURCE", "DATE", "ECOST"},
		Rows:     1000,
		IsSource: true,
	})
	parts2 := g.AddRecordset(&workflow.RecordsetRef{
		Name:     "PARTS2",
		Schema:   data.Schema{"PKEY", "SOURCE", "DATE", "DEPT", "DCOST"},
		Rows:     3000,
		IsSource: true,
	})

	nn := g.AddActivity(NotNull(0.95, "ECOST"))
	d2e := g.AddActivity(Convert("dollar2euro", "ECOST_D", "DCOST"))
	a2e := g.AddActivity(Reformat("a2edate", "DATE"))
	agg := g.AddActivity(Aggregate([]string{"PKEY", "SOURCE", "DATE"}, workflow.AggSum, "ECOST_D", "ECOST", 0.4))
	// DEPT is not a grouper, so the aggregation discards it, exactly as the
	// paper describes for activity 6.
	u := g.AddActivity(Union())
	sigma := g.AddActivity(Threshold("ECOST", 100, 0.5))

	dw := g.AddRecordset(&workflow.RecordsetRef{
		Name:     "DW.PARTS",
		Schema:   data.Schema{"PKEY", "SOURCE", "DATE", "ECOST"},
		IsTarget: true,
	})

	g.MustAddEdge(parts1, nn)
	g.MustAddEdge(parts2, d2e)
	g.MustAddEdge(d2e, a2e)
	g.MustAddEdge(a2e, agg)
	g.MustAddEdge(nn, u)
	g.MustAddEdge(agg, u)
	g.MustAddEdge(u, sigma)
	g.MustAddEdge(sigma, dw)

	if err := g.RegenerateSchemata(); err != nil {
		panic(err)
	}
	return g
}

// Fig1Scenario builds the Fig. 1 workflow together with executable source
// data: nRows1 monthly records for PARTS1 (some with NULL costs, some below
// the 100 € threshold) and nRows2 daily records for PARTS2 in Dollars with
// American-format dates, several per part and month so the aggregation has
// work to do.
func Fig1Scenario(nRows1, nRows2 int) *Scenario {
	g := Fig1Workflow()

	months := []string{"01/01/2004", "01/02/2004", "01/03/2004"} // DD/MM/YYYY
	amMonths := []string{"01/01/2004", "02/01/2004", "03/01/2004"}

	rows1 := make(data.Rows, 0, nRows1)
	for i := 0; i < nRows1; i++ {
		cost := data.NewFloat(float64(40 + (i*13)%160)) // spans the 100 € threshold
		if i%11 == 7 {
			cost = data.Null // exercises NN(ECOST)
		}
		rows1 = append(rows1, data.Record{
			data.NewInt(int64(100 + i%17)),
			data.NewInt(1),
			data.NewString(months[i%len(months)]),
			cost,
		})
	}

	rows2 := make(data.Rows, 0, nRows2)
	for i := 0; i < nRows2; i++ {
		rows2 = append(rows2, data.Record{
			data.NewInt(int64(100 + i%17)),
			data.NewInt(2),
			data.NewString(amMonths[i%len(amMonths)]), // MM/DD/YYYY
			data.NewString(fmt.Sprintf("D%d", i%4)),
			data.NewFloat(float64(20 + (i*7)%120)), // Dollars
		})
	}

	return &Scenario{
		Graph: g,
		Sources: map[string]data.Rows{
			"PARTS1": rows1,
			"PARTS2": rows2,
		},
		Lookups: map[string]data.Rows{},
		Schemas: map[string]data.Schema{
			"PARTS1": {"PKEY", "SOURCE", "DATE", "ECOST"},
			"PARTS2": {"PKEY", "SOURCE", "DATE", "DEPT", "DCOST"},
		},
	}
}

// Fig4Case identifies one of the three costings of Fig. 4.
type Fig4Case int

// The Fig. 4 cases.
const (
	// Fig4Original has a surrogate-key activity in each branch and the
	// selection in one branch (cost c1 = 2·n·log₂n + n).
	Fig4Original Fig4Case = iota
	// Fig4Distributed pushes the selection before the SK in both branches
	// (cost c2 = 2·(n + (n/2)·log₂(n/2))).
	Fig4Distributed
	// Fig4Factorized keeps the selection in both branches and factorizes
	// the SKs into one after the union (paper cost
	// c3 = 2·n + (n/2)·log₂(n/2)).
	Fig4Factorized
)

// Fig4Workflow builds the workflow of the named case with n input rows per
// branch. The selection has selectivity 0.5 and all other activities 1.0,
// matching the figure's assumptions. The source key PK is replaced by the
// surrogate SK resolved through lookup table LOOKUP.
func Fig4Workflow(c Fig4Case, n float64) *workflow.Graph {
	g := workflow.NewGraph()
	schema := data.Schema{"PK", "V"}
	r1 := g.AddRecordset(&workflow.RecordsetRef{Name: "R1", Schema: schema, Rows: n, IsSource: true})
	r2 := g.AddRecordset(&workflow.RecordsetRef{Name: "R2", Schema: schema, Rows: n, IsSource: true})
	target := data.Schema{"SK", "V"}

	sigma := func() *workflow.Activity {
		return Filter(algebra.Cmp{
			Op:    algebra.GE,
			Left:  algebra.Attr{Name: "V"},
			Right: algebra.Const{Value: data.NewInt(50)},
		}, 0.5)
	}
	sk := func() *workflow.Activity { return SurrogateKey("PK", "SK", "LOOKUP") }

	u := g.AddActivity(Union())
	dw := g.AddRecordset(&workflow.RecordsetRef{Name: "DW", Schema: target, IsTarget: true})

	switch c {
	case Fig4Original:
		sk1 := g.AddActivity(sk())
		sk2 := g.AddActivity(sk())
		s := g.AddActivity(sigma())
		g.MustAddEdge(r1, sk1)
		g.MustAddEdge(sk1, s)
		g.MustAddEdge(s, u)
		g.MustAddEdge(r2, sk2)
		g.MustAddEdge(sk2, u)
	case Fig4Distributed:
		s1 := g.AddActivity(sigma())
		s2 := g.AddActivity(sigma())
		sk1 := g.AddActivity(sk())
		sk2 := g.AddActivity(sk())
		g.MustAddEdge(r1, s1)
		g.MustAddEdge(s1, sk1)
		g.MustAddEdge(sk1, u)
		g.MustAddEdge(r2, s2)
		g.MustAddEdge(s2, sk2)
		g.MustAddEdge(sk2, u)
	case Fig4Factorized:
		s1 := g.AddActivity(sigma())
		s2 := g.AddActivity(sigma())
		skU := g.AddActivity(sk())
		g.MustAddEdge(r1, s1)
		g.MustAddEdge(s1, u)
		g.MustAddEdge(r2, s2)
		g.MustAddEdge(s2, u)
		// The union feeds the single factorized SK.
		g.MustAddEdge(u, skU)
		g.MustAddEdge(skU, dw)
		if err := g.RegenerateSchemata(); err != nil {
			panic(err)
		}
		return g
	}
	g.MustAddEdge(u, dw)
	if err := g.RegenerateSchemata(); err != nil {
		panic(err)
	}
	return g
}
