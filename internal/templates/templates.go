// Package templates provides the library of parameterized activity
// templates (§3.2, ref [18]). Each constructor instantiates an Activity
// with predefined semantics and the auxiliary schemata the optimizer needs:
// the template designer "dictates in advance which are the parameters for
// the activity (functionality schema) and which are the new or the
// non-necessary attributes" (generated and projected-out schemata); the
// instantiation here fills in the concrete reference attribute names.
package templates

import (
	"fmt"
	"strings"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// Filter instantiates a selection σ(pred) with the given selectivity
// estimate. The functionality schema is the set of attributes the predicate
// reads; filters generate and project out nothing.
func Filter(pred algebra.Expr, sel float64) *workflow.Activity {
	attrs := algebra.AttrSet(pred)
	return &workflow.Activity{
		Name: fmt.Sprintf("σ(%s)", pred),
		Sem:  workflow.Semantics{Op: workflow.OpFilter, Pred: pred, Attrs: attrs},
		Fun:  data.Schema(attrs).Clone(),
		Sel:  sel,
	}
}

// NotNull instantiates a not-null check on the given attributes; records
// with a NULL in any checked attribute are rejected.
func NotNull(sel float64, attrs ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("NN(%s)", strings.Join(attrs, ",")),
		Sem:  workflow.Semantics{Op: workflow.OpNotNull, Attrs: attrs},
		Fun:  data.Schema(attrs).Clone(),
		Sel:  sel,
	}
}

// PKCheck instantiates a primary-key violation check on the key attributes.
// For each key value exactly one record (the minimal one under a
// deterministic total order) survives, making the operation insensitive to
// input order.
func PKCheck(sel float64, keys ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("PK(%s)", strings.Join(keys, ",")),
		Sem:  workflow.Semantics{Op: workflow.OpPKCheck, Attrs: keys},
		Fun:  data.Schema(keys).Clone(),
		Sel:  sel,
	}
}

// PKCheckAgainst instantiates a lookup-based primary-key violation check:
// records whose key tuple already exists in the named lookup recordset are
// rejected. Unlike the group-based PKCheck this test is per-row and
// order-insensitive, so it commutes like a selection.
func PKCheckAgainst(lookup string, sel float64, keys ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("PK(%s@%s)", strings.Join(keys, ","), lookup),
		Sem:  workflow.Semantics{Op: workflow.OpPKCheck, Attrs: keys, Lookup: lookup},
		Fun:  data.Schema(keys).Clone(),
		Sel:  sel,
	}
}

// Distinct instantiates an exact-duplicate elimination.
func Distinct(sel float64) *workflow.Activity {
	return &workflow.Activity{
		Name: "DISTINCT",
		Sem:  workflow.Semantics{Op: workflow.OpDistinct},
		Sel:  sel,
	}
}

// ProjectOut instantiates a projection dropping the given attributes. The
// dropped attributes form both the functionality and the projected-out
// schema.
func ProjectOut(attrs ...string) *workflow.Activity {
	return &workflow.Activity{
		Name:   fmt.Sprintf("π-out(%s)", strings.Join(attrs, ",")),
		Sem:    workflow.Semantics{Op: workflow.OpProject, Attrs: attrs},
		Fun:    data.Schema(attrs).Clone(),
		PrjOut: data.Schema(attrs).Clone(),
		Sel:    1,
	}
}

// Apply instantiates a function application out := fn(args...) that keeps
// the argument attributes in the flow. The generated schema is {out}.
func Apply(fn, out string, args ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("%s(%s)->%s", fn, strings.Join(args, ","), out),
		Sem:  workflow.Semantics{Op: workflow.OpFunc, Fn: fn, FnArgs: args, OutAttr: out},
		Fun:  data.Schema(args).Clone(),
		Gen:  data.Schema{out},
		Sel:  1,
	}
}

// Convert instantiates a converting function application that *replaces*
// its argument attributes with the generated attribute — the paper's $2€
// template: euro_cost := dollar2euro(dollar_cost), with dollar_cost
// projected out. The new attribute denotes a different real-world entity
// and therefore carries a fresh reference name (§3.1).
func Convert(fn, out string, args ...string) *workflow.Activity {
	return &workflow.Activity{
		Name:   fmt.Sprintf("%s(%s)=>%s", fn, strings.Join(args, ","), out),
		Sem:    workflow.Semantics{Op: workflow.OpFunc, Fn: fn, FnArgs: args, OutAttr: out, DropArgs: true},
		Fun:    data.Schema(args).Clone(),
		Gen:    data.Schema{out},
		PrjOut: data.Schema(args).Clone(),
		Sel:    1,
	}
}

// Reformat instantiates an in-place function application attr :=
// fn(attr) — the paper's A2E template: the transformed attribute keeps its
// reference name because it denotes the same real-world entity (§3.1), so
// the generated and projected-out schemata are empty and downstream
// activities keyed on the attribute may swap across it.
func Reformat(fn, attr string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("%s(%s)", fn, attr),
		Sem:  workflow.Semantics{Op: workflow.OpFunc, Fn: fn, FnArgs: []string{attr}, OutAttr: attr},
		Fun:  data.Schema{attr},
		Sel:  1,
	}
}

// Aggregate instantiates a grouping aggregation γ[groupers; agg(attr)->out]
// with selectivity sel (the grouping ratio: expected groups per input row).
// The aggregated result is a new real-world entity (a monthly sum is not a
// daily cost), so out receives a fresh reference name; every non-grouper
// input attribute is projected out. This is exactly what forbids pushing
// the paper's σ(€COST) below the aggregation (condition 3) while allowing
// the aggregation to swap with the in-place A2E reformat (Fig. 2).
func Aggregate(groupers []string, agg workflow.AggKind, attr, out string, sel float64) *workflow.Activity {
	fun := data.Schema(groupers).Clone()
	if agg != workflow.AggCount && !fun.Has(attr) {
		fun = append(fun, attr)
	}
	return &workflow.Activity{
		Name: fmt.Sprintf("γ[%s;%s(%s)->%s]", strings.Join(groupers, ","), agg, attr, out),
		Sem: workflow.Semantics{
			Op:      workflow.OpAggregate,
			Attrs:   groupers,
			Agg:     agg,
			AggAttr: attr,
			OutAttr: out,
		},
		Fun: fun,
		Gen: data.Schema{out},
		Sel: sel,
	}
}

// SurrogateKey instantiates a surrogate-key assignment: the production key
// attribute is replaced by the surrogate attribute, resolved through the
// named lookup recordset (schema: key, surrogate). The lookup table can be
// cached, which is the paper's motivation for factorizing SK activities.
func SurrogateKey(keyAttr, skAttr, lookup string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("SK(%s=>%s)", keyAttr, skAttr),
		Sem: workflow.Semantics{
			Op:      workflow.OpSurrogateKey,
			KeyAttr: keyAttr,
			OutAttr: skAttr,
			Lookup:  lookup,
		},
		Fun:    data.Schema{keyAttr},
		Gen:    data.Schema{skAttr},
		PrjOut: data.Schema{keyAttr},
		Sel:    1,
	}
}

// Union instantiates a bag union of two flows with identical schemata.
func Union() *workflow.Activity {
	return &workflow.Activity{
		Name: "U",
		Sem:  workflow.Semantics{Op: workflow.OpUnion},
		Sel:  1,
	}
}

// Join instantiates an equi-join on the key attributes with the given
// match selectivity (expected output rows per input-row pair).
func Join(sel float64, keys ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("⋈(%s)", strings.Join(keys, ",")),
		Sem:  workflow.Semantics{Op: workflow.OpJoin, Attrs: keys},
		Fun:  data.Schema(keys).Clone(),
		Sel:  sel,
	}
}

// Diff instantiates a difference (anti-semi-join) on the key attributes:
// left records whose key appears on the right are rejected. sel estimates
// the surviving fraction of the left input.
func Diff(sel float64, keys ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("Δ(%s)", strings.Join(keys, ",")),
		Sem:  workflow.Semantics{Op: workflow.OpDiff, Attrs: keys},
		Fun:  data.Schema(keys).Clone(),
		Sel:  sel,
	}
}

// Intersect instantiates an intersection (semi-join) on the key attributes:
// left records whose key appears on the right survive.
func Intersect(sel float64, keys ...string) *workflow.Activity {
	return &workflow.Activity{
		Name: fmt.Sprintf("∩(%s)", strings.Join(keys, ",")),
		Sem:  workflow.Semantics{Op: workflow.OpIntersect, Attrs: keys},
		Fun:  data.Schema(keys).Clone(),
		Sel:  sel,
	}
}

// Threshold is a convenience for the recurring σ(attr >= limit) selection
// (the paper's σ(€COST) check that only costs above a threshold reach the
// warehouse).
func Threshold(attr string, limit float64, sel float64) *workflow.Activity {
	return Filter(algebra.Cmp{
		Op:    algebra.GE,
		Left:  algebra.Attr{Name: attr},
		Right: algebra.Const{Value: data.NewFloat(limit)},
	}, sel)
}
