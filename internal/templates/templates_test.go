package templates

import (
	"context"
	"testing"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/workflow"
)

func TestFilterTemplateSchemata(t *testing.T) {
	pred := algebra.Logic{Op: algebra.And,
		Left:  algebra.Cmp{Op: algebra.GE, Left: algebra.Attr{Name: "A"}, Right: algebra.Const{Value: data.NewInt(1)}},
		Right: algebra.Cmp{Op: algebra.LT, Left: algebra.Attr{Name: "B"}, Right: algebra.Const{Value: data.NewInt(9)}},
	}
	a := Filter(pred, 0.4)
	if !a.Fun.SameSet(data.Schema{"A", "B"}) {
		t.Errorf("filter Fun = %v", a.Fun)
	}
	if len(a.Gen) != 0 || len(a.PrjOut) != 0 {
		t.Error("filters generate and project out nothing (§3.2)")
	}
	if a.Sel != 0.4 {
		t.Errorf("Sel = %v", a.Sel)
	}
}

func TestConvertTemplateSchemata(t *testing.T) {
	a := Convert("dollar2euro", "ECOST", "DCOST")
	if !a.Fun.Equal(data.Schema{"DCOST"}) ||
		!a.Gen.Equal(data.Schema{"ECOST"}) ||
		!a.PrjOut.Equal(data.Schema{"DCOST"}) {
		t.Errorf("convert schemata: fun=%v gen=%v prj=%v", a.Fun, a.Gen, a.PrjOut)
	}
	if a.InPlace() {
		t.Error("converting function must not be in-place")
	}
}

func TestReformatTemplateSchemata(t *testing.T) {
	a := Reformat("a2edate", "DATE")
	if !a.InPlace() {
		t.Error("reformat must be in-place")
	}
	if len(a.Gen) != 0 || len(a.PrjOut) != 0 {
		t.Error("in-place reformat generates and projects out nothing")
	}
	if !a.Fun.Equal(data.Schema{"DATE"}) {
		t.Errorf("Fun = %v", a.Fun)
	}
}

func TestAggregateTemplateSchemata(t *testing.T) {
	a := Aggregate([]string{"K", "D"}, workflow.AggSum, "V", "TOTV", 0.3)
	if !a.Fun.SameSet(data.Schema{"K", "D", "V"}) {
		t.Errorf("aggregate Fun = %v", a.Fun)
	}
	if !a.Gen.Equal(data.Schema{"TOTV"}) {
		t.Errorf("aggregate Gen = %v", a.Gen)
	}
	// Count aggregations need no value attribute.
	c := Aggregate([]string{"K"}, workflow.AggCount, "", "N", 0.3)
	if !c.Fun.Equal(data.Schema{"K"}) {
		t.Errorf("count Fun = %v", c.Fun)
	}
}

func TestSurrogateKeyTemplateSchemata(t *testing.T) {
	a := SurrogateKey("K", "SK", "LKP")
	if !a.Fun.Equal(data.Schema{"K"}) || !a.Gen.Equal(data.Schema{"SK"}) || !a.PrjOut.Equal(data.Schema{"K"}) {
		t.Errorf("sk schemata: fun=%v gen=%v prj=%v", a.Fun, a.Gen, a.PrjOut)
	}
	if a.Sem.Lookup != "LKP" {
		t.Errorf("Lookup = %q", a.Sem.Lookup)
	}
}

func TestPKCheckVariants(t *testing.T) {
	grp := PKCheck(0.8, "K")
	if grp.Sem.Lookup != "" {
		t.Error("PKCheck should be group-based")
	}
	lkp := PKCheckAgainst("DWK", 0.8, "K")
	if lkp.Sem.Lookup != "DWK" {
		t.Error("PKCheckAgainst should carry its lookup")
	}
	if grp.SameOperation(lkp) {
		t.Error("group-based and lookup-based checks must differ semantically")
	}
}

func TestFig1WorkflowShape(t *testing.T) {
	g := Fig1Workflow()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if got := g.Signature(); got != "((1.3)//(2.4.5.6)).7.8.9" {
		t.Errorf("Fig. 1 signature = %q", got)
	}
	groups := g.LocalGroups()
	if len(groups) != 3 || len(groups[0]) != 1 || len(groups[1]) != 3 || len(groups[2]) != 1 {
		t.Errorf("Fig. 1 local groups = %v, want {3},{4,5,6},{8}", groups)
	}
}

func TestFig1ScenarioExecutes(t *testing.T) {
	sc := Fig1Scenario(110, 330)
	res, err := engine.New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Targets["DW.PARTS"]
	if len(rows) == 0 {
		t.Fatal("no rows loaded into the warehouse")
	}
	// Every loaded cost is in Euros and above the threshold; every date is
	// European format DD/MM/YYYY (the A2E output on branch 2, native on
	// branch 1).
	schema := data.Schema{"PKEY", "SOURCE", "DATE", "ECOST"}
	costPos := schema.Index("ECOST")
	datePos := schema.Index("DATE")
	for _, r := range rows {
		if r[costPos].Float() < 100 {
			t.Errorf("below-threshold cost loaded: %v", r)
		}
		d := r[datePos].Str()
		if len(d) != 10 || d[2] != '/' || d[5] != '/' {
			t.Errorf("malformed date %q", d)
		}
	}
	// Both sources contribute.
	srcs := map[int64]bool{}
	srcPos := schema.Index("SOURCE")
	for _, r := range rows {
		srcs[r[srcPos].Int()] = true
	}
	if !srcs[1] || !srcs[2] {
		t.Errorf("expected both sources in the warehouse, got %v", srcs)
	}
}

func TestFig4WorkflowsValid(t *testing.T) {
	for _, c := range []Fig4Case{Fig4Original, Fig4Distributed, Fig4Factorized} {
		g := Fig4Workflow(c, 8)
		if err := g.Validate(); err != nil {
			t.Errorf("case %v: %v", c, err)
		}
		if err := g.CheckWellFormed(); err != nil {
			t.Errorf("case %v: %v", c, err)
		}
	}
}

func TestScenarioBind(t *testing.T) {
	sc := Fig1Scenario(10, 20)
	b := sc.Bind()
	if len(b) != 2 {
		t.Fatalf("bindings = %v", b)
	}
	rows, err := b["PARTS1"].Scan()
	if err != nil || len(rows) != 10 {
		t.Errorf("PARTS1 binding: %d rows, %v", len(rows), err)
	}
}

func TestThresholdTemplate(t *testing.T) {
	a := Threshold("ECOST", 100, 0.5)
	if a.Sem.Op != workflow.OpFilter {
		t.Fatal("threshold should be a filter")
	}
	if got := a.Sem.Pred.String(); got != "(ECOST>=100)" {
		t.Errorf("predicate = %q", got)
	}
}
