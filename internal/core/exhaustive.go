package core

import (
	"container/heap"
	"time"

	"etlopt/internal/workflow"
)

// stateHeap is a min-heap of states ordered by cost, giving ES best-first
// exploration: the cheapest known state is expanded next. Exploration
// order does not affect completeness — given enough budget every reachable
// state is generated exactly once — but it makes the anytime behaviour of
// a budget-capped ES far better, mirroring how the paper's 40-hour ES runs
// still had useful "best so far" states to report when stopped.
type stateHeap []*state

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].costing.Total < h[j].costing.Total }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Exhaustive runs the ES algorithm (§4.2): it generates every state
// reachable by applicable transitions, keeping a visited set keyed by
// state signature so no state is generated — or costed — twice. The
// search space is finite, so ES terminates and returns the optimal state;
// in practice the space grows exponentially with workflow size, so the
// state budget and timeout in Options play the role of the paper's
// 40-hour cap, and Result.Terminated reports whether the space was closed
// (the paper's Table 2 annotates non-terminating ES runs the same way).
func Exhaustive(g0 *workflow.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	s := newSearch(opts)

	s0, err := s.initialState(g0)
	if err != nil {
		return nil, err
	}
	best := s0
	queue := &stateHeap{s0}
	heap.Init(queue)
	terminated := true

	for queue.Len() > 0 {
		if !s.budgetLeft() {
			terminated = false
			break
		}
		cur := heap.Pop(queue).(*state)
		for _, res := range expansions(cur) {
			if !s.budgetLeft() {
				terminated = false
				break
			}
			sig := res.Graph.Signature()
			if !s.admit(sig) {
				continue
			}
			st, err := s.makeState(cur, res)
			if err != nil {
				return nil, err
			}
			if st.costing.Total < best.costing.Total {
				best = st
			}
			heap.Push(queue, st)
		}
	}
	return finishResult("ES", s0, best, s, start, terminated)
}
