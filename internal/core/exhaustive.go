package core

import (
	"context"
	"time"

	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// stateHeap is a typed min-heap of states ordered by cost, giving ES
// best-first exploration: the cheapest known state is expanded next.
// Exploration order does not affect completeness — given enough budget
// every reachable state is generated exactly once — but it makes the
// anytime behaviour of a budget-capped ES far better, mirroring how the
// paper's 40-hour ES runs still had useful "best so far" states to report
// when stopped. The sift routines reproduce container/heap's element
// movement exactly, so pop order (and therefore budget-capped results)
// matches the previous interface{}-based implementation bit for bit.
type stateHeap []*state

func (h stateHeap) Len() int { return len(h) }

func (h stateHeap) less(i, j int) bool { return h[i].costing.Total < h[j].costing.Total }

func (h *stateHeap) push(st *state) {
	*h = append(*h, st)
	h.up(len(*h) - 1)
}

func (h *stateHeap) pop() *state {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	st := old[n]
	old[n] = nil
	*h = old[:n]
	return st
}

func (h *stateHeap) init() {
	n := len(*h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h stateHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h stateHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// candidate is a speculatively evaluated successor: its signature, and —
// when the state was not already known to the visited set — its costed
// state. The sequential reducer decides admission; a candidate whose
// signature loses the dedup race is simply discarded.
type candidate struct {
	sig string
	st  *state
	err error
}

// precost evaluates the signatures and costings of every successor in the
// worker pool. It returns nil when the pool would not actually run
// concurrently, signalling the caller to use the lazy sequential path
// (which skips costing duplicate states entirely — exactly the previous
// single-threaded behaviour). Costing is a pure function of (parent,
// successor graph), so speculative evaluation cannot change the result,
// only precompute it.
func (s *search) precost(cur *state, exps []*transitions.Result) []candidate {
	if !s.pool.parallel(len(exps)) {
		return nil
	}
	cands := make([]candidate, len(exps))
	s.pool.run(len(exps), func(i int) {
		res := exps[i]
		sig := s.signatureOf(cur, res)
		cands[i].sig = sig
		// States the search already admitted will be rejected by the
		// reducer without needing a costing; skip the work. A racing miss
		// here (the reducer admitting a sibling with the same signature)
		// only wastes one evaluation.
		if !s.opts.DisableDedup && s.visited.Contains(sig) {
			return
		}
		cands[i].st, cands[i].err = s.makeState(cur, res, sig)
	})
	return cands
}

// Exhaustive runs the ES algorithm (§4.2): it generates every state
// reachable by applicable transitions, keeping a visited set keyed by
// state signature so no state is generated — or costed — twice. The
// search space is finite, so ES terminates and returns the optimal state;
// in practice the space grows exponentially with workflow size, so the
// state budget and timeout in Options play the role of the paper's
// 40-hour cap, and Result.Terminated reports whether the space was closed
// (the paper's Table 2 annotates non-terminating ES runs the same way).
//
// With Options.Workers > 1, the successors of each expanded state are
// signed and costed concurrently in a worker pool; admission against the
// sharded visited set, budget accounting and the best-state reduction
// (lowest cost, ties broken by signature) remain sequential in expansion
// order, so the result is identical for every worker count.
//
// A cancelled ctx aborts the search at the next expansion boundary and
// returns ctx.Err(); a context deadline is the supported way to bound
// wall-clock time.
func Exhaustive(ctx context.Context, g0 *workflow.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	s := newSearch(ctx, opts)
	defer s.close()
	span := s.m.reg.StartSpan("search/ES")
	defer span.End()
	s.startProgress("ES")
	s.m.runEvent("start", "ES")
	defer s.m.runEvent("end", "ES")

	s0, err := s.initialState(g0)
	if err != nil {
		return nil, err
	}
	best := s0
	queue := &stateHeap{s0}
	queue.init()
	terminated := true

	for queue.Len() > 0 {
		if !s.budgetLeft() {
			terminated = false
			break
		}
		cur := queue.pop()
		s.m.frontier.Set(float64(queue.Len()))
		exps := expansions(cur)
		cands := s.precost(cur, exps)
		for i, res := range exps {
			if !s.budgetLeft() {
				terminated = false
				break
			}
			s.m.attempt(res.Applied.Op)
			var sig string
			if cands != nil {
				sig = cands[i].sig
			} else {
				sig = s.signatureOf(cur, res)
			}
			if !s.admit(sig) {
				s.m.prune(res.Applied.Op)
				continue
			}
			s.m.accept(res.Applied.Op)
			var st *state
			if cands != nil && (cands[i].st != nil || cands[i].err != nil) {
				st, err = cands[i].st, cands[i].err
			} else {
				st, err = s.makeState(cur, res, sig)
			}
			if err != nil {
				return nil, err
			}
			if st.costing.Total < best.costing.Total ||
				(st.costing.Total == best.costing.Total && st.sig < best.sig) {
				best = st
				s.m.bestCost.Set(best.costing.Total)
				s.m.best(res.Applied.Op, best.costing.Total)
			}
			queue.push(st)
		}
	}
	if err := s.aborted(); err != nil {
		return nil, err
	}
	return finishResult("ES", s0, best, s, start, terminated)
}
