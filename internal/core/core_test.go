package core

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/equiv"
	"etlopt/internal/generator"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func TestFig1Fig2Optimization(t *testing.T) {
	// The motivating example: optimizing Fig. 1 must reproduce the shape
	// of Fig. 2 — the threshold selection distributed into both branches
	// (before NN in branch 1, after the aggregation in branch 2) and the
	// aggregation swapped before the A2E reformat.
	g := templates.Fig1Workflow()
	res, err := Exhaustive(context.Background(), g, Options{MaxStates: 20_000, IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("ES should close Fig. 1's state space")
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}
	best := res.Best

	// Two filter instances (the distributed σ).
	var filters, aggs, a2es []workflow.NodeID
	for _, id := range best.Activities() {
		switch a := best.Node(id).Act; {
		case a.Sem.Op == workflow.OpFilter:
			filters = append(filters, id)
		case a.Sem.Op == workflow.OpAggregate:
			aggs = append(aggs, id)
		case a.Sem.Op == workflow.OpFunc && a.InPlace():
			a2es = append(a2es, id)
		}
	}
	if len(filters) != 2 {
		t.Errorf("want σ distributed into 2 branches, got %d filters", len(filters))
	}
	if len(aggs) != 1 || len(a2es) != 1 {
		t.Fatalf("unexpected shape: %d aggs, %d a2es", len(aggs), len(a2es))
	}
	// γ must now precede A2E (the Fig. 2 swap).
	order, _ := best.TopoSort()
	pos := map[workflow.NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[aggs[0]] >= pos[a2es[0]] {
		t.Error("aggregation should have swapped before the A2E reformat")
	}
	// In branch 2 the filter must sit above the aggregation (it cannot be
	// pushed below, per the introduction's discussion).
	for _, f := range filters {
		// Walk providers: if this filter is in branch 2 (below γ) the
		// aggregation must appear before it.
		cur := f
		sawAgg := false
		for {
			preds := best.Providers(cur)
			if len(preds) == 0 {
				break
			}
			cur = preds[0]
			if cur == aggs[0] {
				sawAgg = true
				break
			}
			if best.Node(cur).Kind == workflow.KindRecordset {
				break
			}
		}
		_ = sawAgg // either branch placement is legal; the illegal one is rejected by construction
	}

	// HS and HS-Greedy find the same optimum on this small space.
	hs, err := Heuristic(context.Background(), g, Options{IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if hs.BestCost != res.BestCost {
		t.Errorf("HS cost %v != ES optimum %v", hs.BestCost, res.BestCost)
	}
	hsg, err := HSGreedy(context.Background(), g, Options{IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if hsg.BestCost > hs.BestCost {
		t.Logf("HS-Greedy cost %v vs HS %v (greedy may be worse)", hsg.BestCost, hs.BestCost)
	}

	// The optimized workflow is empirically equivalent.
	sc := templates.Fig1Scenario(150, 450)
	ok, diff, err := equiv.VerifyEmpirical(sc.Graph, best, sc.Bind())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("optimized Fig. 1 is not equivalent: %s", diff)
	}
}

func TestExhaustiveFindsOptimumTinySpace(t *testing.T) {
	// Two independent filters with different selectivities: the optimum
	// puts the more selective one first. The space has exactly 2 states.
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"A", "B"}, Rows: 1000, IsSource: true})
	loose := g.AddActivity(templates.Threshold("A", 1, 0.9))
	tight := g.AddActivity(templates.Threshold("B", 1, 0.1))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"A", "B"}, IsTarget: true})
	g.MustAddEdge(src, loose)
	g.MustAddEdge(loose, tight)
	g.MustAddEdge(tight, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	res, err := Exhaustive(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("2-state space must close")
	}
	if res.Visited != 1 {
		t.Errorf("Visited = %d, want 1 new state", res.Visited)
	}
	// Optimal: tight first → cost 1000 + 100 = 1100 (initial: 1000+900).
	if res.BestCost != 1100 {
		t.Errorf("BestCost = %v, want 1100", res.BestCost)
	}
	order, _ := res.Best.TopoSort()
	pos := map[workflow.NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[tight] >= pos[loose] {
		t.Error("optimum should run the selective filter first")
	}
}

func TestSearchBudgetRespected(t *testing.T) {
	cfg := generator.CategoryConfig(generator.Medium, 99)
	sc, err := generator.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exhaustive(context.Background(), sc.Graph, Options{MaxStates: 500, IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Error("medium workflow should not close within 500 states")
	}
	if res.Generated > 500 {
		t.Errorf("Generated = %d exceeds budget", res.Generated)
	}
	if res.BestCost > res.InitialCost {
		t.Error("search must never return a state worse than S0")
	}
}

func TestHeuristicNeverWorseThanInitial(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 100+seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []func(context.Context, *workflow.Graph, Options) (*Result, error){Heuristic, HSGreedy} {
			res, err := algo(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 5000})
			if err != nil {
				t.Fatal(err)
			}
			if res.BestCost > res.InitialCost {
				t.Errorf("seed %d: %s returned worse state (%v > %v)",
					seed, res.Algorithm, res.BestCost, res.InitialCost)
			}
			if res.Best == nil {
				t.Fatal("nil best graph")
			}
			if err := res.Best.Validate(); err != nil {
				t.Errorf("best graph invalid: %v", err)
			}
			// The post-processing SPL left no packages behind.
			for _, id := range res.Best.Activities() {
				if res.Best.Node(id).Act.Sem.Op == workflow.OpMerged {
					t.Error("result contains unsplit merged activity")
				}
			}
		}
	}
}

func TestHeuristicResultsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 200+seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 5000})
		if err != nil {
			t.Fatal(err)
		}
		ok, diff, err := equiv.VerifyEmpirical(sc.Graph, res.Best, sc.Bind())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed %d: HS result not equivalent: %s", seed, diff)
		}
		// And symbolically.
		ok, why, err := equiv.Equivalent(sc.Graph, res.Best)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed %d: HS result not symbolically equivalent: %s", seed, why)
		}
	}
}

func TestHSBeatsOrMatchesGreedy(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 300+seed))
		if err != nil {
			t.Fatal(err)
		}
		hs, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 8000})
		if err != nil {
			t.Fatal(err)
		}
		hsg, err := HSGreedy(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 8000})
		if err != nil {
			t.Fatal(err)
		}
		if hs.BestCost > hsg.BestCost {
			t.Errorf("seed %d: HS (%v) worse than HS-Greedy (%v)", seed, hs.BestCost, hsg.BestCost)
		}
		if hsg.Visited > hs.Visited {
			t.Errorf("seed %d: greedy visited more states (%d) than HS (%d)",
				seed, hsg.Visited, hs.Visited)
		}
	}
}

func TestDeterminism(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 42))
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*Result, *Result) {
		hs, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		hsg, err := HSGreedy(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return hs, hsg
	}
	hs1, hsg1 := run()
	hs2, hsg2 := run()
	if hs1.BestCost != hs2.BestCost || hs1.Visited != hs2.Visited {
		t.Errorf("HS nondeterministic: (%v,%d) vs (%v,%d)", hs1.BestCost, hs1.Visited, hs2.BestCost, hs2.Visited)
	}
	if hsg1.BestCost != hsg2.BestCost || hsg1.Visited != hsg2.Visited {
		t.Errorf("HS-Greedy nondeterministic: (%v,%d) vs (%v,%d)", hsg1.BestCost, hsg1.Visited, hsg2.BestCost, hsg2.Visited)
	}
	if hs1.Best.Signature() != hs2.Best.Signature() {
		t.Error("HS best-state signatures differ across runs")
	}
}

func TestMergeConstraints(t *testing.T) {
	// Heuristic 3: merged activities move as one unit and are split back in
	// post-processing.
	g := templates.Fig1Workflow()
	// Merge $2€ (4) and A2E (5): the pair becomes unbreakable, so the
	// Fig. 2 swap of γ before A2E alone becomes impossible — γ either
	// stays or jumps the whole package.
	var d2e, a2e workflow.NodeID
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op == workflow.OpFunc && a.Sem.DropArgs {
			d2e = id
		}
		if a.Sem.Op == workflow.OpFunc && a.InPlace() {
			a2e = id
		}
	}
	res, err := Heuristic(context.Background(), g, Options{
		IncrementalCost:  true,
		MergeConstraints: [][2]workflow.NodeID{{d2e, a2e}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Results remain valid and equivalent.
	sc := templates.Fig1Scenario(100, 300)
	ok, diff, err := equiv.VerifyEmpirical(sc.Graph, res.Best, sc.Bind())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("merge-constrained HS result not equivalent: %s", diff)
	}
	for _, id := range res.Best.Activities() {
		if res.Best.Node(id).Act.Sem.Op == workflow.OpMerged {
			t.Error("post-processing failed to split the constrained merge")
		}
	}
}

func TestInvalidInitialState(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	dangling := g.AddActivity(templates.NotNull(0.9, "A"))
	g.MustAddEdge(src, dangling)
	if _, err := Heuristic(context.Background(), g, Options{}); err == nil {
		t.Error("invalid initial state should be rejected")
	}
	if _, err := Exhaustive(context.Background(), g, Options{}); err == nil {
		t.Error("invalid initial state should be rejected by ES too")
	}
}

func TestIncrementalCostMatchesFull(t *testing.T) {
	// The semi-incremental costing is a pure optimization: with and
	// without it, every algorithm must land on the same cost.
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 77))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 4000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: false, MaxStates: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Visited != b.Visited {
		t.Errorf("incremental (%v,%d) vs full (%v,%d) diverge",
			a.BestCost, a.Visited, b.BestCost, b.Visited)
	}
}

func TestDisableDedupExploresMore(t *testing.T) {
	g := templates.Fig1Workflow()
	with, err := Exhaustive(context.Background(), g, Options{MaxStates: 3000, IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Exhaustive(context.Background(), g, Options{MaxStates: 3000, IncrementalCost: true, DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Terminated && without.Terminated && without.Generated <= with.Generated {
		t.Errorf("dedup-less ES should generate more states: %d vs %d",
			without.Generated, with.Generated)
	}
	// Same optimum either way.
	if with.Terminated && without.Terminated && with.BestCost != without.BestCost {
		t.Errorf("dedup changed the optimum: %v vs %v", with.BestCost, without.BestCost)
	}
}

func TestDisablePhaseI(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 88))
	if err != nil {
		t.Fatal(err)
	}
	// Phase I is a heuristic, not a guarantee: re-ordering local groups
	// before Phase II can occasionally block a shift that factorization
	// needed, so the assertion here is about validity, not dominance —
	// BenchmarkAblationPhaseI measures the quality/time tradeoff the
	// paper discusses ("the existence of the first phase leads to a much
	// better solution without consuming too many resources").
	with, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Heuristic(context.Background(), sc.Graph, Options{IncrementalCost: true, MaxStates: 8_000, DisablePhaseI: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"with Phase I": with, "without Phase I": without} {
		if r.BestCost > r.InitialCost {
			t.Errorf("%s: worse than initial", name)
		}
		if err := r.Best.Validate(); err != nil {
			t.Errorf("%s: invalid result: %v", name, err)
		}
	}
	t.Logf("Phase I ablation: with=%.0f (%.1f%%), without=%.0f (%.1f%%)",
		with.BestCost, with.Improvement(), without.BestCost, without.Improvement())
}

func TestTraceRecordsPath(t *testing.T) {
	g := templates.Fig1Workflow()
	res, err := Exhaustive(context.Background(), g, Options{MaxStates: 20000, IncrementalCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("optimal state should record its transition path")
	}
	for _, step := range res.Trace {
		if !strings.HasPrefix(step, "SWA(") && !strings.HasPrefix(step, "FAC(") &&
			!strings.HasPrefix(step, "DIS(") && !strings.HasPrefix(step, "MER(") {
			t.Errorf("unexpected trace step %q", step)
		}
	}
}

func TestImprovementAccessor(t *testing.T) {
	r := &Result{InitialCost: 200, BestCost: 150}
	if got := r.Improvement(); got != 25 {
		t.Errorf("Improvement = %v", got)
	}
}
