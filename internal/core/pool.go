package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// pool fans independent work items out over a bounded number of
// goroutines. It is the execution substrate of the parallel search: ES
// costs the successors of an expanded state through it, and HS optimizes
// disjoint local groups through it. A pool is cheap — it holds no
// persistent goroutines; each run spawns at most min(workers, n) of them
// and waits for all to finish.
//
// Determinism contract: fn(i) must write only to the i-th slot of a
// pre-sized result slice (plus thread-safe shared structures such as the
// visitedSet). The scheduling order of items is unspecified, so any
// order-sensitive reduction must happen after run returns, by index.
type pool struct {
	workers int
	// busy, when non-nil, receives each worker's total time inside one run
	// call — the per-worker utilization feed of Options.Metrics. The hook
	// must be safe for concurrent use; nil (the default) keeps run free of
	// clock reads.
	busy func(worker int, d time.Duration)
	// wrap, when non-nil, wraps each worker's item loop — the hook behind
	// Options.PprofLabels, which tags worker goroutines for the CPU
	// profiler. The wrapper must call fn exactly once, synchronously.
	wrap func(worker int, fn func())
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{workers: workers}
}

// parallel reports whether the pool would actually run n items
// concurrently (more than one worker and more than one item).
func (p *pool) parallel(n int) bool {
	return p.workers > 1 && n > 1
}

// run executes fn(0) … fn(n-1), concurrently when the pool has more than
// one worker. Items are claimed from a shared atomic counter so uneven
// item costs balance across workers.
func (p *pool) run(n int, fn func(i int)) {
	if !p.parallel(n) {
		if p.busy != nil {
			start := time.Now()
			defer func() { p.busy(0, time.Since(start)) }()
		}
		p.wrapped(0, func() {
			for i := 0; i < n; i++ {
				fn(i)
			}
		})
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			if p.busy != nil {
				start := time.Now()
				defer func() { p.busy(worker, time.Since(start)) }()
			}
			p.wrapped(worker, func() {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			})
		}(k)
	}
	wg.Wait()
}

// wrapped runs body under the pool's wrap hook, or directly without one.
func (p *pool) wrapped(worker int, body func()) {
	if p.wrap == nil {
		body()
		return
	}
	p.wrap(worker, body)
}
