// Package core implements the paper's primary contribution: the
// optimization of ETL workflows as state-space search (§2.2, §4). Each
// state is a workflow graph; transitions (SWA, FAC, DIS, MER, SPL)
// generate equivalent states; a cost model discriminates them; and three
// algorithms explore the space:
//
//   - Exhaustive Search (ES) generates every reachable state and returns
//     the global optimum, subject to a visited-state / time budget (the
//     paper capped ES at 40 hours; most medium and large workflows never
//     terminated);
//   - Heuristic Search (HS, Fig. 7) prunes the space with four heuristics:
//     factorize only homologous activities, distribute only distributable
//     ones, merge constrained activities up front, and divide the state
//     into local groups optimized independently;
//   - HS-Greedy replaces HS's exhaustive local-group exploration with
//     hill-climbing, trading solution quality for speed.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"etlopt/internal/cost"
	"etlopt/internal/obs"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// Options configures an optimization run.
type Options struct {
	// Model prices states; defaults to cost.RowModel.
	Model cost.Model
	// MaxStates bounds the number of generated (visited) states; 0 means
	// the package default (200 000). ES reports Terminated=false when the
	// budget is exhausted before the space closes.
	MaxStates int
	// GroupCap bounds the states generated while exhaustively exploring
	// one local group's orderings in HS Phases I and IV (0 means the
	// default of 400). Groups short enough to close within the cap are
	// explored completely; larger groups are explored breadth-first until
	// the cap. HS-Greedy ignores the cap (hill-climbing converges).
	GroupCap int
	// Workers sets the number of goroutines used to cost successor states
	// (ES) and to optimize independent local groups (HS). 0 means
	// runtime.GOMAXPROCS(0); 1 runs the search fully sequentially. The
	// result — Best signature, BestCost, Visited, Generated — is identical
	// for every value: parallel workers only precompute pure state
	// evaluations, while admission, budgeting and best-state reduction
	// stay on one goroutine in a fixed order (lowest cost first, ties
	// broken by signature).
	Workers int
	// MergeConstraints lists activity pairs to merge during HS
	// pre-processing (Heuristic 3), by node ID in the initial state. The
	// merges are split again after the search.
	MergeConstraints [][2]workflow.NodeID
	// IncrementalCost enables the semi-incremental cost evaluation of
	// §4.1; full recomputation is used when false. Results are identical;
	// only speed differs.
	IncrementalCost bool
	// DisableIncrementalExpand turns off the incremental successor
	// machinery — signature splicing and interning, the per-activity cost
	// memo and the transposition cache — and additionally pays a flat
	// Graph.Clone per admitted successor, emulating the pre-COW full-clone
	// expansion pipeline. Results are identical; it exists as the baseline
	// of BenchmarkIncrementalExpand and `etlbench -expand`.
	DisableIncrementalExpand bool
	// ExpandCacheSize bounds the transposition cache that memoizes
	// successor costings across the search's workers: 0 means the default
	// (16384 entries), negative disables the cache. The cache never
	// changes results — cached costings are bit-identical to re-evaluated
	// ones — so the size only trades memory for hit rate.
	ExpandCacheSize int
	// DisableDedup turns off signature-based duplicate-state detection
	// (ablation A1). ES without dedup re-explores states and is
	// dramatically slower.
	DisableDedup bool
	// DisablePhaseI skips HS Phase I (ablation A3; the paper argues the
	// phase pays for itself despite Phase IV's repetition).
	DisablePhaseI bool
	// Metrics, when non-nil, receives the search's observability series:
	// states generated/visited/deduped, per-transition-kind attempt and
	// accept counts, frontier size, per-worker pool utilization and the
	// best cost as a live gauge (see internal/obs and DESIGN.md §6).
	// Collection is write-only — instruments are never read back — so
	// results are bit-identical with metrics on or off; nil (the default)
	// disables collection at the cost of one nil check per event.
	Metrics *obs.Registry
	// Progress, when non-nil, receives a periodic one-line progress report
	// during the search (states/sec, frontier size, current best cost,
	// ETA against the state budget) — the -progress flag of the CLIs.
	// Requires no Metrics registry: one is created internally if needed.
	Progress io.Writer
	// ProgressInterval is the period of the Progress line; 0 means one
	// second.
	ProgressInterval time.Duration
	// Journal, when non-nil, receives the search's flight-recorder event
	// stream (see obs.Journal): run and phase boundaries, every transition
	// attempt/accept/prune, new-best transitions with their cost, and
	// expansion-cache hits and misses. Emission is non-blocking and
	// write-only — a saturated or failing journal drops events (counted)
	// rather than perturbing the search — so results are bit-identical with
	// the journal on or off (pinned by TestJournalDoesNotAffectSearch).
	Journal *obs.Journal
	// PprofLabels, when true, tags the search's worker goroutines with
	// runtime/pprof labels (etl=search, etl_worker=<index>) so CPU profiles
	// attribute samples per worker. Off by default; labels cost a small
	// per-pool-run overhead and are only useful under active profiling.
	PprofLabels bool
	// Trace enables structured transition tracing: every transition on
	// the derivation path of each retained state is recorded as a
	// TraceStep, and Result.Steps carries the full path from S0 to the
	// best state (including the post-processing splits). The trace can be
	// audited offline by internal/analysis without executing data. Off by
	// default; when off, the search performs no trace bookkeeping and
	// Result.Steps is nil.
	Trace bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Model == nil {
		o.Model = cost.RowModel{}
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 200_000
	}
	if o.GroupCap <= 0 {
		o.GroupCap = 400
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Progress != nil && o.Metrics == nil {
		// The progress line reads live gauges, so it needs somewhere to
		// collect them even when the caller did not ask for metrics.
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Result reports one optimization run.
type Result struct {
	// Best is the cheapest state found, merged packages split.
	Best *workflow.Graph
	// BestCost and InitialCost are C(S_MIN) and C(S0).
	BestCost    float64
	InitialCost float64
	// Visited counts the distinct states generated — the paper's
	// visited-states metric (§4.1 dedupes by signature so no state is
	// generated, or costed, more than once).
	Visited int
	// Generated counts generation attempts including duplicate hits; the
	// state budget applies to this number, since duplicates still cost
	// work to produce and recognize.
	Generated int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Terminated reports whether the search closed the space (always true
	// for HS and HS-Greedy; false when ES ran out of budget, matching the
	// paper's "the algorithm did not terminate" annotations).
	Terminated bool
	// Algorithm names the search that produced this result.
	Algorithm string
	// Trace optionally lists the transition descriptions on the path to
	// Best (populated by ES).
	Trace []string
	// Steps is the structured transition trace from S0 to Best, recorded
	// when Options.Trace is set; nil otherwise. Unlike Trace it includes
	// the post-processing SPL transitions, so replaying Steps from S0
	// reproduces Best exactly.
	Steps []TraceStep
}

// Improvement returns the percentage improvement over the initial state.
func (r *Result) Improvement() float64 {
	return cost.Improvement(r.InitialCost, r.BestCost)
}

// state couples a workflow with its evaluated costing.
type state struct {
	g       *workflow.Graph
	costing *cost.Costing
	sig     string
	trace   []string
	// steps is the structured derivation path from S0; populated only
	// when Options.Trace is set.
	steps []TraceStep
}

// search carries the shared bookkeeping of all three algorithms.
//
// Concurrency model: worker goroutines only ever read the search (opts,
// model, parent costings) and consult the striped visited set; every
// mutation — admit, countShift, best-state updates — happens on the
// goroutine running the algorithm, in an order that does not depend on
// the worker count. That single-writer discipline is what makes the
// parallel search bit-reproducible.
type search struct {
	opts    Options
	ctx     context.Context // the caller's context: cancellation aborts with ctx.Err()
	pool    *pool
	visited *visitedSet
	count   int // generation attempts (budget)
	unique  int // distinct states (reported)
	// model is the pricing model the search actually evaluates with: the
	// caller's Options.Model wrapped in a cost.Memo unless the incremental
	// expansion machinery is disabled. The memo exploits COW pointer
	// sharing across states; it never changes a price.
	model cost.Model
	// xcache, when non-nil, is the transposition cache shared by workers
	// and reducer for successor costings (see expandCache).
	xcache *expandCache
	// singleChain records whether S0 renders as a single target chain —
	// the precondition under which signature splicing is provably exact
	// (see workflow.SpliceSignature). The target count is invariant under
	// all five transitions, so it is computed once from the initial state.
	singleChain bool
	// m is never nil: with Options.Metrics unset its handles are nil and
	// every record degrades to a no-op. stopProgress, when set, flushes
	// and stops the periodic progress line (see close).
	m            *searchMetrics
	stopProgress func()
}

func newSearch(ctx context.Context, opts Options) *search {
	s := &search{
		opts:    opts,
		ctx:     ctx,
		pool:    newPool(opts.Workers),
		visited: newVisitedSet(),
		model:   opts.Model,
		m:       newSearchMetrics(opts.Metrics, opts.Journal, opts.Workers),
	}
	if !opts.DisableIncrementalExpand {
		s.model = cost.NewMemo(opts.Model)
		if opts.ExpandCacheSize >= 0 {
			size := opts.ExpandCacheSize
			if size == 0 {
				size = 16384
			}
			s.xcache = newExpandCache(size)
		}
	}
	s.pool.busy = s.m.busyHook()
	if opts.PprofLabels {
		s.pool.wrap = searchLabelWrap(ctx)
	}
	return s
}

// searchLabelWrap builds the pool's pprof-label wrapper: each worker's
// body runs under etl=search, etl_worker=<index> labels so CPU profiles
// split samples by worker. Labels never touch results — they only tag the
// goroutine for the profiler.
func searchLabelWrap(ctx context.Context) func(worker int, fn func()) {
	return func(worker int, fn func()) {
		pprof.Do(ctx, pprof.Labels("etl", "search", "etl_worker", strconv.Itoa(worker)),
			func(context.Context) { fn() })
	}
}

// intern canonicalizes a signature through the visited set's interning
// table; the baseline mode skips interning to emulate the pre-incremental
// pipeline.
func (s *search) intern(sig string) string {
	if s.opts.DisableIncrementalExpand {
		return sig
	}
	return s.visited.Intern(sig)
}

// spliceOrFull derives the signature of res.Graph from its parent's
// signature when the transition describes itself as a local segment
// replacement and the splice is provably exact; otherwise it re-renders
// the signature from the graph. Under `-tags etldebug` every splice is
// cross-checked against the full rendering.
func (s *search) spliceOrFull(parentSig string, res *transitions.Result) string {
	if s.opts.DisableIncrementalExpand {
		return res.Graph.Signature()
	}
	if res.SigOld != "" {
		if sig, ok := workflow.SpliceSignature(parentSig, res.SigOld, res.SigNew, s.singleChain); ok {
			if workflow.DebugCOW {
				if full := res.Graph.Signature(); full != sig {
					panic(fmt.Sprintf("core: spliced signature diverged from full rendering\n  spliced: %s\n  full:    %s", sig, full))
				}
			}
			return sig
		}
	}
	return res.Graph.Signature()
}

// signatureOf returns the canonical (interned) signature of a successor.
// It is safe to call from worker goroutines.
func (s *search) signatureOf(parent *state, res *transitions.Result) string {
	return s.intern(s.spliceOrFull(parent.sig, res))
}

// budgetLeft reports whether the state budget and deadline allow further
// generation.
func (s *search) budgetLeft() bool {
	if s.count >= s.opts.MaxStates {
		return false
	}
	if s.ctx.Err() != nil {
		return false
	}
	return true
}

// aborted returns the caller's cancellation error, if any.
func (s *search) aborted() error {
	return s.ctx.Err()
}

// admit registers a generated state; it returns false when the state is a
// duplicate (already visited) and dedup is enabled. Every call counts one
// generated state against the budget.
func (s *search) admit(sig string) bool {
	s.count++
	s.m.generated.Inc()
	if s.opts.DisableDedup {
		s.unique++
		s.m.visited.Inc()
		return true
	}
	if !s.visited.Add(sig) {
		s.m.deduped.Inc()
		return false
	}
	s.unique++
	s.m.visited.Inc()
	return true
}

// countShift accounts for intermediate states produced while shifting an
// activity along its local group (each shift step is a generated state).
func (s *search) countShift(n int) {
	s.count += n
	s.unique += n
	// Mirror the budget counters so the exported series track
	// Result.Generated/Visited exactly; shiftSwaps separates out the
	// transient swap states for the curious.
	s.m.generated.Add(int64(n))
	s.m.visited.Add(int64(n))
	s.m.shiftSwaps.Add(int64(n))
}

// evaluate costs a state, incrementally from its parent when enabled.
func (s *search) evaluate(parent *state, g *workflow.Graph, dirty []workflow.NodeID) (*cost.Costing, error) {
	if s.opts.IncrementalCost && parent != nil && parent.costing != nil {
		return cost.EvaluateIncremental(parent.costing, g, s.model, dirty)
	}
	return cost.Evaluate(g, s.model)
}

// makeState wraps a transition result into a costed state. The parent must
// be the state the transition was applied to — its costing is the baseline
// of the semi-incremental evaluation, which only recomputes the dirty
// nodes and their descendants. sig is the state's canonical signature, as
// returned by signatureOf — computing it is the caller's job because
// admission decides on the signature alone, before the state is built.
//
// The costing is served from the transposition cache when an identical
// graph (same signature and structural fingerprint) was already evaluated
// by any worker; cached costings are bit-identical to fresh ones, so the
// cache is invisible in results.
func (s *search) makeState(parent *state, res *transitions.Result, sig string) (*state, error) {
	g := res.Graph
	var costing *cost.Costing
	if s.opts.DisableIncrementalExpand {
		// Full-clone baseline: pay the flat per-successor copy the
		// pre-COW pipeline paid, and skip every expansion cache.
		g = g.Clone()
		c, err := s.evaluate(parent, g, res.Dirty)
		if err != nil {
			return nil, err
		}
		costing = c
	} else if s.xcache != nil {
		fp := g.Fingerprint()
		if c, ok := s.xcache.get(sig, fp); ok {
			s.m.cacheLookup(true)
			costing = c
		} else {
			s.m.cacheLookup(false)
			c, err := s.evaluate(parent, g, res.Dirty)
			if err != nil {
				return nil, err
			}
			s.xcache.put(sig, fp, c)
			costing = c
		}
	} else {
		c, err := s.evaluate(parent, g, res.Dirty)
		if err != nil {
			return nil, err
		}
		costing = c
	}
	st := &state{g: g, costing: costing, sig: sig}
	if parent != nil {
		st.trace = append(append([]string(nil), parent.trace...), res.Description)
	}
	if s.opts.Trace {
		var ps []TraceStep
		if parent != nil {
			ps = parent.steps
		}
		st.steps = appendStep(ps, stepOf(res.Applied, st.sig, costing.Total, true))
	}
	return st, nil
}

// makeStateFull costs a derived graph from scratch. It is used when the
// graph is separated from traceParent by intermediate rewrites (the
// ShiftFrw/ShiftBkw swap sequences of HS Phases II and III), so no single
// dirty set relative to the parent exists and incremental costing would
// copy stale values. The shift sequences (pre1 then pre2, either may be
// nil) are recorded in the structured trace as uncosted steps — their
// intermediate graphs are transient, so they carry no signature — while
// res's own transition is recorded costed.
func (s *search) makeStateFull(traceParent *state, res *transitions.Result, pre1, pre2 []transitions.Applied, sig string) (*state, error) {
	g := res.Graph
	costing, err := cost.Evaluate(g, s.model)
	if err != nil {
		return nil, err
	}
	st := &state{g: g, costing: costing, sig: sig}
	if traceParent != nil {
		st.trace = append(append([]string(nil), traceParent.trace...), res.Description)
	}
	if s.opts.Trace {
		var ps []TraceStep
		if traceParent != nil {
			ps = traceParent.steps
		}
		steps := make([]TraceStep, len(ps), len(ps)+len(pre1)+len(pre2)+1)
		copy(steps, ps)
		for _, a := range pre1 {
			steps = append(steps, stepOf(a, "", 0, false))
		}
		for _, a := range pre2 {
			steps = append(steps, stepOf(a, "", 0, false))
		}
		st.steps = append(steps, stepOf(res.Applied, st.sig, costing.Total, true))
	}
	return st, nil
}

// initialState validates and costs S0.
func (s *search) initialState(g0 *workflow.Graph) (*state, error) {
	if err := g0.RegenerateSchemata(); err != nil {
		return nil, fmt.Errorf("core: initial state: %w", err)
	}
	if err := g0.Validate(); err != nil {
		return nil, fmt.Errorf("core: initial state: %w", err)
	}
	if err := g0.CheckWellFormed(); err != nil {
		return nil, fmt.Errorf("core: initial state: %w", err)
	}
	costing, err := cost.Evaluate(g0, s.model)
	if err != nil {
		return nil, fmt.Errorf("core: costing initial state: %w", err)
	}
	s.singleChain = len(g0.Targets()) == 1
	st := &state{g: g0, costing: costing, sig: s.intern(g0.Signature())}
	if !s.opts.DisableDedup {
		s.visited.Add(st.sig)
	}
	s.m.initialCost.Set(costing.Total)
	s.m.bestCost.Set(costing.Total)
	return st, nil
}

// expansions enumerates every transition applicable to a state — the
// successor function of the exhaustive search, delegated to
// transitions.Enumerate.
func expansions(st *state) []*transitions.Result {
	return transitions.Enumerate(st.g)
}

// finishResult splits any merged packages in the best state and assembles
// the Result. When tracing is enabled the splits are applied one at a
// time so each SPL lands in the structured trace; otherwise the batch
// SplitAll is used.
func finishResult(alg string, s0, best *state, s *search, start time.Time, terminated bool) (*Result, error) {
	var final *workflow.Graph
	var steps []TraceStep
	var err error
	// The post-processing splits count as SPL attempts/accepts: one per
	// merged package in the best state.
	for _, id := range best.g.Activities() {
		if best.g.Node(id).Act.Sem.Op == workflow.OpMerged {
			s.m.attempt("SPL")
			s.m.accept("SPL")
		}
	}
	if s.opts.Trace {
		final, steps, err = splitAllTraced(best.g, best.steps)
	} else {
		final, err = transitions.SplitAll(best.g)
	}
	if err != nil {
		return nil, fmt.Errorf("core: splitting merged activities: %w", err)
	}
	if err := final.RegenerateSchemata(); err != nil {
		return nil, err
	}
	s.m.bestCost.Set(best.costing.Total)
	s.m.recordPath(steps)
	s.flushCacheMetrics()
	return &Result{
		Best:        final,
		BestCost:    best.costing.Total,
		InitialCost: s0.costing.Total,
		Visited:     s.unique,
		Generated:   s.count,
		Elapsed:     time.Since(start),
		Terminated:  terminated,
		Algorithm:   alg,
		Trace:       best.trace,
		Steps:       steps,
	}, nil
}

// splitAllTraced mirrors transitions.SplitAll while recording each SPL as
// an uncosted trace step (splits never change a state's cost, only its
// granularity).
func splitAllTraced(g *workflow.Graph, prior []TraceStep) (*workflow.Graph, []TraceStep, error) {
	steps := append([]TraceStep(nil), prior...)
	cur := g
	for {
		var mergedID workflow.NodeID = -1
		for _, id := range cur.Activities() {
			if cur.Node(id).Act.Sem.Op == workflow.OpMerged {
				mergedID = id
				break
			}
		}
		if mergedID < 0 {
			return cur, steps, nil
		}
		res, err := transitions.Split(cur, mergedID)
		if err != nil {
			return nil, nil, err
		}
		cur = res.Graph
		steps = append(steps, stepOf(res.Applied, cur.Signature(), 0, false))
	}
}
