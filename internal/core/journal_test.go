package core

import (
	"bytes"
	"context"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// TestJournalDoesNotAffectSearch is the flight-recorder determinism guard:
// journaling (and pprof worker labels) must never feed back into search
// ordering. Every algorithm, at worker widths 1 and 4, must produce
// bit-identical signatures, costs and search statistics with the journal
// on and off.
func TestJournalDoesNotAffectSearch(t *testing.T) {
	ctx := context.Background()
	algos := map[string]func(context.Context, *workflow.Graph, Options) (*Result, error){
		"ES":        Exhaustive,
		"HS":        Heuristic,
		"HS-Greedy": HSGreedy,
	}
	for _, seed := range []int64{9200, 9201} {
		sc, err := generator.Generate(generator.CategoryConfig(generator.Small, seed))
		if err != nil {
			t.Fatal(err)
		}
		for name, algo := range algos {
			for _, workers := range []int{1, 4} {
				base := Options{IncrementalCost: true, MaxStates: 3000, Workers: workers}
				off, err := algo(ctx, sc.Graph, base)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d journal off: %v", seed, name, workers, err)
				}
				var buf bytes.Buffer
				withJ := base
				withJ.Journal = obs.NewJournal(&buf, nil)
				withJ.PprofLabels = true
				on, err := algo(ctx, sc.Graph, withJ)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d journal on: %v", seed, name, workers, err)
				}
				if err := withJ.Journal.Close(); err != nil {
					t.Fatalf("seed %d %s workers=%d: journal close: %v", seed, name, workers, err)
				}
				if off.BestCost != on.BestCost {
					t.Errorf("seed %d %s workers=%d: BestCost %v (off) != %v (on)",
						seed, name, workers, off.BestCost, on.BestCost)
				}
				if got, want := on.Best.Signature(), off.Best.Signature(); got != want {
					t.Errorf("seed %d %s workers=%d: signature diverged\n off: %s\n on:  %s",
						seed, name, workers, want, got)
				}
				if off.Visited != on.Visited || off.Generated != on.Generated {
					t.Errorf("seed %d %s workers=%d: stats diverged: (%d,%d) vs (%d,%d)",
						seed, name, workers, off.Visited, off.Generated, on.Visited, on.Generated)
				}

				// The journal itself must be a valid event stream describing
				// this run.
				evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d %s workers=%d: journal unreadable: %v", seed, name, workers, err)
				}
				counts := map[string]int{}
				var attempts, accepts int
				for _, e := range evs {
					counts[e.T]++
					if e.T == obs.EventTransition {
						switch e.Action {
						case "attempt":
							attempts++
						case "accept":
							accepts++
						}
					}
				}
				if counts[obs.EventRun] != 2 {
					t.Errorf("seed %d %s workers=%d: %d run events, want start+end",
						seed, name, workers, counts[obs.EventRun])
				}
				if counts[obs.EventSummary] != 1 {
					t.Errorf("seed %d %s workers=%d: %d summary events", seed, name, workers, counts[obs.EventSummary])
				}
				if attempts == 0 {
					t.Errorf("seed %d %s workers=%d: journal recorded no transition attempts",
						seed, name, workers)
				}
				if accepts > attempts {
					t.Errorf("seed %d %s workers=%d: accepts %d > attempts %d",
						seed, name, workers, accepts, attempts)
				}
				// No drops on an unsaturated journal: the accept/attempt
				// totals then align with the metric counters' semantics.
				if d := withJ.Journal.Dropped(); d != 0 {
					t.Logf("seed %d %s workers=%d: journal dropped %d events (buffer pressure)",
						seed, name, workers, d)
				}
			}
		}
	}
}

// TestJournalTransitionCountsMatchMetrics runs one search with both the
// journal and the metrics registry attached and cross-checks the two
// reporting channels against each other: per-op journal counts must equal
// the exported attempt/accept counters, and prune counts must sum to the
// deduped counter.
func TestJournalTransitionCountsMatchMetrics(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 9202))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	j := obs.NewJournal(&buf, reg)
	_, err = Heuristic(context.Background(), sc.Graph, Options{
		IncrementalCost: true, MaxStates: 3000, Workers: 2,
		Metrics: reg, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Dropped() != 0 {
		t.Skipf("journal dropped %d events; counts cannot be cross-checked", j.Dropped())
	}
	evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	attempts := map[string]int64{}
	accepts := map[string]int64{}
	var prunes, cacheHits, cacheMisses int64
	for _, e := range evs {
		switch e.T {
		case obs.EventTransition:
			switch e.Action {
			case "attempt":
				attempts[e.Op]++
			case "accept":
				accepts[e.Op]++
			case "prune":
				prunes++
			}
		case obs.EventCache:
			if e.Action == "hit" {
				cacheHits++
			} else {
				cacheMisses++
			}
		}
	}
	snap := reg.Snapshot()
	for _, op := range opNames {
		if v, _ := snap.CounterValue(`search_transition_attempts_total{op="` + op + `"}`); v != attempts[op] {
			t.Errorf("op %s: journal attempts %d != counter %d", op, attempts[op], v)
		}
		if v, _ := snap.CounterValue(`search_transition_accepts_total{op="` + op + `"}`); v != accepts[op] {
			t.Errorf("op %s: journal accepts %d != counter %d", op, accepts[op], v)
		}
	}
	if v, _ := snap.CounterValue("search_states_deduped_total"); v != prunes {
		t.Errorf("journal prunes %d != deduped counter %d", prunes, v)
	}
	if v, _ := snap.CounterValue("expand_cache_hits_total"); v != cacheHits {
		t.Errorf("journal cache hits %d != counter %d", cacheHits, v)
	}
	if v, _ := snap.CounterValue("expand_cache_misses_total"); v != cacheMisses {
		t.Errorf("journal cache misses %d != counter %d", cacheMisses, v)
	}
	// The journal's own accounting mirrored into the registry.
	if v, ok := snap.CounterValue("journal_events_total"); !ok || v != j.Written() {
		t.Errorf("journal_events_total = %d (ok=%v), want %d", v, ok, j.Written())
	}
}
