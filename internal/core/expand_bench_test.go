package core

import (
	"context"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/transitions"
)

// BenchmarkIncrementalExpand measures successor-generation throughput:
// turning an applied transition into an admitted, costed, signed state.
// The rewrite itself (transitions.Enumerate) is hoisted out of the timed
// loop — it runs the same code in both modes, so including it would only
// dilute the comparison the benchmark exists to make:
//
//   - Incremental: the shipped pipeline — COW graphs, signature splicing +
//     interning, per-activity cost memo, transposition cache;
//   - FullClone (Options.DisableIncrementalExpand): the pre-incremental
//     pipeline — a flat Graph.Clone per successor, full signature
//     re-rendering, full re-costing of every activity, no caches.
//
// The frontier deliberately contains a parent chain plus sibling groups:
// siblings share almost all structure with their parent, and repeated
// sweeps re-materialize known states — both are the steady-state shapes
// (shared subgraphs, transpositions) the caches are built for. Run with
//
//	go test -bench BenchmarkIncrementalExpand -benchtime 2s ./internal/core/
//
// The succ/s metric is the one BENCH_expand.json tracks over time.
func BenchmarkIncrementalExpand(b *testing.B) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 31337))
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name    string
		disable bool
		incCost bool
	}{
		// The shipped expansion pipeline.
		{"Incremental", false, true},
		// The pre-incremental pipeline: full clone, full signature, full
		// re-costing of every activity, no caches.
		{"FullClone", true, false},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			opts := Options{
				DisableIncrementalExpand: m.disable,
				IncrementalCost:          m.incCost,
			}.withDefaults()
			s := newSearch(context.Background(), opts)
			root, err := s.initialState(sc.Graph)
			if err != nil {
				b.Fatal(err)
			}
			parents := []*state{root}
			frontier := []*state{root}
			for depth := 0; depth < 2; depth++ {
				var next []*state
				for _, p := range frontier {
					for _, res := range transitions.Enumerate(p.g) {
						if len(next) >= 12 {
							break
						}
						sig := s.signatureOf(p, res)
						st, err := s.makeState(p, res, sig)
						if err != nil {
							b.Fatal(err)
						}
						next = append(next, st)
					}
				}
				parents = append(parents, next...)
				frontier = next
			}

			// Hoist the (mode-independent) rewrites out of the timed loop.
			type expansion struct {
				parent *state
				res    *transitions.Result
			}
			var work []expansion
			for _, p := range parents {
				for _, res := range transitions.Enumerate(p.g) {
					work = append(work, expansion{p, res})
				}
			}

			succ := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range work {
					sig := s.signatureOf(w.parent, w.res)
					if _, err := s.makeState(w.parent, w.res, sig); err != nil {
						b.Fatal(err)
					}
					succ++
				}
			}
			b.StopTimer()
			if succ > 0 {
				b.ReportMetric(float64(succ)/b.Elapsed().Seconds(), "succ/s")
			}
		})
	}
}
