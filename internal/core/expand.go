package core

import (
	"sync"
	"sync/atomic"

	"etlopt/internal/cost"
)

// expandShards is the lock striping of the transposition cache; 16 keeps
// contention negligible at realistic worker counts.
const expandShards = 16

// expandEntry caches the evaluated costing of one successor graph. fp is
// the structural fingerprint guarding against the one hazard of
// signature-keyed reuse: equal signatures can label the "same" state with
// different node IDs when it is reached through different MER/FAC
// lineages, and a Costing is NodeID-keyed, so reusing it across labelings
// would corrupt the downstream incremental evaluations. Entries are only
// served when both signature and fingerprint match.
type expandEntry struct {
	fp      uint64
	costing *cost.Costing
}

type expandStripe struct {
	mu   sync.Mutex
	m    map[string]expandEntry
	ring []string // FIFO of inserted keys; overwritten slot = evicted key
	next int
}

// expandCache is the transposition cache for successor pre-costing: the
// search's workers and reducer share it, so a state generated again — a
// sibling duplicate racing the visited set, or a Phase IV re-exploration
// of an ordering the greedy seeding already costed — returns its costing
// without re-evaluating the graph.
//
// Determinism: a cached costing is bit-identical to what re-evaluation
// would produce (models are deterministic, evaluation order is the
// graph's canonical topological order, and the fingerprint pins the exact
// structure), so cache hits and misses — which do vary with timing and
// worker count — are unobservable in search results. Admission is
// keep-first per key with FIFO eviction per stripe; the only shared state
// is value-canonical.
type expandCache struct {
	capPerStripe int
	stripes      [expandShards]expandStripe

	hits, misses, evictions atomic.Int64
}

// newExpandCache builds a cache bounded to roughly size entries.
func newExpandCache(size int) *expandCache {
	per := size / expandShards
	if per < 1 {
		per = 1
	}
	c := &expandCache{capPerStripe: per}
	for i := range c.stripes {
		c.stripes[i].m = make(map[string]expandEntry)
		c.stripes[i].ring = make([]string, per)
	}
	return c
}

// stripeFor hashes a signature to its stripe (FNV-1a).
func (c *expandCache) stripeFor(sig string) *expandStripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= prime64
	}
	return &c.stripes[h%expandShards]
}

// get returns the cached costing for (sig, fp), if present.
func (c *expandCache) get(sig string, fp uint64) (*cost.Costing, bool) {
	s := c.stripeFor(sig)
	s.mu.Lock()
	e, ok := s.m[sig]
	s.mu.Unlock()
	if ok && e.fp == fp {
		c.hits.Add(1)
		return e.costing, true
	}
	c.misses.Add(1)
	return nil, false
}

// put admits a costing for (sig, fp). The first write per key wins —
// values are canonical, so overwriting buys nothing — and a full stripe
// evicts its oldest key (FIFO ring).
func (c *expandCache) put(sig string, fp uint64, costing *cost.Costing) {
	s := c.stripeFor(sig)
	s.mu.Lock()
	if _, ok := s.m[sig]; ok {
		s.mu.Unlock()
		return
	}
	if old := s.ring[s.next]; old != "" {
		delete(s.m, old)
		c.evictions.Add(1)
	}
	s.ring[s.next] = sig
	s.next = (s.next + 1) % len(s.ring)
	s.m[sig] = expandEntry{fp: fp, costing: costing}
	s.mu.Unlock()
}

// stats returns the cumulative hit/miss/eviction counts. They are
// timing-dependent (concurrent workers race the same keys), so they feed
// the expand_* observability series, which is exempt from the
// worker-invariance contract of the search_* namespace.
func (c *expandCache) stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
