package core

import (
	"context"
	"sort"
	"time"

	"etlopt/internal/cost"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// Heuristic runs the HS algorithm exactly as structured in the paper's
// Fig. 7:
//
//	Pre-processing: apply the MER transitions dictated by the merge
//	constraints; find the homologous activities H, the distributable
//	activities D and the local groups L of the initial state.
//	Phase I:   all possible swap transitions within each local group.
//	Phase II:  for each homologous pair that can be shifted forward to its
//	           binary activity, factorize (FAC).
//	Phase III: for each state of Phase II and each distributable activity
//	           that can be shifted backward to its binary, distribute (DIS).
//	Phase IV:  repeat the local-group swap optimization on every state the
//	           previous phases produced.
//	Post:      split all merged activities and return S_MIN.
//
// Local groups are disjoint by construction (Heuristic 4 partitions the
// unary activities), so Phases I and IV optimize them concurrently in the
// Options.Workers pool; see optimizeLocalGroupsFrom for why that cannot
// change the result. A cancelled ctx aborts the search at the next
// expansion boundary and returns ctx.Err().
func Heuristic(ctx context.Context, g0 *workflow.Graph, opts Options) (*Result, error) {
	return heuristicSearch(ctx, "HS", g0, opts, false)
}

// HSGreedy runs the greedy variant of HS: Phases I and IV accept a swap
// only when it improves on the current minimum (hill-climbing) instead of
// exhaustively exploring each local group's orderings. Per §4.2 this is
// substantially faster, matches HS on small workflows, and degrades on
// medium and large ones.
func HSGreedy(ctx context.Context, g0 *workflow.Graph, opts Options) (*Result, error) {
	return heuristicSearch(ctx, "HS-Greedy", g0, opts, true)
}

func heuristicSearch(ctx context.Context, alg string, g0 *workflow.Graph, opts Options, greedy bool) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	s := newSearch(ctx, opts)
	defer s.close()
	span := s.m.reg.StartSpan("search/" + alg)
	defer span.End()
	s.startProgress(alg)
	s.m.runEvent("start", alg)
	defer s.m.runEvent("end", alg)

	s0, err := s.initialState(g0)
	if err != nil {
		return nil, err
	}

	// Pre-processing (Ln 4-8): apply MER per the merge constraints.
	pre := span.Child("preprocess")
	preEnd := s.m.phase("preprocess")
	cur := s0
	for _, pair := range opts.MergeConstraints {
		s.m.attempt("MER")
		res, err := transitions.Merge(cur.g, pair[0], pair[1])
		if err != nil {
			if transitions.IsRejection(err) {
				continue
			}
			return nil, err
		}
		st, err := s.makeState(cur, res, s.signatureOf(cur, res))
		if err != nil {
			return nil, err
		}
		s.m.accept("MER")
		cur = st
	}
	homologous := cur.g.FindHomologousPairs()
	distributable := cur.g.FindDistributableActivities()
	// Distribution eligibility follows the *activity*, not the node: DIS
	// clones inherit their origin's tag, so a selection distributed over
	// one union can be pushed further through the next union up the tree,
	// while activities factorized in Phase II (whose tags are combined)
	// are not distributed again, per the paper's Phase III note.
	distributableTags := make(map[string]bool, len(distributable))
	for _, da := range distributable {
		distributableTags[cur.g.Node(da.Activity).Act.Tag] = true
	}

	pre.End()
	preEnd()
	sMin := cur
	s.m.bestCost.Set(sMin.costing.Total)

	// Phase I (Ln 9-13): swap optimization inside each local group.
	if !opts.DisablePhaseI {
		p1 := span.Child("phaseI")
		p1End := s.m.phase("phaseI")
		sMin = s.optimizeLocalGroups(sMin, greedy)
		s.m.bestCost.Set(sMin.costing.Total)
		p1.End()
		p1End()
	}

	visited := []*state{sMin}

	// Phase II (Ln 14-20): shift homologous pairs forward and factorize.
	p2 := span.Child("phaseII")
	p2End := s.m.phase("phaseII")
	for _, hp := range homologous {
		if !s.budgetLeft() {
			break
		}
		base := sMin
		if base.g.Node(hp.A) == nil || base.g.Node(hp.B) == nil || base.g.Node(hp.Binary) == nil {
			continue // consumed by an earlier factorization
		}
		sh1, err := transitions.ShiftForward(base.g, hp.A, hp.Binary)
		if err != nil {
			continue
		}
		s.countShift(sh1.Swaps)
		sh2, err := transitions.ShiftForward(sh1.Graph, hp.B, hp.Binary)
		if err != nil {
			continue
		}
		s.countShift(sh2.Swaps)
		s.m.attempt("FAC")
		res, err := transitions.Factorize(sh2.Graph, hp.Binary, hp.A, hp.B)
		if err != nil {
			continue
		}
		// FAC restructures branches (SigOld is empty), so the signature is
		// rendered in full and only interned.
		sig := s.intern(res.Graph.Signature())
		if !s.admit(sig) {
			s.m.prune("FAC")
			continue
		}
		s.m.accept("FAC")
		st, err := s.makeStateFull(base, res, sh1.Applied, sh2.Applied, sig)
		if err != nil {
			return nil, err
		}
		if st.costing.Total < sMin.costing.Total {
			sMin = st
			s.m.bestCost.Set(sMin.costing.Total)
			s.m.best("FAC", sMin.costing.Total)
		}
		visited = append(visited, st)
	}
	p2.End()
	p2End()

	// Phase III (Ln 21-28): distribute over the accumulated states. The
	// distributable activities of the *initial* state are used — activities
	// factorized in Phase II are not distributed again — and the unvisited
	// list is processed as a worklist: a state produced by one distribution
	// is itself examined for further distributions, so several selections
	// can be pushed into the branches of the same flow.
	p3 := span.Child("phaseIII")
	p3End := s.m.phase("phaseIII")
	unvisited := append([]*state(nil), visited...)
	for len(unvisited) > 0 && s.budgetLeft() {
		si := unvisited[0]
		unvisited = unvisited[1:]
		s.m.frontier.Set(float64(len(unvisited)))
		for _, da := range si.g.FindDistributableActivities() {
			if !s.budgetLeft() {
				break
			}
			if !distributableTags[si.g.Node(da.Activity).Act.Tag] {
				continue
			}
			sh, err := transitions.ShiftBackward(si.g, da.Activity, da.Binary)
			if err != nil {
				continue
			}
			s.countShift(sh.Swaps)
			s.m.attempt("DIS")
			res, err := transitions.Distribute(sh.Graph, da.Binary, da.Activity)
			if err != nil {
				continue
			}
			sig := s.intern(res.Graph.Signature())
			if !s.admit(sig) {
				s.m.prune("DIS")
				continue
			}
			s.m.accept("DIS")
			st, err := s.makeStateFull(si, res, sh.Applied, nil, sig)
			if err != nil {
				return nil, err
			}
			improving := st.costing.Total < si.costing.Total
			if st.costing.Total < sMin.costing.Total {
				sMin = st
				s.m.bestCost.Set(sMin.costing.Total)
				s.m.best("DIS", sMin.costing.Total)
			}
			visited = append(visited, st)
			// Expand only improving distributions: chains that keep
			// lowering the cost (a selection marching down a ladder of
			// unions) continue; neutral or worsening placements are
			// recorded for Phase IV but not expanded, pruning the
			// placement lattice. The greedy variant commits to the first
			// improving distribution per state instead of branching over
			// every alternative.
			if improving {
				unvisited = append(unvisited, st)
				if greedy {
					break
				}
			}
		}
	}

	p3.End()
	p3End()

	// Phase IV (Ln 29-35): repeat the swap optimization on every state
	// produced so far, since factorizations and distributions changed the
	// contents of the local groups. States are processed cheapest-first so
	// that a bounded budget is spent where Phase IV is most likely to find
	// the optimum.
	p4 := span.Child("phaseIV")
	p4End := s.m.phase("phaseIV")
	sort.SliceStable(visited, func(i, j int) bool {
		return visited[i].costing.Total < visited[j].costing.Total
	})
	for _, si := range visited {
		if !s.budgetLeft() {
			break
		}
		opt := s.optimizeLocalGroupsFrom(si, greedy)
		if opt.costing.Total < sMin.costing.Total {
			sMin = opt
			s.m.bestCost.Set(sMin.costing.Total)
			s.m.best("SWA", sMin.costing.Total)
		}
	}
	p4.End()
	p4End()

	if err := s.aborted(); err != nil {
		return nil, err
	}
	// Post-processing (Ln 36): split merged activities — done by
	// finishResult, whose SplitAll mirrors the reciprocal SPL constraints.
	return finishResult(alg, s0, sMin, s, start, true)
}

// groupState is a state inside one local group's search, carrying the SWA
// transitions that produced it from the group job's base state so the
// winning ordering can be replayed onto any graph that shares the group.
type groupState struct {
	st    *state
	swaps [][2]workflow.NodeID
	descs []string
}

func (gs *groupState) extend(st *state, pair [2]workflow.NodeID, desc string) *groupState {
	return &groupState{
		st:    st,
		swaps: append(append([][2]workflow.NodeID(nil), gs.swaps...), pair),
		descs: append(append([]string(nil), gs.descs...), desc),
	}
}

// groupOutcome is what one local-group job reports back to the reducer:
// the best ordering found and the admission log — every signature the job
// would have passed to search.admit, in discovery order. The reducer
// replays the log sequentially, so the global counters and visited set
// end up exactly as if the group had been optimized inline.
type groupOutcome struct {
	best   *groupState
	admits []string
}

// optimizeLocalGroups runs the Phase I/IV swap optimization over every
// local group of the state. The cheapest combination seen is returned.
func (s *search) optimizeLocalGroups(st *state, greedy bool) *state {
	return s.optimizeLocalGroupsFrom(st, greedy)
}

// optimizeLocalGroupsFrom optimizes every local group of the state and
// composes the winning orderings. Groups partition the unary activities
// (Heuristic 4) and a unary activity's output cardinality is invariant
// under reordering its group (selectivities multiply commutatively), so
// each group's search — legality, costs, and therefore its best ordering —
// is independent of every other group's ordering. That independence is
// what lets the groups run concurrently in the worker pool without
// coordination: each job explores its group against the shared base state
// (read-only; transitions clone before rewriting), and a sequential
// reduction in group order replays the admission logs and applies the
// winning swap sequences, keeping counters, visited set and the returned
// state identical for every worker count. MaxStates is enforced at group
// granularity: once the budget is exhausted, remaining groups are
// skipped (uncounted), exactly as the sequential search would have
// skipped them.
func (s *search) optimizeLocalGroupsFrom(st *state, greedy bool) *state {
	if !s.budgetLeft() {
		return st
	}
	var members []map[workflow.NodeID]bool
	for _, grp := range st.g.LocalGroups() {
		if len(grp) < 2 {
			continue
		}
		m := make(map[workflow.NodeID]bool, len(grp))
		for _, id := range grp {
			m[id] = true
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return st
	}
	// Prime the shared graph's memoized topological order before the jobs
	// start reading it concurrently.
	st.g.TopoSort()

	outcomes := make([]*groupOutcome, len(members))
	s.pool.run(len(members), func(i int) {
		out := &groupOutcome{}
		if greedy {
			out.best = s.groupGreedy(st, members[i], out)
		} else {
			out.best = s.groupFull(st, members[i], out)
		}
		outcomes[i] = out
	})

	// Deterministic reduction in group order.
	cur := st
	for _, out := range outcomes {
		if !s.budgetLeft() {
			break
		}
		for _, sig := range out.admits {
			if s.admit(sig) {
				s.m.accept("SWA")
			} else {
				s.m.prune("SWA")
			}
		}
		if out.best == nil || len(out.best.swaps) == 0 {
			continue
		}
		next, err := s.replaySwaps(cur, out.best)
		if err != nil {
			continue
		}
		if next.costing.Total < cur.costing.Total {
			cur = next
		}
	}
	return cur
}

// replaySwaps applies a group's winning swap sequence to cur's graph and
// costs the composed state once, incrementally over the union of the
// swaps' dirty sets. Replays cannot legally fail — the swaps were legal
// against the base state and other groups' reorderings do not touch this
// group's activities or schemata — but a rejection is reported rather
// than trusted.
//
// The signature is maintained incrementally across the replay: each swap
// splices its segment into the running signature, and both the trace
// steps and the final state carry the interned handle — the same string
// instance the visited set stores — instead of a post-hoc re-rendering of
// the graph, so trace and dedup bookkeeping are provably about the same
// state.
func (s *search) replaySwaps(cur *state, gs *groupState) (*state, error) {
	g := cur.g
	sig := cur.sig
	var dirty []workflow.NodeID
	var steps []TraceStep
	if s.opts.Trace {
		steps = append([]TraceStep(nil), cur.steps...)
	}
	for _, pair := range gs.swaps {
		res, err := transitions.Swap(g, pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		g = res.Graph
		sig = s.spliceOrFull(sig, res)
		dirty = append(dirty, res.Dirty...)
		if s.opts.Trace {
			steps = append(steps, stepOf(res.Applied, s.intern(sig), 0, false))
		}
	}
	var costing *cost.Costing
	var err error
	if s.opts.IncrementalCost {
		costing, err = cost.EvaluateIncremental(cur.costing, g, s.model, dirty)
	} else {
		costing, err = cost.Evaluate(g, s.model)
	}
	if err != nil {
		return nil, err
	}
	if s.opts.Trace && len(steps) > len(cur.steps) {
		// The composed state is the one the search costs; stamp the total
		// on the last replayed swap.
		last := &steps[len(steps)-1]
		last.Cost = costing.Total
		last.Costed = true
	}
	trace := append(append([]string(nil), cur.trace...), gs.descs...)
	return &state{g: g, costing: costing, sig: s.intern(sig), trace: trace, steps: steps}, nil
}

// adjacentPairs enumerates provider→consumer activity pairs within the
// member set on the given graph, ordered from the upstream end of the
// chain so results are deterministic.
func adjacentPairs(g *workflow.Graph, members map[workflow.NodeID]bool) [][2]workflow.NodeID {
	ids := make([]workflow.NodeID, 0, len(members))
	for id := range members {
		if g.Node(id) != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out [][2]workflow.NodeID
	for _, id := range ids {
		for _, c := range g.Consumers(id) {
			if members[c] {
				out = append(out, [2]workflow.NodeID{id, c})
			}
		}
	}
	return out
}

// groupFull explores, breadth-first, every ordering of the group's
// activities reachable through legal swaps, returning the cheapest state —
// HS's exhaustive-within-a-group behaviour. The exploration is seeded with
// the hill-climbing result so that, under a bounded budget, the full search
// never returns a worse ordering than the greedy variant would. The
// exploration is bounded by Options.GroupCap; it runs entirely against
// job-local state so several groups can search concurrently.
func (s *search) groupFull(base *state, members map[workflow.NodeID]bool, out *groupOutcome) *groupState {
	best := s.groupGreedy(base, members, out)
	frontier := []*groupState{best}
	localSeen := map[string]bool{base.sig: true, best.st.sig: true}
	generated := 0
	for len(frontier) > 0 && s.ctx.Err() == nil && generated < s.opts.GroupCap {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, pair := range adjacentPairs(cur.st.g, members) {
			// Group jobs may run on pool workers; the attempt counter is
			// atomic, and the set of attempts per group is a pure function
			// of the base state, so totals stay deterministic.
			s.m.attempt("SWA")
			res, err := transitions.Swap(cur.st.g, pair[0], pair[1])
			if err != nil {
				continue
			}
			sig := s.signatureOf(cur.st, res)
			if localSeen[sig] {
				continue
			}
			localSeen[sig] = true
			out.admits = append(out.admits, sig)
			generated++
			st2, err := s.makeState(cur.st, res, sig)
			if err != nil {
				continue
			}
			gs2 := cur.extend(st2, pair, res.Description)
			if st2.costing.Total < best.st.costing.Total {
				best = gs2
			}
			frontier = append(frontier, gs2)
			if generated >= s.opts.GroupCap || s.ctx.Err() != nil {
				break
			}
		}
	}
	return best
}

// groupGreedy performs the HS-Greedy variant of Phases I and IV: a single
// pass over the group's adjacent pairs, applying a swap only when it
// lowers the cost of the current minimum — the paper's "swaps only those
// that lead to a state with less cost than the existing minimum". One
// pass (rather than iterating to a fixpoint) is what makes HS-Greedy fast
// but "unstable" on large workflows (§4.2): an improving swap further
// down the group can be missed when an earlier pair was processed first.
func (s *search) groupGreedy(base *state, members map[workflow.NodeID]bool, out *groupOutcome) *groupState {
	cur := &groupState{st: base}
	for _, pair := range adjacentPairs(cur.st.g, members) {
		if s.ctx.Err() != nil {
			break
		}
		s.m.attempt("SWA")
		res, err := transitions.Swap(cur.st.g, pair[0], pair[1])
		if err != nil {
			continue
		}
		sig := s.signatureOf(cur.st, res)
		out.admits = append(out.admits, sig)
		st2, err := s.makeState(cur.st, res, sig)
		if err != nil {
			continue
		}
		if st2.costing.Total < cur.st.costing.Total {
			cur = cur.extend(st2, pair, res.Description)
		}
	}
	return cur
}
