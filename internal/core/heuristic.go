package core

import (
	"sort"
	"time"

	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// Heuristic runs the HS algorithm exactly as structured in the paper's
// Fig. 7:
//
//	Pre-processing: apply the MER transitions dictated by the merge
//	constraints; find the homologous activities H, the distributable
//	activities D and the local groups L of the initial state.
//	Phase I:   all possible swap transitions within each local group.
//	Phase II:  for each homologous pair that can be shifted forward to its
//	           binary activity, factorize (FAC).
//	Phase III: for each state of Phase II and each distributable activity
//	           that can be shifted backward to its binary, distribute (DIS).
//	Phase IV:  repeat the local-group swap optimization on every state the
//	           previous phases produced.
//	Post:      split all merged activities and return S_MIN.
func Heuristic(g0 *workflow.Graph, opts Options) (*Result, error) {
	return heuristicSearch("HS", g0, opts, false)
}

// HSGreedy runs the greedy variant of HS: Phases I and IV accept a swap
// only when it improves on the current minimum (hill-climbing) instead of
// exhaustively exploring each local group's orderings. Per §4.2 this is
// substantially faster, matches HS on small workflows, and degrades on
// medium and large ones.
func HSGreedy(g0 *workflow.Graph, opts Options) (*Result, error) {
	return heuristicSearch("HS-Greedy", g0, opts, true)
}

func heuristicSearch(alg string, g0 *workflow.Graph, opts Options, greedy bool) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	s := newSearch(opts)

	s0, err := s.initialState(g0)
	if err != nil {
		return nil, err
	}

	// Pre-processing (Ln 4-8): apply MER per the merge constraints.
	cur := s0
	for _, pair := range opts.MergeConstraints {
		res, err := transitions.Merge(cur.g, pair[0], pair[1])
		if err != nil {
			if transitions.IsRejection(err) {
				continue
			}
			return nil, err
		}
		st, err := s.makeState(cur, res)
		if err != nil {
			return nil, err
		}
		cur = st
	}
	homologous := cur.g.FindHomologousPairs()
	distributable := cur.g.FindDistributableActivities()
	// Distribution eligibility follows the *activity*, not the node: DIS
	// clones inherit their origin's tag, so a selection distributed over
	// one union can be pushed further through the next union up the tree,
	// while activities factorized in Phase II (whose tags are combined)
	// are not distributed again, per the paper's Phase III note.
	distributableTags := make(map[string]bool, len(distributable))
	for _, da := range distributable {
		distributableTags[cur.g.Node(da.Activity).Act.Tag] = true
	}

	sMin := cur

	// Phase I (Ln 9-13): swap optimization inside each local group.
	if !opts.DisablePhaseI {
		sMin = s.optimizeLocalGroups(sMin, greedy)
	}

	visited := []*state{sMin}

	// Phase II (Ln 14-20): shift homologous pairs forward and factorize.
	for _, hp := range homologous {
		if !s.budgetLeft() {
			break
		}
		base := sMin
		if base.g.Node(hp.A) == nil || base.g.Node(hp.B) == nil || base.g.Node(hp.Binary) == nil {
			continue // consumed by an earlier factorization
		}
		sh1, err := transitions.ShiftForward(base.g, hp.A, hp.Binary)
		if err != nil {
			continue
		}
		s.countShift(sh1.Swaps)
		sh2, err := transitions.ShiftForward(sh1.Graph, hp.B, hp.Binary)
		if err != nil {
			continue
		}
		s.countShift(sh2.Swaps)
		res, err := transitions.Factorize(sh2.Graph, hp.Binary, hp.A, hp.B)
		if err != nil {
			continue
		}
		if !s.admit(res.Graph.Signature()) {
			continue
		}
		st, err := s.makeStateFull(base, res.Graph, res.Description)
		if err != nil {
			return nil, err
		}
		if st.costing.Total < sMin.costing.Total {
			sMin = st
		}
		visited = append(visited, st)
	}

	// Phase III (Ln 21-28): distribute over the accumulated states. The
	// distributable activities of the *initial* state are used — activities
	// factorized in Phase II are not distributed again — and the unvisited
	// list is processed as a worklist: a state produced by one distribution
	// is itself examined for further distributions, so several selections
	// can be pushed into the branches of the same flow.
	unvisited := append([]*state(nil), visited...)
	for len(unvisited) > 0 && s.budgetLeft() {
		si := unvisited[0]
		unvisited = unvisited[1:]
		for _, da := range si.g.FindDistributableActivities() {
			if !s.budgetLeft() {
				break
			}
			if !distributableTags[si.g.Node(da.Activity).Act.Tag] {
				continue
			}
			sh, err := transitions.ShiftBackward(si.g, da.Activity, da.Binary)
			if err != nil {
				continue
			}
			s.countShift(sh.Swaps)
			res, err := transitions.Distribute(sh.Graph, da.Binary, da.Activity)
			if err != nil {
				continue
			}
			if !s.admit(res.Graph.Signature()) {
				continue
			}
			st, err := s.makeStateFull(si, res.Graph, res.Description)
			if err != nil {
				return nil, err
			}
			improving := st.costing.Total < si.costing.Total
			if st.costing.Total < sMin.costing.Total {
				sMin = st
			}
			visited = append(visited, st)
			// Expand only improving distributions: chains that keep
			// lowering the cost (a selection marching down a ladder of
			// unions) continue; neutral or worsening placements are
			// recorded for Phase IV but not expanded, pruning the
			// placement lattice. The greedy variant commits to the first
			// improving distribution per state instead of branching over
			// every alternative.
			if improving {
				unvisited = append(unvisited, st)
				if greedy {
					break
				}
			}
		}
	}

	// Phase IV (Ln 29-35): repeat the swap optimization on every state
	// produced so far, since factorizations and distributions changed the
	// contents of the local groups. States are processed cheapest-first so
	// that a bounded budget is spent where Phase IV is most likely to find
	// the optimum.
	sort.SliceStable(visited, func(i, j int) bool {
		return visited[i].costing.Total < visited[j].costing.Total
	})
	for _, si := range visited {
		if !s.budgetLeft() {
			break
		}
		opt := s.optimizeLocalGroupsFrom(si, greedy)
		if opt.costing.Total < sMin.costing.Total {
			sMin = opt
		}
	}

	// Post-processing (Ln 36): split merged activities — done by
	// finishResult, whose SplitAll mirrors the reciprocal SPL constraints.
	return finishResult(alg, s0, sMin, s, start, true)
}

// optimizeLocalGroups runs the Phase I/IV swap optimization over every
// local group of the state, feeding each group's best state into the next
// group (the groups partition the unary activities, so their optimizations
// compose). The cheapest state seen is returned.
func (s *search) optimizeLocalGroups(st *state, greedy bool) *state {
	return s.optimizeLocalGroupsFrom(st, greedy)
}

func (s *search) optimizeLocalGroupsFrom(st *state, greedy bool) *state {
	cur := st
	for _, grp := range st.g.LocalGroups() {
		if len(grp) < 2 {
			continue
		}
		members := make(map[workflow.NodeID]bool, len(grp))
		for _, id := range grp {
			members[id] = true
		}
		if greedy {
			cur = s.optimizeGroupGreedy(cur, members)
		} else {
			cur = s.optimizeGroupFull(cur, members)
		}
		if !s.budgetLeft() {
			break
		}
	}
	return cur
}

// adjacentPairs enumerates provider→consumer activity pairs within the
// member set on the given graph, ordered from the upstream end of the
// chain so results are deterministic.
func adjacentPairs(g *workflow.Graph, members map[workflow.NodeID]bool) [][2]workflow.NodeID {
	ids := make([]workflow.NodeID, 0, len(members))
	for id := range members {
		if g.Node(id) != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out [][2]workflow.NodeID
	for _, id := range ids {
		for _, c := range g.Consumers(id) {
			if members[c] {
				out = append(out, [2]workflow.NodeID{id, c})
			}
		}
	}
	return out
}

// optimizeGroupFull explores, breadth-first, every ordering of the group's
// activities reachable through legal swaps, returning the cheapest state —
// HS's exhaustive-within-a-group behaviour. The exploration is seeded with
// the hill-climbing result so that, under a bounded budget, the full search
// never returns a worse ordering than the greedy variant would.
func (s *search) optimizeGroupFull(st *state, members map[workflow.NodeID]bool) *state {
	best := s.optimizeGroupGreedy(st, members)
	frontier := []*state{best}
	localSeen := map[string]bool{st.sig: true, best.sig: true}
	generated := 0
	for len(frontier) > 0 && s.budgetLeft() && generated < s.opts.GroupCap {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, pair := range adjacentPairs(cur.g, members) {
			res, err := transitions.Swap(cur.g, pair[0], pair[1])
			if err != nil {
				continue
			}
			sig := res.Graph.Signature()
			if localSeen[sig] {
				continue
			}
			localSeen[sig] = true
			s.admit(sig)
			generated++
			st2, err := s.makeState(cur, res)
			if err != nil {
				continue
			}
			if st2.costing.Total < best.costing.Total {
				best = st2
			}
			frontier = append(frontier, st2)
			if !s.budgetLeft() || generated >= s.opts.GroupCap {
				break
			}
		}
	}
	return best
}

// optimizeGroupGreedy performs the HS-Greedy variant of Phases I and IV:
// a single pass over the group's adjacent pairs, applying a swap only when
// it lowers the cost of the current minimum — the paper's "swaps only
// those that lead to a state with less cost than the existing minimum".
// One pass (rather than iterating to a fixpoint) is what makes HS-Greedy
// fast but "unstable" on large workflows (§4.2): an improving swap further
// down the group can be missed when an earlier pair was processed first.
func (s *search) optimizeGroupGreedy(st *state, members map[workflow.NodeID]bool) *state {
	cur := st
	for _, pair := range adjacentPairs(cur.g, members) {
		if !s.budgetLeft() {
			break
		}
		res, err := transitions.Swap(cur.g, pair[0], pair[1])
		if err != nil {
			continue
		}
		s.admit(res.Graph.Signature())
		st2, err := s.makeState(cur, res)
		if err != nil {
			continue
		}
		if st2.costing.Total < cur.costing.Total {
			cur = st2
		}
	}
	return cur
}
