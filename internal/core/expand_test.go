package core

import (
	"context"
	"fmt"
	"testing"

	"etlopt/internal/cost"
	"etlopt/internal/generator"
	"etlopt/internal/workflow"
)

func TestExpandCacheGetPut(t *testing.T) {
	c := newExpandCache(64)
	costing := &cost.Costing{Total: 42}
	if _, ok := c.get("sig", 1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put("sig", 1, costing)
	got, ok := c.get("sig", 1)
	if !ok || got != costing {
		t.Fatalf("get after put = (%v, %v), want the stored costing", got, ok)
	}
	// Same signature, different structural fingerprint: must NOT hit —
	// this is the guard against NodeID-relabeled states sharing costings.
	if _, ok := c.get("sig", 2); ok {
		t.Fatal("fingerprint mismatch served a cached costing")
	}
	// Keep-first admission: a second put for the key is ignored.
	other := &cost.Costing{Total: 7}
	c.put("sig", 9, other)
	if got, ok := c.get("sig", 1); !ok || got != costing {
		t.Fatal("second put overwrote the canonical first entry")
	}
}

func TestExpandCacheEviction(t *testing.T) {
	// One entry per stripe: inserting two keys on one stripe evicts the
	// first (FIFO ring of size 1).
	c := newExpandCache(expandShards)
	var onStripe []string
	target := c.stripeFor("probe-0")
	for i := 0; len(onStripe) < 2; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.stripeFor(k) == target {
			onStripe = append(onStripe, k)
		}
	}
	c.put(onStripe[0], 1, &cost.Costing{Total: 1})
	c.put(onStripe[1], 2, &cost.Costing{Total: 2})
	if _, ok := c.get(onStripe[0], 1); ok {
		t.Fatal("oldest key survived a full stripe")
	}
	if _, ok := c.get(onStripe[1], 2); !ok {
		t.Fatal("newest key missing after eviction")
	}
	if _, _, ev := c.stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestIncrementalExpandEquivalence is the correctness contract of the
// whole incremental-expansion machinery: for every algorithm, a spread of
// scenarios and Workers ∈ {1, 4}, the incremental pipeline (COW
// successors, cost memo, signature splicing + interning, transposition
// cache) must produce bit-identical best signatures, costs and search
// statistics to the full-clone baseline. The full 40-scenario sweep runs
// in `etlbench -expand`; this test pins the same property on a suite
// small enough for every `go test` run.
func TestIncrementalExpandEquivalence(t *testing.T) {
	ctx := context.Background()
	algos := map[string]func(context.Context, *workflow.Graph, Options) (*Result, error){
		"ES":        Exhaustive,
		"HS":        Heuristic,
		"HS-Greedy": HSGreedy,
	}
	for seed := int64(0); seed < 8; seed++ {
		cat := generator.Small
		if seed >= 5 {
			cat = generator.Medium
		}
		sc, err := generator.Generate(generator.CategoryConfig(cat, 4200+seed))
		if err != nil {
			t.Fatal(err)
		}
		for name, algo := range algos {
			if name == "ES" && cat != generator.Small {
				continue // keep the exhaustive runs cheap
			}
			for _, workers := range []int{1, 4} {
				opts := Options{IncrementalCost: true, MaxStates: 2500, Workers: workers}
				baseOpts := opts
				baseOpts.DisableIncrementalExpand = true
				inc, err := algo(ctx, sc.Graph, opts)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d incremental: %v", seed, name, workers, err)
				}
				full, err := algo(ctx, sc.Graph, baseOpts)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d full-clone: %v", seed, name, workers, err)
				}
				if inc.BestCost != full.BestCost {
					t.Errorf("seed %d %s workers=%d: BestCost %v (incremental) != %v (full-clone)",
						seed, name, workers, inc.BestCost, full.BestCost)
				}
				if got, want := inc.Best.Signature(), full.Best.Signature(); got != want {
					t.Errorf("seed %d %s workers=%d: best signature diverged\n incremental: %s\n full-clone:  %s",
						seed, name, workers, got, want)
				}
				if inc.Visited != full.Visited || inc.Generated != full.Generated {
					t.Errorf("seed %d %s workers=%d: stats diverged: (%d,%d) vs (%d,%d)",
						seed, name, workers, inc.Visited, inc.Generated, full.Visited, full.Generated)
				}
			}
		}
	}
}

// TestExpandCacheDisabled pins that a negative ExpandCacheSize turns the
// transposition cache off without changing results.
func TestExpandCacheDisabled(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 77))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	with, err := Exhaustive(ctx, sc.Graph, Options{IncrementalCost: true, MaxStates: 2000})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Exhaustive(ctx, sc.Graph, Options{IncrementalCost: true, MaxStates: 2000, ExpandCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if with.BestCost != without.BestCost || with.Best.Signature() != without.Best.Signature() {
		t.Fatalf("transposition cache changed results: %v/%s vs %v/%s",
			with.BestCost, with.Best.Signature(), without.BestCost, without.Best.Signature())
	}
}
