package core_test

import (
	"context"
	"fmt"

	"etlopt/internal/core"
	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// ExampleHeuristic optimizes a three-activity cleaning flow: the heuristic
// search runs the selective threshold before the looser not-null check.
func ExampleHeuristic() {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{
		Name: "ORDERS", Schema: data.Schema{"ID", "AMT"}, Rows: 10_000, IsSource: true,
	})
	nn := g.AddActivity(templates.NotNull(0.99, "ID"))
	keep := g.AddActivity(templates.Threshold("AMT", 100, 0.2))
	dw := g.AddRecordset(&workflow.RecordsetRef{
		Name: "DW", Schema: data.Schema{"ID", "AMT"}, IsTarget: true,
	})
	g.MustAddEdge(src, nn)
	g.MustAddEdge(nn, keep)
	g.MustAddEdge(keep, dw)

	res, err := core.Heuristic(context.Background(), g, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("initial %s -> optimized %s\n", g.Signature(), res.Best.Signature())
	fmt.Printf("improvement: %.1f%%\n", res.Improvement())
	// Output:
	// initial 1.2.3.4 -> optimized 1.3.2.4
	// improvement: 39.7%
}

// ExampleExhaustive closes the tiny state space of two commuting filters
// and returns the optimal ordering.
func ExampleExhaustive() {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"A", "B"}, Rows: 1000, IsSource: true,
	})
	loose := g.AddActivity(templates.Threshold("A", 1, 0.9))
	tight := g.AddActivity(templates.Threshold("B", 1, 0.1))
	tgt := g.AddRecordset(&workflow.RecordsetRef{
		Name: "T", Schema: data.Schema{"A", "B"}, IsTarget: true,
	})
	g.MustAddEdge(src, loose)
	g.MustAddEdge(loose, tight)
	g.MustAddEdge(tight, tgt)

	res, _ := core.Exhaustive(context.Background(), g, core.Options{})
	fmt.Printf("terminated=%v cost %.0f -> %.0f\n", res.Terminated, res.InitialCost, res.BestCost)
	// Output:
	// terminated=true cost 1900 -> 1100
}
