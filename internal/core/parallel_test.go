package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"etlopt/internal/generator"
	"etlopt/internal/workflow"
)

// TestParallelDeterminism is the contract of Options.Workers: for every
// algorithm, a run with 8 workers must produce byte-identical best
// signatures and costs — and identical search statistics — to the fully
// sequential run, across a spread of generated scenarios.
func TestParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	algos := map[string]func(context.Context, *workflow.Graph, Options) (*Result, error){
		"ES":        Exhaustive,
		"HS":        Heuristic,
		"HS-Greedy": HSGreedy,
	}
	for seed := int64(0); seed < 10; seed++ {
		cat := generator.Small
		if seed >= 7 {
			cat = generator.Medium
		}
		sc, err := generator.Generate(generator.CategoryConfig(cat, 9000+seed))
		if err != nil {
			t.Fatal(err)
		}
		for name, algo := range algos {
			if name == "ES" && cat != generator.Small {
				continue // keep the exhaustive runs cheap
			}
			seq, err := algo(ctx, sc.Graph, Options{IncrementalCost: true, MaxStates: 3000, Workers: 1})
			if err != nil {
				t.Fatalf("seed %d %s workers=1: %v", seed, name, err)
			}
			par, err := algo(ctx, sc.Graph, Options{IncrementalCost: true, MaxStates: 3000, Workers: 8})
			if err != nil {
				t.Fatalf("seed %d %s workers=8: %v", seed, name, err)
			}
			if seq.BestCost != par.BestCost {
				t.Errorf("seed %d %s: BestCost %v (1 worker) != %v (8 workers)",
					seed, name, seq.BestCost, par.BestCost)
			}
			if got, want := par.Best.Signature(), seq.Best.Signature(); got != want {
				t.Errorf("seed %d %s: best signature diverged\n workers=1: %s\n workers=8: %s",
					seed, name, want, got)
			}
			if seq.Visited != par.Visited || seq.Generated != par.Generated {
				t.Errorf("seed %d %s: stats diverged: (%d,%d) vs (%d,%d)",
					seed, name, seq.Visited, seq.Generated, par.Visited, par.Generated)
			}
		}
	}
}

// TestSearchCancellation verifies that a cancelled context aborts every
// algorithm with ctx.Err() rather than a partial result.
func TestSearchCancellation(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Large, 5))
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]func(context.Context, *workflow.Graph, Options) (*Result, error){
		"ES":        Exhaustive,
		"HS":        Heuristic,
		"HS-Greedy": HSGreedy,
	}
	for name, algo := range algos {
		t.Run(name+"/pre-cancelled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := algo(ctx, sc.Graph, Options{IncrementalCost: true})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Error("cancelled run should not return a result")
			}
		})
		t.Run(name+"/deadline", func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := algo(ctx, sc.Graph, Options{IncrementalCost: true})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			// The search must notice the expiry at the next expansion
			// boundary, not finish its full run.
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Errorf("cancellation ignored for %v", elapsed)
			}
		})
	}
}

// TestVisitedSet covers the striped set directly.
func TestVisitedSet(t *testing.T) {
	v := newVisitedSet()
	if v.Contains("a") {
		t.Error("empty set contains a")
	}
	if !v.Add("a") {
		t.Error("first Add(a) should report new")
	}
	if v.Add("a") {
		t.Error("second Add(a) should report duplicate")
	}
	if !v.Contains("a") {
		t.Error("set should contain a after Add")
	}
	for _, sig := range []string{"b", "c", "d", "1.2.3", "1.3.2"} {
		v.Add(sig)
	}
	if got := v.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
}

// TestPoolCoversAllItems checks the pool's claiming loop visits every
// index exactly once at several worker counts.
func TestPoolCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := newPool(workers)
		const n = 100
		hits := make([]int, n)
		p.run(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, h)
			}
		}
	}
}
