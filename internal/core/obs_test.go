package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// TestMetricsDoNotAffectSearch is the obs determinism guard: collection
// must never feed back into search ordering. Every algorithm, at several
// worker widths, must produce bit-identical signatures, costs and search
// statistics with metrics enabled and disabled.
func TestMetricsDoNotAffectSearch(t *testing.T) {
	ctx := context.Background()
	algos := map[string]func(context.Context, *workflow.Graph, Options) (*Result, error){
		"ES":        Exhaustive,
		"HS":        Heuristic,
		"HS-Greedy": HSGreedy,
	}
	for _, seed := range []int64{9100, 9101} {
		sc, err := generator.Generate(generator.CategoryConfig(generator.Small, seed))
		if err != nil {
			t.Fatal(err)
		}
		for name, algo := range algos {
			for _, workers := range []int{1, 2, 4} {
				base := Options{IncrementalCost: true, MaxStates: 3000, Workers: workers}
				off, err := algo(ctx, sc.Graph, base)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d metrics off: %v", seed, name, workers, err)
				}
				withM := base
				withM.Metrics = obs.NewRegistry()
				on, err := algo(ctx, sc.Graph, withM)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d metrics on: %v", seed, name, workers, err)
				}
				if off.BestCost != on.BestCost {
					t.Errorf("seed %d %s workers=%d: BestCost %v (off) != %v (on)",
						seed, name, workers, off.BestCost, on.BestCost)
				}
				if got, want := on.Best.Signature(), off.Best.Signature(); got != want {
					t.Errorf("seed %d %s workers=%d: signature diverged\n off: %s\n on:  %s",
						seed, name, workers, want, got)
				}
				if off.Visited != on.Visited || off.Generated != on.Generated {
					t.Errorf("seed %d %s workers=%d: stats diverged: (%d,%d) vs (%d,%d)",
						seed, name, workers, off.Visited, off.Generated, on.Visited, on.Generated)
				}
				// The exported counters must agree with the Result they
				// describe.
				snap := withM.Metrics.Snapshot()
				if v, _ := snap.CounterValue("search_states_generated_total"); v != int64(on.Generated) {
					t.Errorf("seed %d %s workers=%d: generated series %d != Result.Generated %d",
						seed, name, workers, v, on.Generated)
				}
				if v, _ := snap.CounterValue("search_states_visited_total"); v != int64(on.Visited) {
					t.Errorf("seed %d %s workers=%d: visited series %d != Result.Visited %d",
						seed, name, workers, v, on.Visited)
				}
			}
		}
	}
}

// TestMetricsSeriesDeterministic pins the counter *values* themselves
// across worker widths: the same search must export identical attempt,
// accept and state counts no matter how many goroutines ran it.
func TestMetricsSeriesDeterministic(t *testing.T) {
	ctx := context.Background()
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 9102))
	if err != nil {
		t.Fatal(err)
	}
	counters := func(workers int) map[string]int64 {
		reg := obs.NewRegistry()
		_, err := Heuristic(ctx, sc.Graph, Options{
			IncrementalCost: true, MaxStates: 3000, Workers: workers, Metrics: reg,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := map[string]int64{}
		for _, c := range reg.Snapshot().Counters {
			if strings.HasPrefix(c.Series, "search_") {
				out[c.Series] = c.Value
			}
		}
		return out
	}
	seq := counters(1)
	par := counters(4)
	for series, want := range seq {
		if got := par[series]; got != want {
			t.Errorf("%s: %d (1 worker) != %d (4 workers)", series, want, got)
		}
	}
	if len(par) != len(seq) {
		t.Errorf("series sets diverged: %d vs %d", len(seq), len(par))
	}
}

// TestPathStepCountersMatchTrace is the ISSUE's acceptance invariant: on a
// full HS run over a medium scenario with tracing on, the exported
// per-transition-kind path-step counts must sum exactly to the length of
// the structured trace in Result.Steps.
func TestPathStepCountersMatchTrace(t *testing.T) {
	ctx := context.Background()
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 20050405))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := Heuristic(ctx, sc.Graph, Options{
		IncrementalCost: true, Trace: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("medium HS run recorded no trace steps; test needs a non-trivial path")
	}
	snap := reg.Snapshot()
	perOp := map[string]int64{}
	var sum int64
	for _, op := range opNames {
		v, ok := snap.CounterValue(`search_path_steps_total{op="` + op + `"}`)
		if !ok {
			t.Fatalf("snapshot missing path-step series for %s", op)
		}
		perOp[op] = v
		sum += v
	}
	if sum != int64(len(res.Steps)) {
		t.Fatalf("path-step counters sum to %d (%v), trace length is %d",
			sum, perOp, len(res.Steps))
	}
	// Cross-check per kind against the trace itself.
	fromTrace := map[string]int64{}
	for _, st := range res.Steps {
		fromTrace[st.Op]++
	}
	for op, want := range fromTrace {
		if perOp[op] != want {
			t.Errorf("op %s: counter %d, trace has %d", op, perOp[op], want)
		}
	}
	// The snapshot also carries the live gauges with final values.
	if v, ok := snap.GaugeValue("search_best_cost"); !ok || v != res.BestCost {
		t.Errorf("search_best_cost = %v, %v; want %v", v, ok, res.BestCost)
	}
	if v, ok := snap.GaugeValue("search_initial_cost"); !ok || v != res.InitialCost {
		t.Errorf("search_initial_cost = %v, %v; want %v", v, ok, res.InitialCost)
	}
}

// TestProgressLine exercises Options.Progress: the periodic reporter must
// emit at least the final line, and must not require a caller-supplied
// registry.
func TestProgressLine(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Small, 9103))
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	res, err := Heuristic(context.Background(), sc.Graph, Options{
		IncrementalCost: true, Progress: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[HS]") || !strings.Contains(out, "states") {
		t.Fatalf("progress output missing expected fields: %q", out)
	}
	if res.Best == nil {
		t.Fatal("search with progress enabled returned no result")
	}
}

// syncBuffer is a mutex-guarded string buffer: the progress emitter writes
// from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
