package core

import (
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// TraceStep records one applied transition on the derivation path from
// the initial state to the best state. Steps are recorded only when
// Options.Trace is set; with tracing disabled the search allocates
// nothing for them.
type TraceStep struct {
	// Op is the transition mnemonic: SWA, FAC, DIS, MER or SPL.
	Op string `json:"op"`
	// Args are the node IDs the transition was invoked with, in call
	// order (see transitions.Applied). Node IDs are deterministic, so an
	// auditor can replay the step against a reconstruction of the
	// initial workflow.
	Args []workflow.NodeID `json:"args"`
	// Desc is the paper-notation description, e.g. "SWA(5,6)".
	Desc string `json:"desc"`
	// Sig is the signature of the state after applying this step. It is
	// empty for transient intermediate states the search never
	// materialized (the swaps inside a Phase II/III shift, whose graphs
	// are not retained).
	Sig string `json:"sig,omitempty"`
	// Cost is the state's total cost after this step, valid only when
	// Costed is true — i.e. the search actually evaluated this exact
	// state. Shift intermediates and post-processing splits are never
	// costed (MER/SPL do not change a state's cost).
	Cost   float64 `json:"cost,omitempty"`
	Costed bool    `json:"costed,omitempty"`
}

// stepOf converts a structural transition record into a trace step.
func stepOf(a transitions.Applied, sig string, cost float64, costed bool) TraceStep {
	return TraceStep{Op: a.Op, Args: a.ArgIDs(), Desc: a.Desc, Sig: sig, Cost: cost, Costed: costed}
}

// appendStep returns a copy of parent extended with one step. The copy is
// exact-capacity so sibling states never share a growable tail.
func appendStep(parent []TraceStep, step TraceStep) []TraceStep {
	out := make([]TraceStep, len(parent), len(parent)+1)
	copy(out, parent)
	return append(out, step)
}
