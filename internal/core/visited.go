package core

import "sync"

// visitedStripes is the number of independently locked shards of the
// visited set. 64 stripes keep contention negligible for any realistic
// worker count while the per-stripe maps stay dense.
const visitedStripes = 64

// visitedSet is the signature-keyed duplicate-state detector of §4.1,
// sharded across mutex-striped maps so concurrent workers can consult it
// without serializing on one lock. Workers use the read path (Contains)
// to skip costing states the search has already generated; the
// authoritative write path (Add) stays on the single reducer goroutine,
// which is what keeps admission — and therefore the search result —
// deterministic regardless of worker count.
//
// The set also owns the search's signature interning table: every
// signature entering the search (spliced or fully rendered) is first
// canonicalized through Intern, so the strings stored here, carried by
// states, compared by the heap tie-break and recorded in traces are the
// same instances. Map probes on interned keys then short-circuit on
// pointer equality inside the runtime's string comparison instead of
// walking the bytes of two equal signatures.
type visitedSet struct {
	stripes [visitedStripes]struct {
		mu sync.RWMutex
		m  map[string]struct{}
	}
	intern [visitedStripes]struct {
		mu sync.RWMutex
		m  map[string]string
	}
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.stripes {
		v.stripes[i].m = make(map[string]struct{})
		v.intern[i].m = make(map[string]string)
	}
	return v
}

// Intern returns the canonical instance of sig, registering sig itself on
// first sight. Safe for concurrent use; the read path takes only an
// RLock, so workers interning mostly-known signatures do not serialize.
func (v *visitedSet) Intern(sig string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= prime64
	}
	s := &v.intern[h%visitedStripes]
	s.mu.RLock()
	c, ok := s.m[sig]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	if c, ok = s.m[sig]; !ok {
		s.m[sig] = sig
		c = sig
	}
	s.mu.Unlock()
	return c
}

// stripeFor hashes a signature to its shard (FNV-1a).
func (v *visitedSet) stripeFor(sig string) *struct {
	mu sync.RWMutex
	m  map[string]struct{}
} {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sig); i++ {
		h ^= uint64(sig[i])
		h *= prime64
	}
	return &v.stripes[h%visitedStripes]
}

// Contains reports whether the signature was already admitted. Safe for
// concurrent use with Add; a racing reader may miss an in-flight Add,
// which only costs a speculative evaluation, never correctness.
func (v *visitedSet) Contains(sig string) bool {
	s := v.stripeFor(sig)
	s.mu.RLock()
	_, ok := s.m[sig]
	s.mu.RUnlock()
	return ok
}

// Add inserts the signature, reporting true when it was not yet present.
func (v *visitedSet) Add(sig string) bool {
	s := v.stripeFor(sig)
	s.mu.Lock()
	_, ok := s.m[sig]
	if !ok {
		s.m[sig] = struct{}{}
	}
	s.mu.Unlock()
	return !ok
}

// Len returns the number of distinct signatures admitted.
func (v *visitedSet) Len() int {
	n := 0
	for i := range v.stripes {
		v.stripes[i].mu.RLock()
		n += len(v.stripes[i].m)
		v.stripes[i].mu.RUnlock()
	}
	return n
}
