package core

import (
	"fmt"
	"time"

	"etlopt/internal/cost"
	"etlopt/internal/obs"
)

// opNames are the five transition mnemonics, in the paper's order. They
// index the per-kind counter arrays of searchMetrics.
var opNames = [...]string{"SWA", "FAC", "DIS", "MER", "SPL"}

// opIndex maps a transition mnemonic to its opNames slot; -1 when unknown.
func opIndex(op string) int {
	for i, n := range opNames {
		if n == op {
			return i
		}
	}
	return -1
}

// searchMetrics holds the instrument handles of one search. It is always
// allocated — with a nil Options.Metrics registry every handle is nil and
// every record call below degrades to a single nil check, which is what
// keeps the disabled search within the ISSUE's <2% overhead budget.
//
// All handles are write-only from the search's point of view: nothing in
// the search ever reads an instrument back, so collection cannot perturb
// exploration order and the parallel-determinism contract survives intact
// (pinned by TestMetricsDoNotAffectSearch).
type searchMetrics struct {
	reg *obs.Registry
	// j, when non-nil, is the flight recorder receiving per-event records
	// (transition attempts/accepts/prunes, phase boundaries, cache
	// lookups). Like the instrument handles, it is write-only and nil-safe:
	// with Options.Journal unset every emission degrades to one nil check
	// and event structs are never even constructed.
	j *obs.Journal

	generated  *obs.Counter // search_states_generated_total: admission attempts incl. duplicates
	visited    *obs.Counter // search_states_visited_total: distinct admitted states
	deduped    *obs.Counter // search_states_deduped_total: duplicate hits rejected by the visited set
	shiftSwaps *obs.Counter // search_shift_swaps_total: intermediate SWA states inside Phase II/III shifts

	attempts  [len(opNames)]*obs.Counter // search_transition_attempts_total{op}
	accepts   [len(opNames)]*obs.Counter // search_transition_accepts_total{op}
	pathSteps [len(opNames)]*obs.Counter // search_path_steps_total{op}: steps on the winning derivation path

	frontier    *obs.Gauge // search_frontier_size: ES heap / HS Phase III worklist length
	bestCost    *obs.Gauge // search_best_cost: live C(S_MIN)
	initialCost *obs.Gauge // search_initial_cost: C(S0)

	workerBusy []*obs.Gauge // search_worker_busy_seconds{worker}: per-worker pool time

	// Expansion-cache effectiveness. These live outside the search_*
	// namespace on purpose: hit/miss splits depend on worker timing
	// (concurrent misses on one key each count), so they are exempt from
	// the worker-invariance contract that TestMetricsSeriesDeterministic
	// enforces over every search_* series — while the search *results*
	// stay bit-identical because cached values are canonical.
	expandHits  *obs.Counter // expand_cache_hits_total: transposition-cache hits
	expandMiss  *obs.Counter // expand_cache_misses_total
	expandEvict *obs.Counter // expand_cache_evictions_total: FIFO ring overwrites
	memoHits    *obs.Counter // expand_cost_memo_hits_total: per-activity cost memo hits
	memoMiss    *obs.Counter // expand_cost_memo_misses_total
}

// newSearchMetrics builds the handle set against a registry (nil registry
// → all-nil handles). Series are registered eagerly so a snapshot taken
// after any run carries the full schema, zeros included — consumers like
// `etlvet metrics` can then assert on series presence.
func newSearchMetrics(r *obs.Registry, j *obs.Journal, workers int) *searchMetrics {
	m := &searchMetrics{
		reg:         r,
		j:           j,
		generated:   r.Counter("search_states_generated_total"),
		visited:     r.Counter("search_states_visited_total"),
		deduped:     r.Counter("search_states_deduped_total"),
		shiftSwaps:  r.Counter("search_shift_swaps_total"),
		frontier:    r.Gauge("search_frontier_size"),
		bestCost:    r.Gauge("search_best_cost"),
		initialCost: r.Gauge("search_initial_cost"),
		expandHits:  r.Counter("expand_cache_hits_total"),
		expandMiss:  r.Counter("expand_cache_misses_total"),
		expandEvict: r.Counter("expand_cache_evictions_total"),
		memoHits:    r.Counter("expand_cost_memo_hits_total"),
		memoMiss:    r.Counter("expand_cost_memo_misses_total"),
	}
	for i, op := range opNames {
		m.attempts[i] = r.Counter("search_transition_attempts_total", "op", op)
		m.accepts[i] = r.Counter("search_transition_accepts_total", "op", op)
		m.pathSteps[i] = r.Counter("search_path_steps_total", "op", op)
	}
	if r != nil {
		m.workerBusy = make([]*obs.Gauge, workers)
		for w := range m.workerBusy {
			m.workerBusy[w] = r.Gauge("search_worker_busy_seconds", "worker", fmt.Sprintf("%d", w))
		}
	}
	return m
}

// attempt records a transition application attempt of the given kind.
func (m *searchMetrics) attempt(op string) {
	if i := opIndex(op); i >= 0 {
		m.attempts[i].Inc()
	}
	if m.j != nil {
		m.j.Emit(obs.TransitionEvent(op, "attempt", 0))
	}
}

// accept records an admitted (non-duplicate) state reached by the kind.
func (m *searchMetrics) accept(op string) {
	if i := opIndex(op); i >= 0 {
		m.accepts[i].Inc()
	}
	if m.j != nil {
		m.j.Emit(obs.TransitionEvent(op, "accept", 0))
	}
}

// prune records a generated state of the given kind rejected by the
// visited set. The deduped counter is already bumped inside admit — this
// only journals the event, with the transition kind admit cannot know.
func (m *searchMetrics) prune(op string) {
	if m.j != nil {
		m.j.Emit(obs.TransitionEvent(op, "prune", 0))
	}
}

// best records a new minimum-cost state reached by the given kind ("" when
// the winning transition is not singular, e.g. a replayed swap sequence).
func (m *searchMetrics) best(op string, cost float64) {
	if m.j != nil {
		m.j.Emit(obs.TransitionEvent(op, "best", cost))
	}
}

// cacheLookup records one expansion-cache probe. Safe from worker
// goroutines (the journal is concurrency-safe); the aggregate hit/miss
// counters flush separately in flushCacheMetrics.
func (m *searchMetrics) cacheLookup(hit bool) {
	if m.j != nil {
		m.j.Emit(obs.CacheEvent("expand", hit))
	}
}

// noopEnd is the shared zero-cost closure phase returns when journaling is
// off, so disabled phases allocate nothing.
var noopEnd = func() {}

// phase journals a phase boundary: it emits the start event and returns
// the closure that emits the matching end event.
func (m *searchMetrics) phase(name string) func() {
	if m.j == nil {
		return noopEnd
	}
	m.j.Emit(obs.PhaseEvent(name, "start"))
	return func() { m.j.Emit(obs.PhaseEvent(name, "end")) }
}

// runEvent journals a run boundary ("start"/"end") for the named algorithm.
func (m *searchMetrics) runEvent(action, alg string) {
	if m.j != nil {
		m.j.Emit(obs.RunEvent(action, "search/"+alg))
	}
}

// recordPath tallies the winning derivation path into the per-kind
// path-step counters. Their sum equals len(steps) exactly — the snapshot
// invariant checked against Options.Trace by the acceptance tests.
func (m *searchMetrics) recordPath(steps []TraceStep) {
	for _, st := range steps {
		if i := opIndex(st.Op); i >= 0 {
			m.pathSteps[i].Inc()
		}
	}
}

// busyHook returns the pool's per-worker utilization callback, or nil when
// metrics are disabled (so the pool skips clock reads entirely).
func (m *searchMetrics) busyHook() func(worker int, d time.Duration) {
	if m.reg == nil {
		return nil
	}
	return func(worker int, d time.Duration) {
		if worker < len(m.workerBusy) {
			m.workerBusy[worker].Add(d.Seconds())
		}
	}
}

// flushCacheMetrics publishes the expansion caches' cumulative counters
// into the expand_* series. It runs once per search, at result assembly —
// the caches are write-hot, so they count in local atomics and export at
// the end rather than bumping registry counters per lookup.
func (s *search) flushCacheMetrics() {
	if s.xcache != nil {
		h, m, e := s.xcache.stats()
		s.m.expandHits.Add(h)
		s.m.expandMiss.Add(m)
		s.m.expandEvict.Add(e)
	}
	if memo, ok := s.model.(*cost.Memo); ok {
		h, m := memo.Stats()
		s.m.memoHits.Add(h)
		s.m.memoMiss.Add(m)
	}
}

// startProgress begins the periodic progress line for long searches:
// states generated per second, frontier size, current best cost and an
// ETA against the state budget. It reads only atomic instruments — never
// the search's own unsynchronized counters — so it can run concurrently
// with the algorithm goroutine. The returned stop emits one final line.
func (s *search) startProgress(alg string) {
	if s.opts.Progress == nil {
		return
	}
	interval := s.opts.ProgressInterval
	if interval <= 0 {
		interval = time.Second
	}
	begin := time.Now()
	m := s.m
	budget := s.opts.MaxStates
	s.stopProgress = obs.StartProgress(s.opts.Progress, interval, func() string {
		elapsed := time.Since(begin).Seconds()
		gen := m.generated.Value()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(gen) / elapsed
		}
		eta := "-"
		if rate > 0 && gen < int64(budget) {
			eta = (time.Duration(float64(int64(budget)-gen) / rate * float64(time.Second))).Round(time.Second).String()
		}
		return fmt.Sprintf("[%s] %d states (%.0f/s) frontier=%.0f best=%.1f eta≤%s",
			alg, gen, rate, m.frontier.Value(), m.bestCost.Value(), eta)
	})
}

// close releases the search's run-scoped resources: the progress emitter
// (flushing a final line).
func (s *search) close() {
	if s.stopProgress != nil {
		s.stopProgress()
		s.stopProgress = nil
	}
}
