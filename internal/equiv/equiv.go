// Package equiv implements the correctness framework of §3.4: every
// activity carries a post-condition predicate over its functionality-schema
// variables, a workflow's post-condition is the conjunction of its
// activities' predicates in execution order, and two states are equivalent
// when (a) the schema propagated to each target recordset is identical and
// (b) their post-conditions are equivalent.
//
// Alongside this symbolic ("black-box") check the package provides the
// empirical oracle: execute both workflows on the same input and compare
// the record multisets loaded into each target — "based on the same input,
// produce the same output" (§2.2).
package equiv

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/workflow"
)

// Condition builds the workflow post-condition Cond_G (§3.4): the
// conjunction of node post-conditions arranged in execution order. Source
// recordsets contribute their schema predicate (e.g.
// PARTS1(PKEY,SOURCE,DATE,COST)), activities their semantics predicate
// over functionality-schema variables, and target recordsets their schema
// predicate.
func Condition(g *workflow.Graph) (string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return "", err
	}
	var parts []string
	for _, id := range order {
		parts = append(parts, nodePredicate(g.Node(id)))
	}
	return strings.Join(parts, " ∧ "), nil
}

// nodePredicate renders one node's post-condition.
func nodePredicate(n *workflow.Node) string {
	if n.Kind == workflow.KindRecordset {
		return fmt.Sprintf("%s(%s)", n.RS.Name, n.RS.Schema)
	}
	return n.Act.Predicate()
}

// predicateMultiset collects the multiset of atomic predicates of a
// workflow: merged packages contribute each component separately, so MER
// and SPL preserve the multiset, and FAC/DIS contribute the factorized
// predicate once per occurrence — the conjunction p ∧ p is logically
// equivalent to p, so multiplicity of identical atoms is ignored by using
// a set per §3.4's conjunction semantics.
func predicateSet(g *workflow.Graph) (map[string]bool, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, id := range order {
		n := g.Node(id)
		if n.Kind == workflow.KindRecordset {
			set[nodePredicate(n)] = true
			continue
		}
		for _, p := range atomicPredicates(n.Act) {
			set[p] = true
		}
	}
	return set, nil
}

// atomicPredicates expands an activity into its atomic post-conditions.
func atomicPredicates(a *workflow.Activity) []string {
	if a.Sem.Op == workflow.OpMerged {
		var out []string
		for _, comp := range a.Sem.Components {
			out = append(out, atomicPredicates(comp)...)
		}
		return out
	}
	return []string{a.Sem.String()}
}

// Equivalent implements the symbolic equivalence check of §3.4: two states
// are equivalent when the schema of the data propagated to each target
// recordset is identical and their workflow post-conditions are
// equivalent. Post-condition equivalence reduces to equality of the atomic
// predicate sets, since conjunction is commutative, associative and
// idempotent.
func Equivalent(g1, g2 *workflow.Graph) (bool, string, error) {
	// (a) Target schemata.
	t1, err := targetSchemas(g1)
	if err != nil {
		return false, "", err
	}
	t2, err := targetSchemas(g2)
	if err != nil {
		return false, "", err
	}
	if len(t1) != len(t2) {
		return false, fmt.Sprintf("different target counts: %d vs %d", len(t1), len(t2)), nil
	}
	for _, name := range sortedKeys(t1) {
		s1 := t1[name]
		s2, ok := t2[name]
		if !ok {
			return false, fmt.Sprintf("target %s missing from second workflow", name), nil
		}
		if !s1.SameSet(s2) {
			return false, fmt.Sprintf("target %s schemas differ: {%s} vs {%s}", name, s1, s2), nil
		}
	}
	// (b) Post-conditions.
	p1, err := predicateSet(g1)
	if err != nil {
		return false, "", err
	}
	p2, err := predicateSet(g2)
	if err != nil {
		return false, "", err
	}
	if diff := setDiff(p1, p2); diff != "" {
		return false, "post-conditions differ: " + diff, nil
	}
	return true, "", nil
}

// targetSchemas maps each target recordset name to the schema its provider
// delivers.
func targetSchemas(g *workflow.Graph) (map[string]data.Schema, error) {
	out := make(map[string]data.Schema)
	for _, id := range g.Targets() {
		n := g.Node(id)
		if len(n.In) == 1 {
			out[n.RS.Name] = n.In[0]
		} else {
			out[n.RS.Name] = n.RS.Schema
		}
	}
	return out, nil
}

// sortedKeys returns a map's keys in sorted order, so diagnostics that
// report the first mismatching target are deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// setDiff describes the symmetric difference of two predicate sets, or ""
// when equal.
func setDiff(a, b map[string]bool) string {
	var only1, only2 []string
	for p := range a {
		if !b[p] {
			only1 = append(only1, p)
		}
	}
	for p := range b {
		if !a[p] {
			only2 = append(only2, p)
		}
	}
	if len(only1) == 0 && len(only2) == 0 {
		return ""
	}
	sort.Strings(only1)
	sort.Strings(only2)
	return fmt.Sprintf("only in first: %v; only in second: %v", only1, only2)
}

// VerifyEmpirical executes both workflows on the same bindings and reports
// whether every target receives the same record multiset — the operational
// definition of equivalent states (§2.2). Targets are compared by name; a
// non-nil error means an execution failed, while ok=false with a diff
// means both ran and disagreed.
//
// The second workflow is additionally executed in partition-parallel mode
// (P=4) and held to the engine's stronger contract: bit-identical target
// rows — same order, same values — against its own materialized run. This
// folds the parallel engine into every empirical equivalence check the
// test suite performs.
func VerifyEmpirical(g1, g2 *workflow.Graph, bindings map[string]data.Recordset) (bool, string, error) {
	e := engine.New(bindings)
	r1, err := e.Run(context.Background(), g1)
	if err != nil {
		return false, "", fmt.Errorf("equiv: running first workflow: %w", err)
	}
	r2, err := e.Run(context.Background(), g2)
	if err != nil {
		return false, "", fmt.Errorf("equiv: running second workflow: %w", err)
	}
	if len(r1.Targets) != len(r2.Targets) {
		return false, fmt.Sprintf("different target sets: %v vs %v", r1.SortTargets(), r2.SortTargets()), nil
	}
	for _, name := range sortedKeys(r1.Targets) {
		rows1 := r1.Targets[name]
		rows2, ok := r2.Targets[name]
		if !ok {
			return false, fmt.Sprintf("target %s missing from second run", name), nil
		}
		if !rows1.EqualMultiset(rows2) {
			diffs := rows1.DiffMultiset(rows2, 5)
			return false, fmt.Sprintf("target %s differs (%d vs %d rows): %s",
				name, len(rows1), len(rows2), strings.Join(diffs, "; ")), nil
		}
	}
	ep := engine.New(bindings, engine.WithMode(engine.Parallel), engine.WithPartitions(4))
	rp, err := ep.Run(context.Background(), g2)
	if err != nil {
		return false, "", fmt.Errorf("equiv: running second workflow in parallel mode: %w", err)
	}
	for _, name := range sortedKeys(r2.Targets) {
		if diff := identicalDiff(r2.Targets[name], rp.Targets[name]); diff != "" {
			return false, fmt.Sprintf("target %s: parallel run not bit-identical to materialized: %s",
				name, diff), nil
		}
	}
	return true, "", nil
}

// identicalDiff describes the first divergence between two row slices
// under bit-identity (order-sensitive), or "" when identical. Both slices
// come straight from in-process engine runs, so the canonical typed digest
// is sound here: equal digests prove identity in one pass, and the per-row
// key scan only runs to describe a divergence.
func identicalDiff(a, b data.Rows) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d rows", len(a), len(b))
	}
	if a.Digest() == b.Digest() {
		return ""
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return fmt.Sprintf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	return ""
}
