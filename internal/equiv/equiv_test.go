package equiv

import (
	"math/rand"
	"strings"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/templates"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

func TestConditionFig1(t *testing.T) {
	g := templates.Fig1Workflow()
	cond, err := Condition(g)
	if err != nil {
		t.Fatal(err)
	}
	// The workflow post-condition is the conjunction of all node
	// predicates in execution order (§3.4) — the paper's Cond_G for
	// Fig. 1 lists the recordsets, NN, $2€, A2E, γ_SUM, U and σ.
	for _, want := range []string{
		"PARTS1(PKEY,SOURCE,DATE,ECOST)",
		"PARTS2(PKEY,SOURCE,DATE,DEPT,DCOST)",
		"notnull(ECOST)",
		"dollar2euro(DCOST->ECOST_D!)",
		"a2edate(DATE->DATE)",
		"aggregate([PKEY,SOURCE,DATE];sum(ECOST_D)->ECOST)",
		"union()",
		"filter((ECOST>=100))",
		"DW.PARTS(PKEY,SOURCE,DATE,ECOST)",
	} {
		if !strings.Contains(cond, want) {
			t.Errorf("Cond_G missing %q:\n%s", want, cond)
		}
	}
	if !strings.Contains(cond, " ∧ ") {
		t.Error("Cond_G should be a conjunction")
	}
}

func TestEquivalentReflexive(t *testing.T) {
	g := templates.Fig1Workflow()
	ok, why, err := Equivalent(g, g.Clone())
	if err != nil || !ok {
		t.Errorf("workflow should be equivalent to its clone: %v %v", why, err)
	}
}

func TestEquivalentAfterTransitions(t *testing.T) {
	// Apply a chain of transitions and verify symbolic equivalence holds
	// at every step.
	g := templates.Fig1Workflow()
	groups := g.LocalGroups()
	var pair [2]workflow.NodeID
	found := false
	for _, grp := range groups {
		for i := 0; i+1 < len(grp); i++ {
			if _, err := transitions.Swap(g, grp[i], grp[i+1]); err == nil {
				pair = [2]workflow.NodeID{grp[i], grp[i+1]}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no legal swap in Fig. 1")
	}
	res, err := transitions.Swap(g, pair[0], pair[1])
	if err != nil {
		t.Fatal(err)
	}
	ok, why, err := Equivalent(g, res.Graph)
	if err != nil || !ok {
		t.Errorf("swap broke symbolic equivalence: %v %v", why, err)
	}
}

func TestNotEquivalentDifferentPredicates(t *testing.T) {
	g1 := templates.Fig1Workflow()
	g2 := templates.Fig1Workflow()
	// Drop the selection from g2: post-conditions differ.
	var sigma workflow.NodeID
	for _, id := range g2.Activities() {
		if g2.Node(id).Act.Sem.Op == workflow.OpFilter {
			sigma = id
		}
	}
	p := g2.Providers(sigma)[0]
	c := g2.Consumers(sigma)[0]
	g2.MustReplaceProvider(c, sigma, p)
	g2.RemoveNode(sigma)
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	ok, why, _ := Equivalent(g1, g2)
	if ok {
		t.Error("dropping a filter should break equivalence")
	}
	if !strings.Contains(why, "post-conditions differ") {
		t.Errorf("reason should cite post-conditions: %s", why)
	}
}

func TestNotEquivalentDifferentTargetSchema(t *testing.T) {
	g1 := templates.Fig1Workflow()
	g2 := templates.Fig1Workflow()
	for _, id := range g2.Targets() {
		g2.Node(id).RS.Schema = append(g2.Node(id).RS.Schema, "EXTRA")
	}
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	ok, why, _ := Equivalent(g1, g2)
	if ok {
		t.Errorf("different target schemas should not be equivalent: %s", why)
	}
}

func TestVerifyEmpiricalFig1(t *testing.T) {
	sc := templates.Fig1Scenario(100, 300)
	ok, diff, err := VerifyEmpirical(sc.Graph, sc.Graph.Clone(), sc.Bind())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("identical workflows disagree empirically: %s", diff)
	}
}

func TestVerifyEmpiricalDetectsDifference(t *testing.T) {
	sc := templates.Fig1Scenario(100, 300)
	g2 := sc.Graph.Clone()
	// Weaken the threshold in the clone. Graph clones share activity
	// structure, so follow the clone-before-mutate discipline: replace the
	// node's activity with an edited copy instead of editing in place.
	for _, id := range g2.Activities() {
		n := g2.Node(id)
		if n.Act.Sem.Op == workflow.OpFilter {
			edited := n.Act.Clone()
			edited.Sem.Pred = templates.Threshold("ECOST", 0, 1).Sem.Pred
			n.Act = edited
		}
	}
	ok, diff, err := VerifyEmpirical(sc.Graph, g2, sc.Bind())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("weakened filter should change the output")
	}
	if diff == "" {
		t.Error("difference description should not be empty")
	}
}

// TestTransitionsPreserveOutputs is the central correctness property
// (Theorem 2, empirically): starting from generated executable workflows,
// every legal transition the search would take produces a state that loads
// exactly the same records into every target.
func TestTransitionsPreserveOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 4; seed++ {
		cfg := generator.CategoryConfig(generator.Small, 1000+seed)
		cfg.DataRows = 60
		sc, err := generator.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := sc.Graph
		bindings := sc.Bind()
		// Walk a random chain of legal transitions, checking empirical
		// equivalence against the ORIGINAL state at every step.
		for step := 0; step < 6; step++ {
			var candidates []*transitions.Result
			for _, grp := range cur.LocalGroups() {
				for i := 0; i+1 < len(grp); i++ {
					if res, err := transitions.Swap(cur, grp[i], grp[i+1]); err == nil {
						candidates = append(candidates, res)
					}
				}
			}
			for _, hp := range cur.FindHomologousPairs() {
				if len(cur.Consumers(hp.A)) == 1 && cur.Consumers(hp.A)[0] == hp.Binary &&
					len(cur.Consumers(hp.B)) == 1 && cur.Consumers(hp.B)[0] == hp.Binary {
					if res, err := transitions.Factorize(cur, hp.Binary, hp.A, hp.B); err == nil {
						candidates = append(candidates, res)
					}
				}
			}
			for _, da := range cur.FindDistributableActivities() {
				if len(cur.Providers(da.Activity)) == 1 && cur.Providers(da.Activity)[0] == da.Binary {
					if res, err := transitions.Distribute(cur, da.Binary, da.Activity); err == nil {
						candidates = append(candidates, res)
					}
				}
			}
			// Merges too: package a random adjacent pair.
			for _, grp := range cur.LocalGroups() {
				for i := 0; i+1 < len(grp); i++ {
					if res, err := transitions.Merge(cur, grp[i], grp[i+1]); err == nil {
						candidates = append(candidates, res)
					}
				}
			}
			if len(candidates) == 0 {
				break
			}
			pick := candidates[rng.Intn(len(candidates))]
			ok, diff, err := VerifyEmpirical(sc.Graph, pick.Graph, bindings)
			if err != nil {
				t.Fatalf("seed %d step %d (%s): %v", seed, step, pick.Description, err)
			}
			if !ok {
				t.Fatalf("seed %d step %d: transition %s changed the output: %s",
					seed, step, pick.Description, diff)
			}
			cur = pick.Graph
		}
	}
}

// TestRejectedSwapsWouldChangeOutputs sharpens the guards' value: for the
// canonical rejection cases, force the illegal rewrite anyway and verify
// the output really would change — i.e. the rules are not merely
// conservative in these instances.
func TestRejectedSwapsWouldChangeOutputs(t *testing.T) {
	sc := templates.Fig1Scenario(100, 300)
	g := sc.Graph
	// σ(ECOST≥100) before the aggregation: force the rewrite by hand.
	var sigma, agg workflow.NodeID
	for _, id := range g.Activities() {
		switch g.Node(id).Act.Sem.Op {
		case workflow.OpFilter:
			sigma = id
		case workflow.OpAggregate:
			agg = id
		}
	}
	_ = sigma
	// Build an illegal variant: copy the filter to just below $2€ in
	// branch 2 and remove the post-union occurrence, re-keyed to the
	// daily euro cost attribute so the graph still type-checks.
	bad := g.Clone()
	ill := templates.Threshold("ECOST_D", 100, 0.5)
	id := bad.AddActivity(ill)
	p := bad.Providers(agg)[0] // A2E
	bad.MustReplaceProvider(agg, p, id)
	bad.MustAddEdge(p, id)
	// Remove the original filter.
	fp := bad.Providers(sigma)[0]
	fc := bad.Consumers(sigma)[0]
	bad.MustReplaceProvider(fc, sigma, fp)
	bad.RemoveNode(sigma)
	if err := bad.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	ok, _, err := VerifyEmpirical(g, bad, sc.Bind())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pushing the Euro threshold below the aggregation should change results; the swap guard is load-bearing")
	}
}
