package algebra

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"etlopt/internal/data"
)

var testSchema = data.Schema{"A", "B", "S"}

func rec(a, b int64, s string) data.Record {
	return data.Record{data.NewInt(a), data.NewInt(b), data.NewString(s)}
}

func mustEval(t *testing.T, e Expr, r data.Record) data.Value {
	t.Helper()
	v, err := e.Eval(testSchema, r)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestAttrEval(t *testing.T) {
	v := mustEval(t, Attr{Name: "B"}, rec(1, 2, "x"))
	if v.Int() != 2 {
		t.Errorf("Attr B = %v", v)
	}
	if _, err := (Attr{Name: "Z"}).Eval(testSchema, rec(1, 2, "x")); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestCmpOperators(t *testing.T) {
	r := rec(5, 10, "x")
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{EQ, false}, {NE, true}, {LT, true}, {LE, true}, {GT, false}, {GE, false},
	}
	for _, c := range cases {
		e := Cmp{Op: c.op, Left: Attr{Name: "A"}, Right: Attr{Name: "B"}}
		if got := mustEval(t, e, r).Bool(); got != c.want {
			t.Errorf("5 %s 10 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestCmpNullSemantics(t *testing.T) {
	r := data.Record{data.Null, data.NewInt(1), data.NewString("")}
	// NULL comparisons reject (SQL-style), so a filter on a NULL attribute
	// drops the row — which is what makes σ and NN swappable.
	for _, op := range []CmpOp{EQ, LT, LE, GT, GE} {
		e := Cmp{Op: op, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(0)}}
		if mustEval(t, e, r).Bool() {
			t.Errorf("NULL %s 0 should be false", op)
		}
	}
	// NE with exactly one NULL side is true.
	e := Cmp{Op: NE, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(0)}}
	if !mustEval(t, e, r).Bool() {
		t.Error("NULL <> 0 should be true")
	}
}

func TestArith(t *testing.T) {
	r := rec(7, 2, "")
	cases := []struct {
		op   ArithOp
		want float64
	}{{Add, 9}, {Sub, 5}, {Mul, 14}, {Div, 3.5}}
	for _, c := range cases {
		e := Arith{Op: c.op, Left: Attr{Name: "A"}, Right: Attr{Name: "B"}}
		if got := mustEval(t, e, r).Float(); got != c.want {
			t.Errorf("7 %s 2 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestArithIntPreservation(t *testing.T) {
	e := Arith{Op: Add, Left: Const{Value: data.NewInt(1)}, Right: Const{Value: data.NewInt(2)}}
	v := mustEval(t, e, rec(0, 0, ""))
	if v.Kind() != data.KindInt {
		t.Errorf("int+int should stay int, got %v", v.Kind())
	}
	// Division always yields float.
	e = Arith{Op: Div, Left: Const{Value: data.NewInt(4)}, Right: Const{Value: data.NewInt(2)}}
	if v := mustEval(t, e, rec(0, 0, "")); v.Kind() != data.KindFloat {
		t.Errorf("int/int should be float, got %v", v.Kind())
	}
}

func TestDivisionByZero(t *testing.T) {
	e := Arith{Op: Div, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(0)}}
	if _, err := e.Eval(testSchema, rec(1, 0, "")); err == nil {
		t.Error("division by zero should error")
	}
}

func TestArithNullPropagation(t *testing.T) {
	r := data.Record{data.Null, data.NewInt(1), data.NewString("")}
	e := Arith{Op: Add, Left: Attr{Name: "A"}, Right: Attr{Name: "B"}}
	if !mustEval(t, e, r).IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// Right side would error (division by zero) if evaluated.
	boom := Cmp{Op: GT, Left: Arith{Op: Div, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(0)}}, Right: Const{Value: data.NewInt(0)}}
	falseLeft := Cmp{Op: GT, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(100)}}
	e := Logic{Op: And, Left: falseLeft, Right: boom}
	if mustEval(t, e, rec(1, 0, "")).Bool() {
		t.Error("false and X should be false")
	}
	trueLeft := Cmp{Op: LT, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(100)}}
	e2 := Logic{Op: Or, Left: trueLeft, Right: boom}
	if !mustEval(t, e2, rec(1, 0, "")).Bool() {
		t.Error("true or X should be true")
	}
}

func TestNotAndIsNull(t *testing.T) {
	r := data.Record{data.Null, data.NewInt(1), data.NewString("")}
	if !mustEval(t, IsNull{Inner: Attr{Name: "A"}}, r).Bool() {
		t.Error("isnull(NULL) = false")
	}
	if mustEval(t, IsNull{Inner: Attr{Name: "B"}}, r).Bool() {
		t.Error("isnull(1) = true")
	}
	e := Not{Inner: IsNull{Inner: Attr{Name: "A"}}}
	if mustEval(t, e, r).Bool() {
		t.Error("not(isnull(NULL)) = true")
	}
}

func TestCallEval(t *testing.T) {
	e := Call{Fn: "upper", Args: []Expr{Attr{Name: "S"}}}
	if got := mustEval(t, e, rec(0, 0, "abc")).Str(); got != "ABC" {
		t.Errorf("upper(abc) = %q", got)
	}
	bad := Call{Fn: "no_such_fn", Args: nil}
	if _, err := bad.Eval(testSchema, rec(0, 0, "")); err == nil {
		t.Error("unknown function should error")
	}
}

func TestAttrSetDedup(t *testing.T) {
	e := Logic{Op: And,
		Left:  Cmp{Op: GT, Left: Attr{Name: "A"}, Right: Attr{Name: "B"}},
		Right: Cmp{Op: LT, Left: Attr{Name: "A"}, Right: Const{Value: data.NewInt(9)}},
	}
	got := AttrSet(e)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("AttrSet = %v, want [A B]", got)
	}
}

func TestExprStringStable(t *testing.T) {
	e := Logic{Op: Or,
		Left:  Cmp{Op: GE, Left: Attr{Name: "A"}, Right: Const{Value: data.NewFloat(1.5)}},
		Right: Not{Inner: IsNull{Inner: Attr{Name: "S"}}},
	}
	want := "((A>=1.5) or not(isnull(S)))"
	if e.String() != want {
		t.Errorf("String = %q, want %q", e.String(), want)
	}
}

func TestConstStringQuoting(t *testing.T) {
	c := Const{Value: data.NewString("x")}
	if c.String() != "'x'" {
		t.Errorf("string const renders %q", c.String())
	}
	n := Const{Value: data.NewInt(7)}
	if n.String() != "7" {
		t.Errorf("int const renders %q", n.String())
	}
}

func TestFunctionsRegistry(t *testing.T) {
	names := FuncNames()
	for _, want := range []string{"dollar2euro", "a2edate", "upper", "monthof"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in %q missing from registry (have %v)", want, names)
		}
	}
	if !IsBijective("a2edate") || !IsBijective("dollar2euro") {
		t.Error("a2edate and dollar2euro should be bijective")
	}
	if IsBijective("upper") || IsBijective("round") || IsBijective("no_such") {
		t.Error("upper/round/unknown should not be bijective")
	}
}

func TestRegisterFuncDuplicate(t *testing.T) {
	err := RegisterFunc(funcImpl{name: "upper", arity: 1}, false)
	if err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestDollarEuroRoundTrip(t *testing.T) {
	d2e, _ := LookupFunc("dollar2euro")
	e2d, _ := LookupFunc("euro2dollar")
	f := func(cents int64) bool {
		v := data.NewFloat(float64(cents) / 100)
		eu, err := d2e.Apply([]data.Value{v})
		if err != nil {
			return false
		}
		back, err := e2d.Apply([]data.Value{eu})
		if err != nil {
			return false
		}
		diff := math.Abs(back.Float() - v.Float())
		tol := 1e-9 * (1 + math.Abs(v.Float()))
		return diff <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestA2EDateBijection(t *testing.T) {
	a2e, _ := LookupFunc("a2edate")
	e2a, _ := LookupFunc("e2adate")
	in := data.NewString("03/15/2004") // MM/DD/YYYY
	eu, err := a2e.Apply([]data.Value{in})
	if err != nil {
		t.Fatal(err)
	}
	if eu.Str() != "15/03/2004" {
		t.Errorf("a2edate = %q", eu.Str())
	}
	back, err := e2a.Apply([]data.Value{eu})
	if err != nil {
		t.Fatal(err)
	}
	if back.Str() != in.Str() {
		t.Errorf("round trip = %q", back.Str())
	}
	// NULL passes through.
	if v, err := a2e.Apply([]data.Value{data.Null}); err != nil || !v.IsNull() {
		t.Errorf("a2edate(NULL) = %v, %v", v, err)
	}
	// Malformed input errors.
	if _, err := a2e.Apply([]data.Value{data.NewString("2004-03-15")}); err == nil {
		t.Error("a2edate on ISO format should error")
	}
}

func TestBuiltinNullPreservation(t *testing.T) {
	// Every built-in scalar function must propagate NULL, the contract that
	// lets not-null checks swap across function applications.
	for _, name := range FuncNames() {
		fn, _ := LookupFunc(name)
		args := make([]data.Value, fn.Arity())
		v, err := fn.Apply(args)
		if err != nil {
			t.Errorf("%s(NULLs) errored: %v", name, err)
			continue
		}
		if !v.IsNull() {
			t.Errorf("%s(NULLs) = %v, want NULL", name, v)
		}
	}
}

func TestRound(t *testing.T) {
	fn, _ := LookupFunc("round")
	cases := map[float64]int64{1.4: 1, 1.5: 2, -1.4: -1, -1.5: -2, 0: 0}
	for in, want := range cases {
		v, err := fn.Apply([]data.Value{data.NewFloat(in)})
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != want {
			t.Errorf("round(%v) = %v, want %d", in, v, want)
		}
	}
}

func TestMonthOf(t *testing.T) {
	fn, _ := LookupFunc("monthof")
	v, err := fn.Apply([]data.Value{data.NewString("2004-03-15")})
	if err != nil || v.Str() != "2004-03" {
		t.Errorf("monthof(2004-03-15) = %v, %v", v, err)
	}
	if _, err := fn.Apply([]data.Value{data.NewString("bogus")}); err == nil {
		t.Error("monthof(bogus) should error")
	}
}

func TestConcatAndTrim(t *testing.T) {
	concat, _ := LookupFunc("concat")
	v, err := concat.Apply([]data.Value{data.NewString("a"), data.NewString("b")})
	if err != nil || v.Str() != "ab" {
		t.Errorf("concat = %v, %v", v, err)
	}
	trim, _ := LookupFunc("trim")
	v, err = trim.Apply([]data.Value{data.NewString("  x ")})
	if err != nil || v.Str() != "x" {
		t.Errorf("trim = %v, %v", v, err)
	}
}

func TestArityMismatch(t *testing.T) {
	fn, _ := LookupFunc("upper")
	if _, err := fn.Apply(nil); err == nil || !strings.Contains(err.Error(), "expects") {
		t.Errorf("arity mismatch should error, got %v", err)
	}
}
