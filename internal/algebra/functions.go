package algebra

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"etlopt/internal/data"
)

// Func is a deterministic scalar data-manipulation function — the construct
// whose presence, per the paper's introduction, blocks traditional algebraic
// optimization and motivates the whole framework.
type Func interface {
	// Name returns the function's registered name (e.g. "dollar2euro").
	Name() string
	// Arity returns the number of arguments the function takes.
	Arity() int
	// Apply computes the result. NULL inputs propagate as NULL unless the
	// function documents otherwise.
	Apply(args []data.Value) (data.Value, error)
}

// funcImpl adapts a closure to Func.
type funcImpl struct {
	name      string
	arity     int
	bijective bool
	apply     func(args []data.Value) (data.Value, error)
}

func (f funcImpl) Name() string { return f.name }
func (f funcImpl) Arity() int   { return f.arity }
func (f funcImpl) Apply(args []data.Value) (data.Value, error) {
	if len(args) != f.arity {
		return data.Null, fmt.Errorf("algebra: %s expects %d args, got %d", f.name, f.arity, len(args))
	}
	return f.apply(args)
}

var (
	funcMu    sync.RWMutex
	registry  = map[string]Func{}
	bijective = map[string]bool{}
)

// RegisterFunc adds a function to the global registry. Registering a name
// twice is an error, keeping template semantics unambiguous (§3.4: fixed
// semantics per predicate name). isBijective declares that the function is
// a bijection on its input domain; the optimizer relies on this to swap
// in-place transformations across grouping and duplicate-sensitive
// activities (the paper's A2E ↔ aggregation swap is legal exactly because
// the date reformat is a bijection on dates).
func RegisterFunc(f Func, isBijective bool) error {
	funcMu.Lock()
	defer funcMu.Unlock()
	if _, dup := registry[f.Name()]; dup {
		return fmt.Errorf("algebra: function %q already registered", f.Name())
	}
	registry[f.Name()] = f
	bijective[f.Name()] = isBijective
	return nil
}

// MustRegisterFunc registers a closure-backed non-bijective function and
// panics on duplicates; intended for init-time registration.
func MustRegisterFunc(name string, arity int, apply func(args []data.Value) (data.Value, error)) {
	if err := RegisterFunc(funcImpl{name: name, arity: arity, apply: apply}, false); err != nil {
		panic(err)
	}
}

// MustRegisterBijectiveFunc registers a closure-backed bijective function
// and panics on duplicates.
func MustRegisterBijectiveFunc(name string, arity int, apply func(args []data.Value) (data.Value, error)) {
	if err := RegisterFunc(funcImpl{name: name, arity: arity, bijective: true, apply: apply}, true); err != nil {
		panic(err)
	}
}

// LookupFunc finds a registered function by name.
func LookupFunc(name string) (Func, bool) {
	funcMu.RLock()
	defer funcMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// IsBijective reports whether the named function was registered as a
// bijection. Unknown functions report false (the conservative answer).
func IsBijective(name string) bool {
	funcMu.RLock()
	defer funcMu.RUnlock()
	return bijective[name]
}

// FuncNames returns the sorted names of all registered functions.
func FuncNames() []string {
	funcMu.RLock()
	defer funcMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DollarEuroRate is the fixed conversion rate used by the built-in
// dollar2euro function. The paper's $2€ is any deterministic conversion;
// a fixed rate keeps workflows reproducible.
const DollarEuroRate = 0.9

func init() {
	// dollar2euro implements the paper's $2€ transformation: Dollar costs
	// become Euro costs. The attribute it produces is a *different*
	// real-world entity from its input (hence a new reference name in Ωn).
	MustRegisterBijectiveFunc("dollar2euro", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		if v.IsNull() {
			return data.Null, nil
		}
		if !v.IsNumeric() {
			return data.Null, fmt.Errorf("dollar2euro: non-numeric input %v", v)
		}
		return data.NewFloat(v.Float() * DollarEuroRate), nil
	})

	// euro2dollar is the inverse conversion.
	MustRegisterBijectiveFunc("euro2dollar", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		if v.IsNull() {
			return data.Null, nil
		}
		if !v.IsNumeric() {
			return data.Null, fmt.Errorf("euro2dollar: non-numeric input %v", v)
		}
		return data.NewFloat(v.Float() / DollarEuroRate), nil
	})

	// a2edate implements the paper's A2E transformation: American-format
	// date strings (MM/DD/YYYY) become European-format (DD/MM/YYYY).
	// Crucially the output denotes the *same* real-world entity (a date
	// used as a grouper, §3.1), so a2edate activities keep the reference
	// name of their input — this is what legalizes swapping the aggregation
	// before A2E in Fig. 2. Date-typed values pass through unchanged, since
	// they carry no format.
	MustRegisterBijectiveFunc("a2edate", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		switch v.Kind() {
		case data.KindNull, data.KindDate:
			return v, nil
		case data.KindString:
			parts := strings.Split(v.Str(), "/")
			if len(parts) != 3 {
				return data.Null, fmt.Errorf("a2edate: %q is not MM/DD/YYYY", v.Str())
			}
			return data.NewString(parts[1] + "/" + parts[0] + "/" + parts[2]), nil
		default:
			return data.Null, fmt.Errorf("a2edate: unsupported kind %s", v.Kind())
		}
	})

	// e2adate is the inverse reformat (DD/MM/YYYY -> MM/DD/YYYY).
	MustRegisterBijectiveFunc("e2adate", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		switch v.Kind() {
		case data.KindNull, data.KindDate:
			return v, nil
		case data.KindString:
			parts := strings.Split(v.Str(), "/")
			if len(parts) != 3 {
				return data.Null, fmt.Errorf("e2adate: %q is not DD/MM/YYYY", v.Str())
			}
			return data.NewString(parts[1] + "/" + parts[0] + "/" + parts[2]), nil
		default:
			return data.Null, fmt.Errorf("e2adate: unsupported kind %s", v.Kind())
		}
	})

	// upper and lower are cleaning helpers common in ETL template libraries.
	MustRegisterFunc("upper", 1, func(args []data.Value) (data.Value, error) {
		if args[0].IsNull() {
			return data.Null, nil
		}
		return data.NewString(strings.ToUpper(args[0].Str())), nil
	})
	MustRegisterFunc("lower", 1, func(args []data.Value) (data.Value, error) {
		if args[0].IsNull() {
			return data.Null, nil
		}
		return data.NewString(strings.ToLower(args[0].Str())), nil
	})

	// trim strips surrounding whitespace.
	MustRegisterFunc("trim", 1, func(args []data.Value) (data.Value, error) {
		if args[0].IsNull() {
			return data.Null, nil
		}
		return data.NewString(strings.TrimSpace(args[0].Str())), nil
	})

	// concat joins two strings.
	MustRegisterFunc("concat", 2, func(args []data.Value) (data.Value, error) {
		if args[0].IsNull() || args[1].IsNull() {
			return data.Null, nil
		}
		return data.NewString(args[0].Str() + args[1].Str()), nil
	})

	// round rounds a numeric to the nearest integer.
	MustRegisterFunc("round", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		if v.IsNull() {
			return data.Null, nil
		}
		if !v.IsNumeric() {
			return data.Null, fmt.Errorf("round: non-numeric input %v", v)
		}
		f := v.Float()
		if f >= 0 {
			return data.NewInt(int64(f + 0.5)), nil
		}
		return data.NewInt(int64(f - 0.5)), nil
	})

	// scale multiplies a numeric by a constant factor; a generic stand-in
	// for unit conversions in generated workloads.
	MustRegisterBijectiveFunc("scale10", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		if v.IsNull() {
			return data.Null, nil
		}
		if !v.IsNumeric() {
			return data.Null, fmt.Errorf("scale10: non-numeric input %v", v)
		}
		return data.NewFloat(v.Float() * 10), nil
	})

	// monthof extracts the month key (YYYY-MM) from a date, used by the
	// monthly-aggregation flows of Fig. 1.
	MustRegisterFunc("monthof", 1, func(args []data.Value) (data.Value, error) {
		v := args[0]
		switch v.Kind() {
		case data.KindNull:
			return data.Null, nil
		case data.KindDate:
			return data.NewString(v.Time().Format("2006-01")), nil
		case data.KindString:
			s := v.Str()
			if len(s) >= 7 && s[4] == '-' {
				return data.NewString(s[:7]), nil
			}
			return data.Null, fmt.Errorf("monthof: %q is not an ISO date", s)
		default:
			return data.Null, fmt.Errorf("monthof: unsupported kind %s", v.Kind())
		}
	})
}
