// Package algebra implements the "relational algebra extended with
// functions" that the paper uses for activity semantics (§2.1): a small
// expression language over records (attribute references, constants,
// comparisons, arithmetic, boolean connectives and scalar function calls)
// plus a registry of named data-manipulation functions such as the paper's
// $2€ currency conversion and A2E date reformatting.
//
// Expressions serve two roles: the execution engine evaluates them against
// records, and the optimizer reads their referenced attributes to derive
// functionality schemata.
package algebra

import (
	"fmt"
	"strings"

	"etlopt/internal/data"
)

// Expr is a scalar expression evaluated against one record.
type Expr interface {
	// Eval computes the expression's value for a record laid out by schema.
	Eval(schema data.Schema, rec data.Record) (data.Value, error)
	// Attrs appends the reference attribute names the expression reads.
	Attrs(dst []string) []string
	// String renders the expression in a stable textual form.
	String() string
}

// Attr references an attribute by reference name.
type Attr struct{ Name string }

// Eval implements Expr.
func (a Attr) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	i := schema.Index(a.Name)
	if i < 0 || i >= len(rec) {
		return data.Null, fmt.Errorf("algebra: attribute %q not in schema [%s]", a.Name, schema)
	}
	return rec[i], nil
}

// Attrs implements Expr.
func (a Attr) Attrs(dst []string) []string { return append(dst, a.Name) }

// String implements Expr.
func (a Attr) String() string { return a.Name }

// Const is a literal value.
type Const struct{ Value data.Value }

// Eval implements Expr.
func (c Const) Eval(data.Schema, data.Record) (data.Value, error) { return c.Value, nil }

// Attrs implements Expr.
func (c Const) Attrs(dst []string) []string { return dst }

// String implements Expr.
func (c Const) String() string {
	if c.Value.Kind() == data.KindString {
		return "'" + c.Value.Str() + "'"
	}
	return c.Value.String()
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the operator's SQL-style spelling.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// ParseCmpOp parses a comparison operator spelling.
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return EQ, nil
	case "<>", "!=":
		return NE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	default:
		return EQ, fmt.Errorf("algebra: unknown comparison operator %q", s)
	}
}

// Cmp compares two sub-expressions. A comparison involving NULL evaluates
// to false (SQL-style rejection), except NE which is true when exactly one
// side is NULL.
type Cmp struct {
	Op          CmpOp
	Left, Right Expr
}

// Eval implements Expr.
func (c Cmp) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	l, err := c.Left.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	r, err := c.Right.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return data.NewBool(c.Op == NE && l.IsNull() != r.IsNull()), nil
	}
	cmp := l.Compare(r)
	var out bool
	switch c.Op {
	case EQ:
		out = l.Equal(r)
	case NE:
		out = !l.Equal(r)
	case LT:
		out = cmp < 0
	case LE:
		out = cmp <= 0
	case GT:
		out = cmp > 0
	case GE:
		out = cmp >= 0
	}
	return data.NewBool(out), nil
}

// Attrs implements Expr.
func (c Cmp) Attrs(dst []string) []string { return c.Right.Attrs(c.Left.Attrs(dst)) }

// String implements Expr. Comparisons parenthesize themselves so that the
// rendering is precedence-unambiguous and round-trips through the
// predicate parser.
func (c Cmp) String() string {
	return fmt.Sprintf("(%s%s%s)", c.Left, c.Op, c.Right)
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Arith combines two numeric sub-expressions. NULL operands yield NULL.
type Arith struct {
	Op          ArithOp
	Left, Right Expr
}

// Eval implements Expr.
func (a Arith) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	l, err := a.Left.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	r, err := a.Right.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return data.Null, nil
	}
	x, y := l.Float(), r.Float()
	var out float64
	switch a.Op {
	case Add:
		out = x + y
	case Sub:
		out = x - y
	case Mul:
		out = x * y
	case Div:
		if y == 0 {
			return data.Null, fmt.Errorf("algebra: division by zero in %s", a)
		}
		out = x / y
	}
	if l.Kind() == data.KindInt && r.Kind() == data.KindInt && a.Op != Div {
		return data.NewInt(int64(out)), nil
	}
	return data.NewFloat(out), nil
}

// Attrs implements Expr.
func (a Arith) Attrs(dst []string) []string { return a.Right.Attrs(a.Left.Attrs(dst)) }

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s%s%s)", a.Left, a.Op, a.Right)
}

// BoolOp enumerates boolean connectives.
type BoolOp uint8

// Boolean connectives.
const (
	And BoolOp = iota
	Or
)

// String returns the connective's spelling.
func (op BoolOp) String() string {
	if op == And {
		return "and"
	}
	return "or"
}

// Logic combines boolean sub-expressions.
type Logic struct {
	Op          BoolOp
	Left, Right Expr
}

// Eval implements Expr.
func (l Logic) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	a, err := l.Left.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	// Short-circuit.
	if l.Op == And && !a.Bool() {
		return data.NewBool(false), nil
	}
	if l.Op == Or && a.Bool() {
		return data.NewBool(true), nil
	}
	b, err := l.Right.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	return data.NewBool(b.Bool()), nil
}

// Attrs implements Expr.
func (l Logic) Attrs(dst []string) []string { return l.Right.Attrs(l.Left.Attrs(dst)) }

// String implements Expr.
func (l Logic) String() string {
	return fmt.Sprintf("(%s %s %s)", l.Left, l.Op, l.Right)
}

// Not negates a boolean sub-expression.
type Not struct{ Inner Expr }

// Eval implements Expr.
func (n Not) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	v, err := n.Inner.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	return data.NewBool(!v.Bool()), nil
}

// Attrs implements Expr.
func (n Not) Attrs(dst []string) []string { return n.Inner.Attrs(dst) }

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("not(%s)", n.Inner) }

// IsNull tests whether a sub-expression evaluates to NULL.
type IsNull struct{ Inner Expr }

// Eval implements Expr.
func (e IsNull) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	v, err := e.Inner.Eval(schema, rec)
	if err != nil {
		return data.Null, err
	}
	return data.NewBool(v.IsNull()), nil
}

// Attrs implements Expr.
func (e IsNull) Attrs(dst []string) []string { return e.Inner.Attrs(dst) }

// String implements Expr.
func (e IsNull) String() string { return fmt.Sprintf("isnull(%s)", e.Inner) }

// Call invokes a registered scalar function with argument expressions.
type Call struct {
	Fn   string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(schema data.Schema, rec data.Record) (data.Value, error) {
	fn, ok := LookupFunc(c.Fn)
	if !ok {
		return data.Null, fmt.Errorf("algebra: unknown function %q", c.Fn)
	}
	args := make([]data.Value, len(c.Args))
	for i, e := range c.Args {
		v, err := e.Eval(schema, rec)
		if err != nil {
			return data.Null, err
		}
		args[i] = v
	}
	return fn.Apply(args)
}

// Attrs implements Expr.
func (c Call) Attrs(dst []string) []string {
	for _, e := range c.Args {
		dst = e.Attrs(dst)
	}
	return dst
}

// String implements Expr.
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, e := range c.Args {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ","))
}

// AttrSet returns the deduplicated reference attributes an expression reads,
// preserving first-appearance order.
func AttrSet(e Expr) []string {
	raw := e.Attrs(nil)
	seen := make(map[string]bool, len(raw))
	out := raw[:0]
	for _, a := range raw {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
