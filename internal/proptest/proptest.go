// Package proptest is the property-based metamorphic test layer guarding
// the incremental successor machinery: copy-on-write graph derivation
// (workflow.Graph.Mutate), delta cost recomputation
// (cost.EvaluateIncremental and the per-activity memo) and signature
// splicing (workflow.SpliceSignature). Its checks generate seeded random
// workflows, apply every applicable transition, and assert that every
// incremental shortcut agrees with the from-scratch computation and that
// no rewrite ever leaks a mutation into the state it was derived from —
// the invariants every search result silently depends on.
//
// The helpers return errors rather than calling into testing.T so the
// same checks can back unit tests, the -race CI job and ad-hoc
// investigation alike.
package proptest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/templates"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// costTol is the relative tolerance for the incremental-vs-scratch cost
// cross-check. Incremental evaluation copies untouched nodes bit-for-bit
// and recomputes dirty ones with the same pure model, so the comparison
// is essentially exact; the tolerance only absorbs the one legitimate
// difference, the re-summation order of Costing.Total.
const costTol = 1e-9

// relDiff returns |a-b| scaled by the larger magnitude (0 when both are 0).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// compareCostings cross-checks an incrementally derived costing against a
// from-scratch evaluation of the same graph: identical node sets,
// per-node cardinalities and costs within costTol, and totals within
// costTol.
func compareCostings(inc, scratch *cost.Costing) error {
	if len(inc.Costs) != len(scratch.Costs) {
		return fmt.Errorf("incremental costing covers %d nodes, scratch %d", len(inc.Costs), len(scratch.Costs))
	}
	// Walk node IDs in sorted order so a failure always reports the same
	// (smallest) offending node.
	ids := make([]workflow.NodeID, 0, len(scratch.Costs))
	for id := range scratch.Costs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		want := scratch.Costs[id]
		got, ok := inc.Costs[id]
		if !ok {
			return fmt.Errorf("node %d missing from incremental costing", id)
		}
		if relDiff(got, want) > costTol {
			return fmt.Errorf("node %d cost: incremental %v vs scratch %v", id, got, want)
		}
	}
	ids = ids[:0]
	for id := range scratch.Cards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		want := scratch.Cards[id]
		got, ok := inc.Cards[id]
		if !ok {
			return fmt.Errorf("node %d missing from incremental cardinalities", id)
		}
		if relDiff(got, want) > costTol {
			return fmt.Errorf("node %d cardinality: incremental %v vs scratch %v", id, got, want)
		}
	}
	if relDiff(inc.Total, scratch.Total) > costTol {
		return fmt.Errorf("total: incremental %v vs scratch %v", inc.Total, scratch.Total)
	}
	return nil
}

// Successors returns every applicable transition of g: the search's
// successor function (all legal SWA, FAC and DIS via transitions.Enumerate)
// plus every legal MER of adjacent unary pairs, which the search applies
// proactively rather than enumerating. SPL only applies to merged
// activities, so CheckExpansion exercises it on each MER result instead.
func Successors(g *workflow.Graph) []*transitions.Result {
	out := transitions.Enumerate(g)
	for _, grp := range g.LocalGroups() {
		for i := 0; i+1 < len(grp); i++ {
			if res, err := transitions.Merge(g, grp[i], grp[i+1]); err == nil {
				out = append(out, res)
			}
		}
	}
	return out
}

// serialized renders g to its canonical DSL text, falling back to the
// adjacency-list rendering for graphs the DSL cannot express (merged
// packages). Both forms are deterministic, which is all the byte-compare
// leak checks need.
func serialized(g *workflow.Graph) string {
	if text, err := dsl.Serialize(g); err == nil {
		return text
	}
	return g.String()
}

// checkResult verifies one transition result against its parent:
//
//	(a) delta cost recomputation — EvaluateIncremental seeded with the
//	    parent's costing and the transition's dirty set must agree with a
//	    from-scratch Evaluate of the derived graph on every node;
//	(b) signature splicing — when the transition describes itself as a
//	    local segment replacement and SpliceSignature accepts it, the
//	    spliced string must equal the full Graph.Signature() re-rendering.
func checkResult(parentSig string, base *cost.Costing, model cost.Model, singleChain bool, res *transitions.Result) error {
	inc, err := cost.EvaluateIncremental(base, res.Graph, model, res.Dirty)
	if err != nil {
		return fmt.Errorf("%s: incremental evaluation: %w", res.Description, err)
	}
	scratch, err := cost.Evaluate(res.Graph, model)
	if err != nil {
		return fmt.Errorf("%s: scratch evaluation: %w", res.Description, err)
	}
	if err := compareCostings(inc, scratch); err != nil {
		return fmt.Errorf("%s: %w", res.Description, err)
	}
	if res.SigOld != "" {
		full := res.Graph.Signature()
		if spliced, ok := workflow.SpliceSignature(parentSig, res.SigOld, res.SigNew, singleChain); ok && spliced != full {
			return fmt.Errorf("%s: spliced signature %q != full rendering %q (parent %q, %q->%q)",
				res.Description, spliced, full, parentSig, res.SigOld, res.SigNew)
		}
	}
	return nil
}

// CheckExpansion applies every applicable transition to the scenario's
// initial state and asserts the metamorphic invariants of incremental
// expansion: delta cost == from-scratch cost, spliced signature == full
// signature, MER∘SPL restores the state signature, the parent state is
// byte-identical after all of its children have been derived and
// rewritten (the copy-on-write leak guard), and — for up to verifyData
// sampled successors — empirical equivalence of parent and child on the
// scenario's generated data.
func CheckExpansion(sc *templates.Scenario, model cost.Model, verifyData int) error {
	g0 := sc.Graph
	before := serialized(g0)
	sig0 := g0.Signature()
	base, err := cost.Evaluate(g0, model)
	if err != nil {
		return fmt.Errorf("costing initial state: %w", err)
	}
	singleChain := len(g0.Targets()) == 1

	succs := Successors(g0)
	for _, res := range succs {
		if err := checkResult(sig0, base, model, singleChain, res); err != nil {
			return err
		}
		if res.Applied.Op != "MER" {
			continue
		}
		// Exercise SPL on the merged state, and check the §3.3 identity
		// SPL(MER(S)) ≡ S at the signature level (initial states carry no
		// merged packages, so splitting the fresh package restores the
		// exact pre-merge rendering).
		mg := res.Graph
		msig := mg.Signature()
		mbase, err := cost.Evaluate(mg, model)
		if err != nil {
			return fmt.Errorf("%s: costing merged state: %w", res.Description, err)
		}
		sres, err := transitions.Split(mg, res.Dirty[0])
		if err != nil {
			return fmt.Errorf("%s: splitting the merged package back: %w", res.Description, err)
		}
		if err := checkResult(msig, mbase, model, singleChain, sres); err != nil {
			return err
		}
		if got := sres.Graph.Signature(); got != sig0 {
			return fmt.Errorf("%s then %s: signature %q, want the original %q",
				res.Description, sres.Description, got, sig0)
		}
	}

	// Copy-on-write leak guard: deriving and rewriting every child above
	// must leave the parent byte-identical.
	if after := serialized(g0); after != before {
		return fmt.Errorf("expanding %d successors mutated the parent state:\nbefore:\n%s\nafter:\n%s",
			len(succs), before, after)
	}
	if got := g0.Signature(); got != sig0 {
		return fmt.Errorf("expanding successors changed the parent signature %q -> %q", sig0, got)
	}

	if verifyData > 0 && len(succs) > 0 {
		bindings := sc.Bind()
		n := verifyData
		if n > len(succs) {
			n = len(succs)
		}
		for k := 0; k < n; k++ {
			res := succs[k*len(succs)/n]
			ok, diff, err := equiv.VerifyEmpirical(g0, res.Graph, bindings)
			if err != nil {
				return fmt.Errorf("%s: empirical verification: %w", res.Description, err)
			}
			if !ok {
				return fmt.Errorf("%s: derived state not equivalent on data: %s", res.Description, diff)
			}
		}
	}
	return nil
}

// CheckPartitionInvariance executes the scenario's workflow once in
// materialized mode and once in partition-parallel mode at each of the
// given partition counts, asserting the parallel engine's metamorphic
// contract: for every target, the output multiset agrees AND the rows are
// byte-identical in order (strictly stronger than multiset equality — the
// deterministic order-stable merge is part of the contract), and the
// per-node row counts agree. The partition count must be observationally
// invisible.
func CheckPartitionInvariance(sc *templates.Scenario, partitions []int) error {
	mat, err := engine.New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		return fmt.Errorf("materialized run: %w", err)
	}
	for _, p := range partitions {
		par, err := engine.New(sc.Bind(),
			engine.WithMode(engine.Parallel), engine.WithPartitions(p)).Run(context.Background(), sc.Graph)
		if err != nil {
			return fmt.Errorf("parallel run P=%d: %w", p, err)
		}
		if len(par.Targets) != len(mat.Targets) {
			return fmt.Errorf("P=%d: %d targets, materialized loaded %d", p, len(par.Targets), len(mat.Targets))
		}
		names := make([]string, 0, len(mat.Targets))
		for name := range mat.Targets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			want := mat.Targets[name]
			got, ok := par.Targets[name]
			if !ok {
				return fmt.Errorf("P=%d: target %s missing from parallel run", p, name)
			}
			if !want.EqualMultiset(got) {
				diffs := want.DiffMultiset(got, 3)
				return fmt.Errorf("P=%d: target %s multiset differs: %v", p, name, diffs)
			}
			if err := sameRowOrder(want, got); err != nil {
				return fmt.Errorf("P=%d: target %s not byte-identical to materialized: %w", p, name, err)
			}
		}
		ids := make([]workflow.NodeID, 0, len(mat.NodeRows))
		for id := range mat.NodeRows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if got, want := par.NodeRows[id], mat.NodeRows[id]; got != want {
				return fmt.Errorf("P=%d: node %d emitted %d rows, materialized %d", p, id, got, want)
			}
		}
	}
	return nil
}

// sameRowOrder requires bit-identity: equal lengths, and equal record
// keys position by position. Equal canonical digests prove identity in one
// pass; the key scan only runs to locate a divergence (or to tolerate the
// one legitimate digest mismatch — checkpoint-resumed rows re-read from
// staging CSVs collapse integral floats to ints, which the type-insensitive
// keys deliberately ignore).
func sameRowOrder(want, got data.Rows) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d vs %d rows", len(got), len(want))
	}
	if want.Digest() == got.Digest() {
		return nil
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			return fmt.Errorf("row %d: %s, want %s", i, got[i], want[i])
		}
	}
	return nil
}

// CheckJournalInvariance asserts the flight recorder's metamorphic
// contract: journal collection is write-only, so attaching a journal
// (and pprof labels) must be observationally invisible. The scenario's
// HS search is run plain and journaled at each worker count — best cost,
// best signature and visited/generated counts must be bit-identical —
// and its workflow is executed in partition-parallel mode plain and
// journaled at each partition count — target rows must be byte-identical
// in order and per-node row counts equal. Every recorded journal must
// also parse back with paired run boundaries and a summary trailer.
func CheckJournalInvariance(sc *templates.Scenario, workers, partitions []int) error {
	ctx := context.Background()
	for _, w := range workers {
		// A bounded budget keeps the check fast; determinism must hold at
		// any budget, so a partial search is as good a probe as a full one.
		opts := core.Options{Workers: w, IncrementalCost: true, MaxStates: 3000}
		plain, err := core.Heuristic(ctx, sc.Graph, opts)
		if err != nil {
			return fmt.Errorf("W=%d: plain search: %w", w, err)
		}
		var buf bytes.Buffer
		opts.Journal = obs.NewJournal(&buf, nil)
		opts.PprofLabels = true
		rec, err := core.Heuristic(ctx, sc.Graph, opts)
		if err != nil {
			return fmt.Errorf("W=%d: journaled search: %w", w, err)
		}
		if err := opts.Journal.Close(); err != nil {
			return fmt.Errorf("W=%d: closing journal: %w", w, err)
		}
		if rec.BestCost != plain.BestCost {
			return fmt.Errorf("W=%d: best cost %v with journal, %v without", w, rec.BestCost, plain.BestCost)
		}
		if got, want := rec.Best.Signature(), plain.Best.Signature(); got != want {
			return fmt.Errorf("W=%d: best signature %q with journal, %q without", w, got, want)
		}
		if rec.Visited != plain.Visited || rec.Generated != plain.Generated {
			return fmt.Errorf("W=%d: visited/generated %d/%d with journal, %d/%d without",
				w, rec.Visited, rec.Generated, plain.Visited, plain.Generated)
		}
		if err := journalWellFormed(buf.Bytes()); err != nil {
			return fmt.Errorf("W=%d: %w", w, err)
		}
	}
	for _, p := range partitions {
		eopts := []engine.Option{engine.WithMode(engine.Parallel), engine.WithPartitions(p)}
		plain, err := engine.New(sc.Bind(), eopts...).Run(ctx, sc.Graph)
		if err != nil {
			return fmt.Errorf("P=%d: plain run: %w", p, err)
		}
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, nil)
		rec, err := engine.New(sc.Bind(), append(eopts, engine.WithJournal(j), engine.WithPprofLabels())...).
			Run(ctx, sc.Graph)
		if err != nil {
			return fmt.Errorf("P=%d: journaled run: %w", p, err)
		}
		if err := j.Close(); err != nil {
			return fmt.Errorf("P=%d: closing journal: %w", p, err)
		}
		names := make([]string, 0, len(plain.Targets))
		for name := range plain.Targets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := sameRowOrder(plain.Targets[name], rec.Targets[name]); err != nil {
				return fmt.Errorf("P=%d: target %s not byte-identical with journal attached: %w", p, name, err)
			}
		}
		ids := make([]workflow.NodeID, 0, len(plain.NodeRows))
		for id := range plain.NodeRows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if got, want := rec.NodeRows[id], plain.NodeRows[id]; got != want {
				return fmt.Errorf("P=%d: node %d emitted %d rows with journal, %d without", p, id, got, want)
			}
		}
		if err := journalWellFormed(buf.Bytes()); err != nil {
			return fmt.Errorf("P=%d: %w", p, err)
		}
	}
	return nil
}

// journalWellFormed parses a recorded journal and checks its framing:
// paired run boundaries, exactly one trailing summary, and drop/error
// accounting agreeing with the file's own contents.
func journalWellFormed(raw []byte) error {
	evs, err := obs.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("journal unreadable: %w", err)
	}
	if len(evs) == 0 {
		return fmt.Errorf("journal empty")
	}
	counts := map[string]int{}
	for _, e := range evs {
		counts[e.T]++
	}
	if counts[obs.EventRun]%2 != 0 {
		return fmt.Errorf("journal has %d run boundaries, want start/end pairs", counts[obs.EventRun])
	}
	if counts[obs.EventSummary] != 1 {
		return fmt.Errorf("journal has %d summary events, want exactly 1", counts[obs.EventSummary])
	}
	last := evs[len(evs)-1]
	if last.T != obs.EventSummary {
		return fmt.Errorf("journal does not end with the summary trailer (last event %q)", last.T)
	}
	if body := int64(len(evs) - 1); last.Events+last.Dropped < body {
		return fmt.Errorf("summary accounts for %d events (+%d dropped), file holds %d",
			last.Events, last.Dropped, body)
	}
	return nil
}

// CheckFaultRecoveryEquivalence asserts the fault subsystem's headline
// guarantee on one scenario: any faulty run that ultimately succeeds —
// via per-node retries or a checkpoint resume — is bit-identical to the
// clean run in row order, per-node row counts, and the journal's own
// per-node row counters. Three probes per scenario:
//
//	(a) a seeded transient plan with a retry budget, in parallel mode at
//	    each partition count: the run must converge and match the clean
//	    materialized reference exactly, and its journal must record the
//	    faults and the retries that recovered them;
//	(b) a rate-1 permanent plan: the run must fail with a typed
//	    *fault.Injected naming node, partition, and injection site, no
//	    matter the retry budget;
//	(c) crash-restart resume: a checkpointed run killed mid-workflow by a
//	    permanent fault, re-run fault-free over the same staging dir,
//	    must resume from the staged frontier and reproduce the clean
//	    result exactly.
func CheckFaultRecoveryEquivalence(sc *templates.Scenario, seed int64, partitions []int) error {
	ctx := context.Background()
	clean, err := engine.New(sc.Bind()).Run(ctx, sc.Graph)
	if err != nil {
		return fmt.Errorf("clean run: %w", err)
	}

	for _, p := range partitions {
		// (a) Transient faults under retry. MaxPerKey 1 bounds the failed
		// attempts of one node by its injection-site depth (restore, start,
		// exchange, emit), so a budget of 8 guarantees convergence.
		plan := fault.NewPlan(seed, 0.35)
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, nil)
		rec, err := engine.New(sc.Bind(),
			engine.WithMode(engine.Parallel), engine.WithPartitions(p),
			engine.WithJournal(j),
			engine.WithFaultPlan(plan),
			engine.WithRetry(fault.Policy{MaxAttempts: 8, Seed: seed}),
		).Run(ctx, sc.Graph)
		if err != nil {
			return fmt.Errorf("P=%d: faulted run failed despite retries (%d faults fired): %w", p, plan.Injected(), err)
		}
		if cerr := j.Close(); cerr != nil {
			return fmt.Errorf("P=%d: closing journal: %w", p, cerr)
		}
		if err := sameRunResult(clean, rec); err != nil {
			return fmt.Errorf("P=%d: recovered run diverges from clean run: %w", p, err)
		}
		if err := faultJournalConsistent(buf.Bytes(), clean, plan.Injected()); err != nil {
			return fmt.Errorf("P=%d: %w", p, err)
		}

		// (b) A permanent fault fails the run with full attribution,
		// regardless of the retry budget.
		pplan := fault.NewPlan(seed+1, 1, fault.WithKind(fault.Permanent))
		_, err = engine.New(sc.Bind(),
			engine.WithMode(engine.Parallel), engine.WithPartitions(p),
			engine.WithFaultPlan(pplan),
			engine.WithRetry(fault.Policy{MaxAttempts: 8, Seed: seed}),
		).Run(ctx, sc.Graph)
		if err == nil {
			return fmt.Errorf("P=%d: permanent rate-1 plan did not fail the run", p)
		}
		var inj *fault.Injected
		if !errors.As(err, &inj) {
			return fmt.Errorf("P=%d: permanent failure is not a typed *fault.Injected: %v", p, err)
		}
		if inj.Kind != fault.Permanent || inj.Site == "" || inj.Node < 0 || inj.Part < 0 {
			return fmt.Errorf("P=%d: permanent fault attribution incomplete: %+v", p, inj)
		}
	}

	// (c) Crash-restart resume through the checkpoint runner. Permanent
	// faults at stage/start points kill the run mid-workflow, leaving the
	// frontier staged; the fault-free re-run must resume and match.
	dir, err := os.MkdirTemp("", "etlopt-faultrec-")
	if err != nil {
		return fmt.Errorf("staging dir: %w", err)
	}
	defer os.RemoveAll(dir)
	stage := filepath.Join(dir, "stage")
	crashPlan := fault.NewPlan(seed+2, 0.5, fault.WithKind(fault.Permanent),
		fault.WithSites(fault.SiteStage, fault.SiteNodeStart))
	cr, err := engine.NewCheckpointRunner(engine.New(sc.Bind(), engine.WithFaultPlan(crashPlan)), stage)
	if err != nil {
		return err
	}
	_, crashErr := cr.Run(ctx, sc.Graph)
	staged, _ := cr.Staged()
	var rbuf bytes.Buffer
	rj := obs.NewJournal(&rbuf, nil)
	cr2, err := engine.NewCheckpointRunner(engine.New(sc.Bind(), engine.WithJournal(rj)), stage)
	if err != nil {
		return err
	}
	res, err := cr2.Run(ctx, sc.Graph)
	if err != nil {
		return fmt.Errorf("resume run failed after crash (%v): %w", crashErr, err)
	}
	if cerr := rj.Close(); cerr != nil {
		return fmt.Errorf("closing resume journal: %w", cerr)
	}
	if err := sameRunResult(clean, res); err != nil {
		return fmt.Errorf("resumed run diverges from clean run: %w", err)
	}
	if crashErr != nil && len(staged) > 0 {
		evs, err := obs.ReadJournal(bytes.NewReader(rbuf.Bytes()))
		if err != nil {
			return fmt.Errorf("resume journal unreadable: %w", err)
		}
		resumes := 0
		for _, e := range evs {
			if e.T == obs.EventResume {
				resumes++
			}
		}
		if resumes == 0 {
			return fmt.Errorf("crash left %d staged outputs but the resumed run journaled no resume events", len(staged))
		}
	}
	return nil
}

// sameRunResult requires a recovered run to be indistinguishable from the
// clean one: the same targets with byte-identical row order, and the same
// per-node row counts.
func sameRunResult(want, got *engine.RunResult) error {
	if len(got.Targets) != len(want.Targets) {
		return fmt.Errorf("%d targets, clean run loaded %d", len(got.Targets), len(want.Targets))
	}
	names := make([]string, 0, len(want.Targets))
	for name := range want.Targets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows, ok := got.Targets[name]
		if !ok {
			return fmt.Errorf("target %s missing", name)
		}
		if err := sameRowOrder(want.Targets[name], rows); err != nil {
			return fmt.Errorf("target %s: %w", name, err)
		}
	}
	ids := make([]workflow.NodeID, 0, len(want.NodeRows))
	for id := range want.NodeRows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if got.NodeRows[id] != want.NodeRows[id] {
			return fmt.Errorf("node %d emitted %d rows, clean run %d", id, got.NodeRows[id], want.NodeRows[id])
		}
	}
	return nil
}

// faultJournalConsistent checks a recovered run's journal: well-formed
// framing, exactly one node event per completed activity carrying the
// clean run's row count (the journal's row counters are part of the
// bit-identity contract), attributed fault events, and — whenever the
// plan fired — at least one retry event backing the recovery.
func faultJournalConsistent(raw []byte, clean *engine.RunResult, injected int) error {
	if err := journalWellFormed(raw); err != nil {
		return err
	}
	evs, err := obs.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	nodeEvents := make(map[int]int)
	nodeRows := make(map[int]int64)
	faults, retries := 0, 0
	for _, e := range evs {
		switch e.T {
		case obs.EventNode:
			ids, _, _ := strings.Cut(e.Node, ":")
			id, err := strconv.Atoi(ids)
			if err != nil {
				return fmt.Errorf("node event with unparseable key %q: %w", e.Node, err)
			}
			nodeEvents[id]++
			nodeRows[id] = e.Rows
		case obs.EventFault:
			faults++
			if e.Node == "" || e.Action == "" || e.Detail == "" {
				return fmt.Errorf("fault event missing attribution: %+v", e)
			}
		case obs.EventRetry:
			retries++
			if e.Node == "" || e.Attempt < 2 {
				return fmt.Errorf("retry event malformed: %+v", e)
			}
		}
	}
	ids := make([]workflow.NodeID, 0, len(clean.NodeRows))
	for id := range clean.NodeRows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c, ok := nodeEvents[int(id)]
		if !ok {
			continue // recordsets journal no node events
		}
		if c != 1 {
			return fmt.Errorf("node %d journaled %d node events, want 1 per completed node", id, c)
		}
		if nodeRows[int(id)] != int64(clean.NodeRows[id]) {
			return fmt.Errorf("node %d journal rows %d, clean run emitted %d", id, nodeRows[int(id)], clean.NodeRows[id])
		}
	}
	if injected > 0 {
		if faults == 0 {
			return fmt.Errorf("plan fired %d faults but the journal holds no fault events", injected)
		}
		if retries == 0 {
			return fmt.Errorf("run recovered from %d faults with no journaled retries", injected)
		}
	}
	return nil
}

// CheckSearchMutationLeak walks the state space breadth-first for maxDepth
// levels, keeping at most width states per level, and byte-compares every
// parent's serialization before and after its expansion. Depth matters:
// grandchildren rewrite graphs that structurally share nodes with graphs
// already on the frontier, which is exactly where a copy-on-write
// ownership bug shows up as retroactive corruption — and, because no data
// race is involved, where the race detector cannot see it.
func CheckSearchMutationLeak(g0 *workflow.Graph, maxDepth, width int) error {
	frontier := []*workflow.Graph{g0}
	seen := map[string]bool{g0.Signature(): true}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []*workflow.Graph
		for _, parent := range frontier {
			before := serialized(parent)
			sigBefore := parent.Signature()
			succs := Successors(parent)
			if after := serialized(parent); after != before {
				return fmt.Errorf("depth %d: expanding %d successors mutated the parent:\nbefore:\n%s\nafter:\n%s",
					depth, len(succs), before, after)
			}
			if got := parent.Signature(); got != sigBefore {
				return fmt.Errorf("depth %d: expansion changed the parent signature %q -> %q", depth, sigBefore, got)
			}
			for _, res := range succs {
				sig := res.Graph.Signature()
				if seen[sig] {
					continue
				}
				seen[sig] = true
				if len(next) < width {
					next = append(next, res.Graph)
				}
			}
		}
		frontier = next
	}
	return nil
}
