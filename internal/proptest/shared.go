package proptest

import (
	"context"
	"fmt"

	"etlopt/internal/engine"
	"etlopt/internal/share"
	"etlopt/internal/templates"
)

// CheckSharedRunEquivalence asserts the shared-work scheduler's headline
// invariant on one suite of scenarios: running the members through
// share.RunSuite — at any worker count, cache budget (including zero),
// spill configuration and partition count — must be observationally
// identical to running each member alone with the same engine
// configuration. For every workflow that means the same targets with
// byte-identical row order and the same per-node row counts, and the
// suite's cache statistics must satisfy their integrity invariants
// (hits never exceed lookups, eviction never frees more bytes than
// admission recorded).
func CheckSharedRunEquivalence(scs []*templates.Scenario, workers, partitions int, cacheBytes int64, spillDir string) error {
	ctx := context.Background()
	var eopts []engine.Option
	if partitions > 1 {
		eopts = append(eopts, engine.WithMode(engine.Parallel), engine.WithPartitions(partitions))
	}
	solos := make([]*engine.RunResult, len(scs))
	wfs := make([]share.Workflow, len(scs))
	for i, sc := range scs {
		solo, err := engine.New(sc.Bind(), eopts...).Run(ctx, sc.Graph)
		if err != nil {
			return fmt.Errorf("workflow %d solo run: %w", i+1, err)
		}
		solos[i] = solo
		wfs[i] = share.Workflow{
			Name:     fmt.Sprintf("wf-%02d", i+1),
			Graph:    sc.Graph,
			Bindings: sc.Bind(),
		}
	}
	res, err := share.RunSuite(ctx, wfs, share.Options{
		Workers: workers, CacheBytes: cacheBytes, SpillDir: spillDir, Engine: eopts,
	})
	if err != nil {
		return fmt.Errorf("suite run (W=%d, P=%d, budget=%d): %w", workers, partitions, cacheBytes, err)
	}
	for i, wr := range res.Workflows {
		if wr.Err != nil {
			return fmt.Errorf("%s failed in suite mode (W=%d, P=%d, budget=%d): %w",
				wr.Name, workers, partitions, cacheBytes, wr.Err)
		}
		if err := sameRunResult(solos[i], wr.Result); err != nil {
			return fmt.Errorf("%s diverges from its solo run (W=%d, P=%d, budget=%d): %w",
				wr.Name, workers, partitions, cacheBytes, err)
		}
	}
	st := res.Stats
	if st.Workflows != len(scs) {
		return fmt.Errorf("stats cover %d workflows, suite has %d", st.Workflows, len(scs))
	}
	if st.Cache.Hits > st.Cache.Lookups {
		return fmt.Errorf("cache stats corrupt: %d hits exceed %d lookups", st.Cache.Hits, st.Cache.Lookups)
	}
	if st.Cache.EvictedBytes > st.Cache.AdmittedBytes {
		return fmt.Errorf("cache stats corrupt: eviction freed %d bytes, admission recorded %d",
			st.Cache.EvictedBytes, st.Cache.AdmittedBytes)
	}
	return nil
}
