package proptest_test

import (
	"fmt"
	"testing"

	"etlopt/internal/cost"
	"etlopt/internal/generator"
	"etlopt/internal/proptest"
	"etlopt/internal/templates"
)

// propSeed anchors the generated population; changing it changes every
// workflow in the suite, so keep it stable to keep failures reproducible.
const propSeed = 0x5eed

// suiteFor generates n scenarios of one category, failing the test on
// generator errors.
func suiteFor(t testing.TB, cat generator.Category, n int, seed int64) []*templates.Scenario {
	t.Helper()
	scs, err := generator.Suite(cat, n, seed)
	if err != nil {
		t.Fatalf("generating %s suite: %v", cat, err)
	}
	return scs
}

// TestMetamorphicExpansion is the core property-based guard of the
// incremental successor machinery: ~200 seeded random workflows, every
// applicable transition applied to each, asserting that (a) delta cost
// recomputation equals from-scratch evaluation, (b) spliced signatures
// equal full re-renderings, (c) sampled derived states are empirically
// equivalent to their parents on generated data, and (d) copy-on-write
// derivation never leaks a mutation back into the parent state.
func TestMetamorphicExpansion(t *testing.T) {
	counts := []struct {
		cat    generator.Category
		n      int
		verify int // successors to verify empirically per workflow
	}{
		{generator.Small, 140, 2},
		{generator.Medium, 40, 1},
		{generator.Large, 20, 1},
	}
	if testing.Short() {
		counts[0].n, counts[1].n, counts[2].n = 24, 6, 2
	}
	model := cost.RowModel{}
	total := 0
	for _, c := range counts {
		scs := suiteFor(t, c.cat, c.n, propSeed+int64(c.cat)*104729)
		for i, sc := range scs {
			sc, i, c := sc, i, c
			t.Run(fmt.Sprintf("%s-%02d", c.cat, i+1), func(t *testing.T) {
				t.Parallel()
				if err := proptest.CheckExpansion(sc, model, c.verify); err != nil {
					t.Fatalf("scenario %s seed base %d index %d: %v", c.cat, propSeed, i, err)
				}
			})
		}
		total += len(scs)
	}
	t.Logf("checked %d generated workflows", total)
}

// TestPartitionInvariance is the metamorphic guard for the
// partition-parallel engine: ~200 seeded random workflows, each executed
// in materialized mode and in parallel mode at P ∈ {1, 2, 8}, asserting
// that every target's multiset agrees and the rows are byte-identical in
// order — the partition count must be observationally invisible. Run
// under -race this also exercises the exchange and gather machinery for
// data races.
func TestPartitionInvariance(t *testing.T) {
	counts := []struct {
		cat generator.Category
		n   int
	}{
		{generator.Small, 140},
		{generator.Medium, 40},
		{generator.Large, 20},
	}
	if testing.Short() {
		counts[0].n, counts[1].n, counts[2].n = 24, 6, 2
	}
	partitions := []int{1, 2, 8}
	total := 0
	for _, c := range counts {
		scs := suiteFor(t, c.cat, c.n, propSeed+int64(c.cat)*104729)
		for i, sc := range scs {
			sc, i, c := sc, i, c
			t.Run(fmt.Sprintf("%s-%02d", c.cat, i+1), func(t *testing.T) {
				t.Parallel()
				if err := proptest.CheckPartitionInvariance(sc, partitions); err != nil {
					t.Fatalf("scenario %s seed base %d index %d: %v", c.cat, propSeed, i, err)
				}
			})
		}
		total += len(scs)
	}
	t.Logf("checked %d generated workflows at P=%v", total, partitions)
}

// TestJournalInvariance is the metamorphic guard for the flight
// recorder: seeded random workflows searched and executed with and
// without a journal attached, at W ∈ {1, 4} and P ∈ {1, 8}, asserting
// results are bit-identical either way and every recorded journal is
// well-formed. Under -race this also exercises concurrent emitters
// against the single writer goroutine.
func TestJournalInvariance(t *testing.T) {
	counts := []struct {
		cat generator.Category
		n   int
	}{
		{generator.Small, 12},
		{generator.Medium, 4},
	}
	if testing.Short() {
		counts[0].n, counts[1].n = 4, 1
	}
	workers := []int{1, 4}
	partitions := []int{1, 8}
	total := 0
	for _, c := range counts {
		scs := suiteFor(t, c.cat, c.n, propSeed+int64(c.cat)*104729)
		for i, sc := range scs {
			sc, i, c := sc, i, c
			t.Run(fmt.Sprintf("%s-%02d", c.cat, i+1), func(t *testing.T) {
				t.Parallel()
				if err := proptest.CheckJournalInvariance(sc, workers, partitions); err != nil {
					t.Fatalf("scenario %s seed base %d index %d: %v", c.cat, propSeed, i, err)
				}
			})
		}
		total += len(scs)
	}
	t.Logf("checked %d generated workflows at W=%v, P=%v", total, workers, partitions)
}

// TestFaultRecoveryEquivalence is the metamorphic guard for the fault
// subsystem: ~200 seeded random workflows, each run clean and then under
// a seeded transient fault plan with retries at P ∈ {1, 8}, under a
// rate-1 permanent plan (must fail with a typed, attributed error), and
// through a crash-restart resume of the checkpoint runner. Any faulty
// run that ultimately succeeds must be bit-identical to the clean run —
// row order, per-node row counts, and the journal's row counters. Under
// -race this also exercises the injection points' concurrent occurrence
// accounting inside the partition workers.
func TestFaultRecoveryEquivalence(t *testing.T) {
	counts := []struct {
		cat generator.Category
		n   int
	}{
		{generator.Small, 140},
		{generator.Medium, 40},
		{generator.Large, 20},
	}
	if testing.Short() {
		counts[0].n, counts[1].n, counts[2].n = 24, 6, 2
	}
	partitions := []int{1, 8}
	total := 0
	for _, c := range counts {
		scs := suiteFor(t, c.cat, c.n, propSeed+int64(c.cat)*104729)
		for i, sc := range scs {
			sc, i, c := sc, i, c
			t.Run(fmt.Sprintf("%s-%02d", c.cat, i+1), func(t *testing.T) {
				t.Parallel()
				// Derive the fault seed from the scenario index so each
				// workflow sees a different — but fixed — schedule.
				if err := proptest.CheckFaultRecoveryEquivalence(sc, propSeed+int64(c.cat)*104729+int64(i), partitions); err != nil {
					t.Fatalf("scenario %s seed base %d index %d: %v", c.cat, propSeed, i, err)
				}
			})
		}
		total += len(scs)
	}
	t.Logf("checked %d generated workflows at P=%v", total, partitions)
}

// TestSharedRunEquivalence is the metamorphic guard for the shared-work
// suite scheduler: ~200 seeded shared-prefix suites, each run through
// share.RunSuite across worker counts W ∈ {1, 4}, cache budgets
// {unbounded, zero, tiny}, a zero-budget disk-spill configuration, and
// partition counts P ∈ {1, 8}, asserting every member comes out
// bit-identical to its own solo engine run — the scheduler, cache and
// eviction policy must be observationally invisible. Under -race this also
// exercises the stage scheduler's single-flight population and the cache's
// locking against concurrent residual runs.
func TestSharedRunEquivalence(t *testing.T) {
	configs := []struct {
		name    string
		workers int
		budget  int64
		spill   bool
	}{
		{"serial-unbounded", 1, -1, false},
		{"parallel-unbounded", 4, -1, false},
		{"parallel-zero", 4, 0, false},
		{"serial-zero-spill", 1, 0, true},
		{"parallel-tiny", 4, 4096, false},
		{"serial-tiny", 1, 4096, false},
	}
	counts := []struct {
		cat generator.Category
		n   int
	}{
		{generator.Small, 30},
		{generator.Medium, 4},
	}
	if testing.Short() {
		counts[0].n, counts[1].n = 4, 1
	}
	const suiteSize = 3
	total := 0
	for _, c := range counts {
		for s := 0; s < c.n; s++ {
			seed := propSeed + int64(c.cat)*104729 + int64(s)*7919
			// Alternate the partition count by suite so both engine modes
			// see every cache configuration.
			partitions := 1
			if s%2 == 1 {
				partitions = 8
			}
			for _, cfg := range configs {
				cfg, cat, seed, partitions := cfg, c.cat, seed, partitions
				t.Run(fmt.Sprintf("%s-%02d-%s-P%d", cat, s+1, cfg.name, partitions), func(t *testing.T) {
					t.Parallel()
					// Each subtest generates its own scenarios so parallel
					// configurations never share graphs or bindings.
					scs, err := generator.SharedSuite(cat, suiteSize, seed)
					if err != nil {
						t.Fatalf("generating shared %s suite: %v", cat, err)
					}
					spillDir := ""
					if cfg.spill {
						spillDir = t.TempDir()
					}
					if err := proptest.CheckSharedRunEquivalence(scs, cfg.workers, partitions, cfg.budget, spillDir); err != nil {
						t.Fatalf("shared %s suite seed %d: %v", cat, seed, err)
					}
				})
				total++
			}
		}
	}
	t.Logf("checked %d suite configurations of %d workflows each", total, suiteSize)
}

// TestSearchMutationLeak byte-compares every expanded parent's serialized
// form before and after expansion across several search depths — the
// aliasing regression the race detector can't catch, because no data race
// is involved when a single goroutine corrupts a shared parent.
func TestSearchMutationLeak(t *testing.T) {
	t.Run("fig1", func(t *testing.T) {
		t.Parallel()
		if err := proptest.CheckSearchMutationLeak(templates.Fig1Workflow(), 5, 6); err != nil {
			t.Fatal(err)
		}
	})
	n := 8
	if testing.Short() {
		n = 3
	}
	scs := suiteFor(t, generator.Small, n, propSeed+7)
	for i, sc := range scs {
		sc, i := sc, i
		t.Run(fmt.Sprintf("small-%02d", i+1), func(t *testing.T) {
			t.Parallel()
			if err := proptest.CheckSearchMutationLeak(sc.Graph, 4, 5); err != nil {
				t.Fatal(err)
			}
		})
	}
}
