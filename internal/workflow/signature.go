package workflow

import (
	"fmt"
	"sort"
	"strings"

	"etlopt/internal/data"
)

// Signature returns the state's identifying string (§4.1). Linear sequences
// render as dot-separated node tags, parallel converging flows as
// slash-slash groups in parentheses — the workflow of Fig. 1 renders as
// ((1.3)//(2.4.5.6)).7.8.9. Activities render their Tag (stable across
// transitions: DIS clones inherit their origin's tag, FAC and MER combine
// tags) and recordsets their node ID, so equivalent states reached along
// different transition paths share a signature and are generated — and
// costed — only once.
func (g *Graph) Signature() string {
	targets := g.Targets()
	if len(targets) == 0 {
		// Degenerate graphs (mid-construction): fall back to sinks of any
		// kind so the signature is still total.
		for id := 1; id < len(g.nodes); id++ {
			if g.nodes[id] != nil && len(g.succ[id]) == 0 {
				targets = append(targets, NodeID(id))
			}
		}
	}
	parts := make([]string, 0, len(targets))
	for _, t := range targets {
		parts = append(parts, g.chainString(t))
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// chainString renders the maximal linear chain ending at node id, recursing
// into parenthesized parallel groups at convergence points.
func (g *Graph) chainString(id NodeID) string {
	var labels []string
	cur := id
	for {
		labels = append(labels, g.nodeTag(cur))
		preds := g.pred[cur]
		switch len(preds) {
		case 0:
			return joinReversed(labels)
		case 1:
			p := preds[0]
			if len(g.succ[p]) != 1 {
				// Shared provider: its subtree is rendered inside this
				// chain too (duplicated per consumer), which keeps the
				// signature total and deterministic.
				labels = append(labels, g.chainString(p))
				return joinReversed(labels)
			}
			cur = p
		default:
			branches := make([]string, 0, len(preds))
			for _, p := range preds {
				branches = append(branches, "("+g.chainString(p)+")")
			}
			sort.Strings(branches)
			labels = append(labels, "("+strings.Join(branches, "//")+")")
			return joinReversed(labels)
		}
	}
}

func joinReversed(labels []string) string {
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteByte('.')
		}
		b.WriteString(labels[i])
	}
	return b.String()
}

// nodeTag returns the signature token for a node: the activity Tag or the
// recordset node ID.
func (g *Graph) nodeTag(id NodeID) string {
	n := g.nodes[id]
	if n.Kind == KindActivity {
		return n.Act.Tag
	}
	return fmt.Sprintf("%d", n.ID)
}

// LocalGroup is a maximal linear path of unary activities (§3.2),
// delimited by binary activities and recordsets. The HS algorithm's
// divide-and-conquer heuristic (Heuristic 4) optimizes local groups
// independently.
type LocalGroup []NodeID

// LocalGroups returns the local groups of the workflow, each ordered from
// provider to consumer, sorted by their first node ID. The Fig. 1 workflow
// yields {3}, {4,5,6} and {8}.
func (g *Graph) LocalGroups() []LocalGroup {
	inGroup := make(map[NodeID]bool)
	var groups []LocalGroup
	order, err := g.TopoSort()
	if err != nil {
		order = g.Nodes()
	}
	for _, id := range order {
		n := g.nodes[id]
		if n.Kind != KindActivity || n.Act.IsBinary() || inGroup[id] {
			continue
		}
		// id is an unvisited unary activity; find the start of its chain.
		start := id
		for {
			preds := g.pred[start]
			if len(preds) != 1 {
				break
			}
			p := preds[0]
			pn := g.nodes[p]
			if pn.Kind != KindActivity || pn.Act.IsBinary() || len(g.succ[p]) != 1 {
				break
			}
			start = p
		}
		// Walk the chain forward.
		var grp LocalGroup
		cur := start
		for {
			grp = append(grp, cur)
			inGroup[cur] = true
			succs := g.succ[cur]
			if len(succs) != 1 {
				break
			}
			s := succs[0]
			sn := g.nodes[s]
			if sn.Kind != KindActivity || sn.Act.IsBinary() || len(g.pred[s]) != 1 {
				break
			}
			cur = s
		}
		groups = append(groups, grp)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// GroupOf returns the local group containing the given activity, or nil.
func (g *Graph) GroupOf(id NodeID) LocalGroup {
	for _, grp := range g.LocalGroups() {
		for _, m := range grp {
			if m == id {
				return grp
			}
		}
	}
	return nil
}

// HomologousPair names two activities that satisfy the full homologous
// definition of §3.2: identical semantics and auxiliary schemata, found in
// local groups converging on the same binary activity.
type HomologousPair struct {
	A, B   NodeID // the homologous activities (A in the binary's first branch)
	Binary NodeID // the binary activity their local groups converge on
}

// FindHomologousPairs detects homologous activities (§3.2): for every
// binary activity, it pairs activities from the local groups feeding its
// two inputs whose semantics and functionality/generated/projected-out
// schemata coincide. These are the factorization candidates of HS Phase II
// (Heuristic 1).
func (g *Graph) FindHomologousPairs() []HomologousPair {
	var pairs []HomologousPair
	for idx := 1; idx < len(g.nodes); idx++ {
		id := NodeID(idx)
		n := g.nodes[id]
		if n == nil || n.Kind != KindActivity || !n.Act.IsBinary() {
			continue
		}
		preds := g.pred[id]
		if len(preds) != 2 {
			continue
		}
		left := g.groupEndingAt(preds[0])
		right := g.groupEndingAt(preds[1])
		for _, a := range left {
			for _, b := range right {
				if g.nodes[a].Act.Homologous(g.nodes[b].Act) {
					pairs = append(pairs, HomologousPair{A: a, B: b, Binary: id})
				}
			}
		}
	}
	return pairs
}

// groupEndingAt returns the local group whose last activity is tail, if
// tail is a unary activity; otherwise nil.
func (g *Graph) groupEndingAt(tail NodeID) LocalGroup {
	n := g.nodes[tail]
	if n == nil || n.Kind != KindActivity || n.Act.IsBinary() {
		return nil
	}
	return g.GroupOf(tail)
}

// DistributableActivity names an activity that could be cloned into the
// input branches of the binary activity that (directly or through its
// local group) provides it.
type DistributableActivity struct {
	Activity NodeID
	Binary   NodeID
}

// FindDistributableActivities detects activities eligible for the DIS
// transition (Heuristic 2): unary activities in the local group that starts
// right after a binary activity, whose operation distributes over that
// binary operation (see CanDistributeOver).
func (g *Graph) FindDistributableActivities() []DistributableActivity {
	var out []DistributableActivity
	for idx := 1; idx < len(g.nodes); idx++ {
		id := NodeID(idx)
		n := g.nodes[id]
		if n == nil || n.Kind != KindActivity || !n.Act.IsBinary() {
			continue
		}
		succs := g.succ[id]
		if len(succs) != 1 {
			continue
		}
		grp := g.groupStartingAt(succs[0])
		for _, a := range grp {
			if CanDistributeOver(g.nodes[a].Act, n.Act) {
				out = append(out, DistributableActivity{Activity: a, Binary: id})
			}
		}
	}
	return out
}

// groupStartingAt returns the local group whose first activity is head, if
// head is a unary activity; otherwise nil.
func (g *Graph) groupStartingAt(head NodeID) LocalGroup {
	n := g.nodes[head]
	if n == nil || n.Kind != KindActivity || n.Act.IsBinary() {
		return nil
	}
	return g.GroupOf(head)
}

// CanDistributeOver reports whether cloning unary activity a into the input
// branches of binary activity b preserves workflow semantics:
//
//   - over a bag union, selections, not-null checks, scalar functions and
//     projections distribute freely; duplicate-sensitive operations
//     (primary-key checks, distinct, aggregations, surrogate keys whose
//     lookup caching is shared) do not;
//   - over joins, differences and intersections, only selection-like
//     activities whose functionality schema is contained in the binary's
//     key attributes distribute (both branches then filter consistently).
func CanDistributeOver(a *Activity, b *Activity) bool {
	if a.IsBinary() {
		return false
	}
	switch b.Sem.Op {
	case OpUnion:
		switch a.Sem.Op {
		case OpFilter, OpNotNull, OpFunc, OpProject, OpSurrogateKey:
			return true
		case OpPKCheck:
			// Lookup-based checks are per-row and distribute; group-based
			// checks are duplicate-sensitive across the merged flow and do
			// not.
			return a.Sem.Lookup != ""
		default:
			return false
		}
	case OpJoin, OpDiff, OpIntersect:
		switch a.Sem.Op {
		case OpFilter, OpNotNull:
			return data.Schema(b.Sem.Attrs).HasAll(a.Fun)
		case OpPKCheck:
			return a.Sem.Lookup != "" && data.Schema(b.Sem.Attrs).HasAll(a.Fun)
		default:
			return false
		}
	default:
		return false
	}
}
