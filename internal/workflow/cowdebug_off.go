//go:build !etldebug

package workflow

// DebugCOW reports whether the copy-on-write ownership audit is compiled
// in. Build with `-tags etldebug` to enable it: every transition then
// re-verifies graph integrity and checks that rewriting a Mutate child
// left its parent's signature untouched. Release builds pay nothing — the
// shadow is never allocated and the checks compile to no-ops.
const DebugCOW = false

// cowShadow is the etldebug ownership-audit record; empty in release
// builds.
type cowShadow struct{}

func debugRecordMutate(parent, child *Graph) {}

// DebugVerifySharing is a no-op without `-tags etldebug`.
func (g *Graph) DebugVerifySharing() {}
