package workflow

import (
	"fmt"
	"sort"
	"strings"

	"etlopt/internal/data"
)

// NodeID identifies a node within a Graph. IDs equal the execution priority
// assigned by the topological ordering of the workflow in its *initial*
// form (§4.1) for initial nodes; nodes created later by transitions receive
// fresh IDs from the graph's counter.
type NodeID int

// NodeKind discriminates activities from recordsets.
type NodeKind uint8

// Node kinds.
const (
	KindActivity NodeKind = iota
	KindRecordset
)

// RecordsetRef statically describes a recordset node: its name, schema and
// an expected cardinality used by cost models for sources. The actual data
// binding happens in the engine.
type RecordsetRef struct {
	// Name is the recordset's unique name.
	Name string
	// Schema is the flat record schema in reference attribute names.
	Schema data.Schema
	// Rows is the expected cardinality; meaningful for sources.
	Rows float64
	// IsSource marks members of RS_S, IsTarget members of RS_T (§2.1).
	IsSource bool
	IsTarget bool
}

// Clone returns a deep copy.
func (r *RecordsetRef) Clone() *RecordsetRef {
	c := *r
	c.Schema = r.Schema.Clone()
	return &c
}

// Node is a vertex of the workflow graph: either an activity or a
// recordset, together with its derived input/output schemata.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Act is set for activity nodes.
	Act *Activity
	// RS is set for recordset nodes.
	RS *RecordsetRef
	// In holds the derived input schemata (one per provider, in provider
	// order); populated by RegenerateSchemata. Recordsets use In for the
	// loading flow when they have a provider.
	In []data.Schema
	// Out is the derived output schema; for recordsets it equals the
	// recordset schema.
	Out data.Schema
}

// Label returns a short human-readable description of the node.
func (n *Node) Label() string {
	if n.Kind == KindRecordset {
		return n.RS.Name
	}
	if n.Act.Name != "" {
		return n.Act.Name
	}
	return n.Act.Sem.String()
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{ID: n.ID, Kind: n.Kind}
	if n.Act != nil {
		c.Act = n.Act.Clone()
	}
	if n.RS != nil {
		c.RS = n.RS.Clone()
	}
	c.In = make([]data.Schema, len(n.In))
	for i, s := range n.In {
		c.In[i] = s.Clone()
	}
	c.Out = n.Out.Clone()
	return c
}

// shallowClone copies the node struct, structurally sharing the activity,
// recordset descriptor and schema slices with the original. This is safe
// under the package's immutability discipline: activities and recordset
// descriptors are never mutated after being added to a graph (transitions
// clone an activity before changing its tag), and derived schemas are
// replaced wholesale by schema regeneration, never edited in place.
func (n *Node) shallowClone() *Node {
	c := *n
	return &c
}

// Graph is an ETL workflow: a DAG G(V,E) with V = A ∪ RS and E = Pr (§2.1).
// Provider lists are ordered; a binary activity's first provider feeds its
// first input schema. Graph is not safe for concurrent mutation; the
// optimizer clones per state.
type Graph struct {
	nodes  map[NodeID]*Node
	order  []NodeID            // deterministic iteration order (insertion)
	succ   map[NodeID][]NodeID // consumers, in attachment order
	pred   map[NodeID][]NodeID // providers, in attachment order
	nextID NodeID

	// topoCache memoizes TopoSort between mutations; every structural
	// change invalidates it. Derived states are costed, signed and
	// checked several times each, so the memo is a large win during
	// search.
	topoCache []NodeID
}

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID][]NodeID),
		pred:  make(map[NodeID][]NodeID),
	}
}

// allocID returns the next fresh node ID.
func (g *Graph) allocID() NodeID {
	g.nextID++
	return g.nextID
}

// AddRecordset adds a recordset node and returns its ID.
func (g *Graph) AddRecordset(rs *RecordsetRef) NodeID {
	id := g.allocID()
	n := &Node{ID: id, Kind: KindRecordset, RS: rs.Clone(), Out: rs.Schema.Clone()}
	g.nodes[id] = n
	g.order = append(g.order, id)
	g.topoCache = nil
	return id
}

// AddActivity adds an activity node and returns its ID. The activity's Tag
// defaults to the decimal rendering of the ID when empty.
func (g *Graph) AddActivity(a *Activity) NodeID {
	id := g.allocID()
	act := a.Clone()
	if act.Tag == "" {
		act.Tag = fmt.Sprintf("%d", id)
	}
	n := &Node{ID: id, Kind: KindActivity, Act: act}
	g.nodes[id] = n
	g.order = append(g.order, id)
	g.topoCache = nil
	return id
}

// AddEdge records that to consumes data from from.
func (g *Graph) AddEdge(from, to NodeID) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("workflow: edge from unknown node %d", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("workflow: edge to unknown node %d", to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("workflow: duplicate edge %d->%d", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.topoCache = nil
	return nil
}

// MustAddEdge is AddEdge panicking on error; for construction code.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from→to if present.
func (g *Graph) RemoveEdge(from, to NodeID) {
	g.succ[from] = removeID(g.succ[from], to)
	g.pred[to] = removeID(g.pred[to], from)
	g.topoCache = nil
}

// RemoveNode deletes a node and all its edges.
func (g *Graph) RemoveNode(id NodeID) {
	for _, s := range append([]NodeID(nil), g.succ[id]...) {
		g.RemoveEdge(id, s)
	}
	for _, p := range append([]NodeID(nil), g.pred[id]...) {
		g.RemoveEdge(p, id)
	}
	delete(g.nodes, id)
	delete(g.succ, id)
	delete(g.pred, id)
	g.order = removeID(g.order, id)
	g.topoCache = nil
}

// ReplaceProvider substitutes newP for oldP in node's provider list,
// preserving the provider's position — essential for binary activities,
// whose first provider feeds their first input schema. The succ lists of
// oldP and newP are updated accordingly.
func (g *Graph) ReplaceProvider(node, oldP, newP NodeID) error {
	preds := g.pred[node]
	found := false
	for i, p := range preds {
		if p == oldP {
			preds[i] = newP
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("workflow: node %d has no provider %d to replace", node, oldP)
	}
	g.succ[oldP] = removeID(g.succ[oldP], node)
	g.succ[newP] = append(g.succ[newP], node)
	g.topoCache = nil
	return nil
}

// MustReplaceProvider is ReplaceProvider panicking on error.
func (g *Graph) MustReplaceProvider(node, oldP, newP NodeID) {
	if err := g.ReplaceProvider(node, oldP, newP); err != nil {
		panic(err)
	}
}

func removeID(ids []NodeID, id NodeID) []NodeID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Providers returns the ordered provider IDs of a node.
func (g *Graph) Providers(id NodeID) []NodeID { return g.pred[id] }

// Consumers returns the ordered consumer IDs of a node.
func (g *Graph) Consumers(id NodeID) []NodeID { return g.succ[id] }

// Nodes returns all node IDs in insertion order.
func (g *Graph) Nodes() []NodeID { return append([]NodeID(nil), g.order...) }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Activities returns the IDs of all activity nodes in insertion order.
func (g *Graph) Activities() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if g.nodes[id].Kind == KindActivity {
			out = append(out, id)
		}
	}
	return out
}

// Recordsets returns the IDs of all recordset nodes in insertion order.
func (g *Graph) Recordsets() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if g.nodes[id].Kind == KindRecordset {
			out = append(out, id)
		}
	}
	return out
}

// Sources returns the IDs of source recordsets (RS_S).
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		n := g.nodes[id]
		if n.Kind == KindRecordset && len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Targets returns the IDs of target recordsets (RS_T).
func (g *Graph) Targets() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		n := g.nodes[id]
		if n.Kind == KindRecordset && len(g.succ[id]) == 0 && len(g.pred[id]) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns a deep copy of the graph sharing no mutable state.
//
// Immutability discipline: the search treats every reached state's graph
// as frozen — transitions clone before rewriting, so a state handed to
// concurrent workers is never structurally mutated. The only write that
// can happen to a "read-only" graph is TopoSort lazily filling topoCache;
// callers that share one graph across goroutines must call TopoSort once
// beforehand to prime it (see the core package's pool).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  make(map[NodeID]*Node, len(g.nodes)),
		order:  append([]NodeID(nil), g.order...),
		succ:   make(map[NodeID][]NodeID, len(g.succ)),
		pred:   make(map[NodeID][]NodeID, len(g.pred)),
		nextID: g.nextID,
	}
	for id, n := range g.nodes {
		c.nodes[id] = n.shallowClone()
	}
	for id, s := range g.succ {
		if len(s) > 0 {
			c.succ[id] = append([]NodeID(nil), s...)
		}
	}
	for id, p := range g.pred {
		if len(p) > 0 {
			c.pred[id] = append([]NodeID(nil), p...)
		}
	}
	if g.topoCache != nil {
		c.topoCache = append([]NodeID(nil), g.topoCache...)
	}
	return c
}

// TopoSort returns the node IDs in a deterministic topological order
// (Kahn's algorithm breaking ties by smallest ID). It returns an error if
// the graph contains a cycle.
func (g *Graph) TopoSort() ([]NodeID, error) {
	if g.topoCache != nil {
		return g.topoCache, nil
	}
	indeg := make(map[NodeID]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	var ready []NodeID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sortIDs(ready)
	var out []NodeID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		var unlocked []NodeID
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		sortIDs(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("workflow: graph contains a cycle (%d of %d nodes ordered)", len(out), len(g.nodes))
	}
	g.topoCache = out
	return out, nil
}

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func mergeSorted(a, b []NodeID) []NodeID {
	if len(b) == 0 {
		return a
	}
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Validate checks the structural well-formedness rules of §2.1: the graph
// is a DAG; every activity has at least one provider and exactly the arity
// of inputs its operation requires, and at least one consumer; every input
// schema has exactly one provider; recordsets have at most one provider;
// source recordsets have consumers.
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, id := range g.order {
		n := g.nodes[id]
		switch n.Kind {
		case KindActivity:
			want := 1
			if n.Act.IsBinary() {
				want = 2
			}
			if got := len(g.pred[id]); got != want {
				return fmt.Errorf("workflow: activity %d (%s) has %d providers, wants %d",
					id, n.Label(), got, want)
			}
			if len(g.succ[id]) == 0 {
				return fmt.Errorf("workflow: activity %d (%s) has no consumer", id, n.Label())
			}
		case KindRecordset:
			if len(g.pred[id]) > 1 {
				return fmt.Errorf("workflow: recordset %s has %d providers, at most 1 allowed",
					n.RS.Name, len(g.pred[id]))
			}
			if len(g.pred[id]) == 0 && len(g.succ[id]) == 0 {
				return fmt.Errorf("workflow: recordset %s is disconnected", n.RS.Name)
			}
		}
	}
	return nil
}

// String renders the graph as an adjacency list for diagnostics.
func (g *Graph) String() string {
	order, err := g.TopoSort()
	if err != nil {
		order = g.Nodes()
	}
	var b strings.Builder
	for _, id := range order {
		n := g.nodes[id]
		fmt.Fprintf(&b, "%3d %-30s", id, n.Label())
		if len(g.succ[id]) > 0 {
			b.WriteString(" -> ")
			for i, s := range g.succ[id] {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", s)
			}
		}
		if n.Kind == KindActivity {
			fmt.Fprintf(&b, "   [out: %s]", n.Out)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
