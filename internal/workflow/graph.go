package workflow

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"etlopt/internal/data"
)

// NodeID identifies a node within a Graph. IDs equal the execution priority
// assigned by the topological ordering of the workflow in its *initial*
// form (§4.1) for initial nodes; nodes created later by transitions receive
// fresh IDs from the graph's counter. IDs are never reused, so ascending ID
// order equals insertion order.
type NodeID int

// NodeKind discriminates activities from recordsets.
type NodeKind uint8

// Node kinds.
const (
	KindActivity NodeKind = iota
	KindRecordset
)

// RecordsetRef statically describes a recordset node: its name, schema and
// an expected cardinality used by cost models for sources. The actual data
// binding happens in the engine.
type RecordsetRef struct {
	// Name is the recordset's unique name.
	Name string
	// Schema is the flat record schema in reference attribute names.
	Schema data.Schema
	// Rows is the expected cardinality; meaningful for sources.
	Rows float64
	// IsSource marks members of RS_S, IsTarget members of RS_T (§2.1).
	IsSource bool
	IsTarget bool
}

// Clone returns a deep copy.
func (r *RecordsetRef) Clone() *RecordsetRef {
	c := *r
	c.Schema = r.Schema.Clone()
	return &c
}

// gtag is a graph ownership generation: a unique identity allocated per
// mutable graph "epoch". A node whose owner equals the graph's current tag
// may be written in place; any other node is shared with another graph (a
// Mutate parent or child) and must be copied before writing. Calling
// Mutate refreshes the parent's tag too, so both sides of the split
// copy-on-write from then on.
type gtag struct{ _ byte }

// Node is a vertex of the workflow graph: either an activity or a
// recordset, together with its derived input/output schemata.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Act is set for activity nodes.
	Act *Activity
	// RS is set for recordset nodes.
	RS *RecordsetRef
	// In holds the derived input schemata (one per provider, in provider
	// order); populated by RegenerateSchemata. Recordsets use In for the
	// loading flow when they have a provider.
	In []data.Schema
	// Out is the derived output schema; for recordsets it equals the
	// recordset schema.
	Out data.Schema

	// owner is the graph epoch allowed to write this node in place; see
	// Graph.mutableNode. Nodes reachable from a graph with a different tag
	// are structurally shared and copied on first write.
	owner *gtag
}

// Label returns a short human-readable description of the node.
func (n *Node) Label() string {
	if n.Kind == KindRecordset {
		return n.RS.Name
	}
	if n.Act.Name != "" {
		return n.Act.Name
	}
	return n.Act.Sem.String()
}

// Clone returns a deep copy of the node. The copy carries no owner; the
// graph inserting it assigns one.
func (n *Node) Clone() *Node {
	c := &Node{ID: n.ID, Kind: n.Kind}
	if n.Act != nil {
		c.Act = n.Act.Clone()
	}
	if n.RS != nil {
		c.RS = n.RS.Clone()
	}
	c.In = make([]data.Schema, len(n.In))
	for i, s := range n.In {
		c.In[i] = s.Clone()
	}
	c.Out = n.Out.Clone()
	return c
}

// Graph is an ETL workflow: a DAG G(V,E) with V = A ∪ RS and E = Pr (§2.1).
// Provider lists are ordered; a binary activity's first provider feeds its
// first input schema. Graph is not safe for concurrent mutation; the
// optimizer derives per-state graphs with Mutate (copy-on-write) or Clone.
//
// Storage is slice-backed and indexed by NodeID: index 0 is unused, removed
// nodes leave a nil slot, and IDs are never reused, so ascending index
// order is insertion order. Mutate children copy only the three outer
// slices (O(V) pointer copies) and structurally share every node and edge
// list with the parent; all mutating methods replace inner slices with
// fresh copies rather than editing them, and node writes go through
// mutableNode, so a rewrite touching k nodes allocates O(V + k), not a
// deep copy of the state.
type Graph struct {
	nodes []*Node    // indexed by NodeID; nil = removed or never allocated
	succ  [][]NodeID // consumers, in attachment order
	pred  [][]NodeID // providers, in attachment order

	nextID NodeID
	live   int // number of non-nil nodes

	// topoCache memoizes TopoSort between mutations; every structural
	// change invalidates it (by clearing this graph's field only — a
	// shared cache slice itself is never written). Derived states are
	// costed, signed and checked several times each, so the memo is a
	// large win during search.
	topoCache []NodeID

	// owner is the graph's current ownership epoch (see gtag). It is
	// atomic only because Mutate — callable concurrently on one shared
	// parent by several search workers — refreshes it.
	owner atomic.Pointer[gtag]

	// dbg carries the `-tags etldebug` ownership-audit shadow; nil (and
	// zero-cost) in release builds. See cowdebug_on.go.
	dbg *cowShadow
}

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph {
	g := &Graph{
		nodes: make([]*Node, 1),
		succ:  make([][]NodeID, 1),
		pred:  make([][]NodeID, 1),
	}
	g.owner.Store(new(gtag))
	return g
}

// tag returns the graph's current ownership epoch.
func (g *Graph) tag() *gtag { return g.owner.Load() }

// has reports whether id names a live node.
func (g *Graph) has(id NodeID) bool {
	return id > 0 && int(id) < len(g.nodes) && g.nodes[id] != nil
}

// allocID returns the next fresh node ID, growing the backing slices.
func (g *Graph) allocID() NodeID {
	g.nextID++
	for int(g.nextID) >= len(g.nodes) {
		g.nodes = append(g.nodes, nil)
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
	}
	return g.nextID
}

// mutableNode returns a node that this graph may write in place: the node
// itself when this graph owns it, otherwise a fresh copy installed in this
// graph's node table (the parent keeps the original). Schema regeneration
// funnels every node write through here, which is what makes Mutate
// children safe to rewrite while sharing untouched nodes with their
// parent.
func (g *Graph) mutableNode(id NodeID) *Node {
	n := g.nodes[id]
	if n == nil || n.owner == g.tag() {
		return n
	}
	c := *n
	c.owner = g.tag()
	g.nodes[id] = &c
	return g.nodes[id]
}

// AddRecordset adds a recordset node and returns its ID.
func (g *Graph) AddRecordset(rs *RecordsetRef) NodeID {
	id := g.allocID()
	n := &Node{ID: id, Kind: KindRecordset, RS: rs.Clone(), Out: rs.Schema.Clone(), owner: g.tag()}
	g.nodes[id] = n
	g.live++
	g.topoCache = nil
	return id
}

// AddActivity adds an activity node and returns its ID. The activity's Tag
// defaults to the decimal rendering of the ID when empty.
func (g *Graph) AddActivity(a *Activity) NodeID {
	id := g.allocID()
	act := a.Clone()
	if act.Tag == "" {
		act.Tag = fmt.Sprintf("%d", id)
	}
	n := &Node{ID: id, Kind: KindActivity, Act: act, owner: g.tag()}
	g.nodes[id] = n
	g.live++
	g.topoCache = nil
	return id
}

// appendID returns a fresh slice of ids plus id. Edge lists are replaced,
// never appended in place: a Mutate child shares its parent's backing
// arrays, and an in-place append from two sibling children would race on
// the shared spare capacity.
func appendID(ids []NodeID, id NodeID) []NodeID {
	out := make([]NodeID, len(ids)+1)
	copy(out, ids)
	out[len(ids)] = id
	return out
}

// removeIDCopy returns a fresh slice of ids without id (nil when empty).
func removeIDCopy(ids []NodeID, id NodeID) []NodeID {
	var out []NodeID
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// AddEdge records that to consumes data from from.
func (g *Graph) AddEdge(from, to NodeID) error {
	if !g.has(from) {
		return fmt.Errorf("workflow: edge from unknown node %d", from)
	}
	if !g.has(to) {
		return fmt.Errorf("workflow: edge to unknown node %d", to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("workflow: duplicate edge %d->%d", from, to)
		}
	}
	g.succ[from] = appendID(g.succ[from], to)
	g.pred[to] = appendID(g.pred[to], from)
	g.topoCache = nil
	return nil
}

// MustAddEdge is AddEdge panicking on error; for construction code.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from→to if present.
func (g *Graph) RemoveEdge(from, to NodeID) {
	g.succ[from] = removeIDCopy(g.succ[from], to)
	g.pred[to] = removeIDCopy(g.pred[to], from)
	g.topoCache = nil
}

// RemoveNode deletes a node and all its edges.
func (g *Graph) RemoveNode(id NodeID) {
	if !g.has(id) {
		return
	}
	for _, s := range g.succ[id] {
		g.pred[s] = removeIDCopy(g.pred[s], id)
	}
	for _, p := range g.pred[id] {
		g.succ[p] = removeIDCopy(g.succ[p], id)
	}
	g.nodes[id] = nil
	g.succ[id] = nil
	g.pred[id] = nil
	g.live--
	g.topoCache = nil
}

// ReplaceProvider substitutes newP for oldP in node's provider list,
// preserving the provider's position — essential for binary activities,
// whose first provider feeds their first input schema. The succ lists of
// oldP and newP are updated accordingly.
func (g *Graph) ReplaceProvider(node, oldP, newP NodeID) error {
	preds := g.pred[node]
	idx := -1
	for i, p := range preds {
		if p == oldP {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("workflow: node %d has no provider %d to replace", node, oldP)
	}
	out := make([]NodeID, len(preds))
	copy(out, preds)
	out[idx] = newP
	g.pred[node] = out
	g.succ[oldP] = removeIDCopy(g.succ[oldP], node)
	g.succ[newP] = appendID(g.succ[newP], node)
	g.topoCache = nil
	return nil
}

// MustReplaceProvider is ReplaceProvider panicking on error.
func (g *Graph) MustReplaceProvider(node, oldP, newP NodeID) {
	if err := g.ReplaceProvider(node, oldP, newP); err != nil {
		panic(err)
	}
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if !g.has(id) {
		return nil
	}
	return g.nodes[id]
}

// Providers returns the ordered provider IDs of a node.
func (g *Graph) Providers(id NodeID) []NodeID {
	if id <= 0 || int(id) >= len(g.pred) {
		return nil
	}
	return g.pred[id]
}

// Consumers returns the ordered consumer IDs of a node.
func (g *Graph) Consumers(id NodeID) []NodeID {
	if id <= 0 || int(id) >= len(g.succ) {
		return nil
	}
	return g.succ[id]
}

// Nodes returns all node IDs in insertion order (ascending, since IDs are
// never reused).
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, g.live)
	for id := 1; id < len(g.nodes); id++ {
		if g.nodes[id] != nil {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.live }

// Activities returns the IDs of all activity nodes in insertion order.
func (g *Graph) Activities() []NodeID {
	var out []NodeID
	for id := 1; id < len(g.nodes); id++ {
		if n := g.nodes[id]; n != nil && n.Kind == KindActivity {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Recordsets returns the IDs of all recordset nodes in insertion order.
func (g *Graph) Recordsets() []NodeID {
	var out []NodeID
	for id := 1; id < len(g.nodes); id++ {
		if n := g.nodes[id]; n != nil && n.Kind == KindRecordset {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Sources returns the IDs of source recordsets (RS_S).
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		if n != nil && n.Kind == KindRecordset && len(g.pred[id]) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Targets returns the IDs of target recordsets (RS_T).
func (g *Graph) Targets() []NodeID {
	var out []NodeID
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		if n != nil && n.Kind == KindRecordset && len(g.succ[id]) == 0 && len(g.pred[id]) > 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Mutate returns a copy-on-write child of g: a new graph sharing every
// node, edge list and the memoized topological order with g, copying only
// the three outer index slices. The child may be rewritten freely — its
// mutating methods replace inner slices and copy shared nodes before
// writing — while g continues to serve reads (and further Mutate calls)
// unchanged. This is the successor-construction primitive of the search:
// a transition touching k nodes costs O(V + k) instead of a full clone.
//
// Mutate also refreshes g's own ownership tag, so if the caller later
// mutates g itself, g copies shared nodes too instead of corrupting its
// children. Mutate is safe to call concurrently on one shared parent;
// a graph must still never be *rewritten* by two goroutines at once.
func (g *Graph) Mutate() *Graph {
	c := &Graph{
		nodes:     append(make([]*Node, 0, len(g.nodes)+2), g.nodes...),
		succ:      append(make([][]NodeID, 0, len(g.succ)+2), g.succ...),
		pred:      append(make([][]NodeID, 0, len(g.pred)+2), g.pred...),
		nextID:    g.nextID,
		live:      g.live,
		topoCache: g.topoCache,
	}
	c.owner.Store(new(gtag))
	// Disown the parent's nodes: whichever side writes first now copies.
	g.owner.Store(new(gtag))
	debugRecordMutate(g, c)
	return c
}

// Clone returns an independent copy of the graph sharing no mutable state:
// node structs and edge lists are copied (activities, recordset
// descriptors and derived schemas stay structurally shared under the
// package's immutability discipline — transitions clone an activity before
// changing it, and schema regeneration replaces schema slices wholesale).
//
// Prefer Mutate for successor construction; Clone remains for callers that
// want a flat, parent-independent copy, and it is what the full-clone
// expansion baseline measures against.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  make([]*Node, len(g.nodes)),
		succ:   make([][]NodeID, len(g.succ)),
		pred:   make([][]NodeID, len(g.pred)),
		nextID: g.nextID,
		live:   g.live,
	}
	c.owner.Store(new(gtag))
	tag := c.tag()
	for id, n := range g.nodes {
		if n == nil {
			continue
		}
		cp := *n
		cp.owner = tag
		c.nodes[id] = &cp
	}
	for id, s := range g.succ {
		if len(s) > 0 {
			c.succ[id] = append([]NodeID(nil), s...)
		}
	}
	for id, p := range g.pred {
		if len(p) > 0 {
			c.pred[id] = append([]NodeID(nil), p...)
		}
	}
	if g.topoCache != nil {
		c.topoCache = append([]NodeID(nil), g.topoCache...)
	}
	return c
}

// DeepClone returns a fully deep copy: nodes, activities, recordset
// descriptors and every derived schema. Nothing is shared with g. It is
// the heavyweight end of the copying spectrum (Mutate ⊂ Clone ⊂
// DeepClone), useful for tests and for callers that intend to mutate
// activities in place.
func (g *Graph) DeepClone() *Graph {
	c := &Graph{
		nodes:  make([]*Node, len(g.nodes)),
		succ:   make([][]NodeID, len(g.succ)),
		pred:   make([][]NodeID, len(g.pred)),
		nextID: g.nextID,
		live:   g.live,
	}
	c.owner.Store(new(gtag))
	tag := c.tag()
	for id, n := range g.nodes {
		if n == nil {
			continue
		}
		cp := n.Clone()
		cp.owner = tag
		c.nodes[id] = cp
	}
	for id, s := range g.succ {
		if len(s) > 0 {
			c.succ[id] = append([]NodeID(nil), s...)
		}
	}
	for id, p := range g.pred {
		if len(p) > 0 {
			c.pred[id] = append([]NodeID(nil), p...)
		}
	}
	if g.topoCache != nil {
		c.topoCache = append([]NodeID(nil), g.topoCache...)
	}
	return c
}

// TopoSort returns the node IDs in a deterministic topological order
// (Kahn's algorithm breaking ties by smallest ID). It returns an error if
// the graph contains a cycle.
//
// The order is memoized; callers that share one graph across goroutines
// must call TopoSort once beforehand to prime the cache (see the core
// package's pool). A Mutate child inherits its parent's primed cache and
// drops only its own reference on rewrite.
func (g *Graph) TopoSort() ([]NodeID, error) {
	if g.topoCache != nil {
		return g.topoCache, nil
	}
	indeg := make([]int, len(g.nodes))
	var ready []NodeID
	for id := 1; id < len(g.nodes); id++ {
		if g.nodes[id] == nil {
			continue
		}
		indeg[id] = len(g.pred[id])
		if indeg[id] == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	var out []NodeID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		var unlocked []NodeID
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		sortIDs(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != g.live {
		return nil, fmt.Errorf("workflow: graph contains a cycle (%d of %d nodes ordered)", len(out), g.live)
	}
	g.topoCache = out
	return out, nil
}

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func mergeSorted(a, b []NodeID) []NodeID {
	if len(b) == 0 {
		return a
	}
	out := make([]NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Validate checks the structural well-formedness rules of §2.1: the graph
// is a DAG; every activity has at least one provider and exactly the arity
// of inputs its operation requires, and at least one consumer; every input
// schema has exactly one provider; recordsets have at most one provider;
// source recordsets have consumers.
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		if n == nil {
			continue
		}
		switch n.Kind {
		case KindActivity:
			want := 1
			if n.Act.IsBinary() {
				want = 2
			}
			if got := len(g.pred[id]); got != want {
				return fmt.Errorf("workflow: activity %d (%s) has %d providers, wants %d",
					id, n.Label(), got, want)
			}
			if len(g.succ[id]) == 0 {
				return fmt.Errorf("workflow: activity %d (%s) has no consumer", id, n.Label())
			}
		case KindRecordset:
			if len(g.pred[id]) > 1 {
				return fmt.Errorf("workflow: recordset %s has %d providers, at most 1 allowed",
					n.RS.Name, len(g.pred[id]))
			}
			if len(g.pred[id]) == 0 && len(g.succ[id]) == 0 {
				return fmt.Errorf("workflow: recordset %s is disconnected", n.RS.Name)
			}
		}
	}
	return nil
}

// CheckIntegrity verifies the representation invariants of the slice-backed
// COW storage: node IDs match their slots, the live count is exact, every
// edge endpoint is live, succ/pred mirror each other, and every node
// carries an ownership tag. It exists for the `-tags etldebug` ownership
// audit (transitions run it after every rewrite) and for tests; release
// search paths never call it.
func (g *Graph) CheckIntegrity() error {
	live := 0
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		if n == nil {
			continue
		}
		live++
		if int(n.ID) != id {
			return fmt.Errorf("workflow: node at slot %d carries ID %d", id, n.ID)
		}
		if n.owner == nil {
			return fmt.Errorf("workflow: node %d has no ownership tag", id)
		}
		for _, s := range g.succ[id] {
			if !g.has(s) {
				return fmt.Errorf("workflow: edge %d->%d points at a dead node", id, s)
			}
			if !containsID(g.pred[s], NodeID(id)) {
				return fmt.Errorf("workflow: edge %d->%d missing from pred[%d]", id, s, s)
			}
		}
		for _, p := range g.pred[id] {
			if !g.has(p) {
				return fmt.Errorf("workflow: edge %d->%d comes from a dead node", p, id)
			}
			if !containsID(g.succ[p], NodeID(id)) {
				return fmt.Errorf("workflow: edge %d->%d missing from succ[%d]", p, id, p)
			}
		}
	}
	if live != g.live {
		return fmt.Errorf("workflow: live count %d, found %d nodes", g.live, live)
	}
	for id := g.nextID + 1; int(id) < len(g.nodes); id++ {
		if g.nodes[id] != nil {
			return fmt.Errorf("workflow: node %d beyond the ID counter %d", id, g.nextID)
		}
	}
	return nil
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// String renders the graph as an adjacency list for diagnostics.
func (g *Graph) String() string {
	order, err := g.TopoSort()
	if err != nil {
		order = g.Nodes()
	}
	var b strings.Builder
	for _, id := range order {
		n := g.nodes[id]
		fmt.Fprintf(&b, "%3d %-30s", id, n.Label())
		if len(g.succ[id]) > 0 {
			b.WriteString(" -> ")
			for i, s := range g.succ[id] {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", s)
			}
		}
		if n.Kind == KindActivity {
			fmt.Fprintf(&b, "   [out: %s]", n.Out)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
