package workflow

import (
	"fmt"

	"etlopt/internal/data"
)

// RegenerateSchemata recomputes the input and output schemata of every node
// in topological order. Per §3.3, "after each transition has taken place,
// the input and output schemata of each activity are automatically
// re-generated": an activity's input schema is its provider's output
// schema, and its output schema follows from the operation — input minus
// projected-out plus generated attributes, with operation-specific rules
// for aggregations and binary activities.
//
// RegenerateSchemata only fails on structurally impossible graphs (missing
// providers, cycles); semantic violations such as a functionality schema
// not covered by the input are reported separately by CheckWellFormed so
// that transition code can distinguish "broken graph" from "rejected
// rewrite".
func (g *Graph) RegenerateSchemata() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, id := range order {
		n := g.mutableNode(id)
		preds := g.pred[id]
		n.In = make([]data.Schema, len(preds))
		for i, p := range preds {
			// Schemas are immutable once derived, so sharing the
			// provider's Out slice is safe and avoids one allocation per
			// node per regeneration.
			n.In[i] = g.nodes[p].Out
		}
		switch n.Kind {
		case KindRecordset:
			n.Out = n.RS.Schema.Clone()
		case KindActivity:
			if len(preds) == 0 {
				return fmt.Errorf("workflow: activity %d (%s) has no provider", id, n.Label())
			}
			out, err := deriveOutput(n.Act, n.In)
			if err != nil {
				return fmt.Errorf("workflow: activity %d (%s): %w", id, n.Label(), err)
			}
			n.Out = out
		}
	}
	return nil
}

// sameSlice reports whether two schemas are the same backing slice, the
// cheap fast path for detecting unchanged shared schemas.
func sameSlice(a, b data.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// RegenerateSchemataIncremental recomputes the derived schemata of the
// dirty nodes and of every node whose stored input schema no longer
// matches its provider's output — the nodes a graph rewrite actually
// affected. Untouched nodes keep their (structurally shared) schemas. It
// returns the IDs of the recomputed nodes so the caller can restrict
// well-formedness checking to them.
func (g *Graph) RegenerateSchemataIncremental(dirty []NodeID) ([]NodeID, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	dirtySet := make(map[NodeID]bool, len(dirty))
	for _, id := range dirty {
		dirtySet[id] = true
	}
	var recomputed []NodeID
	for _, id := range order {
		n := g.nodes[id]
		preds := g.pred[id]
		need := dirtySet[id] || len(n.In) != len(preds)
		if !need {
			for i, p := range preds {
				cur := g.nodes[p].Out
				if !sameSlice(n.In[i], cur) && !n.In[i].Equal(cur) {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		n = g.mutableNode(id)
		n.In = make([]data.Schema, len(preds))
		for i, p := range preds {
			n.In[i] = g.nodes[p].Out
		}
		switch n.Kind {
		case KindRecordset:
			n.Out = n.RS.Schema.Clone()
		case KindActivity:
			if len(preds) == 0 {
				return nil, fmt.Errorf("workflow: activity %d (%s) has no provider", id, n.Label())
			}
			out, err := deriveOutput(n.Act, n.In)
			if err != nil {
				return nil, fmt.Errorf("workflow: activity %d (%s): %w", id, n.Label(), err)
			}
			n.Out = out
		}
		recomputed = append(recomputed, id)
	}
	return recomputed, nil
}

// deriveOutput computes an activity's output schema from its input
// schemata.
func deriveOutput(a *Activity, in []data.Schema) (data.Schema, error) {
	if a.IsBinary() {
		if len(in) != 2 {
			return nil, fmt.Errorf("binary %s has %d inputs", a.Sem.Op, len(in))
		}
	} else if len(in) != 1 {
		return nil, fmt.Errorf("unary %s has %d inputs", a.Sem.Op, len(in))
	}
	switch a.Sem.Op {
	case OpFilter, OpNotNull, OpPKCheck, OpDistinct:
		return in[0], nil // pass-through; schemas are immutable and shareable
	case OpProject:
		return in[0].Minus(data.Schema(a.Sem.Attrs)), nil
	case OpFunc:
		return funcOutput(a, in[0]), nil
	case OpAggregate:
		out := in[0].Intersect(data.Schema(a.Sem.Attrs)) // groupers, input order
		return append(out, a.Sem.OutAttr), nil
	case OpSurrogateKey:
		out := in[0].Minus(data.Schema{a.Sem.KeyAttr})
		return append(out, a.Sem.OutAttr), nil
	case OpMerged:
		cur := in[0].Clone()
		for _, comp := range a.Sem.Components {
			next, err := deriveOutput(comp, []data.Schema{cur})
			if err != nil {
				return nil, fmt.Errorf("merged component %s: %w", comp.Sem, err)
			}
			cur = next
		}
		return cur, nil
	case OpUnion:
		return in[0], nil
	case OpJoin:
		return in[0].Union(in[1]), nil
	case OpDiff, OpIntersect:
		return in[0], nil
	default:
		return nil, fmt.Errorf("unknown op %v", a.Sem.Op)
	}
}

// funcOutput derives the output schema of an OpFunc activity. In-place
// functions (single argument equal to the output attribute, e.g. A2E on
// DATE) keep the schema unchanged; otherwise the generated attribute is
// appended and, when DropArgs is set, the argument attributes are removed
// (the paper's $2€: dollar cost out, euro cost in).
func funcOutput(a *Activity, in data.Schema) data.Schema {
	if a.InPlace() {
		return in
	}
	out := in.Clone()
	if a.Sem.DropArgs {
		out = out.Minus(data.Schema(a.Sem.FnArgs))
	}
	if !out.Has(a.Sem.OutAttr) {
		out = append(out, a.Sem.OutAttr)
	}
	return out
}

// InPlace reports whether an OpFunc activity transforms an attribute
// without changing its reference name (§3.1: American and European dates
// share a reference name since both act as groupers).
func (a *Activity) InPlace() bool {
	return a.Sem.Op == OpFunc && len(a.Sem.FnArgs) == 1 && a.Sem.FnArgs[0] == a.Sem.OutAttr
}

// CheckWellFormed verifies the semantic conditions that a regenerated
// workflow must satisfy; transitions are rejected when their resulting
// graph violates any of them. The checks implement the guards behind the
// paper's swap conditions (3) and (4) and the structural requirements of
// the binary operations:
//
//   - every activity's functionality schema is a subset of its input
//     schema(ta) — condition (3);
//   - every activity's declared RequiredIn attributes have providers —
//     condition (4), the Fig. 6 rejection;
//   - operation parameters refer to existing attributes, generated
//     attributes do not collide with existing ones;
//   - union inputs carry identical attribute sets;
//   - every target recordset receives exactly its schema.
func (g *Graph) CheckWellFormed() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, id := range order {
		n := g.nodes[id]
		switch n.Kind {
		case KindActivity:
			if err := checkActivity(n); err != nil {
				return fmt.Errorf("workflow: activity %d (%s): %w", id, n.Label(), err)
			}
		case KindRecordset:
			if len(n.In) == 1 && !n.In[0].SameSet(n.RS.Schema) {
				return fmt.Errorf("workflow: target %s expects schema {%s}, provider delivers {%s}",
					n.RS.Name, n.RS.Schema, n.In[0])
			}
		}
	}
	return nil
}

// CheckWellFormedNodes verifies the well-formedness conditions for the
// given nodes only — the nodes a rewrite recomputed. Nodes untouched by
// the rewrite carried valid schemas in the parent state and need no
// re-checking.
func (g *Graph) CheckWellFormedNodes(ids []NodeID) error {
	for _, id := range ids {
		n := g.nodes[id]
		if n == nil {
			continue
		}
		switch n.Kind {
		case KindActivity:
			if err := checkActivity(n); err != nil {
				return fmt.Errorf("workflow: activity %d (%s): %w", id, n.Label(), err)
			}
		case KindRecordset:
			if len(n.In) == 1 && !n.In[0].SameSet(n.RS.Schema) {
				return fmt.Errorf("workflow: target %s expects schema {%s}, provider delivers {%s}",
					n.RS.Name, n.RS.Schema, n.In[0])
			}
		}
	}
	return nil
}

func checkActivity(n *Node) error {
	a := n.Act
	var all data.Schema
	if len(n.In) == 1 {
		all = n.In[0]
	} else {
		for _, in := range n.In {
			all = all.Union(in)
		}
	}
	if !all.HasAll(a.Fun) {
		return fmt.Errorf("functionality schema {%s} not contained in input {%s}", a.Fun, all)
	}
	if !all.HasAll(a.RequiredIn) {
		return fmt.Errorf("declared input attributes {%s} not all provided by {%s}", a.RequiredIn, all)
	}
	return checkOpParams(a, n.In)
}

func checkOpParams(a *Activity, in []data.Schema) error {
	switch a.Sem.Op {
	case OpFilter:
		if a.Sem.Pred == nil {
			return fmt.Errorf("filter without predicate")
		}
	case OpNotNull, OpPKCheck:
		if len(a.Sem.Attrs) == 0 {
			return fmt.Errorf("%s without attributes", a.Sem.Op)
		}
		if !in[0].HasAll(data.Schema(a.Sem.Attrs)) {
			return fmt.Errorf("%s attributes {%v} not in input {%s}", a.Sem.Op, a.Sem.Attrs, in[0])
		}
	case OpProject:
		if !in[0].HasAll(data.Schema(a.Sem.Attrs)) {
			return fmt.Errorf("projected-out attributes {%v} not in input {%s}", a.Sem.Attrs, in[0])
		}
	case OpFunc:
		if !in[0].HasAll(data.Schema(a.Sem.FnArgs)) {
			return fmt.Errorf("function args {%v} not in input {%s}", a.Sem.FnArgs, in[0])
		}
		if !a.InPlace() && in[0].Has(a.Sem.OutAttr) && !data.Schema(a.Sem.FnArgs).Has(a.Sem.OutAttr) {
			return fmt.Errorf("generated attribute %q already present in input {%s}", a.Sem.OutAttr, in[0])
		}
	case OpAggregate:
		if !in[0].HasAll(data.Schema(a.Sem.Attrs)) {
			return fmt.Errorf("groupers {%v} not in input {%s}", a.Sem.Attrs, in[0])
		}
		if a.Sem.Agg != AggCount && !in[0].Has(a.Sem.AggAttr) {
			return fmt.Errorf("aggregated attribute %q not in input {%s}", a.Sem.AggAttr, in[0])
		}
		if in[0].Has(a.Sem.OutAttr) && a.Sem.OutAttr != a.Sem.AggAttr {
			return fmt.Errorf("generated attribute %q already present in input {%s}", a.Sem.OutAttr, in[0])
		}
	case OpSurrogateKey:
		if !in[0].Has(a.Sem.KeyAttr) {
			return fmt.Errorf("production key %q not in input {%s}", a.Sem.KeyAttr, in[0])
		}
		if in[0].Has(a.Sem.OutAttr) {
			return fmt.Errorf("surrogate attribute %q already present in input {%s}", a.Sem.OutAttr, in[0])
		}
	case OpMerged:
		cur := in[0].Clone()
		for _, comp := range a.Sem.Components {
			if !cur.HasAll(comp.Fun) {
				return fmt.Errorf("merged component %s: functionality {%s} not in flow {%s}", comp.Sem, comp.Fun, cur)
			}
			if err := checkOpParams(comp, []data.Schema{cur}); err != nil {
				return fmt.Errorf("merged component: %w", err)
			}
			next, err := deriveOutput(comp, []data.Schema{cur})
			if err != nil {
				return err
			}
			cur = next
		}
	case OpUnion:
		if !in[0].SameSet(in[1]) {
			return fmt.Errorf("union inputs differ: {%s} vs {%s}", in[0], in[1])
		}
	case OpJoin, OpDiff, OpIntersect:
		for i, s := range in {
			if !s.HasAll(data.Schema(a.Sem.Attrs)) {
				return fmt.Errorf("%s keys {%v} not in input %d {%s}", a.Sem.Op, a.Sem.Attrs, i+1, s)
			}
		}
	}
	return nil
}
