package workflow

import (
	"strings"
	"testing"

	"etlopt/internal/data"
)

// buildChain wires SRC(schema) → acts → TGT(targetSchema) and regenerates.
func buildChain(t *testing.T, schema, target data.Schema, acts ...*Activity) (*Graph, []NodeID) {
	t.Helper()
	g := NewGraph()
	ids := []NodeID{g.AddRecordset(&RecordsetRef{Name: "SRC", Schema: schema, Rows: 100, IsSource: true})}
	for _, a := range acts {
		ids = append(ids, g.AddActivity(a))
	}
	ids = append(ids, g.AddRecordset(&RecordsetRef{Name: "TGT", Schema: target, IsTarget: true}))
	for i := 0; i+1 < len(ids); i++ {
		g.MustAddEdge(ids[i], ids[i+1])
	}
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestDeriveFilterPassThrough(t *testing.T) {
	schema := data.Schema{"A", "B"}
	g, ids := buildChain(t, schema, schema,
		&Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9})
	out := g.Node(ids[1]).Out
	if !out.Equal(schema) {
		t.Errorf("filter out = %v", out)
	}
}

func TestDeriveProject(t *testing.T) {
	g, ids := buildChain(t, data.Schema{"A", "B", "C"}, data.Schema{"A", "C"},
		&Activity{Sem: Semantics{Op: OpProject, Attrs: []string{"B"}}, Fun: data.Schema{"B"}, PrjOut: data.Schema{"B"}, Sel: 1})
	out := g.Node(ids[1]).Out
	if !out.Equal(data.Schema{"A", "C"}) {
		t.Errorf("project out = %v", out)
	}
}

func TestDeriveConvertingFunc(t *testing.T) {
	// $2€-style: generates ECOST, drops DCOST.
	act := &Activity{
		Sem: Semantics{Op: OpFunc, Fn: "dollar2euro", FnArgs: []string{"DCOST"}, OutAttr: "ECOST", DropArgs: true},
		Fun: data.Schema{"DCOST"}, Gen: data.Schema{"ECOST"}, PrjOut: data.Schema{"DCOST"}, Sel: 1,
	}
	g, ids := buildChain(t, data.Schema{"K", "DCOST"}, data.Schema{"K", "ECOST"}, act)
	out := g.Node(ids[1]).Out
	if out.Has("DCOST") || !out.Has("ECOST") || !out.Has("K") {
		t.Errorf("convert out = %v", out)
	}
}

func TestDeriveInPlaceFunc(t *testing.T) {
	act := &Activity{
		Sem: Semantics{Op: OpFunc, Fn: "a2edate", FnArgs: []string{"DATE"}, OutAttr: "DATE"},
		Fun: data.Schema{"DATE"}, Sel: 1,
	}
	if !act.InPlace() {
		t.Fatal("a2edate on DATE should be in-place")
	}
	g, ids := buildChain(t, data.Schema{"K", "DATE"}, data.Schema{"K", "DATE"}, act)
	if !g.Node(ids[1]).Out.Equal(data.Schema{"K", "DATE"}) {
		t.Errorf("in-place out = %v", g.Node(ids[1]).Out)
	}
}

func TestDeriveKeepArgsFunc(t *testing.T) {
	act := &Activity{
		Sem: Semantics{Op: OpFunc, Fn: "upper", FnArgs: []string{"CODE"}, OutAttr: "UCODE"},
		Fun: data.Schema{"CODE"}, Gen: data.Schema{"UCODE"}, Sel: 1,
	}
	g, ids := buildChain(t, data.Schema{"CODE"}, data.Schema{"CODE", "UCODE"}, act)
	if !g.Node(ids[1]).Out.Equal(data.Schema{"CODE", "UCODE"}) {
		t.Errorf("keep-args out = %v", g.Node(ids[1]).Out)
	}
}

func TestDeriveAggregate(t *testing.T) {
	act := &Activity{
		Sem: Semantics{Op: OpAggregate, Attrs: []string{"K", "D"}, Agg: AggSum, AggAttr: "V", OutAttr: "TOTV"},
		Fun: data.Schema{"K", "D", "V"}, Gen: data.Schema{"TOTV"}, Sel: 0.3,
	}
	g, ids := buildChain(t, data.Schema{"K", "D", "V", "X"}, data.Schema{"K", "D", "TOTV"}, act)
	out := g.Node(ids[1]).Out
	// Groupers survive (input order), aggregated value renamed, the rest
	// projected out.
	if !out.Equal(data.Schema{"K", "D", "TOTV"}) {
		t.Errorf("aggregate out = %v", out)
	}
}

func TestDeriveSurrogateKey(t *testing.T) {
	act := &Activity{
		Sem: Semantics{Op: OpSurrogateKey, KeyAttr: "K", OutAttr: "SK", Lookup: "L"},
		Fun: data.Schema{"K"}, Gen: data.Schema{"SK"}, PrjOut: data.Schema{"K"}, Sel: 1,
	}
	g, ids := buildChain(t, data.Schema{"K", "V"}, data.Schema{"SK", "V"}, act)
	if !g.Node(ids[1]).Out.Equal(data.Schema{"V", "SK"}) {
		t.Errorf("sk out = %v", g.Node(ids[1]).Out)
	}
}

func TestDeriveJoinUnionDiff(t *testing.T) {
	g := NewGraph()
	l := g.AddRecordset(&RecordsetRef{Name: "L", Schema: data.Schema{"K", "A"}, Rows: 10, IsSource: true})
	r := g.AddRecordset(&RecordsetRef{Name: "R", Schema: data.Schema{"K", "B"}, Rows: 10, IsSource: true})
	j := g.AddActivity(&Activity{Sem: Semantics{Op: OpJoin, Attrs: []string{"K"}}, Fun: data.Schema{"K"}, Sel: 0.1})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"K", "A", "B"}, IsTarget: true})
	g.MustAddEdge(l, j)
	g.MustAddEdge(r, j)
	g.MustAddEdge(j, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if !g.Node(j).Out.Equal(data.Schema{"K", "A", "B"}) {
		t.Errorf("join out = %v", g.Node(j).Out)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Errorf("join graph should be well-formed: %v", err)
	}
}

func TestCheckWellFormedFunViolation(t *testing.T) {
	// Filter on an attribute the source lacks.
	g, _ := buildChain(t, data.Schema{"A"}, data.Schema{"A"})
	_ = g
	g2 := NewGraph()
	src := g2.AddRecordset(&RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	bad := g2.AddActivity(&Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"Z"}}, Fun: data.Schema{"Z"}, Sel: 1})
	tgt := g2.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g2.MustAddEdge(src, bad)
	g2.MustAddEdge(bad, tgt)
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	err := g2.CheckWellFormed()
	if err == nil || !strings.Contains(err.Error(), "functionality") {
		t.Errorf("fun-schema violation not caught: %v", err)
	}
}

func TestCheckWellFormedTargetMismatch(t *testing.T) {
	// Target expects B, provider delivers A.
	g := NewGraph()
	src := g.AddRecordset(&RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"B"}, IsTarget: true})
	g.MustAddEdge(src, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err == nil {
		t.Error("target schema mismatch not caught")
	}
}

func TestCheckWellFormedUnionMismatch(t *testing.T) {
	g := NewGraph()
	s1 := g.AddRecordset(&RecordsetRef{Name: "S1", Schema: data.Schema{"A"}, IsSource: true})
	s2 := g.AddRecordset(&RecordsetRef{Name: "S2", Schema: data.Schema{"B"}, IsSource: true})
	u := g.AddActivity(&Activity{Sem: Semantics{Op: OpUnion}, Sel: 1})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(s1, u)
	g.MustAddEdge(s2, u)
	g.MustAddEdge(u, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err == nil || !strings.Contains(err.Error(), "union") {
		t.Errorf("union schema mismatch not caught: %v", err)
	}
}

func TestCheckWellFormedRequiredIn(t *testing.T) {
	// The Fig. 6 situation: an activity declares a required input attribute
	// beyond its functionality schema; when the attribute disappears the
	// state is rejected.
	act := &Activity{
		Sem:        Semantics{Op: OpNotNull, Attrs: []string{"A"}},
		Fun:        data.Schema{"A"},
		RequiredIn: data.Schema{"GONE"},
		Sel:        1,
	}
	g := NewGraph()
	src := g.AddRecordset(&RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	id := g.AddActivity(act)
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(src, id)
	g.MustAddEdge(id, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	err := g.CheckWellFormed()
	if err == nil || !strings.Contains(err.Error(), "declared input") {
		t.Errorf("RequiredIn violation not caught: %v", err)
	}
}

func TestIncrementalRegenerateMatchesFull(t *testing.T) {
	// Build a chain, mutate it (swap rewiring), then compare incremental
	// regeneration against full regeneration on an identical twin.
	mk := func() (*Graph, []NodeID) {
		conv := &Activity{
			Sem: Semantics{Op: OpFunc, Fn: "dollar2euro", FnArgs: []string{"D"}, OutAttr: "E", DropArgs: true},
			Fun: data.Schema{"D"}, Gen: data.Schema{"E"}, PrjOut: data.Schema{"D"}, Sel: 1,
		}
		nn := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"K"}}, Fun: data.Schema{"K"}, Sel: 0.9}
		return buildChain(t, data.Schema{"K", "D"}, data.Schema{"K", "E"}, conv, nn)
	}
	g1, ids := mk()
	g2, _ := mk()

	swapRewire := func(g *Graph, a1, a2 NodeID) {
		p := g.Providers(a1)[0]
		c := g.Consumers(a2)[0]
		g.MustReplaceProvider(c, a2, a1)
		g.MustReplaceProvider(a1, p, a2)
		g.MustReplaceProvider(a2, a1, p)
	}
	swapRewire(g1, ids[1], ids[2])
	swapRewire(g2, ids[1], ids[2])

	if _, err := g1.RegenerateSchemataIncremental([]NodeID{ids[1], ids[2]}); err != nil {
		t.Fatal(err)
	}
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	for _, id := range g1.Nodes() {
		n1, n2 := g1.Node(id), g2.Node(id)
		if !n1.Out.Equal(n2.Out) {
			t.Errorf("node %d: incremental Out %v != full Out %v", id, n1.Out, n2.Out)
		}
		if len(n1.In) != len(n2.In) {
			t.Fatalf("node %d: In arity differs", id)
		}
		for i := range n1.In {
			if !n1.In[i].Equal(n2.In[i]) {
				t.Errorf("node %d: incremental In[%d] %v != full %v", id, i, n1.In[i], n2.In[i])
			}
		}
	}
}

func TestDeriveMergedComposition(t *testing.T) {
	comp1 := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9}
	comp2 := &Activity{
		Sem: Semantics{Op: OpFunc, Fn: "dollar2euro", FnArgs: []string{"A"}, OutAttr: "E", DropArgs: true},
		Fun: data.Schema{"A"}, Gen: data.Schema{"E"}, PrjOut: data.Schema{"A"}, Sel: 1,
	}
	merged := &Activity{
		Sem: Semantics{Op: OpMerged, Components: []*Activity{comp1, comp2}},
		Fun: data.Schema{"A"}, Gen: data.Schema{"E"}, PrjOut: data.Schema{"A"}, Sel: 0.9,
	}
	g, ids := buildChain(t, data.Schema{"A", "B"}, data.Schema{"B", "E"}, merged)
	if !g.Node(ids[1]).Out.Equal(data.Schema{"B", "E"}) {
		t.Errorf("merged out = %v", g.Node(ids[1]).Out)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Errorf("merged chain should be well-formed: %v", err)
	}
}
