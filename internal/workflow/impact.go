package workflow

import (
	"fmt"
	"sort"
)

// The paper's conclusions (§6) name "the impact analysis of changes and
// failures in the workflow environment" as an open problem. This file
// provides the graph-level half of that analysis: given a changed or
// failed node, which activities and recordsets are affected, and which
// source data is at risk of being lost or double-processed on restart.

// Impact describes the consequences of a change or failure at one node.
type Impact struct {
	// Node is the changed/failed node.
	Node NodeID
	// Downstream lists every node whose input is (transitively) derived
	// from the node — the activities that must re-run and the targets
	// whose contents are stale after a change.
	Downstream []NodeID
	// Targets lists the affected target recordsets by name.
	Targets []string
	// Upstream lists every node the failed node (transitively) depends
	// on — the sources and activities that must be re-read or re-executed
	// to recover the node's input.
	Upstream []NodeID
	// Sources lists the source recordsets feeding the node, by name.
	Sources []string
}

// AnalyzeImpact computes the impact of a change or failure at the given
// node.
func (g *Graph) AnalyzeImpact(id NodeID) (*Impact, error) {
	if g.Node(id) == nil {
		return nil, fmt.Errorf("workflow: impact analysis of unknown node %d", id)
	}
	imp := &Impact{Node: id}
	down := g.reach(id, g.Consumers)
	up := g.reach(id, g.Providers)
	for _, n := range down {
		imp.Downstream = append(imp.Downstream, n)
		node := g.Node(n)
		if node.Kind == KindRecordset && len(g.Consumers(n)) == 0 {
			imp.Targets = append(imp.Targets, node.RS.Name)
		}
	}
	for _, n := range up {
		imp.Upstream = append(imp.Upstream, n)
		node := g.Node(n)
		if node.Kind == KindRecordset && len(g.Providers(n)) == 0 {
			imp.Sources = append(imp.Sources, node.RS.Name)
		}
	}
	sort.Strings(imp.Targets)
	sort.Strings(imp.Sources)
	return imp, nil
}

// reach returns the nodes reachable from id through the step function
// (excluding id itself), in ascending ID order.
func (g *Graph) reach(id NodeID, step func(NodeID) []NodeID) []NodeID {
	seen := map[NodeID]bool{id: true}
	var out []NodeID
	frontier := []NodeID{id}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, next := range step(cur) {
			if !seen[next] {
				seen[next] = true
				out = append(out, next)
				frontier = append(frontier, next)
			}
		}
	}
	sortIDs(out)
	return out
}

// UnaffectedBy returns the activities that need not re-run after a change
// at the given node — the complement of the impact's downstream set over
// the activities, which a scheduler can keep warm across a partial
// restart.
func (g *Graph) UnaffectedBy(id NodeID) ([]NodeID, error) {
	imp, err := g.AnalyzeImpact(id)
	if err != nil {
		return nil, err
	}
	affected := make(map[NodeID]bool, len(imp.Downstream)+1)
	affected[id] = true
	for _, n := range imp.Downstream {
		affected[n] = true
	}
	var out []NodeID
	for _, a := range g.Activities() {
		if !affected[a] {
			out = append(out, a)
		}
	}
	return out, nil
}
