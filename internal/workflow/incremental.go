package workflow

import (
	"math"
	"strings"
)

// sigBoundary reports whether c delimits signature tokens: the chain dot,
// group parentheses, the branch separator `//` and the multi-target /
// factorize-tag joiner `&`. A segment occurrence aligned on boundaries is
// a whole run of node tags, never a substring of a longer tag.
func sigBoundary(c byte) bool {
	return c == '.' || c == '(' || c == ')' || c == '/' || c == '&'
}

func boundaryBefore(s string, i int) bool { return i == 0 || sigBoundary(s[i-1]) }
func boundaryAfter(s string, i int) bool  { return i == len(s) || sigBoundary(s[i]) }

// SpliceSignature derives the signature of a rewritten graph from its
// parent's signature by replacing the rewrite's local segment oldSeg (a
// dot-joined run of activity tags, e.g. "3.4" for a swap of tags 3 and 4)
// with newSeg — O(|sig|) instead of re-rendering the whole graph.
//
// The result is guaranteed equal to the full Graph.Signature() of the
// child only when the replacement provably cannot disturb the rendering
// around it, so SpliceSignature is conservative and reports ok=false
// whenever any of these holds, and the caller re-renders from scratch:
//
//   - singleChain is false: the graph has multiple target chains, and a
//     depth-0 `&` is ambiguous between the sorted chain joiner and a
//     factorize tag, so sorted-order preservation cannot be verified
//     locally;
//   - oldSeg does not occur, or occurs more than once, boundary-aligned;
//   - the rewritten branch would change its sorted position inside any
//     enclosing `(a//b)` parallel group (branch lists are sorted when
//     rendered, so the splice must keep each enclosing sibling between
//     its neighbors).
func SpliceSignature(sig, oldSeg, newSeg string, singleChain bool) (string, bool) {
	if !singleChain || oldSeg == "" {
		return "", false
	}
	if oldSeg == newSeg {
		return sig, true
	}
	lo := -1
	for from := 0; from <= len(sig)-len(oldSeg); {
		p := strings.Index(sig[from:], oldSeg)
		if p < 0 {
			break
		}
		p += from
		if boundaryBefore(sig, p) && boundaryAfter(sig, p+len(oldSeg)) {
			if lo >= 0 {
				return "", false // ambiguous: two candidate sites
			}
			lo = p
		}
		from = p + 1
	}
	if lo < 0 {
		return "", false
	}
	hi := lo + len(oldSeg)

	// Walk outward through the enclosing parenthesized groups and check
	// that the modified branch keeps its sorted position among its `//`
	// siblings at every level. Tags never contain parentheses or slashes,
	// so paren matching and depth-0 "//" splitting are unambiguous.
	for spanLo := lo; ; {
		open := enclosingOpen(sig, spanLo)
		if open < 0 {
			break // top level: a single target chain has no sorted siblings
		}
		close := matchingClose(sig, open)
		if close < 0 {
			return "", false // malformed signature; be conservative
		}
		if !siblingOrderPreserved(sig, open+1, close, lo, hi, newSeg) {
			return "", false
		}
		spanLo = open
	}
	return sig[:lo] + newSeg + sig[hi:], true
}

// enclosingOpen returns the index of the '(' immediately enclosing
// position i, or -1 when i sits at the top level.
func enclosingOpen(s string, i int) int {
	depth := 0
	for j := i - 1; j >= 0; j-- {
		switch s[j] {
		case ')':
			depth++
		case '(':
			if depth == 0 {
				return j
			}
			depth--
		}
	}
	return -1
}

// matchingClose returns the index of the ')' matching the '(' at open.
func matchingClose(s string, open int) int {
	depth := 0
	for j := open; j < len(s); j++ {
		switch s[j] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return j
			}
		}
	}
	return -1
}

// siblingOrderPreserved splits the group interior s[start:end] at depth-0
// "//" separators, locates the sibling containing the splice [lo,hi), and
// reports whether that sibling — with the splice applied — still compares
// between its left and right neighbors, i.e. whether a re-render would
// keep the branches in the same sorted order.
func siblingOrderPreserved(s string, start, end, lo, hi int, repl string) bool {
	type span struct{ a, b int }
	var sibs []span
	depth, a := 0, start
	for j := start; j < end; j++ {
		switch s[j] {
		case '(':
			depth++
		case ')':
			depth--
		case '/':
			if depth == 0 && j+1 < end && s[j+1] == '/' && (j == start || s[j-1] != '/') {
				sibs = append(sibs, span{a, j})
				a = j + 2
			}
		}
	}
	sibs = append(sibs, span{a, end})
	if len(sibs) == 1 {
		return true
	}
	idx := -1
	for i, sp := range sibs {
		if lo >= sp.a && hi <= sp.b {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false // splice straddles a separator; cannot be local
	}
	sp := sibs[idx]
	mod := s[sp.a:lo] + repl + s[hi:sp.b]
	if idx > 0 && s[sibs[idx-1].a:sibs[idx-1].b] > mod {
		return false
	}
	if idx < len(sibs)-1 && mod > s[sibs[idx+1].a:sibs[idx+1].b] {
		return false
	}
	return true
}

// Fingerprint returns a 64-bit structural hash of the graph: node IDs,
// kinds, activity tags and operations, recordset names and cardinalities,
// selectivities and the full provider lists, folded with FNV-1a in
// ascending-ID order. Unlike Signature, it distinguishes graphs whose
// signatures coincide but whose node-ID labelings differ (states reached
// through different MER/FAC lineages), which is exactly what NodeID-keyed
// costings are sensitive to — the transposition cache uses the pair
// (signature, fingerprint) as its admission guard.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	for id := 1; id < len(g.nodes); id++ {
		n := g.nodes[id]
		if n == nil {
			continue
		}
		mix(uint64(id))
		mix(uint64(n.Kind))
		if n.Act != nil {
			str(n.Act.Tag)
			mix(uint64(n.Act.Sem.Op))
			mix(math.Float64bits(n.Act.Sel))
			for _, comp := range n.Act.Sem.Components {
				str(comp.Tag)
				mix(uint64(comp.Sem.Op))
				mix(math.Float64bits(comp.Sel))
			}
		}
		if n.RS != nil {
			str(n.RS.Name)
			mix(math.Float64bits(n.RS.Rows))
		}
		for _, p := range g.pred[id] {
			mix(uint64(p))
		}
		mix(0x9e3779b97f4a7c15)
	}
	return h
}
