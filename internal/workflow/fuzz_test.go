package workflow_test

import (
	"os"
	"path/filepath"
	"testing"

	"etlopt/internal/dsl"
	"etlopt/internal/transitions"
	"etlopt/internal/workflow"
)

// FuzzSignatureRoundTrip fuzzes the state-identity layer against arbitrary
// parsed workflows: Signature must be a pure, deterministic rendering;
// Clone, Mutate and DeepClone must preserve both the signature and the
// structural fingerprint; and expanding every applicable transition — each
// a copy-on-write child rewritten in place — must leave the parent's
// identity untouched. This is the fuzz companion of the proptest suite:
// the generator there covers realistic workflows, the fuzzer hunts for
// degenerate shapes (empty graphs, single nodes, odd tag collisions) the
// generator never emits.
func FuzzSignatureRoundTrip(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "workflows")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading example workflows: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".etl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading %s: %v", e.Name(), err)
		}
		f.Add(string(src))
	}
	f.Add("recordset A source rows=5 schema=X\nrecordset B target schema=X\n\nflow A -> B\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := dsl.Parse(src)
		if err != nil {
			return
		}
		sig := g.Signature()
		if again := g.Signature(); again != sig {
			t.Fatalf("Signature is not deterministic: %q then %q", sig, again)
		}
		fp := g.Fingerprint()
		if err := g.CheckIntegrity(); err != nil {
			t.Fatalf("parsed graph fails integrity: %v", err)
		}

		for name, d := range map[string]*workflow.Graph{
			"Clone":     g.Clone(),
			"Mutate":    g.Mutate(),
			"DeepClone": g.DeepClone(),
		} {
			if got := d.Signature(); got != sig {
				t.Fatalf("%s changed the signature: %q -> %q", name, sig, got)
			}
			if got := d.Fingerprint(); got != fp {
				t.Fatalf("%s changed the fingerprint: %x -> %x", name, fp, got)
			}
			if err := d.CheckIntegrity(); err != nil {
				t.Fatalf("%s fails integrity: %v", name, err)
			}
		}

		// Expand every applicable transition: each successor is a Mutate
		// child rewritten in place, so the parent must come through with
		// its identity — signature and fingerprint — bit-identical.
		succs := transitions.Enumerate(g)
		for _, res := range succs {
			if err := res.Graph.CheckIntegrity(); err != nil {
				t.Fatalf("%s produced a corrupt graph: %v", res.Description, err)
			}
		}
		if got := g.Signature(); got != sig {
			t.Fatalf("expanding %d successors changed the parent signature: %q -> %q", len(succs), sig, got)
		}
		if got := g.Fingerprint(); got != fp {
			t.Fatalf("expanding %d successors changed the parent fingerprint: %x -> %x", len(succs), fp, got)
		}
	})
}
