package workflow

import (
	"testing"

	"etlopt/internal/data"
)

// fig1Shape builds a graph shaped like the paper's Fig. 1 (two branches
// into a union, then a selection into the warehouse) using neutral
// pass-through activities, for structural tests that live below the
// templates package.
func fig1Shape(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := NewGraph()
	n := map[string]NodeID{}
	schema := data.Schema{"A"}
	pass := func(name string) *Activity {
		return &Activity{Name: name, Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9}
	}
	n["s1"] = g.AddRecordset(&RecordsetRef{Name: "S1", Schema: schema, Rows: 10, IsSource: true})
	n["s2"] = g.AddRecordset(&RecordsetRef{Name: "S2", Schema: schema, Rows: 10, IsSource: true})
	n["a3"] = g.AddActivity(pass("a3"))
	n["a4"] = g.AddActivity(pass("a4"))
	n["a5"] = g.AddActivity(pass("a5"))
	n["a6"] = g.AddActivity(pass("a6"))
	n["u7"] = g.AddActivity(&Activity{Name: "U", Sem: Semantics{Op: OpUnion}, Sel: 1})
	n["a8"] = g.AddActivity(pass("a8"))
	n["dw"] = g.AddRecordset(&RecordsetRef{Name: "DW", Schema: schema, IsTarget: true})
	g.MustAddEdge(n["s1"], n["a3"])
	g.MustAddEdge(n["s2"], n["a4"])
	g.MustAddEdge(n["a4"], n["a5"])
	g.MustAddEdge(n["a5"], n["a6"])
	g.MustAddEdge(n["a3"], n["u7"])
	g.MustAddEdge(n["a6"], n["u7"])
	g.MustAddEdge(n["u7"], n["a8"])
	g.MustAddEdge(n["a8"], n["dw"])
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	return g, n
}

func TestSignaturePaperFormat(t *testing.T) {
	g, _ := fig1Shape(t)
	// Node IDs follow insertion order: S1=1, S2=2, a3=3, a4=4, a5=5, a6=6,
	// U=7, a8=8, DW=9 — the paper's ((1.3)//(2.4.5.6)).7.8.9.
	want := "((1.3)//(2.4.5.6)).7.8.9"
	if got := g.Signature(); got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
}

func TestSignatureBranchOrderCanonical(t *testing.T) {
	// Building the same workflow attaching the union's branches in the
	// opposite order must not change the signature (branches sort).
	g1, _ := fig1Shape(t)
	g2 := NewGraph()
	schema := data.Schema{"A"}
	pass := func(name string) *Activity {
		return &Activity{Name: name, Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9}
	}
	s1 := g2.AddRecordset(&RecordsetRef{Name: "S1", Schema: schema, Rows: 10, IsSource: true})
	s2 := g2.AddRecordset(&RecordsetRef{Name: "S2", Schema: schema, Rows: 10, IsSource: true})
	a3 := g2.AddActivity(pass("a3"))
	a4 := g2.AddActivity(pass("a4"))
	a5 := g2.AddActivity(pass("a5"))
	a6 := g2.AddActivity(pass("a6"))
	u7 := g2.AddActivity(&Activity{Name: "U", Sem: Semantics{Op: OpUnion}, Sel: 1})
	a8 := g2.AddActivity(pass("a8"))
	dw := g2.AddRecordset(&RecordsetRef{Name: "DW", Schema: schema, IsTarget: true})
	g2.MustAddEdge(s1, a3)
	g2.MustAddEdge(s2, a4)
	g2.MustAddEdge(a4, a5)
	g2.MustAddEdge(a5, a6)
	g2.MustAddEdge(a6, u7) // branches attached in reverse order
	g2.MustAddEdge(a3, u7)
	g2.MustAddEdge(u7, a8)
	g2.MustAddEdge(a8, dw)
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if g1.Signature() != g2.Signature() {
		t.Errorf("branch attachment order changed signature: %q vs %q", g1.Signature(), g2.Signature())
	}
}

func TestSignatureDistinguishesOrderings(t *testing.T) {
	g, n := fig1Shape(t)
	sig1 := g.Signature()
	// Manually swap a5 and a6.
	c := g.Clone()
	p := c.Providers(n["a5"])[0]
	consumer := c.Consumers(n["a6"])[0]
	c.MustReplaceProvider(consumer, n["a6"], n["a5"])
	c.MustReplaceProvider(n["a5"], p, n["a6"])
	c.MustReplaceProvider(n["a6"], n["a5"], p)
	if c.Signature() == sig1 {
		t.Error("different activity orderings share a signature")
	}
}

func TestLocalGroupsFig1(t *testing.T) {
	g, n := fig1Shape(t)
	groups := g.LocalGroups()
	if len(groups) != 3 {
		t.Fatalf("LocalGroups = %v, want 3 groups", groups)
	}
	want := [][]NodeID{
		{n["a3"]},
		{n["a4"], n["a5"], n["a6"]},
		{n["a8"]},
	}
	for i, grp := range groups {
		if len(grp) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, grp, want[i])
		}
		for j := range grp {
			if grp[j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, grp, want[i])
			}
		}
	}
}

func TestGroupOf(t *testing.T) {
	g, n := fig1Shape(t)
	grp := g.GroupOf(n["a5"])
	if len(grp) != 3 || grp[0] != n["a4"] {
		t.Errorf("GroupOf(a5) = %v", grp)
	}
	if g.GroupOf(n["u7"]) != nil {
		t.Error("binary activities belong to no local group")
	}
}

func TestFindHomologousPairs(t *testing.T) {
	g, n := fig1Shape(t)
	// a3 and every NN in the second branch share semantics and schemata,
	// and their groups converge on the union.
	pairs := g.FindHomologousPairs()
	if len(pairs) != 3 {
		t.Fatalf("FindHomologousPairs = %v, want 3 (a3 × each of a4,a5,a6)", pairs)
	}
	for _, hp := range pairs {
		if hp.Binary != n["u7"] || hp.A != n["a3"] {
			t.Errorf("unexpected pair %+v", hp)
		}
	}
}

func TestFindDistributableActivities(t *testing.T) {
	g, n := fig1Shape(t)
	das := g.FindDistributableActivities()
	if len(das) != 1 || das[0].Activity != n["a8"] || das[0].Binary != n["u7"] {
		t.Errorf("FindDistributableActivities = %v", das)
	}
}

func TestCanDistributeOverRules(t *testing.T) {
	union := &Activity{Sem: Semantics{Op: OpUnion}}
	join := &Activity{Sem: Semantics{Op: OpJoin, Attrs: []string{"K"}}, Fun: data.Schema{"K"}}
	diff := &Activity{Sem: Semantics{Op: OpDiff, Attrs: []string{"K"}}, Fun: data.Schema{"K"}}

	filterK := &Activity{Sem: Semantics{Op: OpFilter}, Fun: data.Schema{"K"}}
	filterV := &Activity{Sem: Semantics{Op: OpFilter}, Fun: data.Schema{"V"}}
	agg := &Activity{Sem: Semantics{Op: OpAggregate, Attrs: []string{"K"}}, Fun: data.Schema{"K"}}
	distinct := &Activity{Sem: Semantics{Op: OpDistinct}}
	sk := &Activity{Sem: Semantics{Op: OpSurrogateKey, KeyAttr: "K", OutAttr: "S", Lookup: "L"}, Fun: data.Schema{"K"}}
	groupPK := &Activity{Sem: Semantics{Op: OpPKCheck, Attrs: []string{"K"}}, Fun: data.Schema{"K"}}
	lookupPK := &Activity{Sem: Semantics{Op: OpPKCheck, Attrs: []string{"K"}, Lookup: "L"}, Fun: data.Schema{"K"}}

	cases := []struct {
		a, b *Activity
		want bool
		desc string
	}{
		{filterV, union, true, "selection over union"},
		{sk, union, true, "surrogate key over union (per-row lookup)"},
		{lookupPK, union, true, "lookup-based key check over union"},
		{agg, union, false, "aggregation over union"},
		{distinct, union, false, "distinct over union"},
		{groupPK, union, false, "group-based key check over union"},
		{filterK, join, true, "key-attribute selection over join"},
		{filterV, join, false, "non-key selection over join"},
		{filterK, diff, true, "key-attribute selection over difference"},
		{filterV, diff, false, "non-key selection over difference"},
		{sk, join, false, "surrogate key over join"},
		{union, union, false, "binary over binary"},
	}
	for _, c := range cases {
		if got := CanDistributeOver(c.a, c.b); got != c.want {
			t.Errorf("%s: CanDistributeOver = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestSemanticsStringCanonical(t *testing.T) {
	a := Semantics{Op: OpProject, Attrs: []string{"B", "A"}}
	b := Semantics{Op: OpProject, Attrs: []string{"A", "B"}}
	if a.String() != b.String() {
		t.Errorf("projection semantics should be order-insensitive: %q vs %q", a, b)
	}
	agg := Semantics{Op: OpAggregate, Attrs: []string{"K"}, Agg: AggSum, AggAttr: "V", OutAttr: "T"}
	if agg.String() != "aggregate([K];sum(V)->T)" {
		t.Errorf("aggregate semantics = %q", agg.String())
	}
}

func TestHomologousRequiresSchemata(t *testing.T) {
	a := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}}
	b := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}}
	if !a.Homologous(b) {
		t.Error("identical activities should be homologous")
	}
	c := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A", "B"}}
	if a.Homologous(c) {
		t.Error("different functionality schemata should not be homologous")
	}
	d := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"B"}}, Fun: data.Schema{"B"}}
	if a.Homologous(d) {
		t.Error("different semantics should not be homologous")
	}
}

func TestPredicateRendering(t *testing.T) {
	a := &Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"COST"}}, Fun: data.Schema{"COST"}}
	if a.Predicate() != "notnull(COST)" {
		t.Errorf("Predicate = %q", a.Predicate())
	}
	m := &Activity{Sem: Semantics{Op: OpMerged, Components: []*Activity{a, a}}}
	if m.Predicate() != "notnull(COST) ∧ notnull(COST)" {
		t.Errorf("merged Predicate = %q", m.Predicate())
	}
}
