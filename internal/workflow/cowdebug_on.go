//go:build etldebug

package workflow

import "fmt"

// DebugCOW reports whether the copy-on-write ownership audit is compiled
// in; this build has it on (`-tags etldebug`).
const DebugCOW = true

// cowShadow remembers, for a Mutate child, which graph it was derived from
// and what that parent looked like at derivation time. If rewriting the
// child ever leaks through the structural sharing, the parent's signature
// changes and DebugVerifySharing catches it at the rewrite site instead of
// as a corrupted search result much later.
type cowShadow struct {
	parent    *Graph
	parentSig string
}

func debugRecordMutate(parent, child *Graph) {
	child.dbg = &cowShadow{parent: parent, parentSig: parent.Signature()}
}

// DebugVerifySharing panics if this graph's Mutate parent no longer
// renders the signature it had when the child was derived — i.e. a
// mutation of the child leaked into shared state. Transitions call it
// after every rewrite in etldebug builds.
func (g *Graph) DebugVerifySharing() {
	if g.dbg == nil {
		return
	}
	if sig := g.dbg.parent.Signature(); sig != g.dbg.parentSig {
		panic(fmt.Sprintf("workflow: COW violation: mutating a child changed its parent's signature\n  before: %s\n  after:  %s",
			g.dbg.parentSig, sig))
	}
}
