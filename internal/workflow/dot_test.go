package workflow

import (
	"strings"
	"testing"
)

func TestDOTRendering(t *testing.T) {
	g, n := fig1Shape(t)
	dot := g.DOT("fig1")
	for _, want := range []string{
		"digraph etl {",
		"rankdir=LR",
		`label="fig1"`,
		"shape=box",             // recordsets
		"fillcolor=lightblue",   // sources
		"fillcolor=lightyellow", // target
		"shape=diamond",         // the union
		"union()",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every edge appears.
	edges := 0
	for _, id := range g.Nodes() {
		edges += len(g.Consumers(id))
	}
	if got := strings.Count(dot, " -> "); got != edges {
		t.Errorf("DOT has %d edges, graph has %d", got, edges)
	}
	_ = n
}

func TestDOTEscaping(t *testing.T) {
	g := NewGraph()
	src := g.AddRecordset(&RecordsetRef{Name: `S"quoted"`, Schema: []string{"A"}, IsSource: true})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: []string{"A"}, IsTarget: true})
	g.MustAddEdge(src, tgt)
	dot := g.DOT("")
	if strings.Contains(dot, `"S"quoted""`) {
		t.Error("unescaped quotes in DOT output")
	}
	if !strings.Contains(dot, `\"quoted\"`) {
		t.Errorf("quotes not escaped:\n%s", dot)
	}
}
