// Package workflow implements the paper's formal model of an ETL workflow
// (§2.1): a directed acyclic graph whose nodes are activities and
// recordsets and whose edges are data-provider relationships, together with
// the auxiliary machinery the optimizer needs — functionality / generated /
// projected-out schemata (§3.2), automatic schema regeneration after graph
// rewrites, topological priorities, state signatures (§4.1), local groups
// and homologous-activity detection.
package workflow

import (
	"fmt"
	"sort"
	"strings"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
)

// OpKind enumerates the semantic operation an activity performs. Each kind
// corresponds to a template of the ARKTOS-II style library (§3.2, ref [18]).
type OpKind uint8

// The activity operation kinds. Unary kinds come first, binary kinds last;
// see IsBinary.
const (
	// OpFilter is a selection σ(pred).
	OpFilter OpKind = iota
	// OpNotNull rejects records whose checked attribute is NULL.
	OpNotNull
	// OpPKCheck enforces a primary key: for each key value exactly one
	// (deterministically chosen) record survives.
	OpPKCheck
	// OpDistinct removes exact duplicate records.
	OpDistinct
	// OpProject projects out (drops) attributes.
	OpProject
	// OpFunc applies a scalar function, generating an output attribute and
	// optionally projecting out its inputs (e.g. the paper's $2€). When the
	// output attribute equals the single input attribute the function is an
	// in-place transformation that preserves the reference name (the
	// paper's A2E date reformatting).
	OpFunc
	// OpAggregate groups by the grouper attributes and computes one
	// aggregate, generating a fresh reference attribute for the result.
	OpAggregate
	// OpSurrogateKey replaces a production key with a surrogate key drawn
	// from a lookup table.
	OpSurrogateKey
	// OpMerged is a package of unary activities produced by the MER
	// transition; it executes its components in order and is split back by
	// SPL.
	OpMerged
	// OpUnion is the bag union of two flows with identical schemata.
	OpUnion
	// OpJoin is an equi-join of two flows on key attributes.
	OpJoin
	// OpDiff keeps left records whose key does not appear on the right.
	OpDiff
	// OpIntersect keeps left records whose key appears on the right.
	OpIntersect
)

// String returns the operation's short name.
func (k OpKind) String() string {
	switch k {
	case OpFilter:
		return "filter"
	case OpNotNull:
		return "notnull"
	case OpPKCheck:
		return "pkcheck"
	case OpDistinct:
		return "distinct"
	case OpProject:
		return "project"
	case OpFunc:
		return "func"
	case OpAggregate:
		return "aggregate"
	case OpSurrogateKey:
		return "sk"
	case OpMerged:
		return "merged"
	case OpUnion:
		return "union"
	case OpJoin:
		return "join"
	case OpDiff:
		return "diff"
	case OpIntersect:
		return "intersect"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// IsBinary reports whether the operation takes two input flows.
func (k OpKind) IsBinary() bool {
	switch k {
	case OpUnion, OpJoin, OpDiff, OpIntersect:
		return true
	default:
		return false
	}
}

// AggKind enumerates aggregate functions for OpAggregate.
type AggKind uint8

// Aggregate functions.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// String returns the aggregate's name.
func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// ParseAggKind parses an aggregate function name.
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg":
		return AggAvg, nil
	default:
		return AggSum, fmt.Errorf("workflow: unknown aggregate %q", s)
	}
}

// Semantics captures the algebraic expression S of an activity (§2.1): the
// operation kind plus its parameters. Exactly the fields relevant to Op are
// populated.
type Semantics struct {
	Op OpKind

	// Pred is the selection predicate (OpFilter).
	Pred algebra.Expr
	// Attrs holds the operation's attribute parameters: the checked
	// attribute (OpNotNull), key attributes (OpPKCheck, OpJoin, OpDiff,
	// OpIntersect), dropped attributes (OpProject) or grouper attributes
	// (OpAggregate).
	Attrs []string
	// Fn is the registered scalar function name (OpFunc).
	Fn string
	// FnArgs are the input attributes fed to Fn (OpFunc).
	FnArgs []string
	// OutAttr is the generated attribute name (OpFunc, OpAggregate,
	// OpSurrogateKey).
	OutAttr string
	// DropArgs reports whether OpFunc projects out its argument attributes
	// after producing OutAttr ($2€ drops the Dollar cost).
	DropArgs bool
	// Agg is the aggregate function (OpAggregate).
	Agg AggKind
	// AggAttr is the aggregated attribute (OpAggregate).
	AggAttr string
	// KeyAttr is the production key attribute (OpSurrogateKey).
	KeyAttr string
	// Lookup names the lookup recordset (OpSurrogateKey).
	Lookup string
	// Components holds the packaged activities of an OpMerged activity, in
	// execution order.
	Components []*Activity
}

// String renders the semantics canonically; two activities are "the same
// operation in terms of algebraic expression" (§3.3) exactly when their
// semantics strings are equal.
func (s Semantics) String() string {
	switch s.Op {
	case OpFilter:
		return fmt.Sprintf("filter(%s)", s.Pred)
	case OpNotNull:
		return fmt.Sprintf("notnull(%s)", strings.Join(s.Attrs, ","))
	case OpPKCheck:
		if s.Lookup != "" {
			return fmt.Sprintf("pkcheck(%s@%s)", strings.Join(s.Attrs, ","), s.Lookup)
		}
		return fmt.Sprintf("pkcheck(%s)", strings.Join(s.Attrs, ","))
	case OpDistinct:
		return "distinct()"
	case OpProject:
		sorted := append([]string(nil), s.Attrs...)
		sort.Strings(sorted)
		return fmt.Sprintf("project-out(%s)", strings.Join(sorted, ","))
	case OpFunc:
		mode := ""
		if s.DropArgs {
			mode = "!"
		}
		return fmt.Sprintf("%s(%s->%s%s)", s.Fn, strings.Join(s.FnArgs, ","), s.OutAttr, mode)
	case OpAggregate:
		return fmt.Sprintf("aggregate([%s];%s(%s)->%s)", strings.Join(s.Attrs, ","), s.Agg, s.AggAttr, s.OutAttr)
	case OpSurrogateKey:
		return fmt.Sprintf("sk(%s->%s@%s)", s.KeyAttr, s.OutAttr, s.Lookup)
	case OpMerged:
		parts := make([]string, len(s.Components))
		for i, c := range s.Components {
			parts[i] = c.Sem.String()
		}
		return "merged[" + strings.Join(parts, ";") + "]"
	case OpUnion:
		return "union()"
	case OpJoin:
		return fmt.Sprintf("join(%s)", strings.Join(s.Attrs, ","))
	case OpDiff:
		return fmt.Sprintf("diff(%s)", strings.Join(s.Attrs, ","))
	case OpIntersect:
		return fmt.Sprintf("intersect(%s)", strings.Join(s.Attrs, ","))
	default:
		return s.Op.String() + "()"
	}
}

// Activity is the quadruple A = (Id, I, O, S) of §2.1 enriched with the
// auxiliary schemata of §3.2 and a selectivity estimate for costing. The
// identifier lives on the enclosing Node; input and output schemata are
// derived by Graph.RegenerateSchemata and stored on the Node as well.
type Activity struct {
	// Name is a human-readable label, e.g. "σ(ECOST>=100)".
	Name string
	// Tag identifies the activity across states for signature purposes
	// (§4.1): initial activities carry their topological priority; clones
	// produced by DIS inherit the tag; FAC and MER combine tags.
	Tag string
	// Sem is the activity's algebraic semantics.
	Sem Semantics
	// Fun is the functionality (necessary) schema: the attributes taking
	// part in the computation (§3.2).
	Fun data.Schema
	// Gen is the generated schema: output attributes created by the
	// activity (§3.2). Filters have an empty generated schema.
	Gen data.Schema
	// PrjOut is the projected-out schema: input attributes not propagated
	// (§3.2).
	PrjOut data.Schema
	// RequiredIn optionally declares input attributes the activity's
	// instantiated input schema insists on beyond Fun. The paper's swap
	// condition (4) rejects swaps that leave a declared input attribute
	// without a provider (Fig. 6); activities built from templates default
	// to RequiredIn == nil, meaning only Fun is required.
	RequiredIn data.Schema
	// Sel is the estimated selectivity: expected output rows per input row
	// for unary activities (aggregations use the grouping ratio), and the
	// match fraction for joins/diffs/intersections.
	Sel float64
}

// Clone returns a deep copy of the activity. The algebra expression and
// component activities are shared structurally where immutable and cloned
// where not.
func (a *Activity) Clone() *Activity {
	c := *a
	c.Fun = a.Fun.Clone()
	c.Gen = a.Gen.Clone()
	c.PrjOut = a.PrjOut.Clone()
	c.RequiredIn = a.RequiredIn.Clone()
	c.Sem.Attrs = append([]string(nil), a.Sem.Attrs...)
	c.Sem.FnArgs = append([]string(nil), a.Sem.FnArgs...)
	if a.Sem.Components != nil {
		comps := make([]*Activity, len(a.Sem.Components))
		for i, comp := range a.Sem.Components {
			comps[i] = comp.Clone()
		}
		c.Sem.Components = comps
	}
	return &c
}

// IsBinary reports whether the activity takes two input flows.
func (a *Activity) IsBinary() bool { return a.Sem.Op.IsBinary() }

// SameOperation reports whether two activities perform the same operation in
// terms of algebraic expression — the first homologous-activity condition of
// §3.3 ("the only thing that differs is their input and output schemata").
func (a *Activity) SameOperation(b *Activity) bool {
	return a.Sem.String() == b.Sem.String()
}

// Homologous reports whether two activities satisfy the schema-level parts
// of the homologous-activity definition (§3.2): same semantics and same
// functionality, generated and projected-out schemata. The graph-level part
// — being found in converging local groups — is checked by the caller.
func (a *Activity) Homologous(b *Activity) bool {
	return a.SameOperation(b) &&
		a.Fun.SameSet(b.Fun) &&
		a.Gen.SameSet(b.Gen) &&
		a.PrjOut.SameSet(b.PrjOut)
}

// Predicate renders the activity's post-condition (§3.4): a predicate name
// with the functionality-schema attributes as variables, e.g. "NN(COST)" or
// "$2€(COST)". Equal predicates carry identical fixed semantics.
func (a *Activity) Predicate() string {
	if a.Sem.Op == OpMerged {
		parts := make([]string, len(a.Sem.Components))
		for i, c := range a.Sem.Components {
			parts[i] = c.Predicate()
		}
		return strings.Join(parts, " ∧ ")
	}
	return a.Sem.String()
}
