package workflow

import (
	"testing"

	"etlopt/internal/data"
)

func TestAnalyzeImpactFig1Shape(t *testing.T) {
	g, n := fig1Shape(t)
	// A failure at a4 (head of branch 2) affects everything downstream of
	// it and depends only on S2.
	imp, err := g.AnalyzeImpact(n["a4"])
	if err != nil {
		t.Fatal(err)
	}
	wantDown := []NodeID{n["a5"], n["a6"], n["u7"], n["a8"], n["dw"]}
	if len(imp.Downstream) != len(wantDown) {
		t.Fatalf("Downstream = %v, want %v", imp.Downstream, wantDown)
	}
	for i := range wantDown {
		if imp.Downstream[i] != wantDown[i] {
			t.Fatalf("Downstream = %v, want %v", imp.Downstream, wantDown)
		}
	}
	if len(imp.Targets) != 1 || imp.Targets[0] != "DW" {
		t.Errorf("Targets = %v", imp.Targets)
	}
	if len(imp.Sources) != 1 || imp.Sources[0] != "S2" {
		t.Errorf("Sources = %v", imp.Sources)
	}
	if len(imp.Upstream) != 1 || imp.Upstream[0] != n["s2"] {
		t.Errorf("Upstream = %v", imp.Upstream)
	}
}

func TestAnalyzeImpactAtUnion(t *testing.T) {
	g, n := fig1Shape(t)
	imp, err := g.AnalyzeImpact(n["u7"])
	if err != nil {
		t.Fatal(err)
	}
	// The union depends on both sources.
	if len(imp.Sources) != 2 {
		t.Errorf("Sources = %v, want both", imp.Sources)
	}
	if len(imp.Downstream) != 2 { // a8, dw
		t.Errorf("Downstream = %v", imp.Downstream)
	}
}

func TestAnalyzeImpactUnknownNode(t *testing.T) {
	g, _ := fig1Shape(t)
	if _, err := g.AnalyzeImpact(999); err == nil {
		t.Error("unknown node should error")
	}
}

func TestUnaffectedBy(t *testing.T) {
	g, n := fig1Shape(t)
	un, err := g.UnaffectedBy(n["a4"])
	if err != nil {
		t.Fatal(err)
	}
	// Only branch 1's a3 survives a failure in branch 2's head.
	if len(un) != 1 || un[0] != n["a3"] {
		t.Errorf("UnaffectedBy(a4) = %v, want [a3]", un)
	}
	// A source failure affects everything it feeds.
	un, err = g.UnaffectedBy(n["s1"])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range un {
		if id == n["a3"] {
			t.Error("a3 depends on S1 and must be affected")
		}
	}
}

func TestImpactOnDiamond(t *testing.T) {
	// Shared provider: impact flows through both branches.
	g := NewGraph()
	schema := data.Schema{"A"}
	src := g.AddRecordset(&RecordsetRef{Name: "S", Schema: schema, Rows: 10, IsSource: true})
	f1 := g.AddActivity(&Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9})
	f2 := g.AddActivity(&Activity{Sem: Semantics{Op: OpNotNull, Attrs: []string{"A"}}, Fun: data.Schema{"A"}, Sel: 0.9})
	u := g.AddActivity(&Activity{Sem: Semantics{Op: OpUnion}, Sel: 1})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: schema, IsTarget: true})
	g.MustAddEdge(src, f1)
	g.MustAddEdge(src, f2)
	g.MustAddEdge(f1, u)
	g.MustAddEdge(f2, u)
	g.MustAddEdge(u, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	imp, err := g.AnalyzeImpact(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp.Downstream) != 4 {
		t.Errorf("Downstream = %v, want all 4 nodes", imp.Downstream)
	}
	if len(imp.Upstream) != 0 {
		t.Errorf("a source has no upstream, got %v", imp.Upstream)
	}
}
