package workflow

import (
	"testing"

	"etlopt/internal/data"
)

func TestSpliceSignature(t *testing.T) {
	cases := []struct {
		name          string
		sig, old, new string
		singleChain   bool
		want          string
		ok            bool
	}{
		{"swap mid-chain", "1.2.3.4", "2.3", "3.2", true, "1.3.2.4", true},
		{"swap at head", "1.2.3", "1.2", "2.1", true, "2.1.3", true},
		{"swap at tail", "1.2.3", "2.3", "3.2", true, "1.3.2", true},
		{"merge to package", "1.2.3", "2.3", "2+3", true, "1.2+3", true},
		{"identity", "1.2.3", "2.3", "2.3", true, "1.2.3", true},
		{"no occurrence", "1.2.3", "5.6", "6.5", true, "", false},
		{"two occurrences", "1.2.1.2", "1.2", "2.1", true, "", false},
		{"substring of longer tag is not a site", "12.2.5", "2", "9", true, "12.9.5", true},
		{"only substring sites", "12.32", "2", "9", true, "", false},
		{"multi-chain refuses", "1.2.3", "2.3", "3.2", false, "", false},
		{"empty segment refuses", "1.2.3", "", "x", true, "", false},
		{"branch keeps sorted order", "(1.2//3.4).5", "3.4", "3.9", true, "(1.2//3.9).5", true},
		{"branch would sort before left sibling", "(1.2//3.4).5", "3.4", "0.9", true, "", false},
		{"branch would sort after right sibling", "(1.2//3.4).5", "1.2", "9.9", true, "", false},
		{"nested group keeps order", "((1.2//3.4)//5.6).7", "3.4", "3.5", true, "((1.2//3.5)//5.6).7", true},
		{"nested group breaks outer order", "((1.2//3.4)//2.6).7", "1.2", "9.9", true, "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok := SpliceSignature(c.sig, c.old, c.new, c.singleChain)
			if ok != c.ok {
				t.Fatalf("SpliceSignature(%q, %q, %q, %v) ok=%v, want %v", c.sig, c.old, c.new, c.singleChain, ok, c.ok)
			}
			if ok && got != c.want {
				t.Fatalf("SpliceSignature(%q, %q, %q) = %q, want %q", c.sig, c.old, c.new, got, c.want)
			}
		})
	}
}

func TestFingerprintStableAcrossCopies(t *testing.T) {
	g, _ := linearGraph(t, data.Schema{"A"}, filterOn("A"), filterOn("A"))
	fp := g.Fingerprint()
	if fp != g.Fingerprint() {
		t.Fatal("Fingerprint is not deterministic")
	}
	if got := g.Clone().Fingerprint(); got != fp {
		t.Errorf("Clone changed fingerprint: %x -> %x", fp, got)
	}
	if got := g.Mutate().Fingerprint(); got != fp {
		t.Errorf("Mutate changed fingerprint: %x -> %x", fp, got)
	}
	if got := g.DeepClone().Fingerprint(); got != fp {
		t.Errorf("DeepClone changed fingerprint: %x -> %x", fp, got)
	}
}

// TestFingerprintSeparatesEqualSignatures pins the property the
// transposition cache depends on: two graphs can render the same signature
// while carrying different node-ID labelings, and the fingerprint must
// tell them apart because costings are NodeID-keyed.
func TestFingerprintSeparatesEqualSignatures(t *testing.T) {
	build := func(burn int) *Graph {
		g := NewGraph()
		// Recordsets render their node IDs into the signature, so they are
		// added first (stable IDs); only the activity's ID is burned — its
		// signature tag is pinned explicitly.
		src := g.AddRecordset(&RecordsetRef{Name: "SRC", Schema: data.Schema{"A"}, Rows: 100, IsSource: true})
		tgt := g.AddRecordset(&RecordsetRef{Name: "TGT", Schema: data.Schema{"A"}, IsTarget: true})
		for i := 0; i < burn; i++ {
			id := g.AddRecordset(&RecordsetRef{Name: "TMP", Schema: data.Schema{"A"}})
			g.RemoveNode(id)
		}
		a := filterOn("A")
		a.Tag = "f1"
		act := g.AddActivity(a)
		g.MustAddEdge(src, act)
		g.MustAddEdge(act, tgt)
		if err := g.RegenerateSchemata(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := build(0), build(3)
	if s1, s2 := g1.Signature(), g2.Signature(); s1 != s2 {
		t.Fatalf("setup: signatures differ: %q vs %q", s1, s2)
	}
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Fatal("fingerprints collide across different node-ID labelings")
	}
}

// TestMutateCopyOnWrite exercises the COW contract in both directions:
// rewriting the child leaves the parent untouched, and rewriting the
// parent after a Mutate leaves the child untouched — node writes included,
// because Mutate disowns the parent's nodes too.
func TestMutateCopyOnWrite(t *testing.T) {
	parent, ids := linearGraph(t, data.Schema{"A", "B"}, filterOn("A"), filterOn("B"))
	parentSig := parent.Signature()
	parentStr := parent.String()

	child := parent.Mutate()
	// Rewrite the child: drop the second filter out of the chain.
	child.RemoveNode(ids[2])
	child.MustAddEdge(ids[1], ids[3])
	if err := child.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if err := child.CheckIntegrity(); err != nil {
		t.Fatalf("child integrity: %v", err)
	}
	if got := parent.Signature(); got != parentSig {
		t.Fatalf("rewriting the child changed the parent signature: %q -> %q", parentSig, got)
	}
	if got := parent.String(); got != parentStr {
		t.Fatalf("rewriting the child changed the parent:\nbefore:\n%s\nafter:\n%s", parentStr, got)
	}
	if err := parent.CheckIntegrity(); err != nil {
		t.Fatalf("parent integrity after child rewrite: %v", err)
	}

	// Opposite direction: a second child, then rewrite the parent.
	sibling := parent.Mutate()
	sibSig := sibling.Signature()
	parent.RemoveNode(ids[1])
	parent.MustAddEdge(ids[0], ids[2])
	if err := parent.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if got := sibling.Signature(); got != sibSig {
		t.Fatalf("rewriting the parent changed a Mutate child: %q -> %q", sibSig, got)
	}
	if err := sibling.CheckIntegrity(); err != nil {
		t.Fatalf("sibling integrity after parent rewrite: %v", err)
	}
}

// TestMutateSharesUntouchedNodes pins the structural-sharing property that
// makes Mutate cheap: an untouched node is the same *Node instance in
// parent and child, while a node the child writes (via schema
// regeneration) is copied first.
func TestMutateSharesUntouchedNodes(t *testing.T) {
	parent, ids := linearGraph(t, data.Schema{"A", "B"}, filterOn("A"), filterOn("B"))
	child := parent.Mutate()
	for _, id := range ids {
		if parent.Node(id) != child.Node(id) {
			t.Fatalf("node %d not shared immediately after Mutate", id)
		}
	}
	// Regenerating all schemata rewrites every node through mutableNode:
	// each written node must be a fresh copy, the parent keeps its own.
	before := map[NodeID]*Node{}
	for _, id := range ids {
		before[id] = parent.Node(id)
	}
	if err := child.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if parent.Node(id) != before[id] {
			t.Fatalf("parent node %d replaced by a child write", id)
		}
		if child.Node(id) == parent.Node(id) {
			t.Fatalf("child write to node %d landed on the shared instance", id)
		}
	}
}

func TestCheckIntegrityCatchesCorruption(t *testing.T) {
	g, ids := linearGraph(t, data.Schema{"A"}, filterOn("A"))
	if err := g.CheckIntegrity(); err != nil {
		t.Fatalf("fresh graph fails integrity: %v", err)
	}
	// Dangling edge: clear a node slot behind the edge lists' back.
	bad := g.Clone()
	bad.nodes[ids[1]] = nil
	if err := bad.CheckIntegrity(); err == nil {
		t.Error("dangling edge not caught")
	}
	// Mismatched ID.
	bad2 := g.Clone()
	n := *bad2.nodes[ids[1]]
	n.ID = 99
	bad2.nodes[ids[1]] = &n
	if err := bad2.CheckIntegrity(); err == nil {
		t.Error("mismatched slot ID not caught")
	}
	// Asymmetric succ/pred.
	bad3 := g.Clone()
	bad3.pred[ids[1]] = nil
	if err := bad3.CheckIntegrity(); err == nil {
		t.Error("asymmetric succ/pred not caught")
	}
	// Wrong live count.
	bad4 := g.Clone()
	bad4.live++
	if err := bad4.CheckIntegrity(); err == nil {
		t.Error("wrong live count not caught")
	}
}
