package workflow

import (
	"fmt"
	"strings"
)

// DOT renders the workflow in Graphviz dot syntax: recordsets as boxes
// (sources and targets shaded), activities as ellipses labelled with their
// semantics, edges following the data-provider relation. Useful for
// inspecting before/after optimization states:
//
//	etlopt -in wf.etl -dot | dot -Tsvg > wf.svg
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	b.WriteString("digraph etl {\n")
	b.WriteString("  rankdir=LR;\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	}
	order, err := g.TopoSort()
	if err != nil {
		order = g.Nodes()
	}
	for _, id := range order {
		n := g.nodes[id]
		switch n.Kind {
		case KindRecordset:
			fill := "white"
			switch {
			case len(g.pred[id]) == 0:
				fill = "lightblue"
			case len(g.succ[id]) == 0:
				fill = "lightyellow"
			}
			fmt.Fprintf(&b, "  n%d [shape=box, style=filled, fillcolor=%s, label=\"%s\\n{%s}\"];\n",
				id, fill, escapeDOT(n.RS.Name), escapeDOT(n.RS.Schema.String()))
		case KindActivity:
			shape := "ellipse"
			if n.Act.IsBinary() {
				shape = "diamond"
			}
			fmt.Fprintf(&b, "  n%d [shape=%s, label=\"%s\\n%s\"];\n",
				id, shape, escapeDOT(n.Act.Tag), escapeDOT(n.Act.Sem.String()))
		}
	}
	for _, id := range order {
		for _, c := range g.succ[id] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id, c)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// escapeDOT escapes characters that would break a dot string literal.
func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
