package workflow

import (
	"strings"
	"testing"

	"etlopt/internal/data"
)

// linearGraph builds SRC → activities... → TGT and returns the graph plus
// the node IDs in order.
func linearGraph(t *testing.T, schema data.Schema, acts ...*Activity) (*Graph, []NodeID) {
	t.Helper()
	g := NewGraph()
	ids := []NodeID{g.AddRecordset(&RecordsetRef{Name: "SRC", Schema: schema, Rows: 100, IsSource: true})}
	for _, a := range acts {
		ids = append(ids, g.AddActivity(a))
	}
	// Target schema mirrors the source for pass-through chains; tests that
	// change the schema construct graphs by hand instead.
	ids = append(ids, g.AddRecordset(&RecordsetRef{Name: "TGT", Schema: schema, IsTarget: true}))
	for i := 0; i+1 < len(ids); i++ {
		g.MustAddEdge(ids[i], ids[i+1])
	}
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func filterOn(attr string) *Activity {
	return &Activity{
		Name: "σ(" + attr + ")",
		Sem:  Semantics{Op: OpNotNull, Attrs: []string{attr}},
		Fun:  data.Schema{attr},
		Sel:  0.5,
	}
}

func TestAddAndQueryNodes(t *testing.T) {
	g, ids := linearGraph(t, data.Schema{"A"}, filterOn("A"), filterOn("A"))
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
	if len(g.Activities()) != 2 {
		t.Errorf("Activities = %v", g.Activities())
	}
	if len(g.Recordsets()) != 2 {
		t.Errorf("Recordsets = %v", g.Recordsets())
	}
	if got := g.Sources(); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Targets(); len(got) != 1 || got[0] != ids[3] {
		t.Errorf("Targets = %v", got)
	}
	if g.Node(ids[1]).Label() != "σ(A)" {
		t.Errorf("Label = %q", g.Node(ids[1]).Label())
	}
	if g.Node(999) != nil {
		t.Error("unknown node should be nil")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddRecordset(&RecordsetRef{Name: "A", Schema: data.Schema{"X"}})
	if err := g.AddEdge(a, 999); err == nil {
		t.Error("edge to unknown node should fail")
	}
	if err := g.AddEdge(999, a); err == nil {
		t.Error("edge from unknown node should fail")
	}
	b := g.AddRecordset(&RecordsetRef{Name: "B", Schema: data.Schema{"X"}})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g, _ := linearGraph(t, data.Schema{"A"}, filterOn("A"), filterOn("A"), filterOn("A"))
	o1, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoSort()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("TopoSort not deterministic")
		}
	}
	// Providers come before consumers.
	pos := map[NodeID]int{}
	for i, id := range o1 {
		pos[id] = i
	}
	for _, id := range g.Nodes() {
		for _, c := range g.Consumers(id) {
			if pos[id] >= pos[c] {
				t.Errorf("node %d not before consumer %d", id, c)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewGraph()
	a := g.AddActivity(filterOn("A"))
	b := g.AddActivity(filterOn("A"))
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle should be detected")
	}
}

func TestTopoCacheInvalidation(t *testing.T) {
	g, ids := linearGraph(t, data.Schema{"A"}, filterOn("A"), filterOn("A"))
	if _, err := g.TopoSort(); err != nil {
		t.Fatal(err)
	}
	// Mutate: swap the two activities via ReplaceProvider; the cached order
	// must be discarded.
	a1, a2 := ids[1], ids[2]
	consumer := g.Consumers(a2)[0]
	p := g.Providers(a1)[0]
	g.MustReplaceProvider(consumer, a2, a1)
	g.MustReplaceProvider(a1, p, a2)
	g.MustReplaceProvider(a2, a1, p)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[a2] >= pos[a1] {
		t.Error("stale topological order after mutation")
	}
}

func TestValidateArity(t *testing.T) {
	g := NewGraph()
	src := g.AddRecordset(&RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	u := g.AddActivity(&Activity{Sem: Semantics{Op: OpUnion}, Sel: 1})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(src, u)
	g.MustAddEdge(u, tgt)
	if err := g.Validate(); err == nil {
		t.Error("union with one provider should fail validation")
	}
}

func TestValidateConsumerRequired(t *testing.T) {
	g := NewGraph()
	src := g.AddRecordset(&RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	a := g.AddActivity(filterOn("A"))
	g.MustAddEdge(src, a)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "no consumer") {
		t.Errorf("dangling activity should fail validation, got %v", err)
	}
}

func TestValidateRecordsetSingleProvider(t *testing.T) {
	g := NewGraph()
	s1 := g.AddRecordset(&RecordsetRef{Name: "S1", Schema: data.Schema{"A"}, IsSource: true})
	s2 := g.AddRecordset(&RecordsetRef{Name: "S2", Schema: data.Schema{"A"}, IsSource: true})
	tgt := g.AddRecordset(&RecordsetRef{Name: "T", Schema: data.Schema{"A"}})
	g.MustAddEdge(s1, tgt)
	g.MustAddEdge(s2, tgt)
	if err := g.Validate(); err == nil {
		t.Error("recordset with two providers should fail validation")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, ids := linearGraph(t, data.Schema{"A", "B"}, filterOn("A"), filterOn("B"))
	c := g.Clone()
	// Structural mutation of the clone must not leak back.
	c.RemoveNode(ids[1])
	if g.Node(ids[1]) == nil {
		t.Fatal("RemoveNode on clone affected original")
	}
	if len(g.Consumers(ids[0])) != 1 {
		t.Fatal("clone edge removal affected original's edges")
	}
	// Activity mutation path: clones returned by Node(...).Act.Clone() are
	// independent; direct tag edits on a clone's activity must not leak
	// either, because transitions always clone-before-mutate.
	act := c.Node(ids[2]).Act.Clone()
	act.Tag = "mutated"
	if g.Node(ids[2]).Act.Tag == "mutated" {
		t.Fatal("activity clone shares tag storage")
	}
}

func TestCloneEqualSignature(t *testing.T) {
	g, _ := linearGraph(t, data.Schema{"A"}, filterOn("A"), filterOn("A"))
	if g.Clone().Signature() != g.Signature() {
		t.Error("clone signature differs")
	}
}

func TestReplaceProviderPreservesPosition(t *testing.T) {
	g := NewGraph()
	s1 := g.AddRecordset(&RecordsetRef{Name: "S1", Schema: data.Schema{"K", "A"}, Rows: 10, IsSource: true})
	s2 := g.AddRecordset(&RecordsetRef{Name: "S2", Schema: data.Schema{"K", "B"}, Rows: 10, IsSource: true})
	j := g.AddActivity(&Activity{
		Sem: Semantics{Op: OpJoin, Attrs: []string{"K"}},
		Fun: data.Schema{"K"}, Sel: 0.1,
	})
	g.MustAddEdge(s1, j)
	g.MustAddEdge(s2, j)
	s3 := g.AddRecordset(&RecordsetRef{Name: "S3", Schema: data.Schema{"K", "A"}, Rows: 10, IsSource: true})
	g.MustReplaceProvider(j, s1, s3)
	preds := g.Providers(j)
	if preds[0] != s3 || preds[1] != s2 {
		t.Errorf("provider order after replacement = %v, want [%d %d]", preds, s3, s2)
	}
	if err := g.ReplaceProvider(j, s1, s3); err == nil {
		t.Error("replacing a non-provider should fail")
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g, ids := linearGraph(t, data.Schema{"A"}, filterOn("A"))
	g.RemoveNode(ids[1])
	if len(g.Consumers(ids[0])) != 0 {
		t.Error("stale consumer edge after RemoveNode")
	}
	if len(g.Providers(ids[2])) != 0 {
		t.Error("stale provider edge after RemoveNode")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestStringRendering(t *testing.T) {
	g, _ := linearGraph(t, data.Schema{"A"}, filterOn("A"))
	s := g.String()
	if !strings.Contains(s, "SRC") || !strings.Contains(s, "σ(A)") || !strings.Contains(s, "TGT") {
		t.Errorf("String rendering missing nodes:\n%s", s)
	}
}
