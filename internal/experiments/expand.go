package experiments

import (
	"context"
	"fmt"
	"io"

	"etlopt/internal/core"
	"etlopt/internal/generator"
)

// ExpandRun records one suite scenario's incremental-vs-full-clone
// comparison: the HS search runs once per mode and worker width, and the
// results must be bit-identical — same best cost, same best signature,
// same visited/generated counts — before the timings are worth reading.
type ExpandRun struct {
	Category   string `json:"category"`
	Index      int    `json:"index"`
	Activities int    `json:"activities"`

	// Search outcome, identical across modes and worker widths by
	// construction (the run fails otherwise).
	BestCost      float64 `json:"best_cost"`
	BestSignature string  `json:"best_signature"`
	Visited       int     `json:"visited"`
	Generated     int     `json:"generated"`

	// Wall-clock seconds summed over the worker widths, per mode.
	IncrementalSeconds float64 `json:"incremental_seconds"`
	FullCloneSeconds   float64 `json:"full_clone_seconds"`
}

// ExpandReport is the JSON baseline etlbench -expand records
// (BENCH_expand.json): the whole-suite incremental-vs-full-clone
// equivalence check plus aggregate throughput.
type ExpandReport struct {
	Seed     int64 `json:"seed"`
	HSBudget int   `json:"hs_budget"`
	GroupCap int   `json:"group_cap,omitempty"`
	Workers  []int `json:"workers"`

	Scenarios    int  `json:"scenarios"`
	AllIdentical bool `json:"all_identical"`

	// Generated states per wall-clock second, summed over every scenario
	// and worker width.
	IncrementalStatesPerSec float64 `json:"incremental_states_per_sec"`
	FullCloneStatesPerSec   float64 `json:"full_clone_states_per_sec"`
	Speedup                 float64 `json:"speedup"`

	Runs []ExpandRun `json:"runs"`
}

// expandWorkers are the widths the equivalence contract is checked at;
// results must be identical at any width, these two cover the sequential
// and the racy path.
var expandWorkers = []int{1, 4}

// ExpandBench runs the HS search over the full suite in both expansion
// modes — the shipped incremental pipeline (COW successors, signature
// splicing + interning, cost memo, transposition cache) and the
// full-clone baseline (Options.DisableIncrementalExpand) — at Workers
// ∈ {1, 4}, verifies all four runs of every scenario agree bit-for-bit,
// and reports aggregate throughput. It is the 40-scenario companion of
// core's BenchmarkIncrementalExpand and TestIncrementalExpandEquivalence.
func ExpandBench(ctx context.Context, cfg SuiteConfig) (*ExpandReport, error) {
	cfg = cfg.withDefaults()
	rep := &ExpandReport{
		Seed:         cfg.Seed,
		HSBudget:     cfg.HSBudget,
		GroupCap:     cfg.GroupCap,
		Workers:      expandWorkers,
		AllIdentical: true,
	}
	var incGen, fullGen int
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		n := cfg.Counts[cat]
		if n == 0 {
			continue
		}
		scenarios, err := generator.Suite(cat, n, cfg.Seed+int64(cat)*104729)
		if err != nil {
			return nil, err
		}
		for i, sc := range scenarios {
			run := ExpandRun{
				Category:   cat.String(),
				Index:      i + 1,
				Activities: len(sc.Graph.Activities()),
			}
			first := true
			for _, workers := range expandWorkers {
				for _, disable := range []bool{false, true} {
					res, err := core.Heuristic(ctx, sc.Graph, core.Options{
						MaxStates:                cfg.HSBudget,
						GroupCap:                 cfg.GroupCap,
						Workers:                  workers,
						IncrementalCost:          !disable,
						DisableIncrementalExpand: disable,
						Metrics:                  cfg.Metrics,
					})
					if err != nil {
						return nil, fmt.Errorf("expand: %s workflow %d (workers=%d, full-clone=%v): %w",
							cat, i+1, workers, disable, err)
					}
					sig := res.Best.Signature()
					if first {
						run.BestCost = res.BestCost
						run.BestSignature = sig
						run.Visited = res.Visited
						run.Generated = res.Generated
						first = false
					} else if res.BestCost != run.BestCost || sig != run.BestSignature ||
						res.Visited != run.Visited || res.Generated != run.Generated {
						rep.AllIdentical = false
						return nil, fmt.Errorf(
							"expand: %s workflow %d diverged at workers=%d full-clone=%v:\n"+
								"  cost %v vs %v, visited %d vs %d, generated %d vs %d\n"+
								"  sig  %s\n  want %s",
							cat, i+1, workers, disable,
							res.BestCost, run.BestCost, res.Visited, run.Visited,
							res.Generated, run.Generated, sig, run.BestSignature)
					}
					if disable {
						run.FullCloneSeconds += res.Elapsed.Seconds()
						fullGen += res.Generated
					} else {
						run.IncrementalSeconds += res.Elapsed.Seconds()
						incGen += res.Generated
					}
				}
			}
			rep.Runs = append(rep.Runs, run)
			rep.Scenarios++
			if cfg.Progress != nil {
				speedup := 0.0
				if run.IncrementalSeconds > 0 {
					speedup = run.FullCloneSeconds / run.IncrementalSeconds
				}
				fmt.Fprintf(cfg.Progress,
					"%-6s #%02d  acts=%3d  identical  inc %6.2fs  full %6.2fs  ×%.2f\n",
					cat, i+1, run.Activities, run.IncrementalSeconds, run.FullCloneSeconds, speedup)
			}
		}
	}
	var incSec, fullSec float64
	for _, r := range rep.Runs {
		incSec += r.IncrementalSeconds
		fullSec += r.FullCloneSeconds
	}
	if incSec > 0 {
		rep.IncrementalStatesPerSec = float64(incGen) / incSec
	}
	if fullSec > 0 {
		rep.FullCloneStatesPerSec = float64(fullGen) / fullSec
	}
	if rep.FullCloneStatesPerSec > 0 {
		rep.Speedup = rep.IncrementalStatesPerSec / rep.FullCloneStatesPerSec
	}
	return rep, nil
}

// Summary renders the headline numbers of an expand report.
func (r *ExpandReport) Summary(w io.Writer) {
	fmt.Fprintf(w, "expand baseline: %d scenarios × workers %v, HS budget %d\n",
		r.Scenarios, r.Workers, r.HSBudget)
	fmt.Fprintf(w, "  all runs bit-identical: %v\n", r.AllIdentical)
	fmt.Fprintf(w, "  incremental: %.0f states/s   full-clone: %.0f states/s   speedup ×%.2f\n",
		r.IncrementalStatesPerSec, r.FullCloneStatesPerSec, r.Speedup)
}
