// Package experiments regenerates the paper's evaluation (§4.2): Table 1
// (quality of solution), Table 2 (visited states, improvement over the
// initial state, and execution time per algorithm and workflow category)
// and the section's prose claims. The workloads come from the generator's
// paper suite; every algorithm runs on the same scenarios, and optionally
// every optimized workflow is validated against the empirical equivalence
// oracle before being counted.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/stats"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// AlgoRun reports one algorithm's performance on one workflow.
type AlgoRun struct {
	Visited     int
	Improvement float64 // % over the initial state
	Quality     float64 // % of the best ES improvement (Table 1)
	Seconds     float64
	Terminated  bool
	BestCost    float64
	InitialCost float64
}

// WorkflowResult reports all three algorithms on one workflow.
type WorkflowResult struct {
	Category    generator.Category
	Activities  int
	ES, HS, HSG AlgoRun
	// ExecSeconds is the wall clock of executing the initial workflow on
	// its generated data through the materialized engine (Table 2's
	// "exec s" column).
	ExecSeconds float64
	// ParExec maps a partition count to the wall clock of the same
	// execution through the partition-parallel engine (populated when
	// SuiteConfig.Partitions is set).
	ParExec map[int]float64
	// SelDrift is the scenario's cost-model drift: the mean absolute
	// difference between each activity's modeled selectivity and the
	// selectivity observed when the workflow ran on its generated data
	// (cost.MeanAbsSelDelta). High drift means the optimizer searched
	// under estimates that execution contradicts.
	SelDrift float64
	// Verified reports whether the HS and ES optimized workflows were
	// checked equivalent to the initial state on real data (when
	// SuiteConfig.Verify is set).
	Verified bool
}

// SuiteConfig parameterizes a full experimental run.
type SuiteConfig struct {
	// Seed drives workload generation.
	Seed int64
	// Counts is the number of workflows per category; nil means the
	// paper's 40-workflow split (14/13/13).
	Counts map[generator.Category]int
	// ESBudget caps ES's generated states per workflow (the stand-in for
	// the paper's 40-hour cap). 0 means 60 000.
	ESBudget int
	// HSBudget caps HS's generated states per workflow. 0 means 30 000.
	HSBudget int
	// GroupCap bounds HS's per-local-group exploration (0 = core default).
	GroupCap int
	// Workers sets every algorithm's search parallelism (0 = GOMAXPROCS,
	// 1 = sequential). Results are identical for every value.
	Workers int
	// Partitions, when non-empty, additionally executes each initial
	// workflow through the partition-parallel engine at every listed
	// count: RunSuite records the wall clocks in Table 2's exec columns,
	// and EngineBench measures these counts (nil = {1, 2, 4, 8} there).
	Partitions []int
	// DataRows overrides the generator's per-source record volume for
	// EngineBench (0 = 8000). RunSuite keeps the category default.
	DataRows int
	// FaultSpec, when non-empty, arms deterministic fault injection on
	// EngineBench's parallel runs as "seed:rate" (etlbench's -faults
	// flag). Each run gets a fresh plan from the same seed plus a retry
	// budget, so the bit-identity check demonstrates recovery
	// equivalence under chaos; the materialized reference stays clean.
	FaultSpec string
	// Verify additionally runs every optimized workflow against the
	// empirical equivalence oracle (slower; always on in tests).
	Verify bool
	// Metrics, when non-nil, collects the observability series of every
	// search and every execution in the suite (etlbench's -metrics flag).
	Metrics *obs.Registry
	// Journal, when non-nil, receives the flight-recorder event stream of
	// every search and every execution in the suite (etlbench's -journal
	// flag). The caller owns the journal and closes it after the suite.
	Journal *obs.Journal
	// Progress, when non-nil, receives one line per workflow.
	Progress io.Writer
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Counts == nil {
		c.Counts = map[generator.Category]int{
			generator.Small:  14,
			generator.Medium: 13,
			generator.Large:  13,
		}
	}
	if c.ESBudget <= 0 {
		c.ESBudget = 60_000
	}
	if c.HSBudget <= 0 {
		c.HSBudget = 30_000
	}
	return c
}

// RunSuite executes the full experiment and returns per-workflow results
// grouped by category.
func RunSuite(ctx context.Context, cfg SuiteConfig) ([]WorkflowResult, error) {
	cfg = cfg.withDefaults()
	var out []WorkflowResult
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		n := cfg.Counts[cat]
		if n == 0 {
			continue
		}
		scenarios, err := generator.Suite(cat, n, cfg.Seed+int64(cat)*104729)
		if err != nil {
			return nil, err
		}
		for i, sc := range scenarios {
			res, err := runOne(ctx, cat, sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s workflow %d: %w", cat, i, err)
			}
			out = append(out, res)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress,
					"%-6s #%02d  acts=%3d  ES %6.1f%% (%6d st, %6.1fs, term=%-5v)  HS %6.1f%% (%6d st, %6.1fs)  HSG %6.1f%% (%5d st, %5.1fs)  drift=%.3f\n",
					cat, i+1, res.Activities,
					res.ES.Improvement, res.ES.Visited, res.ES.Seconds, res.ES.Terminated,
					res.HS.Improvement, res.HS.Visited, res.HS.Seconds,
					res.HSG.Improvement, res.HSG.Visited, res.HSG.Seconds,
					res.SelDrift)
			}
		}
	}
	return out, nil
}

func runOne(ctx context.Context, cat generator.Category, sc *templates.Scenario, cfg SuiteConfig) (WorkflowResult, error) {
	g := sc.Graph
	res := WorkflowResult{Category: cat, Activities: len(g.Activities())}

	esRes, err := core.Exhaustive(ctx, g, core.Options{
		MaxStates:       cfg.ESBudget,
		Workers:         cfg.Workers,
		IncrementalCost: true,
		Metrics:         cfg.Metrics,
		Journal:         cfg.Journal,
	})
	if err != nil {
		return res, fmt.Errorf("ES: %w", err)
	}
	hsRes, err := core.Heuristic(ctx, g, core.Options{
		MaxStates:       cfg.HSBudget,
		GroupCap:        cfg.GroupCap,
		Workers:         cfg.Workers,
		IncrementalCost: true,
		Metrics:         cfg.Metrics,
		Journal:         cfg.Journal,
	})
	if err != nil {
		return res, fmt.Errorf("HS: %w", err)
	}
	hsgRes, err := core.HSGreedy(ctx, g, core.Options{
		MaxStates:       cfg.HSBudget,
		Workers:         cfg.Workers,
		IncrementalCost: true,
		Metrics:         cfg.Metrics,
		Journal:         cfg.Journal,
	})
	if err != nil {
		return res, fmt.Errorf("HS-Greedy: %w", err)
	}

	// Execute the initial workflow on its generated data and compare each
	// activity's observed selectivity against the modeled value the search
	// just optimized under: Table 2's "sel drift" column. The run also
	// feeds the engine's observability series when cfg.Metrics is set.
	runRes, err := engine.New(sc.Bind(), engine.WithMetrics(cfg.Metrics),
		engine.WithJournal(cfg.Journal)).Run(ctx, g)
	if err != nil {
		return res, fmt.Errorf("executing initial workflow: %w", err)
	}
	res.ExecSeconds = runRes.Elapsed.Seconds()
	res.SelDrift = cost.MeanAbsSelDelta(cost.SelectivityDeltas(g, runRes.NodeRows))

	// Table 2's parallel exec columns: the same run through the
	// partition-parallel engine, held to bit-identical targets.
	if len(cfg.Partitions) > 0 {
		res.ParExec = make(map[int]float64, len(cfg.Partitions))
		for _, p := range cfg.Partitions {
			parRes, err := engine.New(sc.Bind(),
				engine.WithMode(engine.Parallel), engine.WithPartitions(p),
				engine.WithMetrics(cfg.Metrics), engine.WithJournal(cfg.Journal)).Run(ctx, g)
			if err != nil {
				return res, fmt.Errorf("executing initial workflow at P=%d: %w", p, err)
			}
			for _, name := range sortedTargetNames(runRes.Targets) {
				if diff := rowsDiff(runRes.Targets[name], parRes.Targets[name]); diff != "" {
					return res, fmt.Errorf("P=%d: target %s not bit-identical to materialized: %s",
						p, name, diff)
				}
			}
			res.ParExec[p] = parRes.Elapsed.Seconds()
		}
	}

	// Quality of solution (Table 1): improvement relative to the best the
	// (possibly stopped) ES achieved — "the values are compared to the
	// best of ES when it stopped". Algorithms may exceed 100 when they
	// beat a stopped ES.
	ref := esRes.Improvement()
	quality := func(imp float64) float64 {
		if ref <= 0 {
			if imp <= 0 {
				return 100
			}
			return 100 + imp
		}
		return 100 * imp / ref
	}

	res.ES = AlgoRun{
		Visited: esRes.Visited, Improvement: esRes.Improvement(), Quality: 100,
		Seconds: esRes.Elapsed.Seconds(), Terminated: esRes.Terminated,
		BestCost: esRes.BestCost, InitialCost: esRes.InitialCost,
	}
	res.HS = AlgoRun{
		Visited: hsRes.Visited, Improvement: hsRes.Improvement(), Quality: quality(hsRes.Improvement()),
		Seconds: hsRes.Elapsed.Seconds(), Terminated: true,
		BestCost: hsRes.BestCost, InitialCost: hsRes.InitialCost,
	}
	res.HSG = AlgoRun{
		Visited: hsgRes.Visited, Improvement: hsgRes.Improvement(), Quality: quality(hsgRes.Improvement()),
		Seconds: hsgRes.Elapsed.Seconds(), Terminated: true,
		BestCost: hsgRes.BestCost, InitialCost: hsgRes.InitialCost,
	}

	if cfg.Verify {
		for _, opt := range []struct {
			name string
			best *workflow.Graph
		}{{"ES", esRes.Best}, {"HS", hsRes.Best}, {"HS-Greedy", hsgRes.Best}} {
			ok, diff, err := equiv.VerifyEmpirical(g, opt.best, sc.Bind())
			if err != nil {
				return res, fmt.Errorf("verifying %s result: %w", opt.name, err)
			}
			if !ok {
				return res, fmt.Errorf("%s produced a non-equivalent workflow: %s", opt.name, diff)
			}
		}
		res.Verified = true
	}
	return res, nil
}

// categoryRows groups results by category preserving order.
func categoryRows(results []WorkflowResult) map[generator.Category][]WorkflowResult {
	m := map[generator.Category][]WorkflowResult{}
	for _, r := range results {
		m[r.Category] = append(m[r.Category], r)
	}
	return m
}

func mean(xs []float64) float64 { return stats.Summarize(xs).Mean }

// Table1 renders the quality-of-solution table (paper Table 1): for each
// category, the average quality of each algorithm's solution relative to
// the best ES result. A trailing asterisk marks categories where ES did
// not terminate, as in the paper.
func Table1(results []WorkflowResult) string {
	rows := categoryRows(results)
	t := stats.NewTable("workflow category", "ES quality %", "HS quality %", "HS-Greedy quality %")
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		rs := rows[cat]
		if len(rs) == 0 {
			continue
		}
		var es, hs, hsg []float64
		star := ""
		for _, r := range rs {
			es = append(es, r.ES.Quality)
			hs = append(hs, r.HS.Quality)
			hsg = append(hsg, r.HSG.Quality)
			if !r.ES.Terminated {
				star = "*"
			}
		}
		esCell := fmt.Sprintf("%.0f", mean(es))
		if star == "*" {
			esCell = "-"
		}
		t.AddRow(cat.String(), esCell,
			fmt.Sprintf("%.0f%s", mean(hs), star),
			fmt.Sprintf("%.0f%s", mean(hsg), star))
	}
	return t.String() +
		"* compared to the best state ES had found when its budget expired (ES did not terminate)\n"
}

// Table2 renders the execution table (paper Table 2): per category and
// algorithm, the average number of visited states, improvement over the
// initial state and execution time, plus the wall clock of executing the
// initial workflow — one column for the materialized engine and, when the
// suite ran with SuiteConfig.Partitions, one per partition count.
func Table2(results []WorkflowResult) string {
	rows := categoryRows(results)
	pcols := partitionColumns(results)
	headers := []string{"category", "acts (avg)",
		"ES states", "ES impr %", "ES time s",
		"HS states", "HS impr %", "HS time s",
		"HSG states", "HSG impr %", "HSG time s",
		"sel drift", "exec s"}
	for _, p := range pcols {
		headers = append(headers, fmt.Sprintf("exec P=%d s", p))
	}
	align := make([]int, len(headers)-1)
	for i := range align {
		align[i] = i + 1
	}
	t := stats.NewTable(headers...).AlignRight(align...)
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		rs := rows[cat]
		if len(rs) == 0 {
			continue
		}
		var acts, esS, esI, esT, hsS, hsI, hsT, hgS, hgI, hgT, drift, exec []float64
		parExec := make([][]float64, len(pcols))
		star := ""
		for _, r := range rs {
			acts = append(acts, float64(r.Activities))
			esS = append(esS, float64(r.ES.Visited))
			esI = append(esI, r.ES.Improvement)
			esT = append(esT, r.ES.Seconds)
			hsS = append(hsS, float64(r.HS.Visited))
			hsI = append(hsI, r.HS.Improvement)
			hsT = append(hsT, r.HS.Seconds)
			hgS = append(hgS, float64(r.HSG.Visited))
			hgI = append(hgI, r.HSG.Improvement)
			hgT = append(hgT, r.HSG.Seconds)
			drift = append(drift, r.SelDrift)
			exec = append(exec, r.ExecSeconds)
			for i, p := range pcols {
				if s, ok := r.ParExec[p]; ok {
					parExec[i] = append(parExec[i], s)
				}
			}
			if !r.ES.Terminated {
				star = "*"
			}
		}
		cells := []string{cat.String(), fmt.Sprintf("%.0f", mean(acts)),
			fmt.Sprintf("%.0f%s", mean(esS), star),
			fmt.Sprintf("%.0f%s", mean(esI), star),
			fmt.Sprintf("%.2f%s", mean(esT), star),
			fmt.Sprintf("%.0f", mean(hsS)),
			fmt.Sprintf("%.0f", mean(hsI)),
			fmt.Sprintf("%.2f", mean(hsT)),
			fmt.Sprintf("%.0f", mean(hgS)),
			fmt.Sprintf("%.0f", mean(hgI)),
			fmt.Sprintf("%.2f", mean(hgT)),
			fmt.Sprintf("%.3f", mean(drift)),
			fmt.Sprintf("%.3f", mean(exec))}
		for i := range pcols {
			if len(parExec[i]) == 0 {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", mean(parExec[i])))
		}
		t.AddRow(toAnys(cells)...)
	}
	return t.String() +
		"* ES budget expired before the space closed; values reflect ES's status when it stopped\n" +
		"sel drift: mean |observed - modeled| selectivity when the initial workflow ran on its generated data\n" +
		"exec: wall clock of running the initial workflow on its generated data (materialized; P=n: parallel engine)\n"
}

// partitionColumns collects the partition counts any result was executed
// at, sorted, so Table 2's exec columns are stable.
func partitionColumns(results []WorkflowResult) []int {
	set := map[int]bool{}
	for _, r := range results {
		for p := range r.ParExec {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func toAnys(cells []string) []interface{} {
	out := make([]interface{}, len(cells))
	for i, c := range cells {
		out[i] = c
	}
	return out
}

// Claims renders the §4.2 prose claims with the measured values:
// HS-Greedy's speedup over HS on small workflows, HS's quality advantage
// on medium, and the improvement levels on large workflows.
func Claims(results []WorkflowResult) string {
	rows := categoryRows(results)
	var b []byte
	add := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	if small := rows[generator.Small]; len(small) > 0 {
		var speedups, hsQ, hsgQ []float64
		for _, r := range small {
			if r.HS.Seconds > 0 {
				speedups = append(speedups, 100*(r.HS.Seconds-r.HSG.Seconds)/r.HS.Seconds)
			}
			hsQ = append(hsQ, r.HS.Quality)
			hsgQ = append(hsgQ, r.HSG.Quality)
		}
		s := stats.Summarize(speedups)
		add("small: HS quality %.0f%%, HS-Greedy quality %.0f%% (paper: 100 / 99);\n", mean(hsQ), mean(hsgQ))
		add("       HS-Greedy faster than HS by min %.0f%% / avg %.0f%% (paper: at least 86%%, avg 92%%)\n",
			s.Min, s.Mean)
	}
	if med := rows[generator.Medium]; len(med) > 0 {
		var gaps []float64
		for _, r := range med {
			gaps = append(gaps, r.HS.Improvement-r.HSG.Improvement)
		}
		s := stats.Summarize(gaps)
		add("medium: HS finds better solutions than HS-Greedy by %.0f-%.0f%% (avg %.0f) of initial cost (paper: 13-38%%)\n",
			s.Min, s.Max, s.Mean)
	}
	if large := rows[generator.Large]; len(large) > 0 {
		var hsI, hsgI []float64
		for _, r := range large {
			hsI = append(hsI, r.HS.Improvement)
			hsgI = append(hsgI, r.HSG.Improvement)
		}
		add("large: HS improvement avg %.0f%% (paper: over 70%%), HS-Greedy avg %.0f%% (paper: unstable, avg 47%%)\n",
			mean(hsI), mean(hsgI))
	}
	return string(b)
}
