package experiments

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/generator"
)

// TestSharedBench runs the shared-work baseline on a reduced suite: every
// member must come back bit-identical to its independent run, sharing must
// actually remove node executions and serve cache bytes, and the summary
// must render.
func TestSharedBench(t *testing.T) {
	cfg := SharedConfig{
		Seed: 5,
		Counts: map[generator.Category]int{
			generator.Small: 2,
		},
		SuiteSize: 2,
		DataRows:  300,
	}
	rep, err := SharedBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllIdentical {
		t.Error("suite runs not bit-identical to independent runs")
	}
	if rep.Suites != 2 || len(rep.Runs) != 2 {
		t.Fatalf("suites = %d, runs = %d, want 2", rep.Suites, len(rep.Runs))
	}
	if rep.NodesExecuted >= rep.NodesIndependent {
		t.Errorf("sharing saved nothing: executed %d of %d nodes",
			rep.NodesExecuted, rep.NodesIndependent)
	}
	if rep.RecomputationSavedBytes <= 0 {
		t.Errorf("recomputation_saved_bytes = %d, want > 0", rep.RecomputationSavedBytes)
	}
	for _, run := range rep.Runs {
		if run.SharedStages == 0 || run.TargetRows <= 0 || run.SharedSeconds <= 0 {
			t.Errorf("%s #%d: empty measurement %+v", run.Category, run.Index, run)
		}
	}
	var b strings.Builder
	rep.Summary(&b)
	for _, want := range []string{"2 suites", "bit-identical", "recomputation saved"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, b.String())
		}
	}
}
