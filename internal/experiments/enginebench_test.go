package experiments

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/generator"
)

// TestEngineBench runs the partition-parallel engine baseline on a
// reduced suite: every parallel run must come back bit-identical, the
// report shape must line up with the configured partition counts, and
// the summary must render.
func TestEngineBench(t *testing.T) {
	cfg := SuiteConfig{
		Seed: 5,
		Counts: map[generator.Category]int{
			generator.Small:  1,
			generator.Medium: 1,
		},
		Partitions: []int{1, 3},
		DataRows:   400,
	}
	rep, err := EngineBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllIdentical {
		t.Error("parallel runs not bit-identical")
	}
	if rep.Scenarios != 2 || len(rep.Runs) != 2 {
		t.Fatalf("scenarios = %d, runs = %d, want 2", rep.Scenarios, len(rep.Runs))
	}
	if rep.DataRows != 400 || rep.CPUs < 1 {
		t.Errorf("report header off: rows %d, cpus %d", rep.DataRows, rep.CPUs)
	}
	for _, run := range rep.Runs {
		if len(run.ParallelSeconds) != len(cfg.Partitions) {
			t.Errorf("%s #%d: %d parallel timings, want %d",
				run.Category, run.Index, len(run.ParallelSeconds), len(cfg.Partitions))
		}
		if run.TargetRows <= 0 || run.MaterializedSeconds <= 0 {
			t.Errorf("%s #%d: empty measurement %+v", run.Category, run.Index, run)
		}
	}
	if len(rep.Speedup) != 2 || len(rep.ParallelRowsPerSec) != 2 {
		t.Fatalf("aggregate lengths off: %+v", rep)
	}
	var b strings.Builder
	rep.Summary(&b)
	for _, want := range []string{"2 scenarios", "bit-identical", "P=3"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, b.String())
		}
	}
}

// TestRunSuiteParallelExec covers Table 2's exec columns: with
// Partitions set, every workflow records a materialized wall clock and
// one per partition count, and the rendered table carries the columns.
func TestRunSuiteParallelExec(t *testing.T) {
	results, err := RunSuite(context.Background(), SuiteConfig{
		Seed:       5,
		Counts:     map[generator.Category]int{generator.Small: 1},
		ESBudget:   1500,
		HSBudget:   1500,
		Partitions: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.ExecSeconds <= 0 {
			t.Errorf("%s: no materialized exec time", r.Category)
		}
		for _, p := range []int{2, 4} {
			if r.ParExec[p] <= 0 {
				t.Errorf("%s: no parallel exec time at P=%d", r.Category, p)
			}
		}
	}
	t2 := Table2(results)
	for _, want := range []string{"exec s", "exec P=2 s", "exec P=4 s"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}
