package experiments

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/generator"
	"etlopt/internal/obs"
)

// smallSuite runs a reduced suite quickly: one workflow per category with
// tight budgets, verification on.
func smallSuite(t *testing.T) []WorkflowResult {
	t.Helper()
	results, err := RunSuite(context.Background(), SuiteConfig{
		Seed: 5,
		Counts: map[generator.Category]int{
			generator.Small:  2,
			generator.Medium: 1,
			generator.Large:  1,
		},
		ESBudget: 4000,
		HSBudget: 3000,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestRunSuiteShape(t *testing.T) {
	results := smallSuite(t)
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for _, r := range results {
		if !r.Verified {
			t.Errorf("%s workflow not verified", r.Category)
		}
		if r.Activities == 0 {
			t.Error("zero activities recorded")
		}
		// No algorithm may return a worse-than-initial state.
		for name, a := range map[string]AlgoRun{"ES": r.ES, "HS": r.HS, "HSG": r.HSG} {
			if a.Improvement < 0 {
				t.Errorf("%s %s: negative improvement %v", r.Category, name, a.Improvement)
			}
			if a.Visited < 0 || a.Seconds < 0 {
				t.Errorf("%s %s: nonsensical metrics %+v", r.Category, name, a)
			}
		}
		// HS must not lose to its greedy variant.
		if r.HS.BestCost > r.HSG.BestCost {
			t.Errorf("%s: HS cost %v worse than greedy %v", r.Category, r.HS.BestCost, r.HSG.BestCost)
		}
		// Every scenario executed its initial workflow, so drift is a
		// well-defined mean of |observed - modeled| selectivities.
		if r.SelDrift < 0 || r.SelDrift > 1.5 {
			t.Errorf("%s: implausible selectivity drift %v", r.Category, r.SelDrift)
		}
	}
}

func TestTableRendering(t *testing.T) {
	results := smallSuite(t)
	t1 := Table1(results)
	for _, want := range []string{"small", "medium", "large", "HS quality %", "HS-Greedy"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2(results)
	for _, want := range []string{"ES states", "HS impr %", "HSG time s", "sel drift", "small"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
	claims := Claims(results)
	for _, want := range []string{"faster than HS", "paper:"} {
		if !strings.Contains(claims, want) {
			t.Errorf("Claims missing %q:\n%s", want, claims)
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	cfg := SuiteConfig{
		Seed:     9,
		Counts:   map[generator.Category]int{generator.Small: 1},
		ESBudget: 1500,
		HSBudget: 1500,
	}
	a, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].ES.Visited != b[0].ES.Visited ||
		a[0].HS.BestCost != b[0].HS.BestCost ||
		a[0].HSG.BestCost != b[0].HSG.BestCost {
		t.Error("suite runs with the same seed diverge")
	}
}

// TestSuiteMetrics checks that a registry attached to the suite collects
// both the optimizer's and the executor's series, and that attaching it
// does not change any result.
func TestSuiteMetrics(t *testing.T) {
	cfg := SuiteConfig{
		Seed:     9,
		Counts:   map[generator.Category]int{generator.Small: 1},
		ESBudget: 1500,
		HSBudget: 1500,
	}
	plain, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	instr, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].ES.BestCost != instr[0].ES.BestCost ||
		plain[0].HS.Visited != instr[0].HS.Visited ||
		plain[0].SelDrift != instr[0].SelDrift {
		t.Error("attaching metrics changed suite results")
	}
	snap := reg.Snapshot()
	if v, ok := snap.CounterValue("search_states_visited_total"); !ok || v == 0 {
		t.Errorf("search_states_visited_total = %d, %v; want > 0", v, ok)
	}
	if v, ok := snap.CounterValue(`engine_runs_total{mode="materialized"}`); !ok || v != 1 {
		t.Errorf(`engine_runs_total{mode="materialized"} = %d, %v; want 1`, v, ok)
	}
}
