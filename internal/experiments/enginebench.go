package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/fault"
	"etlopt/internal/generator"
)

// EngineRun records one suite scenario's engine-mode wall clocks: the
// materialized baseline and the partition-parallel engine at each
// configured partition count, with every parallel run checked
// bit-identical to the materialized one before its timing is recorded.
type EngineRun struct {
	Category   string `json:"category"`
	Index      int    `json:"index"`
	Activities int    `json:"activities"`
	SourceRows int    `json:"source_rows"` // generated records per source
	TargetRows int    `json:"target_rows"` // total rows loaded across targets

	MaterializedSeconds float64 `json:"materialized_seconds"`
	// ParallelSeconds[i] is the wall clock at Partitions[i] of the report.
	ParallelSeconds []float64 `json:"parallel_seconds"`
}

// EngineReport is the JSON baseline etlbench -engine records
// (BENCH_engine.json): the whole-suite bit-identity check of the
// partition-parallel engine plus aggregate throughput per partition count.
type EngineReport struct {
	Seed       int64 `json:"seed"`
	DataRows   int   `json:"data_rows"`
	Partitions []int `json:"partitions"`
	// CPUs is the host's logical CPU count — the ceiling on wall-clock
	// speedup. On a single-CPU host every Speedup entry is expected to be
	// ~1 or below: partitions time-slice one core and only the overhead of
	// scatter, exchange and merge remains visible.
	CPUs int `json:"cpus"`

	// FaultSpec records the "seed:rate" chaos arming of the parallel
	// runs, empty when the benchmark ran clean.
	FaultSpec string `json:"fault_spec,omitempty"`

	Scenarios    int  `json:"scenarios"`
	AllIdentical bool `json:"all_identical"`

	// Rows loaded per wall-clock second, summed over every scenario.
	MaterializedRowsPerSec float64   `json:"materialized_rows_per_sec"`
	ParallelRowsPerSec     []float64 `json:"parallel_rows_per_sec"`
	// Speedup[i] = total materialized seconds / total parallel seconds at
	// Partitions[i].
	Speedup []float64 `json:"speedup"`

	Runs []EngineRun `json:"runs"`
}

// defaultPartitions are the counts EngineBench measures when the config
// leaves Partitions empty.
var defaultPartitions = []int{1, 2, 4, 8}

// EngineBench executes the full suite through the materialized engine and
// the partition-parallel engine at each partition count, requires every
// parallel run's targets to be bit-identical to the materialized run's —
// same rows, same order — and reports the wall clocks. Data volume is
// scaled up from the generator's category default (cfg.DataRows, default
// 8000 records per source) so the timings measure row processing rather
// than per-run setup.
func EngineBench(ctx context.Context, cfg SuiteConfig) (*EngineReport, error) {
	cfg = cfg.withDefaults()
	partitions := cfg.Partitions
	if len(partitions) == 0 {
		partitions = defaultPartitions
	}
	dataRows := cfg.DataRows
	if dataRows <= 0 {
		dataRows = 8000
	}
	var faultSeed int64
	var faultRate float64
	if cfg.FaultSpec != "" {
		var err error
		faultSeed, faultRate, err = fault.ParseSpec(cfg.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("engine bench: %w", err)
		}
	}
	rep := &EngineReport{
		Seed:         cfg.Seed,
		DataRows:     dataRows,
		Partitions:   partitions,
		CPUs:         runtime.NumCPU(),
		FaultSpec:    cfg.FaultSpec,
		AllIdentical: true,
	}
	var matSec float64
	parSec := make([]float64, len(partitions))
	var totalRows int
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		n := cfg.Counts[cat]
		if n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			// Mirror generator.Suite's seed schedule so the benchmark runs
			// the same workflows as the optimizer suite, just with more data.
			gcfg := generator.CategoryConfig(cat, cfg.Seed+int64(cat)*104729+int64(i)*7919)
			gcfg.DataRows = dataRows
			sc, err := generator.Generate(gcfg)
			if err != nil {
				return nil, fmt.Errorf("engine bench: generating %s workflow %d: %w", cat, i+1, err)
			}
			run := EngineRun{
				Category:   cat.String(),
				Index:      i + 1,
				Activities: len(sc.Graph.Activities()),
				SourceRows: dataRows,
			}
			mat, err := engine.New(sc.Bind(), engine.WithMetrics(cfg.Metrics)).Run(ctx, sc.Graph)
			if err != nil {
				return nil, fmt.Errorf("engine bench: %s workflow %d materialized: %w", cat, i+1, err)
			}
			run.MaterializedSeconds = mat.Elapsed.Seconds()
			for _, rows := range mat.Targets {
				run.TargetRows += len(rows)
			}
			for pi, p := range partitions {
				eopts := []engine.Option{
					engine.WithMode(engine.Parallel), engine.WithPartitions(p),
					engine.WithMetrics(cfg.Metrics),
				}
				if cfg.FaultSpec != "" {
					// A fresh plan per run keeps occurrence counters — and so
					// the injection schedule — independent across runs.
					eopts = append(eopts,
						engine.WithFaultPlan(fault.NewPlan(faultSeed, faultRate)),
						engine.WithRetry(fault.Policy{MaxAttempts: 8, Seed: faultSeed}))
				}
				par, err := engine.New(sc.Bind(), eopts...).Run(ctx, sc.Graph)
				if err != nil {
					return nil, fmt.Errorf("engine bench: %s workflow %d P=%d: %w", cat, i+1, p, err)
				}
				for _, name := range sortedTargetNames(mat.Targets) {
					if diff := rowsDiff(mat.Targets[name], par.Targets[name]); diff != "" {
						rep.AllIdentical = false
						return nil, fmt.Errorf(
							"engine bench: %s workflow %d P=%d: target %s not bit-identical to materialized: %s",
							cat, i+1, p, name, diff)
					}
				}
				run.ParallelSeconds = append(run.ParallelSeconds, par.Elapsed.Seconds())
				parSec[pi] += par.Elapsed.Seconds()
			}
			matSec += run.MaterializedSeconds
			totalRows += run.TargetRows
			rep.Runs = append(rep.Runs, run)
			rep.Scenarios++
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress,
					"%-6s #%02d  acts=%3d  rows=%6d  identical  mat %6.2fs  P=%v %v\n",
					cat, i+1, run.Activities, run.TargetRows, run.MaterializedSeconds,
					partitions, formatSeconds(run.ParallelSeconds))
			}
		}
	}
	if matSec > 0 {
		rep.MaterializedRowsPerSec = float64(totalRows) / matSec
	}
	for pi := range partitions {
		var rps, speedup float64
		if parSec[pi] > 0 {
			rps = float64(totalRows) / parSec[pi]
			speedup = matSec / parSec[pi]
		}
		rep.ParallelRowsPerSec = append(rep.ParallelRowsPerSec, rps)
		rep.Speedup = append(rep.Speedup, speedup)
	}
	return rep, nil
}

// sortedTargetNames returns a target map's names in sorted order, so the
// first reported mismatch is deterministic.
func sortedTargetNames(targets map[string]data.Rows) []string {
	names := make([]string, 0, len(targets))
	for name := range targets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// rowsDiff describes the first divergence between two row slices under
// bit-identity (order-sensitive), or "" when identical.
func rowsDiff(want, got data.Rows) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d vs %d rows", len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			return fmt.Sprintf("row %d: %s vs %s", i, got[i], want[i])
		}
	}
	return ""
}

func formatSeconds(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.2fs", x)
	}
	return out
}

// Summary renders the headline numbers of an engine report.
func (r *EngineReport) Summary(w io.Writer) {
	fmt.Fprintf(w, "engine baseline: %d scenarios × %d rows/source, partitions %v, %d CPUs\n",
		r.Scenarios, r.DataRows, r.Partitions, r.CPUs)
	fmt.Fprintf(w, "  all parallel runs bit-identical to materialized: %v\n", r.AllIdentical)
	fmt.Fprintf(w, "  materialized: %.0f rows/s\n", r.MaterializedRowsPerSec)
	for i, p := range r.Partitions {
		fmt.Fprintf(w, "  parallel P=%d: %.0f rows/s   speedup ×%.2f vs materialized\n",
			p, r.ParallelRowsPerSec[i], r.Speedup[i])
	}
}
