package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"etlopt/internal/engine"
	"etlopt/internal/generator"
	"etlopt/internal/share"
)

// SharedConfig parameterizes the shared-work suite baseline.
type SharedConfig struct {
	// Seed drives workflow generation; equal configs measure equal suites.
	Seed int64
	// Counts is how many shared-prefix suites to run per category.
	Counts map[generator.Category]int
	// SuiteSize is the number of workflows per suite (default 3).
	SuiteSize int
	// DataRows scales the generated records per source (default 4000).
	DataRows int
	// CacheBytes is the suite scheduler's cache budget (default unbounded).
	CacheBytes int64
	// Workers bounds suite concurrency (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives a per-suite progress line.
	Progress io.Writer
}

// SharedRun records one suite's measurements: every member executed
// independently, then the same members as one RunSuite job, with each
// member's targets and NodeRows required bit-identical between the two.
type SharedRun struct {
	Category  string `json:"category"`
	Index     int    `json:"index"`
	Workflows int    `json:"workflows"`

	// IndependentSeconds sums the members' individual engine runs;
	// SharedSeconds is the wall clock of the whole RunSuite job (stages
	// and residual runs, under the configured concurrency).
	IndependentSeconds float64 `json:"independent_seconds"`
	SharedSeconds      float64 `json:"shared_seconds"`

	NodesIndependent int64 `json:"nodes_independent"`
	NodesExecuted    int64 `json:"nodes_executed"`
	SharedStages     int   `json:"shared_stages"`
	TargetRows       int   `json:"target_rows"`
	SavedBytes       int64 `json:"saved_bytes"`
}

// SharedReport is the JSON baseline etlbench -shared records
// (BENCH_shared.json): the bit-identity check of suite execution against
// independent runs, plus what sharing saved in nodes, bytes and wall
// clock.
type SharedReport struct {
	Seed       int64 `json:"seed"`
	DataRows   int   `json:"data_rows"`
	SuiteSize  int   `json:"suite_size"`
	CacheBytes int64 `json:"cache_bytes"`
	// CPUs is the host's logical CPU count — the ceiling on wall-clock
	// speedup from suite concurrency; the node and byte savings are
	// machine-independent.
	CPUs int `json:"cpus"`

	Suites       int  `json:"suites"`
	AllIdentical bool `json:"all_identical"`

	// NodesIndependent is what independent runs executed across every
	// suite; NodesExecuted is what the shared scheduler ran. Their gap is
	// the recomputation sharing eliminated — a deterministic measure,
	// unlike the wall clocks.
	NodesIndependent int64 `json:"nodes_independent"`
	NodesExecuted    int64 `json:"nodes_executed"`
	// RecomputationSavedBytes totals the cache's hit bytes: intermediate
	// result bytes served from the cache instead of recomputed.
	RecomputationSavedBytes int64 `json:"recomputation_saved_bytes"`

	IndependentRowsPerSec float64 `json:"independent_rows_per_sec"`
	SharedRowsPerSec      float64 `json:"shared_rows_per_sec"`
	// SharedSpeedup = total independent seconds / total shared seconds.
	SharedSpeedup float64 `json:"shared_speedup"`

	Runs []SharedRun `json:"runs"`
}

// SharedBench measures the shared-work suite scheduler against independent
// per-workflow execution. Every suite member must come out of RunSuite
// with targets and NodeRows bit-identical to its own engine run; a
// divergence fails the benchmark rather than discounting the timing.
func SharedBench(ctx context.Context, cfg SharedConfig) (*SharedReport, error) {
	size := cfg.SuiteSize
	if size <= 0 {
		size = 3
	}
	dataRows := cfg.DataRows
	if dataRows <= 0 {
		dataRows = 4000
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = -1
	}
	rep := &SharedReport{
		Seed: cfg.Seed, DataRows: dataRows, SuiteSize: size,
		CacheBytes: cacheBytes, CPUs: runtime.NumCPU(), AllIdentical: true,
	}
	var indepSec, sharedSec float64
	var totalRows int
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		for s := 0; s < cfg.Counts[cat]; s++ {
			// Mirror generator.SharedSuite's seed schedule with scaled-up
			// data: members share PrefixSeed (and so sources, data and
			// branch pipelines) and diverge post-union by Seed.
			baseSeed := cfg.Seed + int64(cat)*104729 + int64(s)*7919
			wfs := make([]share.Workflow, 0, size)
			solos := make([]*engine.RunResult, 0, size)
			run := SharedRun{Category: cat.String(), Index: s + 1, Workflows: size}
			for i := 0; i < size; i++ {
				gcfg := generator.CategoryConfig(cat, baseSeed+int64(i+1)*7919)
				gcfg.PrefixSeed = baseSeed + int64(cat)*104729 + 1
				gcfg.DataRows = dataRows
				sc, err := generator.Generate(gcfg)
				if err != nil {
					return nil, fmt.Errorf("shared bench: %s suite %d workflow %d: %w", cat, s+1, i+1, err)
				}
				solo, err := engine.New(sc.Bind()).Run(ctx, sc.Graph)
				if err != nil {
					return nil, fmt.Errorf("shared bench: %s suite %d workflow %d solo: %w", cat, s+1, i+1, err)
				}
				run.IndependentSeconds += solo.Elapsed.Seconds()
				for _, rows := range solo.Targets {
					run.TargetRows += len(rows)
				}
				solos = append(solos, solo)
				wfs = append(wfs, share.Workflow{
					Name:     fmt.Sprintf("%s-%02d-%02d", cat, s+1, i+1),
					Graph:    sc.Graph,
					Bindings: sc.Bind(),
				})
			}

			start := time.Now()
			res, err := share.RunSuite(ctx, wfs, share.Options{
				Workers: cfg.Workers, CacheBytes: cacheBytes,
			})
			if err != nil {
				return nil, fmt.Errorf("shared bench: %s suite %d: %w", cat, s+1, err)
			}
			run.SharedSeconds = time.Since(start).Seconds()
			for i, wr := range res.Workflows {
				if wr.Err != nil {
					return nil, fmt.Errorf("shared bench: %s: %w", wr.Name, wr.Err)
				}
				for _, name := range sortedTargetNames(solos[i].Targets) {
					if diff := rowsDiff(solos[i].Targets[name], wr.Result.Targets[name]); diff != "" {
						rep.AllIdentical = false
						return nil, fmt.Errorf(
							"shared bench: %s: target %s not bit-identical to independent run: %s",
							wr.Name, name, diff)
					}
				}
				if !reflect.DeepEqual(solos[i].NodeRows, wr.Result.NodeRows) {
					rep.AllIdentical = false
					return nil, fmt.Errorf("shared bench: %s: NodeRows differ from independent run", wr.Name)
				}
			}
			st := res.Stats
			run.NodesIndependent = st.NodesIndependent
			run.NodesExecuted = st.NodesExecuted
			run.SharedStages = st.Stages
			run.SavedBytes = st.Cache.HitBytes

			indepSec += run.IndependentSeconds
			sharedSec += run.SharedSeconds
			totalRows += run.TargetRows
			rep.NodesIndependent += st.NodesIndependent
			rep.NodesExecuted += st.NodesExecuted
			rep.RecomputationSavedBytes += st.Cache.HitBytes
			rep.Runs = append(rep.Runs, run)
			rep.Suites++
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress,
					"%-6s suite #%02d  %d workflows  identical  indep %6.2fs  shared %6.2fs  nodes %d->%d  saved %dB\n",
					cat, s+1, size, run.IndependentSeconds, run.SharedSeconds,
					run.NodesIndependent, run.NodesExecuted, run.SavedBytes)
			}
		}
	}
	if indepSec > 0 {
		rep.IndependentRowsPerSec = float64(totalRows) / indepSec
	}
	if sharedSec > 0 {
		rep.SharedRowsPerSec = float64(totalRows) / sharedSec
		rep.SharedSpeedup = indepSec / sharedSec
	}
	return rep, nil
}

// Summary renders the headline numbers of a shared-work report.
func (r *SharedReport) Summary(w io.Writer) {
	fmt.Fprintf(w, "shared-work baseline: %d suites × %d workflows × %d rows/source, cache budget %d, %d CPUs\n",
		r.Suites, r.SuiteSize, r.DataRows, r.CacheBytes, r.CPUs)
	fmt.Fprintf(w, "  all suite runs bit-identical to independent runs: %v\n", r.AllIdentical)
	fmt.Fprintf(w, "  nodes executed: %d of %d independent (%d saved)\n",
		r.NodesExecuted, r.NodesIndependent, r.NodesIndependent-r.NodesExecuted)
	fmt.Fprintf(w, "  recomputation saved: %d bytes served from the shared cache\n", r.RecomputationSavedBytes)
	fmt.Fprintf(w, "  independent: %.0f rows/s   shared: %.0f rows/s   speedup ×%.2f\n",
		r.IndependentRowsPerSec, r.SharedRowsPerSec, r.SharedSpeedup)
}
