package cost

import (
	"math"
	"testing"

	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func TestPhysicalModelHashVsSort(t *testing.T) {
	m := PhysicalModel{CPUWeight: 1, IOWeight: 4, MemoryRows: 1000}
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "T", 0.3)
	// Fits in memory: hash aggregation at linear cost.
	if got := m.ActivityCost(agg, []float64{500}); got != 500 {
		t.Errorf("in-memory aggregation cost = %v, want 500", got)
	}
	// Spills: sort cost plus write+read of the overflow.
	n := 4000.0
	want := n*math.Log2(n) + 2*4*(n-1000)
	if got := m.ActivityCost(agg, []float64{n}); math.Abs(got-want) > 1e-9 {
		t.Errorf("spilling aggregation cost = %v, want %v", got, want)
	}
}

func TestPhysicalModelJoinChoice(t *testing.T) {
	m := PhysicalModel{CPUWeight: 1, IOWeight: 4, MemoryRows: 1000}
	j := templates.Join(0.001, "K")
	// Small build side → hash join, linear in both inputs.
	if got := m.ActivityCost(j, []float64{100_000, 500}); got != 100_500 {
		t.Errorf("hash join cost = %v, want 100500", got)
	}
	// Neither side fits → sort-merge with spills, much dearer.
	big := m.ActivityCost(j, []float64{100_000, 50_000})
	if big <= 150_000 {
		t.Errorf("sort-merge join suspiciously cheap: %v", got2str(big))
	}
}

func got2str(v float64) float64 { return v }

func TestPhysicalModelCachedLookups(t *testing.T) {
	m := DefaultPhysicalModel()
	sk := templates.SurrogateKey("K", "SK", "L")
	if got := m.ActivityCost(sk, []float64{10_000}); got != 10_000 {
		t.Errorf("cached SK should cost linear CPU: %v", got)
	}
	pk := templates.PKCheckAgainst("DW", 0.9, "K")
	if got := m.ActivityCost(pk, []float64{10_000}); got != 10_000 {
		t.Errorf("lookup-based PK should cost linear CPU: %v", got)
	}
	grp := templates.PKCheck(0.9, "K")
	if got := m.ActivityCost(grp, []float64{200_000}); got <= 200_000 {
		t.Errorf("spilling group-based PK should exceed linear: %v", got)
	}
}

func TestPhysicalModelZeroValueDefaults(t *testing.T) {
	var m PhysicalModel
	f := templates.Threshold("V", 1, 0.5)
	if got := m.ActivityCost(f, []float64{100}); got != 100 {
		t.Errorf("zero-value model should default CPUWeight=1: %v", got)
	}
}

func TestEvaluateWithIO(t *testing.T) {
	g := templates.Fig1Workflow()
	m := DefaultPhysicalModel()
	activity, io, err := EvaluateWithIO(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if activity <= 0 || io <= 0 {
		t.Fatalf("activity=%v io=%v", activity, io)
	}
	// Sources hold 1000+3000 rows; targets receive what survives. The IO
	// charge must cover at least the source scans.
	if io < m.RecordsetIO(4000) {
		t.Errorf("io %v below the source scan charge %v", io, m.RecordsetIO(4000))
	}
}

func TestPhysicalModelDrivesOptimizer(t *testing.T) {
	// The same search runs under the physical model: the optimizer must
	// still never worsen the state and the evaluation must be finite.
	g := templates.Fig1Workflow()
	c0, err := Evaluate(g, DefaultPhysicalModel())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(c0.Total) || math.IsInf(c0.Total, 0) {
		t.Fatalf("physical cost = %v", c0.Total)
	}
}

func TestPhysicalModelMergedComposition(t *testing.T) {
	m := PhysicalModel{CPUWeight: 1, IOWeight: 4, MemoryRows: 1_000_000}
	sigma := templates.Threshold("V", 1, 0.5)
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "T", 0.3)
	merged := &workflow.Activity{
		Sem: workflow.Semantics{Op: workflow.OpMerged, Components: []*workflow.Activity{sigma, agg}},
		Sel: 0.15,
	}
	// σ(1000) + hash-γ(500) = 1500.
	if got := m.ActivityCost(merged, []float64{1000}); got != 1500 {
		t.Errorf("merged physical cost = %v, want 1500", got)
	}
	if got := m.OutputRows(merged, []float64{1000}); got != 150 {
		t.Errorf("merged out = %v, want 150", got)
	}
}
