package cost

import (
	"math"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestFig4CostCases(t *testing.T) {
	// Fig. 4: two branches of n=8 rows; σ selectivity 50%; cost(SK) =
	// n·log₂n, cost(σ) = n. The paper's arithmetic (which ignores the cost
	// of U) gives c1=56, c2=32, c3=24. RowModel additionally charges the
	// union its input rows; subtracting that charge must reproduce the
	// paper's numbers exactly, and the full model must preserve the
	// figure's conclusion: both DIS and FAC beat the original.
	const n = 8.0
	costs := map[templates.Fig4Case]float64{}
	unionCharge := map[templates.Fig4Case]float64{}
	for _, c := range []templates.Fig4Case{templates.Fig4Original, templates.Fig4Distributed, templates.Fig4Factorized} {
		g := templates.Fig4Workflow(c, n)
		costing, err := Evaluate(g, RowModel{})
		if err != nil {
			t.Fatal(err)
		}
		costs[c] = costing.Total
		for _, id := range g.Activities() {
			if g.Node(id).Act.Sem.Op == workflow.OpUnion {
				unionCharge[c] = costing.Costs[id]
			}
		}
	}
	paper := map[templates.Fig4Case]float64{
		templates.Fig4Original:    56, // 2·8·log₂8 + 8 — matches the paper's c1
		templates.Fig4Distributed: 32, // 2·(8 + 4·log₂4) — matches the paper's c2
		// The single factorized SK processes the union's 8 surviving rows,
		// costing 8·log₂8 = 24, for 2·8 + 24 = 40. The paper's c3 formula
		// prices that SK at (n/2)·log₂(n/2) = 8 (treating each branch's
		// half as if processed alone), giving 24 — see
		// TestFig4PaperFormulas for the literal arithmetic. Either way the
		// figure's conclusion holds: FAC beats the original.
		templates.Fig4Factorized: 40,
	}
	for c, want := range paper {
		if got := costs[c] - unionCharge[c]; !almostEqual(got, want) {
			t.Errorf("case %v: cost without union charge = %v, want %v", c, got, want)
		}
	}
	if !(costs[templates.Fig4Distributed] < costs[templates.Fig4Original]) {
		t.Error("DIS should reduce the state cost (Fig. 4 case 2)")
	}
	if !(costs[templates.Fig4Factorized] < costs[templates.Fig4Original]) {
		t.Error("FAC should reduce the state cost (Fig. 4 case 3)")
	}
}

func TestFig4PaperFormulas(t *testing.T) {
	// The paper's literal arithmetic: c1 = 2n·log₂n + n = 56,
	// c2 = 2(n + (n/2)·log₂(n/2)) = 32, c3 = 2n + (n/2)·log₂(n/2) = 24.
	n := 8.0
	c1 := 2*n*math.Log2(n) + n
	c2 := 2 * (n + (n/2)*math.Log2(n/2))
	c3 := 2*n + (n/2)*math.Log2(n/2)
	if !almostEqual(c1, 56) || !almostEqual(c2, 32) || !almostEqual(c3, 24) {
		t.Errorf("paper formulas give %v, %v, %v; want 56, 32, 24", c1, c2, c3)
	}
}

func TestRowModelFormulas(t *testing.T) {
	m := RowModel{}
	in := []float64{1000}
	cases := []struct {
		act  *workflow.Activity
		cost float64
		out  float64
	}{
		{templates.Threshold("V", 1, 0.5), 1000, 500},
		{templates.NotNull(0.9, "V"), 1000, 900},
		{templates.ProjectOut("X"), 1000, 1000},
		{templates.Reformat("a2edate", "D"), 1000, 1000},
		{templates.PKCheck(0.8, "K"), 1000 * math.Log2(1000), 800},
		{templates.Distinct(0.7), 1000 * math.Log2(1000), 700},
		{templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "T", 0.3), 1000 * math.Log2(1000), 300},
		{templates.SurrogateKey("K", "SK", "L"), 1000 * math.Log2(1000), 1000},
	}
	for _, c := range cases {
		if got := m.ActivityCost(c.act, in); !almostEqual(got, c.cost) {
			t.Errorf("%s cost = %v, want %v", c.act.Name, got, c.cost)
		}
		if got := m.OutputRows(c.act, in); !almostEqual(got, c.out) {
			t.Errorf("%s out = %v, want %v", c.act.Name, got, c.out)
		}
	}
}

func TestRowModelBinaries(t *testing.T) {
	m := RowModel{}
	in := []float64{100, 200}
	u := templates.Union()
	if got := m.ActivityCost(u, in); !almostEqual(got, 300) {
		t.Errorf("union cost = %v", got)
	}
	if got := m.OutputRows(u, in); !almostEqual(got, 300) {
		t.Errorf("union out = %v", got)
	}
	j := templates.Join(0.01, "K")
	wantCost := 100*math.Log2(100) + 200*math.Log2(200)
	if got := m.ActivityCost(j, in); !almostEqual(got, wantCost) {
		t.Errorf("join cost = %v, want %v", got, wantCost)
	}
	if got := m.OutputRows(j, in); !almostEqual(got, 0.01*100*200) {
		t.Errorf("join out = %v", got)
	}
	d := templates.Diff(0.5, "K")
	if got := m.OutputRows(d, in); !almostEqual(got, 50) {
		t.Errorf("diff out = %v", got)
	}
}

func TestRowModelTinyInputs(t *testing.T) {
	m := RowModel{}
	sk := templates.SurrogateKey("K", "SK", "L")
	if got := m.ActivityCost(sk, []float64{1}); got != 0 {
		t.Errorf("n·log₂n at n=1 should be 0, got %v", got)
	}
	if got := m.ActivityCost(sk, []float64{0}); got != 0 {
		t.Errorf("n·log₂n at n=0 should be 0, got %v", got)
	}
}

func TestRowModelMergedComposition(t *testing.T) {
	// A merged σ;SK package costs σ(n) + SK(sel·n).
	sigma := templates.Threshold("V", 1, 0.5)
	sk := templates.SurrogateKey("K", "SK", "L")
	merged := &workflow.Activity{
		Sem: workflow.Semantics{Op: workflow.OpMerged, Components: []*workflow.Activity{sigma, sk}},
		Sel: 0.5,
	}
	m := RowModel{}
	want := 1000 + 500*math.Log2(500)
	if got := m.ActivityCost(merged, []float64{1000}); !almostEqual(got, want) {
		t.Errorf("merged cost = %v, want %v", got, want)
	}
	if got := m.OutputRows(merged, []float64{1000}); !almostEqual(got, 500) {
		t.Errorf("merged out = %v", got)
	}
}

func TestEvaluateFig1(t *testing.T) {
	g := templates.Fig1Workflow()
	c, err := Evaluate(g, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total <= 0 {
		t.Fatalf("total = %v", c.Total)
	}
	// Source cardinalities propagate: PARTS1 has 1000, PARTS2 has 3000.
	sums := 0.0
	for _, id := range g.Sources() {
		sums += c.Cards[id]
	}
	if !almostEqual(sums, 4000) {
		t.Errorf("source cards = %v", sums)
	}
	// The total is the sum of per-activity costs.
	var total float64
	for _, v := range c.Costs {
		total += v
	}
	if !almostEqual(total, c.Total) {
		t.Errorf("Total %v != Σcosts %v", c.Total, total)
	}
}

func TestEvaluateIncrementalMatchesFull(t *testing.T) {
	// Swap two activities of Fig. 1's branch 2 and compare incremental
	// against full costing.
	g := templates.Fig1Workflow()
	base, err := Evaluate(g, RowModel{})
	if err != nil {
		t.Fatal(err)
	}

	// Manually swap A2E (5) and γ (6) on a clone.
	var a2e, agg workflow.NodeID
	for _, id := range g.Activities() {
		switch g.Node(id).Act.Sem.Op {
		case workflow.OpFunc:
			if g.Node(id).Act.InPlace() {
				a2e = id
			}
		case workflow.OpAggregate:
			agg = id
		}
	}
	c := g.Clone()
	p := c.Providers(a2e)[0]
	consumer := c.Consumers(agg)[0]
	c.MustReplaceProvider(consumer, agg, a2e)
	c.MustReplaceProvider(a2e, p, agg)
	c.MustReplaceProvider(agg, a2e, p)
	if _, err := c.RegenerateSchemataIncremental([]workflow.NodeID{a2e, agg}); err != nil {
		t.Fatal(err)
	}

	full, err := Evaluate(c, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := EvaluateIncremental(base, c, RowModel{}, []workflow.NodeID{a2e, agg})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(full.Total, inc.Total) {
		t.Errorf("incremental total %v != full total %v", inc.Total, full.Total)
	}
	for id := range full.Costs {
		if !almostEqual(full.Costs[id], inc.Costs[id]) {
			t.Errorf("node %d: incremental cost %v != full %v", id, inc.Costs[id], full.Costs[id])
		}
		if !almostEqual(full.Cards[id], inc.Cards[id]) {
			t.Errorf("node %d: incremental card %v != full %v", id, inc.Cards[id], full.Cards[id])
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(200, 50); !almostEqual(got, 75) {
		t.Errorf("Improvement(200,50) = %v", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Errorf("Improvement(0,·) = %v", got)
	}
	if got := Improvement(100, 120); !almostEqual(got, -20) {
		t.Errorf("negative improvement = %v", got)
	}
}

func TestCostingClone(t *testing.T) {
	g := templates.Fig1Workflow()
	c, err := Evaluate(g, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	for id := range c.Costs {
		cl.Costs[id] += 42
	}
	for id := range c.Costs {
		if c.Costs[id] == cl.Costs[id] {
			t.Fatal("Clone shares cost storage")
		}
		break
	}
}

func TestSwapChangesTotalCost(t *testing.T) {
	// Ordering by selectivity matters: σ(sel .2) before σ(sel .8) is
	// cheaper than the reverse under the row model.
	build := func(first, second *workflow.Activity) float64 {
		g := workflow.NewGraph()
		src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"A", "B"}, Rows: 1000, IsSource: true})
		f := g.AddActivity(first)
		s := g.AddActivity(second)
		tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"A", "B"}, IsTarget: true})
		g.MustAddEdge(src, f)
		g.MustAddEdge(f, s)
		g.MustAddEdge(s, tgt)
		if err := g.RegenerateSchemata(); err != nil {
			t.Fatal(err)
		}
		c, err := Evaluate(g, RowModel{})
		if err != nil {
			t.Fatal(err)
		}
		return c.Total
	}
	selective := templates.Threshold("A", 1, 0.2)
	loose := templates.Threshold("B", 1, 0.8)
	cheap := build(selective, loose)
	dear := build(loose, selective)
	if cheap >= dear {
		t.Errorf("selective-first should be cheaper: %v vs %v", cheap, dear)
	}
}
