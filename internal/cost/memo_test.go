package cost

import (
	"sync"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// countingModel wraps RowModel and counts base evaluations, so tests can
// observe exactly when the memo short-circuits.
type countingModel struct {
	mu    sync.Mutex
	calls int
	base  RowModel
}

func (m *countingModel) ActivityCost(a *workflow.Activity, in []float64) float64 {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return m.base.ActivityCost(a, in)
}

func (m *countingModel) OutputRows(a *workflow.Activity, in []float64) float64 {
	return m.base.OutputRows(a, in)
}

func testActivity() *workflow.Activity {
	return &workflow.Activity{
		Name: "σ(A)",
		Sem:  workflow.Semantics{Op: workflow.OpNotNull, Attrs: []string{"A"}},
		Fun:  data.Schema{"A"},
		Sel:  0.5,
	}
}

func TestMemoHitsOnRepeatedPricing(t *testing.T) {
	base := &countingModel{}
	m := NewMemo(base)
	a := testActivity()
	in := []float64{1000}

	c1 := m.ActivityCost(a, in)
	r1 := m.OutputRows(a, in) // same key: served from the memo entry
	if base.calls != 1 {
		t.Fatalf("base evaluated %d times for one key, want 1", base.calls)
	}
	c2 := m.ActivityCost(a, in)
	r2 := m.OutputRows(a, in)
	if base.calls != 1 {
		t.Fatalf("repeat pricing re-evaluated the base model (%d calls)", base.calls)
	}
	if c1 != c2 || r1 != r2 {
		t.Fatalf("memo changed values: cost %v->%v rows %v->%v", c1, c2, r1, r2)
	}
	if hits, misses := m.Stats(); hits == 0 || misses != 1 {
		t.Fatalf("Stats() = %d hits, %d misses; want >0 hits, 1 miss", hits, misses)
	}

	// A different input cardinality is a different key.
	m.ActivityCost(a, []float64{2000})
	if base.calls != 2 {
		t.Fatalf("new cardinality did not re-evaluate (%d calls)", base.calls)
	}
	// A cloned activity is a different pointer, hence a different key —
	// exactly the COW convention: rewritten activities are fresh clones.
	m.ActivityCost(a.Clone(), in)
	if base.calls != 3 {
		t.Fatalf("cloned activity did not re-evaluate (%d calls)", base.calls)
	}
}

func TestMemoMatchesBaseOnGraph(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"A"}, Rows: 5000, IsSource: true})
	a1 := g.AddActivity(testActivity())
	a2 := g.AddActivity(testActivity())
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(src, a1)
	g.MustAddEdge(a1, a2)
	g.MustAddEdge(a2, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}

	plain, err := Evaluate(g, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo(RowModel{})
	memoed, err := Evaluate(g, memo)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Total != memoed.Total {
		t.Fatalf("memoized total %v != plain total %v", memoed.Total, plain.Total)
	}
	for id, want := range plain.Costs {
		if got := memoed.Costs[id]; got != want {
			t.Fatalf("node %d: memoized cost %v != plain %v", id, got, want)
		}
	}
	// Re-evaluating the same graph must be pure hits.
	_, before := memo.Stats()
	if _, err := Evaluate(g, memo); err != nil {
		t.Fatal(err)
	}
	if _, after := memo.Stats(); after != before {
		t.Fatalf("re-evaluation missed the memo (%d -> %d misses)", before, after)
	}
}

func TestNewMemoDoesNotStack(t *testing.T) {
	m := NewMemo(RowModel{})
	if NewMemo(m) != m {
		t.Fatal("NewMemo wrapped an existing *Memo")
	}
}

func TestMemoUnkeyableArity(t *testing.T) {
	base := &countingModel{}
	m := NewMemo(base)
	a := testActivity()
	in := []float64{1, 2, 3} // three inputs: no key, always evaluates
	m.ActivityCost(a, in)
	m.ActivityCost(a, in)
	if base.calls != 2 {
		t.Fatalf("unkeyable arity was memoized (%d calls)", base.calls)
	}
}

func TestMemoConcurrentUse(t *testing.T) {
	m := NewMemo(RowModel{})
	a := testActivity()
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last float64
			for i := 0; i < 500; i++ {
				last = m.ActivityCost(a, []float64{float64(1000 + i%7)})
			}
			results[w] = last
		}(w)
	}
	wg.Wait()
	for w := 1; w < 16; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d priced %v, worker 0 priced %v", w, results[w], results[0])
		}
	}
}
