package cost

import (
	"math"
	"sync"
	"sync/atomic"

	"etlopt/internal/workflow"
)

// memoKey identifies one activity pricing: the activity instance and the
// fingerprint of its input cardinalities. Copy-on-write successor
// construction shares untouched *Activity values across the states of a
// search, so the pointer doubles as a cheap, collision-free identity for
// "same activity, same parameters" — a rewritten activity is always a
// fresh Clone and therefore a fresh key. Cardinalities are keyed by their
// exact bit patterns: a memo hit returns bit-identical numbers, keeping
// memoized search results indistinguishable from unmemoized ones.
type memoKey struct {
	act    *workflow.Activity
	n      int
	c0, c1 uint64
}

type memoEntry struct {
	cost, rows float64
}

// memoShards keeps lock contention negligible when search workers price
// successors concurrently.
const memoShards = 16

// memoShardCap bounds each shard; a full shard stops admitting (the
// pointer-keyed population is naturally bounded by the distinct activities
// × cardinality contexts of one search, so eviction buys nothing).
const memoShardCap = 4096

// Memo wraps a cost Model with a concurrency-safe per-activity cache:
// pricing an activity twice on the same input cardinalities hits the
// cache. It exploits the fact that Models are stateless and deterministic
// (the Model contract) and that the search's COW states share activity
// pointers, so repeated evaluations of the untouched parts of sibling
// states collapse into lookups.
//
// Memo itself satisfies Model and is safe for concurrent use.
type Memo struct {
	base   Model
	shards [memoShards]struct {
		mu sync.Mutex
		m  map[memoKey]memoEntry
	}
	hits, misses atomic.Int64
}

// NewMemo wraps base in a Memo. Wrapping an existing *Memo returns it
// unchanged, so layered callers cannot stack caches by accident.
func NewMemo(base Model) *Memo {
	if m, ok := base.(*Memo); ok {
		return m
	}
	mm := &Memo{base: base}
	for i := range mm.shards {
		mm.shards[i].m = make(map[memoKey]memoEntry)
	}
	return mm
}

// key builds the memo key, reporting ok=false for arities the key cannot
// represent (no activity in this codebase has more than two inputs, but a
// custom graph could).
func key(a *workflow.Activity, in []float64) (memoKey, bool) {
	k := memoKey{act: a, n: len(in)}
	switch len(in) {
	case 1:
		k.c0 = math.Float64bits(in[0])
	case 2:
		k.c0 = math.Float64bits(in[0])
		k.c1 = math.Float64bits(in[1])
	default:
		return k, false
	}
	return k, true
}

// shardOf mixes the cardinality bits into a shard index (splitmix64
// finalizer) so one hot activity spreads across shards as its input
// cardinality varies.
func shardOf(k memoKey) int {
	x := k.c0 ^ (k.c1 << 1) ^ uint64(k.n)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % memoShards)
}

// entry returns the memoized pricing of a on in, computing and admitting
// it on a miss.
func (m *Memo) entry(a *workflow.Activity, in []float64) memoEntry {
	k, ok := key(a, in)
	if !ok {
		return memoEntry{cost: m.base.ActivityCost(a, in), rows: m.base.OutputRows(a, in)}
	}
	s := &m.shards[shardOf(k)]
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.mu.Unlock()
		m.hits.Add(1)
		return e
	}
	s.mu.Unlock()
	m.misses.Add(1)
	e := memoEntry{cost: m.base.ActivityCost(a, in), rows: m.base.OutputRows(a, in)}
	s.mu.Lock()
	if len(s.m) < memoShardCap {
		s.m[k] = e
	}
	s.mu.Unlock()
	return e
}

// ActivityCost implements Model.
func (m *Memo) ActivityCost(a *workflow.Activity, in []float64) float64 {
	return m.entry(a, in).cost
}

// OutputRows implements Model.
func (m *Memo) OutputRows(a *workflow.Activity, in []float64) float64 {
	return m.entry(a, in).rows
}

// Stats returns the cumulative hit and miss counts. Counts are advisory
// (concurrent misses on one key may each count a miss) and feed the
// expand_cost_memo_* observability series, which is deliberately outside
// the worker-invariant search_* namespace.
func (m *Memo) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}
