package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"etlopt/internal/workflow"
)

// The optimizer is only as good as its selectivity estimates (§2.2 assigns
// them per activity). This file closes the loop with execution: compare a
// state's estimated cardinalities against the row counts an actual run
// observed, and calibrate the activities' selectivities from those
// observations so a re-optimization works with measured reality.

// Estimate compares per-node estimated and observed cardinalities.
type Estimate struct {
	Node      workflow.NodeID
	Label     string
	Estimated float64
	Actual    int
}

// Explain evaluates the workflow under the model and pairs each node's
// estimated output cardinality with the observed row count of an executed
// run (engine.RunResult.NodeRows). Nodes are returned in topological
// order.
func Explain(g *workflow.Graph, m Model, nodeRows map[workflow.NodeID]int) ([]Estimate, error) {
	c, err := Evaluate(g, m)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make([]Estimate, 0, len(order))
	for _, id := range order {
		out = append(out, Estimate{
			Node:      id,
			Label:     g.Node(id).Label(),
			Estimated: c.Cards[id],
			Actual:    nodeRows[id],
		})
	}
	return out, nil
}

// FormatExplain renders an Explain result as an aligned table with a
// relative-error column.
func FormatExplain(estimates []Estimate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-35s %12s %12s %8s\n", "node", "label", "estimated", "actual", "err")
	for _, e := range estimates {
		errStr := "-"
		if e.Actual > 0 {
			errStr = fmt.Sprintf("%+.0f%%", 100*(e.Estimated-float64(e.Actual))/float64(e.Actual))
		}
		fmt.Fprintf(&b, "%4d  %-35s %12.0f %12d %8s\n", e.Node, e.Label, e.Estimated, e.Actual, errStr)
	}
	return b.String()
}

// Calibrate returns a copy of the workflow whose activity selectivities —
// and source cardinality hints — are set from the observed row counts of
// an executed run. Unary activities take actual-out / actual-in; joins
// take actual-out / (actual-in₁ × actual-in₂); differences and
// intersections actual-out / actual-in₁. Activities whose input was empty
// keep their declared estimate (no evidence). Re-optimizing the calibrated
// workflow searches with measured reality instead of design-time guesses.
func Calibrate(g *workflow.Graph, nodeRows map[workflow.NodeID]int) (*workflow.Graph, error) {
	c := g.Clone()
	for _, id := range c.Nodes() {
		n := c.Node(id)
		if n.Kind == workflow.KindRecordset {
			if len(c.Providers(id)) == 0 {
				if rows, ok := nodeRows[id]; ok && rows > 0 {
					ref := n.RS.Clone()
					ref.Rows = float64(rows)
					n.RS = ref
				}
			}
			continue
		}
		out, ok := nodeRows[id]
		if !ok {
			continue
		}
		preds := c.Providers(id)
		in := make([]float64, len(preds))
		evidence := true
		for i, p := range preds {
			rows, ok := nodeRows[p]
			if !ok || rows == 0 {
				evidence = false
				break
			}
			in[i] = float64(rows)
		}
		if !evidence {
			continue
		}
		var sel float64
		switch n.Act.Sem.Op {
		case workflow.OpUnion:
			continue // no selectivity
		case workflow.OpJoin:
			sel = float64(out) / (in[0] * in[1])
		case workflow.OpDiff, workflow.OpIntersect:
			sel = float64(out) / in[0]
		default:
			sel = float64(out) / in[0]
		}
		if sel <= 0 {
			// A fully-filtering activity: keep a tiny positive estimate so
			// cost formulas stay well-behaved.
			sel = 1e-6
		}
		if sel > 1 && !n.Act.IsBinary() {
			return nil, fmt.Errorf("cost: activity %d (%s) observed selectivity %g > 1; row counts inconsistent",
				id, n.Label(), sel)
		}
		calibrated := n.Act.Clone()
		calibrated.Sel = sel
		n.Act = calibrated
	}
	return c, nil
}

// WorstEstimates returns the k nodes with the largest relative cardinality
// estimation error — where the design-time selectivities mislead the
// optimizer the most.
func WorstEstimates(estimates []Estimate, k int) []Estimate {
	scored := make([]Estimate, 0, len(estimates))
	for _, e := range estimates {
		if e.Actual > 0 {
			scored = append(scored, e)
		}
	}
	relErr := func(e Estimate) float64 {
		d := e.Estimated - float64(e.Actual)
		if d < 0 {
			d = -d
		}
		return d / float64(e.Actual)
	}
	sort.SliceStable(scored, func(i, j int) bool { return relErr(scored[i]) > relErr(scored[j]) })
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// SelDelta pairs one activity's modeled (design-time) selectivity with the
// selectivity actually observed in an executed run — the per-activity
// drift of the cost model's central parameter.
type SelDelta struct {
	Node     workflow.NodeID
	Label    string
	Modeled  float64
	Observed float64
}

// Delta returns observed − modeled (positive: the activity passed more
// rows than the model assumed).
func (d SelDelta) Delta() float64 { return d.Observed - d.Modeled }

// SelectivityDeltas computes, for every activity with evidence, the
// observed selectivity of an executed run (engine.RunResult.NodeRows)
// against the activity's declared estimate, using the same formulas as
// Calibrate: out/in for unaries, out/(in₁·in₂) for joins, out/in₁ for
// differences and intersections. Unions (no selectivity) and activities
// whose inputs were empty or unrecorded are skipped. Results are in
// topological order.
func SelectivityDeltas(g *workflow.Graph, nodeRows map[workflow.NodeID]int) []SelDelta {
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	var out []SelDelta
	for _, id := range order {
		n := g.Node(id)
		if n.Kind != workflow.KindActivity || n.Act.Sem.Op == workflow.OpUnion {
			continue
		}
		rows, ok := nodeRows[id]
		if !ok {
			continue
		}
		preds := g.Providers(id)
		in := make([]float64, len(preds))
		evidence := len(preds) > 0
		for i, p := range preds {
			r, ok := nodeRows[p]
			if !ok || r == 0 {
				evidence = false
				break
			}
			in[i] = float64(r)
		}
		if !evidence {
			continue
		}
		var observed float64
		switch {
		case n.Act.Sem.Op == workflow.OpJoin && len(in) > 1:
			observed = float64(rows) / (in[0] * in[1])
		default:
			observed = float64(rows) / in[0]
		}
		out = append(out, SelDelta{Node: id, Label: n.Label(), Modeled: n.Act.Sel, Observed: observed})
	}
	return out
}

// MeanAbsSelDelta reduces a delta set to one drift number: the mean
// absolute difference between observed and modeled selectivity. Zero when
// no activity had evidence.
func MeanAbsSelDelta(ds []SelDelta) float64 {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ds {
		sum += math.Abs(d.Delta())
	}
	return sum / float64(len(ds))
}
