package cost

import (
	"etlopt/internal/workflow"
)

// The paper's conclusions (§6) leave "the physical optimization of ETL
// workflows, i.e., taking physical operators and access methods into
// consideration" as future work. PhysicalModel is a step in that
// direction: a cost model that picks the cheaper physical operator for
// each logical activity based on a memory budget, and charges recordset
// I/O separately from CPU work. Because core.Options accepts any Model,
// the same logical search optimizes under physical costs unchanged — and
// may prefer different plans (e.g. keeping a flow below the hash-memory
// threshold becomes valuable).
type PhysicalModel struct {
	// CPUWeight is the cost of processing one row (default 1).
	CPUWeight float64
	// IOWeight is the cost of reading or writing one recordset row
	// (default 4 — I/O is several times dearer than CPU).
	IOWeight float64
	// MemoryRows is the hash-table capacity: blocking operators whose
	// build input fits use hash-based physical operators at linear CPU
	// cost; larger inputs fall back to sort-based operators at n·log₂n
	// plus a spill charge (default 50 000).
	MemoryRows float64
}

// DefaultPhysicalModel returns the model with its documented defaults.
func DefaultPhysicalModel() PhysicalModel {
	return PhysicalModel{CPUWeight: 1, IOWeight: 4, MemoryRows: 50_000}
}

func (m PhysicalModel) withDefaults() PhysicalModel {
	if m.CPUWeight == 0 {
		m.CPUWeight = 1
	}
	if m.IOWeight == 0 {
		m.IOWeight = 4
	}
	if m.MemoryRows == 0 {
		m.MemoryRows = 50_000
	}
	return m
}

// blockingCost prices a duplicate-sensitive operator: hash-based when the
// input fits in memory, otherwise sort-based with a spill (write + read)
// charge.
func (m PhysicalModel) blockingCost(n float64) float64 {
	if n <= m.MemoryRows {
		return m.CPUWeight * n
	}
	return m.CPUWeight*n*log2(n) + 2*m.IOWeight*(n-m.MemoryRows)
}

// ActivityCost implements Model.
func (m PhysicalModel) ActivityCost(a *workflow.Activity, in []float64) float64 {
	m = m.withDefaults()
	switch a.Sem.Op {
	case workflow.OpFilter, workflow.OpNotNull, workflow.OpProject, workflow.OpFunc:
		return m.CPUWeight * in[0]
	case workflow.OpSurrogateKey:
		// The lookup table is cached (the paper's §2.2 factorization
		// motivation): per-row probing at CPU cost.
		return m.CPUWeight * in[0]
	case workflow.OpPKCheck:
		if a.Sem.Lookup != "" {
			return m.CPUWeight * in[0] // cached key set, per-row probe
		}
		return m.blockingCost(in[0])
	case workflow.OpDistinct, workflow.OpAggregate:
		return m.blockingCost(in[0])
	case workflow.OpMerged:
		total := 0.0
		n := in[0]
		for _, comp := range a.Sem.Components {
			total += m.ActivityCost(comp, []float64{n})
			n = m.OutputRows(comp, []float64{n})
		}
		return total
	case workflow.OpUnion:
		return m.CPUWeight * (in[0] + in[1])
	case workflow.OpJoin, workflow.OpDiff, workflow.OpIntersect:
		// Hash join when the smaller side fits in memory: build small,
		// probe large. Otherwise sort-merge both sides with spills.
		small, large := in[0], in[1]
		if small > large {
			small, large = large, small
		}
		if small <= m.MemoryRows {
			return m.CPUWeight * (small + large)
		}
		return m.blockingCost(in[0]) + m.blockingCost(in[1])
	default:
		return m.CPUWeight * in[0]
	}
}

// OutputRows implements Model; cardinality estimation is physical-operator
// independent and matches RowModel.
func (m PhysicalModel) OutputRows(a *workflow.Activity, in []float64) float64 {
	return RowModel{}.OutputRows(a, in)
}

// RecordsetIO returns the model's I/O charge for moving n rows through a
// recordset boundary. Evaluate charges activities only (C(S) = Σ c(aᵢ),
// §2.2); EvaluateWithIO adds these boundary charges for source scans and
// target loads.
func (m PhysicalModel) RecordsetIO(n float64) float64 {
	return m.withDefaults().IOWeight * n
}

// EvaluateWithIO evaluates a workflow under a physical model including the
// recordset I/O at the workflow's edges: every source is read once and
// every target written once. The activity-only total of Evaluate is the
// paper's C(S); the I/O component is invariant under the logical
// transitions (sources and targets do not move), so optimization decisions
// agree — the split is reported for capacity planning.
func EvaluateWithIO(g *workflow.Graph, m PhysicalModel) (activityCost, ioCost float64, err error) {
	c, err := Evaluate(g, m)
	if err != nil {
		return 0, 0, err
	}
	for _, id := range g.Sources() {
		ioCost += m.RecordsetIO(c.Cards[id])
	}
	for _, id := range g.Targets() {
		ioCost += m.RecordsetIO(c.Cards[id])
	}
	return c.Total, ioCost, nil
}
