package cost

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/engine"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// runFig1 executes the Fig. 1 scenario and returns its graph and observed
// per-node row counts.
func runFig1(t *testing.T) (*workflow.Graph, map[workflow.NodeID]int) {
	t.Helper()
	sc := templates.Fig1Scenario(120, 360)
	res, err := engine.New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Graph, res.NodeRows
}

func TestExplainPairsEstimatesWithActuals(t *testing.T) {
	g, rows := runFig1(t)
	est, err := Explain(g, RowModel{}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != g.Len() {
		t.Fatalf("Explain covers %d of %d nodes", len(est), g.Len())
	}
	// Source nodes: the estimate is the declared hint (1000/3000), the
	// actual the generated data size (120/360) — a designed-in mismatch
	// that calibration fixes.
	var sawSourceMismatch bool
	for _, e := range est {
		n := g.Node(e.Node)
		if n.Kind == workflow.KindRecordset && len(g.Providers(e.Node)) == 0 {
			if e.Estimated != float64(e.Actual) {
				sawSourceMismatch = true
			}
		}
	}
	if !sawSourceMismatch {
		t.Error("expected the declared source hints to differ from actual data volume")
	}
	text := FormatExplain(est)
	if !strings.Contains(text, "estimated") || !strings.Contains(text, "PARTS1") {
		t.Errorf("FormatExplain output unexpected:\n%s", text)
	}
}

func TestCalibrateMatchesObservation(t *testing.T) {
	g, rows := runFig1(t)
	cal, err := Calibrate(g, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Re-estimating the calibrated workflow must reproduce the observed
	// cardinalities nearly exactly (up to the multiplicative composition
	// of per-activity rates).
	est, err := Explain(cal, RowModel{}, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range est {
		if e.Actual == 0 {
			continue
		}
		ratio := e.Estimated / float64(e.Actual)
		if ratio < 0.99 || ratio > 1.01 {
			t.Errorf("node %d (%s): calibrated estimate %v vs actual %d",
				e.Node, e.Label, e.Estimated, e.Actual)
		}
	}
	// The original graph is untouched.
	for _, id := range g.Activities() {
		if ca := cal.Node(id); ca != nil && ca.Act.Sel != g.Node(id).Act.Sel {
			// At least one selectivity should differ overall; per-node
			// inequality is expected, so just ensure the original's value
			// still matches its template default for the filter.
			break
		}
	}
}

func TestCalibrateRejectsInconsistentCounts(t *testing.T) {
	g, rows := runFig1(t)
	// Claim an activity emitted more rows than it received.
	for _, id := range g.Activities() {
		if !g.Node(id).Act.IsBinary() {
			rows[id] = rows[g.Providers(id)[0]] * 10
			break
		}
	}
	if _, err := Calibrate(g, rows); err == nil {
		t.Error("inconsistent observations should be rejected")
	}
}

func TestCalibrateThenReoptimize(t *testing.T) {
	// The full feedback loop: run, calibrate, verify the calibrated costing
	// reflects the data rather than the design-time hints.
	g, rows := runFig1(t)
	cal, err := Calibrate(g, rows)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Evaluate(g, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(cal, RowModel{})
	if err != nil {
		t.Fatal(err)
	}
	// The declared hints said 4000 source rows; the data held 480, so the
	// calibrated state must cost far less.
	if after.Total >= before.Total {
		t.Errorf("calibrated cost %v should be below hinted cost %v", after.Total, before.Total)
	}
}

func TestWorstEstimates(t *testing.T) {
	g, rows := runFig1(t)
	est, err := Explain(g, RowModel{}, rows)
	if err != nil {
		t.Fatal(err)
	}
	worst := WorstEstimates(est, 3)
	if len(worst) != 3 {
		t.Fatalf("WorstEstimates returned %d entries", len(worst))
	}
	// Ordered by descending relative error.
	rel := func(e Estimate) float64 {
		d := e.Estimated - float64(e.Actual)
		if d < 0 {
			d = -d
		}
		return d / float64(e.Actual)
	}
	if rel(worst[0]) < rel(worst[1]) || rel(worst[1]) < rel(worst[2]) {
		t.Errorf("WorstEstimates not sorted: %v", worst)
	}
}
