// Package cost implements the discrimination criterion of the state-space
// search (§2.2): a pluggable cost model assigning each activity a cost that
// may depend on its position in the workflow (through the cardinalities
// that reach it), with the total cost of a state being the sum of its
// activities' costs, C(S) = Σ c(aᵢ).
//
// The default RowModel follows the paper's experimental setup: "a simple
// cost model taking into consideration only the number of processed rows
// based on simple formulae [15]" — linear scans cost n, sort/hash-based
// operations cost n·log₂n, and selectivities drive cardinality propagation.
package cost

import (
	"fmt"
	"math"

	"etlopt/internal/workflow"
)

// Model prices activities and propagates cardinalities. Implementations
// must be deterministic and free of state so that evaluations are
// position-dependent only through the input cardinalities.
type Model interface {
	// ActivityCost returns the cost of running the activity on inputs of
	// the given cardinalities.
	ActivityCost(a *workflow.Activity, in []float64) float64
	// OutputRows estimates the activity's output cardinality.
	OutputRows(a *workflow.Activity, in []float64) float64
}

// RowModel is the paper's row-count cost model. The zero value is ready to
// use.
type RowModel struct{}

// log2 returns log₂(n) clamped to 0 for n ≤ 1, keeping n·log₂n formulas
// monotone and non-negative on tiny inputs.
func log2(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(n)
}

// ActivityCost implements Model: filters and per-row transformations cost
// n; duplicate-sensitive and key-assigning operations cost n·log₂n; binary
// operations charge both inputs (n₁+n₂ for union, sort-based n·log₂n per
// side for join-like operations).
func (RowModel) ActivityCost(a *workflow.Activity, in []float64) float64 {
	switch a.Sem.Op {
	case workflow.OpFilter, workflow.OpNotNull, workflow.OpProject, workflow.OpFunc:
		return in[0]
	case workflow.OpPKCheck, workflow.OpDistinct, workflow.OpAggregate, workflow.OpSurrogateKey:
		return in[0] * log2(in[0])
	case workflow.OpMerged:
		total := 0.0
		n := in[0]
		for _, comp := range a.Sem.Components {
			total += RowModel{}.ActivityCost(comp, []float64{n})
			n = RowModel{}.OutputRows(comp, []float64{n})
		}
		return total
	case workflow.OpUnion:
		return in[0] + in[1]
	case workflow.OpJoin, workflow.OpDiff, workflow.OpIntersect:
		return in[0]*log2(in[0]) + in[1]*log2(in[1])
	default:
		return in[0]
	}
}

// OutputRows implements Model using the activity's selectivity estimate:
// sel·n for unary activities (grouping ratio for aggregations), n₁+n₂ for
// union, sel·n₁·n₂ for join and sel·n₁ for difference/intersection.
func (RowModel) OutputRows(a *workflow.Activity, in []float64) float64 {
	switch a.Sem.Op {
	case workflow.OpUnion:
		return in[0] + in[1]
	case workflow.OpJoin:
		return a.Sel * in[0] * in[1]
	case workflow.OpDiff, workflow.OpIntersect:
		return a.Sel * in[0]
	case workflow.OpMerged:
		n := in[0]
		for _, comp := range a.Sem.Components {
			n = RowModel{}.OutputRows(comp, []float64{n})
		}
		return n
	default:
		return a.Sel * in[0]
	}
}

// Costing holds the evaluated cost of one state: per-node output
// cardinalities, per-node costs, and the total C(S).
type Costing struct {
	Cards map[workflow.NodeID]float64
	Costs map[workflow.NodeID]float64
	Total float64
}

// Clone returns an independent copy, used as the baseline of a
// semi-incremental re-evaluation.
func (c *Costing) Clone() *Costing {
	out := &Costing{
		Cards: make(map[workflow.NodeID]float64, len(c.Cards)),
		Costs: make(map[workflow.NodeID]float64, len(c.Costs)),
		Total: c.Total,
	}
	for k, v := range c.Cards {
		out.Cards[k] = v
	}
	for k, v := range c.Costs {
		out.Costs[k] = v
	}
	return out
}

// Evaluate computes the full costing of a workflow under a model: source
// recordsets contribute their declared cardinality, every activity is
// priced on the cardinalities of its providers, and C(S) sums the activity
// costs.
//
// Evaluate and EvaluateIncremental are pure: they read the graph (and
// prev) and allocate a fresh Costing. The parallel search relies on this —
// worker goroutines cost different successor graphs concurrently, sharing
// a parent Costing read-only. The one subtlety is the graph's memoized
// topological order: prime it (call TopoSort once) before sharing one
// graph across goroutines.
func Evaluate(g *workflow.Graph, m Model) (*Costing, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	c := &Costing{
		Cards: make(map[workflow.NodeID]float64, len(order)),
		Costs: make(map[workflow.NodeID]float64, len(order)),
	}
	for _, id := range order {
		if err := evalNode(g, m, c, id); err != nil {
			return nil, err
		}
		c.Total += c.Costs[id]
	}
	return c, nil
}

// evalNode computes the cardinality and cost of one node from its
// providers' already-computed cardinalities.
func evalNode(g *workflow.Graph, m Model, c *Costing, id workflow.NodeID) error {
	n := g.Node(id)
	if n == nil {
		return fmt.Errorf("cost: unknown node %d", id)
	}
	switch n.Kind {
	case workflow.KindRecordset:
		if preds := g.Providers(id); len(preds) == 1 {
			c.Cards[id] = c.Cards[preds[0]] // target: stores what arrives
		} else {
			c.Cards[id] = n.RS.Rows
		}
		c.Costs[id] = 0
	case workflow.KindActivity:
		preds := g.Providers(id)
		in := make([]float64, len(preds))
		for i, p := range preds {
			card, ok := c.Cards[p]
			if !ok {
				return fmt.Errorf("cost: provider %d of node %d not evaluated", p, id)
			}
			in[i] = card
		}
		if len(in) == 0 {
			return fmt.Errorf("cost: activity %d has no provider", id)
		}
		c.Costs[id] = m.ActivityCost(n.Act, in)
		c.Cards[id] = m.OutputRows(n.Act, in)
	}
	return nil
}

// EvaluateIncremental re-evaluates a derived state semi-incrementally
// (§4.1): "the variation of the cost from state S to S' can be determined
// by computing only the cost of the path from the affected activities
// towards the target". prev is the costing of the parent state (whose node
// IDs are stable across the transition), g the derived graph and dirty the
// nodes the transition touched. Only dirty nodes and their descendants are
// recomputed; everything else is copied from prev.
func EvaluateIncremental(prev *Costing, g *workflow.Graph, m Model, dirty []workflow.NodeID) (*Costing, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	affected := make(map[workflow.NodeID]bool, len(dirty))
	for _, id := range dirty {
		affected[id] = true
	}
	// Propagate the affected set to descendants in topological order.
	for _, id := range order {
		if affected[id] {
			continue
		}
		for _, p := range g.Providers(id) {
			if affected[p] {
				affected[id] = true
				break
			}
		}
	}
	c := &Costing{
		Cards: make(map[workflow.NodeID]float64, len(order)),
		Costs: make(map[workflow.NodeID]float64, len(order)),
	}
	for _, id := range order {
		if !affected[id] {
			if card, ok := prev.Cards[id]; ok {
				c.Cards[id] = card
				c.Costs[id] = prev.Costs[id]
				c.Total += c.Costs[id]
				continue
			}
			// Node unknown to the parent (should not happen for clean
			// transitions); fall through to recomputation.
		}
		if err := evalNode(g, m, c, id); err != nil {
			return nil, err
		}
		c.Total += c.Costs[id]
	}
	return c, nil
}

// Improvement returns the percentage improvement of cost over base:
// 100·(base−cost)/base, or 0 when base is 0.
func Improvement(base, cost float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - cost) / base
}
