// Package generator synthesizes ETL workflows for the experimental suite.
// The paper evaluates on 40 proprietary workflows "categorized as small,
// medium, and large, involving a range of 15 to 70 activities" (§4.2);
// those workflows were never published, so this package substitutes a
// seeded synthetic generator producing workflows in the same size bands
// with the same structural features the transitions feed on: several
// source branches with cleaning/conversion pipelines, homologous
// activities across sibling branches (factorization candidates), a
// union tree, and a post-union pipeline with distributable selections,
// key checks, optional aggregation and an optional dimension join.
//
// Every generated scenario is executable: the generator also produces
// deterministic source data, surrogate-key lookups and key sets, so the
// empirical equivalence oracle can validate optimizations end to end.
package generator

import (
	"fmt"
	"math/rand"

	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// Category is a workflow size band from §4.2.
type Category int

// The paper's categories with their average activity counts (Table 2).
const (
	// Small targets roughly 15-25 activities (paper average 20).
	Small Category = iota
	// Medium targets roughly 35-45 activities (paper average 40).
	Medium
	// Large targets roughly 60-75 activities (paper average 70).
	Large
)

// String returns the category name as printed in the paper's tables.
func (c Category) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Config parameterizes workflow synthesis.
type Config struct {
	// Seed drives all randomness; equal configs generate equal scenarios.
	Seed int64
	// Branches is the number of source branches converging via unions.
	Branches int
	// BranchActivities is the approximate number of activities per branch.
	BranchActivities int
	// PostUnion is the approximate number of activities after the last
	// union.
	PostUnion int
	// Values is the number of numeric measure attributes (V1..Vk).
	Values int
	// HomologousProb is the probability that a sibling branch receives a
	// copy of a branch's filter (creating a factorization candidate).
	HomologousProb float64
	// WithAggregate appends a post-union aggregation.
	WithAggregate bool
	// WithJoin joins a dimension recordset after the union pipeline.
	WithJoin bool
	// SourceRowsHint is the cardinality hint range for cost models.
	SourceRowsHint [2]float64
	// DataRows is the number of actual records generated per source for
	// empirical runs.
	DataRows int
	// Chained builds rigid branch pipelines (a dependency chain per
	// measure: not-null on the raw attribute, conversion, threshold on the
	// converted value) instead of freely shuffled cleaning activities.
	// Rigid branches keep the state space small enough for ES to close —
	// the character of the paper's small workflows, where ES terminates —
	// while the selective post-union filters still leave the optimizer
	// plenty to gain.
	Chained bool
	// PrefixSeed, when non-zero, seeds the extract/clean prefix (branch
	// sources, branch pipelines, homologous tails and the union tree —
	// including the generated source data) separately from Seed, which
	// then drives only the post-union pipeline. Workflows generated with
	// equal PrefixSeed and differing Seeds share their prefix exactly:
	// the multi-workflow shape a load window exhibits, where fleets of
	// flows read the same extracts and diverge downstream.
	PrefixSeed int64
}

// CategoryConfig returns the generation parameters used for the paper's
// size bands.
func CategoryConfig(cat Category, seed int64) Config {
	switch cat {
	case Small:
		return Config{
			Seed: seed, Branches: 3, BranchActivities: 3, PostUnion: 4,
			Values: 2, HomologousProb: 0.5, Chained: true,
			SourceRowsHint: [2]float64{5_000, 50_000}, DataRows: 120,
		}
	case Medium:
		return Config{
			Seed: seed, Branches: 4, BranchActivities: 6, PostUnion: 5,
			Values: 3, HomologousProb: 0.5, WithAggregate: true,
			SourceRowsHint: [2]float64{10_000, 100_000}, DataRows: 120,
		}
	default:
		return Config{
			Seed: seed, Branches: 6, BranchActivities: 8, PostUnion: 8,
			Values: 4, HomologousProb: 0.6, WithAggregate: true, WithJoin: true,
			SourceRowsHint: [2]float64{20_000, 200_000}, DataRows: 120,
		}
	}
}

// Generate synthesizes one executable scenario from the configuration.
func Generate(cfg Config) (*templates.Scenario, error) {
	if cfg.Branches < 2 {
		return nil, fmt.Errorf("generator: need at least 2 branches, got %d", cfg.Branches)
	}
	if cfg.Values < 1 {
		cfg.Values = 1
	}
	if cfg.DataRows <= 0 {
		cfg.DataRows = 100
	}
	if cfg.SourceRowsHint[0] <= 0 {
		cfg.SourceRowsHint = [2]float64{10_000, 100_000}
	}
	seed := cfg.Seed
	if cfg.PrefixSeed != 0 {
		seed = cfg.PrefixSeed
	}
	rng := rand.New(rand.NewSource(seed))
	b := &builder{cfg: cfg, rng: rng, g: workflow.NewGraph()}
	return b.build()
}

// builder holds generation state.
type builder struct {
	cfg Config
	rng *rand.Rand
	g   *workflow.Graph
}
