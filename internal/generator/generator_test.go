package generator

import (
	"context"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/workflow"
)

func TestCategorySizes(t *testing.T) {
	// The paper's bands: small ≈ 15-25, medium ≈ 35-50, large ≈ 60-80
	// activities (§4.2 reports averages of 20/40/70).
	bands := map[Category][2]int{
		Small:  {10, 28},
		Medium: {30, 52},
		Large:  {55, 85},
	}
	for cat, band := range bands {
		for seed := int64(0); seed < 5; seed++ {
			sc, err := Generate(CategoryConfig(cat, seed))
			if err != nil {
				t.Fatalf("%s seed %d: %v", cat, seed, err)
			}
			n := len(sc.Graph.Activities())
			if n < band[0] || n > band[1] {
				t.Errorf("%s seed %d: %d activities outside band %v", cat, seed, n, band)
			}
		}
	}
}

func TestGeneratedWorkflowsValid(t *testing.T) {
	for _, cat := range []Category{Small, Medium, Large} {
		for seed := int64(0); seed < 4; seed++ {
			sc, err := Generate(CategoryConfig(cat, 40+seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Graph.Validate(); err != nil {
				t.Errorf("%s seed %d: %v", cat, seed, err)
			}
			if err := sc.Graph.CheckWellFormed(); err != nil {
				t.Errorf("%s seed %d: %v", cat, seed, err)
			}
		}
	}
}

func TestGeneratedWorkflowsExecutable(t *testing.T) {
	for _, cat := range []Category{Small, Medium, Large} {
		sc, err := Generate(CategoryConfig(cat, 7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.New(sc.Bind()).Run(context.Background(), sc.Graph)
		if err != nil {
			t.Fatalf("%s: execution failed: %v", cat, err)
		}
		if len(res.Targets) != 1 {
			t.Fatalf("%s: targets = %v", cat, res.Targets)
		}
		for name, rows := range res.Targets {
			if len(rows) == 0 {
				t.Errorf("%s: target %s received no rows — workload too selective to be interesting", cat, name)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(CategoryConfig(Medium, 123))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(CategoryConfig(Medium, 123))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Signature() != b.Graph.Signature() {
		t.Error("same seed should generate identical workflows")
	}
	for name, rows := range a.Sources {
		if !rows.EqualMultiset(b.Sources[name]) {
			t.Errorf("source %s data differs across identical seeds", name)
		}
	}
	c, err := Generate(CategoryConfig(Medium, 124))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Signature() == c.Graph.Signature() {
		t.Error("different seeds should generate different workflows")
	}
}

func TestGeneratedStructureHasSearchMaterial(t *testing.T) {
	// The whole point of the suite: the transitions must have something to
	// chew on — converging branches, distributable activities, and (for
	// most seeds) homologous pairs.
	foundHomologous := false
	for seed := int64(0); seed < 6; seed++ {
		sc, err := Generate(CategoryConfig(Medium, 60+seed))
		if err != nil {
			t.Fatal(err)
		}
		g := sc.Graph
		binaries := 0
		for _, id := range g.Activities() {
			if g.Node(id).Act.IsBinary() {
				binaries++
			}
		}
		if binaries < 3 {
			t.Errorf("seed %d: only %d binary activities", seed, binaries)
		}
		if len(g.FindDistributableActivities()) == 0 {
			t.Errorf("seed %d: no distributable activities", seed)
		}
		if len(g.FindHomologousPairs()) > 0 {
			foundHomologous = true
		}
		if len(g.LocalGroups()) < 4 {
			t.Errorf("seed %d: only %d local groups", seed, len(g.LocalGroups()))
		}
	}
	if !foundHomologous {
		t.Error("no seed produced homologous pairs; factorization never exercised")
	}
}

func TestLookupsCoverKeyDomain(t *testing.T) {
	sc, err := Generate(CategoryConfig(Small, 3))
	if err != nil {
		t.Fatal(err)
	}
	sk := sc.Lookups["SKLOOKUP"]
	if len(sk) == 0 {
		t.Fatal("no surrogate-key lookup generated")
	}
	keys := map[string]bool{}
	for _, r := range sk {
		keys[r[0].Key()] = true
	}
	for name, rows := range sc.Sources {
		schema := sc.Schemas[name]
		kpos := schema.Index("KEY")
		for _, r := range rows {
			if !keys[r[kpos].Key()] {
				t.Fatalf("source %s key %v missing from SK lookup", name, r[kpos])
			}
		}
	}
}

func TestSuiteCountsAndSeeds(t *testing.T) {
	suite, err := Suite(Small, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 3 {
		t.Fatalf("Suite returned %d scenarios", len(suite))
	}
	sigs := map[string]bool{}
	for _, sc := range suite {
		sigs[sc.Graph.Signature()] = true
	}
	if len(sigs) != 3 {
		t.Error("suite scenarios should differ from one another")
	}
}

func TestPaperSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 40 workflows")
	}
	suite, err := PaperSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, scenarios := range suite {
		total += len(scenarios)
	}
	if total != 40 {
		t.Errorf("paper suite has %d workflows, want 40", total)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Branches: 1}); err == nil {
		t.Error("single-branch config should be rejected")
	}
}

func TestChainedBranchesAreRigid(t *testing.T) {
	// Small (chained) branches must contain dependency chains: a NN on a
	// raw attribute directly before its conversion.
	sc, err := Generate(CategoryConfig(Small, 11))
	if err != nil {
		t.Fatal(err)
	}
	g := sc.Graph
	rigidPairs := 0
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpFunc || !a.Sem.DropArgs {
			continue
		}
		preds := g.Providers(id)
		if len(preds) == 1 {
			if p := g.Node(preds[0]); p.Kind == workflow.KindActivity &&
				p.Act.Sem.Op == workflow.OpNotNull &&
				data.Schema(p.Act.Sem.Attrs).Equal(data.Schema(a.Sem.FnArgs)) {
				rigidPairs++
			}
		}
	}
	if rigidPairs == 0 {
		t.Error("chained small branches should contain NN(RAW)→convert chains")
	}
}
