package generator

import (
	"fmt"

	"etlopt/internal/templates"
)

// Suite returns n scenarios of the given category, seeded deterministically
// from baseSeed.
func Suite(cat Category, n int, baseSeed int64) ([]*templates.Scenario, error) {
	out := make([]*templates.Scenario, 0, n)
	for i := 0; i < n; i++ {
		cfg := CategoryConfig(cat, baseSeed+int64(i)*7919)
		sc, err := Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generator: scenario %d of %s suite: %w", i, cat, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// SharedSuite returns n workflows of the given category that share their
// extract/clean prefix — identical branch sources (names, schemas and
// generated data), branch pipelines, homologous tails and union tree —
// while each member's post-union pipeline diverges under its own seed.
// This is the realistic shape for the shared-work suite scheduler: the
// shared-subgraph detector finds the common prefix by content, not because
// the workflows are wholesale copies.
func SharedSuite(cat Category, n int, baseSeed int64) ([]*templates.Scenario, error) {
	out := make([]*templates.Scenario, 0, n)
	for i := 0; i < n; i++ {
		cfg := CategoryConfig(cat, baseSeed+int64(i+1)*7919)
		cfg.PrefixSeed = baseSeed + int64(cat)*104729 + 1
		sc, err := Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generator: workflow %d of shared %s suite: %w", i, cat, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// PaperSuite reproduces the shape of the paper's test set: 40 workflows
// split across the small, medium and large categories (§4.2). The exact
// split was not published; 14/13/13 keeps the categories balanced.
func PaperSuite(baseSeed int64) (map[Category][]*templates.Scenario, error) {
	counts := map[Category]int{Small: 14, Medium: 13, Large: 13}
	out := make(map[Category][]*templates.Scenario, len(counts))
	for _, cat := range []Category{Small, Medium, Large} {
		suite, err := Suite(cat, counts[cat], baseSeed+int64(cat)*104729)
		if err != nil {
			return nil, err
		}
		out[cat] = suite
	}
	return out, nil
}
