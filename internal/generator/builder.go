package generator

import (
	"fmt"
	"math/rand"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// Attribute naming used by generated workflows. All names are reference
// names (§3.1): RAWi denotes source-unit measures that a conversion maps to
// Vi; CODE is a free-text code cleaned in place; DATE is an American-format
// date reformatted in place; XTRAi are payload attributes projected out.
const (
	attrKey  = "KEY"
	attrSKey = "SKEY"
	attrCode = "CODE"
	attrDate = "DATE"

	lookupSK = "SKLOOKUP"
	lookupPK = "DWKEYS"
	dimName  = "DIM"
	dimVal   = "DVAL"
)

func vAttr(i int) string    { return fmt.Sprintf("V%d", i+1) }
func rawAttr(i int) string  { return fmt.Sprintf("RAW%d", i+1) }
func xtraAttr(i int) string { return fmt.Sprintf("XTRA%d", i+1) }

// build assembles the workflow and its data.
func (b *builder) build() (*templates.Scenario, error) {
	sc := &templates.Scenario{
		Graph:   b.g,
		Sources: map[string]data.Rows{},
		Lookups: map[string]data.Rows{},
		Schemas: map[string]data.Schema{},
	}

	// Branch construction: each branch ends with the common schema
	// {KEY, V1..Vk, CODE, DATE}.
	branchEnds := make([]workflow.NodeID, b.cfg.Branches)
	for i := 0; i < b.cfg.Branches; i++ {
		end, err := b.buildBranch(i, sc)
		if err != nil {
			return nil, err
		}
		branchEnds[i] = end
	}

	// Homologous tails: with probability HomologousProb, append the same
	// filter to a pair of sibling branches right before their union —
	// direct factorization candidates.
	for i := 0; i+1 < len(branchEnds); i += 2 {
		if b.rng.Float64() >= b.cfg.HomologousProb {
			continue
		}
		act := b.homologousFilter()
		id1 := b.g.AddActivity(act)
		id2 := b.g.AddActivity(act)
		b.g.MustAddEdge(branchEnds[i], id1)
		b.g.MustAddEdge(branchEnds[i+1], id2)
		branchEnds[i] = id1
		branchEnds[i+1] = id2
	}

	// Left-deep union tree.
	cur := branchEnds[0]
	for i := 1; i < len(branchEnds); i++ {
		u := b.g.AddActivity(templates.Union())
		b.g.MustAddEdge(cur, u)
		b.g.MustAddEdge(branchEnds[i], u)
		cur = u
	}

	// Post-union pipeline. With a shared-prefix seed, everything up to
	// here came from the prefix rng; reseed so each suite member's
	// post-union pipeline diverges while the prefixes stay identical.
	if b.cfg.PrefixSeed != 0 {
		b.rng = rand.New(rand.NewSource(b.cfg.Seed))
	}
	cur, err := b.buildPostUnion(cur, sc)
	if err != nil {
		return nil, err
	}

	// Target: its schema is whatever the final activity delivers.
	target := b.g.AddRecordset(&workflow.RecordsetRef{
		Name:     "DW.FACT",
		Schema:   data.Schema{attrKey}, // placeholder, fixed below
		IsTarget: true,
	})
	b.g.MustAddEdge(cur, target)
	if err := b.g.RegenerateSchemata(); err != nil {
		return nil, fmt.Errorf("generator: regenerating: %w", err)
	}
	b.g.Node(target).RS.Schema = b.g.Node(cur).Out.Clone()
	if err := b.g.RegenerateSchemata(); err != nil {
		return nil, err
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("generator: invalid workflow: %w", err)
	}
	if err := b.g.CheckWellFormed(); err != nil {
		return nil, fmt.Errorf("generator: ill-formed workflow: %w", err)
	}

	b.buildLookups(sc)
	return sc, nil
}

// buildBranch creates one source recordset and its cleaning pipeline,
// returning the last activity of the branch.
func (b *builder) buildBranch(idx int, sc *templates.Scenario) (workflow.NodeID, error) {
	// Decide per-branch shape: which measures arrive raw (needing unit
	// conversion) and how many extra attributes to project out.
	raws := make([]bool, b.cfg.Values)
	for i := range raws {
		raws[i] = b.rng.Float64() < 0.5
	}
	extras := 1 + b.rng.Intn(2)

	schema := data.Schema{attrKey}
	for i := 0; i < b.cfg.Values; i++ {
		if raws[i] {
			schema = append(schema, rawAttr(i))
		} else {
			schema = append(schema, vAttr(i))
		}
	}
	schema = append(schema, attrCode, attrDate)
	for i := 0; i < extras; i++ {
		schema = append(schema, xtraAttr(i))
	}

	name := fmt.Sprintf("SRC%d", idx+1)
	rows := b.cfg.SourceRowsHint[0] +
		b.rng.Float64()*(b.cfg.SourceRowsHint[1]-b.cfg.SourceRowsHint[0])
	src := b.g.AddRecordset(&workflow.RecordsetRef{
		Name: name, Schema: schema, Rows: rows, IsSource: true,
	})
	sc.Schemas[name] = schema.Clone()
	sc.Sources[name] = b.sourceRows(schema)

	// Mandatory activities: conversions for raw measures and the
	// projection of extras. Optional activities fill up to the target
	// count: not-null checks, filters, in-place reformats.
	var acts []*workflow.Activity
	if b.cfg.Chained {
		// Rigid dependency chains: each raw measure contributes
		// NN(RAW) → convert(RAW→V), and one converted measure gets a
		// threshold — none of these pairs can legally swap, which keeps
		// the state space small.
		for i := 0; i < b.cfg.Values; i++ {
			if raws[i] {
				acts = append(acts,
					templates.NotNull(b.sel(0.9, 1.0), rawAttr(i)),
					templates.Convert("scale10", vAttr(i), rawAttr(i)))
			}
		}
		i := b.rng.Intn(b.cfg.Values)
		acts = append(acts, templates.Threshold(vAttr(i), float64(10+b.rng.Intn(120)), b.sel(0.3, 0.7)))
	} else {
		for i := 0; i < b.cfg.Values; i++ {
			if raws[i] {
				acts = append(acts, templates.Convert("scale10", vAttr(i), rawAttr(i)))
			}
		}
	}
	var extraNames []string
	for i := 0; i < extras; i++ {
		extraNames = append(extraNames, xtraAttr(i))
	}
	acts = append(acts, templates.ProjectOut(extraNames...))

	if !b.cfg.Chained {
		for len(acts) < b.cfg.BranchActivities {
			acts = append(acts, b.randomBranchActivity(raws))
		}
		b.shuffleLegally(acts, raws)
	}

	cur := src
	for _, a := range acts {
		id := b.g.AddActivity(a)
		b.g.MustAddEdge(cur, id)
		cur = id
	}
	return cur, nil
}

// randomBranchActivity draws one optional cleaning activity. Activities
// referencing Vi are only generated against measures that exist from the
// source (non-raw) — the legal-order shuffle places raw-dependent ones
// after their conversion.
func (b *builder) randomBranchActivity(raws []bool) *workflow.Activity {
	switch b.rng.Intn(5) {
	case 0:
		return templates.NotNull(b.sel(0.90, 1.0), attrKey)
	case 1:
		i := b.rng.Intn(len(raws))
		return templates.NotNull(b.sel(0.90, 1.0), vAttr(i))
	case 2:
		i := b.rng.Intn(len(raws))
		return templates.Threshold(vAttr(i), float64(10+b.rng.Intn(120)), b.sel(0.25, 0.7))
	case 3:
		return templates.Reformat("a2edate", attrDate)
	default:
		return templates.Apply("upper", attrCode, attrCode) // in-place clean
	}
}

// homologousFilter draws the filter duplicated across sibling branches.
func (b *builder) homologousFilter() *workflow.Activity {
	i := b.rng.Intn(b.cfg.Values)
	return templates.Threshold(vAttr(i), float64(20+b.rng.Intn(100)), b.sel(0.3, 0.8))
}

// shuffleLegally randomly permutes the branch activities, then repairs the
// order so every activity referencing a converted measure follows its
// conversion and the projection of extras can sit anywhere (extras are
// never referenced).
func (b *builder) shuffleLegally(acts []*workflow.Activity, raws []bool) {
	b.rng.Shuffle(len(acts), func(i, j int) { acts[i], acts[j] = acts[j], acts[i] })
	// Stable repair: for each converted measure, the conversion must come
	// before any activity whose functionality schema mentions it.
	for i := 0; i < b.cfg.Values; i++ {
		if !raws[i] {
			continue
		}
		convPos := -1
		firstUse := len(acts)
		for p, a := range acts {
			if a.Sem.Op == workflow.OpFunc && a.Sem.OutAttr == vAttr(i) && !a.InPlace() {
				convPos = p
			} else if a.Fun.Has(vAttr(i)) && p < firstUse {
				firstUse = p
			}
		}
		if convPos >= 0 && convPos > firstUse {
			// Move the conversion right before its first use.
			conv := acts[convPos]
			copy(acts[firstUse+1:convPos+1], acts[firstUse:convPos])
			acts[firstUse] = conv
		}
	}
}

// buildPostUnion appends the converged pipeline: distributable selections
// and key checks, surrogate key assignment, optional aggregation and an
// optional dimension join.
func (b *builder) buildPostUnion(cur workflow.NodeID, sc *templates.Scenario) (workflow.NodeID, error) {
	add := func(a *workflow.Activity) {
		id := b.g.AddActivity(a)
		b.g.MustAddEdge(cur, id)
		cur = id
	}

	// The surrogate key replaces KEY with SKEY; it and the key check are
	// factorization/distribution material.
	add(templates.SurrogateKey(attrKey, attrSKey, lookupSK))
	add(templates.PKCheckAgainst(lookupPK, b.sel(0.8, 1.0), attrSKey))

	budget := b.cfg.PostUnion - 2
	for budget > 0 {
		switch b.rng.Intn(3) {
		case 0:
			i := b.rng.Intn(b.cfg.Values)
			add(templates.Threshold(vAttr(i), float64(10+b.rng.Intn(120)), b.sel(0.1, 0.5)))
		case 1:
			add(templates.NotNull(b.sel(0.9, 1.0), vAttr(b.rng.Intn(b.cfg.Values))))
		default:
			add(templates.Reformat("a2edate", attrDate))
		}
		budget--
	}

	if b.cfg.WithAggregate {
		add(templates.Aggregate(
			[]string{attrSKey, attrDate},
			workflow.AggSum, vAttr(0), "TOT"+vAttr(0), b.sel(0.2, 0.5)))
	}

	if b.cfg.WithJoin {
		dimSchema := data.Schema{attrSKey, dimVal}
		dim := b.g.AddRecordset(&workflow.RecordsetRef{
			Name: dimName, Schema: dimSchema, Rows: 1000, IsSource: true,
		})
		sc.Schemas[dimName] = dimSchema.Clone()
		sc.Sources[dimName] = b.dimRows()
		j := b.g.AddActivity(templates.Join(1.0/1000, attrSKey))
		b.g.MustAddEdge(cur, j)
		b.g.MustAddEdge(dim, j)
		cur = j
		// A selection on the join key: distributable over the join.
		add(templates.Filter(algebra.Cmp{
			Op:    algebra.GE,
			Left:  algebra.Attr{Name: attrSKey},
			Right: algebra.Const{Value: data.NewInt(1005)},
		}, b.sel(0.5, 0.95)))
	}
	return cur, nil
}

// sel draws a selectivity uniformly from [lo, hi].
func (b *builder) sel(lo, hi float64) float64 {
	return lo + b.rng.Float64()*(hi-lo)
}

// sourceRows generates deterministic records for a branch source: keys in
// the lookup domain, measures spanning filter thresholds with occasional
// NULLs, mixed-case codes, American-format dates and payload extras.
func (b *builder) sourceRows(schema data.Schema) data.Rows {
	months := []string{"01/15/2004", "02/15/2004", "03/15/2004", "04/15/2004"}
	codes := []string{"alpha", "Beta", "GAMMA", "delta ", "epsilon"}
	rows := make(data.Rows, 0, b.cfg.DataRows)
	for i := 0; i < b.cfg.DataRows; i++ {
		rec := make(data.Record, len(schema))
		for j, attr := range schema {
			switch {
			case attr == attrKey:
				rec[j] = data.NewInt(int64(b.rng.Intn(keyDomain)))
			case attr == attrCode:
				rec[j] = data.NewString(codes[b.rng.Intn(len(codes))])
			case attr == attrDate:
				rec[j] = data.NewString(months[b.rng.Intn(len(months))])
			case len(attr) > 3 && attr[:4] == "XTRA":
				rec[j] = data.NewString(fmt.Sprintf("payload-%d", b.rng.Intn(50)))
			default: // V* or RAW*
				if b.rng.Float64() < 0.05 {
					rec[j] = data.Null
				} else {
					rec[j] = data.NewFloat(float64(b.rng.Intn(2000)) / 10)
				}
			}
		}
		rows = append(rows, rec)
	}
	return rows
}

// keyDomain is the production-key domain; the SK lookup covers it fully so
// surrogate resolution never fails.
const keyDomain = 64

// buildLookups populates the surrogate-key lookup, the warehouse key set
// used by the lookup-based PK check, and the dimension rows.
func (b *builder) buildLookups(sc *templates.Scenario) {
	skSchema := data.Schema{attrKey, attrSKey}
	sc.Schemas[lookupSK] = skSchema
	rows := make(data.Rows, 0, keyDomain)
	for k := 0; k < keyDomain; k++ {
		rows = append(rows, data.Record{data.NewInt(int64(k)), data.NewInt(int64(1000 + k))})
	}
	sc.Lookups[lookupSK] = rows

	pkSchema := data.Schema{attrSKey}
	sc.Schemas[lookupPK] = pkSchema
	var pkRows data.Rows
	for k := 0; k < keyDomain/8; k++ {
		pkRows = append(pkRows, data.Record{data.NewInt(int64(1000 + k*7%keyDomain))})
	}
	sc.Lookups[lookupPK] = pkRows
}

// dimRows generates the dimension table: one row per surrogate key.
func (b *builder) dimRows() data.Rows {
	rows := make(data.Rows, 0, keyDomain)
	for k := 0; k < keyDomain; k++ {
		rows = append(rows, data.Record{
			data.NewInt(int64(1000 + k)),
			data.NewString(fmt.Sprintf("dim-%d", k%7)),
		})
	}
	return rows
}
