// Package fault is the deterministic fault-injection subsystem: a seeded
// Plan arms typed, reproducible failures at the engine's injection sites
// (node start, per-partition emit, repartition exchange, checkpoint stage
// and restore), and a Policy retries the transient ones with capped,
// deterministically jittered exponential backoff.
//
// Determinism is the point. Every injection decision is a pure function
// of (seed, site, node, partition, occurrence): the plan keeps one
// occurrence counter per (site, node, partition) key, and the k-th check
// of a key fires iff a seeded hash of the key and k falls below the
// plan's rate — no math/rand, no global state, no dependence on goroutine
// scheduling. Because the engine never short-circuits sibling partitions
// (every partition of a node runs its checks even when another partition
// has already failed), the sequence of occurrences each key sees is the
// same in every run, so the whole fault schedule replays exactly from the
// seed alone.
//
// Each key fires at most MaxPerKey times (default 1). Failed node
// attempts burn occurrences site level by site level — restore, node
// start, exchange, emit, stage — so with a retry budget larger than the
// number of site levels on a node's path, a transiently faulted run is
// *guaranteed* to converge: proptest.CheckFaultRecoveryEquivalence pins
// that any such run is bit-identical to the clean one.
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one injection point in the engine.
type Site string

// The engine's injection sites.
const (
	// SiteNodeStart fires before a node's body runs (all modes).
	SiteNodeStart Site = "node-start"
	// SiteEmit fires after a node's output is computed but before it is
	// committed — per partition in parallel mode, once in materialized.
	SiteEmit Site = "emit"
	// SiteExchange fires inside a repartition exchange, per partition.
	SiteExchange Site = "exchange"
	// SiteStage fires before a checkpoint runner persists a node's output.
	SiteStage Site = "checkpoint-stage"
	// SiteRestore fires before a checkpoint runner loads a staged output.
	SiteRestore Site = "checkpoint-restore"
)

// Kind classifies an injected fault for the retry layer.
type Kind uint8

// Fault kinds.
const (
	// Transient faults model recoverable failures (lost connection, busy
	// resource): the retry layer re-runs the node.
	Transient Kind = iota
	// Permanent faults model unrecoverable failures (corrupt input,
	// schema drift): they surface immediately, never retried.
	Permanent
)

// String names the kind as it appears in errors and journal events.
func (k Kind) String() string {
	if k == Permanent {
		return "permanent"
	}
	return "transient"
}

// Injected is the typed error a fired injection point returns. It names
// the site, node and partition that failed, so tests and operators can
// attribute every failure exactly; errors.As through any wrapping
// recovers it.
type Injected struct {
	Site Site
	Node int
	Part int
	Kind Kind
	// Occurrence is the zero-based count of checks this (site, node,
	// partition) key had seen when the fault fired — the replay
	// coordinate of the injection.
	Occurrence int
}

// Error renders the full attribution.
func (e *Injected) Error() string {
	return fmt.Sprintf("fault: injected %s fault at %s (node %d, partition %d, occurrence %d)",
		e.Kind, e.Site, e.Node, e.Part, e.Occurrence)
}

// Transient reports whether the retry layer may re-run the failed node.
func (e *Injected) Transient() bool { return e.Kind == Transient }

// Plan is a seeded, reproducible fault schedule. A nil *Plan no-ops on
// every method, so callers hold the handle unconditionally — the same
// idiom as the obs instruments. Check is safe for concurrent use.
type Plan struct {
	seed    int64
	rate    float64
	kind    Kind
	perKey  int
	latency time.Duration
	sites   map[Site]bool // nil: every site armed

	mu       sync.Mutex
	occ      map[string]int
	injected int
}

// PlanOption configures a Plan.
type PlanOption func(*Plan)

// WithKind sets the kind of every injected fault (default Transient).
func WithKind(k Kind) PlanOption { return func(p *Plan) { p.kind = k } }

// WithMaxPerKey caps how many faults one (site, node, partition) key may
// fire (default 1). The cap is what bounds the retry budget a faulted
// run needs to converge: once a key is exhausted it never fires again.
func WithMaxPerKey(n int) PlanOption {
	return func(p *Plan) {
		if n > 0 {
			p.perKey = n
		}
	}
}

// WithLatency adds a fixed delay before each fired fault returns,
// modeling slow failures (timeouts) rather than instant ones. The sleep
// respects context cancellation.
func WithLatency(d time.Duration) PlanOption { return func(p *Plan) { p.latency = d } }

// WithSites arms only the listed sites (default: all).
func WithSites(sites ...Site) PlanOption {
	return func(p *Plan) {
		p.sites = make(map[Site]bool, len(sites))
		for _, s := range sites {
			p.sites[s] = true
		}
	}
}

// NewPlan builds a plan firing faults at the given rate (clamped to
// [0, 1]); the seed makes the schedule reproducible.
func NewPlan(seed int64, rate float64, opts ...PlanOption) *Plan {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	p := &Plan{seed: seed, rate: rate, perKey: 1, occ: make(map[string]int)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Check consults the plan at one injection point and returns a typed
// *Injected error when the schedule says this occurrence fires, nil
// otherwise. A nil plan or a zero rate never fires.
func (p *Plan) Check(ctx context.Context, site Site, node, part int) error {
	if p == nil || p.rate <= 0 {
		return nil
	}
	if p.sites != nil && !p.sites[site] {
		return nil
	}
	key := string(site) + "/" + strconv.Itoa(node) + "/" + strconv.Itoa(part)
	p.mu.Lock()
	o := p.occ[key]
	p.occ[key] = o + 1
	fire := o < p.perKey && p.roll(key, o) < p.rate
	if fire {
		p.injected++
	}
	p.mu.Unlock()
	if !fire {
		return nil
	}
	if p.latency > 0 {
		t := time.NewTimer(p.latency)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	return &Injected{Site: site, Node: node, Part: part, Kind: p.kind, Occurrence: o}
}

// Injected reports how many faults the plan has fired so far.
func (p *Plan) Injected() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// roll maps (seed, key, occurrence) to a uniform value in [0, 1) with
// FNV-1a and a splitmix64 finalizer — fixed, platform-independent, and
// independent of every other key's history.
func (p *Plan) roll(key string, occ int) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64() ^ uint64(p.seed)*0x9e3779b97f4a7c15 ^ (uint64(occ)+1)*0xbf58476d1ce4e5b9
	return unit(splitmix64(x))
}

// ParseSpec parses the CLI fault specification "seed:rate" (e.g.
// "42:0.05") shared by etlrun and etlbench.
func ParseSpec(spec string) (seed int64, rate float64, err error) {
	s, r, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("fault: spec %q: want seed:rate (e.g. 42:0.05)", spec)
	}
	seed, err = strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: spec %q: bad seed: %w", spec, err)
	}
	rate, err = strconv.ParseFloat(strings.TrimSpace(r), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: spec %q: bad rate: %w", spec, err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("fault: spec %q: rate %v outside [0, 1]", spec, rate)
	}
	return seed, rate, nil
}

// splitmix64 is the SplitMix64 finalizer: a fixed bijective mixer whose
// output passes statistical uniformity tests, used here instead of
// math/rand so injection decisions carry no hidden global state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps 64 random bits to [0, 1) with 53-bit precision.
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }
