package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Two plans with the same seed must fire the exact same schedule; a
// different seed must diverge somewhere over a long check sequence.
func TestPlanDeterministic(t *testing.T) {
	ctx := context.Background()
	sites := []Site{SiteNodeStart, SiteEmit, SiteExchange, SiteStage, SiteRestore}
	schedule := func(seed int64) []bool {
		p := NewPlan(seed, 0.3, WithMaxPerKey(3))
		var fired []bool
		for round := 0; round < 3; round++ {
			for _, s := range sites {
				for node := 0; node < 8; node++ {
					for part := 0; part < 4; part++ {
						fired = append(fired, p.Check(ctx, s, node, part) != nil)
					}
				}
			}
		}
		return fired
	}
	a, b, c := schedule(42), schedule(42), schedule(43)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical %d-check schedules", len(a))
	}
}

func TestPlanMaxPerKey(t *testing.T) {
	ctx := context.Background()
	p := NewPlan(7, 1) // rate 1: every eligible occurrence fires
	if err := p.Check(ctx, SiteEmit, 1, 0); err == nil {
		t.Fatal("rate-1 plan did not fire on first check")
	}
	for i := 0; i < 5; i++ {
		if err := p.Check(ctx, SiteEmit, 1, 0); err != nil {
			t.Fatalf("key fired again after MaxPerKey exhausted (check %d): %v", i+2, err)
		}
	}
	if err := p.Check(ctx, SiteEmit, 1, 1); err == nil {
		t.Fatal("distinct partition key should have its own budget")
	}
	if got := p.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestPlanNilAndZeroRate(t *testing.T) {
	ctx := context.Background()
	var nilPlan *Plan
	if err := nilPlan.Check(ctx, SiteEmit, 0, 0); err != nil {
		t.Fatalf("nil plan fired: %v", err)
	}
	if n := nilPlan.Injected(); n != 0 {
		t.Fatalf("nil plan Injected() = %d", n)
	}
	p := NewPlan(1, 0)
	for i := 0; i < 100; i++ {
		if err := p.Check(ctx, SiteNodeStart, i, 0); err != nil {
			t.Fatalf("zero-rate plan fired: %v", err)
		}
	}
}

func TestPlanSiteFilter(t *testing.T) {
	ctx := context.Background()
	p := NewPlan(9, 1, WithSites(SiteExchange))
	if err := p.Check(ctx, SiteEmit, 0, 0); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := p.Check(ctx, SiteExchange, 0, 0); err == nil {
		t.Fatal("armed site did not fire at rate 1")
	}
}

func TestInjectedTyped(t *testing.T) {
	ctx := context.Background()
	p := NewPlan(3, 1, WithKind(Permanent))
	err := p.Check(ctx, SiteExchange, 4, 2)
	if err == nil {
		t.Fatal("rate-1 plan did not fire")
	}
	wrapped := fmt.Errorf("engine: activity 4: %w", err)
	var inj *Injected
	if !errors.As(wrapped, &inj) {
		t.Fatalf("errors.As failed on %v", wrapped)
	}
	if inj.Site != SiteExchange || inj.Node != 4 || inj.Part != 2 || inj.Kind != Permanent {
		t.Fatalf("attribution wrong: %+v", inj)
	}
	if inj.Transient() {
		t.Fatal("permanent fault reports Transient() = true")
	}
	for _, want := range []string{"permanent", "exchange", "node 4", "partition 2"} {
		if !contains(inj.Error(), want) {
			t.Fatalf("error %q missing %q", inj.Error(), want)
		}
	}
}

func TestPlanLatencyRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPlan(5, 1, WithLatency(time.Hour))
	done := make(chan error, 1)
	go func() { done <- p.Check(ctx, SiteEmit, 0, 0) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("fault swallowed by cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Check blocked on latency despite cancelled context")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		seed int64
		rate float64
		ok   bool
	}{
		{"42:0.05", 42, 0.05, true},
		{"-7:1", -7, 1, true},
		{"0:0", 0, 0, true},
		{"42", 0, 0, false},
		{"x:0.5", 0, 0, false},
		{"42:high", 0, 0, false},
		{"42:1.5", 0, 0, false},
		{"42:-0.1", 0, 0, false},
	}
	for _, c := range cases {
		seed, rate, err := ParseSpec(c.spec)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q) err = %v, want ok=%v", c.spec, err, c.ok)
		}
		if c.ok && (seed != c.seed || rate != c.rate) {
			t.Fatalf("ParseSpec(%q) = (%d, %v), want (%d, %v)", c.spec, seed, rate, c.seed, c.rate)
		}
	}
}

// Backoff must replay exactly for a fixed seed and differ across seeds.
func TestBackoffDeterministic(t *testing.T) {
	p1 := Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 11}
	p2 := Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 11}
	p3 := Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 12}
	same := true
	for a := 1; a <= 8; a++ {
		if p1.Backoff(a) != p2.Backoff(a) {
			t.Fatalf("same seed: Backoff(%d) diverged", a)
		}
		if p1.Backoff(a) != p3.Backoff(a) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical jitter sequences")
	}
}

// The schedule grows exponentially, jitters within [d/2, d), and never
// exceeds the configured ceiling.
func TestBackoffCapsAtCeiling(t *testing.T) {
	p := Policy{MaxAttempts: 40, BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond, Seed: 99}
	for a := 1; a <= 40; a++ {
		d := p.Backoff(a)
		raw := p.BaseDelay << (a - 1)
		if a > 5 || raw > p.MaxDelay { // 1ms·2^4 = 16ms hits the cap at attempt 5
			raw = p.MaxDelay
		}
		if d < raw/2 || d >= raw {
			t.Fatalf("Backoff(%d) = %v outside [%v, %v)", a, d, raw/2, raw)
		}
		if d >= p.MaxDelay {
			t.Fatalf("Backoff(%d) = %v reached ceiling %v", a, d, p.MaxDelay)
		}
	}
	// Huge attempt numbers must not overflow into negative durations.
	unc := Policy{MaxAttempts: 100, BaseDelay: time.Second, Seed: 1}
	if d := unc.Backoff(90); d < 0 {
		t.Fatalf("uncapped Backoff(90) overflowed: %v", d)
	}
	if d := (Policy{MaxAttempts: 3, Seed: 1}).Backoff(2); d != 0 {
		t.Fatalf("zero BaseDelay should mean zero backoff, got %v", d)
	}
}

// Permanent errors must return after exactly one call: the budget is for
// transient faults only.
func TestDoPermanentShortCircuits(t *testing.T) {
	p := Policy{MaxAttempts: 6, Seed: 2}
	calls := 0
	perm := &Injected{Site: SiteStage, Node: 3, Kind: Permanent}
	err := p.Do(context.Background(), func() error {
		calls++
		return fmt.Errorf("wrap: %w", perm)
	}, nil)
	if calls != 1 {
		t.Fatalf("permanent error consumed %d attempts, want 1", calls)
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Kind != Permanent {
		t.Fatalf("typed permanent error lost: %v", err)
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 6, Seed: 2}
	calls := 0
	var retries []int
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return &Injected{Site: SiteEmit, Node: 1, Kind: Transient, Occurrence: calls - 1}
		}
		return nil
	}, func(attempt int, _ time.Duration, cause error) {
		retries = append(retries, attempt)
		if !IsTransient(cause) {
			t.Errorf("onRetry saw non-transient cause %v", cause)
		}
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
	if len(retries) != 2 || retries[0] != 2 || retries[1] != 3 {
		t.Fatalf("onRetry attempts = %v, want [2 3]", retries)
	}
}

func TestDoBudgetExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 4, Seed: 2}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return &Injected{Site: SiteNodeStart, Node: 0, Kind: Transient}
	}, nil)
	if calls != 4 {
		t.Fatalf("budget of 4 consumed %d calls", calls)
	}
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("exhausted budget lost the typed error: %v", err)
	}
}

func TestDoZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	err := (Policy{}).Do(context.Background(), func() error {
		calls++
		return &Injected{Kind: Transient}
	}, nil)
	if calls != 1 || err == nil {
		t.Fatalf("zero policy: %d calls, err %v; want 1 call and the error", calls, err)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&Injected{Kind: Transient}, true},
		{fmt.Errorf("a: %w", &Injected{Kind: Transient}), true},
		{&Injected{Kind: Permanent}, false},
		{errors.New("plain"), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("b: %w", context.Canceled), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Fatalf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 5, BaseDelay: time.Hour, Seed: 3}
	calls := 0
	err := p.Do(ctx, func() error {
		calls++
		return &Injected{Kind: Transient}
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do under cancelled ctx = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("cancelled Do made %d calls, want 1", calls)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
