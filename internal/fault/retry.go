package fault

import (
	"context"
	"errors"
	"time"
)

// Policy is a per-node retry budget with capped exponential backoff. The
// zero value disables retries (one attempt, no delays).
type Policy struct {
	// MaxAttempts is the total attempt budget per node, first try
	// included; values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Zero means no delay (the property tests use
	// this to keep 200-workflow suites fast).
	BaseDelay time.Duration
	// MaxDelay caps the backoff; zero means uncapped.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter: the same seed always yields
	// the same backoff sequence.
	Seed int64
}

// Enabled reports whether the policy allows more than one attempt.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// Backoff returns the delay before retry number attempt (1-based). The
// schedule is BaseDelay·2^(attempt-1) capped at MaxDelay, then jittered
// deterministically into [d/2, d): a hash of (Seed, attempt) picks the
// point, so a fixed seed replays the exact same delays and no delay ever
// exceeds the ceiling.
func (p Policy) Backoff(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		if d > maxDuration/2 || (p.MaxDelay > 0 && d >= p.MaxDelay) {
			break
		}
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	j := unit(splitmix64(uint64(p.Seed) ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15))
	return half + time.Duration(float64(half)*j)
}

const maxDuration = time.Duration(1<<63 - 1)

// IsTransient reports whether err may be retried: a typed *Injected of
// transient kind, or any error exposing Transient() bool, anywhere in
// the wrap chain. Context cancellation and deadline expiry are never
// transient — retrying a cancelled run only delays shutdown.
func IsTransient(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Do runs fn under the policy: transient failures are retried with
// backoff until the attempt budget runs out, while permanent failures
// (and context cancellation) return immediately without consuming the
// remaining budget. onRetry, if non-nil, observes each retry before its
// backoff sleep with the upcoming attempt number (2-based), the delay,
// and the error that caused it.
func (p Policy) Do(ctx context.Context, fn func() error, onRetry func(attempt int, delay time.Duration, cause error)) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 1; ; a++ {
		err = fn()
		if err == nil || a >= attempts || !IsTransient(err) {
			return err
		}
		delay := p.Backoff(a)
		if onRetry != nil {
			onRetry(a+1, delay, err)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		} else if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
}
