package engine

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// failingRecordset wraps a recordset and fails Scan after a set number of
// successful scans — a deterministic failure injector.
type failingRecordset struct {
	data.Recordset
	failuresLeft *int
}

var errInjected = errors.New("injected source failure")

func (f failingRecordset) Scan() (data.Rows, error) {
	if *f.failuresLeft > 0 {
		*f.failuresLeft--
		return nil, errInjected
	}
	return f.Recordset.Scan()
}

func TestCheckpointRunCompletes(t *testing.T) {
	sc := templates.Fig1Scenario(80, 240)
	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(sc.Bind()), dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Matches a plain run exactly.
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("checkpointed run differs from plain run")
	}
	// Success cleans the staging area.
	staged, err := cr.Staged()
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) != 0 {
		t.Errorf("staging not cleared after success: %v", staged)
	}
}

func TestCheckpointResumeAfterFailure(t *testing.T) {
	sc := templates.Fig1Scenario(80, 240)
	bindings := sc.Bind()

	// PARTS2 fails on its first scan; PARTS1 succeeds, so branch 1 and the
	// PARTS1 scan are staged before the run dies.
	failures := 1
	bindings["PARTS2"] = failingRecordset{Recordset: bindings["PARTS2"], failuresLeft: &failures}

	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(context.Background(), sc.Graph); !errors.Is(err, errInjected) {
		t.Fatalf("first run should fail with the injected error, got %v", err)
	}
	staged, err := cr.Staged()
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) == 0 {
		t.Fatal("nothing staged before the failure")
	}

	// The resume run must not re-scan PARTS1 (its stage exists) and must
	// complete, producing exactly the plain result.
	res, err := cr.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("resumed run differs from a clean run")
	}
}

func TestCheckpointResumeSkipsCompletedWork(t *testing.T) {
	// countingRecordset counts scans; after a failure mid-graph, resuming
	// must not re-scan the already-staged source.
	sc := templates.Fig1Scenario(50, 150)
	bindings := sc.Bind()
	scans := 0
	bindings["PARTS1"] = countingRecordset{Recordset: bindings["PARTS1"], scans: &scans}
	failures := 1
	bindings["PARTS2"] = failingRecordset{Recordset: bindings["PARTS2"], failuresLeft: &failures}

	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	cr.Run(context.Background(), sc.Graph) // fails after staging PARTS1's scan
	if scans != 1 {
		t.Fatalf("PARTS1 scanned %d times before failure", scans)
	}
	if _, err := cr.Run(context.Background(), sc.Graph); err != nil {
		t.Fatal(err)
	}
	if scans != 1 {
		t.Errorf("resume re-scanned PARTS1 (%d scans); staged output should be reused", scans)
	}
}

type countingRecordset struct {
	data.Recordset
	scans *int
}

func (c countingRecordset) Scan() (data.Rows, error) {
	*c.scans++
	return c.Recordset.Scan()
}

func TestCheckpointSignatureMismatchClearsStage(t *testing.T) {
	sc := templates.Fig1Scenario(40, 120)
	bindings := sc.Bind()
	failures := 1
	bindings["PARTS2"] = failingRecordset{Recordset: bindings["PARTS2"], failuresLeft: &failures}

	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	cr.Run(context.Background(), sc.Graph) // leaves stages behind

	// A *different* workflow (one more activity) must not consume them.
	g2 := sc.Graph.Clone()
	var sigma workflow.NodeID
	for _, id := range g2.Activities() {
		if g2.Node(id).Act.Sem.Op == workflow.OpFilter {
			sigma = id
		}
	}
	extra := g2.AddActivity(templates.NotNull(0.99, "ECOST"))
	consumer := g2.Consumers(sigma)[0]
	g2.MustReplaceProvider(consumer, sigma, extra)
	g2.MustAddEdge(sigma, extra)
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}

	res, err := cr.Run(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(sc.Bind()).Run(context.Background(), g2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("stale stages leaked into a different workflow's run")
	}
}

func TestCheckpointNullsSurviveStaging(t *testing.T) {
	// NULLs and typed values must round-trip through the CSV stage. Use a
	// workflow whose intermediate rows carry NULLs (no NN filter).
	schema := data.Schema{"K", "V"}
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: schema, Rows: 4, IsSource: true})
	ref := g.AddActivity(templates.Reformat("a2edate", "K")) // pass-through on strings
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: schema, IsTarget: true})
	g.MustAddEdge(src, ref)
	g.MustAddEdge(ref, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	rows := data.Rows{
		{data.NewString("01/02/2004"), data.Null},
		{data.NewString("03/04/2004"), data.NewFloat(2.5)},
	}
	bindings := map[string]data.Recordset{
		"S": data.NewMemoryRecordset("S", schema).MustLoad(rows),
	}
	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Targets["T"]
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	foundNull := false
	for _, r := range got {
		if r[1].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Error("NULL lost in staging round trip")
	}
}
