package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"etlopt/internal/data"
	"etlopt/internal/fault"
	"etlopt/internal/workflow"
)

// This file implements the Parallel execution mode: every recordset is
// split across P partitions, order-preserving operators run partition by
// partition with no coordination, and key-sensitive operators repartition
// their input by key tuple first so that all rows that must meet share a
// partition.
//
// Determinism is carried by sequence tags. Each partitioned row owns an
// int64 tag with two invariants:
//
//  1. tags are strictly increasing within a partition, and
//  2. sorting all of a node's rows by tag reproduces exactly the row
//     order the materialized engine would have produced for that node.
//
// Source scatter establishes the invariants (row i of a scan gets tag i),
// every operator preserves them (see the "Partition contract" comments in
// exec.go), and the final gather is a k-way merge by tag — so the target
// rows are bit-identical to Materialized mode at any partition count.

// pslice is one partition of a node's output: rows plus their sequence
// tags, index-aligned. A pslice is immutable once built.
type pslice struct {
	rows data.Rows
	seqs []int64
}

// pdata is a node's full partitioned output.
type pdata struct {
	parts []pslice
}

func newPdata(p int) *pdata { return &pdata{parts: make([]pslice, p)} }

// total counts the rows across all partitions.
func (pd *pdata) total() int {
	n := 0
	for _, ps := range pd.parts {
		n += len(ps.rows)
	}
	return n
}

// maxSeq returns the largest tag across all partitions, or -1 when empty.
func (pd *pdata) maxSeq() int64 {
	max := int64(-1)
	for _, ps := range pd.parts {
		if n := len(ps.seqs); n > 0 && ps.seqs[n-1] > max {
			// Tags are ascending within a partition, so the last one is
			// the partition's max.
			max = ps.seqs[n-1]
		}
	}
	return max
}

// scatterRows deals rows round-robin into P partitions, tagging row i
// with sequence i. This is the canonical way fresh (merged-order) rows
// enter the partitioned world.
func scatterRows(rows data.Rows, p int) *pdata {
	parts := rows.SplitRoundRobin(p)
	pd := &pdata{parts: make([]pslice, len(parts))}
	for i := range parts {
		seqs := make([]int64, len(parts[i]))
		for j := range seqs {
			seqs[j] = int64(i + j*len(parts))
		}
		pd.parts[i] = pslice{rows: parts[i], seqs: seqs}
	}
	return pd
}

// mergeBySeq k-way-merges tagged slices into one slice ordered by
// ascending tag. Inputs must honour invariant 1; tags are globally
// unique, so the merge is total.
func mergeBySeq(parts []pslice) pslice {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, ps := range parts {
		total += len(ps.rows)
	}
	out := pslice{rows: make(data.Rows, 0, total), seqs: make([]int64, 0, total)}
	heads := make([]int, len(parts))
	for len(out.rows) < total {
		best := -1
		for p, ps := range parts {
			if heads[p] >= len(ps.rows) {
				continue
			}
			if best < 0 || ps.seqs[heads[p]] < parts[best].seqs[heads[best]] {
				best = p
			}
		}
		out.rows = append(out.rows, parts[best].rows[heads[best]])
		out.seqs = append(out.seqs, parts[best].seqs[heads[best]])
		heads[best]++
	}
	return out
}

// gather restores a node's materialized row order (invariant 2).
func gather(pd *pdata) data.Rows { return mergeBySeq(pd.parts).rows }

// realignPdata re-lays each partition's rows out from schema src to dst,
// keeping tags; identity when the layouts match. Partitions are realigned
// concurrently — the projection is pure per-row work.
func realignPdata(pd *pdata, src, dst data.Schema) *pdata {
	if src.Equal(dst) {
		return pd
	}
	out := newPdata(len(pd.parts))
	var wg sync.WaitGroup
	wg.Add(len(pd.parts))
	for p := range pd.parts {
		go func(p int) {
			defer wg.Done()
			out.parts[p] = pslice{rows: realign(pd.parts[p].rows, src, dst), seqs: pd.parts[p].seqs}
		}(p)
	}
	wg.Wait()
	return out
}

// applyMaskTagged keeps the rows (and tags) selected by an exec.go mask.
func applyMaskTagged(ps pslice, keep []bool) pslice {
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	if n == len(ps.rows) {
		return ps
	}
	out := pslice{rows: make(data.Rows, 0, n), seqs: make([]int64, 0, n)}
	for i, k := range keep {
		if k {
			out.rows = append(out.rows, ps.rows[i])
			out.seqs = append(out.seqs, ps.seqs[i])
		}
	}
	return out
}

// hashPartition routes a key tuple to a partition with FNV-1a — a fixed,
// platform-independent hash, so the partitioning (and therefore every
// intermediate partition layout) is reproducible across runs and builds.
func hashPartition(key string, p int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(p))
}

// lookupCache is the run-scoped shared cache of materialized lookup
// tables and key sets: the first partition to need a table builds it
// under the lock, every later request — from any partition — gets the
// same read-only map.
type lookupCache struct {
	mu     sync.Mutex
	tables map[string]map[string]data.Value
	sets   map[string]map[string]bool
}

func newLookupCache() *lookupCache {
	return &lookupCache{
		tables: make(map[string]map[string]data.Value),
		sets:   make(map[string]map[string]bool),
	}
}

func (c *lookupCache) table(name string, build func(string) (map[string]data.Value, error)) (map[string]data.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tables[name]; ok {
		return t, nil
	}
	t, err := build(name)
	if err != nil {
		return nil, err
	}
	c.tables[name] = t
	return t, nil
}

func (c *lookupCache) set(name string, build func(string) (map[string]bool, error)) (map[string]bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sets[name]; ok {
		return s, nil
	}
	s, err := build(name)
	if err != nil {
		return nil, err
	}
	c.sets[name] = s
	return s, nil
}

// partitionCount resolves the configured partition count; default is the
// number of CPUs.
func (e *Engine) partitionCount() int {
	if e.partitions > 0 {
		return e.partitions
	}
	return runtime.GOMAXPROCS(0)
}

// withLookupCache returns a copy of the engine carrying a fresh run-scoped
// lookup cache. The copy shares the (read-only) bindings and metrics.
func (e *Engine) withLookupCache() *Engine {
	ec := *e
	ec.lookups = newLookupCache()
	return &ec
}

// runParallel evaluates the graph node by node in topological order like
// runMaterialized, but holds every intermediate recordset partitioned and
// executes each activity across P partition workers.
func (e *Engine) runParallel(ctx context.Context, g *workflow.Graph, rm *runMetrics) (*RunResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	p := e.partitionCount()
	ec := e.withLookupCache()
	out := make(map[workflow.NodeID]*pdata, len(order))
	res := &RunResult{
		Targets:  make(map[string]data.Rows),
		NodeRows: make(map[workflow.NodeID]int),
	}
	rowsSoFar := 0
	for _, id := range order {
		n := g.Node(id)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: parallel run cancelled before node %d (%s) after %d rows: %w",
				id, n.Label(), rowsSoFar, err)
		}
		count := 0
		switch n.Kind {
		case workflow.KindRecordset:
			preds := g.Providers(id)
			if len(preds) == 0 {
				var pd *pdata
				if err := e.runNode(ctx, id, n, func() error {
					if err := e.checkFault(ctx, fault.SiteNodeStart, id, n, 0); err != nil {
						return err
					}
					rows, err := ec.scanSource(n)
					if err != nil {
						return err
					}
					if err := e.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
						return err
					}
					pd = scatterRows(rows, p)
					return nil
				}); err != nil {
					return nil, err
				}
				out[id] = pd
				count = pd.total()
			} else {
				// Targets are where the partitioned world ends: merge the
				// provider's partitions back into materialized order. The
				// emit check precedes the Load, so a retried target never
				// loads twice.
				if err := e.runNode(ctx, id, n, func() error {
					if err := e.checkFault(ctx, fault.SiteNodeStart, id, n, 0); err != nil {
						return err
					}
					rows := gather(out[preds[0]])
					rows = ec.projectForTarget(rows, g.Node(preds[0]).Out, n.RS.Schema)
					if err := e.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
						return err
					}
					res.Targets[n.RS.Name] = rows
					count = len(rows)
					if rs, ok := ec.bindings[n.RS.Name]; ok {
						if err := rs.Load(rows); err != nil {
							return fmt.Errorf("engine: loading target %s: %w", n.RS.Name, err)
						}
					}
					return nil
				}); err != nil {
					return nil, err
				}
			}
		case workflow.KindActivity:
			var pd *pdata
			if err := e.runNodeJournaled(ctx, id, n, rm, func() int { return pd.total() }, func() error {
				if err := e.checkFault(ctx, fault.SiteNodeStart, id, n, 0); err != nil {
					return err
				}
				sp := rm.nodeSpan(id)
				var err error
				pd, err = ec.execParallel(ctx, g, id, n, out, p, rm, rowsSoFar)
				sp.End()
				if err != nil {
					return err
				}
				// Per-partition emit checks mirror forEachPartition's
				// no-short-circuit rule: every partition's occurrence is
				// consumed even after one fires, so the plan's schedule is
				// independent of which partition fails first.
				var emitErr error
				if e.faults != nil {
					for q := 0; q < p; q++ {
						if ferr := e.checkFault(ctx, fault.SiteEmit, id, n, q); ferr != nil && emitErr == nil {
							emitErr = ferr
						}
					}
				}
				return emitErr
			}); err != nil {
				return nil, err
			}
			out[id] = pd
			count = pd.total()
			for q, ps := range pd.parts {
				rm.partRow(id, q).Add(int64(len(ps.rows)))
				rm.batchEvent(id, q, len(ps.rows))
			}
		}
		res.NodeRows[id] = count
		rowsSoFar += count
		rm.rows(id).Add(int64(count))
	}
	return res, nil
}

// forEachPartition runs fn(p) for every partition on its own goroutine,
// observing per-partition busy time. A context already cancelled when a
// partition starts yields the parallel cancellation error (node, partition
// and progress identified); otherwise the lowest-indexed partition error
// wins, deterministically.
func (e *Engine) forEachPartition(ctx context.Context, id workflow.NodeID, n *workflow.Node, p int, rm *runMetrics, rowsSoFar int, fn func(q int) error) error {
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for q := 0; q < p; q++ {
		go func(q int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[q] = fmt.Errorf("engine: parallel run cancelled at node %d (%s) partition %d after %d rows: %w",
					id, n.Label(), q, rowsSoFar, err)
				return
			}
			start := time.Now()
			if e.pprofLabels {
				// Tag the partition worker so CPU profiles attribute samples
				// to the node and partition that burned them.
				pprof.Do(ctx, pprof.Labels(
					"etl", "engine",
					"etl_node", n.Label(),
					"etl_partition", strconv.Itoa(q),
				), func(context.Context) {
					errs[q] = fn(q)
				})
			} else {
				errs[q] = fn(q)
			}
			rm.busy(q).Add(time.Since(start).Seconds())
		}(q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exchangeByKey repartitions pd so that every row whose key tuple hashes
// to partition q lands in partition q, preserving tag order within each
// destination. Rows routed are counted on the node's exchange series.
func (e *Engine) exchangeByKey(ctx context.Context, id workflow.NodeID, n *workflow.Node, pd *pdata, p int, rm *runMetrics, rowsSoFar int, keyOf func(data.Record) string) (*pdata, error) {
	if p == 1 {
		// A single partition already co-locates every key; nothing routes.
		return pd, nil
	}
	// Phase 1, partition-parallel: each source partition deals its rows
	// into per-destination buckets; buckets inherit ascending tags.
	buckets := make([][]pslice, p) // [src][dst]
	err := e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, func(q int) error {
		if err := e.checkFault(ctx, fault.SiteExchange, id, n, q); err != nil {
			return err
		}
		dst := make([]pslice, p)
		ps := pd.parts[q]
		for i, r := range ps.rows {
			d := hashPartition(keyOf(r), p)
			dst[d].rows = append(dst[d].rows, r)
			dst[d].seqs = append(dst[d].seqs, ps.seqs[i])
		}
		buckets[q] = dst
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2, partition-parallel: each destination merges its p source
	// buckets by tag, restoring invariant 1.
	result := newPdata(p)
	err = e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, func(q int) error {
		mine := make([]pslice, p)
		for src := 0; src < p; src++ {
			mine[src] = buckets[src][q]
		}
		result.parts[q] = mergeBySeq(mine)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rm.exchange(id).Add(int64(pd.total()))
	rm.exchangeEvent(id, pd.total())
	return result, nil
}

// execParallel runs one activity over partitioned inputs. Cancellation
// errors pass through already annotated; any other failure is wrapped
// with the activity's identity like the materialized path.
func (e *Engine) execParallel(ctx context.Context, g *workflow.Graph, id workflow.NodeID, n *workflow.Node, out map[workflow.NodeID]*pdata, p int, rm *runMetrics, rowsSoFar int) (*pdata, error) {
	preds := g.Providers(id)
	// Align every input to the node's derived input layout up front, so
	// key resolution and per-partition execution see n.In[i] layouts.
	inputs := make([]*pdata, len(preds))
	for i, pr := range preds {
		inputs[i] = realignPdata(out[pr], g.Node(pr).Out, n.In[i])
	}
	pd, err := e.execParallelOp(ctx, id, n, inputs, p, rm, rowsSoFar)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("engine: activity %d (%s): %w", id, n.Label(), err)
	}
	return pd, nil
}

func (e *Engine) execParallelOp(ctx context.Context, id workflow.NodeID, n *workflow.Node, inputs []*pdata, p int, rm *runMetrics, rowsSoFar int) (*pdata, error) {
	a := n.Act
	run := func(fn func(q int) error) error {
		return e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, fn)
	}
	if streamable(a) {
		// Order-preserving unaries run partition-locally; survivors keep
		// their tags, 1:1 transforms inherit them.
		in := inputs[0]
		result := newPdata(p)
		err := run(func(q int) error {
			ps, err := e.execLocal(a, n.In[0], n.Out, in.parts[q])
			if err != nil {
				return err
			}
			result.parts[q] = ps
			return nil
		})
		return result, err
	}
	switch a.Sem.Op {
	case workflow.OpDistinct:
		// All copies of a record must meet: exchange by full record key.
		ex, err := e.exchangeByKey(ctx, id, n, inputs[0], p, rm, rowsSoFar, data.Record.Key)
		if err != nil {
			return nil, err
		}
		result := newPdata(p)
		err = run(func(q int) error {
			result.parts[q] = applyMaskTagged(ex.parts[q], maskDistinct(ex.parts[q].rows))
			return nil
		})
		return result, err
	case workflow.OpPKCheck: // group-based; lookup-based is streamable
		keyOf, err := rowKeyFn(n.In[0], a.Sem.Attrs, "pkcheck")
		if err != nil {
			return nil, err
		}
		ex, err := e.exchangeByKey(ctx, id, n, inputs[0], p, rm, rowsSoFar, keyOf)
		if err != nil {
			return nil, err
		}
		result := newPdata(p)
		err = run(func(q int) error {
			keep, err := maskPKCheckGroup(a, n.In[0], ex.parts[q].rows)
			if err != nil {
				return err
			}
			result.parts[q] = applyMaskTagged(ex.parts[q], keep)
			return nil
		})
		return result, err
	case workflow.OpAggregate:
		keyOf, err := rowKeyFn(n.In[0], a.Sem.Attrs, "aggregate")
		if err != nil {
			return nil, err
		}
		ex, err := e.exchangeByKey(ctx, id, n, inputs[0], p, rm, rowsSoFar, keyOf)
		if err != nil {
			return nil, err
		}
		result := newPdata(p)
		err = run(func(q int) error {
			rows, err := e.execAggregate(a, n.In[0], n.Out, ex.parts[q].rows)
			if err != nil {
				return err
			}
			// Each group's output row adopts the tag of the group's first
			// input row; with a group's rows co-located that is its global
			// first occurrence, so the merge restores first-seen order.
			result.parts[q] = pslice{rows: rows, seqs: firstSeenSeqs(ex.parts[q], keyOf)}
			return nil
		})
		return result, err
	case workflow.OpMerged:
		// A merged package with a blocking component can't split: run it
		// whole on merged rows and re-scatter.
		rows, err := e.execMerged(a, n.In[0], gather(inputs[0]))
		if err != nil {
			return nil, err
		}
		return scatterRows(rows, p), nil
	case workflow.OpUnion:
		return e.parUnion(ctx, id, n, inputs, p, rm, rowsSoFar)
	case workflow.OpJoin:
		return e.parJoin(ctx, id, n, inputs, p, rm, rowsSoFar)
	case workflow.OpDiff:
		return e.parKeyPresence(ctx, id, n, inputs, p, rm, rowsSoFar, false)
	case workflow.OpIntersect:
		return e.parKeyPresence(ctx, id, n, inputs, p, rm, rowsSoFar, true)
	default:
		return nil, fmt.Errorf("unsupported operation %s", a.Sem.Op)
	}
}

// execLocal runs one order-preserving activity on a single partition,
// carrying tags through: filters keep survivor tags, 1:1 transforms keep
// all tags, merged packages thread both through their components.
func (e *Engine) execLocal(a *workflow.Activity, in, out data.Schema, ps pslice) (pslice, error) {
	switch a.Sem.Op {
	case workflow.OpFilter:
		keep, err := maskFilter(a, in, ps.rows)
		if err != nil {
			return pslice{}, err
		}
		return applyMaskTagged(ps, keep), nil
	case workflow.OpNotNull:
		keep, err := maskNotNull(a, in, ps.rows)
		if err != nil {
			return pslice{}, err
		}
		return applyMaskTagged(ps, keep), nil
	case workflow.OpPKCheck:
		keep, err := e.maskPKCheckLookup(a, in, ps.rows)
		if err != nil {
			return pslice{}, err
		}
		return applyMaskTagged(ps, keep), nil
	case workflow.OpProject, workflow.OpFunc, workflow.OpSurrogateKey:
		rows, err := e.execSem(a, []data.Schema{in}, out, []data.Schema{in}, []data.Rows{ps.rows})
		if err != nil {
			return pslice{}, err
		}
		return pslice{rows: rows, seqs: ps.seqs}, nil
	case workflow.OpMerged:
		cur := ps
		curSchema := in
		for _, comp := range a.Sem.Components {
			outSchema, err := componentOutput(comp, curSchema)
			if err != nil {
				return pslice{}, err
			}
			cur, err = e.execLocal(comp, curSchema, outSchema, cur)
			if err != nil {
				return pslice{}, fmt.Errorf("merged component %s: %w", comp.Sem, err)
			}
			curSchema = outSchema
		}
		return cur, nil
	default:
		return pslice{}, fmt.Errorf("internal error: %s is not partition-local", a.Sem.Op)
	}
}

// firstSeenSeqs returns, in first-seen key order, the tag of each key
// group's first row — index-aligned with execAggregate's output, which
// assigns group output slots in the same first-seen scan order.
func firstSeenSeqs(ps pslice, keyOf func(data.Record) string) []int64 {
	seen := make(map[string]bool)
	var tags []int64
	for i, r := range ps.rows {
		k := keyOf(r)
		if !seen[k] {
			seen[k] = true
			tags = append(tags, ps.seqs[i])
		}
	}
	return tags
}

// parUnion concatenates the inputs partition-wise: left rows keep their
// tags, right tags are shifted past the left input's global maximum, so
// the merged order is all left rows then all right rows — the
// materialized union order.
func (e *Engine) parUnion(ctx context.Context, id workflow.NodeID, n *workflow.Node, inputs []*pdata, p int, rm *runMetrics, rowsSoFar int) (*pdata, error) {
	l, r := inputs[0], inputs[1]
	offset := l.maxSeq() + 1
	result := newPdata(p)
	err := e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, func(q int) error {
		lp, rp := l.parts[q], r.parts[q]
		rows := make(data.Rows, 0, len(lp.rows)+len(rp.rows))
		rows = append(rows, realign(lp.rows, n.In[0], n.Out)...)
		rows = append(rows, realign(rp.rows, n.In[1], n.Out)...)
		seqs := make([]int64, 0, len(rows))
		seqs = append(seqs, lp.seqs...)
		for _, s := range rp.seqs {
			seqs = append(seqs, s+offset)
		}
		result.parts[q] = pslice{rows: rows, seqs: seqs}
		return nil
	})
	return result, err
}

// parJoin exchanges both inputs by the join key so matching pairs are
// co-located, joins each partition in nested-loop order, then k-way
// merges the partitions by (left tag, right tag) — the exact materialized
// join order — and re-scatters the merged rows with fresh tags.
func (e *Engine) parJoin(ctx context.Context, id workflow.NodeID, n *workflow.Node, inputs []*pdata, p int, rm *runMetrics, rowsSoFar int) (*pdata, error) {
	a := n.Act
	leftKeyOf, err := rowKeyFn(n.In[0], a.Sem.Attrs, "join")
	if err != nil {
		return nil, err
	}
	rightKeyOf, err := rowKeyFn(n.In[1], a.Sem.Attrs, "join")
	if err != nil {
		return nil, err
	}
	lex, err := e.exchangeByKey(ctx, id, n, inputs[0], p, rm, rowsSoFar, leftKeyOf)
	if err != nil {
		return nil, err
	}
	rex, err := e.exchangeByKey(ctx, id, n, inputs[1], p, rm, rowsSoFar, rightKeyOf)
	if err != nil {
		return nil, err
	}
	jl := newJoinLayout(n.Out, n.In[0], n.In[1])
	type joined struct {
		rows data.Rows
		l, r []int64
	}
	per := make([]joined, p)
	err = e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, func(q int) error {
		type tagged struct {
			rec data.Record
			seq int64
		}
		index := make(map[string][]tagged)
		rp := rex.parts[q]
		for i, r := range rp.rows {
			k := rightKeyOf(r)
			index[k] = append(index[k], tagged{r, rp.seqs[i]})
		}
		var out joined
		lp := lex.parts[q]
		for i, l := range lp.rows {
			for _, m := range index[leftKeyOf(l)] {
				out.rows = append(out.rows, jl.row(l, m.rec))
				out.l = append(out.l, lp.seqs[i])
				out.r = append(out.r, m.seq)
			}
		}
		per[q] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Per-partition outputs are sorted by (left, right) tag already —
	// left rows were visited in tag order, matches in right tag order —
	// so a k-way merge on the pair yields the global nested-loop order.
	total := 0
	for _, j := range per {
		total += len(j.rows)
	}
	merged := make(data.Rows, 0, total)
	heads := make([]int, p)
	for len(merged) < total {
		best := -1
		for q := 0; q < p; q++ {
			if heads[q] >= len(per[q].rows) {
				continue
			}
			if best < 0 ||
				per[q].l[heads[q]] < per[best].l[heads[best]] ||
				(per[q].l[heads[q]] == per[best].l[heads[best]] && per[q].r[heads[q]] < per[best].r[heads[best]]) {
				best = q
			}
		}
		merged = append(merged, per[best].rows[heads[best]])
		heads[best]++
	}
	return scatterRows(merged, p), nil
}

// parKeyPresence is the shared parallel body of difference (keepPresent
// false) and intersection (true): exchange both sides by key tuple, mask
// each left partition against its co-located right rows, keep left tags.
func (e *Engine) parKeyPresence(ctx context.Context, id workflow.NodeID, n *workflow.Node, inputs []*pdata, p int, rm *runMetrics, rowsSoFar int, keepPresent bool) (*pdata, error) {
	a := n.Act
	leftKeyOf, err := rowKeyFn(n.In[0], a.Sem.Attrs, a.Sem.Op.String())
	if err != nil {
		return nil, err
	}
	rightKeyOf, err := rowKeyFn(n.In[1], a.Sem.Attrs, a.Sem.Op.String())
	if err != nil {
		return nil, err
	}
	lex, err := e.exchangeByKey(ctx, id, n, inputs[0], p, rm, rowsSoFar, leftKeyOf)
	if err != nil {
		return nil, err
	}
	rex, err := e.exchangeByKey(ctx, id, n, inputs[1], p, rm, rowsSoFar, rightKeyOf)
	if err != nil {
		return nil, err
	}
	result := newPdata(p)
	err = e.forEachPartition(ctx, id, n, p, rm, rowsSoFar, func(q int) error {
		keep, err := maskKeyPresence(a, []data.Schema{n.In[0], n.In[1]}, lex.parts[q].rows, rex.parts[q].rows, keepPresent)
		if err != nil {
			return err
		}
		result.parts[q] = applyMaskTagged(lex.parts[q], keep)
		return nil
	})
	return result, err
}
