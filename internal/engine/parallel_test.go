package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/generator"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// rowsIdentical reports bit-identity: same rows, same order, same values.
// This is deliberately stricter than EqualMultiset — Parallel mode
// promises the materialized row order, not just the multiset.
func rowsIdentical(a, b data.Rows) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Key() != b[i][j].Key() {
				return false
			}
		}
	}
	return true
}

// TestParallelMatchesMaterialized is the mode's core contract: for
// generated scenarios across all three size categories, every target is
// byte-identical to the materialized run at P ∈ {1, 2, 4, 8}, and the
// per-node row counts agree.
func TestParallelMatchesMaterialized(t *testing.T) {
	cats := []generator.Category{generator.Small, generator.Medium, generator.Large}
	for _, cat := range cats {
		for seed := int64(0); seed < 4; seed++ {
			sc, err := generator.Generate(generator.CategoryConfig(cat, 7100+seed))
			if err != nil {
				t.Fatal(err)
			}
			mat, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatalf("cat %v seed %d materialized: %v", cat, seed, err)
			}
			for _, p := range []int{1, 2, 4, 8} {
				par, err := New(sc.Bind(), WithMode(Parallel), WithPartitions(p)).Run(context.Background(), sc.Graph)
				if err != nil {
					t.Fatalf("cat %v seed %d P=%d: %v", cat, seed, p, err)
				}
				for name, want := range mat.Targets {
					if !rowsIdentical(want, par.Targets[name]) {
						t.Errorf("cat %v seed %d P=%d: target %s not bit-identical to materialized",
							cat, seed, p, name)
					}
				}
				for id, want := range mat.NodeRows {
					if got := par.NodeRows[id]; got != want {
						t.Errorf("cat %v seed %d P=%d: node %d rows = %d, want %d",
							cat, seed, p, id, got, want)
					}
				}
			}
		}
	}
}

// TestParallelCancelNamesPartition verifies the partition-worker
// cancellation contract: the error wraps ctx.Err() and identifies the
// node and the partition index.
func TestParallelCancelNamesPartition(t *testing.T) {
	sc := templates.Fig1Scenario(40, 120)
	e := New(sc.Bind(), WithMode(Parallel), WithPartitions(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var id workflow.NodeID
	for _, nid := range sc.Graph.Nodes() {
		if sc.Graph.Node(nid).Kind == workflow.KindActivity {
			id = nid
			break
		}
	}
	n := sc.Graph.Node(id)
	err := e.forEachPartition(ctx, id, n, 4, nil, 17, func(q int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	msg := err.Error()
	for _, want := range []string{"parallel run cancelled", "partition 0", "after 17 rows", n.Label()} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestForEachPartitionFirstErrorWins verifies deterministic error
// selection: the lowest-indexed failing partition's error is returned
// regardless of goroutine scheduling.
func TestForEachPartitionFirstErrorWins(t *testing.T) {
	sc := templates.Fig1Scenario(10, 30)
	e := New(sc.Bind())
	id := sc.Graph.Nodes()[0]
	n := sc.Graph.Node(id)
	for i := 0; i < 20; i++ {
		err := e.forEachPartition(context.Background(), id, n, 8, nil, 0, func(q int) error {
			if q >= 3 {
				return errors.New("boom " + string(rune('0'+q)))
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("err = %v, want boom 3", err)
		}
	}
}

// TestParallelSharedLookupCache verifies the run-scoped cache: with 8
// partitions all consulting a surrogate-key lookup, the lookup recordset
// is scanned exactly once per run, and the engine value itself stays
// reusable (a second run scans once more, not zero — the cache is per
// run, not per engine).
func TestParallelSharedLookupCache(t *testing.T) {
	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, 4242))
	if err != nil {
		t.Fatal(err)
	}
	bindings := sc.Bind()
	scans := make(map[string]*int)
	for name := range sc.Lookups {
		n := new(int)
		bindings[name] = countingRecordset{Recordset: bindings[name], scans: n}
		scans[name] = n
	}
	if len(scans) == 0 {
		t.Fatal("scenario has no lookups to count")
	}
	e := New(bindings, WithMode(Parallel), WithPartitions(8))
	if _, err := e.Run(context.Background(), sc.Graph); err != nil {
		t.Fatal(err)
	}
	before := make(map[string]int)
	for name, n := range scans {
		if *n > 1 {
			t.Errorf("lookup %s scanned %d times in one parallel run, want at most 1", name, *n)
		}
		before[name] = *n
	}
	if _, err := e.Run(context.Background(), sc.Graph); err != nil {
		t.Fatal(err)
	}
	for name, n := range scans {
		if *n != 2*before[name] {
			t.Errorf("lookup %s: second run reused the first run's cache (scans %d → %d)",
				name, before[name], *n)
		}
	}
}

// TestPartitionCount covers the default and the option.
func TestPartitionCount(t *testing.T) {
	if got := New(nil).partitionCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default partitionCount = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(nil, WithPartitions(5)).partitionCount(); got != 5 {
		t.Errorf("partitionCount = %d, want 5", got)
	}
	if got := New(nil, WithPartitions(0)).partitionCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("WithPartitions(0) should keep the default, got %d", got)
	}
}

// TestScatterExchangeGatherRoundTrip covers the tag machinery directly:
// scatter establishes the invariants, an exchange by any key preserves
// them, and gather restores the original order.
func TestScatterExchangeGatherRoundTrip(t *testing.T) {
	rows := make(data.Rows, 97)
	for i := range rows {
		rows[i] = data.Record{data.NewInt(int64(i % 7)), data.NewInt(int64(i))}
	}
	sc := templates.Fig1Scenario(10, 30)
	e := New(sc.Bind())
	id := sc.Graph.Nodes()[0]
	n := sc.Graph.Node(id)
	for _, p := range []int{1, 2, 3, 8, 97, 200} {
		pd := scatterRows(rows, p)
		if got := pd.total(); got != len(rows) {
			t.Fatalf("P=%d: scatter lost rows: %d != %d", p, got, len(rows))
		}
		if !rowsIdentical(gather(pd), rows) {
			t.Fatalf("P=%d: gather(scatter(rows)) != rows", p)
		}
		ex, err := e.exchangeByKey(context.Background(), id, n, pd, p, nil, 0,
			func(r data.Record) string { return r[0].Key() })
		if err != nil {
			t.Fatal(err)
		}
		// Every row with the same key must land in the same partition.
		where := map[string]int{}
		for q, ps := range ex.parts {
			for i, r := range ps.rows {
				k := r[0].Key()
				if prev, ok := where[k]; ok && prev != q {
					t.Fatalf("P=%d: key %s split across partitions %d and %d", p, k, prev, q)
				}
				where[k] = q
				if i > 0 && ps.seqs[i] <= ps.seqs[i-1] {
					t.Fatalf("P=%d partition %d: tags not strictly increasing", p, q)
				}
			}
		}
		if !rowsIdentical(gather(ex), rows) {
			t.Fatalf("P=%d: gather(exchange(rows)) != rows", p)
		}
	}
}
