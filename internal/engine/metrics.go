package engine

import (
	"fmt"

	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// WithMetrics attaches an observability registry to the engine: each run
// then reports per-activity input/output row counts, stage latencies,
// observed-vs-modeled selectivities and (in pipelined mode) backpressure
// waits. Collection is write-only — the engine never reads an instrument
// back — so execution results are identical with metrics on or off. A nil
// registry leaves collection disabled (the default).
func WithMetrics(r *obs.Registry) Option { return func(e *Engine) { e.metrics = r } }

// runMetrics carries the per-node instrument handles of one run,
// prefetched before execution so hot paths never touch the registry's
// mutex. A nil *runMetrics (metrics disabled) makes every accessor return
// a nil handle, which no-ops.
type runMetrics struct {
	rowsOut      map[workflow.NodeID]*obs.Counter   // engine_rows_out_total{node}
	nodeSec      map[workflow.NodeID]*obs.Histogram // engine_node_seconds{node}
	backpressure map[workflow.NodeID]*obs.Counter   // engine_backpressure_waits_total{node}

	// Parallel-mode series, allocated only when partitions > 0.
	partRows  map[workflow.NodeID][]*obs.Counter // engine_partition_rows_out_total{node,partition}
	partBusy  []*obs.Gauge                       // engine_partition_busy_seconds{partition}
	exchanged map[workflow.NodeID]*obs.Counter   // engine_exchange_rows_total{node}
}

// nodeKey renders the per-node metric label: the node ID plus its
// human-readable label, e.g. "7:σ(COST>=100)".
func nodeKey(id workflow.NodeID, n *workflow.Node) string {
	return fmt.Sprintf("%d:%s", id, n.Label())
}

// newRunMetrics prefetches handles for every node of the graph; nil when
// the engine has no registry. partitions > 0 (Parallel mode) additionally
// prefetches the per-partition and exchange series.
func (e *Engine) newRunMetrics(g *workflow.Graph, partitions int) *runMetrics {
	if e.metrics == nil {
		return nil
	}
	m := &runMetrics{
		rowsOut:      make(map[workflow.NodeID]*obs.Counter),
		nodeSec:      make(map[workflow.NodeID]*obs.Histogram),
		backpressure: make(map[workflow.NodeID]*obs.Counter),
	}
	if partitions > 0 {
		m.partRows = make(map[workflow.NodeID][]*obs.Counter)
		m.partBusy = make([]*obs.Gauge, partitions)
		m.exchanged = make(map[workflow.NodeID]*obs.Counter)
		for p := 0; p < partitions; p++ {
			m.partBusy[p] = e.metrics.Gauge("engine_partition_busy_seconds", "partition", fmt.Sprint(p))
		}
	}
	for _, id := range g.Nodes() {
		key := nodeKey(id, g.Node(id))
		m.rowsOut[id] = e.metrics.Counter("engine_rows_out_total", "node", key)
		m.backpressure[id] = e.metrics.Counter("engine_backpressure_waits_total", "node", key)
		if g.Node(id).Kind == workflow.KindActivity {
			m.nodeSec[id] = e.metrics.Histogram("engine_node_seconds", nil, "node", key)
		}
		if partitions > 0 {
			handles := make([]*obs.Counter, partitions)
			for p := 0; p < partitions; p++ {
				handles[p] = e.metrics.Counter("engine_partition_rows_out_total",
					"node", key, "partition", fmt.Sprint(p))
			}
			m.partRows[id] = handles
			if g.Node(id).Kind == workflow.KindActivity {
				m.exchanged[id] = e.metrics.Counter("engine_exchange_rows_total", "node", key)
			}
		}
	}
	return m
}

// The accessors below are safe on a nil receiver and safe for concurrent
// use after newRunMetrics returns (the maps are read-only from then on).

func (m *runMetrics) rows(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.rowsOut[id]
}

func (m *runMetrics) latency(id workflow.NodeID) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.nodeSec[id]
}

func (m *runMetrics) stall(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.backpressure[id]
}

// partRow returns the rows-out counter of one partition of a node; nil
// when metrics or parallel-mode series are disabled.
func (m *runMetrics) partRow(id workflow.NodeID, p int) *obs.Counter {
	if m == nil || m.partRows == nil {
		return nil
	}
	if hs := m.partRows[id]; p < len(hs) {
		return hs[p]
	}
	return nil
}

// busy returns the busy-seconds gauge of one partition worker.
func (m *runMetrics) busy(p int) *obs.Gauge {
	if m == nil || p >= len(m.partBusy) {
		return nil
	}
	return m.partBusy[p]
}

// exchange returns the exchanged-rows counter of a node.
func (m *runMetrics) exchange(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.exchanged[id]
}

// recordRun exports a completed run's whole-run series: the run counter
// and latency by mode, the per-node emitted-row counts (materialized mode
// fills them here; pipelined mode already streamed them), and the
// observed-vs-modeled selectivity gauges — the empirical check of the §5
// cost model's central parameter.
func (e *Engine) recordRun(g *workflow.Graph, res *RunResult, modeName string) {
	if e.metrics == nil {
		return
	}
	e.metrics.Counter("engine_runs_total", "mode", modeName).Inc()
	e.metrics.Histogram("engine_run_seconds", nil, "mode", modeName).Observe(res.Elapsed.Seconds())
	// Observed selectivity uses the cost model's own formulas (see
	// cost.Calibrate / cost.SelectivityDeltas): out/in for unaries,
	// out/(in₁·in₂) for joins; unions carry no selectivity, and activities
	// with empty or unrecorded inputs offer no evidence.
	order, err := g.TopoSort()
	if err != nil {
		return
	}
	for _, id := range order {
		n := g.Node(id)
		if n.Kind != workflow.KindActivity || n.Act.Sem.Op == workflow.OpUnion {
			continue
		}
		rows, ok := res.NodeRows[id]
		if !ok {
			continue
		}
		preds := g.Providers(id)
		denom := 1.0
		evidence := len(preds) > 0
		for i, p := range preds {
			r, ok := res.NodeRows[p]
			if !ok || r == 0 {
				evidence = false
				break
			}
			if i == 0 || n.Act.Sem.Op == workflow.OpJoin {
				denom *= float64(r)
			}
		}
		if !evidence {
			continue
		}
		key := nodeKey(id, n)
		e.metrics.Gauge("engine_selectivity_observed", "node", key).Set(float64(rows) / denom)
		e.metrics.Gauge("engine_selectivity_modeled", "node", key).Set(n.Act.Sel)
	}
}
