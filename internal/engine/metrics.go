package engine

import (
	"fmt"

	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// WithMetrics attaches an observability registry to the engine: each run
// then reports per-activity input/output row counts, stage latencies,
// observed-vs-modeled selectivities and (in pipelined mode) backpressure
// waits. Collection is write-only — the engine never reads an instrument
// back — so execution results are identical with metrics on or off. A nil
// registry leaves collection disabled (the default).
func WithMetrics(r *obs.Registry) Option { return func(e *Engine) { e.metrics = r } }

// WithJournal attaches a flight-recorder journal: each run then emits
// typed events (run boundaries, per-node row counts and wall times,
// per-partition batch sizes, repartition exchanges, selectivity drift)
// into the journal's bounded stream. Like the metrics registry, the
// journal is write-only and non-blocking, so execution results are
// bit-identical with journaling on or off (pinned by
// TestJournalDoesNotAffectExecution). A nil journal disables emission.
func WithJournal(j *obs.Journal) Option { return func(e *Engine) { e.journal = j } }

// WithPprofLabels tags Parallel mode's partition workers with
// runtime/pprof labels (etl=engine, etl_node, etl_partition), so CPU
// profiles attribute samples to the node and partition that burned them.
func WithPprofLabels() Option { return func(e *Engine) { e.pprofLabels = true } }

// runMetrics carries the per-node instrument handles of one run,
// prefetched before execution so hot paths never touch the registry's
// mutex, plus the run's journal handle and node-key cache. A nil
// *runMetrics (metrics and journal both disabled) makes every accessor
// return a nil handle, which no-ops.
type runMetrics struct {
	rowsOut      map[workflow.NodeID]*obs.Counter   // engine_rows_out_total{node}
	nodeSec      map[workflow.NodeID]*obs.Histogram // engine_node_seconds{node}
	backpressure map[workflow.NodeID]*obs.Counter   // engine_backpressure_waits_total{node}

	// Parallel-mode series, allocated only when partitions > 0.
	partRows  map[workflow.NodeID][]*obs.Counter // engine_partition_rows_out_total{node,partition}
	partBusy  []*obs.Gauge                       // engine_partition_busy_seconds{partition}
	exchanged map[workflow.NodeID]*obs.Counter   // engine_exchange_rows_total{node}

	// j is the run's flight recorder (nil: journaling off); keys caches
	// each node's metric label so journal emission never re-renders it.
	j    *obs.Journal
	keys map[workflow.NodeID]string
	// span is the run's mode span; per-node spans child from it so the
	// trace export shows node execution nested under the run.
	span *obs.Span
}

// nodeKey renders the per-node metric label: the node ID plus its
// human-readable label, e.g. "7:σ(COST>=100)".
func nodeKey(id workflow.NodeID, n *workflow.Node) string {
	return fmt.Sprintf("%d:%s", id, n.Label())
}

// newRunMetrics prefetches handles for every node of the graph; nil when
// the engine has neither a registry nor a journal. partitions > 0
// (Parallel mode) additionally prefetches the per-partition and exchange
// series. With a journal but no registry every instrument handle is nil
// (the nil registry hands out nil handles) and only the journal side is
// live.
func (e *Engine) newRunMetrics(g *workflow.Graph, partitions int) *runMetrics {
	if e.metrics == nil && e.journal == nil {
		return nil
	}
	m := &runMetrics{
		rowsOut:      make(map[workflow.NodeID]*obs.Counter),
		nodeSec:      make(map[workflow.NodeID]*obs.Histogram),
		backpressure: make(map[workflow.NodeID]*obs.Counter),
		j:            e.journal,
		keys:         make(map[workflow.NodeID]string),
	}
	if partitions > 0 {
		m.partRows = make(map[workflow.NodeID][]*obs.Counter)
		m.partBusy = make([]*obs.Gauge, partitions)
		m.exchanged = make(map[workflow.NodeID]*obs.Counter)
		for p := 0; p < partitions; p++ {
			m.partBusy[p] = e.metrics.Gauge("engine_partition_busy_seconds", "partition", fmt.Sprint(p))
		}
	}
	for _, id := range g.Nodes() {
		key := nodeKey(id, g.Node(id))
		m.keys[id] = key
		m.rowsOut[id] = e.metrics.Counter("engine_rows_out_total", "node", key)
		m.backpressure[id] = e.metrics.Counter("engine_backpressure_waits_total", "node", key)
		if g.Node(id).Kind == workflow.KindActivity {
			m.nodeSec[id] = e.metrics.Histogram("engine_node_seconds", nil, "node", key)
		}
		if partitions > 0 {
			handles := make([]*obs.Counter, partitions)
			for p := 0; p < partitions; p++ {
				handles[p] = e.metrics.Counter("engine_partition_rows_out_total",
					"node", key, "partition", fmt.Sprint(p))
			}
			m.partRows[id] = handles
			if g.Node(id).Kind == workflow.KindActivity {
				m.exchanged[id] = e.metrics.Counter("engine_exchange_rows_total", "node", key)
			}
		}
	}
	return m
}

// The accessors below are safe on a nil receiver and safe for concurrent
// use after newRunMetrics returns (the maps are read-only from then on).

func (m *runMetrics) rows(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.rowsOut[id]
}

func (m *runMetrics) latency(id workflow.NodeID) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.nodeSec[id]
}

func (m *runMetrics) stall(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.backpressure[id]
}

// partRow returns the rows-out counter of one partition of a node; nil
// when metrics or parallel-mode series are disabled.
func (m *runMetrics) partRow(id workflow.NodeID, p int) *obs.Counter {
	if m == nil || m.partRows == nil {
		return nil
	}
	if hs := m.partRows[id]; p < len(hs) {
		return hs[p]
	}
	return nil
}

// busy returns the busy-seconds gauge of one partition worker.
func (m *runMetrics) busy(p int) *obs.Gauge {
	if m == nil || p >= len(m.partBusy) {
		return nil
	}
	return m.partBusy[p]
}

// exchange returns the exchanged-rows counter of a node.
func (m *runMetrics) exchange(id workflow.NodeID) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.exchanged[id]
}

// journaling reports whether per-event journal emission is live.
func (m *runMetrics) journaling() bool { return m != nil && m.j != nil }

// spanning reports whether per-node child spans are live.
func (m *runMetrics) spanning() bool { return m != nil && m.span != nil }

// setSpan installs the run's mode span (nil-safe).
func (m *runMetrics) setSpan(sp *obs.Span) {
	if m != nil {
		m.span = sp
	}
}

// nodeSpan opens a per-node child span under the mode span; nil (no-op
// End) when spans are disabled.
func (m *runMetrics) nodeSpan(id workflow.NodeID) *obs.Span {
	if m == nil || m.span == nil {
		return nil
	}
	return m.span.Child("node/" + m.keys[id])
}

// nodeEvent journals one node's completed execution: rows emitted and
// wall time spent.
func (m *runMetrics) nodeEvent(id workflow.NodeID, rows int, sec float64) {
	if m.journaling() {
		m.j.Emit(obs.NodeEvent(m.keys[id], rows, sec))
	}
}

// batchEvent journals the rows one partition of a node emitted.
func (m *runMetrics) batchEvent(id workflow.NodeID, part, rows int) {
	if m.journaling() {
		m.j.Emit(obs.BatchEvent(m.keys[id], part, rows))
	}
}

// exchangeEvent journals a repartition exchange routing rows rows.
func (m *runMetrics) exchangeEvent(id workflow.NodeID, rows int) {
	if m.journaling() {
		m.j.Emit(obs.ExchangeEvent(m.keys[id], rows))
	}
}

// recordRun exports a completed run's whole-run series: the run counter
// and latency by mode, the per-node emitted-row counts (materialized mode
// fills them here; pipelined mode already streamed them), and the
// observed-vs-modeled selectivity gauges — the empirical check of the §5
// cost model's central parameter. With a journal attached each
// selectivity observation is also emitted as a drift event, so the
// flight-recorder report can rank activities by model error.
func (e *Engine) recordRun(g *workflow.Graph, res *RunResult, modeName string) {
	if e.metrics == nil && e.journal == nil {
		return
	}
	e.metrics.Counter("engine_runs_total", "mode", modeName).Inc()
	e.metrics.Histogram("engine_run_seconds", nil, "mode", modeName).Observe(res.Elapsed.Seconds())
	// Observed selectivity uses the cost model's own formulas (see
	// cost.Calibrate / cost.SelectivityDeltas): out/in for unaries,
	// out/(in₁·in₂) for joins; unions carry no selectivity, and activities
	// with empty or unrecorded inputs offer no evidence.
	order, err := g.TopoSort()
	if err != nil {
		return
	}
	for _, id := range order {
		n := g.Node(id)
		if n.Kind != workflow.KindActivity || n.Act.Sem.Op == workflow.OpUnion {
			continue
		}
		rows, ok := res.NodeRows[id]
		if !ok {
			continue
		}
		preds := g.Providers(id)
		denom := 1.0
		evidence := len(preds) > 0
		for i, p := range preds {
			r, ok := res.NodeRows[p]
			if !ok || r == 0 {
				evidence = false
				break
			}
			if i == 0 || n.Act.Sem.Op == workflow.OpJoin {
				denom *= float64(r)
			}
		}
		if !evidence {
			continue
		}
		key := nodeKey(id, n)
		observed := float64(rows) / denom
		e.metrics.Gauge("engine_selectivity_observed", "node", key).Set(observed)
		e.metrics.Gauge("engine_selectivity_modeled", "node", key).Set(n.Act.Sel)
		if e.journal != nil {
			e.journal.Emit(obs.DriftEvent(key, observed, n.Act.Sel))
		}
	}
}
