package engine

import (
	"context"
	"errors"
	"time"

	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// WithFaultPlan arms a deterministic fault-injection plan: the engine
// consults it at node start, per-partition emit, repartition exchange,
// and (through the checkpoint runner) stage/restore. Every fired fault
// is journaled and counted; a nil plan (the default) adds no checks on
// hot paths beyond a nil test.
func WithFaultPlan(p *fault.Plan) Option { return func(e *Engine) { e.faults = p } }

// WithRetry attaches a per-node retry policy: nodes that fail with a
// transient error (notably injected transient faults) are re-run with
// the policy's capped, deterministically jittered backoff. Side effects
// are retry-safe by construction — target loads and checkpoint stages
// happen strictly after a node's last injection point, so a retried node
// never loads or stages twice. The zero policy (the default) disables
// retries.
func WithRetry(p fault.Policy) Option { return func(e *Engine) { e.retry = p } }

// checkFault consults the fault plan at one injection point, journaling
// and counting the fault when it fires. Nil-plan calls are a single
// pointer test.
func (e *Engine) checkFault(ctx context.Context, site fault.Site, id workflow.NodeID, n *workflow.Node, part int) error {
	if e.faults == nil {
		return nil
	}
	err := e.faults.Check(ctx, site, int(id), part)
	if err == nil {
		return nil
	}
	kind := fault.Transient
	var inj *fault.Injected
	if errors.As(err, &inj) {
		kind = inj.Kind
	}
	if e.journal != nil {
		e.journal.Emit(obs.FaultEvent(nodeKey(id, n), part, string(site), kind.String()))
	}
	e.metrics.Counter("engine_faults_injected_total", "site", string(site)).Inc()
	return err
}

// runNode executes one node's body under the engine's retry policy:
// transient failures are re-run within the attempt budget, each retry
// journaled and counted; permanent failures and cancellations surface
// immediately. With retries disabled the body runs exactly once with no
// wrapping overhead.
func (e *Engine) runNode(ctx context.Context, id workflow.NodeID, n *workflow.Node, body func() error) error {
	if !e.retry.Enabled() {
		return body()
	}
	return e.retry.Do(ctx, body, func(attempt int, delay time.Duration, cause error) {
		if e.journal != nil {
			e.journal.Emit(obs.RetryEvent(nodeKey(id, n), attempt, delay.Seconds(), cause.Error()))
		}
		e.metrics.Counter("engine_retries_total", "node", nodeKey(id, n)).Inc()
	})
}

// runNodeJournaled is runNode plus the journal's node event: with a live
// journal the node's wall time — retries included — is measured and one
// node event per completed node is emitted, keeping the journal's
// per-node row counters equal across clean and recovered runs. rows is
// read only after body succeeds.
func (e *Engine) runNodeJournaled(ctx context.Context, id workflow.NodeID, n *workflow.Node, rm *runMetrics, rows func() int, body func() error) error {
	if !rm.journaling() {
		return e.runNode(ctx, id, n, body)
	}
	start := time.Now()
	err := e.runNode(ctx, id, n, body)
	sec := time.Since(start).Seconds()
	if err != nil {
		return err
	}
	rm.nodeEvent(id, rows(), sec)
	return nil
}
