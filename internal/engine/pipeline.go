package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// runPipelined executes the workflow with one goroutine per node, records
// streaming between activities in batches over channels — the paper's
// pipelined combination of activities (§2.1) where providers feed
// consumers directly with no intermediate data store.
//
// Streaming activities (selections, not-null and lookup-based key checks,
// functions, projections, surrogate keys, unions) forward batch by batch;
// blocking activities (aggregations, DISTINCT, group-based key checks,
// joins, differences, intersections) buffer the inputs they need. Binary
// activities always drain their inputs concurrently, which keeps diamonds
// (one provider feeding two converging branches) deadlock-free.
//
// Cancellation rides the same `done` channel that propagates node
// failures: a watcher goroutine records ctx.Err() as the run's error and
// closes done, which unblocks every send, drain and select in the node
// goroutines.
func (e *Engine) runPipelined(ctx context.Context, g *workflow.Graph, rm *runMetrics) (*RunResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}

	// One channel per edge.
	type edge struct{ from, to workflow.NodeID }
	chans := make(map[edge]chan data.Rows)
	for _, id := range order {
		for _, c := range g.Consumers(id) {
			chans[edge{id, c}] = make(chan data.Rows, 4)
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		targets  = make(map[string]data.Rows)
		nodeRows = make(map[workflow.NodeID]int)
		// lastID remembers the most recently emitting node, so a cancelled
		// run can report where it was stopped.
		lastID workflow.NodeID = -1
	)
	done := make(chan struct{})
	var closeOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		closeOnce.Do(func() { close(done) })
	}
	countRows := func(id workflow.NodeID, n int) {
		mu.Lock()
		nodeRows[id] += n
		lastID = id
		mu.Unlock()
		rm.rows(id).Add(int64(n))
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-stop:
		}
	}()

	// send forwards a batch to every consumer channel, aborting on failure.
	send := func(id workflow.NodeID, batch data.Rows) bool {
		if len(batch) == 0 {
			return true
		}
		countRows(id, len(batch))
		for _, c := range g.Consumers(id) {
			ch := chans[edge{id, c}]
			// Backpressure probe: with metrics on, a consumer channel that
			// cannot accept immediately counts one stall for the producer.
			// The probe is skipped entirely when metrics are off, so the
			// disabled path is byte-identical to the uninstrumented engine.
			if bp := rm.stall(id); bp != nil {
				select {
				case ch <- batch:
					continue
				default:
					bp.Inc()
				}
			}
			select {
			case ch <- batch:
			case <-done:
				return false
			}
		}
		return true
	}
	closeOut := func(id workflow.NodeID) {
		for _, c := range g.Consumers(id) {
			close(chans[edge{id, c}])
		}
	}
	// drain collects the full content of one input edge.
	drain := func(from, to workflow.NodeID) data.Rows {
		var rows data.Rows
		ch := chans[edge{from, to}]
		for {
			select {
			case batch, ok := <-ch:
				if !ok {
					return rows
				}
				rows = append(rows, batch...)
			case <-done:
				return rows
			}
		}
	}

	var wg sync.WaitGroup
	for _, id := range order {
		n := g.Node(id)
		wg.Add(1)
		go func(id workflow.NodeID, n *workflow.Node) {
			defer wg.Done()
			preds := g.Providers(id)
			switch {
			case n.Kind == workflow.KindRecordset && len(preds) == 0:
				// Source: scan and emit in batches.
				defer closeOut(id)
				rows, err := e.scanSource(n)
				if err != nil {
					fail(err)
					return
				}
				for i := 0; i < len(rows); i += e.batch {
					j := min(i+e.batch, len(rows))
					if !send(id, rows[i:j]) {
						return
					}
				}
			case n.Kind == workflow.KindRecordset:
				// Target: drain, project, load.
				rows := drain(preds[0], id)
				rows = e.projectForTarget(rows, g.Node(preds[0]).Out, n.RS.Schema)
				countRows(id, len(rows))
				mu.Lock()
				targets[n.RS.Name] = rows
				mu.Unlock()
				if rs, ok := e.bindings[n.RS.Name]; ok {
					if err := rs.Load(rows); err != nil {
						fail(fmt.Errorf("engine: loading target %s: %w", n.RS.Name, err))
					}
				}
			case streamable(n.Act):
				defer closeOut(id)
				inSchema := g.Node(preds[0]).Out
				ch := chans[edge{preds[0], id}]
				for {
					var batch data.Rows
					var ok bool
					select {
					case batch, ok = <-ch:
						if !ok {
							return
						}
					case <-done:
						return
					}
					out, err := e.execSemTimed(id, n, inSchema, batch, rm)
					if err != nil {
						fail(fmt.Errorf("engine: activity %d (%s): %w", id, n.Label(), err))
						return
					}
					if !send(id, out) {
						return
					}
				}
			case n.Act.Sem.Op == workflow.OpUnion:
				// Stream both inputs concurrently through a merged channel.
				defer closeOut(id)
				merged := make(chan data.Rows, 4)
				var inWG sync.WaitGroup
				for i, p := range preds {
					inWG.Add(1)
					go func(i int, p workflow.NodeID) {
						defer inWG.Done()
						src := g.Node(p).Out
						ch := chans[edge{p, id}]
						for {
							select {
							case batch, ok := <-ch:
								if !ok {
									return
								}
								select {
								case merged <- realign(batch, src, n.Out):
								case <-done:
									return
								}
							case <-done:
								return
							}
						}
					}(i, p)
				}
				go func() { inWG.Wait(); close(merged) }()
				for {
					select {
					case batch, ok := <-merged:
						if !ok {
							return
						}
						if !send(id, batch) {
							return
						}
					case <-done:
						return
					}
				}
			default:
				// Blocking activity: materialize inputs (concurrently for
				// binaries) and run the materialized executor.
				defer closeOut(id)
				inputs := make([]data.Rows, len(preds))
				schemas := make([]data.Schema, len(preds))
				var inWG sync.WaitGroup
				for i, p := range preds {
					schemas[i] = g.Node(p).Out
					inWG.Add(1)
					go func(i int, p workflow.NodeID) {
						defer inWG.Done()
						inputs[i] = drain(p, id)
					}(i, p)
				}
				inWG.Wait()
				select {
				case <-done:
					return
				default:
				}
				out, err := e.execActivityTimed(id, n, schemas, inputs, rm)
				if err != nil {
					fail(fmt.Errorf("engine: activity %d (%s): %w", id, n.Label(), err))
					return
				}
				for i := 0; i < len(out); i += e.batch {
					j := min(i+e.batch, len(out))
					if !send(id, out[i:j]) {
						return
					}
				}
			}
		}(id, n)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			// Wrap the bare context error with where the pipeline was and
			// how far it had got, keeping errors.Is(err, ctx.Err()) intact.
			total := 0
			for _, n := range nodeRows {
				total += n
			}
			at := "before any node emitted rows"
			if lastID >= 0 {
				at = fmt.Sprintf("at node %d (%s)", lastID, g.Node(lastID).Label())
			}
			return nil, fmt.Errorf("engine: pipelined run cancelled %s after %d rows: %w", at, total, firstErr)
		}
		return nil, firstErr
	}
	return &RunResult{Targets: targets, NodeRows: nodeRows}, nil
}

// execSemTimed runs one streamable activity's batch, observing its latency
// into the per-node stage histogram when metrics are enabled.
func (e *Engine) execSemTimed(id workflow.NodeID, n *workflow.Node, inSchema data.Schema, batch data.Rows, rm *runMetrics) (data.Rows, error) {
	h := rm.latency(id)
	if h == nil {
		return e.execSem(n.Act, n.In, n.Out, []data.Schema{inSchema}, []data.Rows{batch})
	}
	start := time.Now()
	out, err := e.execSem(n.Act, n.In, n.Out, []data.Schema{inSchema}, []data.Rows{batch})
	h.Observe(time.Since(start).Seconds())
	return out, err
}

// streamable reports whether an activity can process each batch
// independently (stateless per record).
func streamable(a *workflow.Activity) bool {
	switch a.Sem.Op {
	case workflow.OpFilter, workflow.OpNotNull, workflow.OpProject, workflow.OpFunc, workflow.OpSurrogateKey:
		return true
	case workflow.OpPKCheck:
		return a.Sem.Lookup != ""
	case workflow.OpMerged:
		for _, comp := range a.Sem.Components {
			if !streamable(comp) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
