package engine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"etlopt/internal/obs"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// TestJournalDoesNotAffectExecution is the engine half of the
// flight-recorder determinism guard: with the journal (and pprof
// partition labels) attached, every mode at partition counts 1 and 8
// must load bit-identical target rows and report identical per-node row
// counts.
func TestJournalDoesNotAffectExecution(t *testing.T) {
	sc := templates.Fig1Scenario(120, 360)
	configs := []struct {
		name string
		opts []Option
	}{
		{"materialized", nil},
		{"pipelined", []Option{WithMode(Pipelined)}},
		{"parallel-1", []Option{WithMode(Parallel), WithPartitions(1)}},
		{"parallel-8", []Option{WithMode(Parallel), WithPartitions(8)}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			plain, err := New(sc.Bind(), cfg.opts...).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			j := obs.NewJournal(&buf, nil)
			opts := append(append([]Option{}, cfg.opts...), WithJournal(j), WithPprofLabels())
			rec, err := New(sc.Bind(), opts...).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatalf("journal close: %v", err)
			}
			for name, rows := range plain.Targets {
				if !rowsIdentical(rows, rec.Targets[name]) {
					t.Errorf("target %s not bit-identical with journal attached", name)
				}
			}
			for id, n := range plain.NodeRows {
				if rec.NodeRows[id] != n {
					t.Errorf("node %d: %d rows with journal, %d without", id, rec.NodeRows[id], n)
				}
			}

			evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("journal unreadable: %v", err)
			}
			counts := map[string]int{}
			for _, e := range evs {
				counts[e.T]++
			}
			if counts[obs.EventRun] != 2 {
				t.Errorf("%d run events, want start+end", counts[obs.EventRun])
			}
			if counts[obs.EventSummary] != 1 {
				t.Errorf("%d summary events, want 1", counts[obs.EventSummary])
			}
			if counts[obs.EventDrift] == 0 {
				t.Error("no selectivity drift events recorded")
			}
		})
	}
}

// TestJournalEngineEvents checks the mode-specific event payloads of a
// journaled run: materialized runs carry per-node events whose row counts
// match the result, parallel runs additionally carry per-partition batch
// events summing to the node totals plus exchange events for
// key-sensitive operators.
func TestJournalEngineEvents(t *testing.T) {
	sc := templates.Fig1Scenario(120, 360)

	t.Run("materialized nodes", func(t *testing.T) {
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, nil)
		res, err := New(sc.Bind(), WithJournal(j)).Run(context.Background(), sc.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		nodeRows := map[string]int64{}
		for _, e := range evs {
			if e.T == obs.EventNode {
				if e.Sec < 0 {
					t.Errorf("node %s: negative wall time %v", e.Node, e.Sec)
				}
				nodeRows[e.Node] = e.Rows
			}
		}
		var activities int
		for _, id := range sc.Graph.Nodes() {
			n := sc.Graph.Node(id)
			if n.Kind != workflow.KindActivity {
				continue
			}
			activities++
			key := nodeKey(id, n)
			got, ok := nodeRows[key]
			if !ok || got != int64(res.NodeRows[id]) {
				t.Errorf("node %s: journal rows %d (ok=%v), result %d", key, got, ok, res.NodeRows[id])
			}
		}
		if activities == 0 {
			t.Fatal("scenario has no activities")
		}
	})

	t.Run("parallel batches and exchanges", func(t *testing.T) {
		const parts = 4
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, nil)
		res, err := New(sc.Bind(), WithMode(Parallel), WithPartitions(parts), WithJournal(j)).
			Run(context.Background(), sc.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		batchSums := map[string]int64{}
		batches := 0
		exchanges := 0
		for _, e := range evs {
			switch e.T {
			case obs.EventBatch:
				if e.Part < 0 || e.Part >= parts {
					t.Errorf("batch partition %d out of range [0,%d)", e.Part, parts)
				}
				batchSums[e.Node] += e.Rows
				batches++
			case obs.EventExchange:
				exchanges++
			}
		}
		if batches == 0 {
			t.Fatal("no batch events recorded")
		}
		if exchanges == 0 {
			t.Error("no exchange events recorded (scenario has key-sensitive operators)")
		}
		for _, id := range sc.Graph.Nodes() {
			n := sc.Graph.Node(id)
			if n.Kind != workflow.KindActivity {
				continue
			}
			key := nodeKey(id, n)
			if got := batchSums[key]; got != int64(res.NodeRows[id]) {
				t.Errorf("node %s: batch rows sum %d, result %d", key, got, res.NodeRows[id])
			}
		}
	})
}

// journalCheckpointActions runs g under a journaled CheckpointRunner on
// dir and returns how often each checkpoint action ("staged",
// "restored") appears in the journal, plus the run error.
func journalCheckpointActions(t *testing.T, ctx context.Context, sc *templates.Scenario, dir string) (map[string]int, error) {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf, nil)
	cr, err := NewCheckpointRunner(New(sc.Bind(), WithJournal(j)), dir)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := cr.Run(ctx, sc.Graph)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	actions := map[string]int{}
	for _, e := range evs {
		if e.T == obs.EventCheckpoint {
			actions[e.Action]++
		}
	}
	return actions, runErr
}

// TestJournalCheckpointEvents checks the staging narration: a completed
// checkpointed run journals staged events, and a resumed run over a
// pre-seeded staging area journals restored events.
func TestJournalCheckpointEvents(t *testing.T) {
	sc := templates.Fig1Scenario(60, 180)
	dir := filepath.Join(t.TempDir(), "stage")

	actions, err := journalCheckpointActions(t, context.Background(), sc, dir)
	if err != nil {
		t.Fatal(err)
	}
	if actions["staged"] == 0 {
		t.Fatal("completed checkpoint run journaled no staged events")
	}

	// Simulate a crash: a cancelled run writes the manifest but completes
	// no nodes; then seed one source node's staged output by hand so the
	// next run has something to restore.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := journalCheckpointActions(t, ctx, sc, dir); err == nil {
		t.Fatal("cancelled checkpoint run unexpectedly succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatalf("cancelled run left no manifest: %v", err)
	}
	eng := New(sc.Bind())
	seeder := CheckpointRunner{engine: eng, dir: dir}
	seeded := false
	for _, id := range sc.Graph.Nodes() {
		n := sc.Graph.Node(id)
		if n.Kind == workflow.KindRecordset && len(sc.Graph.Providers(id)) == 0 {
			rows, err := eng.scanSource(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := seeder.saveStage(id, n.Out, rows); err != nil {
				t.Fatal(err)
			}
			seeded = true
			break
		}
	}
	if !seeded {
		t.Fatal("no source node to seed the stage with")
	}

	actions, err = journalCheckpointActions(t, context.Background(), sc, dir)
	if err != nil {
		t.Fatal(err)
	}
	if actions["restored"] == 0 {
		t.Fatal("resumed checkpoint run journaled no restored events")
	}
}
