package engine

import (
	"context"
	"strings"
	"testing"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// runChain executes SRC(schema, rows) → acts → TGT and returns the target
// rows, under the given mode.
func runChain(t *testing.T, mode Mode, schema data.Schema, rows data.Rows,
	extra map[string]data.Recordset, acts ...*workflow.Activity) data.Rows {
	t.Helper()
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "SRC", Schema: schema, Rows: float64(len(rows)), IsSource: true})
	cur := src
	for _, a := range acts {
		id := g.AddActivity(a)
		g.MustAddEdge(cur, id)
		cur = id
	}
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: data.Schema{"x"}, IsTarget: true})
	g.MustAddEdge(cur, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	g.Node(tgt).RS.Schema = g.Node(cur).Out.Clone()
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}

	bindings := map[string]data.Recordset{
		"SRC": data.NewMemoryRecordset("SRC", schema).MustLoad(rows),
	}
	for k, v := range extra {
		bindings[k] = v
	}
	e := New(bindings, WithMode(mode), WithBatchSize(3), WithPartitions(3))
	res, err := e.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return res.Targets["TGT"]
}

func bothModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	t.Run("materialized", func(t *testing.T) { f(t, Materialized) })
	t.Run("pipelined", func(t *testing.T) { f(t, Pipelined) })
	t.Run("parallel", func(t *testing.T) { f(t, Parallel) })
}

func TestFilterExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{
			{data.NewInt(1), data.NewFloat(50)},
			{data.NewInt(2), data.NewFloat(150)},
			{data.NewInt(3), data.Null},
		}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows, nil, templates.Threshold("V", 100, 0.5))
		if len(got) != 1 || got[0][0].Int() != 2 {
			t.Errorf("filter result = %v", got)
		}
	})
}

func TestNotNullExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{
			{data.NewInt(1), data.Null},
			{data.NewInt(2), data.NewFloat(1)},
		}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows, nil, templates.NotNull(0.9, "V"))
		if len(got) != 1 || got[0][0].Int() != 2 {
			t.Errorf("notnull result = %v", got)
		}
	})
}

func TestConvertExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{{data.NewInt(1), data.NewFloat(100)}}
		got := runChain(t, mode, data.Schema{"K", "DCOST"}, rows, nil,
			templates.Convert("dollar2euro", "ECOST", "DCOST"))
		if len(got) != 1 {
			t.Fatalf("convert result = %v", got)
		}
		// Output schema is {K, ECOST}; euro value = 100 × rate.
		if got[0][1].Float() != 100*algebra.DollarEuroRate {
			t.Errorf("converted value = %v", got[0][1])
		}
	})
}

func TestReformatExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{{data.NewString("03/15/2004")}}
		got := runChain(t, mode, data.Schema{"DATE"}, rows, nil,
			templates.Reformat("a2edate", "DATE"))
		if got[0][0].Str() != "15/03/2004" {
			t.Errorf("reformat = %v", got[0][0])
		}
	})
}

func TestProjectExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{{data.NewInt(1), data.NewString("drop me")}}
		got := runChain(t, mode, data.Schema{"K", "X"}, rows, nil, templates.ProjectOut("X"))
		if len(got) != 1 || len(got[0]) != 1 || got[0][0].Int() != 1 {
			t.Errorf("project result = %v", got)
		}
	})
}

func TestAggregateExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{
			{data.NewInt(1), data.NewFloat(10)},
			{data.NewInt(1), data.NewFloat(20)},
			{data.NewInt(2), data.NewFloat(5)},
			{data.NewInt(2), data.Null}, // NULLs are skipped by sum
		}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows, nil,
			templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOTV", 0.5))
		if len(got) != 2 {
			t.Fatalf("aggregate groups = %v", got)
		}
		sums := map[int64]float64{}
		for _, r := range got {
			sums[r[0].Int()] = r[1].Float()
		}
		if sums[1] != 30 || sums[2] != 5 {
			t.Errorf("sums = %v", sums)
		}
	})
}

func TestAggregateKinds(t *testing.T) {
	rows := data.Rows{
		{data.NewInt(1), data.NewFloat(10)},
		{data.NewInt(1), data.NewFloat(20)},
		{data.NewInt(1), data.Null},
	}
	cases := []struct {
		agg  workflow.AggKind
		want float64
	}{
		{workflow.AggSum, 30},
		{workflow.AggCount, 3}, // count counts rows
		{workflow.AggMin, 10},
		{workflow.AggMax, 20},
		{workflow.AggAvg, 15}, // avg over non-NULL
	}
	for _, c := range cases {
		got := runChain(t, Materialized, data.Schema{"K", "V"}, rows, nil,
			templates.Aggregate([]string{"K"}, c.agg, "V", "OUT", 0.5))
		if len(got) != 1 || got[0][1].Float() != c.want {
			t.Errorf("%v = %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestAggregateAllNullGroup(t *testing.T) {
	rows := data.Rows{{data.NewInt(1), data.Null}}
	got := runChain(t, Materialized, data.Schema{"K", "V"}, rows, nil,
		templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "OUT", 0.5))
	if len(got) != 1 || !got[0][1].IsNull() {
		t.Errorf("sum of all-NULL group = %v, want NULL", got)
	}
}

func TestSurrogateKeyExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		lookup := data.NewMemoryRecordset("LKP", data.Schema{"K", "SK"}).MustLoad(data.Rows{
			{data.NewInt(1), data.NewInt(1001)},
			{data.NewInt(2), data.NewInt(1002)},
		})
		rows := data.Rows{{data.NewInt(2), data.NewFloat(7)}}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows,
			map[string]data.Recordset{"LKP": lookup},
			templates.SurrogateKey("K", "SK", "LKP"))
		if len(got) != 1 {
			t.Fatalf("sk result = %v", got)
		}
		// Output schema {V, SK}.
		if got[0][1].Int() != 1002 {
			t.Errorf("surrogate = %v", got[0])
		}
	})
}

func TestSurrogateKeyMissingKey(t *testing.T) {
	lookup := data.NewMemoryRecordset("LKP", data.Schema{"K", "SK"})
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "SRC", Schema: data.Schema{"K"}, IsSource: true})
	sk := g.AddActivity(templates.SurrogateKey("K", "SK", "LKP"))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: data.Schema{"SK"}, IsTarget: true})
	g.MustAddEdge(src, sk)
	g.MustAddEdge(sk, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	e := New(map[string]data.Recordset{
		"SRC": data.NewMemoryRecordset("SRC", data.Schema{"K"}).MustLoad(data.Rows{{data.NewInt(9)}}),
		"LKP": lookup,
	})
	_, err := e.Run(context.Background(), g)
	if err == nil || !strings.Contains(err.Error(), "missing from lookup") {
		t.Errorf("missing production key should fail loudly, got %v", err)
	}
}

func TestPKCheckGroupBased(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{
			{data.NewInt(1), data.NewFloat(1)},
			{data.NewInt(1), data.NewFloat(2)}, // duplicate key: both rejected
			{data.NewInt(2), data.NewFloat(3)},
		}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows, nil, templates.PKCheck(0.8, "K"))
		if len(got) != 1 || got[0][0].Int() != 2 {
			t.Errorf("group-based pkcheck = %v", got)
		}
	})
}

func TestPKCheckLookupBased(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		existing := data.NewMemoryRecordset("DWK", data.Schema{"K"}).MustLoad(data.Rows{
			{data.NewInt(1)},
		})
		rows := data.Rows{
			{data.NewInt(1), data.NewFloat(1)}, // already in DW: rejected
			{data.NewInt(2), data.NewFloat(2)},
		}
		got := runChain(t, mode, data.Schema{"K", "V"}, rows,
			map[string]data.Recordset{"DWK": existing},
			templates.PKCheckAgainst("DWK", 0.8, "K"))
		if len(got) != 1 || got[0][0].Int() != 2 {
			t.Errorf("lookup-based pkcheck = %v", got)
		}
	})
}

func TestDistinctExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		rows := data.Rows{
			{data.NewInt(1)}, {data.NewInt(1)}, {data.NewInt(2)},
		}
		got := runChain(t, mode, data.Schema{"K"}, rows, nil, templates.Distinct(0.7))
		if len(got) != 2 {
			t.Errorf("distinct = %v", got)
		}
	})
}

func TestMergedExecution(t *testing.T) {
	// A merged NN+σ package must behave exactly like the sequence.
	nn := templates.NotNull(0.9, "V")
	sigma := templates.Threshold("V", 100, 0.5)
	merged := &workflow.Activity{
		Sem: workflow.Semantics{Op: workflow.OpMerged, Components: []*workflow.Activity{nn, sigma}},
		Fun: data.Schema{"V"},
		Sel: 0.45,
	}
	rows := data.Rows{
		{data.NewFloat(150)}, {data.Null}, {data.NewFloat(50)},
	}
	seq := runChain(t, Materialized, data.Schema{"V"}, rows, nil, templates.NotNull(0.9, "V"), templates.Threshold("V", 100, 0.5))
	pkg := runChain(t, Materialized, data.Schema{"V"}, rows, nil, merged)
	if !seq.EqualMultiset(pkg) {
		t.Errorf("merged package differs from sequence: %v vs %v", seq, pkg)
	}
}
