package engine

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"etlopt/internal/data"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// ETL workflows run in constrained time windows, and the paper's related
// work (ref [12], Labio et al., "Efficient Resumption of Interrupted
// Warehouse Loads") motivates restart efficiency: when a nightly load
// fails halfway, re-running everything may not fit the remaining window.
// CheckpointRunner executes a workflow with per-node staging: each
// completed node's output is persisted, so a re-run after a crash resumes
// from the frontier of completed nodes instead of from the sources.
//
// The staging area is a directory of CSV files keyed by node ID plus a
// manifest recording the workflow signature; resuming with a *different*
// workflow (signature mismatch) discards the staging area, since the
// intermediate results of one state are not valid for another.
type CheckpointRunner struct {
	engine *Engine
	dir    string
}

// NewCheckpointRunner wraps an engine with staging in dir, creating the
// directory if needed.
func NewCheckpointRunner(e *Engine, dir string) (*CheckpointRunner, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: creating checkpoint dir: %w", err)
	}
	return &CheckpointRunner{engine: e, dir: dir}, nil
}

// manifestPath returns the path of the staging manifest.
func (c *CheckpointRunner) manifestPath() string {
	return filepath.Join(c.dir, "MANIFEST")
}

func (c *CheckpointRunner) nodePath(id workflow.NodeID) string {
	return filepath.Join(c.dir, fmt.Sprintf("node-%d.csv", id))
}

// Run executes the workflow, checkpointing each completed node. If the
// staging area already holds results for this exact workflow (matching
// signature), completed nodes are loaded from disk instead of recomputed —
// the resumption path. On success the staging area is removed.
//
// A cancelled ctx aborts between nodes with ctx.Err() and leaves the
// staging area in place: the nodes completed before the cancellation stay
// checkpointed, so a later Run with the same workflow resumes from them —
// cancellation behaves exactly like the crash the runner exists to
// survive.
func (c *CheckpointRunner) Run(ctx context.Context, g *workflow.Graph) (*RunResult, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sig := g.Signature()
	if err := c.prepareStaging(sig); err != nil {
		return nil, err
	}

	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make(map[workflow.NodeID]data.Rows, len(order))
	res := &RunResult{
		Targets:  make(map[string]data.Rows),
		NodeRows: make(map[workflow.NodeID]int),
	}
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := g.Node(id)
		// Targets are never staged: loading is the effect we must not
		// repeat blindly, so targets always re-run from their providers'
		// staged outputs.
		stageable := n.Kind == workflow.KindActivity || len(g.Providers(id)) == 0
		resumed := false
		body := func() error {
			// Resume path: a staged output short-circuits recomputation.
			if stageable {
				if err := c.engine.checkFault(ctx, fault.SiteRestore, id, n, 0); err != nil {
					return err
				}
				rows, ok, err := c.loadStage(id)
				if err != nil {
					return err
				}
				if ok {
					out[id] = rows
					resumed = true
					return nil
				}
			}
			if err := c.engine.checkFault(ctx, fault.SiteNodeStart, id, n, 0); err != nil {
				return err
			}
			switch n.Kind {
			case workflow.KindRecordset:
				preds := g.Providers(id)
				if len(preds) == 0 {
					rows, err := c.engine.scanSource(n)
					if err != nil {
						return err
					}
					out[id] = rows
				} else {
					rows := c.engine.projectForTarget(out[preds[0]], g.Node(preds[0]).Out, n.RS.Schema)
					if err := c.engine.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
						return err
					}
					out[id] = rows
					res.Targets[n.RS.Name] = rows
					if rs, ok := c.engine.bindings[n.RS.Name]; ok {
						if err := rs.Load(rows); err != nil {
							return fmt.Errorf("engine: loading target %s: %w", n.RS.Name, err)
						}
					}
				}
			case workflow.KindActivity:
				preds := g.Providers(id)
				inputs := make([]data.Rows, len(preds))
				schemas := make([]data.Schema, len(preds))
				for i, p := range preds {
					inputs[i] = out[p]
					schemas[i] = g.Node(p).Out
				}
				rows, err := c.engine.execActivity(n, schemas, inputs)
				if err != nil {
					return fmt.Errorf("engine: activity %d (%s): %w", id, n.Label(), err)
				}
				out[id] = rows
			}
			if stageable {
				if err := c.engine.checkFault(ctx, fault.SiteStage, id, n, 0); err != nil {
					return err
				}
				if err := c.saveStage(id, g.Node(id).Out, out[id]); err != nil {
					return err
				}
			}
			return nil
		}
		if err := c.engine.runNode(ctx, id, n, body); err != nil {
			return nil, err
		}
		res.NodeRows[id] = len(out[id])
		if resumed {
			c.checkpointEvent("restored", id, n, len(out[id]))
			if j := c.engine.journal; j != nil {
				j.Emit(obs.ResumeEvent(nodeKey(id, n), len(out[id])))
			}
		} else if stageable {
			c.checkpointEvent("staged", id, n, len(out[id]))
		}
	}

	// The load completed: the staging area has served its purpose.
	if err := c.Clear(); err != nil {
		return nil, err
	}
	return res, nil
}

// checkpointEvent journals one staging step ("staged" when a node's
// output is persisted, "restored" when a resumed run short-circuits a
// node from disk) through the wrapped engine's flight recorder; a no-op
// without one.
func (c *CheckpointRunner) checkpointEvent(action string, id workflow.NodeID, n *workflow.Node, rows int) {
	if j := c.engine.journal; j != nil {
		j.Emit(obs.CheckpointEvent(nodeKey(id, n), action, rows))
	}
}

// prepareStaging validates or initializes the manifest. A signature
// mismatch (the workflow changed since the interrupted run) clears the
// staging area — stale intermediates are unusable.
func (c *CheckpointRunner) prepareStaging(sig string) error {
	b, err := os.ReadFile(c.manifestPath())
	switch {
	case err == nil:
		if strings.TrimSpace(string(b)) == sig {
			return nil // resumable
		}
		if err := c.Clear(); err != nil {
			return err
		}
	case !os.IsNotExist(err):
		return fmt.Errorf("engine: reading checkpoint manifest: %w", err)
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(c.manifestPath(), []byte(sig+"\n"), 0o644)
}

// Staged reports which node IDs currently have staged outputs.
func (c *CheckpointRunner) Staged() ([]workflow.NodeID, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []workflow.NodeID
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "node-%d.csv", &id); err == nil {
			ids = append(ids, workflow.NodeID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Clear removes the staging area.
func (c *CheckpointRunner) Clear() error {
	if err := os.RemoveAll(c.dir); err != nil {
		return fmt.Errorf("engine: clearing checkpoint dir: %w", err)
	}
	return nil
}

// saveStage atomically persists one node's output.
func (c *CheckpointRunner) saveStage(id workflow.NodeID, schema data.Schema, rows data.Rows) error {
	tmp := c.nodePath(id) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(schema); err != nil {
		f.Close()
		return err
	}
	for _, rec := range rows {
		fields := make([]string, len(rec))
		for i, v := range rec {
			if v.IsNull() {
				fields[i] = "NULL"
			} else {
				fields[i] = v.String()
			}
		}
		if err := w.Write(fields); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, c.nodePath(id))
}

// loadStage reads one node's staged output if present.
func (c *CheckpointRunner) loadStage(id workflow.NodeID) (data.Rows, bool, error) {
	f, err := os.Open(c.nodePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	if _, err := r.Read(); err != nil { // header
		if err == io.EOF {
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("engine: reading stage %d: %w", id, err)
	}
	var rows data.Rows
	for {
		fields, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, fmt.Errorf("engine: reading stage %d: %w", id, err)
		}
		rec := make(data.Record, len(fields))
		for i, s := range fields {
			rec[i] = data.ParseValue(s)
		}
		rows = append(rows, rec)
	}
	return rows, true, nil
}
