package engine

import (
	"fmt"
	"strings"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// execActivity runs one activity over fully materialized inputs. schemas
// and inputs are aligned with the node's providers; the returned rows are
// laid out by the node's derived output schema.
func (e *Engine) execActivity(n *workflow.Node, schemas []data.Schema, inputs []data.Rows) (data.Rows, error) {
	return e.execSem(n.Act, n.In, n.Out, schemas, inputs)
}

// execSem dispatches on the activity's semantics. in/out are the node's
// derived schemata; schemas/inputs the provider layouts and rows.
func (e *Engine) execSem(a *workflow.Activity, in []data.Schema, out data.Schema, schemas []data.Schema, inputs []data.Rows) (data.Rows, error) {
	// Realign provider rows to the derived input schemata when layouts
	// differ (possible after graph rewrites reorder attribute generation).
	aligned := make([]data.Rows, len(inputs))
	for i := range inputs {
		aligned[i] = realign(inputs[i], schemas[i], in[i])
	}
	switch a.Sem.Op {
	case workflow.OpFilter:
		return e.execFilter(a, in[0], aligned[0])
	case workflow.OpNotNull:
		return e.execNotNull(a, in[0], aligned[0])
	case workflow.OpPKCheck:
		return e.execPKCheck(a, in[0], aligned[0])
	case workflow.OpDistinct:
		return e.execDistinct(aligned[0])
	case workflow.OpProject:
		return e.execProject(in[0], out, aligned[0])
	case workflow.OpFunc:
		return e.execFunc(a, in[0], out, aligned[0])
	case workflow.OpAggregate:
		return e.execAggregate(a, in[0], out, aligned[0])
	case workflow.OpSurrogateKey:
		return e.execSurrogateKey(a, in[0], out, aligned[0])
	case workflow.OpMerged:
		return e.execMerged(a, in[0], aligned[0])
	case workflow.OpUnion:
		return e.execUnion(in, out, aligned)
	case workflow.OpJoin:
		return e.execJoin(a, in, out, aligned)
	case workflow.OpDiff:
		return e.execDiff(a, in, aligned)
	case workflow.OpIntersect:
		return e.execIntersect(a, in, aligned)
	default:
		return nil, fmt.Errorf("unsupported operation %s", a.Sem.Op)
	}
}

// realign reorders row values from layout src to layout dst; it is the
// identity when the layouts already match.
func realign(rows data.Rows, src, dst data.Schema) data.Rows {
	if src.Equal(dst) {
		return rows
	}
	out := make(data.Rows, len(rows))
	for i, r := range rows {
		out[i] = r.Project(src, dst)
	}
	return out
}

// The filtering operators below are written as mask producers: each
// returns keep[i] for row i, and the caller applies the mask. This split
// is what lets the parallel engine reuse the exact materialized-mode
// semantics on a partition while carrying each survivor's sequence tag
// through (parallel.go): a mask identifies *which* rows survive, which a
// plain filtered slice cannot.

// applyMask collects the rows whose mask entry is true, sharing records.
func applyMask(rows data.Rows, keep []bool) data.Rows {
	var out data.Rows
	for i, k := range keep {
		if k {
			out = append(out, rows[i])
		}
	}
	return out
}

// Partition contract (filter): per-row and order-preserving, so it runs
// partition-locally on any partitioning.
func maskFilter(a *workflow.Activity, schema data.Schema, rows data.Rows) ([]bool, error) {
	keep := make([]bool, len(rows))
	for i, r := range rows {
		v, err := a.Sem.Pred.Eval(schema, r)
		if err != nil {
			return nil, err
		}
		keep[i] = v.Bool()
	}
	return keep, nil
}

func (e *Engine) execFilter(a *workflow.Activity, schema data.Schema, rows data.Rows) (data.Rows, error) {
	keep, err := maskFilter(a, schema, rows)
	if err != nil {
		return nil, err
	}
	return applyMask(rows, keep), nil
}

// Partition contract (notnull): per-row and order-preserving — partition
// local.
func maskNotNull(a *workflow.Activity, schema data.Schema, rows data.Rows) ([]bool, error) {
	positions := make([]int, len(a.Sem.Attrs))
	for i, attr := range a.Sem.Attrs {
		p := schema.Index(attr)
		if p < 0 {
			return nil, fmt.Errorf("notnull: attribute %q not in schema {%s}", attr, schema)
		}
		positions[i] = p
	}
	keep := make([]bool, len(rows))
	for i, r := range rows {
		k := true
		for _, p := range positions {
			if r[p].IsNull() {
				k = false
				break
			}
		}
		keep[i] = k
	}
	return keep, nil
}

func (e *Engine) execNotNull(a *workflow.Activity, schema data.Schema, rows data.Rows) (data.Rows, error) {
	keep, err := maskNotNull(a, schema, rows)
	if err != nil {
		return nil, err
	}
	return applyMask(rows, keep), nil
}

// execPKCheck enforces a primary key. Lookup-based checks (Sem.Lookup set)
// reject rows whose key tuple already exists in the lookup recordset — a
// per-row, order-insensitive test. Group-based checks reject every row of
// a key group with more than one member, which is likewise insensitive to
// input order (a requirement for transition correctness).
func (e *Engine) execPKCheck(a *workflow.Activity, schema data.Schema, rows data.Rows) (data.Rows, error) {
	var keep []bool
	var err error
	if a.Sem.Lookup != "" {
		keep, err = e.maskPKCheckLookup(a, schema, rows)
	} else {
		keep, err = maskPKCheckGroup(a, schema, rows)
	}
	if err != nil {
		return nil, err
	}
	return applyMask(rows, keep), nil
}

// Partition contract (pkcheck, lookup-based): per-row against a read-only
// key set — partition local; the parallel engine shares one cached set
// across partitions.
func (e *Engine) maskPKCheckLookup(a *workflow.Activity, schema data.Schema, rows data.Rows) ([]bool, error) {
	keyOf, err := rowKeyFn(schema, a.Sem.Attrs, "pkcheck")
	if err != nil {
		return nil, err
	}
	existing, err := e.keySet(a.Sem.Lookup)
	if err != nil {
		return nil, fmt.Errorf("pkcheck: %w", err)
	}
	keep := make([]bool, len(rows))
	for i, r := range rows {
		keep[i] = !existing[keyOf(r)]
	}
	return keep, nil
}

// Partition contract (pkcheck, group-based): needs every row of a key
// group in one place, so the parallel engine exchanges rows by key tuple
// first; partition-local counts are then global counts.
func maskPKCheckGroup(a *workflow.Activity, schema data.Schema, rows data.Rows) ([]bool, error) {
	keyOf, err := rowKeyFn(schema, a.Sem.Attrs, "pkcheck")
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int, len(rows))
	for _, r := range rows {
		counts[keyOf(r)]++
	}
	keep := make([]bool, len(rows))
	for i, r := range rows {
		keep[i] = counts[keyOf(r)] == 1
	}
	return keep, nil
}

// execDistinct removes exact duplicate records, keeping the first
// occurrence of each distinct record. Because survivors are identical to
// their duplicates, the output multiset is independent of input order.
//
// Partition contract: all copies of a record must meet, so the parallel
// engine exchanges by full record key; first-occurrence-within-partition
// (by sequence tag) then equals first occurrence globally.
func (e *Engine) execDistinct(rows data.Rows) (data.Rows, error) {
	return applyMask(rows, maskDistinct(rows)), nil
}

// maskDistinct keeps the first occurrence of each distinct record.
func maskDistinct(rows data.Rows) []bool {
	seen := make(map[string]bool, len(rows))
	keep := make([]bool, len(rows))
	for i, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			keep[i] = true
		}
	}
	return keep
}

func (e *Engine) execProject(in, out data.Schema, rows data.Rows) (data.Rows, error) {
	res := make(data.Rows, len(rows))
	for i, r := range rows {
		res[i] = r.Project(in, out)
	}
	return res, nil
}

func (e *Engine) execFunc(a *workflow.Activity, in, out data.Schema, rows data.Rows) (data.Rows, error) {
	fn, ok := algebra.LookupFunc(a.Sem.Fn)
	if !ok {
		return nil, fmt.Errorf("unknown function %q", a.Sem.Fn)
	}
	argPos := make([]int, len(a.Sem.FnArgs))
	for i, attr := range a.Sem.FnArgs {
		p := in.Index(attr)
		if p < 0 {
			return nil, fmt.Errorf("function arg %q not in schema {%s}", attr, in)
		}
		argPos[i] = p
	}
	outPos := out.Index(a.Sem.OutAttr)
	if outPos < 0 {
		return nil, fmt.Errorf("output attribute %q not in schema {%s}", a.Sem.OutAttr, out)
	}
	res := make(data.Rows, len(rows))
	args := make([]data.Value, len(argPos))
	for i, r := range rows {
		for j, p := range argPos {
			args[j] = r[p]
		}
		v, err := fn.Apply(args)
		if err != nil {
			return nil, err
		}
		nr := r.Project(in, out)
		nr[outPos] = v
		res[i] = nr
	}
	return res, nil
}

// aggState accumulates one group.
type aggState struct {
	rep   data.Record // representative grouper values (laid out by out schema)
	sum   float64
	count int64 // rows contributing a non-NULL aggregated value
	rows  int64 // all rows in the group
	min   data.Value
	max   data.Value
	any   bool
	order int // first-seen order for deterministic output
}

// execAggregate groups rows by the grouper attributes and folds the
// aggregate. Output order is first-seen group order, which makes the
// result order-sensitive in a controlled way.
//
// Partition contract: a group's rows must be co-located, so the parallel
// engine exchanges by grouper tuple; each group's output row then carries
// the sequence tag of the group's first input row, restoring global
// first-seen order at the merge.
func (e *Engine) execAggregate(a *workflow.Activity, in, out data.Schema, rows data.Rows) (data.Rows, error) {
	groupPos := make([]int, 0, len(a.Sem.Attrs))
	for _, attr := range a.Sem.Attrs {
		p := in.Index(attr)
		if p < 0 {
			return nil, fmt.Errorf("grouper %q not in schema {%s}", attr, in)
		}
		groupPos = append(groupPos, p)
	}
	aggPos := -1
	if a.Sem.Agg != workflow.AggCount {
		aggPos = in.Index(a.Sem.AggAttr)
		if aggPos < 0 {
			return nil, fmt.Errorf("aggregated attribute %q not in schema {%s}", a.Sem.AggAttr, in)
		}
	}
	outPos := out.Index(a.Sem.OutAttr)
	if outPos < 0 {
		return nil, fmt.Errorf("output attribute %q not in schema {%s}", a.Sem.OutAttr, out)
	}

	groups := make(map[string]*aggState)
	var orderCounter int
	for _, r := range rows {
		var b strings.Builder
		for i, p := range groupPos {
			if i > 0 {
				b.WriteByte('\x1f')
			}
			b.WriteString(r[p].Key())
		}
		k := b.String()
		st, ok := groups[k]
		if !ok {
			st = &aggState{rep: r.Project(in, out), order: orderCounter}
			orderCounter++
			groups[k] = st
		}
		st.rows++
		if aggPos >= 0 {
			v := r[aggPos]
			if !v.IsNull() {
				st.count++
				f := v.Float()
				st.sum += f
				if !st.any || v.Compare(st.min) < 0 {
					st.min = v
				}
				if !st.any || v.Compare(st.max) > 0 {
					st.max = v
				}
				st.any = true
			}
		}
	}

	res := make(data.Rows, len(groups))
	for _, st := range groups {
		var v data.Value
		switch a.Sem.Agg {
		case workflow.AggSum:
			if st.any {
				v = data.NewFloat(st.sum)
			} else {
				v = data.Null
			}
		case workflow.AggCount:
			v = data.NewInt(st.rows)
		case workflow.AggMin:
			if st.any {
				v = st.min
			} else {
				v = data.Null
			}
		case workflow.AggMax:
			if st.any {
				v = st.max
			} else {
				v = data.Null
			}
		case workflow.AggAvg:
			if st.count > 0 {
				v = data.NewFloat(st.sum / float64(st.count))
			} else {
				v = data.Null
			}
		}
		rec := st.rep.Clone()
		rec[outPos] = v
		res[st.order] = rec
	}
	return res, nil
}

func (e *Engine) execSurrogateKey(a *workflow.Activity, in, out data.Schema, rows data.Rows) (data.Rows, error) {
	table, err := e.lookupTable(a.Sem.Lookup)
	if err != nil {
		return nil, fmt.Errorf("surrogate key: %w", err)
	}
	keyPos := in.Index(a.Sem.KeyAttr)
	if keyPos < 0 {
		return nil, fmt.Errorf("production key %q not in schema {%s}", a.Sem.KeyAttr, in)
	}
	outPos := out.Index(a.Sem.OutAttr)
	if outPos < 0 {
		return nil, fmt.Errorf("surrogate attribute %q not in schema {%s}", a.Sem.OutAttr, out)
	}
	res := make(data.Rows, len(rows))
	for i, r := range rows {
		sk, ok := table[r[keyPos].Key()]
		if !ok {
			return nil, fmt.Errorf("surrogate key: production key %s missing from lookup %q",
				r[keyPos], a.Sem.Lookup)
		}
		nr := r.Project(in, out)
		nr[outPos] = sk
		res[i] = nr
	}
	return res, nil
}

// execMerged runs a merged package's components in order, threading the
// flow schema through each step.
func (e *Engine) execMerged(a *workflow.Activity, in data.Schema, rows data.Rows) (data.Rows, error) {
	cur := rows
	curSchema := in
	for _, comp := range a.Sem.Components {
		outSchema, err := componentOutput(comp, curSchema)
		if err != nil {
			return nil, err
		}
		cur, err = e.execSem(comp, []data.Schema{curSchema}, outSchema, []data.Schema{curSchema}, []data.Rows{cur})
		if err != nil {
			return nil, fmt.Errorf("merged component %s: %w", comp.Sem, err)
		}
		curSchema = outSchema
	}
	return cur, nil
}

// componentOutput derives a merged component's output schema from the
// current flow schema, mirroring the workflow package's derivation.
func componentOutput(a *workflow.Activity, in data.Schema) (data.Schema, error) {
	tmp := workflow.NewGraph()
	src := tmp.AddRecordset(&workflow.RecordsetRef{Name: "_in", Schema: in, IsSource: true})
	act := tmp.AddActivity(a)
	sink := tmp.AddRecordset(&workflow.RecordsetRef{Name: "_out", Schema: in})
	tmp.MustAddEdge(src, act)
	tmp.MustAddEdge(act, sink)
	if err := tmp.RegenerateSchemata(); err != nil {
		return nil, err
	}
	return tmp.Node(act).Out, nil
}

func (e *Engine) execUnion(in []data.Schema, out data.Schema, inputs []data.Rows) (data.Rows, error) {
	res := make(data.Rows, 0, len(inputs[0])+len(inputs[1]))
	res = append(res, realign(inputs[0], in[0], out)...)
	res = append(res, realign(inputs[1], in[1], out)...)
	return res, nil
}

// joinLayout precomputes how one joined output record is assembled from a
// left and a right record: for each output attribute, which side supplies
// it and at what position (-1 means neither side has it — NULL).
type joinLayout struct {
	fromLeft []bool
	pos      []int
}

func newJoinLayout(out, left, right data.Schema) joinLayout {
	jl := joinLayout{fromLeft: make([]bool, len(out)), pos: make([]int, len(out))}
	for i, attr := range out {
		if p := left.Index(attr); p >= 0 {
			jl.fromLeft[i] = true
			jl.pos[i] = p
		} else {
			jl.pos[i] = right.Index(attr) // -1 when absent on both sides
		}
	}
	return jl
}

// row assembles one output record, preferring left values (the layout
// already encoded the preference at construction).
func (jl joinLayout) row(l, r data.Record) data.Record {
	rec := make(data.Record, len(jl.pos))
	for i, p := range jl.pos {
		switch {
		case p < 0:
			rec[i] = data.Null
		case jl.fromLeft[i]:
			rec[i] = l[p]
		default:
			rec[i] = r[p]
		}
	}
	return rec
}

// execJoin hash-joins the inputs on the key attributes. Output order is
// left order, then right-input match order within a left row.
//
// Partition contract: both inputs are exchanged by the join key tuple, so
// every matching pair is co-located; the parallel engine tags each output
// row with its (left seq, right seq) pair and merges partitions in that
// lexicographic order, reproducing this nested-loop order exactly.
func (e *Engine) execJoin(a *workflow.Activity, in []data.Schema, out data.Schema, inputs []data.Rows) (data.Rows, error) {
	leftKey, err := keyPositions(in[0], a.Sem.Attrs)
	if err != nil {
		return nil, err
	}
	rightKey, err := keyPositions(in[1], a.Sem.Attrs)
	if err != nil {
		return nil, err
	}
	// Hash the right input.
	index := make(map[string][]data.Record)
	for _, r := range inputs[1] {
		index[tupleKey(r, rightKey)] = append(index[tupleKey(r, rightKey)], r)
	}
	jl := newJoinLayout(out, in[0], in[1])
	var res data.Rows
	for _, l := range inputs[0] {
		for _, r := range index[tupleKey(l, leftKey)] {
			res = append(res, jl.row(l, r))
		}
	}
	return res, nil
}

// maskKeyPresence marks the left rows whose key tuple does (keepPresent)
// or does not (!keepPresent) appear among the right rows' key tuples —
// the shared core of difference and intersection.
//
// Partition contract (diff/intersect): both inputs are exchanged by key
// tuple, so a left row and every right row that could veto or admit it
// share a partition; survivors keep their left sequence tags.
func maskKeyPresence(a *workflow.Activity, in []data.Schema, left, right data.Rows, keepPresent bool) ([]bool, error) {
	leftKey, err := keyPositions(in[0], a.Sem.Attrs)
	if err != nil {
		return nil, err
	}
	rightKey, err := keyPositions(in[1], a.Sem.Attrs)
	if err != nil {
		return nil, err
	}
	present := make(map[string]bool, len(right))
	for _, r := range right {
		present[tupleKey(r, rightKey)] = true
	}
	keep := make([]bool, len(left))
	for i, l := range left {
		keep[i] = present[tupleKey(l, leftKey)] == keepPresent
	}
	return keep, nil
}

func (e *Engine) execDiff(a *workflow.Activity, in []data.Schema, inputs []data.Rows) (data.Rows, error) {
	keep, err := maskKeyPresence(a, in, inputs[0], inputs[1], false)
	if err != nil {
		return nil, err
	}
	return applyMask(inputs[0], keep), nil
}

func (e *Engine) execIntersect(a *workflow.Activity, in []data.Schema, inputs []data.Rows) (data.Rows, error) {
	keep, err := maskKeyPresence(a, in, inputs[0], inputs[1], true)
	if err != nil {
		return nil, err
	}
	return applyMask(inputs[0], keep), nil
}

// rowKeyFn resolves attrs against schema once and returns a closure
// computing the canonical key tuple of a record. op names the operator in
// the resolution error.
func rowKeyFn(schema data.Schema, attrs []string, op string) (func(data.Record) string, error) {
	positions := make([]int, len(attrs))
	for i, a := range attrs {
		p := schema.Index(a)
		if p < 0 {
			return nil, fmt.Errorf("%s: attribute %q not in schema {%s}", op, a, schema)
		}
		positions[i] = p
	}
	return func(r data.Record) string { return tupleKey(r, positions) }, nil
}

func keyPositions(schema data.Schema, attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p := schema.Index(a)
		if p < 0 {
			return nil, fmt.Errorf("key attribute %q not in schema {%s}", a, schema)
		}
		out[i] = p
	}
	return out, nil
}

func tupleKey(r data.Record, positions []int) string {
	var b strings.Builder
	for i, p := range positions {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(r[p].Key())
	}
	return b.String()
}
