package engine

import (
	"context"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// runBinary executes L(bin)R → TGT and returns the target rows.
func runBinary(t *testing.T, mode Mode, lSchema, rSchema data.Schema, lRows, rRows data.Rows, bin *workflow.Activity) data.Rows {
	t.Helper()
	g := workflow.NewGraph()
	l := g.AddRecordset(&workflow.RecordsetRef{Name: "L", Schema: lSchema, Rows: float64(len(lRows)), IsSource: true})
	r := g.AddRecordset(&workflow.RecordsetRef{Name: "R", Schema: rSchema, Rows: float64(len(rRows)), IsSource: true})
	b := g.AddActivity(bin)
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "TGT", Schema: data.Schema{"x"}, IsTarget: true})
	g.MustAddEdge(l, b)
	g.MustAddEdge(r, b)
	g.MustAddEdge(b, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	g.Node(tgt).RS.Schema = g.Node(b).Out.Clone()
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	e := New(map[string]data.Recordset{
		"L": data.NewMemoryRecordset("L", lSchema).MustLoad(lRows),
		"R": data.NewMemoryRecordset("R", rSchema).MustLoad(rRows),
	}, WithMode(mode), WithBatchSize(2), WithPartitions(3))
	res, err := e.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return res.Targets["TGT"]
}

func TestUnionExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		schema := data.Schema{"K"}
		got := runBinary(t, mode, schema, schema,
			data.Rows{{data.NewInt(1)}, {data.NewInt(2)}},
			data.Rows{{data.NewInt(2)}, {data.NewInt(3)}},
			templates.Union())
		// Bag union: duplicates preserved.
		if len(got) != 4 {
			t.Errorf("union = %v", got)
		}
	})
}

func TestUnionRealignsAttributeOrder(t *testing.T) {
	// The second branch delivers the same attributes in a different order;
	// the union must realign by name.
	got := runBinary(t, Materialized,
		data.Schema{"K", "V"}, data.Schema{"V", "K"},
		data.Rows{{data.NewInt(1), data.NewFloat(10)}},
		data.Rows{{data.NewFloat(20), data.NewInt(2)}},
		templates.Union())
	if len(got) != 2 {
		t.Fatalf("union = %v", got)
	}
	for _, r := range got {
		if r[0].Kind() != data.KindInt {
			t.Errorf("misaligned union row: %v", r)
		}
	}
}

func TestJoinExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		got := runBinary(t, mode,
			data.Schema{"K", "A"}, data.Schema{"K", "B"},
			data.Rows{
				{data.NewInt(1), data.NewString("a1")},
				{data.NewInt(2), data.NewString("a2")},
				{data.NewInt(2), data.NewString("a2bis")},
			},
			data.Rows{
				{data.NewInt(2), data.NewString("b2")},
				{data.NewInt(3), data.NewString("b3")},
			},
			templates.Join(0.1, "K"))
		// Equi-join on K: key 2 matches twice (two left rows × one right).
		if len(got) != 2 {
			t.Fatalf("join = %v", got)
		}
		for _, r := range got {
			if r[0].Int() != 2 {
				t.Errorf("join row key = %v", r)
			}
			if len(r) != 3 {
				t.Errorf("join row arity = %v", r)
			}
		}
	})
}

func TestDiffExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		got := runBinary(t, mode,
			data.Schema{"K", "A"}, data.Schema{"K", "B"},
			data.Rows{
				{data.NewInt(1), data.NewString("x")},
				{data.NewInt(2), data.NewString("y")},
			},
			data.Rows{{data.NewInt(1), data.NewString("z")}},
			templates.Diff(0.5, "K"))
		if len(got) != 1 || got[0][0].Int() != 2 {
			t.Errorf("diff = %v", got)
		}
	})
}

func TestIntersectExecution(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		got := runBinary(t, mode,
			data.Schema{"K", "A"}, data.Schema{"K", "B"},
			data.Rows{
				{data.NewInt(1), data.NewString("x")},
				{data.NewInt(2), data.NewString("y")},
			},
			data.Rows{{data.NewInt(1), data.NewString("z")}},
			templates.Intersect(0.5, "K"))
		if len(got) != 1 || got[0][0].Int() != 1 {
			t.Errorf("intersect = %v", got)
		}
	})
}

func TestModesAgreeOnFig1(t *testing.T) {
	sc := templates.Fig1Scenario(120, 360)
	mat := New(sc.Bind(), WithMode(Materialized))
	pip := New(sc.Bind(), WithMode(Pipelined), WithBatchSize(7))
	r1, err := mat.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pip.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rows1 := r1.Targets["DW.PARTS"]
	rows2 := r2.Targets["DW.PARTS"]
	if !rows1.EqualMultiset(rows2) {
		t.Errorf("modes disagree: %d vs %d rows; %v",
			len(rows1), len(rows2), rows1.DiffMultiset(rows2, 3))
	}
	if len(rows1) == 0 {
		t.Error("Fig. 1 scenario produced no warehouse rows")
	}
}

func TestDiamondPipelineNoDeadlock(t *testing.T) {
	// One source feeding two branches that re-converge on a union: the
	// pipelined engine must drain both concurrently.
	schema := data.Schema{"K", "V"}
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: schema, Rows: 500, IsSource: true})
	f1 := g.AddActivity(templates.Threshold("V", 50, 0.5))
	f2 := g.AddActivity(templates.Threshold("V", 150, 0.2))
	u := g.AddActivity(templates.Union())
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: schema, IsTarget: true})
	g.MustAddEdge(src, f1)
	g.MustAddEdge(src, f2)
	g.MustAddEdge(f1, u)
	g.MustAddEdge(f2, u)
	g.MustAddEdge(u, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	rows := make(data.Rows, 500)
	for i := range rows {
		rows[i] = data.Record{data.NewInt(int64(i)), data.NewFloat(float64(i % 200))}
	}
	bind := map[string]data.Recordset{"S": data.NewMemoryRecordset("S", schema).MustLoad(rows)}
	mat, err := New(bind, WithMode(Materialized)).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := New(bind, WithMode(Pipelined), WithBatchSize(4)).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Targets["T"].EqualMultiset(pip.Targets["T"]) {
		t.Error("diamond results differ between modes")
	}
}

func TestPipelineErrorPropagation(t *testing.T) {
	// A surrogate key with a missing lookup binding must surface as an
	// error, not a hang, in pipelined mode.
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"K"}, IsSource: true})
	sk := g.AddActivity(templates.SurrogateKey("K", "SK", "NOPE"))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"SK"}, IsTarget: true})
	g.MustAddEdge(src, sk)
	g.MustAddEdge(sk, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	e := New(map[string]data.Recordset{
		"S": data.NewMemoryRecordset("S", data.Schema{"K"}).MustLoad(data.Rows{{data.NewInt(1)}}),
	}, WithMode(Pipelined))
	if _, err := e.Run(context.Background(), g); err == nil {
		t.Error("missing lookup binding should error")
	}
}

func TestUnboundSourceError(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"K"}, IsSource: true})
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K"}, IsTarget: true})
	g.MustAddEdge(src, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Materialized, Pipelined} {
		if _, err := New(nil, WithMode(mode)).Run(context.Background(), g); err == nil {
			t.Errorf("mode %v: unbound source should error", mode)
		}
	}
}

func TestTargetLoading(t *testing.T) {
	// When the target recordset is bound, rows are loaded into it.
	schema := data.Schema{"K"}
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: schema, IsSource: true})
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: schema, IsTarget: true})
	g.MustAddEdge(src, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	target := data.NewMemoryRecordset("T", schema)
	e := New(map[string]data.Recordset{
		"S": data.NewMemoryRecordset("S", schema).MustLoad(data.Rows{{data.NewInt(7)}}),
		"T": target,
	})
	if _, err := e.Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if n, _ := target.Count(); n != 1 {
		t.Errorf("target holds %d rows, want 1", n)
	}
}

func TestNodeRowsObservability(t *testing.T) {
	sc := templates.Fig1Scenario(60, 120)
	res, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Every node must report a row count, and the sources must match the
	// generated data sizes.
	for _, id := range sc.Graph.Nodes() {
		if _, ok := res.NodeRows[id]; !ok {
			t.Errorf("node %d missing from NodeRows", id)
		}
	}
	srcRows := 0
	for _, id := range sc.Graph.Sources() {
		srcRows += res.NodeRows[id]
	}
	if srcRows != 180 {
		t.Errorf("source NodeRows = %d, want 180", srcRows)
	}
}
