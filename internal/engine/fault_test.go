package engine

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/templates"
)

// A rate-1 transient plan makes every injection point fire exactly once
// (MaxPerKey 1), so each node fails a bounded number of attempts before
// its occurrences are exhausted — the worst case the retry budget must
// absorb. The recovered run must be bit-identical to the clean one.
func TestEngineTransientFaultsRecover(t *testing.T) {
	sc := templates.Fig1Scenario(80, 240)
	clean, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Materialized, Parallel} {
		plan := fault.NewPlan(1, 1.0)
		var buf bytes.Buffer
		j := obs.NewJournal(&buf, nil)
		res, err := New(sc.Bind(),
			WithMode(mode), WithPartitions(4), WithJournal(j),
			WithFaultPlan(plan),
			WithRetry(fault.Policy{MaxAttempts: 8, Seed: 1}),
		).Run(context.Background(), sc.Graph)
		if err != nil {
			t.Fatalf("%s: run failed despite retries (%d faults fired): %v", mode, plan.Injected(), err)
		}
		if cerr := j.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if plan.Injected() == 0 {
			t.Fatalf("%s: rate-1 plan fired no faults", mode)
		}
		if !res.Targets["DW.PARTS"].EqualMultiset(clean.Targets["DW.PARTS"]) {
			t.Errorf("%s: recovered run differs from clean run", mode)
		}
		for id, want := range clean.NodeRows {
			if got := res.NodeRows[id]; got != want {
				t.Errorf("%s: node %d emitted %d rows, clean run %d", mode, id, got, want)
			}
		}
		evs, err := obs.ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		faults, retries := 0, 0
		for _, e := range evs {
			switch e.T {
			case obs.EventFault:
				faults++
			case obs.EventRetry:
				retries++
			}
		}
		if faults == 0 || retries == 0 {
			t.Errorf("%s: journal holds %d fault and %d retry events; want both > 0", mode, faults, retries)
		}
	}
}

// A permanent fault must fail the run immediately with a typed error
// naming node, partition and injection site, budget notwithstanding.
func TestEnginePermanentFaultTyped(t *testing.T) {
	sc := templates.Fig1Scenario(40, 120)
	_, err := New(sc.Bind(),
		WithMode(Parallel), WithPartitions(4),
		WithFaultPlan(fault.NewPlan(7, 1.0, fault.WithKind(fault.Permanent))),
		WithRetry(fault.Policy{MaxAttempts: 8, Seed: 7}),
	).Run(context.Background(), sc.Graph)
	if err == nil {
		t.Fatal("permanent rate-1 plan did not fail the run")
	}
	var inj *fault.Injected
	if !errors.As(err, &inj) {
		t.Fatalf("error is not a typed *fault.Injected: %v", err)
	}
	if inj.Site == "" || inj.Node < 0 || inj.Part < 0 || inj.Kind != fault.Permanent {
		t.Fatalf("attribution incomplete: %+v", inj)
	}
}

// Without a retry policy even transient faults surface: injection and
// recovery are independently armed.
func TestEngineTransientFaultWithoutRetrySurfaces(t *testing.T) {
	sc := templates.Fig1Scenario(40, 120)
	_, err := New(sc.Bind(),
		WithFaultPlan(fault.NewPlan(3, 1.0)),
	).Run(context.Background(), sc.Graph)
	var inj *fault.Injected
	if !errors.As(err, &inj) || !inj.Transient() {
		t.Fatalf("want a surfaced transient *fault.Injected, got %v", err)
	}
}

// The checkpoint runner shares the engine's retry layer: a transiently
// faulted checkpointed run converges, clears its staging area, and
// matches a plain run.
func TestCheckpointRunnerRetriesFaults(t *testing.T) {
	sc := templates.Fig1Scenario(60, 180)
	plan := fault.NewPlan(5, 1.0)
	cr, err := NewCheckpointRunner(
		New(sc.Bind(), WithFaultPlan(plan), WithRetry(fault.Policy{MaxAttempts: 8, Seed: 5})),
		filepath.Join(t.TempDir(), "stage"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatalf("checkpointed run failed despite retries (%d faults fired): %v", plan.Injected(), err)
	}
	if plan.Injected() == 0 {
		t.Fatal("rate-1 plan fired no faults")
	}
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("recovered checkpointed run differs from plain run")
	}
	staged, err := cr.Staged()
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) != 0 {
		t.Errorf("staging not cleared after recovered success: %v", staged)
	}
}

// An armed-but-silent plan (rate 0) and a plan-free engine must agree
// exactly: the injection points are invisible until they fire.
func TestEngineZeroRatePlanInvisible(t *testing.T) {
	sc := templates.Fig1Scenario(40, 120)
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(sc.Bind(),
		WithMode(Parallel), WithPartitions(4),
		WithFaultPlan(fault.NewPlan(11, 0)),
		WithRetry(fault.Policy{MaxAttempts: 4, Seed: 11}),
	).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("zero-rate plan changed the run's output")
	}
}
